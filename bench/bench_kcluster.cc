// E10 — Observation 3.5: iterating the 1-cluster solver k times as a
// k-clustering heuristic. Measures coverage (fraction of points inside the
// union of returned balls) and the effect of splitting the privacy budget
// across rounds — the reason the paper bounds k <~ (eps n)^{2/3} / d^{1/3}.
//
// Also measures the IndexedDataset inversion of the rounds: one shared
// deletion-capable index peeled across the k rounds (index_mode=kIncremental,
// the default) against the legacy per-round subset + fresh-index path
// (kRebuild). Released outputs are bit-identical (property_test); only the
// index service cost moves.
//
// `--smoke` runs the perf regression gate instead (exit 1 on a miss):
//  * index maintenance at n=4096, k=8: serving the k shrinking rounds from
//    one incremental index (build once + O(1) removals) must be >= 2x faster
//    than re-subsetting and re-indexing every round;
//  * end-to-end KCluster (n=4096, k=8) with the incremental index must not
//    be slower than the rebuild path (1.15x margin for timing noise — the
//    kNN queries and the DP machinery dominate both runs; the index build is
//    what the incremental path deletes).

#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_util.h"
#include "dpcluster/core/k_cluster.h"
#include "dpcluster/geo/dataset.h"
#include "dpcluster/geo/spatial_grid.h"
#include "dpcluster/workload/synthetic.h"
#include "dpcluster/workload/table.h"

namespace dpcluster {
namespace {

constexpr int kTrials = 3;

double CoverageTable(Rng& rng, KClusterOptions::IndexMode index_mode) {
  bench::Banner(index_mode == KClusterOptions::IndexMode::kIncremental
                    ? "k-cluster, incremental shared index (default)"
                    : "k-cluster, per-round rebuild (legacy reference)");
  TextTable table({"k", "rounds completed", "coverage %", "uncovered",
                   "time ms"});
  double total_ms = 0.0;
  for (std::size_t k : {1u, 2u, 3u, 4u}) {
    double rounds = 0.0;
    double covered = 0.0;
    double uncovered = 0.0;
    double ms = 0.0;
    int ok = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      const ClusterWorkload w =
          MakeGaussianMixture(rng, 4000, k, 2, 1u << 12, 0.01, 0.05);
      KClusterOptions options;
      options.params = {24.0, 1e-8};
      options.beta = 0.2;
      options.k = k;
      options.index_mode = index_mode;
      Result<KClusterResult> result = Status::Internal("unset");
      ms += bench::TimeMs(
          [&] { result = KCluster(rng, w.points, w.domain, options); });
      if (!result.ok()) continue;
      rounds += static_cast<double>(result->rounds.size());
      uncovered += static_cast<double>(result->uncovered);
      covered += 100.0 *
                 static_cast<double>(w.points.size() - result->uncovered) /
                 static_cast<double>(w.points.size());
      ++ok;
    }
    total_ms += ms;
    if (ok == 0) {
      table.AddRow({TextTable::FmtInt(static_cast<long long>(k)), "-", "-", "-",
                    "-"});
      continue;
    }
    table.AddRow({TextTable::FmtInt(static_cast<long long>(k)),
                  TextTable::Fmt(rounds / ok, 1), TextTable::Fmt(covered / ok, 1),
                  TextTable::Fmt(uncovered / ok, 0), TextTable::Fmt(ms / ok, 1)});
  }
  table.Print();
  return total_ms;
}

// --------------------------------------------------------------- --smoke ---

// A deterministic k-round shrink schedule: each round removes the ball of
// active points nearest the round's planted center, roughly an eighth of the
// data, mirroring what KCluster's removal does between GoodRadius calls.
std::vector<std::vector<std::uint32_t>> ShrinkSchedule(const PointSet& s,
                                                       std::size_t k) {
  std::vector<std::vector<std::uint32_t>> rounds(k);
  std::vector<std::uint8_t> active(s.size(), 1);
  Rng rng(2016);
  for (std::size_t round = 0; round < k; ++round) {
    const std::size_t target = s.size() / (k + 1);
    // Greedy: sweep from a random anchor, take the first `target` active.
    std::size_t at = rng.NextUint64(s.size());
    std::vector<std::uint32_t>& removed = rounds[round];
    while (removed.size() < target) {
      at = (at + 1) % s.size();
      if (!active[at]) continue;
      active[at] = 0;
      removed.push_back(static_cast<std::uint32_t>(at));
    }
  }
  return rounds;
}

int RunSmoke() {
  int failures = 0;
  Rng data_rng(1007);
  PlantedClusterSpec spec;
  spec.n = 4096;
  spec.t = 512;
  spec.dim = 2;
  spec.levels = 1u << 12;
  spec.cluster_radius = 0.02;
  const ClusterWorkload w = MakePlantedCluster(data_rng, spec);
  constexpr std::size_t kRounds = 8;
  const std::size_t expected_neighbors = spec.t - 1;
  const auto schedule = ShrinkSchedule(w.points, kRounds);

  // Index maintenance: the geometry service KCluster's rounds consume.
  // Rebuild = what the legacy path paid per round (materialize the surviving
  // subset, index it from scratch); incremental = one build plus O(1)
  // structural removals. Best of three interleaved reps.
  double rebuild_ms = 1e300;
  double incremental_ms = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    rebuild_ms = std::min(rebuild_ms, bench::TimeMs([&] {
      std::vector<std::size_t> remaining(w.points.size());
      for (std::size_t i = 0; i < remaining.size(); ++i) remaining[i] = i;
      for (std::size_t round = 0; round < kRounds; ++round) {
        const PointSet current = w.points.Subset(remaining);
        auto grid = SpatialGrid::Build(current, w.domain, expected_neighbors);
        if (!grid.ok()) return;
        std::vector<std::uint8_t> drop(w.points.size(), 0);
        for (const std::uint32_t id : schedule[round]) drop[id] = 1;
        std::vector<std::size_t> next;
        next.reserve(remaining.size());
        for (const std::size_t id : remaining) {
          if (!drop[id]) next.push_back(id);
        }
        remaining = std::move(next);
      }
    }));
    incremental_ms = std::min(incremental_ms, bench::TimeMs([&] {
      auto index = IndexedDataset::Create(w.points, w.domain);
      if (!index.ok()) return;
      index->EnsureGrid(expected_neighbors);
      for (std::size_t round = 0; round < kRounds; ++round) {
        index->Remove(schedule[round]);
        (void)index->ActiveIds();
      }
    }));
  }
  const double maintenance_speedup = rebuild_ms / incremental_ms;
  constexpr double kMaintenanceFloor = 2.0;
  const bool maintenance_ok = maintenance_speedup >= kMaintenanceFloor;
  std::printf(
      "smoke: index maintenance n=%zu k=%zu: rebuild %.2fms, incremental "
      "%.2fms, speedup %.1fx (floor %.1fx) -> %s\n",
      w.points.size(), kRounds, rebuild_ms, incremental_ms,
      maintenance_speedup, kMaintenanceFloor, maintenance_ok ? "OK" : "FAIL");
  failures += maintenance_ok ? 0 : 1;

  // End-to-end KCluster: bit-identical outputs, incremental must not lose.
  KClusterOptions options;
  options.params = {24.0, 1e-8};
  options.beta = 0.2;
  options.k = kRounds;
  options.per_round_t = spec.n / kRounds;
  double e2e_rebuild_ms = 1e300;
  double e2e_incremental_ms = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    for (const auto mode : {KClusterOptions::IndexMode::kRebuild,
                            KClusterOptions::IndexMode::kIncremental}) {
      options.index_mode = mode;
      Rng rng(4259);
      Result<KClusterResult> result = Status::Internal("unset");
      double& slot = mode == KClusterOptions::IndexMode::kRebuild
                         ? e2e_rebuild_ms
                         : e2e_incremental_ms;
      slot = std::min(slot, bench::TimeMs([&] {
        result = KCluster(rng, w.points, w.domain, options);
      }));
      if (!result.ok()) {
        std::printf("smoke: KCluster failed: %s\n",
                    result.status().ToString().c_str());
        return 1;
      }
    }
  }
  constexpr double kEndToEndMargin = 1.15;
  const bool e2e_ok = e2e_incremental_ms <= kEndToEndMargin * e2e_rebuild_ms;
  std::printf(
      "smoke: KCluster end-to-end n=%zu k=%zu: rebuild %.1fms, incremental "
      "%.1fms (floor: incremental <= %.2f * rebuild) -> %s\n",
      w.points.size(), kRounds, e2e_rebuild_ms, e2e_incremental_ms,
      kEndToEndMargin, e2e_ok ? "OK" : "FAIL");
  failures += e2e_ok ? 0 : 1;

  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace dpcluster

int main(int argc, char** argv) {
  using namespace dpcluster;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return RunSmoke();
  }
  Rng rng(31);
  const double incremental_ms =
      CoverageTable(rng, KClusterOptions::IndexMode::kIncremental);
  Rng legacy_rng(31);
  const double rebuild_ms =
      CoverageTable(legacy_rng, KClusterOptions::IndexMode::kRebuild);
  bench::Note(
      "\nBoth tables release identical bytes (same seeds, bit-identical"
      "\npaths — see property_test); the incremental index amortizes the"
      "\nper-round geometry builds. Totals: incremental " +
      std::to_string(incremental_ms) + " ms, rebuild " +
      std::to_string(rebuild_ms) + " ms.");
  bench::Note(
      "\nExpected shape (Obs 3.5): the heuristic covers most points with k"
      "\nballs; each additional round works with budget eps/k, so pushing k"
      "\nup degrades the per-round guarantee — the (eps n)^{2/3} ceiling the"
      "\npaper notes.");
  return 0;
}
