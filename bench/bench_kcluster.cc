// E10 — Observation 3.5: iterating the 1-cluster solver k times as a
// k-clustering heuristic. Measures coverage (fraction of points inside the
// union of returned balls) and the effect of splitting the privacy budget
// across rounds — the reason the paper bounds k <~ (eps n)^{2/3} / d^{1/3}.

#include <cstdio>

#include "bench_util.h"
#include "dpcluster/core/k_cluster.h"
#include "dpcluster/workload/synthetic.h"
#include "dpcluster/workload/table.h"

namespace dpcluster {
namespace {

constexpr int kTrials = 3;

}  // namespace
}  // namespace dpcluster

int main() {
  using namespace dpcluster;
  Rng rng(31);

  bench::Banner(
      "Observation 3.5 / k-cluster heuristic on a mixture of k Gaussians "
      "(n=4000, d=2, 5% noise, total eps=24)");
  TextTable table({"k", "rounds completed", "coverage %", "uncovered",
                   "time ms"});
  for (std::size_t k : {1u, 2u, 3u, 4u}) {
    double rounds = 0.0;
    double covered = 0.0;
    double uncovered = 0.0;
    double ms = 0.0;
    int ok = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      const ClusterWorkload w =
          MakeGaussianMixture(rng, 4000, k, 2, 1u << 12, 0.01, 0.05);
      KClusterOptions options;
      options.params = {24.0, 1e-8};
      options.beta = 0.2;
      options.k = k;
      Result<KClusterResult> result = Status::Internal("unset");
      ms += bench::TimeMs(
          [&] { result = KCluster(rng, w.points, w.domain, options); });
      if (!result.ok()) continue;
      rounds += static_cast<double>(result->rounds.size());
      uncovered += static_cast<double>(result->uncovered);
      covered += 100.0 *
                 static_cast<double>(w.points.size() - result->uncovered) /
                 static_cast<double>(w.points.size());
      ++ok;
    }
    if (ok == 0) {
      table.AddRow({TextTable::FmtInt(static_cast<long long>(k)), "-", "-", "-",
                    "-"});
      continue;
    }
    table.AddRow({TextTable::FmtInt(static_cast<long long>(k)),
                  TextTable::Fmt(rounds / ok, 1), TextTable::Fmt(covered / ok, 1),
                  TextTable::Fmt(uncovered / ok, 0), TextTable::Fmt(ms / ok, 1)});
  }
  table.Print();
  bench::Note(
      "\nExpected shape (Obs 3.5): the heuristic covers most points with k"
      "\nballs; each additional round works with budget eps/k, so pushing k"
      "\nup degrades the per-round guarantee — the (eps n)^{2/3} ceiling the"
      "\npaper notes.");
  return 0;
}
