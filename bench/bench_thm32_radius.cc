// E4 — Theorem 3.2, radius shape: the released ball's *guarantee* radius grows
// as O(sqrt(log n)) * r_opt (via the JL dimension k = O(log n)) and is flat in
// the ambient dimension d — the property that separates this work from the
// sqrt(d)-paying aggregation baseline (Table 1 column "approximation factor").
//
// Reported per configuration (mean over trials):
//   w_guar — analytic guarantee factor (sqrt(2) box_side + 1) sqrt(k) * 4
//            (GoodRadius's 4-approx folded in),
//   w_eff  — measured: smallest ball around the released center holding t
//            points, over the r_opt lower bound.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "dpcluster/core/one_cluster.h"
#include "dpcluster/workload/metrics.h"
#include "dpcluster/workload/synthetic.h"
#include "dpcluster/workload/table.h"

namespace dpcluster {
namespace {

constexpr int kTrials = 3;

void RunConfig(TextTable& table, Rng& rng, std::size_t n, std::size_t d,
               double eps, double t_fraction) {
  PlantedClusterSpec spec;
  spec.n = n;
  spec.t = static_cast<std::size_t>(t_fraction * static_cast<double>(n));
  spec.dim = d;
  spec.levels = 1u << 12;
  spec.cluster_radius = 0.01;
  const ClusterWorkload w = MakePlantedCluster(rng, spec);

  OneClusterOptions options;
  options.params = {eps, 1e-9};
  options.beta = 0.1;
  // Uncap the JL dimension so k = O(log n) is visible in the guarantee.
  options.center.max_jl_dim = 0;
  options.center.jl_constant = 2.0;

  double w_eff = 0.0;
  double w_guar = 0.0;
  double ms = 0.0;
  int ok = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    Result<OneClusterResult> result = Status::Internal("unset");
    ms += bench::TimeMs(
        [&] { result = OneCluster(rng, w.points, w.t, w.domain, options); });
    if (!result.ok()) continue;
    const auto metrics = Evaluate(w.points, w.t, result->ball);
    if (!metrics.ok()) continue;
    w_eff += metrics->w_effective;
    w_guar += 4.0 * (std::sqrt(2.0) * options.center.box_side_factor + 1.0) *
              std::sqrt(static_cast<double>(result->center_stage.jl_dim));
    ++ok;
  }
  if (ok == 0) {
    table.AddRow({TextTable::FmtInt(static_cast<long long>(n)),
                  TextTable::FmtInt(static_cast<long long>(d)), "-", "-", "-"});
    return;
  }
  table.AddRow({TextTable::FmtInt(static_cast<long long>(n)),
                TextTable::FmtInt(static_cast<long long>(d)),
                TextTable::Fmt(w_guar / ok, 1), TextTable::Fmt(w_eff / ok, 2),
                TextTable::Fmt(ms / ok, 1)});
}

}  // namespace
}  // namespace dpcluster

int main() {
  using namespace dpcluster;
  Rng rng(11);

  bench::Banner("Theorem 3.2 radius shape, sweep n (d=2, t=n/2, eps=8)");
  {
    TextTable table({"n", "d", "w guarantee (~sqrt(log n))", "w effective",
                     "time ms"});
    for (std::size_t n : {512u, 1024u, 2048u, 4096u}) {
      RunConfig(table, rng, n, 2, 8.0, 0.5);
    }
    table.Print();
  }

  bench::Banner("Theorem 3.2 radius shape, sweep d (n=2048, t=0.7n, eps=16)");
  {
    TextTable table({"n", "d", "w guarantee (~sqrt(log n))", "w effective",
                     "time ms"});
    for (std::size_t d : {2u, 8u, 32u}) RunConfig(table, rng, 2048, d, 16.0, 0.7);
    table.Print();
  }

  bench::Note(
      "\nExpected shape (Thm 3.2): the guarantee factor tracks sqrt(k) ~"
      "\nsqrt(log n) as n grows and stays flat as d grows (no sqrt(d) term);"
      "\nthe effective w is far below the worst-case guarantee.");
  return 0;
}
