// E13 — google-benchmark micro-benchmarks of the DP and geometry primitives
// the pipeline is built from (S2, S6-S13 in DESIGN.md).

#include <benchmark/benchmark.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "dpcluster/core/radius_profile.h"
#include "dpcluster/dp/above_threshold.h"
#include "dpcluster/dp/exponential_mechanism.h"
#include "dpcluster/dp/noisy_average.h"
#include "dpcluster/dp/stable_histogram.h"
#include "dpcluster/dp/step_function.h"
#include "dpcluster/geo/grid_domain.h"
#include "dpcluster/geo/pairwise.h"
#include "dpcluster/la/jl_transform.h"
#include "dpcluster/la/qr.h"
#include "dpcluster/random/distributions.h"

namespace dpcluster {
namespace {

void BM_SampleLaplace(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SampleLaplace(rng, 1.0));
  }
}
BENCHMARK(BM_SampleLaplace);

void BM_SampleGaussian(benchmark::State& state) {
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SampleGaussian(rng, 1.0));
  }
}
BENCHMARK(BM_SampleGaussian);

void BM_ExpMechStepFunction(benchmark::State& state) {
  Rng rng(3);
  const auto pieces = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint64_t> starts(pieces);
  std::vector<double> values(pieces);
  for (std::size_t p = 0; p < pieces; ++p) {
    starts[p] = p * 1000;
    values[p] = static_cast<double>(p % 50);
  }
  const StepFunction q = StepFunction::FromBreakpoints(
      pieces * 1000 + 5, std::move(starts), std::move(values));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ExponentialMechanism::SelectFromStepFunction(rng, q, 1.0));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(pieces));
}
BENCHMARK(BM_ExpMechStepFunction)->Arg(1000)->Arg(100000);

void BM_AboveThresholdQuery(benchmark::State& state) {
  Rng rng(4);
  auto at = AboveThreshold::Create(rng, 1.0, 1e12);  // Never fires.
  for (auto _ : state) {
    benchmark::DoNotOptimize(at->Process(rng, 1.0));
  }
}
BENCHMARK(BM_AboveThresholdQuery);

void BM_StableHistogram(benchmark::State& state) {
  Rng rng(5);
  const auto cells = static_cast<std::size_t>(state.range(0));
  std::unordered_map<std::int64_t, std::size_t> counts;
  for (std::size_t c = 0; c < cells; ++c) counts[static_cast<std::int64_t>(c)] = c % 97 + 1;
  counts[-1] = 100000;
  const PrivacyParams params{1.0, 1e-9};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        (ChooseHeavyCell<std::int64_t, std::hash<std::int64_t>>(rng, counts,
                                                                params)));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(cells));
}
BENCHMARK(BM_StableHistogram)->Arg(1000)->Arg(10000);

void BM_NoisyAverage(benchmark::State& state) {
  Rng rng(6);
  const auto n = static_cast<std::size_t>(state.range(0));
  PointSet s(8);
  const std::vector<double> center(8, 0.5);
  for (std::size_t i = 0; i < n; ++i) s.Add(SampleBall(rng, center, 0.1));
  const PrivacyParams params{1.0, 1e-9};
  for (auto _ : state) {
    benchmark::DoNotOptimize(NoisyAverage(rng, s, center, 0.2, params));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_NoisyAverage)->Arg(1000)->Arg(10000);

void BM_JlProject(benchmark::State& state) {
  Rng rng(7);
  const auto d = static_cast<std::size_t>(state.range(0));
  const JlTransform jl(rng, d, 16);
  std::vector<double> x(d, 0.3);
  std::vector<double> out(16);
  for (auto _ : state) {
    jl.Apply(x, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_JlProject)->Arg(16)->Arg(256);

void BM_RandomOrthonormalBasis(benchmark::State& state) {
  Rng rng(8);
  const auto d = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RandomOrthonormalBasis(rng, d));
  }
}
BENCHMARK(BM_RandomOrthonormalBasis)->Arg(16)->Arg(64);

void BM_RadiusProfileBuild(benchmark::State& state) {
  Rng rng(9);
  const auto n = static_cast<std::size_t>(state.range(0));
  const GridDomain domain(1u << 12, 2);
  PointSet s(2);
  std::vector<double> p(2);
  for (std::size_t i = 0; i < n; ++i) {
    p[0] = domain.Snap(rng.NextDouble());
    p[1] = domain.Snap(rng.NextDouble());
    s.Add(p);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(RadiusProfile::Build(s, n / 2, domain, n));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_RadiusProfileBuild)->Arg(256)->Arg(1024);

void BM_StepFunctionWindowMin(benchmark::State& state) {
  const auto pieces = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint64_t> starts(pieces);
  std::vector<double> values(pieces);
  for (std::size_t p = 0; p < pieces; ++p) {
    starts[p] = p * 7;
    values[p] = static_cast<double>((p * 31) % 100);
  }
  const StepFunction f = StepFunction::FromBreakpoints(
      pieces * 7 + 3, std::move(starts), std::move(values));
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.MaxEndpointWindowMin(pieces));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(pieces));
}
BENCHMARK(BM_StepFunctionWindowMin)->Arg(1000)->Arg(100000);

void BM_PairwiseCappedTopAverage(benchmark::State& state) {
  Rng rng(10);
  const auto n = static_cast<std::size_t>(state.range(0));
  PointSet s(4);
  const std::vector<double> c(4, 0.5);
  for (std::size_t i = 0; i < n; ++i) s.Add(SampleBall(rng, c, 0.4));
  const auto pd = PairwiseDistances::Compute(s, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pd->CappedTopAverage(0.2, n / 2));
  }
}
BENCHMARK(BM_PairwiseCappedTopAverage)->Arg(512)->Arg(2048);

}  // namespace
}  // namespace dpcluster

BENCHMARK_MAIN();
