// E13 — micro-benchmarks of the DP and geometry primitives the pipeline is
// built from (S2, S6-S13 in DESIGN.md).
//
// Two layers:
//  * A headline section that times the blocked kernels against frozen copies
//    of the pre-PR serial implementations (naive pairwise build, per-point JL
//    projection, std::upper_bound counting) and writes every measurement to
//    BENCH_primitives.json so the perf trajectory is machine-readable across
//    PRs. `--smoke` shrinks the repetitions and turns the speedup ratios into
//    hard floors (exit 1), which is what CI runs so kernel regressions fail
//    loudly.
//  * The google-benchmark suite over the remaining primitives (skipped under
//    --smoke).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_util.h"
#include "dpcluster/core/radius_profile.h"
#include "dpcluster/dp/above_threshold.h"
#include "dpcluster/dp/exponential_mechanism.h"
#include "dpcluster/dp/noisy_average.h"
#include "dpcluster/dp/stable_histogram.h"
#include "dpcluster/dp/step_function.h"
#include "dpcluster/geo/grid_domain.h"
#include "dpcluster/geo/pairwise.h"
#include "dpcluster/la/jl_transform.h"
#include "dpcluster/la/qr.h"
#include "dpcluster/la/vector_ops.h"
#include "dpcluster/parallel/thread_pool.h"
#include "dpcluster/random/distributions.h"

namespace dpcluster {
namespace {

// ------------------------------------------------------------------------
// Frozen pre-PR reference implementations (the serial baselines the
// acceptance speedups are measured against — do not "optimize" these).
// ------------------------------------------------------------------------

// Seed-era PairwiseDistances::Compute: per-pair sqrt(SquaredDistance) with
// symmetric fill, then per-row sorts.
std::vector<float> ReferencePairwiseRows(const PointSet& s) {
  const std::size_t n = s.size();
  std::vector<float> rows(n * n, 0.0f);
  for (std::size_t i = 0; i < n; ++i) {
    const auto xi = s[i];
    float* row_i = &rows[i * n];
    for (std::size_t j = i; j < n; ++j) {
      const float d = std::nextafter(
          static_cast<float>(std::sqrt(SquaredDistance(xi, s[j]))),
          std::numeric_limits<float>::infinity());
      row_i[j] = d;
      rows[j * n + i] = d;
    }
    row_i[i] = 0.0f;
  }
  for (std::size_t i = 0; i < n; ++i) {
    float* row = &rows[i * n];
    std::sort(row, row + n);
  }
  return rows;
}

// Seed-era GoodCenter step 1: one matrix-vector Apply per point.
void ReferenceJlLoop(const JlTransform& jl, const PointSet& s, Matrix& out) {
  for (std::size_t i = 0; i < s.size(); ++i) jl.Apply(s[i], out.Row(i));
}

// Seed-era CountWithin: std::upper_bound over the sorted row.
std::size_t ReferenceCountWithin(std::span<const float> row, double r) {
  const float bound = std::nextafter(static_cast<float>(r),
                                     std::numeric_limits<float>::infinity());
  return static_cast<std::size_t>(
      std::upper_bound(row.begin(), row.end(), bound) - row.begin());
}

// ------------------------------------------------------------------------
// Headline section.
// ------------------------------------------------------------------------

PointSet ClusteredCube(Rng& rng, std::size_t n, std::size_t d) {
  PointSet s(d);
  const std::vector<double> c(d, 0.5);
  for (std::size_t i = 0; i < n; ++i) {
    if (i % 2 == 0) {
      s.Add(SampleBall(rng, c, 0.1));
    } else {
      std::vector<double> p(d);
      for (double& x : p) x = rng.NextDouble();
      s.Add(p);
    }
  }
  return s;
}

template <typename F>
double BestOfMs(int reps, F&& f) {
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < reps; ++rep) best = std::min(best, bench::TimeMs(f));
  return best;
}

struct HeadlineResult {
  double pairwise_speedup = 0.0;
  double jl_speedup = 0.0;
};

HeadlineResult RunHeadline(bench::JsonReporter& reporter, bool smoke) {
  HeadlineResult result;
  const int reps = smoke ? 2 : 5;
  Rng rng(20260730);
  const std::size_t hw = ThreadPool(0).num_threads();

  bench::Banner("Pairwise distance build: naive baseline vs blocked Gram");
  {
    const std::size_t n = 2048, d = 64;
    const PointSet s = ClusteredCube(rng, n, d);
    const double naive_ms = BestOfMs(reps, [&] {
      benchmark::DoNotOptimize(ReferencePairwiseRows(s));
    });
    ThreadPool serial(1);
    const double gram_ms = BestOfMs(reps, [&] {
      benchmark::DoNotOptimize(PairwiseDistances::Compute(s, n, &serial));
    });
    ThreadPool pool(0);
    const double gram_mt_ms = BestOfMs(reps, [&] {
      benchmark::DoNotOptimize(PairwiseDistances::Compute(s, n, &pool));
    });
    result.pairwise_speedup = naive_ms / gram_ms;
    bench::Note("n=" + std::to_string(n) + " d=" + std::to_string(d) +
                ": naive " + std::to_string(naive_ms) + " ms, gram(1T) " +
                std::to_string(gram_ms) + " ms, gram(" + std::to_string(hw) +
                "T) " + std::to_string(gram_mt_ms) + " ms  =>  " +
                std::to_string(result.pairwise_speedup) + "x serial speedup");
    const double per_op = 1e6 / static_cast<double>(n) / static_cast<double>(n);
    reporter.Add("PairwiseDistances::Compute[naive-baseline]", n, d, 1,
                 naive_ms * per_op);
    reporter.Add("PairwiseDistances::Compute", n, d, 1, gram_ms * per_op);
    reporter.Add("PairwiseDistances::Compute", n, d, hw, gram_mt_ms * per_op);
  }

  bench::Banner("Batched JL projection: per-point baseline vs ApplyAll");
  {
    const std::size_t n = 4096, d = 256, k = 16;
    const PointSet s = ClusteredCube(rng, n, d);
    const JlTransform jl(rng, d, k);
    Matrix loop_out(n, k);
    const double loop_ms =
        BestOfMs(reps, [&] { ReferenceJlLoop(jl, s, loop_out); });
    ThreadPool serial(1);
    const double batched_ms = BestOfMs(reps, [&] {
      benchmark::DoNotOptimize(jl.ApplyAll(s, &serial));
    });
    ThreadPool pool(0);
    const double batched_mt_ms = BestOfMs(reps, [&] {
      benchmark::DoNotOptimize(jl.ApplyAll(s, &pool));
    });
    result.jl_speedup = loop_ms / batched_ms;
    bench::Note("n=" + std::to_string(n) + " d=" + std::to_string(d) + " k=" +
                std::to_string(k) + ": loop " + std::to_string(loop_ms) +
                " ms, ApplyAll(1T) " + std::to_string(batched_ms) +
                " ms, ApplyAll(" + std::to_string(hw) + "T) " +
                std::to_string(batched_mt_ms) + " ms  =>  " +
                std::to_string(result.jl_speedup) + "x serial speedup");
    const double per_op = 1e6 / static_cast<double>(n);
    reporter.Add("JlTransform::Apply[loop-baseline]", n, d, 1, loop_ms * per_op);
    reporter.Add("JlTransform::ApplyAll", n, d, 1, batched_ms * per_op);
    reporter.Add("JlTransform::ApplyAll", n, d, hw, batched_mt_ms * per_op);
  }

  bench::Banner("CountWithin: std::upper_bound vs branchless upper_bound");
  {
    const std::size_t n = 2048, d = 4;
    const PointSet s = ClusteredCube(rng, n, d);
    const auto pd = PairwiseDistances::Compute(s, n);
    std::vector<double> radii(4096);
    for (double& r : radii) r = rng.NextDouble() * 1.2;
    std::size_t sink = 0;
    const double std_ms = BestOfMs(reps, [&] {
      for (std::size_t q = 0; q < radii.size(); ++q) {
        sink += ReferenceCountWithin(pd->SortedRow(q % n), radii[q]);
      }
    });
    const double branchless_ms = BestOfMs(reps, [&] {
      for (std::size_t q = 0; q < radii.size(); ++q) {
        sink += pd->CountWithin(q % n, radii[q]);
      }
    });
    benchmark::DoNotOptimize(sink);
    bench::Note("4096 queries over rows of " + std::to_string(n) + ": std " +
                std::to_string(std_ms) + " ms, branchless " +
                std::to_string(branchless_ms) + " ms");
    const double per_op = 1e6 / static_cast<double>(radii.size());
    reporter.Add("CountWithin[std-upper-bound-baseline]", n, d, 1,
                 std_ms * per_op);
    reporter.Add("CountWithin[branchless]", n, d, 1, branchless_ms * per_op);
  }

  bench::Banner("CappedTopAverage (scratch buffer reuse)");
  {
    const std::size_t n = 2048, d = 4;
    const PointSet s = ClusteredCube(rng, n, d);
    const auto pd = PairwiseDistances::Compute(s, n);
    const double ms = BestOfMs(reps, [&] {
      for (double r : {0.05, 0.2, 0.5, 0.9}) {
        benchmark::DoNotOptimize(pd->CappedTopAverage(r, n / 2));
      }
    });
    bench::Note("4 L(r) queries at n=" + std::to_string(n) + ": " +
                std::to_string(ms) + " ms");
    reporter.Add("PairwiseDistances::CappedTopAverage", n, d, 1,
                 ms * 1e6 / 4.0);
  }

  return result;
}

// ------------------------------------------------------------------------
// google-benchmark suite (full mode only).
// ------------------------------------------------------------------------

void BM_SampleLaplace(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SampleLaplace(rng, 1.0));
  }
}
BENCHMARK(BM_SampleLaplace);

void BM_SampleGaussian(benchmark::State& state) {
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SampleGaussian(rng, 1.0));
  }
}
BENCHMARK(BM_SampleGaussian);

void BM_ExpMechStepFunction(benchmark::State& state) {
  Rng rng(3);
  const auto pieces = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint64_t> starts(pieces);
  std::vector<double> values(pieces);
  for (std::size_t p = 0; p < pieces; ++p) {
    starts[p] = p * 1000;
    values[p] = static_cast<double>(p % 50);
  }
  const StepFunction q = StepFunction::FromBreakpoints(
      pieces * 1000 + 5, std::move(starts), std::move(values));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ExponentialMechanism::SelectFromStepFunction(rng, q, 1.0));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(pieces));
}
BENCHMARK(BM_ExpMechStepFunction)->Arg(1000)->Arg(100000);

void BM_AboveThresholdQuery(benchmark::State& state) {
  Rng rng(4);
  auto at = AboveThreshold::Create(rng, 1.0, 1e12);  // Never fires.
  for (auto _ : state) {
    benchmark::DoNotOptimize(at->Process(rng, 1.0));
  }
}
BENCHMARK(BM_AboveThresholdQuery);

void BM_StableHistogram(benchmark::State& state) {
  Rng rng(5);
  const auto cells = static_cast<std::size_t>(state.range(0));
  std::unordered_map<std::int64_t, std::size_t> counts;
  for (std::size_t c = 0; c < cells; ++c) counts[static_cast<std::int64_t>(c)] = c % 97 + 1;
  counts[-1] = 100000;
  const PrivacyParams params{1.0, 1e-9};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        (ChooseHeavyCell<std::int64_t, std::hash<std::int64_t>>(rng, counts,
                                                                params)));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(cells));
}
BENCHMARK(BM_StableHistogram)->Arg(1000)->Arg(10000);

void BM_NoisyAverage(benchmark::State& state) {
  Rng rng(6);
  const auto n = static_cast<std::size_t>(state.range(0));
  PointSet s(8);
  const std::vector<double> center(8, 0.5);
  for (std::size_t i = 0; i < n; ++i) s.Add(SampleBall(rng, center, 0.1));
  const PrivacyParams params{1.0, 1e-9};
  for (auto _ : state) {
    benchmark::DoNotOptimize(NoisyAverage(rng, s, center, 0.2, params));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_NoisyAverage)->Arg(1000)->Arg(10000);

void BM_JlProject(benchmark::State& state) {
  Rng rng(7);
  const auto d = static_cast<std::size_t>(state.range(0));
  const JlTransform jl(rng, d, 16);
  std::vector<double> x(d, 0.3);
  std::vector<double> out(16);
  for (auto _ : state) {
    jl.Apply(x, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_JlProject)->Arg(16)->Arg(256);

void BM_JlProjectAll(benchmark::State& state) {
  Rng rng(7);
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t d = 256;
  const JlTransform jl(rng, d, 16);
  PointSet s(d);
  std::vector<double> x(d, 0.3);
  for (std::size_t i = 0; i < n; ++i) s.Add(x);
  for (auto _ : state) {
    benchmark::DoNotOptimize(jl.ApplyAll(s));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_JlProjectAll)->Arg(1024)->Arg(4096);

void BM_RandomOrthonormalBasis(benchmark::State& state) {
  Rng rng(8);
  const auto d = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RandomOrthonormalBasis(rng, d));
  }
}
BENCHMARK(BM_RandomOrthonormalBasis)->Arg(16)->Arg(64);

void BM_RadiusProfileBuild(benchmark::State& state) {
  Rng rng(9);
  const auto n = static_cast<std::size_t>(state.range(0));
  const GridDomain domain(1u << 12, 2);
  PointSet s(2);
  std::vector<double> p(2);
  for (std::size_t i = 0; i < n; ++i) {
    p[0] = domain.Snap(rng.NextDouble());
    p[1] = domain.Snap(rng.NextDouble());
    s.Add(p);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(RadiusProfile::Build(s, n / 2, domain, n));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_RadiusProfileBuild)->Arg(256)->Arg(1024);

void BM_StepFunctionWindowMin(benchmark::State& state) {
  const auto pieces = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint64_t> starts(pieces);
  std::vector<double> values(pieces);
  for (std::size_t p = 0; p < pieces; ++p) {
    starts[p] = p * 7;
    values[p] = static_cast<double>((p * 31) % 100);
  }
  const StepFunction f = StepFunction::FromBreakpoints(
      pieces * 7 + 3, std::move(starts), std::move(values));
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.MaxEndpointWindowMin(pieces));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(pieces));
}
BENCHMARK(BM_StepFunctionWindowMin)->Arg(1000)->Arg(100000);

void BM_PairwiseCappedTopAverage(benchmark::State& state) {
  Rng rng(10);
  const auto n = static_cast<std::size_t>(state.range(0));
  PointSet s(4);
  const std::vector<double> c(4, 0.5);
  for (std::size_t i = 0; i < n; ++i) s.Add(SampleBall(rng, c, 0.4));
  const auto pd = PairwiseDistances::Compute(s, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pd->CappedTopAverage(0.2, n / 2));
  }
}
BENCHMARK(BM_PairwiseCappedTopAverage)->Arg(512)->Arg(2048);

}  // namespace
}  // namespace dpcluster

int main(int argc, char** argv) {
  using namespace dpcluster;
  bool smoke = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      args.push_back(argv[i]);
    }
  }

  bench::JsonReporter reporter("BENCH_primitives.json");
  const HeadlineResult headline = RunHeadline(reporter, smoke);
  reporter.Write();

  if (smoke) {
    // Regression floors, deliberately below the recorded ~3x/2x speedups so
    // shared CI runners don't flake, but far above any "kernel fell back to
    // scalar" regression.
    bool ok = true;
    if (headline.pairwise_speedup < 1.5) {
      std::fprintf(stderr,
                   "FAIL: PairwiseDistances::Compute speedup %.2fx < 1.5x "
                   "regression floor\n",
                   headline.pairwise_speedup);
      ok = false;
    }
    if (headline.jl_speedup < 1.2) {
      std::fprintf(stderr,
                   "FAIL: batched JL speedup %.2fx < 1.2x regression floor\n",
                   headline.jl_speedup);
      ok = false;
    }
    std::printf("smoke: pairwise %.2fx (floor 1.5x), jl %.2fx (floor 1.2x) "
                "=> %s\n",
                headline.pairwise_speedup, headline.jl_speedup,
                ok ? "OK" : "FAIL");
    return ok ? 0 : 1;
  }

  int gb_argc = static_cast<int>(args.size());
  benchmark::Initialize(&gb_argc, args.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
