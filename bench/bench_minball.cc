// E8 — Section 3, facts 1-3 (the non-private substrate): exact 1D solution,
// the 2-approximation over input centers, and the PTAS-style local search.
// Validates the quality/runtime hierarchy the paper's construction builds on.

#include <cstdio>

#include "bench_util.h"
#include "dpcluster/baselines/nonprivate_baseline.h"
#include "dpcluster/geo/minimal_ball.h"
#include "dpcluster/workload/synthetic.h"
#include "dpcluster/workload/table.h"

namespace dpcluster {
namespace {

constexpr int kTrials = 3;

}  // namespace
}  // namespace dpcluster

int main() {
  using namespace dpcluster;
  Rng rng(23);

  bench::Banner("Minimal ball, d=1: exact vs 2-approx (n sweep, t=n/3)");
  {
    TextTable table({"n", "r exact", "r 2approx", "ratio (bound 2)",
                     "exact ms", "2approx ms"});
    for (std::size_t n : {256u, 1024u, 4096u}) {
      PlantedClusterSpec spec;
      spec.n = n;
      spec.t = n / 3;
      spec.dim = 1;
      spec.cluster_radius = 0.02;
      const ClusterWorkload w = MakePlantedCluster(rng, spec);
      double r_exact = 0.0;
      double r_two = 0.0;
      double ms_exact = 0.0;
      double ms_two = 0.0;
      for (int trial = 0; trial < kTrials; ++trial) {
        Result<Ball> exact = Status::Internal("unset");
        Result<Ball> two = Status::Internal("unset");
        ms_exact += bench::TimeMs([&] { exact = SmallestInterval1D(w.points, w.t); });
        ms_two += bench::TimeMs([&] { two = TwoApproxSmallestBall(w.points, w.t); });
        r_exact += exact->radius;
        r_two += two->radius;
      }
      table.AddRow({TextTable::FmtInt(static_cast<long long>(n)),
                    TextTable::Fmt(r_exact / kTrials, 4),
                    TextTable::Fmt(r_two / kTrials, 4),
                    TextTable::Fmt(r_two / std::max(r_exact, 1e-12), 2),
                    TextTable::Fmt(ms_exact / kTrials, 2),
                    TextTable::Fmt(ms_two / kTrials, 2)});
    }
    table.Print();
  }

  bench::Banner(
      "Minimal ball, d=4: 2-approx vs local search refinement (t=n/3)");
  {
    TextTable table({"n", "alpha", "r 2approx", "r refined", "improvement",
                     "refine ms"});
    for (std::size_t n : {512u, 2048u}) {
      PlantedClusterSpec spec;
      spec.n = n;
      spec.t = n / 3;
      spec.dim = 4;
      spec.cluster_radius = 0.03;
      const ClusterWorkload w = MakePlantedCluster(rng, spec);
      for (double alpha : {0.5, 0.25}) {
        double r_two = 0.0;
        double r_fine = 0.0;
        double ms = 0.0;
        for (int trial = 0; trial < kTrials; ++trial) {
          const Ball two = *TwoApproxSmallestBall(w.points, w.t);
          Result<Ball> fine = Status::Internal("unset");
          ms += bench::TimeMs(
              [&] { fine = NonPrivateLocalSearch(w.points, w.t, alpha); });
          r_two += two.radius;
          r_fine += fine->radius;
        }
        table.AddRow({TextTable::FmtInt(static_cast<long long>(n)),
                      TextTable::Fmt(alpha, 2),
                      TextTable::Fmt(r_two / kTrials, 4),
                      TextTable::Fmt(r_fine / kTrials, 4),
                      TextTable::Fmt(r_two / std::max(r_fine, 1e-12), 2),
                      TextTable::Fmt(ms / kTrials, 1)});
      }
    }
    table.Print();
  }

  bench::Note(
      "\nExpected shape (Section 3): the 2-approximation never exceeds twice"
      "\nthe optimum (ratio <= 2 in d=1 where the optimum is exact) and the"
      "\n(1+alpha)-style local search recovers most of the gap at O((3/alpha)^d)"
      "\nextra cost — the non-private baseline hierarchy the paper cites.");
  return 0;
}
