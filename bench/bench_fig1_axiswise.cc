// E2 — Reproduces **Figure 1**: the paper's "first attempt" — privately pick a
// heavy interval on every coordinate axis and intersect — fails because the
// resulting box can be empty. The figure illustrates it with two clusters
// whose axis marginals overlap; this bench measures it.
//
// For each dimension d we plant two equal clusters positioned so that every
// axis marginal has the same two heavy intervals (cluster A alternates
// low/high across axes, cluster B is the complement). The axis-wise method
// then intersects a mix of A-intervals and B-intervals and lands on an empty
// box roughly 1 - 2^{-(d-1)} of the time, while GoodCenter (the paper's fix)
// keeps succeeding.

#include <cmath>
#include <cstdio>
#include <unordered_map>
#include <vector>

#include "bench_util.h"
#include "dpcluster/core/good_center.h"
#include "dpcluster/dp/stable_histogram.h"
#include "dpcluster/geo/ball.h"
#include "dpcluster/random/distributions.h"
#include "dpcluster/workload/table.h"

namespace dpcluster {
namespace {

constexpr int kTrials = 40;
constexpr double kR = 0.02;
constexpr std::size_t kPerCluster = 900;
// Cluster centers sit at cell midpoints of the 4r grid (cells [0.16,0.24) and
// [0.64,0.72)), so each cluster's marginal lands in exactly one cell per axis
// and the two heavy cells tie — the coin-flip regime Figure 1 illustrates.
constexpr double kLow = 0.20;
constexpr double kHigh = 0.68;

// Two clusters whose coordinates alternate between kLow and kHigh in
// complementary patterns: every axis marginal is identical (half the mass at
// 0.25, half at 0.75), so axis-wise selection cannot tell the clusters apart.
PointSet TwoInterleavedClusters(Rng& rng, std::size_t d) {
  PointSet s(d);
  std::vector<double> center_a(d);
  std::vector<double> center_b(d);
  for (std::size_t j = 0; j < d; ++j) {
    center_a[j] = (j % 2 == 0) ? kLow : kHigh;
    center_b[j] = (j % 2 == 0) ? kHigh : kLow;
  }
  for (std::size_t i = 0; i < kPerCluster; ++i) {
    s.Add(SampleBall(rng, center_a, kR));
    s.Add(SampleBall(rng, center_b, kR));
  }
  return s;
}

// The "first attempt": per ORIGINAL axis, choose a heavy interval of length
// 4r with a stable histogram; intersect. Returns true if the resulting box
// contains at least one input point.
bool AxisWiseBoxNonEmpty(Rng& rng, const PointSet& s, double eps, double delta) {
  const std::size_t d = s.dim();
  const double cell = 4.0 * kR;
  AxisBox box;
  box.lo.resize(d);
  box.hi.resize(d);
  const PrivacyParams per_axis{eps / static_cast<double>(d),
                               delta / static_cast<double>(d)};
  for (std::size_t axis = 0; axis < d; ++axis) {
    std::unordered_map<std::int64_t, std::size_t> cells;
    for (std::size_t i = 0; i < s.size(); ++i) {
      ++cells[static_cast<std::int64_t>(std::floor(s[i][axis] / cell))];
    }
    auto choice = ChooseHeavyCell<std::int64_t, std::hash<std::int64_t>>(
        rng, cells, per_axis);
    if (!choice.ok()) return false;
    box.lo[axis] = static_cast<double>(choice->key) * cell;
    box.hi[axis] = box.lo[axis] + cell;
  }
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (box.Contains(s[i])) return true;
  }
  return false;
}

}  // namespace
}  // namespace dpcluster

int main() {
  using namespace dpcluster;
  bench::Banner(
      "Figure 1: axis-wise heavy intervals vs GoodCenter (two interleaved "
      "clusters, eps=8)");
  TextTable table({"d", "axis-wise box empty %", "GoodCenter success %",
                   "GoodCenter near-cluster %"});
  Rng rng(42);
  for (std::size_t d : {2u, 4u, 8u, 16u}) {
    int empty = 0;
    int center_ok = 0;
    int center_near = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      const PointSet s = TwoInterleavedClusters(rng, d);
      if (!AxisWiseBoxNonEmpty(rng, s, 8.0, 1e-8)) ++empty;

      GoodCenterOptions options;
      options.params = {8.0, 1e-8};
      options.beta = 0.1;
      auto result = GoodCenter(rng, s, kPerCluster, kR, options);
      if (result.ok()) {
        ++center_ok;
        // Near one of the clusters: a ball of 6r around the center captures
        // at least half a cluster.
        if (CountWithin(s, result->center, 6.0 * kR) >= kPerCluster / 2) {
          ++center_near;
        }
      }
    }
    table.AddRow({TextTable::FmtInt(static_cast<long long>(d)),
                  TextTable::Fmt(100.0 * empty / kTrials, 1),
                  TextTable::Fmt(100.0 * center_ok / kTrials, 1),
                  TextTable::Fmt(100.0 * center_near / kTrials, 1)});
  }
  table.Print();
  bench::Note(
      "\nExpected shape (Figure 1): the axis-wise box is empty more and more"
      "\noften as d grows (~1 - 2^{1-d}), while GoodCenter keeps finding a"
      "\ncenter on one of the clusters.");
  return 0;
}
