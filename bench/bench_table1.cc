// E1 — Reproduces **Table 1** of the paper: "Comparing different solutions
// from past work and our result".
//
// Paper rows (analytic bounds):            This harness (measured):
//   Private aggregation [16]  w=O(sqrt(d)/eps), majority only
//   Exponential mechanism [14] w=1, Delta=O~(d) log^2|X|/eps, time poly(|X|^d)
//   Query release thresholds [3,4] (d=1)  w=1, Delta=2^{O(log*|X|)}/eps
//   This work                 w=O(sqrt(log n)), Delta=O~(1/eps), poly time
//
// Scenario A (d=1, minority cluster) runs every method; Scenario B (d=2)
// shows the exponential mechanism hitting its poly(|X|^d) wall and the
// noisy-mean baseline failing on minority clusters, while this work still
// answers. Shapes to check: who runs, who handles minority clusters, and the
// measured (Delta, w) ordering. Absolute values are not the paper's (it
// reports bounds, not experiments).

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "dpcluster/baselines/exp_mech_baseline.h"
#include "dpcluster/baselines/noisy_mean_baseline.h"
#include "dpcluster/baselines/nonprivate_baseline.h"
#include "dpcluster/baselines/threshold_release_1d.h"
#include "dpcluster/core/one_cluster.h"
#include "dpcluster/workload/metrics.h"
#include "dpcluster/workload/synthetic.h"
#include "dpcluster/workload/table.h"

namespace dpcluster {
namespace {

constexpr int kTrials = 5;
constexpr double kEps = 2.0;
constexpr double kDelta = 1e-9;

struct Row {
  std::string method;
  double delta_mean = 0.0;   // t - captured.
  double w_eff_mean = 0.0;   // tight_radius / r_opt lower bound.
  double ms_mean = 0.0;
  bool ran = false;
  std::string note;
};

template <typename Solver>
Row RunMethod(const std::string& name, const ClusterWorkload& w, Rng& rng,
              Solver&& solve, const std::string& note = "") {
  Row row;
  row.method = name;
  row.note = note;
  int ok_trials = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    Result<Ball> ball = Status::Internal("unset");
    const double ms = bench::TimeMs([&] { ball = solve(rng); });
    if (!ball.ok()) {
      row.note = ball.status().ToString().substr(0, 48);
      continue;
    }
    const auto metrics = Evaluate(w.points, w.t, *ball);
    if (!metrics.ok()) continue;
    row.delta_mean += std::max(0.0, metrics->delta);
    row.w_eff_mean += metrics->w_effective;
    row.ms_mean += ms;
    ++ok_trials;
  }
  if (ok_trials > 0) {
    row.ran = true;
    row.delta_mean /= ok_trials;
    row.w_eff_mean /= ok_trials;
    row.ms_mean /= ok_trials;
  }
  return row;
}

void PrintRows(const std::vector<Row>& rows) {
  TextTable table({"method", "Delta (t-captured)", "w (effective)", "time ms",
                   "note"});
  for (const Row& r : rows) {
    if (r.ran) {
      table.AddRow({r.method, TextTable::Fmt(r.delta_mean, 1),
                    TextTable::Fmt(r.w_eff_mean, 2), TextTable::Fmt(r.ms_mean, 1),
                    r.note});
    } else {
      table.AddRow({r.method, "-", "-", "-", r.note});
    }
  }
  table.Print();
}

void ScenarioA() {
  bench::Banner(
      "Table 1 / Scenario A: d=1, |X|=2^14, n=2048, minority cluster t=n/4, "
      "eps=2");
  Rng rng(1001);
  PlantedClusterSpec spec;
  spec.n = 2048;
  spec.t = 512;
  spec.dim = 1;
  spec.levels = 1u << 14;
  spec.cluster_radius = 0.01;
  const ClusterWorkload w = MakePlantedCluster(rng, spec);

  std::vector<Row> rows;

  rows.push_back(RunMethod("non-private exact", w, rng, [&](Rng&) {
    return NonPrivateBestEffort(w.points, w.t);
  }, "reference"));

  rows.push_back(RunMethod("private aggregation [16]", w, rng, [&](Rng& r) {
    NoisyMeanBaselineOptions o;
    o.params = {kEps, kDelta};
    return NoisyMeanBaseline(r, w.points, w.t, w.domain, o);
  }, "mean misses minority cluster"));

  rows.push_back(RunMethod("exponential mechanism [14]", w, rng, [&](Rng& r) {
    ExpMechBaselineOptions o;
    o.params = {kEps, 0.0};
    return ExpMechBaseline(r, w.points, w.t, w.domain, o);
  }, "time poly(|X|^d)"));

  rows.push_back(RunMethod("query release thresholds [3,4]", w, rng, [&](Rng& r) -> Result<Ball> {
    ThresholdRelease1DOptions o;
    o.params = {kEps, 0.0};
    DPC_ASSIGN_OR_RETURN(ThresholdRelease1D release,
                         ThresholdRelease1D::Build(r, w.points, w.domain, o));
    return release.SmallestHeavyInterval(static_cast<double>(w.t));
  }, "d=1 only; dyadic-tree variant"));

  rows.push_back(RunMethod("this work (Thm 3.2)", w, rng, [&](Rng& r) -> Result<Ball> {
    OneClusterOptions o;
    o.params = {kEps, kDelta};
    o.beta = 0.1;
    DPC_ASSIGN_OR_RETURN(OneClusterResult result,
                         OneCluster(r, w.points, w.t, w.domain, o));
    return result.ball;
  }));

  PrintRows(rows);
}

void ScenarioB() {
  bench::Banner(
      "Table 1 / Scenario B: d=2, |X|=2^14 per axis, n=4096, two 30% "
      "clusters (no majority), eps=2");
  Rng rng(2002);
  const ClusterWorkload w = MakeTwoClusters(rng, 4096, 2, 1u << 14, 0.01, 0.3);

  std::vector<Row> rows;

  rows.push_back(RunMethod("non-private 2-approx", w, rng, [&](Rng&) {
    return NonPrivateTwoApprox(w.points, w.t);
  }, "reference"));

  rows.push_back(RunMethod("private aggregation [16]", w, rng, [&](Rng& r) {
    NoisyMeanBaselineOptions o;
    o.params = {kEps, kDelta};
    return NoisyMeanBaseline(r, w.points, w.t, w.domain, o);
  }, "needs majority cluster"));

  rows.push_back(RunMethod("exponential mechanism [14]", w, rng, [&](Rng& r) {
    ExpMechBaselineOptions o;
    o.params = {kEps, 0.0};
    return ExpMechBaseline(r, w.points, w.t, w.domain, o);
  }));

  rows.push_back(RunMethod("this work (Thm 3.2)", w, rng, [&](Rng& r) -> Result<Ball> {
    OneClusterOptions o;
    o.params = {kEps, kDelta};
    o.beta = 0.1;
    DPC_ASSIGN_OR_RETURN(OneClusterResult result,
                         OneCluster(r, w.points, w.t, w.domain, o));
    return result.ball;
  }));

  PrintRows(rows);
  bench::Note(
      "\nExpected shape (paper Table 1): [16] pays w ~ sqrt(d)/eps and only"
      "\nworks for majority clusters; [14] achieves w ~ 1 but is shut out as"
      "\nsoon as |X|^d grows; threshold release handles d=1 only; this work"
      "\nanswers every scenario with small Delta and moderate w.");
}

}  // namespace
}  // namespace dpcluster

int main() {
  dpcluster::ScenarioA();
  dpcluster::ScenarioB();
  return 0;
}
