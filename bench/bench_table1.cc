// E1 — Reproduces **Table 1** of the paper: "Comparing different solutions
// from past work and our result".
//
// Paper rows (analytic bounds):            This harness (measured):
//   Private aggregation [16]  w=O(sqrt(d)/eps), majority only
//   Exponential mechanism [14] w=1, Delta=O~(d) log^2|X|/eps, time poly(|X|^d)
//   Query release thresholds [3,4] (d=1)  w=1, Delta=2^{O(log*|X|)}/eps
//   This work                 w=O(sqrt(log n)), Delta=O~(1/eps), poly time
//
// Every method is dispatched by name through the Solver façade's algorithm
// registry — the rows below differ only in the `algorithm` field of the
// Request. Scenario A (d=1, minority cluster) runs every method; Scenario B
// (d=2) shows the exponential mechanism hitting its poly(|X|^d) wall and the
// noisy-mean baseline failing on minority clusters, while this work still
// answers. Shapes to check: who runs, who handles minority clusters, and the
// measured (Delta, w) ordering. Absolute values are not the paper's (it
// reports bounds, not experiments).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "dpcluster/workload/synthetic.h"
#include "dpcluster/workload/table.h"

namespace dpcluster {
namespace {

constexpr int kTrials = 5;
constexpr double kEps = 2.0;
constexpr double kDelta = 1e-9;

struct Row {
  std::string method;     // display label (paper row)
  std::string algorithm;  // registry name the Solver dispatches on
  std::string note;
};

Request BaseRequest(const ClusterWorkload& w) {
  Request request;
  request.data = w.points;
  request.domain = w.domain;
  request.t = w.t;
  request.budget = {kEps, kDelta};
  request.beta = 0.1;
  return request;
}

void RunRows(const ClusterWorkload& w, const std::vector<Row>& rows,
             std::uint64_t seed) {
  Solver solver(SolverOptions{.seed = seed});
  TextTable table({"method", "Delta (t-captured)", "w (effective)", "time ms",
                   "note"});
  for (const Row& row : rows) {
    Request request = BaseRequest(w);
    request.algorithm = row.algorithm;
    const bench::MethodStats stats =
        bench::RunTrials(solver, request, kTrials);
    if (stats.ran) {
      table.AddRow({row.method, TextTable::Fmt(stats.delta_mean, 1),
                    TextTable::Fmt(stats.w_eff_mean, 2),
                    TextTable::Fmt(stats.ms_mean, 1),
                    row.note.empty() ? stats.note : row.note});
    } else {
      table.AddRow({row.method, "-", "-", "-",
                    stats.note.empty() ? row.note : stats.note});
    }
  }
  table.Print();
  std::printf("total privacy spend of this table: %s\n",
              solver.TotalSpend().ToString().c_str());
}

void ScenarioA() {
  bench::Banner(
      "Table 1 / Scenario A: d=1, |X|=2^14, n=2048, minority cluster t=n/4, "
      "eps=2");
  Rng rng(1001);
  PlantedClusterSpec spec;
  spec.n = 2048;
  spec.t = 512;
  spec.dim = 1;
  spec.levels = 1u << 14;
  spec.cluster_radius = 0.01;
  const ClusterWorkload w = MakePlantedCluster(rng, spec);

  RunRows(w,
          {
              {"non-private exact", "nonprivate", "reference"},
              {"private aggregation [16]", "noisy_mean_baseline",
               "mean misses minority cluster"},
              {"exponential mechanism [14]", "exp_mech_baseline",
               "time poly(|X|^d)"},
              {"query release thresholds [3,4]", "threshold_release_1d",
               "d=1 only; dyadic-tree variant"},
              {"this work (Thm 3.2)", "one_cluster", ""},
          },
          1001);
}

void ScenarioB() {
  bench::Banner(
      "Table 1 / Scenario B: d=2, |X|=2^14 per axis, n=4096, two 30% "
      "clusters (no majority), eps=2");
  Rng rng(2002);
  const ClusterWorkload w = MakeTwoClusters(rng, 4096, 2, 1u << 14, 0.01, 0.3);

  RunRows(w,
          {
              {"non-private 2-approx", "nonprivate", "reference"},
              {"private aggregation [16]", "noisy_mean_baseline",
               "needs majority cluster"},
              {"exponential mechanism [14]", "exp_mech_baseline", ""},
              {"this work (Thm 3.2)", "one_cluster", ""},
          },
          2002);
  bench::Note(
      "\nExpected shape (paper Table 1): [16] pays w ~ sqrt(d)/eps and only"
      "\nworks for majority clusters; [14] achieves w ~ 1 but is shut out as"
      "\nsoon as |X|^d grows; threshold release handles d=1 only; this work"
      "\nanswers every scenario with small Delta and moderate w.");
}

}  // namespace
}  // namespace dpcluster

int main() {
  dpcluster::ScenarioA();
  dpcluster::ScenarioB();
  return 0;
}
