// E6 — Lemma 4.6 (GoodRadius) and the footnote-2 ablation: RecConcave engine
// vs sparse-vector binary search, plus the paper-structure recursion
// (base_domain_size 32) vs this build's default flat solve.
//
// Checks: r <= 4 r_opt (the lemma's approximation guarantee), the implied
// loss (Gamma / noise margin), and runtime.

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "dpcluster/core/good_radius.h"
#include "dpcluster/geo/minimal_ball.h"
#include "dpcluster/workload/synthetic.h"
#include "dpcluster/workload/table.h"

namespace dpcluster {
namespace {

constexpr int kTrials = 3;

void RunEngine(TextTable& table, Rng& rng, const ClusterWorkload& w,
               const std::string& label, GoodRadiusOptions options) {
  double ratio = 0.0;
  double gamma = 0.0;
  double ms = 0.0;
  int ok = 0;
  Ball opt = *TwoApproxSmallestBall(w.points, w.t);
  for (int trial = 0; trial < kTrials; ++trial) {
    Result<GoodRadiusResult> result = Status::Internal("unset");
    ms += bench::TimeMs(
        [&] { result = GoodRadius(rng, w.points, w.t, w.domain, options); });
    if (!result.ok()) continue;
    // r_opt <= opt.radius (2-approx), so r/r_opt <= 2 * r/opt.radius... report
    // against the 2-approx radius directly (paper bound: r <= 4 r_opt <= 4 *
    // opt.radius).
    ratio += result->radius / opt.radius;
    gamma += result->gamma;
    ++ok;
  }
  if (ok == 0) {
    table.AddRow({label, "-", "-", "-"});
    return;
  }
  table.AddRow({label, TextTable::Fmt(ratio / ok, 2),
                TextTable::Fmt(gamma / ok, 1), TextTable::Fmt(ms / ok, 1)});
}

}  // namespace
}  // namespace dpcluster

int main() {
  using namespace dpcluster;
  Rng rng(17);
  PlantedClusterSpec spec;
  spec.n = 2048;
  spec.t = 1638;  // 0.8n: large enough that even the recursion's Gamma fits.
  spec.dim = 2;
  spec.levels = 1u << 12;
  spec.cluster_radius = 0.01;
  const ClusterWorkload w = MakePlantedCluster(rng, spec);

  bench::Banner(
      "Lemma 4.6 / GoodRadius engines (n=2048, t=0.8n, d=2, |X|=2^12, eps=8)");
  TextTable table({"engine", "r / r_2approx (bound 4)", "Gamma/margin",
                   "time ms"});

  GoodRadiusOptions rec;
  rec.params = {8.0, 1e-9};
  rec.beta = 0.1;
  RunEngine(table, rng, w, "RecConcave (flat, default)", rec);

  GoodRadiusOptions paper_structure = rec;
  paper_structure.rec_concave.base_domain_size = 32;
  RunEngine(table, rng, w, "RecConcave (log* recursion, base=32)",
            paper_structure);

  GoodRadiusOptions sv = rec;
  sv.engine = GoodRadiusOptions::Engine::kSparseVector;
  RunEngine(table, rng, w, "sparse-vector binary search (footnote 2)", sv);

  table.Print();
  bench::Note(
      "\nExpected shape (Lemma 4.6): every engine returns r within the 4x"
      "\nguarantee of the optimum (measured against the 2-approx radius, so"
      "\nthe printed ratio bound is 4). The log* recursion splits the budget"
      "\nacross levels, so its Gamma is larger than the flat default — the"
      "\ncost of this build's exponential-mechanism selection (DESIGN.md #1);"
      "\nthe sparse-vector engine's margin carries the log|X| factor the"
      "\npaper's construction avoids (its footnote 2).");
  return 0;
}
