// E3 — Reproduces **Figure 2**: a heavy interval I of length |I| ~ r contains
// *some* of the cluster; extending it by |I| on each side (the 3x interval
// I-hat) contains *all* of it, because the cluster has diameter <= 2r... the
// paper draws exactly this construction (GoodCenter step 9c).
//
// The bench projects a planted cluster onto random directions, picks the
// heavy length-4r cell (noisily, as GoodCenter does), and measures how often
// the raw interval I vs the extended interval I-hat covers the whole cluster
// projection.

#include <cmath>
#include <cstdio>
#include <unordered_map>
#include <vector>

#include "bench_util.h"
#include "dpcluster/dp/stable_histogram.h"
#include "dpcluster/geo/point_set.h"
#include "dpcluster/la/qr.h"
#include "dpcluster/la/vector_ops.h"
#include "dpcluster/random/distributions.h"
#include "dpcluster/workload/table.h"

namespace dpcluster {
namespace {

constexpr std::size_t kClusterSize = 800;
constexpr int kTrials = 60;

}  // namespace
}  // namespace dpcluster

int main() {
  using namespace dpcluster;
  bench::Banner(
      "Figure 2: heavy interval I vs extended interval I-hat (cells of 4r, "
      "cluster diameter 2r)");
  TextTable table({"d", "r", "I covers cluster %", "I-hat covers cluster %",
                   "I-hat/|I| length"});
  Rng rng(7);
  for (std::size_t d : {2u, 8u, 32u}) {
    for (double r : {0.01, 0.05}) {
      int covers_i = 0;
      int covers_ihat = 0;
      for (int trial = 0; trial < kTrials; ++trial) {
        // A cluster of diameter 2r at a random location.
        std::vector<double> center(d);
        for (double& c : center) c = 0.2 + 0.6 * rng.NextDouble();
        PointSet cluster(d);
        for (std::size_t i = 0; i < kClusterSize; ++i) {
          cluster.Add(SampleBall(rng, center, r));
        }
        // Random direction (first vector of a random orthonormal basis).
        const Matrix basis = RandomOrthonormalBasis(rng, d);
        const auto z = basis.Row(0);

        const double cell = 4.0 * r;
        std::unordered_map<std::int64_t, std::size_t> cells;
        double lo = 1e18;
        double hi = -1e18;
        for (std::size_t i = 0; i < cluster.size(); ++i) {
          const double proj = Dot(cluster[i], z);
          lo = std::min(lo, proj);
          hi = std::max(hi, proj);
          ++cells[static_cast<std::int64_t>(std::floor(proj / cell))];
        }
        auto choice = ChooseHeavyCell<std::int64_t, std::hash<std::int64_t>>(
            rng, cells, PrivacyParams{1.0, 1e-8});
        if (!choice.ok()) continue;
        const double left = static_cast<double>(choice->key) * cell;
        const double right = left + cell;
        if (lo >= left && hi <= right) ++covers_i;
        if (lo >= left - cell && hi <= right + cell) ++covers_ihat;
      }
      table.AddRow({TextTable::FmtInt(static_cast<long long>(d)),
                    TextTable::Fmt(r, 2),
                    TextTable::Fmt(100.0 * covers_i / kTrials, 1),
                    TextTable::Fmt(100.0 * covers_ihat / kTrials, 1), "3.0"});
    }
  }
  table.Print();
  bench::Note(
      "\nExpected shape (Figure 2): the raw heavy interval I often clips the"
      "\ncluster (its projection, of width up to 2r, straddles a cell edge),"
      "\nbut the 3x extension I-hat virtually always covers all of it — the"
      "\nstep that makes GoodCenter's truncation safe.");
  return 0;
}
