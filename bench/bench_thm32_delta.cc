// E5 — Theorem 3.2, cluster-size loss shape: Delta scales like 1/eps and only
// weakly (logarithmically, in this build's exponential-mechanism variant —
// DESIGN.md substitution #1) with the domain size |X|.
//
// Reported: the analytic promise Gamma the radius stage uses (the dominant
// loss term, ~4*Gamma), feasibility (the theorem needs t > ~4*Gamma), the
// released center's displacement from the planted center in r_opt units (the
// noise-driven quantity that scales as 1/eps), and Delta* = max(0, t - count
// inside a ball of radius 6*r_opt around the released center). (The
// guarantee-radius ball trivially captures everything at laptop scale, so
// these are the informative loss measures.)

#include <algorithm>
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "dpcluster/core/good_radius.h"
#include "dpcluster/geo/minimal_ball.h"
#include "dpcluster/la/vector_ops.h"
#include "dpcluster/core/one_cluster.h"
#include "dpcluster/workload/metrics.h"
#include "dpcluster/workload/synthetic.h"
#include "dpcluster/workload/table.h"

namespace dpcluster {
namespace {

constexpr int kTrials = 3;

struct Outcome {
  double delta = 0.0;
  double displacement = 0.0;
  double gamma = 0.0;
  bool feasible = false;
  bool ok = false;
  std::string note;
};

Outcome RunConfig(Rng& rng, double eps, std::uint64_t levels) {
  PlantedClusterSpec spec;
  spec.n = 2048;
  spec.t = 1024;
  spec.dim = 2;
  spec.levels = levels;
  spec.cluster_radius = 0.01;
  const ClusterWorkload w = MakePlantedCluster(rng, spec);

  OneClusterOptions options;
  options.params = {eps, 1e-9};
  options.beta = 0.1;

  Outcome out;
  GoodRadiusOptions radius_opts = options.radius;
  radius_opts.params = options.params.Fraction(options.radius_budget_fraction);
  radius_opts.beta = options.beta / 2.0;
  out.gamma = GoodRadiusGamma(w.domain, radius_opts);
  out.feasible = 4.0 * out.gamma < static_cast<double>(w.t);

  int ok = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    auto result = OneCluster(rng, w.points, w.t, w.domain, options);
    if (!result.ok()) {
      out.note = result.status().ToString().substr(0, 40);
      continue;
    }
    const auto r_opt = OptRadiusLowerBound(w.points, w.t);
    const double captured = static_cast<double>(
        CountWithin(w.points, result->ball.center, 6.0 * *r_opt));
    out.delta += std::max(0.0, static_cast<double>(w.t) - captured);
    out.displacement += Distance(result->ball.center, w.planted.center) / *r_opt;
    ++ok;
  }
  if (ok > 0) {
    out.delta /= ok;
    out.displacement /= ok;
    out.ok = true;
  }
  return out;
}

}  // namespace
}  // namespace dpcluster

int main() {
  using namespace dpcluster;
  Rng rng(13);

  bench::Banner(
      "Theorem 3.2 loss shape, sweep eps (n=2048, t=n/2, d=2, |X|=2^12)");
  {
    TextTable table({"eps", "Gamma (analytic)", "t > 4*Gamma?",
                     "center err / r_opt", "Delta* at 6 r_opt"});
    for (double eps : {0.5, 1.0, 2.0, 4.0, 8.0}) {
      const Outcome out = RunConfig(rng, eps, 1u << 12);
      table.AddRow({TextTable::Fmt(eps, 1), TextTable::Fmt(out.gamma, 1),
                    out.feasible ? "yes" : "no",
                    out.ok ? TextTable::Fmt(out.displacement, 2) : "-",
                    out.ok ? TextTable::Fmt(out.delta, 1) : "- (" + out.note + ")"});
    }
    table.Print();
    bench::Note("Expected: Gamma ~ 1/eps; measured Delta follows (Thm 3.2's "
                "Delta = O~(1/eps)).");
  }

  bench::Banner(
      "Theorem 3.2 loss shape, sweep |X| (n=2048, t=n/2, d=2, eps=2)");
  {
    TextTable table({"|X|", "Gamma (analytic)", "t > 4*Gamma?",
                     "center err / r_opt", "Delta* at 6 r_opt"});
    for (std::uint64_t levels :
         {std::uint64_t{1} << 8, std::uint64_t{1} << 12, std::uint64_t{1} << 16,
          std::uint64_t{1} << 20}) {
      const Outcome out = RunConfig(rng, 2.0, levels);
      table.AddRow({TextTable::FmtInt(static_cast<long long>(levels)),
                    TextTable::Fmt(out.gamma, 1),
                    out.feasible ? "yes" : "no",
                    out.ok ? TextTable::Fmt(out.displacement, 2) : "-",
                    out.ok ? TextTable::Fmt(out.delta, 1) : "- (" + out.note + ")"});
    }
    table.Print();
    bench::Note(
        "Expected: Gamma grows only logarithmically in |X| (the paper's bound"
        "\nis even flatter, 2^{O(log*|X|)}; this build's exponential-mechanism"
        "\nselection pays log|X| — DESIGN.md substitution #1).");
  }
  return 0;
}
