// bench_accuracy — the Table-1-style accuracy dashboard over the scenario
// registry. Where bench_table1 reproduces the paper's original comparison on
// the planted-cluster workload, this harness sweeps *every* registered
// scenario family × algorithm × epsilon through the Solver façade and reports
// ground-truth-relative medians (radius blow-up, cluster coverage, center
// offset), then writes BENCH_accuracy.json so the accuracy trajectory stays
// machine-readable across PRs.
//
//   bench_accuracy            # the eval_harness default grid -> BENCH_accuracy.json
//   bench_accuracy --quick    # smoke-sized grid -> BENCH_accuracy_quick.json

#include <cstring>
#include <string>

#include "bench_util.h"
#include "dpcluster/data/accuracy.h"
#include "dpcluster/data/registry.h"

using namespace dpcluster;
using namespace dpcluster::bench;

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  // The full run keeps SweepConfig's defaults — the exact grid of the
  // committed BENCH_accuracy.json — so regenerating the baseline from either
  // tool produces the same shape. --quick writes to its own file.
  SweepConfig config;  // all registered scenarios, default 3 algorithms
  if (quick) {
    config.epsilons = {2.0};
    config.ns = {2048};
    config.trials = 3;
  }
  const char* out = quick ? "BENCH_accuracy_quick.json" : "BENCH_accuracy.json";

  Banner("Accuracy dashboard: scenario x algorithm x epsilon (medians over " +
         std::to_string(config.trials) + " seeds)");
  Note("radius_ratio = released radius / tightest true-center t-ball;");
  Note("coverage = fraction of the planted cluster captured; center_off in");
  Note("units of the reference radius. Truth is the planted ground truth,");
  Note("not a non-private fit (see src/dpcluster/data/).");

  const auto cells = RunAccuracySweep(config);
  if (!cells.ok()) {
    std::fprintf(stderr, "sweep failed: %s\n",
                 cells.status().ToString().c_str());
    return 1;
  }

  PrintSweepTables(*cells);

  return WriteAccuracyJson(out, config, *cells) ? 0 : 1;
}
