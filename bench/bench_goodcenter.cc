// E7 — Lemma 4.12 (GoodCenter) ablations: the JL dimension k (radius/loss
// tradeoff: the guarantee radius grows as sqrt(k), the per-round success
// probability improves with smaller k) and the per-axis interval rule
// (practical 4r cells vs the paper's worst-case p — DESIGN.md substitution
// list, axis_cell_factor).

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "dpcluster/core/good_center.h"
#include "dpcluster/geo/ball.h"
#include "dpcluster/workload/synthetic.h"
#include "dpcluster/workload/table.h"

namespace dpcluster {
namespace {

constexpr int kTrials = 4;
constexpr double kR = 0.015;

void RunConfig(TextTable& table, Rng& rng, const ClusterWorkload& w,
               const std::string& label, GoodCenterOptions options) {
  double tight = 0.0;
  double guarantee = 0.0;
  double rounds = 0.0;
  double sigma = 0.0;
  double ms = 0.0;
  int ok = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    Result<GoodCenterResult> result = Status::Internal("unset");
    ms += bench::TimeMs(
        [&] { result = GoodCenter(rng, w.points, w.t, kR, options); });
    if (!result.ok()) continue;
    tight += RadiusCapturing(w.points, result->center, w.t * 4 / 5) / kR;
    guarantee += result->guarantee_radius / kR;
    rounds += static_cast<double>(result->rounds_used);
    sigma += result->noise_sigma;
    ++ok;
  }
  if (ok == 0) {
    table.AddRow({label, "-", "-", "-", "-", "-"});
    return;
  }
  table.AddRow({label, TextTable::Fmt(guarantee / ok, 1),
                TextTable::Fmt(tight / ok, 2), TextTable::Fmt(rounds / ok, 1),
                TextTable::Fmt(sigma / ok, 4), TextTable::Fmt(ms / ok, 1)});
}

}  // namespace
}  // namespace dpcluster

int main() {
  using namespace dpcluster;
  Rng rng(19);
  PlantedClusterSpec spec;
  spec.n = 4096;
  spec.t = 2048;
  spec.dim = 8;
  spec.levels = 1u << 16;
  spec.cluster_radius = kR;
  const ClusterWorkload w = MakePlantedCluster(rng, spec);

  bench::Banner(
      "Lemma 4.12 / GoodCenter, JL dimension sweep (n=4096, t=n/2, d=8, "
      "eps=4, r=r_planted)");
  {
    TextTable table({"k (JL dim)", "guarantee radius / r (~sqrt(k))",
                     "tight radius / r", "rounds", "noise sigma", "time ms"});
    for (std::size_t k : {4u, 8u, 12u, 16u, 20u}) {
      GoodCenterOptions options;
      options.params = {4.0, 1e-9};
      options.beta = 0.1;
      options.max_jl_dim = k;
      options.jl_constant = 1000.0;  // Force the cap to bind.
      RunConfig(table, rng, w, TextTable::FmtInt(static_cast<long long>(k)),
                options);
    }
    table.Print();
    bench::Note(
        "Expected: the GUARANTEE radius grows as sqrt(k) — the O(sqrt(log n))"
        "\nfactor of Theorem 3.2 — while the measured tight radius stays near"
        "\nthe planted r; JL concentration keeps the retry count low even for"
        "\nlarger k.");
  }

  bench::Banner("GoodCenter, per-axis interval rule ablation");
  {
    TextTable table({"interval rule", "guarantee radius / r",
                     "tight radius / r", "rounds", "noise sigma", "time ms"});
    GoodCenterOptions practical;
    practical.params = {4.0, 1e-9};
    practical.beta = 0.1;
    RunConfig(table, rng, w, "practical 4r cells (default)", practical);

    GoodCenterOptions paper_p = practical;
    paper_p.axis_cell_factor = 0.0;  // Worst-case p, clamped by the cube.
    RunConfig(table, rng, w, "paper worst-case p (cube-clamped)", paper_p);
    table.Print();
    bench::Note(
        "Expected: the worst-case interval length blows up the bounding"
        "\nsphere C and with it the averaging noise sigma — the reason the"
        "\npractical preset exists (the paper's constants assume t ~ 10^5+).");
  }
  return 0;
}
