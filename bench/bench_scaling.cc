// E12 — Theorem 3.2's running-time claim: the pipeline is
// poly(n, d, log|X|). Phase-level wall-clock sweeps over n, d, |X| and the
// thread count. (GoodRadius is Theta(n^2) by construction — the documented
// quadratic core; GoodCenter is O~(n d + n k * rounds).)
//
// Every configuration is also appended to BENCH_scaling.json (op, n, d,
// threads, ns/op) so the perf trajectory stays machine-readable across PRs.

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "dpcluster/core/good_center.h"
#include "dpcluster/core/good_radius.h"
#include "dpcluster/parallel/thread_pool.h"
#include "dpcluster/workload/synthetic.h"
#include "dpcluster/workload/table.h"

namespace dpcluster {
namespace {

void RunConfig(TextTable& table, bench::JsonReporter& reporter, Rng& rng,
               std::size_t n, std::size_t d, std::uint64_t levels,
               double eps = 8.0, std::size_t num_threads = 1) {
  PlantedClusterSpec spec;
  spec.n = n;
  spec.t = n / 2;
  spec.dim = d;
  spec.levels = levels;
  spec.cluster_radius = 0.01;
  const ClusterWorkload w = MakePlantedCluster(rng, spec);

  GoodRadiusOptions radius_opts;
  radius_opts.params = {eps, 1e-9};
  radius_opts.beta = 0.1;
  radius_opts.num_threads = num_threads;
  Result<GoodRadiusResult> radius = Status::Internal("unset");
  const double radius_ms = bench::TimeMs(
      [&] { radius = GoodRadius(rng, w.points, w.t, w.domain, radius_opts); });

  GoodCenterOptions center_opts;
  center_opts.params = {eps, 1e-9};
  center_opts.beta = 0.1;
  center_opts.num_threads = num_threads;
  const double r = radius.ok() ? std::max(radius->radius, 0.005) : 0.05;
  Result<GoodCenterResult> center = Status::Internal("unset");
  const double center_ms = bench::TimeMs(
      [&] { center = GoodCenter(rng, w.points, w.t, r, center_opts); });

  const std::size_t threads = ThreadPool(num_threads).num_threads();
  reporter.Add("GoodRadius", n, d, threads, radius_ms * 1e6);
  if (center.ok()) reporter.Add("GoodCenter", n, d, threads, center_ms * 1e6);

  table.AddRow({TextTable::FmtInt(static_cast<long long>(n)),
                TextTable::FmtInt(static_cast<long long>(d)),
                TextTable::FmtInt(static_cast<long long>(levels)),
                TextTable::FmtInt(static_cast<long long>(threads)),
                TextTable::Fmt(radius_ms, 1),
                center.ok() ? TextTable::Fmt(center_ms, 1) : "-",
                center.ok()
                    ? TextTable::FmtInt(static_cast<long long>(center->rounds_used))
                    : "-"});
}

const std::vector<std::string> kHeader = {
    "n", "d", "|X|", "threads", "GoodRadius ms", "GoodCenter ms", "rounds"};

}  // namespace
}  // namespace dpcluster

int main() {
  using namespace dpcluster;
  Rng rng(41);
  bench::JsonReporter reporter("BENCH_scaling.json");

  bench::Banner("Runtime scaling, n sweep (d=2, |X|=2^12, t=n/2, eps=8)");
  {
    TextTable table(kHeader);
    for (std::size_t n : {512u, 1024u, 2048u, 4096u}) {
      RunConfig(table, reporter, rng, n, 2, 1u << 12);
    }
    table.Print();
    bench::Note("Expected: GoodRadius ~ n^2 (the exact L profile), GoodCenter"
                " near-linear in n.");
  }

  bench::Banner("Runtime scaling, d sweep (n=2048, |X|=2^12)");
  {
    TextTable table(kHeader);
    // Larger d needs a larger budget for the per-axis histograms; this sweep
    // is about runtime, so give it eps=32.
    for (std::size_t d : {2u, 8u, 32u, 64u}) {
      RunConfig(table, reporter, rng, 2048, d, 1u << 12, 32.0);
    }
    table.Print();
    bench::Note("Expected: polynomial in d (distance computations + the d x d"
                " random rotation).");
  }

  bench::Banner("Runtime scaling, |X| sweep (n=2048, d=2)");
  {
    TextTable table(kHeader);
    for (int lx : {8, 12, 16, 20}) {
      RunConfig(table, reporter, rng, 2048, 2, std::uint64_t{1} << lx);
    }
    table.Print();
    bench::Note("Expected: only logarithmic growth in |X| (the radius grid is"
                " handled through the piecewise-constant profile, never"
                " enumerated).");
  }

  bench::Banner("Thread scaling (n=4096, d=32, |X|=2^12, eps=32)");
  {
    TextTable table(kHeader);
    for (std::size_t threads : {1u, 2u, 4u, 0u}) {
      RunConfig(table, reporter, rng, 4096, 32, 1u << 12, 32.0, threads);
    }
    table.Print();
    bench::Note("Released outputs are bit-identical at every thread count"
                " (see determinism_test); only the wall clock moves.");
  }

  reporter.Write();
  return 0;
}
