// E12 — Theorem 3.2's running-time claim: the pipeline is
// poly(n, d, log|X|). Phase-level wall-clock sweeps over n, d, |X|, the
// thread count, and the RadiusProfile event generator. (GoodRadius's exact
// profile is Theta(n^2); the grid-indexed t-NN pruned profile is ~O(n t) at
// low dimension — the "small cluster" regime t << n the paper is about.
// GoodCenter is O~(n d + n k * rounds).)
//
// Every configuration is recorded in BENCH_scaling.json (op, n, d, threads,
// ns/op; deduplicated on that key, last write wins, sorted) so the perf
// trajectory stays machine-readable across PRs. BENCH_scaling.baseline.json
// is the frozen pre-grid-index snapshot the acceptance speedups are measured
// against — do not regenerate it.
//
// `--smoke` runs the perf regression gate instead (exit 1 on a miss):
//  * GoodRadius n=2048/d=2/t=n/16 under an absolute ns floor, and the
//    grid-indexed profile >= 3x faster than the exact sweep in-process;
//  * GoodCenter n=4096/d=32 at threads=4 not slower than threads=1 (the
//    ParallelFor minimum-grain cutoff keeps sub-threshold regions serial).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_util.h"
#include "dpcluster/core/good_center.h"
#include "dpcluster/core/good_radius.h"
#include "dpcluster/core/k_cluster.h"
#include "dpcluster/coreset/coreset.h"
#include "dpcluster/geo/dataset.h"
#include "dpcluster/geo/pairwise.h"
#include "dpcluster/parallel/thread_pool.h"
#include "dpcluster/workload/synthetic.h"
#include "dpcluster/workload/table.h"

namespace dpcluster {
namespace {

struct ConfigOptions {
  double eps = 8.0;
  std::size_t num_threads = 1;
  /// Target cluster size is n / t_divisor.
  std::size_t t_divisor = 2;
  /// Appended to the JSON op names so differently-parameterized sweeps
  /// (|X| sweep, small-t sweep) do not collide on the (op, n, d, threads)
  /// dedup key.
  std::string op_suffix;
  ProfileIndex profile_index = ProfileIndex::kAuto;
  /// Cell space of any spatial index GoodRadius builds (geo/spatial_grid.h).
  IndexGeometry index_geometry = IndexGeometry::kAuto;
};

void RunConfig(TextTable& table, bench::JsonReporter& reporter, Rng& rng,
               std::size_t n, std::size_t d, std::uint64_t levels,
               const ConfigOptions& cfg = {}) {
  PlantedClusterSpec spec;
  spec.n = n;
  spec.t = n / cfg.t_divisor;
  spec.dim = d;
  spec.levels = levels;
  spec.cluster_radius = 0.01;
  const ClusterWorkload w = MakePlantedCluster(rng, spec);

  GoodRadiusOptions radius_opts;
  radius_opts.params = {cfg.eps, 1e-9};
  radius_opts.beta = 0.1;
  radius_opts.num_threads = cfg.num_threads;
  radius_opts.profile_index = cfg.profile_index;
  radius_opts.index_geometry = cfg.index_geometry;
  Result<GoodRadiusResult> radius = Status::Internal("unset");
  const double radius_ms = bench::TimeMs(
      [&] { radius = GoodRadius(rng, w.points, w.t, w.domain, radius_opts); });

  GoodCenterOptions center_opts;
  center_opts.params = {cfg.eps, 1e-9};
  center_opts.beta = 0.1;
  center_opts.num_threads = cfg.num_threads;
  const double r = radius.ok() ? std::max(radius->radius, 0.005) : 0.05;
  Result<GoodCenterResult> center = Status::Internal("unset");
  const double center_ms = bench::TimeMs(
      [&] { center = GoodCenter(rng, w.points, w.t, r, center_opts); });

  const std::size_t threads = ThreadPool(cfg.num_threads).num_threads();
  reporter.Add("GoodRadius" + cfg.op_suffix, n, d, threads, radius_ms * 1e6);
  if (center.ok()) {
    reporter.Add("GoodCenter" + cfg.op_suffix, n, d, threads, center_ms * 1e6);
  }

  table.AddRow({TextTable::FmtInt(static_cast<long long>(n)),
                TextTable::FmtInt(static_cast<long long>(w.t)),
                TextTable::FmtInt(static_cast<long long>(d)),
                TextTable::FmtInt(static_cast<long long>(levels)),
                TextTable::FmtInt(static_cast<long long>(threads)),
                TextTable::Fmt(radius_ms, 1),
                center.ok() ? TextTable::Fmt(center_ms, 1) : "-",
                center.ok()
                    ? TextTable::FmtInt(static_cast<long long>(center->rounds_used))
                    : "-"});
}

const std::vector<std::string> kHeader = {
    "n", "t", "d", "|X|", "threads", "GoodRadius ms", "GoodCenter ms", "rounds"};

// The thread sweep needs a fairer harness than one-shot RunConfig rows: all
// thread counts run *identical* work (one fixed-seed workload, fresh
// fixed-seed Rng per run) and the reps are interleaved across thread counts,
// so slow machine drift (frequency scaling, noisy neighbors) hits every
// count equally instead of whichever happened to be measured last.
void RunThreadSweep(TextTable& table, bench::JsonReporter& reporter,
                    std::size_t n, std::size_t d, std::uint64_t levels,
                    double eps) {
  PlantedClusterSpec spec;
  spec.n = n;
  spec.t = n / 2;
  spec.dim = d;
  spec.levels = levels;
  spec.cluster_radius = 0.01;
  Rng data_rng(4242);
  const ClusterWorkload w = MakePlantedCluster(data_rng, spec);

  const std::vector<std::size_t> counts = {1, 2, 4, 0};
  std::vector<double> radius_ms(counts.size(), 1e300);
  std::vector<double> center_ms(counts.size(), 1e300);
  std::vector<std::size_t> rounds(counts.size(), 0);
  double r = 0.05;

  constexpr int kRadiusReps = 2;
  for (int rep = 0; rep < kRadiusReps; ++rep) {
    for (std::size_t i = 0; i < counts.size(); ++i) {
      GoodRadiusOptions opts;
      opts.params = {eps, 1e-9};
      opts.beta = 0.1;
      opts.num_threads = counts[i];
      Rng rng(4259);
      Result<GoodRadiusResult> radius = Status::Internal("unset");
      radius_ms[i] = std::min(radius_ms[i], bench::TimeMs([&] {
        radius = GoodRadius(rng, w.points, w.t, w.domain, opts);
      }));
      if (radius.ok()) r = std::max(radius->radius, 0.005);
    }
  }
  constexpr int kCenterReps = 41;
  for (int rep = 0; rep < kCenterReps; ++rep) {
    for (std::size_t fwd = 0; fwd < counts.size(); ++fwd) {
      // Alternate direction per rep so linear drift cancels.
      const std::size_t i =
          rep % 2 == 0 ? fwd : counts.size() - 1 - fwd;
      GoodCenterOptions opts;
      opts.params = {eps, 1e-9};
      opts.beta = 0.1;
      opts.num_threads = counts[i];
      Rng rng(4273);
      Result<GoodCenterResult> center = Status::Internal("unset");
      center_ms[i] = std::min(center_ms[i], bench::TimeMs([&] {
        center = GoodCenter(rng, w.points, w.t, r, opts);
      }));
      if (center.ok()) rounds[i] = center->rounds_used;
    }
  }

  for (std::size_t i = 0; i < counts.size(); ++i) {
    const std::size_t threads = ThreadPool(counts[i]).num_threads();
    reporter.Add("GoodRadius", n, d, threads, radius_ms[i] * 1e6);
    reporter.Add("GoodCenter", n, d, threads, center_ms[i] * 1e6);
    table.AddRow({TextTable::FmtInt(static_cast<long long>(n)),
                  TextTable::FmtInt(static_cast<long long>(w.t)),
                  TextTable::FmtInt(static_cast<long long>(d)),
                  TextTable::FmtInt(static_cast<long long>(levels)),
                  TextTable::FmtInt(static_cast<long long>(threads)),
                  TextTable::Fmt(radius_ms[i], 1),
                  TextTable::Fmt(center_ms[i], 1),
                  TextTable::FmtInt(static_cast<long long>(rounds[i]))});
  }
}

// ------------------------------------------------- streaming maintenance ---

/// One streaming-maintenance run: a resident IndexedDataset absorbs
/// `batches` arrival batches of `batch_size` points (each batch also
/// expires the oldest batch_size/4 live rows, so the reverse-neighbor
/// invalidation path runs, not just the append fast path), and after every
/// batch answers a GoodRadius query (kSparseVector engine). The incremental
/// pipeline patches the shared t-NN rows via ApplyBatch; the reference
/// pipeline rebuilds the index + rows from scratch over the same live set
/// per batch — exactly what the service did before streams existed. Both
/// run serially and release bit-identical bytes per batch (checked); only
/// the wall clock differs.
struct StreamingPoint {
  double mutate_ms = 0.0;       ///< Incremental: Insert+Remove, all batches.
  double apply_ms = 0.0;        ///< Incremental: ApplyBatch, all batches.
  double query_ms = 0.0;        ///< Incremental: GoodRadius, all batches.
  double rebuild_ms = 0.0;      ///< Reference: Create + Build + GoodRadius.
  double invalidated_mean = 0.0;  ///< Mean rows recomputed per ApplyBatch.
  double compact_ms = 0.0;      ///< One live/total < 1/4 Compact at the end.
  std::size_t batches = 0;
  std::size_t batch_size = 0;
  bool ok = false;
  double incremental_ms() const { return mutate_ms + apply_ms + query_ms; }
  double speedup() const {
    return incremental_ms() > 0.0 ? rebuild_ms / incremental_ms() : 0.0;
  }
};

StreamingPoint RunStreamingMaintenance(std::size_t n, std::size_t t,
                                       std::size_t batches,
                                       std::size_t batch_size) {
  StreamingPoint out;
  out.batches = batches;
  out.batch_size = batch_size;
  Rng data_rng(53);
  PlantedClusterSpec spec;
  spec.n = n;
  spec.t = t;
  spec.dim = 2;
  spec.levels = 1u << 12;
  spec.cluster_radius = 0.01;
  const ClusterWorkload w = MakePlantedCluster(data_rng, spec);
  const std::size_t n0 = n - batches * batch_size;
  const std::size_t expire_size = batch_size / 4;

  PointSet head(w.points.dim());
  for (std::size_t i = 0; i < n0; ++i) head.Add(w.points[i]);
  auto live_or = IndexedDataset::Create(std::move(head), w.domain);
  if (!live_or.ok()) return out;
  IndexedDataset live = std::move(*live_or);
  auto rows_or = KnnCappedCounts::Build(live, t, n);
  if (!rows_or.ok()) return out;
  KnnCappedCounts rows = std::move(*rows_or);

  GoodRadiusOptions opts;
  opts.engine = GoodRadiusOptions::Engine::kSparseVector;
  opts.params = {8.0, 1e-9};
  opts.beta = 0.1;
  opts.max_profile_points = n;

  double invalidated_total = 0.0;
  bool all_ok = true;
  for (std::size_t b = 0; b < batches && all_ok; ++b) {
    const std::size_t begin = n0 + b * batch_size;

    std::vector<std::uint32_t> added;
    added.reserve(batch_size);
    const auto oldest = live.ActiveIds().first(expire_size);
    const std::vector<std::uint32_t> removed(oldest.begin(), oldest.end());
    out.mutate_ms += bench::TimeMs([&] {
      live.Remove(removed);
      for (std::size_t i = begin; i < begin + batch_size; ++i) {
        auto id = live.Insert(w.points[i]);
        if (!id.ok()) {
          all_ok = false;
          return;
        }
        added.push_back(static_cast<std::uint32_t>(*id));
      }
    });
    out.apply_ms += bench::TimeMs([&] {
      all_ok = all_ok && rows.ApplyBatch(live, added, removed).ok();
    });
    if (!all_ok) break;
    invalidated_total += static_cast<double>(rows.last_invalidated());

    GoodRadiusOptions shared = opts;
    shared.shared_counts = &rows;
    Rng inc_rng(77 + b);
    Result<GoodRadiusResult> incremental = Status::Internal("unset");
    out.query_ms += bench::TimeMs(
        [&] { incremental = GoodRadius(inc_rng, live, t, shared); });

    Result<GoodRadiusResult> reference = Status::Internal("unset");
    out.rebuild_ms += bench::TimeMs([&] {
      auto fresh = IndexedDataset::Create(live.ActiveView(), w.domain);
      if (!fresh.ok()) return;
      auto built = KnnCappedCounts::Build(*fresh, t, n);
      if (!built.ok()) return;
      GoodRadiusOptions scratch = opts;
      scratch.shared_counts = &*built;
      Rng reb_rng(77 + b);
      reference = GoodRadius(reb_rng, *fresh, t, scratch);
    });
    // The amortization claim only counts if both pipelines released the
    // same bytes — a cheap bit-identity audit on top of streaming_test's.
    all_ok = all_ok && incremental.ok() && reference.ok() &&
             incremental->radius == reference->radius &&
             incremental->grid_index == reference->grid_index &&
             incremental->gamma == reference->gamma;
  }
  out.invalidated_mean = invalidated_total / static_cast<double>(batches);

  // The stream layer's compaction heuristic: expire until live/total drops
  // under 1/4, then fold the arena. One O(n) rebuild amortized over >= 3n/4
  // expiries.
  const std::size_t keep = live.size() / 4;
  const auto active = live.ActiveIds();
  const std::vector<std::uint32_t> doomed(active.begin(),
                                          active.end() - static_cast<std::ptrdiff_t>(keep));
  live.Remove(doomed);
  out.compact_ms = bench::TimeMs([&] { live.Compact(); });
  out.ok = all_ok;
  return out;
}

// --------------------------------------------------------------- --smoke ---

double BestOfThreeRadiusMs(std::size_t n, std::size_t t, std::size_t d,
                           ProfileIndex profile_index) {
  Rng data_rng(41);
  PlantedClusterSpec spec;
  spec.n = n;
  spec.t = t;
  spec.dim = d;
  spec.levels = 1u << 12;
  spec.cluster_radius = 0.01;
  const ClusterWorkload w = MakePlantedCluster(data_rng, spec);
  GoodRadiusOptions opts;
  opts.params = {8.0, 1e-9};
  opts.beta = 0.1;
  opts.profile_index = profile_index;
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    Rng rng(7);  // Same seed per rep: identical work, timing noise only.
    Result<GoodRadiusResult> result = Status::Internal("unset");
    best = std::min(best, bench::TimeMs([&] {
      result = GoodRadius(rng, w.points, w.t, w.domain, opts);
    }));
    if (!result.ok()) return -1.0;
  }
  return best;
}

double BestOfThreeCenterMs(std::size_t num_threads) {
  Rng data_rng(42);
  PlantedClusterSpec spec;
  spec.n = 4096;
  spec.t = 2048;
  spec.dim = 32;
  spec.levels = 1u << 12;
  spec.cluster_radius = 0.01;
  const ClusterWorkload w = MakePlantedCluster(data_rng, spec);
  GoodCenterOptions opts;
  opts.params = {32.0, 1e-9};
  opts.beta = 0.1;
  opts.num_threads = num_threads;
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    Rng rng(9);  // Same seed per rep and thread count: identical rounds.
    Result<GoodCenterResult> result = Status::Internal("unset");
    best = std::min(best, bench::TimeMs([&] {
      result = GoodCenter(rng, w.points, w.t, 0.05, opts);
    }));
    if (!result.ok()) return -1.0;
  }
  return best;
}

// Full GoodRadius + GoodCenter pipeline wall time at (n=4096, t=512, dim=d),
// auto profile/geometry — the high-dimension smoke measurement. t = n/8 and
// eps = 64 keep GoodCenter comfortably above its histogram-suppression
// threshold at d = 64 (at t = 256 the released radius sits right on the
// success boundary and the gate would flake).
double BestOfTwoPipelineMs(std::size_t d) {
  Rng data_rng(43);
  PlantedClusterSpec spec;
  spec.n = 4096;
  spec.t = 512;
  spec.dim = d;
  spec.levels = 1u << 12;
  spec.cluster_radius = 0.01;
  const ClusterWorkload w = MakePlantedCluster(data_rng, spec);
  GoodRadiusOptions radius_opts;
  radius_opts.params = {64.0, 1e-9};
  radius_opts.beta = 0.1;
  GoodCenterOptions center_opts;
  // eps = 64: the smallest power-of-two budget where GoodCenter's stable
  // histograms clear their suppression threshold at d = 64, t = 256.
  center_opts.params = {64.0, 1e-9};
  center_opts.beta = 0.1;
  double best = 1e300;
  for (int rep = 0; rep < 2; ++rep) {
    Rng rng(11);  // Same seed per rep: identical work, timing noise only.
    Result<GoodRadiusResult> radius = Status::Internal("unset");
    Result<GoodCenterResult> center = Status::Internal("unset");
    const double ms = bench::TimeMs([&] {
      radius = GoodRadius(rng, w.points, w.t, w.domain, radius_opts);
      const double r = radius.ok() ? std::max(radius->radius, 0.005) : 0.05;
      center = GoodCenter(rng, w.points, w.t, r, center_opts);
    });
    if (!radius.ok() || !center.ok()) return -1.0;
    best = std::min(best, ms);
  }
  return best;
}

// GoodRadius end-to-end through the coreset stage (compression + weighted
// pipeline) at (n, t=n/16, d=2). Returns wall ms or -1 on failure.
double CoresetRadiusMs(std::size_t n, bool coreset) {
  Rng data_rng(47);
  PlantedClusterSpec spec;
  spec.n = n;
  spec.t = n / 16;
  spec.dim = 2;
  spec.levels = 1u << 12;
  spec.cluster_radius = 0.01;
  const ClusterWorkload w = MakePlantedCluster(data_rng, spec);
  GoodRadiusOptions opts;
  opts.params = {8.0, 1e-9};
  opts.beta = 0.1;
  opts.num_threads = 0;
  opts.coreset.enabled = coreset;
  opts.coreset.min_points = 1u << 16;
  // The uncompressed reference must lift the profile cap to run at all;
  // the coreset path never needs it (the summary is far below the cap).
  if (!coreset) opts.max_profile_points = n;
  Rng rng(13);
  Result<GoodRadiusResult> result = Status::Internal("unset");
  const double ms = bench::TimeMs(
      [&] { result = GoodRadius(rng, w.points, w.t, w.domain, opts); });
  return result.ok() ? ms : -1.0;
}

int RunSmoke() {
  int failures = 0;

  // GoodRadius regression floor at n=2048, t=n/16, d=2. The frozen pre-PR
  // exact sweep measured ~345e6 ns here (BENCH_scaling.baseline.json); the
  // grid-indexed profile runs it in ~25-40e6. The floors are deliberately
  // loose (CI machines vary) while still catching a fallback to quadratic.
  const double grid_ms = BestOfThreeRadiusMs(2048, 128, 2, ProfileIndex::kGrid);
  const double exact_ms =
      BestOfThreeRadiusMs(2048, 128, 2, ProfileIndex::kExact);
  constexpr double kRadiusFloorMs = 150.0;
  constexpr double kRadiusSpeedupFloor = 3.0;
  const bool radius_ok = grid_ms > 0.0 && exact_ms > 0.0 &&
                         grid_ms < kRadiusFloorMs &&
                         exact_ms / grid_ms >= kRadiusSpeedupFloor;
  std::printf(
      "smoke: GoodRadius n=2048 t=128 d=2: grid %.1fms (floor %.0fms), "
      "exact/grid %.2fx (floor %.1fx) -> %s\n",
      grid_ms, kRadiusFloorMs, exact_ms / grid_ms, kRadiusSpeedupFloor,
      radius_ok ? "OK" : "FAIL");
  failures += radius_ok ? 0 : 1;

  // GoodCenter thread floor: with the ParallelFor minimum-grain cutoff,
  // threads=4 runs the same serial regions as threads=1 at this size, so it
  // must not be slower (1.3x margin for timer and scheduler noise).
  const double t1_ms = BestOfThreeCenterMs(1);
  const double t4_ms = BestOfThreeCenterMs(4);
  const bool center_ok = t1_ms > 0.0 && t4_ms > 0.0 && t4_ms <= 1.3 * t1_ms;
  std::printf(
      "smoke: GoodCenter n=4096 d=32: threads=1 %.1fms, threads=4 %.1fms "
      "(floor: t4 <= 1.3 * t1) -> %s\n",
      t1_ms, t4_ms, center_ok ? "OK" : "FAIL");
  failures += center_ok ? 0 : 1;

  // High-dimension floor: with the blocked dense one-cell scan the full
  // GoodRadius + GoodCenter pipeline at d=64 stays within ~2x of the d=8
  // wall time (the pre-PR degenerate grid re-streamed the dataset per query
  // and ran ~5x slower). 2.5x margin absorbs CI machine noise on top of the
  // ~2x ROADMAP target while still catching a fallback to the naive scan.
  const double d8_ms = BestOfTwoPipelineMs(8);
  const double d64_ms = BestOfTwoPipelineMs(64);
  constexpr double kHighDimRatioFloor = 2.5;
  const bool highdim_ok = d8_ms > 0.0 && d64_ms > 0.0 &&
                          d64_ms <= kHighDimRatioFloor * d8_ms;
  std::printf(
      "smoke: pipeline n=4096 t=512: d=8 %.1fms, d=64 %.1fms "
      "(floor: d64 <= %.1f * d8) -> %s\n",
      d8_ms, d64_ms, kHighDimRatioFloor, highdim_ok ? "OK" : "FAIL");
  failures += highdim_ok ? 0 : 1;

  // Coreset floor: end-to-end GoodRadius at n=2^20 through the weighted
  // k-center summary. The uncompressed reference is measured at n=2^14 and
  // extrapolated by the grid profile's ~O(n t) growth with t = n/16 (factor
  // (2^20 * 2^16) / (2^14 * 2^10) = 4096x — conservative: the large-n run
  // would also lose cache locality). The ISSUE acceptance bar is >= 20x
  // faster than that extrapolation; the absolute floor catches the coreset
  // build itself degenerating to quadratic.
  const double small_ms = CoresetRadiusMs(std::size_t{1} << 14, false);
  const double coreset_ms = CoresetRadiusMs(std::size_t{1} << 20, true);
  const double extrapolated_ms = small_ms * 4096.0;
  constexpr double kCoresetFloorMs = 60000.0;
  constexpr double kCoresetSpeedupFloor = 20.0;
  const bool coreset_ok = small_ms > 0.0 && coreset_ms > 0.0 &&
                          coreset_ms < kCoresetFloorMs &&
                          extrapolated_ms / coreset_ms >= kCoresetSpeedupFloor;
  std::printf(
      "smoke: GoodRadius n=2^20 t=n/16 d=2 via coreset: %.1fms (floor "
      "%.0fms), extrapolated uncompressed %.0fms -> %.0fx (floor %.0fx) -> "
      "%s\n",
      coreset_ms, kCoresetFloorMs, extrapolated_ms,
      coreset_ms > 0.0 ? extrapolated_ms / coreset_ms : 0.0,
      kCoresetSpeedupFloor, coreset_ok ? "OK" : "FAIL");
  failures += coreset_ok ? 0 : 1;

  // Memory floor: the runs above (the n=2^20 coreset build — raw points +
  // dedup map + grid + summary — and the n=2^14 uncompressed reference's
  // event stream) are this process' peak allocations; the measured
  // high-water mark must stay within the floor, pinning the "measured, not
  // estimated" memory claim.
  const std::size_t rss = bench::PeakRssBytes();
  constexpr std::size_t kCoresetRssFloor = std::size_t{1} << 30;  // 1 GiB
  const bool rss_ok = rss > 0 && rss < kCoresetRssFloor;
  std::printf(
      "smoke: peak RSS after n=2^20 coreset run: %.1f MB (floor %.0f MB) -> "
      "%s\n",
      static_cast<double>(rss) / 1e6,
      static_cast<double>(kCoresetRssFloor) / 1e6, rss_ok ? "OK" : "FAIL");
  failures += rss_ok ? 0 : 1;

  // Streaming floor (ISSUE 10 acceptance): at n = 2^18, the amortized
  // per-batch cost of (insert batch + GoodRadius query) through the
  // incrementally maintained index + shared t-NN rows must beat the
  // rebuild-per-batch pipeline by >= 5x, with both sides releasing
  // bit-identical bytes per batch.
  const StreamingPoint stream = RunStreamingMaintenance(
      std::size_t{1} << 18, /*t=*/256, /*batches=*/4, /*batch_size=*/64);
  constexpr double kStreamSpeedupFloor = 5.0;
  const bool stream_ok = stream.ok && stream.speedup() >= kStreamSpeedupFloor;
  std::printf(
      "smoke: streaming n=2^18 t=256, 4 batches of 64 (+16 expiries each): "
      "incremental %.1fms (mutate %.1f + patch %.1f + query %.1f), "
      "rebuild-per-batch %.1fms -> %.1fx (floor %.0fx), mean invalidated "
      "rows %.0f, compact %.1fms -> %s\n",
      stream.incremental_ms(), stream.mutate_ms, stream.apply_ms,
      stream.query_ms, stream.rebuild_ms, stream.speedup(),
      kStreamSpeedupFloor, stream.invalidated_mean, stream.compact_ms,
      stream_ok ? "OK" : "FAIL");
  failures += stream_ok ? 0 : 1;

  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace dpcluster

int main(int argc, char** argv) {
  using namespace dpcluster;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return RunSmoke();
  }
  Rng rng(41);
  bench::JsonReporter reporter("BENCH_scaling.json");

  bench::Banner("Runtime scaling, n sweep (d=2, |X|=2^12, t=n/2, eps=8)");
  {
    TextTable table(kHeader);
    for (std::size_t n : {512u, 1024u, 2048u, 4096u}) {
      RunConfig(table, reporter, rng, n, 2, 1u << 12);
    }
    table.Print();
    bench::Note("Expected: GoodRadius ~ n^2 at t=n/2 (pruning saves < 2x"
                " there, so auto keeps the exact profile), GoodCenter"
                " near-linear in n.");
  }

  bench::Banner("Subquadratic radius profile (n=4096, t=n/16, |X|=2^12)");
  {
    TextTable table(kHeader);
    for (std::size_t d : {2u, 8u}) {
      ConfigOptions grid;
      grid.eps = d >= 8 ? 32.0 : 8.0;
      grid.t_divisor = 16;
      grid.op_suffix = "/t16";
      RunConfig(table, reporter, rng, 4096, d, 1u << 12, grid);
      ConfigOptions exact = grid;
      exact.op_suffix = "/t16-exact";
      exact.profile_index = ProfileIndex::kExact;
      RunConfig(table, reporter, rng, 4096, d, 1u << 12, exact);
    }
    table.Print();
    bench::Note("Row pairs: auto (grid-indexed t-NN profile) vs forced exact"
                " sweep on the same workload. The paper's t << n regime is"
                " where the ~O(n t) profile wins; outputs are bit-identical"
                " (determinism_test).");
  }

  bench::Banner(
      "High dimension: original-d grid vs JL-projected index vs exact sweep "
      "(n=4096, t=n/16, |X|=2^12, eps=64)");
  {
    TextTable table(kHeader);
    for (std::size_t d : {8u, 16u, 32u, 64u}) {
      ConfigOptions grid;
      grid.eps = 64.0;
      grid.t_divisor = 16;
      grid.profile_index = ProfileIndex::kGrid;
      grid.index_geometry = IndexGeometry::kExact;
      grid.op_suffix = "/hd-grid";
      RunConfig(table, reporter, rng, 4096, d, 1u << 12, grid);
      ConfigOptions proj = grid;
      proj.index_geometry = IndexGeometry::kProjected;
      proj.op_suffix = "/hd-proj";
      RunConfig(table, reporter, rng, 4096, d, 1u << 12, proj);
      ConfigOptions exact = grid;
      exact.profile_index = ProfileIndex::kExact;
      exact.index_geometry = IndexGeometry::kAuto;
      exact.op_suffix = "/hd-exact";
      RunConfig(table, reporter, rng, 4096, d, 1u << 12, exact);
    }
    table.Print();
    bench::Note("Row triplets per d: the original-d cell grid (one occupied"
                " cell once 3^d rings outgrow n — batched queries then run"
                " the blocked dense scan; this is what auto picks), the"
                " JL-projected candidate index (grid over a low-d orthonormal"
                " projection + exact re-check; lossless, opt-in — the dense"
                " scan beat it on every workload measured here), and the"
                " forced all-pairs sweep. Outputs are bit-identical across"
                " all three columns (projected_index_test).");
  }

  bench::Banner(
      "KCluster end-to-end (n=4096, 8-cluster mixture, d=16, k=8, |X|=2^12,"
      " eps=64): per-round JL draw vs the per-dataset cached projection");
  {
    TextTable table({"variant", "ms", "rounds"});
    Rng data_rng(4321);
    // d = 16: the highest dimension where the per-round budget (eps / k
    // across 8 rounds) still clears GoodCenter's histogram thresholds, so
    // the bench measures found clusters rather than 8 suppressed rounds.
    const ClusterWorkload w =
        MakeGaussianMixture(data_rng, 4096, 8, 16, 1u << 12, 0.02, 0.1);
    for (const bool cached : {false, true}) {
      KClusterOptions options;
      options.params = {64.0, 1e-9};
      options.beta = 0.2;
      options.k = 8;
      if (cached) options.one_cluster.center.projection_seed = 99;
      Rng rng_run(4331);
      Result<KClusterResult> run = Status::Internal("unset");
      const double ms = bench::TimeMs(
          [&] { run = KCluster(rng_run, w.points, w.domain, options); });
      const char* variant = cached ? "cached projection" : "per-round JL";
      reporter.Add(cached ? "KClusterK8/cached-jl" : "KClusterK8",
                   w.points.size(), w.points.dim(), 1, ms * 1e6);
      table.AddRow({variant, TextTable::Fmt(ms, 1),
                    run.ok() ? TextTable::FmtInt(
                                   static_cast<long long>(run->rounds.size()))
                             : "-"});
    }
    table.Print();
    bench::Note("Both variants run the incremental shared-index path (span"
                " GoodCenter, exact geometry via auto). The cached"
                " variant reuses one ProjectionCache GEMM across the k"
                " rounds (data-independent randomness, privacy unaffected;"
                " released bytes differ from the per-round-draw reference).");
  }

  bench::Banner(
      "SparseVector engine structure (t=n/16): O(n t) KnnCappedCounts vs the "
      "removed n x n PairwiseDistances matrix");
  {
    TextTable table({"n", "t", "d", "counts ms", "counts MB", "matrix ms",
                     "matrix MB"});
    for (std::size_t n : {2048u, 4096u}) {
      const std::size_t t = n / 16;
      PlantedClusterSpec spec;
      spec.n = n;
      spec.t = t;
      spec.dim = 2;
      spec.levels = 1u << 12;
      spec.cluster_radius = 0.01;
      const ClusterWorkload w = MakePlantedCluster(rng, spec);

      Result<IndexedDataset> index =
          IndexedDataset::Create(w.points, w.domain);
      if (!index.ok()) continue;
      Result<KnnCappedCounts> counts = Status::Internal("unset");
      const double counts_ms = bench::TimeMs(
          [&] { counts = KnnCappedCounts::Build(*index, t, n); });
      Result<PairwiseDistances> matrix = Status::Internal("unset");
      const double matrix_ms = bench::TimeMs(
          [&] { matrix = PairwiseDistances::Compute(w.points, n); });
      if (!counts.ok() || !matrix.ok()) continue;
      const std::size_t counts_bytes = counts->MemoryBytes();
      const std::size_t matrix_bytes = n * n * sizeof(float);
      // The bytes column pins the matrix removal: the engine now allocates
      // counts_bytes where it used to allocate matrix_bytes.
      reporter.Add("SparseVectorCounts/t16", n, 2, 1, counts_ms * 1e6,
                   counts_bytes);
      reporter.Add("SparseVectorMatrix[removed-baseline]/t16", n, 2, 1,
                   matrix_ms * 1e6, matrix_bytes);
      table.AddRow({TextTable::FmtInt(static_cast<long long>(n)),
                    TextTable::FmtInt(static_cast<long long>(t)),
                    TextTable::FmtInt(2),
                    TextTable::Fmt(counts_ms, 1),
                    TextTable::Fmt(static_cast<double>(counts_bytes) / 1e6, 1),
                    TextTable::Fmt(matrix_ms, 1),
                    TextTable::Fmt(static_cast<double>(matrix_bytes) / 1e6, 1)});
    }
    table.Print();
    bench::Note("The footnote-2 SparseVector engine now answers its ~log|X|"
                " radius queries from the t-NN count rows; the quadratic"
                " matrix survives only as this bench's reference column.");
  }

  bench::Banner("Runtime scaling, d sweep (n=2048, |X|=2^12)");
  {
    TextTable table(kHeader);
    // Larger d needs a larger budget for the per-axis histograms; this sweep
    // is about runtime, so give it eps=32.
    for (std::size_t d : {2u, 8u, 32u, 64u}) {
      ConfigOptions cfg;
      cfg.eps = 32.0;
      // The n sweep already owns the (op, 2048, 2, 1) key at eps=8; suffix
      // this sweep's eps=32 anchor so the dedup keeps both.
      if (d == 2) cfg.op_suffix = "/eps32";
      RunConfig(table, reporter, rng, 2048, d, 1u << 12, cfg);
    }
    table.Print();
    bench::Note("Expected: polynomial in d (distance computations + the d x d"
                " random rotation).");
  }

  bench::Banner("Runtime scaling, |X| sweep (n=2048, d=2)");
  {
    TextTable table(kHeader);
    for (int lx : {8, 12, 16, 20}) {
      ConfigOptions cfg;
      cfg.op_suffix = "/lx" + std::to_string(lx);
      RunConfig(table, reporter, rng, 2048, 2, std::uint64_t{1} << lx, cfg);
    }
    table.Print();
    bench::Note("Expected: only logarithmic growth in |X| (the radius grid is"
                " handled through the piecewise-constant profile, never"
                " enumerated).");
  }

  bench::Banner("Thread scaling (n=4096, d=32, |X|=2^12, eps=32)");
  {
    TextTable table(kHeader);
    RunThreadSweep(table, reporter, 4096, 32, 1u << 12, 32.0);
    table.Print();
    bench::Note("Released outputs are bit-identical at every thread count"
                " (see determinism_test); only the wall clock moves. Small"
                " regions stay serial under the ParallelFor minimum-grain"
                " cutoff, so extra threads never cost wall clock.");
  }

  bench::Banner(
      "Coreset scaling (d=2, |X|=2^12, t=n/16, eps=8, target=2048): "
      "k-center summary build + weighted GoodRadius/KCluster");
  {
    TextTable table({"n", "t", "m", "build ms", "GoodRadius ms",
                     "KCluster ms", "peak RSS MB"});
    for (int lg : {17, 18, 19, 20}) {
      const std::size_t n = std::size_t{1} << lg;
      Rng data_rng(47);
      PlantedClusterSpec spec;
      spec.n = n;
      spec.t = n / 16;
      spec.dim = 2;
      spec.levels = 1u << 12;
      spec.cluster_radius = 0.01;
      const ClusterWorkload w = MakePlantedCluster(data_rng, spec);

      CoresetOptions copts;
      copts.enabled = true;
      copts.min_points = 1;
      ThreadPool pool(0);
      Result<CoresetSummary> summary = Status::Internal("unset");
      const double build_ms = bench::TimeMs(
          [&] { summary = BuildCoreset(w.points, w.domain, copts, &pool); });
      if (!summary.ok()) continue;
      const std::size_t m = summary->points.size();

      auto index = MakeWeightedIndex(std::move(*summary), w.domain);
      if (!index.ok()) continue;
      GoodRadiusOptions radius_opts;
      radius_opts.params = {8.0, 1e-9};
      radius_opts.beta = 0.1;
      radius_opts.num_threads = 0;
      Rng radius_rng(13);
      Result<GoodRadiusResult> radius = Status::Internal("unset");
      const double radius_ms = bench::TimeMs(
          [&] { radius = GoodRadius(radius_rng, *index, w.t, radius_opts); });

      KClusterOptions kopts;
      kopts.params = {64.0, 1e-9};
      kopts.beta = 0.2;
      kopts.k = 4;
      kopts.num_threads = 0;
      kopts.coreset.enabled = true;  // compresses inside KCluster itself
      Rng k_rng(17);
      Result<KClusterResult> kc = Status::Internal("unset");
      const double k_ms = bench::TimeMs(
          [&] { kc = KCluster(k_rng, w.points, w.domain, kopts); });

      // Peak RSS is a process-wide high-water mark: rows are ascending in n,
      // so each row's value is dominated by its own (largest-so-far) run.
      const std::size_t rss = bench::PeakRssBytes();
      const std::size_t threads = pool.num_threads();
      reporter.Add("CoresetBuild", n, 2, threads, build_ms * 1e6, rss);
      if (radius.ok()) {
        reporter.Add("GoodRadiusCoreset/t16", n, 2, threads, radius_ms * 1e6);
      }
      if (kc.ok()) {
        reporter.Add("KClusterCoresetK4", n, 2, threads, k_ms * 1e6);
      }
      table.AddRow({TextTable::FmtInt(static_cast<long long>(n)),
                    TextTable::FmtInt(static_cast<long long>(w.t)),
                    TextTable::FmtInt(static_cast<long long>(m)),
                    TextTable::Fmt(build_ms, 1),
                    radius.ok() ? TextTable::Fmt(radius_ms, 1) : "-",
                    kc.ok() ? TextTable::Fmt(k_ms, 1) : "-",
                    TextTable::Fmt(static_cast<double>(rss) / 1e6, 1)});
    }
    table.Print();
    bench::Note("The build collapses n rows to m = target_size weighted rows"
                " (greedy farthest-point over the deduplicated set, grid-"
                " pruned relaxations); the DP stages then run at summary"
                " size, so end-to-end wall time is the build plus a constant."
                " Outputs are bit-identical at any thread count"
                " (coreset_test); accuracy moves by at most the summary's"
                " coverage radius (eval_harness --coreset gate).");
  }

  bench::Banner(
      "Streaming maintenance (d=2, |X|=2^12, t=256, 4 batches of 64 "
      "arrivals + 16 expiries): incremental Insert/Remove + ApplyBatch + "
      "query vs rebuild-per-batch");
  {
    TextTable table({"n", "mutate ms", "patch ms", "inval rows", "query ms",
                     "rebuild ms", "speedup", "compact ms"});
    for (int lg : {14, 16, 18}) {
      const std::size_t n = std::size_t{1} << lg;
      const StreamingPoint p =
          RunStreamingMaintenance(n, 256, /*batches=*/4, /*batch_size=*/64);
      if (!p.ok) continue;
      reporter.Add("StreamIncremental/t256", n, 2, 1,
                   p.incremental_ms() * 1e6);
      reporter.Add("StreamRebuildPerBatch/t256", n, 2, 1,
                   p.rebuild_ms * 1e6);
      reporter.Add("StreamApplyBatch/t256", n, 2, 1, p.apply_ms * 1e6);
      reporter.Add("StreamCompact", n, 2, 1, p.compact_ms * 1e6);
      table.AddRow({TextTable::FmtInt(static_cast<long long>(n)),
                    TextTable::Fmt(p.mutate_ms, 2),
                    TextTable::Fmt(p.apply_ms, 2),
                    TextTable::Fmt(p.invalidated_mean, 0),
                    TextTable::Fmt(p.query_ms, 1),
                    TextTable::Fmt(p.rebuild_ms, 1),
                    TextTable::Fmt(p.speedup(), 1),
                    TextTable::Fmt(p.compact_ms, 1)});
    }
    table.Print();
    bench::Note("Four columns are the incremental pipeline's per-run totals"
                " (4 batches): amortized-O(1) Inserts into the live grid,"
                " reverse-neighbor ApplyBatch patches of the shared t-NN"
                " rows ('inval rows' = mean pre-existing rows recomputed per"
                " batch — the selectivity the grid sweep buys), and the"
                " GoodRadius queries served from the patched rows. 'rebuild'"
                " is the pre-stream reference: fresh index + fresh rows +"
                " query, per batch. Released bytes are bit-identical on both"
                " sides (audited per batch; streaming_test pins it)."
                " 'compact' is one live/total < 1/4 arena fold.");
  }

  reporter.Write();
  return 0;
}
