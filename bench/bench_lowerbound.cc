// E11 — Section 5 (Theorem 5.3 / Corollary 5.4): solving the interior-point
// problem via the 1-cluster solver, and the finite-domain necessity. The
// paper proves n must grow with log*|X|; in this build the radius stage's
// Gamma grows with log|X| (DESIGN.md substitution #1), so for a FIXED n the
// 1-cluster guarantee — and with it the reduction — degrades as |X| explodes,
// which is the measurable face of "impossible over infinite domains".

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "dpcluster/core/good_radius.h"
#include "dpcluster/core/interior_point.h"
#include "dpcluster/workload/table.h"

namespace dpcluster {
namespace {

constexpr int kTrials = 10;
constexpr std::size_t kM = 1000;

}  // namespace
}  // namespace dpcluster

int main() {
  using namespace dpcluster;
  Rng rng(37);

  bench::Banner(
      "Theorem 5.3 / IntPoint: interior point via 1-cluster (m=1000, eps=4 "
      "per component => (8, 2e-8)-DP total)");
  TextTable table({"|X|", "success %", "Gamma of inner radius stage",
                   "candidates |J|"});
  for (int log_levels : {8, 12, 16, 20, 24, 28, 32}) {
    const GridDomain domain(std::uint64_t{1} << log_levels, 1);
    int success = 0;
    double candidates = 0.0;
    for (int trial = 0; trial < kTrials; ++trial) {
      std::vector<double> data(kM);
      for (double& x : data) x = domain.Snap(0.2 + 0.6 * rng.NextDouble());
      const double lo = *std::min_element(data.begin(), data.end());
      const double hi = *std::max_element(data.begin(), data.end());

      InteriorPointOptions options;
      options.params = {4.0, 1e-8};
      options.beta = 0.1;
      auto result = InteriorPoint(rng, data, domain, options);
      if (result.ok() && result->point >= lo && result->point <= hi) {
        ++success;
        candidates += static_cast<double>(result->candidates);
      }
    }
    GoodRadiusOptions radius_opts;
    radius_opts.params = {2.0, 5e-9};  // The inner 1-cluster radius share.
    radius_opts.beta = 0.05;
    const double gamma = GoodRadiusGamma(domain, radius_opts);
    table.AddRow({"2^" + std::to_string(log_levels),
                  TextTable::Fmt(100.0 * success / kTrials, 1),
                  TextTable::Fmt(gamma, 1),
                  success > 0 ? TextTable::Fmt(candidates / success, 0) : "-"});
  }
  table.Print();
  bench::Note(
      "\nExpected shape (Cor 5.4): the reduction solves interior point as"
      "\nlong as the inner 1-cluster instance is feasible; the loss term"
      "\n(Gamma) grows with the domain size, so for fixed n the mechanism"
      "\nmust eventually fail as |X| -> infinity — the paper proves no"
      "\nprivate algorithm can escape this (n >= Omega(log*|X|)).");
  return 0;
}
