// Service daemon throughput: the full stack (HTTP/1.1 over loopback ->
// bounded admission queue -> ThreadPool drain -> ClusterService ->
// Solver) under mixed multi-tenant traffic, swept over worker counts.
//
// Traffic mix (per client, round-robin): one_cluster on a planted 2-d
// cluster, noisy_mean_baseline, nonprivate, interior_point on 1-d data,
// and exp_mech_baseline on a coarse grid. Each client is its own tenant
// with its own dataset key, so the run exercises the per-(tenant, dataset)
// ledgers and the keyed index cache concurrently. Budgets are set huge so
// no request is budget-rejected — rejection behavior is service_test's
// job; this harness measures throughput.
//
// `--smoke` runs the perf regression gate instead (exit 1 on a miss). The
// scaling floor is HARDWARE-AWARE: the ThreadPool caps workers at the core
// count, so the 8-worker/1-worker throughput ratio physically cannot reach
// 4x on fewer than 8 cores. The floor is
//     cores >= 8:  4.0x
//     cores >= 2:  0.45 * min(8, cores)
//     cores == 1:  0.80x (no-regression: queueing must not cost throughput)
// and every reply in the sweep must be HTTP 200. BENCH_service.json records
// the measured requests/second per worker count plus a "service/cores" row,
// so the floor context travels with the numbers (see docs/OPERATIONS.md).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "dpcluster/random/rng.h"
#include "dpcluster/service/http_client.h"
#include "dpcluster/service/http_server.h"
#include "dpcluster/service/json.h"
#include "dpcluster/service/protocol.h"
#include "dpcluster/service/service.h"
#include "dpcluster/workload/synthetic.h"

namespace dpcluster {
namespace {

constexpr std::size_t kClients = 8;

/// Pre-encoded wire bodies for one client (its own tenant + dataset key).
std::vector<std::string> ClientBodies(std::uint64_t client) {
  Rng rng(1000 + client);
  std::vector<std::string> bodies;

  PlantedClusterSpec spec;
  spec.n = 512;
  spec.t = 192;
  spec.dim = 2;
  spec.levels = 1u << 10;
  spec.cluster_radius = 0.02;
  const ClusterWorkload cluster = MakePlantedCluster(rng, spec);
  // interior_point solves 1-cluster on a middle sub-database of n/2 points;
  // it needs the larger 1-d instance to stay reliably answerable at eps=8.
  PlantedClusterSpec line;
  line.n = 1200;
  line.t = 700;
  line.dim = 1;
  line.levels = 1u << 10;
  line.cluster_radius = 0.015;
  const ClusterWorkload interior = MakePlantedCluster(rng, line);
  // exp_mech_baseline enumerates all |X|^d grid centers; keep it under the
  // documented center cap with a coarse 2-d universe.
  PlantedClusterSpec coarse = spec;
  coarse.levels = 1u << 5;
  const ClusterWorkload coarse2d = MakePlantedCluster(rng, coarse);

  const std::string tenant = "tenant" + std::to_string(client);
  const auto encode = [&](const ClusterWorkload& w,
                          const std::string& algorithm,
                          const std::string& dataset_suffix) {
    WireRequest wire;
    wire.tenant = tenant;
    wire.dataset = tenant + "/" + dataset_suffix;
    wire.seed = 77 + client;
    wire.request.algorithm = algorithm;
    wire.request.data = w.points;
    wire.request.domain = w.domain;
    wire.request.t = w.t;
    wire.request.budget = {8.0, 1e-9};
    bodies.push_back(WireRequestToJson(wire).Encode());
  };
  encode(cluster, "one_cluster", "planted2d");
  encode(cluster, "noisy_mean_baseline", "planted2d");
  encode(cluster, "nonprivate", "planted2d");
  encode(interior, "interior_point", "line1d");
  encode(coarse2d, "exp_mech_baseline", "coarse2d");
  return bodies;
}

struct SweepPoint {
  std::size_t workers = 0;
  double requests_per_s = 0.0;
  bool all_ok = true;
};

/// Serves kClients concurrent clients, `per_client` requests each, against
/// a fresh daemon with `workers` drain loops; returns the measured rate.
SweepPoint RunSweep(std::size_t workers, std::size_t per_client,
                    const std::vector<std::vector<std::string>>& bodies) {
  ServiceOptions service_options;
  service_options.default_budget = {1e9, 0.5};  // Never budget-reject here.
  service_options.diagnostics = false;
  ClusterService service(service_options);
  HttpServerOptions http_options;
  http_options.workers = workers;
  http_options.queue_depth = 256;
  HttpServer server(&service, http_options);
  if (Status status = server.Start(); !status.ok()) {
    std::fprintf(stderr, "bench_service: %s\n",
                 std::string(status.message()).c_str());
    return {workers, 0.0, false};
  }

  std::atomic<bool> all_ok{true};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (std::size_t i = 0; i < per_client; ++i) {
        const std::string& body = bodies[c][i % bodies[c].size()];
        const auto reply = HttpPost(server.port(), "/v1/solve", body);
        if (!reply.ok() || reply->status != 200) {
          if (!all_ok.exchange(false, std::memory_order_relaxed)) continue;
          if (!reply.ok()) {
            std::fprintf(stderr, "  client %zu request %zu: transport: %s\n",
                         c, i, std::string(reply.status().message()).c_str());
          } else {
            std::fprintf(stderr, "  client %zu request %zu: HTTP %d: %.160s\n",
                         c, i, reply->status, reply->body.c_str());
          }
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  server.Stop();
  const double total = static_cast<double>(kClients * per_client);
  return {workers, total / seconds, all_ok.load()};
}

std::vector<SweepPoint> RunAll(std::size_t per_client) {
  std::vector<std::vector<std::string>> bodies;
  for (std::size_t c = 0; c < kClients; ++c) {
    bodies.push_back(ClientBodies(c));
  }
  std::vector<SweepPoint> points;
  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    points.push_back(RunSweep(workers, per_client, bodies));
    std::printf("  workers=%zu: %7.1f req/s%s\n", points.back().workers,
                points.back().requests_per_s,
                points.back().all_ok ? "" : "  [non-200 replies!]");
  }
  return points;
}

/// One-shot vs kept-alive transport cost on the same daemon. The request is
/// GET /healthz — cheap enough that the TCP handshake dominates, so the
/// ratio isolates what connection reuse buys a chatty client (a streaming
/// ingester appending small batches is exactly that shape).
struct ReusePoint {
  double oneshot_rps = 0.0;
  double reuse_rps = 0.0;
  std::uint64_t reused = 0;       ///< Server-counted kept-alive requests.
  std::uint64_t reconnects = 0;   ///< Client-side re-dials (cap/idle fired).
  bool all_ok = true;
};

ReusePoint RunReuse(std::size_t requests) {
  ClusterService service(ServiceOptions{});
  HttpServerOptions http_options;
  http_options.workers = 2;
  HttpServer server(&service, http_options);
  if (Status status = server.Start(); !status.ok()) {
    std::fprintf(stderr, "bench_service: %s\n",
                 std::string(status.message()).c_str());
    return {0.0, 0.0, 0, 0, false};
  }
  ReusePoint point;

  auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < requests; ++i) {
    const auto reply = HttpGet(server.port(), "/healthz");
    if (!reply.ok() || reply->status != 200) point.all_ok = false;
  }
  double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  point.oneshot_rps = static_cast<double>(requests) / seconds;

  HttpConnection connection(server.port());
  start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < requests; ++i) {
    const auto reply = connection.Get("/healthz");
    if (!reply.ok() || reply->status != 200) point.all_ok = false;
  }
  seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  point.reuse_rps = static_cast<double>(requests) / seconds;
  point.reconnects = connection.reconnects();
  point.reused = server.GetStats().reused;
  server.Stop();
  return point;
}

void Record(bench::JsonReporter& reporter,
            const std::vector<SweepPoint>& points) {
  const std::size_t cores = std::max(1u, std::thread::hardware_concurrency());
  reporter.Add("service/cores", cores, 0, 1, 0.0);
  for (const SweepPoint& p : points) {
    reporter.Add("service/mixed_traffic", kClients, 2, p.workers,
                 p.requests_per_s > 0.0 ? 1e9 / p.requests_per_s : 0.0);
  }
}

void RecordReuse(bench::JsonReporter& reporter, const ReusePoint& reuse) {
  reporter.Add("service/oneshot_healthz", 1, 0, 1,
               reuse.oneshot_rps > 0.0 ? 1e9 / reuse.oneshot_rps : 0.0);
  reporter.Add("service/keepalive_healthz", 1, 0, 1,
               reuse.reuse_rps > 0.0 ? 1e9 / reuse.reuse_rps : 0.0);
}

void PrintReuse(const ReusePoint& reuse) {
  std::printf(
      "  connection reuse: one-shot %7.1f req/s, kept-alive %7.1f req/s "
      "(%.2fx); server reused %llu, client re-dialed %llu%s\n",
      reuse.oneshot_rps, reuse.reuse_rps,
      reuse.oneshot_rps > 0.0 ? reuse.reuse_rps / reuse.oneshot_rps : 0.0,
      static_cast<unsigned long long>(reuse.reused),
      static_cast<unsigned long long>(reuse.reconnects),
      reuse.all_ok ? "" : "  [non-200 replies!]");
}

/// The hardware-aware 8-worker/1-worker scaling floor (see file banner).
double ScalingFloor(std::size_t cores) {
  if (cores >= 8) return 4.0;
  if (cores >= 2) return 0.45 * static_cast<double>(std::min<std::size_t>(8, cores));
  return 0.8;
}

int RunSmoke(const std::string& out_path) {
  bench::Banner("service daemon throughput smoke");
  const std::vector<SweepPoint> points = RunAll(/*per_client=*/6);
  const ReusePoint reuse = RunReuse(/*requests=*/64);
  PrintReuse(reuse);
  bench::JsonReporter reporter(out_path);
  Record(reporter, points);
  RecordReuse(reporter, reuse);
  reporter.Write();

  int failures = 0;
  // Functional (deterministic) keep-alive gates: every reply is 200, and
  // the server actually served request #2+ on reused connections. The
  // req/s ratio itself is not a floor — loopback handshakes are cheap
  // enough that the margin is machine-dependent.
  if (!reuse.all_ok) {
    std::printf("smoke: keep-alive section saw a non-200 reply -> FAIL\n");
    ++failures;
  }
  if (reuse.reused == 0) {
    std::printf("smoke: server never reused a connection -> FAIL\n");
    ++failures;
  }
  for (const SweepPoint& p : points) {
    if (!p.all_ok) {
      std::printf("smoke: workers=%zu saw a non-200 reply -> FAIL\n",
                  p.workers);
      ++failures;
    }
  }
  const std::size_t cores = std::max(1u, std::thread::hardware_concurrency());
  const double scaling = points.front().requests_per_s > 0.0
                             ? points.back().requests_per_s /
                                   points.front().requests_per_s
                             : 0.0;
  const double floor = ScalingFloor(cores);
  const bool scaling_ok = scaling >= floor;
  std::printf(
      "smoke: mixed traffic, %zu clients on %zu cores: 1 worker %.1f req/s, "
      "8 workers %.1f req/s, scaling %.2fx (hardware-aware floor %.2fx) -> "
      "%s\n",
      kClients, cores, points.front().requests_per_s,
      points.back().requests_per_s, scaling, floor, scaling_ok ? "OK" : "FAIL");
  failures += scaling_ok ? 0 : 1;
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace dpcluster

int main(int argc, char** argv) {
  using namespace dpcluster;
  std::string out = "BENCH_service.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out = argv[++i];
  }
  if (smoke) return RunSmoke(out);

  bench::Banner("service daemon throughput (mixed multi-tenant traffic)");
  const std::vector<SweepPoint> points = RunAll(/*per_client=*/12);
  const ReusePoint reuse = RunReuse(/*requests=*/512);
  PrintReuse(reuse);
  bench::JsonReporter reporter(out);
  Record(reporter, points);
  RecordReuse(reporter, reuse);
  reporter.Write();
  bench::Note(
      "\nEach of the 8 clients is its own tenant with its own dataset key;"
      "\nthe sweep exercises the admission queue, the per-tenant ledgers,"
      "\nand the keyed index cache concurrently. The ThreadPool hardware-"
      "\ncaps workers, so scaling saturates at the core count (the"
      "\n'service/cores' record pins the machine the numbers came from).");
  return 0;
}
