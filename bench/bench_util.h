// Shared helpers for the reproduction benchmark harness.

#ifndef DPCLUSTER_BENCH_BENCH_UTIL_H_
#define DPCLUSTER_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <string>

namespace dpcluster {
namespace bench {

/// Wall-clock milliseconds of a callable.
template <typename F>
double TimeMs(F&& f) {
  const auto start = std::chrono::steady_clock::now();
  f();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

/// Section banner in the harness output.
inline void Banner(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void Note(const std::string& text) {
  std::printf("%s\n", text.c_str());
}

}  // namespace bench
}  // namespace dpcluster

#endif  // DPCLUSTER_BENCH_BENCH_UTIL_H_
