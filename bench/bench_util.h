// Shared helpers for the reproduction benchmark harness.

#ifndef DPCLUSTER_BENCH_BENCH_UTIL_H_
#define DPCLUSTER_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>

#include "dpcluster/api/solver.h"

namespace dpcluster {
namespace bench {

/// Wall-clock milliseconds of a callable.
template <typename F>
double TimeMs(F&& f) {
  const auto start = std::chrono::steady_clock::now();
  f();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

/// Section banner in the harness output.
inline void Banner(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void Note(const std::string& text) {
  std::printf("%s\n", text.c_str());
}

/// Aggregate utility/timing stats of repeated Solver runs of one request —
/// the measured counterparts of the paper's (Delta, w) columns.
struct MethodStats {
  bool ran = false;
  double delta_mean = 0.0;  ///< mean max(0, t - captured)
  double w_eff_mean = 0.0;  ///< mean tight_radius / r_opt lower bound
  double ms_mean = 0.0;
  std::string note;         ///< error text of the last failing trial, if any
};

/// Runs `request` `trials` times through `solver` (each run gets a fresh RNG
/// stream from the solver) and averages the solver's utility diagnostics over
/// the successful trials. The request must leave diagnostics enabled and set
/// t, so the solver can score each response.
inline MethodStats RunTrials(Solver& solver, const Request& request,
                             int trials) {
  MethodStats stats;
  int ok_trials = 0;
  for (int trial = 0; trial < trials; ++trial) {
    const auto response = solver.Run(request);
    if (!response.ok()) {
      stats.note = response.status().ToString().substr(0, 48);
      continue;
    }
    if (!response->diagnostics.has_value()) {
      stats.note = "no diagnostics (enable SolverOptions::diagnostics, set t)";
      continue;
    }
    stats.delta_mean += std::max(0.0, response->diagnostics->delta);
    stats.w_eff_mean += response->diagnostics->w_effective;
    stats.ms_mean += response->wall_ms;
    ++ok_trials;
  }
  if (ok_trials > 0) {
    stats.ran = true;
    stats.delta_mean /= ok_trials;
    stats.w_eff_mean /= ok_trials;
    stats.ms_mean /= ok_trials;
  }
  return stats;
}

}  // namespace bench
}  // namespace dpcluster

#endif  // DPCLUSTER_BENCH_BENCH_UTIL_H_
