// Shared helpers for the reproduction benchmark harness.

#ifndef DPCLUSTER_BENCH_BENCH_UTIL_H_
#define DPCLUSTER_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdio>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "dpcluster/api/solver.h"

namespace dpcluster {
namespace bench {

/// One measured operation for the machine-readable perf log.
struct BenchRecord {
  std::string op;      ///< Operation name, e.g. "PairwiseDistances::Compute".
  std::size_t n = 0;   ///< Input rows.
  std::size_t d = 0;   ///< Input dimension.
  std::size_t threads = 1;
  double ns_per_op = 0.0;
  std::size_t bytes = 0;  ///< Structure memory, 0 = not measured (omitted).
};

/// Collects BenchRecords and writes them as a JSON array (BENCH_*.json), so
/// the perf trajectory stays machine-readable across PRs. Records survive a
/// failed Write (the file is rewritten atomically per call).
class JsonReporter {
 public:
  explicit JsonReporter(std::string path) : path_(std::move(path)) {}

  void Add(std::string op, std::size_t n, std::size_t d, std::size_t threads,
           double ns_per_op, std::size_t bytes = 0) {
    records_.push_back({std::move(op), n, d, threads, ns_per_op, bytes});
  }

  /// Writes all records deduplicated on the (op, n, d, threads) key — last
  /// write wins — and sorted by that key, so re-measured configurations never
  /// pile up as duplicate rows and baseline diffs stay clean. Records with a
  /// measured allocation carry an extra "bytes" column (e.g. the SparseVector
  /// engine's count structure, pinning the n x n matrix removal). Returns
  /// false (and prints to stderr) on IO failure.
  bool Write() const {
    std::map<std::tuple<std::string, std::size_t, std::size_t, std::size_t>,
             std::pair<double, std::size_t>>
        rows;
    for (const BenchRecord& r : records_) {
      rows[{r.op, r.n, r.d, r.threads}] = {r.ns_per_op, r.bytes};
    }
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "JsonReporter: cannot open %s\n", path_.c_str());
      return false;
    }
    std::fprintf(f, "[\n");
    std::size_t i = 0;
    for (const auto& [key, value] : rows) {
      const auto& [op, n, d, threads] = key;
      const auto& [ns_per_op, bytes] = value;
      std::fprintf(f,
                   "  {\"op\": \"%s\", \"n\": %zu, \"d\": %zu, \"threads\": "
                   "%zu, \"ns_per_op\": %.1f",
                   Escaped(op).c_str(), n, d, threads, ns_per_op);
      if (bytes > 0) std::fprintf(f, ", \"bytes\": %zu", bytes);
      std::fprintf(f, "}%s\n", ++i < rows.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    std::printf("wrote %zu records (%zu measured) to %s\n", rows.size(),
                records_.size(), path_.c_str());
    return true;
  }

 private:
  static std::string Escaped(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  std::string path_;
  std::vector<BenchRecord> records_;
};

/// Peak resident set size of this process in bytes (0 where unsupported).
/// A high-water mark, not a live gauge: it only ever grows, so measure the
/// large-n configuration first (or in a dedicated run) when gating memory —
/// the coreset scaling section and its --smoke floor rely on this.
inline std::size_t PeakRssBytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::size_t>(usage.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::size_t>(usage.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

/// Wall-clock milliseconds of a callable.
template <typename F>
double TimeMs(F&& f) {
  const auto start = std::chrono::steady_clock::now();
  f();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

/// Section banner in the harness output.
inline void Banner(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void Note(const std::string& text) {
  std::printf("%s\n", text.c_str());
}

/// Aggregate utility/timing stats of repeated Solver runs of one request —
/// the measured counterparts of the paper's (Delta, w) columns.
struct MethodStats {
  bool ran = false;
  double delta_mean = 0.0;  ///< mean max(0, t - captured)
  double w_eff_mean = 0.0;  ///< mean tight_radius / r_opt lower bound
  double ms_mean = 0.0;
  std::string note;         ///< error text of the last failing trial, if any
};

/// Runs `request` `trials` times through `solver` (each run gets a fresh RNG
/// stream from the solver) and averages the solver's utility diagnostics over
/// the successful trials. The request must leave diagnostics enabled and set
/// t, so the solver can score each response.
inline MethodStats RunTrials(Solver& solver, const Request& request,
                             int trials) {
  MethodStats stats;
  int ok_trials = 0;
  for (int trial = 0; trial < trials; ++trial) {
    const auto response = solver.Run(request);
    if (!response.ok()) {
      stats.note = response.status().ToString().substr(0, 48);
      continue;
    }
    if (!response->diagnostics.has_value()) {
      stats.note = "no diagnostics (enable SolverOptions::diagnostics, set t)";
      continue;
    }
    stats.delta_mean += std::max(0.0, response->diagnostics->delta);
    stats.w_eff_mean += response->diagnostics->w_effective;
    stats.ms_mean += response->wall_ms;
    ++ok_trials;
  }
  if (ok_trials > 0) {
    stats.ran = true;
    stats.delta_mean /= ok_trials;
    stats.w_eff_mean /= ok_trials;
    stats.ms_mean /= ok_trials;
  }
  return stats;
}

}  // namespace bench
}  // namespace dpcluster

#endif  // DPCLUSTER_BENCH_BENCH_UTIL_H_
