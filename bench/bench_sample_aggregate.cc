// E9 — Theorem 6.3 (sample and aggregate): compiling a non-private estimator
// into a private one via the 1-cluster aggregator. Compares against the naive
// global-sensitivity mean (NoisyAverage over the whole cube) on clean and
// contaminated data, and sweeps the block size m (the stability parameter).

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "dpcluster/dp/noisy_average.h"
#include "dpcluster/la/vector_ops.h"
#include "dpcluster/random/distributions.h"
#include "dpcluster/sa/estimators.h"
#include "dpcluster/sa/sample_aggregate.h"
#include "dpcluster/workload/table.h"

namespace dpcluster {
namespace {

constexpr int kTrials = 3;
constexpr std::size_t kN = 72000;
constexpr double kEps = 8.0;

PointSet MakeData(Rng& rng, double contamination) {
  PointSet s(2);
  const std::vector<double> mean = {0.35, 0.65};
  for (std::size_t i = 0; i < kN; ++i) {
    std::vector<double> p(2);
    if (rng.NextDouble() < contamination) {
      p = {rng.NextDouble(), rng.NextDouble()};
    } else {
      for (std::size_t j = 0; j < 2; ++j) {
        p[j] = std::clamp(mean[j] + SampleGaussian(rng, 0.02), 0.0, 1.0);
      }
    }
    s.Add(p);
  }
  return s;
}

double SaError(Rng& rng, const PointSet& s, std::size_t m, bool median) {
  SampleAggregateOptions options;
  options.params = {kEps, 1e-9};
  options.beta = 0.1;
  options.block_size = m;
  options.alpha = 0.8;
  const GridDomain domain(1u << 12, 2);
  const std::vector<double> mean = {0.35, 0.65};
  double err = 0.0;
  int ok = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    auto result = SampleAggregate(
        rng, s, median ? MedianEstimator() : MeanEstimator(), domain, options);
    if (!result.ok()) continue;
    err += Distance(result->point, mean);
    ++ok;
  }
  return ok > 0 ? err / ok : -1.0;
}

double NaiveError(Rng& rng, const PointSet& s) {
  const std::vector<double> mean = {0.35, 0.65};
  const std::vector<double> cube_center = {0.5, 0.5};
  double err = 0.0;
  for (int trial = 0; trial < kTrials; ++trial) {
    const auto out = NoisyAverage(rng, s, cube_center, std::sqrt(2.0) / 2.0,
                                  {std::min(kEps, 0.99), 1e-9});
    err += out.ok() ? Distance(out->average, mean) : 1.0;
  }
  return err / kTrials;
}

}  // namespace
}  // namespace dpcluster

int main() {
  using namespace dpcluster;
  Rng rng(29);

  bench::Banner(
      "Theorem 6.3 / sample & aggregate, private mean of 2D data (n=72000, "
      "eps=8, true mean (0.35, 0.65))");
  {
    TextTable table({"estimator", "contamination", "block m", "L2 error",
                     "naive global-mean error"});
    for (double contamination : {0.0, 0.3}) {
      const PointSet s = MakeData(rng, contamination);
      const double naive = NaiveError(rng, s);
      for (std::size_t m : {10u, 20u, 40u}) {
        const double err_mean = SaError(rng, s, m, /*median=*/false);
        table.AddRow({"SA + mean", TextTable::Fmt(contamination, 2),
                      TextTable::FmtInt(static_cast<long long>(m)),
                      err_mean < 0 ? "-" : TextTable::Fmt(err_mean, 4),
                      TextTable::Fmt(naive, 4)});
      }
      const double err_med = SaError(rng, s, 10, /*median=*/true);
      table.AddRow({"SA + median", TextTable::Fmt(contamination, 2), "10",
                    err_med < 0 ? "-" : TextTable::Fmt(err_med, 4),
                    TextTable::Fmt(naive, 4)});
    }
    table.Print();
  }
  bench::Note(
      "\nExpected shape (Thm 6.3 / Section 6): on clean data both SA and the"
      "\nnaive mean are accurate; under contamination the naive mean is biased"
      "\nby the junk mass while SA with a robust estimator (median) stays on"
      "\nthe clean center — and SA's radius does not pay the sqrt(d) factor of"
      "\nthe [16]-style aggregation (Theorem 6.2's caveat)."
      "\nLarger blocks m = fewer aggregator inputs k = noisier aggregation;"
      "\nsmaller m = less stable estimates: the m sweep shows the tradeoff.");
  return 0;
}
