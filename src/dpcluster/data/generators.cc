// Built-in scenario families. Every generator draws only from the supplied
// Rng (identical seeds => bit-identical instances), records the ground truth
// (labels + planted balls) before grid snapping, and keeps the invariant that
// exactly t points carry the primary label 0.

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>
#include <vector>

#include "dpcluster/common/check.h"
#include "dpcluster/data/registry.h"
#include "dpcluster/data/scenario.h"
#include "dpcluster/la/vector_ops.h"
#include "dpcluster/random/distributions.h"

namespace dpcluster {
namespace {

// A random ball center such that the ball lies inside the cube.
std::vector<double> RandomInteriorCenter(Rng& rng, std::size_t dim,
                                         double margin, double axis_length) {
  DPC_CHECK_LT(2.0 * margin, axis_length);
  std::vector<double> c(dim);
  for (double& x : c) {
    x = margin + rng.NextDouble() * (axis_length - 2.0 * margin);
  }
  return c;
}

std::size_t PrimaryCount(const ScenarioSpec& spec) {
  const auto t = static_cast<std::size_t>(spec.cluster_fraction *
                                          static_cast<double>(spec.n));
  return std::clamp<std::size_t>(t, 1, spec.n);
}

void AddLabeled(ScenarioInstance& instance, std::span<const double> p,
                int label) {
  instance.points.Add(p);
  instance.labels.push_back(label);
}

void AddBallPoints(Rng& rng, ScenarioInstance& instance, std::size_t count,
                   const Ball& ball, int label) {
  for (std::size_t i = 0; i < count; ++i) {
    AddLabeled(instance, SampleBall(rng, ball.center, ball.radius), label);
  }
}

void AddUniformBackground(Rng& rng, ScenarioInstance& instance,
                          std::size_t count, double axis_length) {
  std::vector<double> p(instance.points.dim());
  for (std::size_t i = 0; i < count; ++i) {
    for (double& x : p) x = rng.NextDouble() * axis_length;
    AddLabeled(instance, p, -1);
  }
}

// Uniform background rejecting points within `exclusion` of `center` (so the
// planted count stays exact); falls back to the last draw after 64 attempts
// (possible only when the exclusion ball nearly covers the cube).
void AddBackgroundOutside(Rng& rng, ScenarioInstance& instance,
                          std::size_t count, double axis_length,
                          std::span<const double> center, double exclusion) {
  std::vector<double> p(instance.points.dim());
  for (std::size_t i = 0; i < count; ++i) {
    for (int attempt = 0; attempt < 64; ++attempt) {
      for (double& x : p) x = rng.NextDouble() * axis_length;
      if (Distance(p, center) > exclusion) break;
    }
    AddLabeled(instance, p, -1);
  }
}

ScenarioInstance NewInstance(const ScenarioSpec& spec) {
  ScenarioInstance instance;
  instance.scenario = spec.scenario;
  instance.domain = GridDomain(spec.levels, spec.dim, spec.axis_length);
  instance.points = PointSet(spec.dim);
  instance.labels.reserve(spec.n);
  return instance;
}

// Shared finalize: snap the generated points onto the domain grid.
ScenarioInstance Finish(ScenarioInstance instance) {
  instance.domain.SnapAll(instance.points);
  return instance;
}

// --------------------------------------------------------- planted_cluster ---

// The paper's core regime: a small tight cluster hidden in uniform noise.
class PlantedClusterFamily : public ScenarioFamily {
 public:
  std::string_view name() const override { return "planted_cluster"; }
  std::string_view description() const override {
    return "t points in a tight random ball, n-t uniform noise (the Table 1 / "
           "Theorem 3.2 regime)";
  }
  Status ValidateSpec(const ScenarioSpec&) const override {
    return Status::OK();
  }
  Result<ScenarioInstance> Generate(Rng& rng,
                                    const ScenarioSpec& spec) const override {
    ScenarioInstance instance = NewInstance(spec);
    instance.t = PrimaryCount(spec);
    Ball primary;
    primary.center = RandomInteriorCenter(rng, spec.dim, spec.cluster_radius,
                                          spec.axis_length);
    primary.radius = spec.cluster_radius;
    instance.true_balls = {primary};
    AddBallPoints(rng, instance, instance.t, primary, 0);
    AddUniformBackground(rng, instance, spec.n - instance.t, spec.axis_length);
    return Finish(std::move(instance));
  }
};

// -------------------------------------------------------- gaussian_mixture ---

// k spherical Gaussians with controllable separation and imbalance plus
// uniform background; the primary cluster is the smallest component.
class GaussianMixtureFamily : public ScenarioFamily {
 public:
  std::string_view name() const override { return "gaussian_mixture"; }
  std::string_view description() const override {
    return "k spherical Gaussians (separation, imbalance knobs) + uniform "
           "noise; primary = smallest component";
  }
  Status ValidateSpec(const ScenarioSpec& spec) const override {
    if (spec.k == 0) {
      return Status::InvalidArgument("gaussian_mixture: k must be >= 1");
    }
    if (!(spec.sigma > 0.0) || 8.0 * spec.sigma >= spec.axis_length) {
      return Status::InvalidArgument(
          "gaussian_mixture: sigma must be in (0, axis_length/8)");
    }
    if (spec.imbalance < 1.0) {
      return Status::InvalidArgument(
          "gaussian_mixture: imbalance must be >= 1 (largest/smallest)");
    }
    if (spec.noise_fraction < 0.0 || spec.noise_fraction >= 1.0) {
      return Status::InvalidArgument(
          "gaussian_mixture: noise_fraction must be in [0, 1)");
    }
    const auto noise = static_cast<std::size_t>(
        spec.noise_fraction * static_cast<double>(spec.n));
    if (spec.n - noise < spec.k) {
      return Status::InvalidArgument(
          "gaussian_mixture: fewer clustered points than components");
    }
    return Status::OK();
  }
  Result<ScenarioInstance> Generate(Rng& rng,
                                    const ScenarioSpec& spec) const override {
    ScenarioInstance instance = NewInstance(spec);
    const auto noise = static_cast<std::size_t>(
        spec.noise_fraction * static_cast<double>(spec.n));
    const std::size_t clustered = spec.n - noise;

    // Component sizes: geometric weights with largest/smallest = imbalance,
    // ordered smallest-first so component 0 is the primary small cluster.
    std::vector<std::size_t> sizes(spec.k, 1);
    {
      std::vector<double> weights(spec.k);
      for (std::size_t c = 0; c < spec.k; ++c) {
        const double frac =
            spec.k == 1 ? 0.0
                        : static_cast<double>(c) / static_cast<double>(spec.k - 1);
        weights[c] = std::pow(spec.imbalance, frac);  // 1 .. imbalance
      }
      const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
      std::size_t assigned = spec.k;  // one guaranteed point per component
      for (std::size_t c = 0; c < spec.k && assigned < clustered; ++c) {
        const auto extra = std::min<std::size_t>(
            clustered - assigned,
            static_cast<std::size_t>(
                weights[c] / total * static_cast<double>(clustered - spec.k)));
        sizes[c] += extra;
        assigned += extra;
      }
      sizes[spec.k - 1] += clustered - std::min(
          clustered,
          std::accumulate(sizes.begin(), sizes.end(), std::size_t{0}));
    }
    instance.t = sizes[0];

    // Centers: rejection-sample for pairwise separation (best effort).
    std::vector<double> p(spec.dim);
    for (std::size_t c = 0; c < spec.k; ++c) {
      Ball ball;
      for (int attempt = 0; attempt < 200; ++attempt) {
        ball.center =
            RandomInteriorCenter(rng, spec.dim, 2.0 * spec.sigma,
                                 spec.axis_length);
        bool clear = true;
        for (const Ball& other : instance.true_balls) {
          if (Distance(ball.center, other.center) <
              spec.separation * spec.sigma) {
            clear = false;
            break;
          }
        }
        if (clear) break;
      }
      ball.radius = 2.0 * spec.sigma;  // nominal 2-sigma ball
      instance.true_balls.push_back(ball);
      for (std::size_t i = 0; i < sizes[c]; ++i) {
        for (std::size_t j = 0; j < spec.dim; ++j) {
          p[j] = std::clamp(ball.center[j] + SampleGaussian(rng, spec.sigma),
                            0.0, spec.axis_length);
        }
        AddLabeled(instance, p, static_cast<int>(c));
      }
    }
    AddUniformBackground(rng, instance, noise, spec.axis_length);
    return Finish(std::move(instance));
  }
};

// --------------------------------------------------- outlier_contaminated ---

// All but a noise_fraction of the points in one tight ball; the contamination
// is kept outside an exclusion zone so the inlier count is exact.
class OutlierContaminatedFamily : public ScenarioFamily {
 public:
  std::string_view name() const override { return "outlier_contaminated"; }
  std::string_view description() const override {
    return "1 - noise_fraction of the points in one tight ball, the rest "
           "scattered far away (Section 1.1 screening)";
  }
  Status ValidateSpec(const ScenarioSpec& spec) const override {
    if (spec.noise_fraction <= 0.0 || spec.noise_fraction >= 1.0) {
      return Status::InvalidArgument(
          "outlier_contaminated: noise_fraction must be in (0, 1)");
    }
    if (static_cast<std::size_t>((1.0 - spec.noise_fraction) *
                                 static_cast<double>(spec.n)) == 0) {
      return Status::InvalidArgument(
          "outlier_contaminated: no inliers at this n");
    }
    return Status::OK();
  }
  Result<ScenarioInstance> Generate(Rng& rng,
                                    const ScenarioSpec& spec) const override {
    ScenarioInstance instance = NewInstance(spec);
    const auto inliers = static_cast<std::size_t>(
        (1.0 - spec.noise_fraction) * static_cast<double>(spec.n));
    instance.t = inliers;
    Ball primary;
    primary.center = RandomInteriorCenter(rng, spec.dim, spec.cluster_radius,
                                          spec.axis_length);
    primary.radius = spec.cluster_radius;
    instance.true_balls = {primary};
    AddBallPoints(rng, instance, inliers, primary, 0);
    AddBackgroundOutside(rng, instance, spec.n - inliers, spec.axis_length,
                         primary.center, 3.0 * spec.cluster_radius);
    return Finish(std::move(instance));
  }
};

// ------------------------------------------------------------ heavy_tailed ---

// One center, radial Lomax (shifted Pareto) distances: a dense core with
// far-flung stragglers. The true ball is the tightest ball around the center
// holding the t core points, computed from the generated sample itself.
class HeavyTailedFamily : public ScenarioFamily {
 public:
  std::string_view name() const override { return "heavy_tailed"; }
  std::string_view description() const override {
    return "radial Lomax(tail_index) cloud: dense core + heavy-tailed "
           "stragglers; truth = tightest t-ball around the center";
  }
  Status ValidateSpec(const ScenarioSpec& spec) const override {
    if (!(spec.tail_index > 0.0)) {
      return Status::InvalidArgument(
          "heavy_tailed: tail_index must be positive");
    }
    return Status::OK();
  }
  Result<ScenarioInstance> Generate(Rng& rng,
                                    const ScenarioSpec& spec) const override {
    ScenarioInstance instance = NewInstance(spec);
    instance.t = PrimaryCount(spec);
    const std::vector<double> center = RandomInteriorCenter(
        rng, spec.dim, spec.cluster_radius, spec.axis_length);

    std::vector<double> p(spec.dim);
    std::vector<double> dist(spec.n);
    for (std::size_t i = 0; i < spec.n; ++i) {
      // Lomax radius: scale * (U^(-1/alpha) - 1), heavy tail for small alpha.
      const double u = rng.NextDoubleOpenZero();
      const double r =
          spec.cluster_radius *
          (std::pow(u, -1.0 / spec.tail_index) - 1.0);
      const auto dir = SampleUnitSphere(rng, static_cast<int>(spec.dim));
      for (std::size_t j = 0; j < spec.dim; ++j) {
        p[j] = std::clamp(center[j] + r * dir[j], 0.0, spec.axis_length);
      }
      AddLabeled(instance, p, -1);  // relabeled below once distances are known
      dist[i] = Distance(instance.points[i], center);
    }

    // Label the t closest points (post-clamp distances; ties broken by index)
    // as the core and size the true ball to exactly enclose them.
    std::vector<std::size_t> order(spec.n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&dist](std::size_t a, std::size_t b) {
                       return dist[a] < dist[b];
                     });
    Ball primary;
    primary.center = center;
    primary.radius = dist[order[instance.t - 1]];
    for (std::size_t i = 0; i < instance.t; ++i) instance.labels[order[i]] = 0;
    instance.true_balls = {primary};
    return Finish(std::move(instance));
  }
};

// --------------------------------------------------------- axis_degenerate ---

// The cluster varies in only intrinsic_dim of the d coordinates (a low-rank /
// axis-degenerate slice); background noise is full-dimensional.
class AxisDegenerateFamily : public ScenarioFamily {
 public:
  std::string_view name() const override { return "axis_degenerate"; }
  std::string_view description() const override {
    return "cluster confined to intrinsic_dim coordinates (low-rank slice) "
           "inside full-dimensional noise";
  }
  Status ValidateSpec(const ScenarioSpec& spec) const override {
    if (spec.intrinsic_dim == 0 || spec.intrinsic_dim > spec.dim) {
      return Status::InvalidArgument(
          "axis_degenerate: intrinsic_dim must be in [1, dim]");
    }
    return Status::OK();
  }
  Result<ScenarioInstance> Generate(Rng& rng,
                                    const ScenarioSpec& spec) const override {
    ScenarioInstance instance = NewInstance(spec);
    instance.t = PrimaryCount(spec);
    Ball primary;
    primary.center = RandomInteriorCenter(rng, spec.dim, spec.cluster_radius,
                                          spec.axis_length);
    primary.radius = spec.cluster_radius;
    instance.true_balls = {primary};

    // Pick the intrinsic_dim coordinates the cluster varies in (partial
    // Fisher-Yates on the coordinate indices).
    std::vector<std::size_t> axes(spec.dim);
    std::iota(axes.begin(), axes.end(), std::size_t{0});
    for (std::size_t j = 0; j + 1 < spec.dim && j < spec.intrinsic_dim; ++j) {
      std::swap(axes[j], axes[j + rng.NextUint64(spec.dim - j)]);
    }

    std::vector<double> p(spec.dim);
    for (std::size_t i = 0; i < instance.t; ++i) {
      const auto low = SampleBall(
          rng, std::span<const double>(primary.center.data(),
                                       spec.intrinsic_dim),
          spec.cluster_radius);
      p = primary.center;
      for (std::size_t j = 0; j < spec.intrinsic_dim; ++j) {
        p[axes[j]] = std::clamp(primary.center[axes[j]] +
                                    (low[j] - primary.center[j]),
                                0.0, spec.axis_length);
      }
      AddLabeled(instance, p, 0);
    }
    AddUniformBackground(rng, instance, spec.n - instance.t, spec.axis_length);
    return Finish(std::move(instance));
  }
};

// ------------------------------------------------------------ grid_snapped ---

// A planted cluster collapsed onto a coarse sub-grid: massive duplication,
// r_opt frequently 0, selection ties everywhere — the degenerate quantized
// instance class.
class GridSnappedFamily : public ScenarioFamily {
 public:
  std::string_view name() const override { return "grid_snapped"; }
  std::string_view description() const override {
    return "planted cluster collapsed onto a coarse snap_levels sub-grid "
           "(duplicate-heavy, near-zero r_opt)";
  }
  Status ValidateSpec(const ScenarioSpec& spec) const override {
    if (spec.snap_levels < 2 || spec.snap_levels > spec.levels) {
      return Status::InvalidArgument(
          "grid_snapped: snap_levels must be in [2, levels]");
    }
    return Status::OK();
  }
  Result<ScenarioInstance> Generate(Rng& rng,
                                    const ScenarioSpec& spec) const override {
    ScenarioInstance instance = NewInstance(spec);
    instance.t = PrimaryCount(spec);
    const GridDomain coarse(spec.snap_levels, spec.dim, spec.axis_length);
    Ball primary;
    primary.center = RandomInteriorCenter(rng, spec.dim, spec.cluster_radius,
                                          spec.axis_length);
    // Coarse snapping moves a point by at most half a coarse grid diagonal.
    primary.radius = spec.cluster_radius +
                     0.5 * coarse.step() * std::sqrt(static_cast<double>(spec.dim));
    instance.true_balls = {primary};
    Ball tight;
    tight.center = primary.center;
    tight.radius = spec.cluster_radius;
    AddBallPoints(rng, instance, instance.t, tight, 0);
    AddUniformBackground(rng, instance, spec.n - instance.t, spec.axis_length);
    coarse.SnapAll(instance.points);
    return Finish(std::move(instance));
  }
};

// ----------------------------------------------------------------- annulus ---

// Cluster points on a thin spherical shell: the centroid is far from every
// data point, which defeats mean-style centers.
class AnnulusFamily : public ScenarioFamily {
 public:
  std::string_view name() const override { return "annulus"; }
  std::string_view description() const override {
    return "t points on a thin shell of radius cluster_radius (centroid far "
           "from all points; adversarial for mean centers)";
  }
  Status ValidateSpec(const ScenarioSpec& spec) const override {
    if (spec.shell_thickness < 0.0 || spec.shell_thickness > 1.0) {
      return Status::InvalidArgument(
          "annulus: shell_thickness must be in [0, 1] (fraction of radius)");
    }
    return Status::OK();
  }
  Result<ScenarioInstance> Generate(Rng& rng,
                                    const ScenarioSpec& spec) const override {
    ScenarioInstance instance = NewInstance(spec);
    instance.t = PrimaryCount(spec);
    Ball primary;
    primary.center = RandomInteriorCenter(rng, spec.dim, spec.cluster_radius,
                                          spec.axis_length);
    primary.radius = spec.cluster_radius;
    instance.true_balls = {primary};
    const double inner = spec.cluster_radius * (1.0 - spec.shell_thickness);
    std::vector<double> p(spec.dim);
    for (std::size_t i = 0; i < instance.t; ++i) {
      const auto dir = SampleUnitSphere(rng, static_cast<int>(spec.dim));
      const double r = inner + rng.NextDouble() * (spec.cluster_radius - inner);
      for (std::size_t j = 0; j < spec.dim; ++j) {
        p[j] = std::clamp(primary.center[j] + r * dir[j], 0.0,
                          spec.axis_length);
      }
      AddLabeled(instance, p, 0);
    }
    AddUniformBackground(rng, instance, spec.n - instance.t, spec.axis_length);
    return Finish(std::move(instance));
  }
};

// ---------------------------------------------------------------- near_tie ---

// Two planted clusters whose (size, radius) pairs nearly tie: the decoy holds
// t-1 points in a slightly tighter ball, so private selection steps face
// adjacent scores whichever way they break the tie.
class NearTieFamily : public ScenarioFamily {
 public:
  std::string_view name() const override { return "near_tie"; }
  std::string_view description() const override {
    return "primary t-ball vs decoy (t-1)-ball with tie_margin tighter "
           "radius: adversarial near-tie selection";
  }
  Status ValidateSpec(const ScenarioSpec& spec) const override {
    if (spec.tie_margin < 0.0 || spec.tie_margin >= 1.0) {
      return Status::InvalidArgument(
          "near_tie: tie_margin must be in [0, 1)");
    }
    if (2 * PrimaryCount(spec) > spec.n + 1) {
      return Status::InvalidArgument(
          "near_tie: needs 2t - 1 <= n (lower cluster_fraction)");
    }
    if (4.0 * spec.cluster_radius >= 0.4 * spec.axis_length *
                                         std::sqrt(static_cast<double>(spec.dim))) {
      return Status::InvalidArgument(
          "near_tie: cluster_radius too large for two separated clusters");
    }
    return Status::OK();
  }
  Result<ScenarioInstance> Generate(Rng& rng,
                                    const ScenarioSpec& spec) const override {
    ScenarioInstance instance = NewInstance(spec);
    instance.t = PrimaryCount(spec);
    Ball primary;
    Ball decoy;
    // Opposite corners (as in the two-cluster workload) so no ball covers both.
    primary.center.assign(spec.dim, 0.3 * spec.axis_length);
    decoy.center.assign(spec.dim, 0.7 * spec.axis_length);
    primary.radius = spec.cluster_radius;
    decoy.radius = spec.cluster_radius * (1.0 - spec.tie_margin);
    instance.true_balls = {primary, decoy};
    AddBallPoints(rng, instance, instance.t, primary, 0);
    AddBallPoints(rng, instance, instance.t - 1, decoy, 1);
    AddUniformBackground(rng, instance,
                         spec.n - (2 * instance.t - 1), spec.axis_length);
    return Finish(std::move(instance));
  }
};

// --------------------------------------------------------------- streaming ---

// Points arrive and expire over `ticks` rounds while the planted cluster
// drifts along a random chord. The instance's points/labels/balls describe
// the final tick — what a long-lived stream consumer is asked about — and
// the full arrival/expiry history is recorded in instance.stream, so replay
// harnesses (dpcluster_cli --stream-ticks, the streaming benches, the
// service tests) can drive the incremental index through the exact same
// edits and check byte-identity against indexing the final state directly.
class StreamingFamily : public ScenarioFamily {
 public:
  std::string_view name() const override { return "streaming"; }
  std::string_view description() const override {
    return "points arrive/expire over ticks while the planted cluster "
           "drifts; truth = final-tick ball, replay schedule in "
           "instance.stream";
  }
  Status ValidateSpec(const ScenarioSpec& spec) const override {
    if (spec.ticks < 1 || spec.ticks > 1024) {
      return Status::InvalidArgument("streaming: ticks must be in [1, 1024]");
    }
    return Status::OK();
  }
  Result<ScenarioInstance> Generate(Rng& rng,
                                    const ScenarioSpec& spec) const override {
    ScenarioInstance instance = NewInstance(spec);
    instance.t = PrimaryCount(spec);
    const std::size_t ticks = spec.ticks;
    const std::size_t window = std::max<std::size_t>(1, ticks / 4);
    const std::size_t background = spec.n - instance.t;

    StreamSchedule& stream = instance.stream;
    stream.ticks = ticks;
    stream.arrivals = PointSet(spec.dim);
    const std::vector<double> from = RandomInteriorCenter(
        rng, spec.dim, spec.cluster_radius, spec.axis_length);
    const std::vector<double> to = RandomInteriorCenter(
        rng, spec.dim, spec.cluster_radius, spec.axis_length);
    stream.tick_balls.reserve(ticks);
    for (std::size_t u = 0; u < ticks; ++u) {
      const double f = ticks == 1 ? 1.0
                                  : static_cast<double>(u) /
                                        static_cast<double>(ticks - 1);
      Ball ball;
      ball.center.resize(spec.dim);
      for (std::size_t j = 0; j < spec.dim; ++j) {
        ball.center[j] = from[j] + f * (to[j] - from[j]);
      }
      ball.radius = spec.cluster_radius;
      stream.tick_balls.push_back(std::move(ball));
    }
    instance.true_balls = {stream.tick_balls.back()};

    const auto arrive = [&stream](std::span<const double> p, std::size_t at,
                                  std::size_t expiry) {
      stream.arrivals.Add(p);
      stream.arrival_tick.push_back(static_cast<std::uint32_t>(at));
      stream.expiry_tick.push_back(static_cast<std::uint32_t>(expiry));
    };
    std::vector<double> p(spec.dim);
    for (std::size_t u = 0; u < ticks; ++u) {
      // Background survivors arrive evenly across ticks and never expire.
      const std::size_t batch =
          background / ticks + (u < background % ticks ? 1 : 0);
      for (std::size_t i = 0; i < batch; ++i) {
        for (double& x : p) x = rng.NextDouble() * spec.axis_length;
        arrive(p, u, ticks);
        AddLabeled(instance, p, -1);
      }
      // The tick's cluster batch around the drifted center: transient before
      // the final tick (expires after `window` ticks, always before the
      // end), planted truth at the final one.
      const Ball& ball = stream.tick_balls[u];
      for (std::size_t i = 0; i < instance.t; ++i) {
        const auto q = SampleBall(rng, ball.center, ball.radius);
        if (u + 1 == ticks) {
          arrive(q, u, ticks);
          AddLabeled(instance, q, 0);
        } else {
          arrive(q, u, std::min(u + window, ticks - 1));
        }
      }
    }
    // Snap the schedule exactly like the instance: surviving rows stay
    // byte-identical between the two views.
    instance.domain.SnapAll(stream.arrivals);
    return Finish(std::move(instance));
  }
};

}  // namespace

Status RegisterBuiltinScenarios(ScenarioRegistry& registry) {
  const auto add = [&registry](std::unique_ptr<ScenarioFamily> family) {
    if (registry.Contains(family->name())) return Status::OK();
    return registry.Register(std::move(family));
  };
  DPC_RETURN_IF_ERROR(add(std::make_unique<PlantedClusterFamily>()));
  DPC_RETURN_IF_ERROR(add(std::make_unique<GaussianMixtureFamily>()));
  DPC_RETURN_IF_ERROR(add(std::make_unique<OutlierContaminatedFamily>()));
  DPC_RETURN_IF_ERROR(add(std::make_unique<HeavyTailedFamily>()));
  DPC_RETURN_IF_ERROR(add(std::make_unique<AxisDegenerateFamily>()));
  DPC_RETURN_IF_ERROR(add(std::make_unique<GridSnappedFamily>()));
  DPC_RETURN_IF_ERROR(add(std::make_unique<AnnulusFamily>()));
  DPC_RETURN_IF_ERROR(add(std::make_unique<NearTieFamily>()));
  DPC_RETURN_IF_ERROR(add(std::make_unique<StreamingFamily>()));
  return Status::OK();
}

}  // namespace dpcluster
