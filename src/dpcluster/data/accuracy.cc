#include "dpcluster/data/accuracy.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

#include "dpcluster/api/scenario.h"
#include "dpcluster/api/solver.h"
#include "dpcluster/data/registry.h"
#include "dpcluster/geo/ball.h"
#include "dpcluster/la/vector_ops.h"
#include "dpcluster/workload/table.h"

namespace dpcluster {
namespace {

/// Median of the collected values; NaN when none were collected. Even counts
/// average the two middle values.
double Median(std::vector<double> values) {
  if (values.empty()) return std::numeric_limits<double>::quiet_NaN();
  std::sort(values.begin(), values.end());
  const std::size_t mid = values.size() / 2;
  if (values.size() % 2 == 1) return values[mid];
  return 0.5 * (values[mid - 1] + values[mid]);
}

/// Per-(algorithm, epsilon) accumulator of one scenario × n × dim combination.
struct CellAccumulator {
  std::vector<double> radius_ratio;
  std::vector<double> coverage;
  std::vector<double> center_offset;
  std::vector<double> eps_spent;
  std::vector<double> delta_spent;
  std::vector<double> wall_ms;
  std::size_t failures = 0;
  std::string note;
};

}  // namespace

Status SweepConfig::Validate() const {
  if (algorithms.empty()) {
    return Status::InvalidArgument("SweepConfig: no algorithms");
  }
  if (epsilons.empty()) {
    return Status::InvalidArgument("SweepConfig: no epsilons");
  }
  for (double epsilon : epsilons) {
    if (!(epsilon > 0.0)) {
      return Status::InvalidArgument("SweepConfig: epsilons must be > 0");
    }
  }
  if (delta < 0.0 || delta >= 1.0) {
    return Status::InvalidArgument("SweepConfig: delta must be in [0, 1)");
  }
  if (ns.empty() || dims.empty()) {
    return Status::InvalidArgument("SweepConfig: empty n or dim grid");
  }
  if (trials == 0) {
    return Status::InvalidArgument("SweepConfig: trials must be >= 1");
  }
  if (coreset && coreset_target_size < 1) {
    return Status::InvalidArgument(
        "SweepConfig: coreset_target_size must be >= 1");
  }
  return Status::OK();
}

double ReferenceRadius(const ScenarioInstance& instance) {
  // Tightest ball around the *true* center holding t points, floored at one
  // grid step (grid-snapped truths can be radius 0).
  return std::max(
      RadiusCapturing(instance.points, instance.primary().center,
                      std::min(instance.t, instance.points.size())),
      instance.domain.step());
}

Result<AccuracyMetrics> ScoreResponse(const ScenarioInstance& instance,
                                      const Response& response) {
  return ScoreResponse(instance, response, ReferenceRadius(instance));
}

Result<AccuracyMetrics> ScoreResponse(const ScenarioInstance& instance,
                                      const Response& response,
                                      double reference_radius) {
  if (response.ball.center.size() != instance.points.dim()) {
    return Status::InvalidArgument(
        "ScoreResponse: response released no ball of the instance dimension");
  }
  const Ball& truth = instance.primary();
  const double r_ref = reference_radius;
  AccuracyMetrics metrics;
  metrics.radius_ratio = response.ball.radius / r_ref;
  std::size_t captured = 0;
  for (std::size_t i = 0; i < instance.points.size(); ++i) {
    if (instance.labels[i] == 0 && response.ball.Contains(instance.points[i])) {
      ++captured;
    }
  }
  metrics.coverage =
      static_cast<double>(captured) / static_cast<double>(instance.t);
  metrics.center_offset =
      Distance(response.ball.center, truth.center) / r_ref;
  metrics.eps_spent = response.charged.epsilon;
  metrics.delta_spent = response.charged.delta;
  metrics.wall_ms = response.wall_ms;
  return metrics;
}

Result<std::vector<SweepCell>> RunAccuracySweep(const SweepConfig& config) {
  DPC_RETURN_IF_ERROR(config.Validate());
  const std::vector<std::string> scenarios =
      config.scenarios.empty() ? ScenarioRegistry::Global().Names()
                               : config.scenarios;

  Rng root(config.seed);
  SolverOptions solver_options;
  solver_options.seed = config.seed ^ 0x5CE9A210ACCULL;
  Solver solver(solver_options);

  const std::size_t grid = config.algorithms.size() * config.epsilons.size();
  std::vector<SweepCell> cells;
  cells.reserve(scenarios.size() * config.ns.size() * config.dims.size() * grid);

  for (const std::string& scenario : scenarios) {
    for (std::size_t n : config.ns) {
      for (std::size_t dim : config.dims) {
        std::vector<CellAccumulator> acc(grid);
        for (std::size_t trial = 0; trial < config.trials; ++trial) {
          Rng rng = root.Fork();
          ScenarioSpec spec;
          spec.scenario = scenario;
          spec.n = n;
          spec.dim = dim;
          spec.levels = config.levels;
          auto instance = GenerateScenario(rng, spec);
          if (!instance.ok()) {
            // A family that rejects this (n, dim) combination fails the whole
            // trial for its cells instead of aborting the sweep.
            for (CellAccumulator& cell : acc) {
              ++cell.failures;
              cell.note = instance.status().ToString();
            }
            continue;
          }
          std::vector<Request> requests = ScenarioRequestGrid(
              *instance, config.algorithms, config.epsilons, config.delta,
              config.num_threads);
          for (Request& request : requests) {
            request.tuning.refine_one_cluster = config.refine;
            if (config.max_jl_dim > 0) {
              request.tuning.max_jl_dim = config.max_jl_dim;
            }
            request.tuning.coreset = config.coreset;
            request.tuning.coreset_min_points = config.coreset_min_points;
            request.tuning.coreset_target_size = config.coreset_target_size;
          }
          const auto responses = solver.RunAll(requests);
          const double r_ref = ReferenceRadius(*instance);
          for (std::size_t i = 0; i < responses.size(); ++i) {
            CellAccumulator& cell = acc[i];
            if (!responses[i].ok()) {
              ++cell.failures;
              cell.note = responses[i].status().ToString();
              continue;
            }
            const auto metrics = ScoreResponse(*instance, *responses[i], r_ref);
            if (!metrics.ok()) {
              ++cell.failures;
              cell.note = metrics.status().ToString();
              continue;
            }
            cell.radius_ratio.push_back(metrics->radius_ratio);
            cell.coverage.push_back(metrics->coverage);
            cell.center_offset.push_back(metrics->center_offset);
            cell.eps_spent.push_back(metrics->eps_spent);
            cell.delta_spent.push_back(metrics->delta_spent);
            cell.wall_ms.push_back(metrics->wall_ms);
          }
        }
        for (std::size_t a = 0; a < config.algorithms.size(); ++a) {
          for (std::size_t e = 0; e < config.epsilons.size(); ++e) {
            CellAccumulator& collected = acc[a * config.epsilons.size() + e];
            SweepCell cell;
            cell.scenario = scenario;
            cell.algorithm = config.algorithms[a];
            cell.epsilon = config.epsilons[e];
            cell.n = n;
            cell.dim = dim;
            cell.trials = config.trials;
            cell.failures = collected.failures;
            cell.note = std::move(collected.note);
            cell.median.radius_ratio = Median(std::move(collected.radius_ratio));
            cell.median.coverage = Median(std::move(collected.coverage));
            cell.median.center_offset =
                Median(std::move(collected.center_offset));
            cell.median.eps_spent = Median(std::move(collected.eps_spent));
            cell.median.delta_spent = Median(std::move(collected.delta_spent));
            cell.median.wall_ms = Median(std::move(collected.wall_ms));
            cells.push_back(std::move(cell));
          }
        }
      }
    }
  }
  return cells;
}

const SweepCell* FindCell(const std::vector<SweepCell>& cells,
                          std::string_view scenario, std::string_view algorithm,
                          double epsilon) {
  for (const SweepCell& cell : cells) {
    if (cell.scenario == scenario && cell.algorithm == algorithm &&
        cell.epsilon == epsilon) {
      return &cell;
    }
  }
  return nullptr;
}

namespace {

std::string JsonEscaped(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) continue;  // drop control chars
    out.push_back(c);
  }
  return out;
}

/// NaN/inf are not valid JSON numbers; emit null for them.
void PrintMetric(std::FILE* f, const char* key, double value,
                 const char* suffix) {
  if (std::isfinite(value)) {
    std::fprintf(f, "\"%s\": %.6g%s", key, value, suffix);
  } else {
    std::fprintf(f, "\"%s\": null%s", key, suffix);
  }
}

}  // namespace

void PrintSweepTables(const std::vector<SweepCell>& cells) {
  for (std::size_t i = 0; i < cells.size();) {
    const SweepCell& head = cells[i];
    std::printf("\n--- %s  (n=%zu, d=%zu) ---\n", head.scenario.c_str(),
                head.n, head.dim);
    TextTable table({"algorithm", "eps", "radius_ratio", "coverage",
                     "center_off", "eps_spent", "fails", "ms"});
    for (; i < cells.size(); ++i) {
      const SweepCell& cell = cells[i];
      if (cell.scenario != head.scenario || cell.n != head.n ||
          cell.dim != head.dim) {
        break;
      }
      table.AddRow({cell.algorithm, TextTable::Fmt(cell.epsilon, 2),
                    TextTable::Fmt(cell.median.radius_ratio, 3),
                    TextTable::Fmt(cell.median.coverage, 3),
                    TextTable::Fmt(cell.median.center_offset, 3),
                    TextTable::Fmt(cell.median.eps_spent, 3),
                    TextTable::FmtInt(static_cast<long long>(cell.failures)),
                    TextTable::Fmt(cell.median.wall_ms, 2)});
    }
    table.Print();
  }
}

bool WriteAccuracyJson(const std::string& path, const SweepConfig& config,
                       const std::vector<SweepCell>& cells) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "WriteAccuracyJson: cannot open %s\n", path.c_str());
    return false;
  }
  std::fprintf(f,
               "{\n"
               "  \"config\": {\"trials\": %zu, \"delta\": %.6g, "
               "\"levels\": %llu, \"seed\": %llu},\n"
               "  \"cells\": [\n",
               config.trials, config.delta,
               static_cast<unsigned long long>(config.levels),
               static_cast<unsigned long long>(config.seed));
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const SweepCell& cell = cells[i];
    std::fprintf(f,
                 "    {\"scenario\": \"%s\", \"algorithm\": \"%s\", "
                 "\"epsilon\": %.6g, \"n\": %zu, \"d\": %zu, "
                 "\"trials\": %zu, \"failures\": %zu, ",
                 JsonEscaped(cell.scenario).c_str(),
                 JsonEscaped(cell.algorithm).c_str(), cell.epsilon, cell.n,
                 cell.dim, cell.trials, cell.failures);
    PrintMetric(f, "radius_ratio", cell.median.radius_ratio, ", ");
    PrintMetric(f, "coverage", cell.median.coverage, ", ");
    PrintMetric(f, "center_offset", cell.median.center_offset, ", ");
    PrintMetric(f, "eps_spent", cell.median.eps_spent, ", ");
    PrintMetric(f, "delta_spent", cell.median.delta_spent, ", ");
    PrintMetric(f, "wall_ms", cell.median.wall_ms, "");
    if (!cell.note.empty()) {
      std::fprintf(f, ", \"note\": \"%s\"", JsonEscaped(cell.note).c_str());
    }
    std::fprintf(f, "}%s\n", i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %zu cells to %s\n", cells.size(), path.c_str());
  return true;
}

}  // namespace dpcluster
