// Scenario workloads: the structured problem families the accuracy harness
// sweeps (ROADMAP "as many scenarios as you can imagine"). A ScenarioFamily
// deterministically generates labeled instances of the 1-cluster problem from
// a ScenarioSpec and a seeded Rng; the ground truth (per-point labels and the
// planted balls) makes utility computable end-to-end, which is what the
// evaluation harness in data/accuracy.h and the CI accuracy gate consume.
//
// The subsystem mirrors the api/ algorithm registry: families are registered
// by name in a ScenarioRegistry (data/registry.h) and looked up by the
// harness, the benches, and the tests. Built-in families live in
// data/generators.cc.

#ifndef DPCLUSTER_DATA_SCENARIO_H_
#define DPCLUSTER_DATA_SCENARIO_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "dpcluster/common/status.h"
#include "dpcluster/geo/ball.h"
#include "dpcluster/geo/dataset.h"
#include "dpcluster/geo/grid_domain.h"
#include "dpcluster/geo/point_set.h"
#include "dpcluster/random/rng.h"

namespace dpcluster {

/// Parameters of one scenario instance. Every family reads the shared fields
/// (n, dim, levels, axis_length) plus the knobs it understands and ignores
/// the rest — the same convention as Tuning on the api Request.
struct ScenarioSpec {
  /// Registry key, e.g. "planted_cluster"; ScenarioRegistry::Names() lists them.
  std::string scenario = "planted_cluster";
  /// Dataset size n.
  std::size_t n = 1024;
  /// Ambient dimension d.
  std::size_t dim = 2;
  /// Grid levels per axis |X|.
  std::uint64_t levels = std::uint64_t{1} << 12;
  /// Axis length of the cube domain.
  double axis_length = 1.0;

  // --- Family knobs -------------------------------------------------------
  /// Radius of the planted primary cluster, in cube units.
  double cluster_radius = 0.05;
  /// Fraction of the n points planted in the primary cluster (t/n).
  double cluster_fraction = 0.25;
  /// Mixture families: number of components k.
  std::size_t k = 3;
  /// Gaussian mixture: per-component stddev.
  double sigma = 0.02;
  /// Gaussian mixture: minimum center separation, in units of sigma.
  double separation = 8.0;
  /// Gaussian mixture: weight ratio largest/smallest component (1 = balanced).
  double imbalance = 1.0;
  /// Fraction of points that are uniform background noise (mixture, outlier).
  double noise_fraction = 0.1;
  /// Heavy-tailed: Pareto tail index (smaller = heavier tail).
  double tail_index = 1.5;
  /// Axis-degenerate: number of coordinates the cluster actually varies in.
  std::size_t intrinsic_dim = 1;
  /// Grid-snapped: coarse sub-grid levels the cluster collapses onto.
  std::uint64_t snap_levels = 9;
  /// Annulus: shell thickness as a fraction of cluster_radius (0 = sphere).
  double shell_thickness = 0.1;
  /// Near-tie: relative radius advantage of the decoy cluster (0 = exact tie).
  double tie_margin = 0.05;
  /// Streaming: number of arrival/expiry ticks the schedule spans.
  std::size_t ticks = 8;

  /// Shared-field validation; family-specific checks are in ValidateSpec.
  Status Validate() const;
};

/// The arrival/expiry replay schedule a streaming family records alongside
/// its instance: every generated point in arrival order with the tick it
/// arrives and the tick it expires (expiry == ticks means it survives to the
/// end). The instance's own `points` hold exactly the surviving rows, in the
/// same relative order, so replaying the schedule through an incremental
/// IndexedDataset (Insert per arrival, Remove per expiry) ends in an active
/// set byte-identical to indexing the instance directly — that equivalence
/// is what dpcluster_cli --stream-ticks and the streaming benches check.
/// `ticks == 0` means the instance has no schedule (non-streaming families).
struct StreamSchedule {
  std::size_t ticks = 0;
  PointSet arrivals;                        // every point, arrival order
  std::vector<std::uint32_t> arrival_tick;  // first tick the point is live
  std::vector<std::uint32_t> expiry_tick;   // first tick it is gone
  /// The drifting planted ball per tick; back() is the instance's primary.
  std::vector<Ball> tick_balls;
};

/// A generated instance with ground truth. Points are snapped to the domain
/// grid; the truth fields are recorded before snapping (each point moves at
/// most step * sqrt(d) / 2 when snapped).
struct ScenarioInstance {
  /// The family that generated this instance.
  std::string scenario;
  GridDomain domain{2, 1};
  PointSet points;
  /// Target cluster size t: exactly the number of points labeled 0.
  std::size_t t = 0;
  /// Planted cluster balls; index 0 is the primary cluster the 1-cluster
  /// problem is asked about (the ball whose size is t).
  std::vector<Ball> true_balls;
  /// Per-point ground truth: index into true_balls, or -1 for background
  /// noise. labels.size() == points.size().
  std::vector<int> labels;
  /// Arrival/expiry replay schedule (streaming families only; see
  /// StreamSchedule — ticks == 0 everywhere else).
  StreamSchedule stream;

  const Ball& primary() const { return true_balls.front(); }

  /// Number of points carrying the given label.
  std::size_t LabelCount(int label) const;

  /// The weighted-distinct emission of this instance: byte-identical rows
  /// (grid_snapped's duplicate-heavy regime collapses n rows to the few
  /// occupied cells) merged into one weighted row each, in first-occurrence
  /// order, as a weighted IndexedDataset over `domain`. Weighted consumers
  /// (RadiusProfile, KnnCappedCounts, CountWithin, GoodRadius) release bytes
  /// bit-identical to running on the expanded rows — pinned by the weighted
  /// property tests. Instances with no duplicates return an all-weight-one
  /// index.
  Result<IndexedDataset> WeightedDistinctIndex() const;

  /// Structural invariants every generator must satisfy: sizes match, t
  /// equals the primary label count, balls present, points on the grid.
  Status CheckInvariants() const;
};

/// One scenario family: a named deterministic generator. Implementations must
/// be pure functions of (rng, spec) — identical seeds yield bit-identical
/// instances — and must fill labels/true_balls so CheckInvariants passes.
class ScenarioFamily {
 public:
  virtual ~ScenarioFamily() = default;

  /// Registry key ("gaussian_mixture", ...).
  virtual std::string_view name() const = 0;

  /// One-line human-readable description (harness --list output).
  virtual std::string_view description() const = 0;

  /// Family-specific spec checks, run after the generic ScenarioSpec::Validate.
  virtual Status ValidateSpec(const ScenarioSpec& spec) const = 0;

  /// Generates one instance. Draws only from `rng`.
  virtual Result<ScenarioInstance> Generate(Rng& rng,
                                            const ScenarioSpec& spec) const = 0;
};

}  // namespace dpcluster

#endif  // DPCLUSTER_DATA_SCENARIO_H_
