#include "dpcluster/data/registry.h"

#include <utility>

namespace dpcluster {

Status ScenarioRegistry::Register(std::unique_ptr<ScenarioFamily> family) {
  if (family == nullptr) {
    return Status::InvalidArgument("Register: scenario family is null");
  }
  std::string key(family->name());
  if (key.empty()) {
    return Status::InvalidArgument("Register: scenario family name is empty");
  }
  auto [it, inserted] = families_.emplace(std::move(key), std::move(family));
  if (!inserted) {
    return Status::InvalidArgument("Register: duplicate scenario name '" +
                                   it->first + "'");
  }
  return Status::OK();
}

Result<const ScenarioFamily*> ScenarioRegistry::Lookup(
    std::string_view name) const {
  auto it = families_.find(name);
  if (it == families_.end()) {
    std::string known;
    for (const auto& [key, unused] : families_) {
      if (!known.empty()) known += ", ";
      known += key;
    }
    return Status::NotFound("no scenario named '" + std::string(name) +
                            "' (registered: " + known + ")");
  }
  return it->second.get();
}

bool ScenarioRegistry::Contains(std::string_view name) const {
  return families_.find(name) != families_.end();
}

std::vector<std::string> ScenarioRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(families_.size());
  for (const auto& [key, unused] : families_) names.push_back(key);
  return names;  // std::map iterates in sorted order.
}

ScenarioRegistry& ScenarioRegistry::Global() {
  static ScenarioRegistry* registry = [] {
    auto* r = new ScenarioRegistry();
    // Built-in registration only fails on duplicate names, impossible here.
    RegisterBuiltinScenarios(*r);
    return r;
  }();
  return *registry;
}

Result<ScenarioInstance> GenerateScenario(const ScenarioRegistry& registry,
                                          Rng& rng, const ScenarioSpec& spec) {
  DPC_RETURN_IF_ERROR(spec.Validate());
  DPC_ASSIGN_OR_RETURN(const ScenarioFamily* family,
                       registry.Lookup(spec.scenario));
  DPC_RETURN_IF_ERROR(family->ValidateSpec(spec));
  DPC_ASSIGN_OR_RETURN(ScenarioInstance instance, family->Generate(rng, spec));
  DPC_RETURN_IF_ERROR(instance.CheckInvariants());
  return instance;
}

Result<ScenarioInstance> GenerateScenario(Rng& rng, const ScenarioSpec& spec) {
  return GenerateScenario(ScenarioRegistry::Global(), rng, spec);
}

}  // namespace dpcluster
