// Accuracy evaluation harness: scores Solver responses against a scenario's
// ground truth and sweeps scenario × algorithm × (epsilon, n, d) grids over
// repeated seeds, aggregating per-cell medians. This is the measured
// counterpart of the paper's Table 1 — radius blow-up, cluster coverage, and
// center placement relative to the *planted* truth instead of a non-private
// reference — and the substrate of the CI accuracy gate
// (tools/eval_harness.cc --smoke).

#ifndef DPCLUSTER_DATA_ACCURACY_H_
#define DPCLUSTER_DATA_ACCURACY_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "dpcluster/api/response.h"
#include "dpcluster/common/status.h"
#include "dpcluster/data/scenario.h"

namespace dpcluster {

/// Ground-truth-relative utility of one response on one instance. Ratios are
/// normalized by the reference radius: the tightest ball around the *true*
/// center capturing t points (floored at one grid step so degenerate
/// zero-radius truths stay finite).
struct AccuracyMetrics {
  /// Released radius / reference radius (the paper's w, against the truth).
  double radius_ratio = std::numeric_limits<double>::quiet_NaN();
  /// Fraction of the primary cluster's points inside the released ball.
  double coverage = 0.0;
  /// Distance from the released center to the true center / reference radius.
  double center_offset = std::numeric_limits<double>::quiet_NaN();
  /// Privacy budget the request actually charged.
  double eps_spent = 0.0;
  double delta_spent = 0.0;
  /// Wall-clock of the algorithm run, milliseconds.
  double wall_ms = 0.0;
};

/// The instance's reference radius: the tightest ball around the *true*
/// center capturing t points, floored at one grid step. Constant per
/// instance — compute it once when scoring many responses.
double ReferenceRadius(const ScenarioInstance& instance);

/// Scores `response` against the instance's ground truth. InvalidArgument if
/// the response released no ball of the instance's dimension.
Result<AccuracyMetrics> ScoreResponse(const ScenarioInstance& instance,
                                      const Response& response);

/// Same, with a precomputed ReferenceRadius(instance).
Result<AccuracyMetrics> ScoreResponse(const ScenarioInstance& instance,
                                      const Response& response,
                                      double reference_radius);

/// The sweep grid: every scenario × algorithm × epsilon × n × dim cell runs
/// `trials` times on independently seeded instances.
struct SweepConfig {
  /// Scenario family names; empty = every family in the global registry.
  std::vector<std::string> scenarios;
  /// Algorithm registry names to serve each instance with.
  std::vector<std::string> algorithms = {"one_cluster", "noisy_mean_baseline",
                                         "nonprivate"};
  /// Defaults sized so the paper pipeline clears its noise floor (one_cluster
  /// needs roughly eps >= 1 at n = 4096, levels = 1024, d = 2).
  std::vector<double> epsilons = {1.0, 2.0, 4.0};
  double delta = 1e-6;
  std::vector<std::size_t> ns = {4096};
  std::vector<std::size_t> dims = {2};
  std::uint64_t levels = std::uint64_t{1} << 10;
  /// Repeated seeds per cell (median aggregation).
  std::size_t trials = 5;
  std::uint64_t seed = 2016;
  std::size_t num_threads = 1;
  /// Spend a budget fraction tightening released radii (one_cluster): the
  /// refined radius tracks utility far better than the worst-case guarantee
  /// radius, so the sweep measures it by default.
  bool refine = true;
  /// When non-zero, cap GoodCenter's JL projection dimension at this value
  /// (Tuning::max_jl_dim) for every request; 0 keeps the algorithm default.
  /// eval_harness --jl-dim-sweep runs the sweep once per cap to map the
  /// accuracy/cost frontier of the projection dimension.
  std::size_t max_jl_dim = 0;
  /// Coreset stage knobs forwarded to every request (Tuning::coreset*): with
  /// `coreset` set, inputs of at least coreset_min_points rows are collapsed
  /// to a weighted k-center summary before the pipeline runs. The --smoke
  /// gate uses this to pin the compressed pipeline's radius_ratio to a fixed
  /// factor of the uncompressed reference.
  bool coreset = false;
  std::size_t coreset_min_points = 65536;
  std::size_t coreset_target_size = 2048;

  Status Validate() const;
};

/// One aggregated cell of the sweep.
struct SweepCell {
  std::string scenario;
  std::string algorithm;
  double epsilon = 0.0;
  std::size_t n = 0;
  std::size_t dim = 0;
  /// Trials attempted / trials whose Solver run or scoring failed.
  std::size_t trials = 0;
  std::size_t failures = 0;
  /// Per-field medians over the successful trials (NaN-filled when all fail).
  AccuracyMetrics median;
  /// Last failure message, when failures > 0.
  std::string note;
};

/// Runs the sweep through the Solver façade: per instance, the full
/// algorithm × epsilon grid goes through Solver::RunAll as one batch. Cells
/// come back ordered scenario-major, then (n, dim, algorithm, epsilon).
Result<std::vector<SweepCell>> RunAccuracySweep(const SweepConfig& config);

/// The cell with the given coordinates (first n/dim combination), or nullptr.
const SweepCell* FindCell(const std::vector<SweepCell>& cells,
                          std::string_view scenario, std::string_view algorithm,
                          double epsilon);

/// Writes the sweep as BENCH_accuracy.json-style JSON ({"config", "cells"});
/// returns false (and prints to stderr) on IO failure.
bool WriteAccuracyJson(const std::string& path, const SweepConfig& config,
                       const std::vector<SweepCell>& cells);

/// Prints the cells to stdout as one table per scenario × (n, dim) group
/// (cells must be in RunAccuracySweep's order). Shared by eval_harness and
/// bench_accuracy.
void PrintSweepTables(const std::vector<SweepCell>& cells);

}  // namespace dpcluster

#endif  // DPCLUSTER_DATA_ACCURACY_H_
