#include "dpcluster/data/scenario.h"

#include <algorithm>
#include <string>
#include <utility>

#include "dpcluster/coreset/coreset.h"

namespace dpcluster {

Status ScenarioSpec::Validate() const {
  if (n == 0) return Status::InvalidArgument("ScenarioSpec: n must be >= 1");
  if (dim == 0) return Status::InvalidArgument("ScenarioSpec: dim must be >= 1");
  if (levels < 2) {
    return Status::InvalidArgument("ScenarioSpec: levels must be >= 2");
  }
  if (!(axis_length > 0.0)) {
    return Status::InvalidArgument("ScenarioSpec: axis_length must be > 0");
  }
  if (!(cluster_radius > 0.0) ||
      2.0 * cluster_radius >= axis_length) {
    return Status::InvalidArgument(
        "ScenarioSpec: cluster_radius must be in (0, axis_length/2)");
  }
  if (!(cluster_fraction > 0.0) || cluster_fraction > 1.0) {
    return Status::InvalidArgument(
        "ScenarioSpec: cluster_fraction must be in (0, 1]");
  }
  if (static_cast<std::size_t>(cluster_fraction * static_cast<double>(n)) == 0) {
    return Status::InvalidArgument(
        "ScenarioSpec: cluster_fraction * n rounds to an empty cluster");
  }
  return Status::OK();
}

std::size_t ScenarioInstance::LabelCount(int label) const {
  return static_cast<std::size_t>(
      std::count(labels.begin(), labels.end(), label));
}

Result<IndexedDataset> ScenarioInstance::WeightedDistinctIndex() const {
  if (points.empty()) {
    return Status::InvalidArgument(
        "ScenarioInstance: no points to collapse");
  }
  return MakeWeightedIndex(CollapseDuplicates(points), domain);
}

Status ScenarioInstance::CheckInvariants() const {
  if (labels.size() != points.size()) {
    return Status::Internal("ScenarioInstance: labels/points size mismatch");
  }
  if (true_balls.empty()) {
    return Status::Internal("ScenarioInstance: no planted balls");
  }
  if (t == 0 || t > points.size()) {
    return Status::Internal("ScenarioInstance: t out of [1, n]");
  }
  if (LabelCount(0) != t) {
    return Status::Internal(
        "ScenarioInstance: t (" + std::to_string(t) +
        ") != primary label count (" + std::to_string(LabelCount(0)) + ")");
  }
  for (const Ball& ball : true_balls) {
    if (ball.center.size() != points.dim()) {
      return Status::Internal("ScenarioInstance: planted ball dim mismatch");
    }
  }
  for (int label : labels) {
    if (label < -1 || label >= static_cast<int>(true_balls.size())) {
      return Status::Internal("ScenarioInstance: label out of range");
    }
  }
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = 0; j < points.dim(); ++j) {
      if (!domain.OnGrid(points[i][j])) {
        return Status::Internal("ScenarioInstance: point off the domain grid");
      }
    }
  }
  return Status::OK();
}

}  // namespace dpcluster
