// String-keyed registry of ScenarioFamily implementations — the workload-side
// mirror of api/registry.h. The evaluation harness, benches, and tests
// generate instances by family name; custom families can be registered
// alongside the built-ins.

#ifndef DPCLUSTER_DATA_REGISTRY_H_
#define DPCLUSTER_DATA_REGISTRY_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "dpcluster/common/status.h"
#include "dpcluster/data/scenario.h"

namespace dpcluster {

class ScenarioRegistry {
 public:
  /// Adds a family under its name(); InvalidArgument on duplicates.
  Status Register(std::unique_ptr<ScenarioFamily> family);

  /// Looks a family up by name; NotFound (listing the registered names) when
  /// absent. The pointer stays valid for the registry's lifetime.
  Result<const ScenarioFamily*> Lookup(std::string_view name) const;

  bool Contains(std::string_view name) const;

  /// Registered names, sorted.
  std::vector<std::string> Names() const;

  std::size_t size() const { return families_.size(); }

  /// The process-wide registry, populated with the built-in families on
  /// first use.
  static ScenarioRegistry& Global();

 private:
  std::map<std::string, std::unique_ptr<ScenarioFamily>, std::less<>> families_;
};

/// Registers the built-in scenario families (data/generators.cc) into
/// `registry`. Names already present are left untouched.
Status RegisterBuiltinScenarios(ScenarioRegistry& registry);

/// Convenience: validate `spec` and generate one instance via the global
/// registry — lookup, generic + family validation, generation, invariants.
Result<ScenarioInstance> GenerateScenario(Rng& rng, const ScenarioSpec& spec);

/// Same, against an explicit registry.
Result<ScenarioInstance> GenerateScenario(const ScenarioRegistry& registry,
                                          Rng& rng, const ScenarioSpec& spec);

}  // namespace dpcluster

#endif  // DPCLUSTER_DATA_REGISTRY_H_
