// Ready-made non-private estimators for the sample-and-aggregate framework.
// Each returns an Estimator closure suitable for SampleAggregate(); they are
// the "off the shelf" analyses the paper's Section 6 is designed to compile
// into private ones.

#ifndef DPCLUSTER_SA_ESTIMATORS_H_
#define DPCLUSTER_SA_ESTIMATORS_H_

#include <cstddef>

#include "dpcluster/sa/sample_aggregate.h"

namespace dpcluster {

/// Coordinate-wise mean of the block (output dim = input dim).
Estimator MeanEstimator();

/// Coordinate-wise median of the block (output dim = input dim). Robust to a
/// minority of contaminated rows — the classic case where subsample stability
/// holds although global sensitivity is terrible.
Estimator MedianEstimator();

/// Coordinate-wise trimmed mean dropping the `trim_fraction` smallest and
/// largest values per coordinate.
Estimator TrimmedMeanEstimator(double trim_fraction);

/// Simple 1D least-squares slope through the origin: rows are (x, y) pairs
/// (input dim 2), output dim 1. Demonstrates compiling a regression analysis.
Estimator SlopeEstimator();

/// Lloyd's k-means on the block, output = the k centers concatenated into
/// R^{k*d} in lexicographic order (the canonical ordering is what lets the
/// block outputs of a well-separated mixture concentrate, so the 1-cluster
/// aggregator can find them — the k-means application of [16] that Section 1
/// cites). Deterministic: farthest-point initialization from the block's
/// coordinate-wise median.
Estimator KMeansEstimator(std::size_t k, int iterations = 12);

}  // namespace dpcluster

#endif  // DPCLUSTER_SA_ESTIMATORS_H_
