#include "dpcluster/sa/estimators.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "dpcluster/common/check.h"
#include "dpcluster/la/vector_ops.h"

namespace dpcluster {

Estimator MeanEstimator() {
  return [](const PointSet& block, std::span<double> out) -> Status {
    if (block.empty()) return Status::InvalidArgument("mean: empty block");
    if (out.size() != block.dim()) {
      return Status::InvalidArgument("mean: output dimension mismatch");
    }
    std::fill(out.begin(), out.end(), 0.0);
    for (std::size_t i = 0; i < block.size(); ++i) {
      const auto row = block[i];
      for (std::size_t j = 0; j < out.size(); ++j) out[j] += row[j];
    }
    const double inv = 1.0 / static_cast<double>(block.size());
    for (double& v : out) v *= inv;
    return Status::OK();
  };
}

Estimator MedianEstimator() {
  return [](const PointSet& block, std::span<double> out) -> Status {
    if (block.empty()) return Status::InvalidArgument("median: empty block");
    if (out.size() != block.dim()) {
      return Status::InvalidArgument("median: output dimension mismatch");
    }
    std::vector<double> col(block.size());
    for (std::size_t j = 0; j < out.size(); ++j) {
      for (std::size_t i = 0; i < block.size(); ++i) col[i] = block[i][j];
      const std::size_t mid = col.size() / 2;
      std::nth_element(col.begin(), col.begin() + static_cast<std::ptrdiff_t>(mid),
                       col.end());
      out[j] = col[mid];
    }
    return Status::OK();
  };
}

Estimator TrimmedMeanEstimator(double trim_fraction) {
  DPC_CHECK_GE(trim_fraction, 0.0);
  DPC_CHECK_LT(trim_fraction, 0.5);
  return [trim_fraction](const PointSet& block, std::span<double> out) -> Status {
    if (block.empty()) return Status::InvalidArgument("trimmed mean: empty block");
    if (out.size() != block.dim()) {
      return Status::InvalidArgument("trimmed mean: output dimension mismatch");
    }
    const auto cut = static_cast<std::size_t>(
        std::floor(trim_fraction * static_cast<double>(block.size())));
    if (block.size() <= 2 * cut) {
      return Status::InvalidArgument("trimmed mean: block too small for trim");
    }
    std::vector<double> col(block.size());
    for (std::size_t j = 0; j < out.size(); ++j) {
      for (std::size_t i = 0; i < block.size(); ++i) col[i] = block[i][j];
      std::sort(col.begin(), col.end());
      double sum = 0.0;
      for (std::size_t i = cut; i < col.size() - cut; ++i) sum += col[i];
      out[j] = sum / static_cast<double>(col.size() - 2 * cut);
    }
    return Status::OK();
  };
}

Estimator KMeansEstimator(std::size_t k, int iterations) {
  DPC_CHECK_GE(k, 1u);
  DPC_CHECK_GE(iterations, 1);
  return [k, iterations](const PointSet& block, std::span<double> out) -> Status {
    const std::size_t d = block.dim();
    const std::size_t n = block.size();
    if (n < k) return Status::InvalidArgument("kmeans: block smaller than k");
    if (out.size() != k * d) {
      return Status::InvalidArgument("kmeans: output dimension must be k*d");
    }

    // Deterministic farthest-point initialization seeded at the coordinate
    // median (robust to a stray outlier row grabbing the seed).
    std::vector<std::vector<double>> centers;
    centers.reserve(k);
    {
      std::vector<double> median(d);
      std::vector<double> col(n);
      for (std::size_t j = 0; j < d; ++j) {
        for (std::size_t i = 0; i < n; ++i) col[i] = block[i][j];
        std::nth_element(col.begin(),
                         col.begin() + static_cast<std::ptrdiff_t>(n / 2),
                         col.end());
        median[j] = col[n / 2];
      }
      // Nearest point to the median is the first center.
      std::size_t seed = 0;
      double best = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < n; ++i) {
        const double dist = SquaredDistance(block[i], median);
        if (dist < best) {
          best = dist;
          seed = i;
        }
      }
      centers.emplace_back(block[seed].begin(), block[seed].end());
      while (centers.size() < k) {
        std::size_t far = 0;
        double far_dist = -1.0;
        for (std::size_t i = 0; i < n; ++i) {
          double nearest = std::numeric_limits<double>::infinity();
          for (const auto& c : centers) {
            nearest = std::min(nearest, SquaredDistance(block[i], c));
          }
          if (nearest > far_dist) {
            far_dist = nearest;
            far = i;
          }
        }
        centers.emplace_back(block[far].begin(), block[far].end());
      }
    }

    // Lloyd iterations.
    std::vector<std::size_t> assign(n);
    std::vector<std::size_t> counts(k);
    for (int it = 0; it < iterations; ++it) {
      for (std::size_t i = 0; i < n; ++i) {
        std::size_t best_c = 0;
        double best_d = std::numeric_limits<double>::infinity();
        for (std::size_t c = 0; c < k; ++c) {
          const double dist = SquaredDistance(block[i], centers[c]);
          if (dist < best_d) {
            best_d = dist;
            best_c = c;
          }
        }
        assign[i] = best_c;
      }
      for (std::size_t c = 0; c < k; ++c) {
        std::fill(centers[c].begin(), centers[c].end(), 0.0);
        counts[c] = 0;
      }
      for (std::size_t i = 0; i < n; ++i) {
        const auto row = block[i];
        auto& c = centers[assign[i]];
        for (std::size_t j = 0; j < d; ++j) c[j] += row[j];
        ++counts[assign[i]];
      }
      for (std::size_t c = 0; c < k; ++c) {
        if (counts[c] == 0) continue;  // Keep the stale center.
        const double inv = 1.0 / static_cast<double>(counts[c]);
        for (double& v : centers[c]) v *= inv;
      }
    }

    // Canonical (lexicographic) ordering so equal clusterings from different
    // blocks serialize identically.
    std::sort(centers.begin(), centers.end());
    for (std::size_t c = 0; c < k; ++c) {
      for (std::size_t j = 0; j < d; ++j) out[c * d + j] = centers[c][j];
    }
    return Status::OK();
  };
}

Estimator SlopeEstimator() {
  return [](const PointSet& block, std::span<double> out) -> Status {
    if (block.dim() != 2) {
      return Status::InvalidArgument("slope: rows must be (x, y) pairs");
    }
    if (out.size() != 1) {
      return Status::InvalidArgument("slope: output dimension must be 1");
    }
    double xy = 0.0;
    double xx = 0.0;
    for (std::size_t i = 0; i < block.size(); ++i) {
      const auto row = block[i];
      xy += row[0] * row[1];
      xx += row[0] * row[0];
    }
    if (xx == 0.0) return Status::InvalidArgument("slope: degenerate block");
    out[0] = xy / xx;
    return Status::OK();
  };
}

}  // namespace dpcluster
