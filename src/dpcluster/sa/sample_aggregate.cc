#include "dpcluster/sa/sample_aggregate.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "dpcluster/common/check.h"
#include "dpcluster/parallel/parallel_for.h"

namespace dpcluster {

Status SampleAggregateOptions::Validate() const {
  DPC_RETURN_IF_ERROR(params.ValidateWithPositiveDelta());
  if (!(beta > 0.0) || !(beta < 1.0)) {
    return Status::InvalidArgument("SampleAggregate: beta must be in (0,1)");
  }
  if (block_size < 1) {
    return Status::InvalidArgument("SampleAggregate: block_size must be >= 1");
  }
  if (!(alpha > 0.0) || !(alpha <= 1.0)) {
    return Status::InvalidArgument("SampleAggregate: alpha must be in (0,1]");
  }
  return Status::OK();
}

Result<SampleAggregateResult> SampleAggregate(
    Rng& rng, const PointSet& s, const Estimator& f, const GridDomain& out_domain,
    const SampleAggregateOptions& options) {
  DPC_RETURN_IF_ERROR(options.Validate());
  const std::size_t n = s.size();
  const std::size_t m = options.block_size;
  if (n < 18 * m) {
    return Status::InvalidArgument(
        "SampleAggregate: need n >= 18 * block_size (n=" + std::to_string(n) +
        ", m=" + std::to_string(m) + ")");
  }

  // Step 1: n/9 iid samples (with replacement), split into k blocks of size m.
  const std::size_t k = n / (9 * m);
  DPC_CHECK_GE(k, 2u);
  std::vector<std::size_t> sample(k * m);
  for (auto& idx : sample) idx = rng.NextUint64(n);

  // Step 2: evaluate the estimator on every block (in parallel — each block
  // writes its own preallocated output row, and the first failing block by
  // index wins, matching the serial error); snap outputs to X^d.
  SampleAggregateResult result;
  result.blocks = k;
  PointSet outputs(out_domain.dim(),
                   std::vector<double>(k * out_domain.dim(), 0.0));
  ThreadPool pool(options.num_threads);
  std::vector<Status> chunk_status(NumChunks(k, 1), Status::OK());
  std::atomic<bool> failed{false};
  ParallelForChunks(&pool, 0, k, 1,
                    [&](std::size_t lo, std::size_t hi, std::size_t chunk) {
    // Short-circuit once any block failed (the serial path then matches the
    // old first-error behavior exactly; in parallel, in-flight blocks may
    // still finish, but the reported error is the lowest failing block's).
    if (failed.load(std::memory_order_relaxed)) return;
    std::vector<double> buf(out_domain.dim());
    for (std::size_t b = lo; b < hi; ++b) {
      const PointSet block =
          s.Subset(std::span<const std::size_t>(sample).subspan(b * m, m));
      const Status status = f(block, buf);
      if (!status.ok()) {
        chunk_status[chunk] = status;
        failed.store(true, std::memory_order_relaxed);
        return;
      }
      out_domain.SnapPoint(buf);
      std::copy(buf.begin(), buf.end(), outputs.MutableRow(b).begin());
    }
  }, kAlwaysParallel);
  for (const Status& status : chunk_status) {
    DPC_RETURN_IF_ERROR(status);
  }

  // Step 3: aggregate with the 1-cluster solver, t = alpha k / 2.
  const auto t = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::floor(options.alpha * static_cast<double>(k) / 2.0)));
  OneClusterOptions oc = options.one_cluster;
  oc.params = options.params;
  oc.beta = options.beta;
  oc.num_threads = options.num_threads;
  DPC_ASSIGN_OR_RETURN(result.aggregate,
                       OneCluster(rng, outputs, t, out_domain, oc));
  result.point = result.aggregate.ball.center;
  result.radius = result.aggregate.ball.radius;

  // Lemma 6.4: sampling n/9 rows iid then running an (eps, delta)-DP analysis
  // on them is (6 eps m'/n, exp(6 eps m'/n) 4 m'/n delta)-DP with m' = km <= n/9.
  const double ratio =
      static_cast<double>(k * m) / static_cast<double>(n);
  result.amplified.epsilon = 6.0 * options.params.epsilon * ratio;
  result.amplified.delta = std::exp(result.amplified.epsilon) * 4.0 * ratio *
                           options.params.delta;
  return result;
}

}  // namespace dpcluster
