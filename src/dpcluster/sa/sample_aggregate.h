// Algorithm 4 (SA): the improved sample-and-aggregate framework of Section 6.
// A non-private estimator f : U* -> X^d is applied to k = n/(9m) disjoint
// blocks of an iid subsample of the input; the k outputs are aggregated by the
// 1-cluster solver with t = alpha k / 2. If f is (m, r, alpha)-stable on S
// (Definition 6.1), the released point is an (m, O(w r), alpha/8)-stable point
// (Theorem 6.3) — i.e. a private substitute for f(S) whose radius error does
// not pay the sqrt(d) factor of the original sample-and-aggregate of [16].

#ifndef DPCLUSTER_SA_SAMPLE_AGGREGATE_H_
#define DPCLUSTER_SA_SAMPLE_AGGREGATE_H_

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "dpcluster/common/status.h"
#include "dpcluster/core/one_cluster.h"
#include "dpcluster/geo/grid_domain.h"
#include "dpcluster/geo/point_set.h"
#include "dpcluster/random/rng.h"

namespace dpcluster {

/// A non-private analysis mapping a block of rows to a point of X^d
/// (out.size() == output dimension d, preallocated by the framework).
using Estimator =
    std::function<Status(const PointSet& block, std::span<double> out)>;

struct SampleAggregateOptions {
  /// Privacy budget of the aggregation. The iid subsampling of step 1 then
  /// amplifies this (Lemma 6.4); the amplified budget is reported in the
  /// result for reference.
  PrivacyParams params{1.0, 1e-9};
  double beta = 0.1;
  /// Block size m (the stability parameter). Must satisfy n >= 18 m.
  std::size_t block_size = 0;
  /// Stability fraction alpha in (0, 1]; t = alpha k / 2.
  double alpha = 0.5;
  /// Worker threads for the per-block estimator evaluations and the
  /// aggregator's numeric kernels (0 = one per hardware thread, 1 = serial;
  /// outputs are bit-identical at any setting). With num_threads != 1 the
  /// estimator must be thread-safe — a pure function of its block, which all
  /// estimators in sa/estimators.h are. Overwrites one_cluster.num_threads.
  std::size_t num_threads = 1;
  /// Aggregator configuration (params/beta/num_threads overwritten).
  OneClusterOptions one_cluster;

  Status Validate() const;
};

struct SampleAggregateResult {
  /// The released stable point z in X^d.
  std::vector<double> point;
  /// Radius of the ball the aggregator claims around z.
  double radius = 0.0;
  /// Number of blocks k the estimator was run on.
  std::size_t blocks = 0;
  /// The amplified budget of the whole call per Lemma 6.4 (for reference).
  PrivacyParams amplified;
  /// Aggregator diagnostics.
  OneClusterResult aggregate;
};

/// Runs SA: subsample n/9 rows iid, split into k blocks of size m, evaluate f
/// on each block (outputs snapped to `out_domain`), aggregate with OneCluster.
Result<SampleAggregateResult> SampleAggregate(Rng& rng, const PointSet& s,
                                              const Estimator& f,
                                              const GridDomain& out_domain,
                                              const SampleAggregateOptions& options);

}  // namespace dpcluster

#endif  // DPCLUSTER_SA_SAMPLE_AGGREGATE_H_
