// IndexCache: the daemon's keyed LRU cache of shared IndexedDatasets.
//
// Clients name their dataset with a string key ("dataset" in the wire
// request); the cache maps that key to one IndexedDataset whose SpatialGrid
// and JL projection cache survive across requests, so repeated solves over
// the same data stop paying the index build. Because the client key is
// *claimed*, not proven, every hit is verified against GeometryFingerprint
// (geo/dataset.h): a key reused for different bytes replaces the entry
// instead of silently serving the wrong geometry.
//
// Concurrency: IndexedDataset is not thread-safe ("one thread at a time"),
// so the cache hands out exclusive RAII leases. A request that finds its
// entry leased by another worker BYPASSES the cache — it runs index-free,
// which by the PR-5 exactness contract releases bit-identical outputs, just
// without the reuse speedup. No request ever blocks on another tenant's
// index. Releasing a lease restores the entry's committed active set
// (the full dataset for cached entries, the post-mutation live set for
// streams), so the next borrower always starts from the same state.
//
// Streams: /v1/stream/append and /v1/stream/expire feed a server-resident
// IndexedDataset through MutateStream — edits go through the incremental
// Insert/Remove path so the grid survives, a live/total compaction
// heuristic bounds dead-row density, and a per-stream version (bumped on
// every mutation) replaces the fingerprint as the identity on solve borrows
// (AcquireStream). Stream entries are pinned: never evicted, never
// fingerprint-replaced.
//
// Eviction: least-recently-used among entries not currently leased, only
// when inserting above capacity. Stats() exposes hit/miss/replace/evict/
// bypass counters for /v1/stats and the cache tests.
//
// Coreset: when Acquire is passed enabled CoresetOptions (and the dataset
// clears min_points), the entry lazily builds and caches a weighted
// k-center summary index (coreset/coreset.h) next to the raw index, and the
// lease hands out the summary instead — repeated coreset solves over the
// same key pay the compression once. The summary is rebuilt when the
// dataset bytes change (fingerprint replace) or a different target size is
// requested; a failed summary build falls back to leasing the raw index.

#ifndef DPCLUSTER_SERVICE_INDEX_CACHE_H_
#define DPCLUSTER_SERVICE_INDEX_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "dpcluster/coreset/coreset.h"
#include "dpcluster/geo/dataset.h"

namespace dpcluster {

class IndexCache {
 public:
  /// Exclusive borrow of one cached IndexedDataset. Falsy when the cache
  /// was bypassed (entry leased elsewhere, capacity exhausted by leased
  /// entries, or index construction failed) — the caller then runs
  /// index-free. Move-only; returns the entry on destruction.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept { *this = std::move(other); }
    Lease& operator=(Lease&& other) noexcept {
      Release();
      cache_ = other.cache_;
      index_ = std::move(other.index_);
      other.cache_ = nullptr;
      other.index_.reset();
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { Release(); }

    explicit operator bool() const { return index_ != nullptr; }
    /// The leased index; only valid while the lease is truthy. The caller
    /// may hand this to Request::shared_index but must not retain it past
    /// the lease's lifetime.
    const std::shared_ptr<IndexedDataset>& index() const { return index_; }

   private:
    friend class IndexCache;
    Lease(IndexCache* cache, std::shared_ptr<IndexedDataset> index)
        : cache_(cache), index_(std::move(index)) {}
    void Release();

    IndexCache* cache_ = nullptr;
    std::shared_ptr<IndexedDataset> index_;
  };

  struct Stats {
    std::uint64_t hits = 0;       ///< Key found, fingerprint verified.
    std::uint64_t misses = 0;     ///< Key absent; fresh index built.
    std::uint64_t replaced = 0;   ///< Key found but bytes changed.
    std::uint64_t evictions = 0;  ///< LRU entry dropped to make room.
    std::uint64_t bypasses = 0;   ///< Served index-free (entry busy / full
                                  ///< of leased entries / build failure).
    std::uint64_t entries = 0;    ///< Current resident indexes.
  };

  /// Post-call state of one streaming dataset (the /v1/stream/* reply body).
  struct StreamStatus {
    /// Monotone edit counter: every successful mutation — and every
    /// compaction, which renumbers row ids — advances it. The version IS
    /// the stream's identity on later borrows (there are no client bytes to
    /// fingerprint), so replies carry it.
    std::uint64_t version = 0;
    std::size_t live = 0;   ///< Active rows.
    std::size_t total = 0;  ///< Resident rows including expired ones.
    bool compacted = false; ///< This call dropped expired rows (ids moved).
    bool created = false;   ///< This call created the stream.
  };

  /// `capacity` >= 1: max resident indexes.
  explicit IndexCache(std::size_t capacity);

  /// Borrows (building on demand) the index for `key` over exactly
  /// (points, domain). Falsy lease = bypass; never blocks on a busy entry.
  /// With `coreset.enabled` and points.size() >= coreset.min_points, the
  /// lease carries the entry's cached weighted summary index instead of the
  /// raw one (built on first request, reused until the bytes or the target
  /// size change); the raw index is the fallback if compression fails.
  /// A `key` naming a resident stream always bypasses: client-supplied bytes
  /// never replace (and so never destroy) stream state.
  Lease Acquire(const std::string& key, const PointSet& points,
                const GridDomain& domain, const CoresetOptions& coreset = {});

  /// Applies `mutate` exclusively to the stream named `key`, creating an
  /// empty stream over `*create_domain` first when the key is absent
  /// (absent + null domain is NotFound; a key naming a non-stream entry is
  /// InvalidArgument). `mutate` edits the dataset through Insert/Remove and
  /// returns the number of rows it touched (accumulated toward coreset
  /// staleness); its error aborts the call with the mutation half-applied
  /// only if it errored mid-batch — parsers should validate up front.
  /// After a successful mutation the version advances and, when
  /// live/total < compact_fraction (and any row is dead), the index is
  /// compacted in place. A leased (busy) stream or a cache full of leased
  /// entries is ResourceExhausted — retryable, never silently dropped.
  Result<StreamStatus> MutateStream(
      const std::string& key, const GridDomain* create_domain,
      double compact_fraction,
      const std::function<Result<std::size_t>(IndexedDataset&)>& mutate);

  /// Version-tagged borrow of a live stream for a solve. No fingerprint is
  /// verified — the stream's bytes live server-side and the returned
  /// StreamStatus::version names exactly what the solve saw. Expired rows
  /// still resident are compacted away first (bumping the version) so the
  /// leased index satisfies the shared_index contract: every row active,
  /// rows byte-identical to `*active`. With `coreset.enabled`, the cached
  /// summary is reused until the rows edited since it was built exceed
  /// staleness_fraction * live, then rebuilt from the current active set.
  /// NotFound when the key names no stream; ResourceExhausted when busy.
  Result<Lease> AcquireStream(const std::string& key,
                              const CoresetOptions& coreset,
                              double staleness_fraction, PointSet* active,
                              GridDomain* domain, StreamStatus* status);

  Stats GetStats() const;

 private:
  struct Entry {
    std::string key;
    std::uint64_t fingerprint = 0;
    std::shared_ptr<IndexedDataset> index;
    /// Cached weighted summary over the same bytes; null until a coreset
    /// lease is first requested, reset on fingerprint replacement.
    std::shared_ptr<IndexedDataset> coreset_index;
    std::size_t coreset_target = 0;  // target_size the summary was built at.
    bool leased = false;
    std::uint64_t last_used = 0;  // LRU clock value of the latest borrow.
    /// Streaming entries (see MutateStream): the dataset is server-resident
    /// state, not a cached view of client bytes — never fingerprint-replaced
    /// and never LRU-evicted. `committed` is the active set as of the last
    /// mutation; releasing a solve lease restores it (NOT RestoreAll, which
    /// would resurrect expired rows). `edit_rows` counts rows appended +
    /// expired since the cached coreset summary was built.
    bool stream = false;
    std::uint64_t version = 0;
    std::uint64_t edit_rows = 0;
    IndexedDataset::Snapshot committed;
  };

  /// Leases `entry`, handing out its coreset summary when `coreset` asks for
  /// one (building or rebuilding it as needed). Call with mutex_ held.
  Lease LeaseEntry(Entry& entry, const PointSet& points,
                   const GridDomain& domain, const CoresetOptions& coreset);

  /// Marks the entry holding `index` not-leased and restores the dataset the
  /// borrower edited: committed live set for streams, full active set
  /// otherwise. Entries can shift position while a lease is out (a lower
  /// slot may be evicted), so the entry is found by pointer identity —
  /// leased entries are never evicted.
  void ReleaseEntry(const IndexedDataset* index);

  /// LRU slot eligible for eviction (not leased, not a stream), or
  /// entries_.size() when none is. Call with mutex_ held.
  std::size_t EvictionVictim() const;

  /// The stream entry named `key`, creating it over `*create_domain` when
  /// absent (null = NotFound). Errors as documented on MutateStream. Call
  /// with mutex_ held.
  Result<Entry*> StreamEntry(const std::string& key,
                             const GridDomain* create_domain, bool* created);

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<Entry> entries_;
  std::uint64_t clock_ = 0;
  Stats stats_;
};

}  // namespace dpcluster

#endif  // DPCLUSTER_SERVICE_INDEX_CACHE_H_
