#include "dpcluster/service/service.h"

#include <optional>
#include <utility>
#include <vector>

#include "dpcluster/api/solver.h"
#include "dpcluster/common/check.h"

namespace dpcluster {

namespace {

// Same floating-point slack BudgetSession allows on its own overdraw check:
// admission must not refuse a request that composition arithmetic would
// accept.
constexpr double kSlack = 1e-12;

std::string LedgerKey(const std::string& tenant, const std::string& dataset) {
  return tenant + "\n" + dataset;
}

JsonValue BudgetToJson(const PrivacyParams& cap, const PrivacyParams& spent) {
  PrivacyParams remaining{cap.epsilon - spent.epsilon, cap.delta - spent.delta};
  if (remaining.epsilon < 0.0) remaining.epsilon = 0.0;
  if (remaining.delta < 0.0) remaining.delta = 0.0;
  JsonValue object = JsonValue::Object();
  object.Set("cap", PrivacyParamsToJson(cap));
  object.Set("spent", PrivacyParamsToJson(spent));
  object.Set("remaining", PrivacyParamsToJson(remaining));
  return object;
}

ServiceReply ReplyWith(int http_status, const JsonValue& json) {
  return ServiceReply{http_status, json.Encode()};
}

/// The wire code for an IndexCache stream error: absent stream = 404,
/// busy/full = 503 (retryable), bad arguments = 400.
ServiceErrorCode StreamErrorCode(const Status& status) {
  switch (status.code()) {
    case StatusCode::kNotFound: return ServiceErrorCode::kUnknownDataset;
    case StatusCode::kResourceExhausted: return ServiceErrorCode::kQueueFull;
    case StatusCode::kInvalidArgument:
      return ServiceErrorCode::kInvalidRequest;
    default: return ServiceErrorCode::kInternal;
  }
}

}  // namespace

ClusterService::ClusterService(ServiceOptions options)
    : options_(std::move(options)),
      registry_(options_.registry != nullptr ? options_.registry
                                             : &AlgorithmRegistry::Global()),
      cache_(options_.cache_capacity) {}

bool ClusterService::shutdown_requested() const {
  return shutdown_.load(std::memory_order_acquire);
}

void ClusterService::RequestShutdown() {
  shutdown_.store(true, std::memory_order_release);
}

ClusterService::Stats ClusterService::GetStats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

PrivacyParams ClusterService::SpentBy(const std::string& tenant,
                                      const std::string& dataset) const {
  std::lock_guard<std::mutex> lock(ledger_mutex_);
  const auto it = ledgers_.find(LedgerKey(tenant, dataset));
  if (it == ledgers_.end()) return PrivacyParams{0.0, 0.0};
  return it->second.charges.BasicTotal();
}

PrivacyParams ClusterService::CapFor(const std::string& tenant) const {
  const auto it = options_.tenant_budgets.find(tenant);
  return it != options_.tenant_budgets.end() ? it->second
                                             : options_.default_budget;
}

ServiceReply ClusterService::Error(ServiceErrorCode code,
                                   const std::string& message) {
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.rejected;
    if (code == ServiceErrorCode::kBudgetExhausted) ++stats_.budget_rejections;
  }
  return ReplyWith(HttpStatusOf(code), ErrorToJson(code, message));
}

ServiceReply ClusterService::Handle(std::string_view method,
                                    std::string_view path,
                                    std::string_view body) {
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.requests;
  }
  if (path == "/healthz") {
    if (method != "GET") {
      return ReplyWith(405, ErrorToJson(ServiceErrorCode::kMethodNotAllowed,
                                        "/healthz accepts GET"));
    }
    return Health();
  }
  if (path == "/v1/algorithms") {
    if (method != "GET") {
      return ReplyWith(405, ErrorToJson(ServiceErrorCode::kMethodNotAllowed,
                                        "/v1/algorithms accepts GET"));
    }
    return Algorithms();
  }
  if (path == "/v1/stats") {
    if (method != "GET") {
      return ReplyWith(405, ErrorToJson(ServiceErrorCode::kMethodNotAllowed,
                                        "/v1/stats accepts GET"));
    }
    return StatsReply();
  }
  if (path == "/v1/solve") {
    if (method != "POST") {
      return ReplyWith(405, ErrorToJson(ServiceErrorCode::kMethodNotAllowed,
                                        "/v1/solve accepts POST"));
    }
    if (shutdown_requested()) {
      return Error(ServiceErrorCode::kShuttingDown, "server is draining");
    }
    return Solve(body);
  }
  if (path == "/v1/stream/append" || path == "/v1/stream/expire") {
    if (method != "POST") {
      return ReplyWith(405, ErrorToJson(ServiceErrorCode::kMethodNotAllowed,
                                        std::string(path) + " accepts POST"));
    }
    if (shutdown_requested()) {
      return Error(ServiceErrorCode::kShuttingDown, "server is draining");
    }
    return StreamMutate(body, /*append=*/path == "/v1/stream/append");
  }
  if (path == "/v1/shutdown") {
    if (method != "POST") {
      return ReplyWith(405, ErrorToJson(ServiceErrorCode::kMethodNotAllowed,
                                        "/v1/shutdown accepts POST"));
    }
    if (!options_.allow_remote_shutdown) {
      return ReplyWith(404, ErrorToJson(ServiceErrorCode::kRouteNotFound,
                                        "remote shutdown is disabled"));
    }
    RequestShutdown();
    JsonValue reply = JsonValue::Object();
    reply.Set("ok", JsonValue::Bool(true));
    reply.Set("status", JsonValue::String("draining"));
    return ReplyWith(200, reply);
  }
  return ReplyWith(404, ErrorToJson(ServiceErrorCode::kRouteNotFound,
                                    "no route " + std::string(path)));
}

ServiceReply ClusterService::Health() const {
  JsonValue reply = JsonValue::Object();
  reply.Set("ok", JsonValue::Bool(true));
  reply.Set("status", JsonValue::String(shutdown_requested() ? "draining"
                                                             : "serving"));
  return ReplyWith(200, reply);
}

ServiceReply ClusterService::Algorithms() const {
  JsonValue names = JsonValue::Array();
  for (const std::string& name : registry_->Names()) {
    names.Append(JsonValue::String(name));
  }
  JsonValue reply = JsonValue::Object();
  reply.Set("ok", JsonValue::Bool(true));
  reply.Set("algorithms", std::move(names));
  return ReplyWith(200, reply);
}

ServiceReply ClusterService::StatsReply() const {
  const Stats stats = GetStats();
  const IndexCache::Stats cache = cache_.GetStats();
  JsonValue reply = JsonValue::Object();
  reply.Set("ok", JsonValue::Bool(true));
  JsonValue requests = JsonValue::Object();
  requests.Set("handled", JsonValue::Number(stats.requests));
  requests.Set("solved", JsonValue::Number(stats.solved));
  requests.Set("rejected", JsonValue::Number(stats.rejected));
  requests.Set("budget_rejections",
               JsonValue::Number(stats.budget_rejections));
  reply.Set("requests", std::move(requests));
  JsonValue stream_json = JsonValue::Object();
  stream_json.Set("appends", JsonValue::Number(stats.stream_appends));
  stream_json.Set("expires", JsonValue::Number(stats.stream_expires));
  stream_json.Set("compactions",
                  JsonValue::Number(stats.stream_compactions));
  reply.Set("stream", std::move(stream_json));
  JsonValue cache_json = JsonValue::Object();
  cache_json.Set("hits", JsonValue::Number(cache.hits));
  cache_json.Set("misses", JsonValue::Number(cache.misses));
  cache_json.Set("replaced", JsonValue::Number(cache.replaced));
  cache_json.Set("evictions", JsonValue::Number(cache.evictions));
  cache_json.Set("bypasses", JsonValue::Number(cache.bypasses));
  cache_json.Set("entries", JsonValue::Number(cache.entries));
  reply.Set("index_cache", std::move(cache_json));
  JsonValue tenants = JsonValue::Array();
  {
    std::lock_guard<std::mutex> lock(ledger_mutex_);
    for (const auto& [key, ledger] : ledgers_) {
      const std::size_t split = key.find('\n');
      JsonValue row = JsonValue::Object();
      row.Set("tenant", JsonValue::String(key.substr(0, split)));
      row.Set("dataset", JsonValue::String(key.substr(split + 1)));
      row.Set("budget",
              BudgetToJson(ledger.cap, ledger.charges.BasicTotal()));
      tenants.Append(std::move(row));
    }
  }
  reply.Set("tenants", std::move(tenants));
  return ReplyWith(200, reply);
}

ServiceReply ClusterService::Solve(std::string_view body) {
  if (body.size() > options_.max_body_bytes) {
    return Error(ServiceErrorCode::kPayloadTooLarge,
                 "body exceeds " + std::to_string(options_.max_body_bytes) +
                     " bytes");
  }

  // Phase 1 — parse. Shape problems are ParseError; nothing is charged.
  auto parsed = ParseWireRequest(body);
  if (!parsed.ok()) {
    return Error(ServiceErrorCode::kParseError, parsed.status().message());
  }
  WireRequest wire = std::move(*parsed);
  Request& request = wire.request;

  // Stream solves ("stream": true) run over the resident streaming dataset:
  // the lease is version-tagged (no client bytes to fingerprint) and carries
  // the maintained index, so the solve pays no re-index. Acquired before
  // admission because the data and domain come from the entry; an admission
  // rejection releases the lease untouched.
  IndexCache::Lease lease;
  IndexCache::StreamStatus stream_status;
  if (wire.stream) {
    CoresetOptions coreset;
    coreset.enabled = request.tuning.coreset;
    coreset.min_points = request.tuning.coreset_min_points;
    coreset.target_size = request.tuning.coreset_target_size;
    PointSet active;
    GridDomain stream_domain(2, 1);
    auto acquired = cache_.AcquireStream(
        wire.dataset, coreset, request.tuning.coreset_staleness_fraction,
        &active, &stream_domain, &stream_status);
    if (!acquired.ok()) {
      return Error(StreamErrorCode(acquired.status()),
                   acquired.status().message());
    }
    lease = std::move(*acquired);
    if (active.empty()) {
      return Error(ServiceErrorCode::kInvalidRequest,
                   "stream \"" + wire.dataset + "\" has no live rows");
    }
    request.data = std::move(active);
    request.domain = stream_domain;
  }

  if (wire.snap && request.domain.has_value()) {
    request.domain->SnapAll(request.data);
  }
  if (!wire.stream && request.data.size() > options_.max_points) {
    return Error(ServiceErrorCode::kPayloadTooLarge,
                 "request carries " + std::to_string(request.data.size()) +
                     " points; the server caps at " +
                     std::to_string(options_.max_points));
  }

  // Phase 2 — validate everything that can fail without touching the data,
  // so invalid requests charge nothing. The same checks run again inside
  // Solver::Run; they are cheap.
  auto algorithm = registry_->Lookup(request.algorithm);
  if (!algorithm.ok()) {
    return Error(ServiceErrorCode::kUnknownAlgorithm,
                 algorithm.status().message());
  }
  if (Status status = request.Validate(); !status.ok()) {
    return Error(ServiceErrorCode::kInvalidRequest, status.message());
  }
  if (Status status = (*algorithm)->ValidateRequest(request); !status.ok()) {
    return Error(ServiceErrorCode::kInvalidRequest, status.message());
  }

  // Phase 3 — admission. Under the ledger mutex: charge the FULL requested
  // budget up front, or reject with the structured remaining-budget error.
  PrivacyParams cap, spent;
  bool admitted = false;
  {
    std::lock_guard<std::mutex> lock(ledger_mutex_);
    auto [it, inserted] =
        ledgers_.try_emplace(LedgerKey(wire.tenant, wire.dataset));
    TenantLedger& ledger = it->second;
    if (inserted) ledger.cap = CapFor(wire.tenant);
    cap = ledger.cap;
    spent = ledger.charges.BasicTotal();
    if (spent.epsilon + request.budget.epsilon <= cap.epsilon + kSlack &&
        spent.delta + request.budget.delta <= cap.delta + kSlack) {
      ledger.charges.Charge("solve/" + request.algorithm, request.budget);
      spent = ledger.charges.BasicTotal();
      admitted = true;
    }
  }
  if (!admitted) {
    JsonValue error = ErrorToJson(
        ServiceErrorCode::kBudgetExhausted,
        "(tenant \"" + wire.tenant + "\", dataset \"" + wire.dataset +
            "\") cannot cover (epsilon=" +
            JsonNumberLexeme(request.budget.epsilon) +
            ", delta=" + JsonNumberLexeme(request.budget.delta) + ")");
    error.Set("budget", BudgetToJson(cap, spent));
    error.Set("requested", PrivacyParamsToJson(request.budget));
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.rejected;
      ++stats_.budget_rejections;
    }
    return ReplyWith(HttpStatusOf(ServiceErrorCode::kBudgetExhausted),
                     std::move(error));
  }

  // Phase 4 — borrow the shared index when the request has a domain. A busy
  // or full cache bypasses (index-free run, bit-identical outputs). With the
  // coreset tuning knobs set, the lease carries the cached weighted summary
  // instead of the raw index (built once per dataset, reused across solves).
  // Stream solves already hold their version-tagged lease from above.
  if (!wire.stream && request.domain.has_value() && !request.data.empty()) {
    CoresetOptions coreset;
    coreset.enabled = request.tuning.coreset;
    coreset.min_points = request.tuning.coreset_min_points;
    coreset.target_size = request.tuning.coreset_target_size;
    lease = cache_.Acquire(wire.dataset, request.data, *request.domain,
                           coreset);
  }
  if (lease) request.shared_index = lease.index();

  // Phase 5 — solve on a per-request Solver, seeded from the wire request so
  // responses are deterministic per (request, seed) regardless of traffic.
  SolverOptions solver_options;
  solver_options.seed = wire.seed != 0 ? wire.seed : options_.seed;
  solver_options.diagnostics = options_.diagnostics;
  solver_options.registry = registry_;
  Solver solver(solver_options);
  auto response = solver.Run(request);
  request.shared_index.reset();  // Returned to the cache when `lease` dies.
  if (!response.ok()) {
    const ServiceErrorCode code = ServiceErrorFromStatus(response.status());
    JsonValue error = ErrorToJson(code, response.status().message());
    error.Set("budget", BudgetToJson(cap, spent));
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.rejected;
      if (code == ServiceErrorCode::kBudgetExhausted) {
        ++stats_.budget_rejections;
      }
    }
    return ReplyWith(HttpStatusOf(code), std::move(error));
  }

  JsonValue reply = JsonValue::Object();
  reply.Set("ok", JsonValue::Bool(true));
  reply.Set("tenant", JsonValue::String(wire.tenant));
  reply.Set("dataset", JsonValue::String(wire.dataset));
  reply.Set("seed", JsonValue::Number(solver_options.seed));
  reply.Set("indexed", JsonValue::Bool(static_cast<bool>(lease)));
  if (wire.stream) {
    JsonValue stream_json = JsonValue::Object();
    stream_json.Set("version", JsonValue::Number(stream_status.version));
    stream_json.Set("live", JsonValue::Number(static_cast<std::uint64_t>(
                                stream_status.live)));
    stream_json.Set("compacted", JsonValue::Bool(stream_status.compacted));
    reply.Set("stream", std::move(stream_json));
  }
  reply.Set("budget", BudgetToJson(cap, spent));
  reply.Set("response", ResponseToJson(*response));
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.solved;
  }
  return ReplyWith(200, reply);
}

ServiceReply ClusterService::StreamMutate(std::string_view body, bool append) {
  if (body.size() > options_.max_body_bytes) {
    return Error(ServiceErrorCode::kPayloadTooLarge,
                 "body exceeds " + std::to_string(options_.max_body_bytes) +
                     " bytes");
  }
  auto parsed = append ? ParseStreamAppend(body) : ParseStreamExpire(body);
  if (!parsed.ok()) {
    return Error(ServiceErrorCode::kParseError, parsed.status().message());
  }
  StreamRequest stream = std::move(*parsed);
  if (stream.points.size() > options_.max_points) {
    return Error(ServiceErrorCode::kPayloadTooLarge,
                 "request carries " + std::to_string(stream.points.size()) +
                     " points; the server caps at " +
                     std::to_string(options_.max_points));
  }
  std::optional<GridDomain> create_domain;
  if (append && stream.levels > 0) {
    create_domain.emplace(stream.levels, stream.points.dim(), stream.axis);
  }

  // The mutation body validates the whole batch before touching the dataset,
  // so a rejected request leaves the stream exactly as it was.
  std::size_t first_id = 0;
  auto mutate = [&](IndexedDataset& index) -> Result<std::size_t> {
    if (append) {
      if (stream.points.dim() != index.domain().dim()) {
        return Status::InvalidArgument(
            "points are " + std::to_string(stream.points.dim()) +
            "-dimensional; the stream is " +
            std::to_string(index.domain().dim()) + "-dimensional");
      }
      if (create_domain.has_value() &&
          (index.domain().levels() != create_domain->levels() ||
           index.domain().axis_length() != create_domain->axis_length())) {
        return Status::InvalidArgument(
            "\"levels\"/\"axis\" do not match the resident stream's domain");
      }
      if (stream.snap) index.domain().SnapAll(stream.points);
      const double axis = index.domain().axis_length();
      for (std::size_t i = 0; i < stream.points.size(); ++i) {
        for (const double x : stream.points[i]) {
          if (!(x >= 0.0 && x <= axis)) {
            return Status::InvalidArgument(
                "point " + std::to_string(i) +
                " lies outside the stream's cube (set \"snap\": true, or "
                "rescale the coordinates)");
          }
        }
      }
      first_id = index.size();
      for (std::size_t i = 0; i < stream.points.size(); ++i) {
        DPC_CHECK(index.Insert(stream.points[i]).ok());  // Validated above.
      }
      return stream.points.size();
    }
    // Expire: resolve every target row up front (oldest-first for "count").
    std::vector<std::uint32_t> doomed;
    if (stream.expire_count > 0) {
      const auto active = index.ActiveIds();
      if (stream.expire_count > active.size()) {
        return Status::InvalidArgument(
            "\"count\" = " + std::to_string(stream.expire_count) +
            " exceeds the " + std::to_string(active.size()) + " live rows");
      }
      doomed.assign(active.begin(),
                    active.begin() +
                        static_cast<std::ptrdiff_t>(stream.expire_count));
    } else {
      std::vector<std::uint8_t> seen(index.size(), 0);
      for (const std::uint32_t id : stream.expire_ids) {
        if (id >= index.size() || !index.IsActive(id)) {
          return Status::InvalidArgument(
              "row id " + std::to_string(id) +
              " is not a live row of this stream (ids go stale when a "
              "reply reports \"compacted\": true)");
        }
        if (seen[id] != 0) {
          return Status::InvalidArgument("row id " + std::to_string(id) +
                                         " listed twice");
        }
        seen[id] = 1;
      }
      doomed = stream.expire_ids;
    }
    for (const std::uint32_t id : doomed) index.Remove(id);
    return doomed.size();
  };

  auto status = cache_.MutateStream(
      stream.dataset, create_domain.has_value() ? &*create_domain : nullptr,
      stream.tuning.stream_compact_fraction, mutate);
  if (!status.ok()) {
    return Error(StreamErrorCode(status.status()),
                 status.status().message());
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    if (append) {
      ++stats_.stream_appends;
    } else {
      ++stats_.stream_expires;
    }
    if (status->compacted) ++stats_.stream_compactions;
  }
  JsonValue reply = JsonValue::Object();
  reply.Set("ok", JsonValue::Bool(true));
  reply.Set("dataset", JsonValue::String(stream.dataset));
  if (append) {
    reply.Set("appended",
              JsonValue::Number(
                  static_cast<std::uint64_t>(stream.points.size())));
    // Row ids [first_id, first_id + appended) — until a compaction
    // renumbers; then the reply says so and clients re-learn ids.
    reply.Set("first_id", status->compacted
                              ? JsonValue::Null()
                              : JsonValue::Number(
                                    static_cast<std::uint64_t>(first_id)));
  } else {
    reply.Set("expired",
              JsonValue::Number(stream.expire_count > 0
                                    ? stream.expire_count
                                    : static_cast<std::uint64_t>(
                                          stream.expire_ids.size())));
  }
  reply.Set("version", JsonValue::Number(status->version));
  reply.Set("live",
            JsonValue::Number(static_cast<std::uint64_t>(status->live)));
  reply.Set("total",
            JsonValue::Number(static_cast<std::uint64_t>(status->total)));
  reply.Set("compacted", JsonValue::Bool(status->compacted));
  reply.Set("created", JsonValue::Bool(status->created));
  return ReplyWith(200, reply);
}

}  // namespace dpcluster
