// ClusterService: the transport-independent core of the dpcluster daemon.
// One instance owns the multi-tenant state — per-(tenant, dataset) privacy
// accountants, the keyed IndexedDataset cache, the algorithm registry — and
// turns (method, path, body) triples into JSON replies. The HTTP server
// (service/http_server.h) is a thin shell around Handle(); tests drive
// Handle() directly, without sockets.
//
// Routes:
//   GET  /healthz          liveness + serving/draining state
//   GET  /v1/algorithms    registered algorithm names
//   GET  /v1/stats         request counters, cache stats, per-tenant spend
//   POST /v1/solve         one wire request (service/protocol.h) -> response
//   POST /v1/stream/append arrivals into a resident streaming dataset
//   POST /v1/stream/expire expire rows (oldest-first count, or by id)
//   POST /v1/shutdown      request graceful drain (when enabled)
//
// Streaming datasets: /v1/stream/append feeds points into a server-resident
// IndexedDataset held by the index cache (created on first append, keyed
// like any cached dataset). Edits ride the incremental Insert/Remove path,
// so the spatial index is maintained, not rebuilt, per batch; expired rows
// are compacted away once live/total drops below the request's
// tuning.stream_compact_fraction. A solve with "stream": true then runs
// over the live rows without shipping them: the reply echoes the stream
// version the solve saw. Ingestion itself spends no privacy budget — only
// solves are charged, against the same (tenant, dataset) ledger.
//
// Budget model: every (tenant, dataset) pair owns one privacy cap
// (tenant-overridable, default ServiceOptions::default_budget). Admission is
// conservative and race-free: after the request parses and validates (an
// invalid request charges NOTHING), the service — under the tenant ledger's
// mutex — checks spent + requested <= cap and charges the FULL requested
// (eps, delta) up front, before the algorithm runs. A request that cannot
// fit receives the structured BudgetExhausted rejection (HTTP 429) carrying
// the cap, spend, and remaining budget; other tenants and datasets are
// unaffected. A failed run after admission stays charged — the data may
// already have been queried (the same conservative stance Solver takes).
//
// Determinism: each solve runs on a fresh Solver seeded from the wire
// request's "seed" (0 = the server's configured seed), so a given (request,
// seed) pair releases the same bytes on every server, regardless of what
// other tenants are doing. The index cache only accelerates: cached-index
// and index-free runs release bit-identical outputs (geo/dataset.h).

#ifndef DPCLUSTER_SERVICE_SERVICE_H_
#define DPCLUSTER_SERVICE_SERVICE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "dpcluster/api/registry.h"
#include "dpcluster/dp/accountant.h"
#include "dpcluster/dp/privacy_params.h"
#include "dpcluster/service/index_cache.h"
#include "dpcluster/service/protocol.h"

namespace dpcluster {

struct ServiceOptions {
  /// Privacy cap of each (tenant, dataset) pair without an override.
  PrivacyParams default_budget{4.0, 1e-6};
  /// Per-tenant cap overrides (applies to each of the tenant's datasets).
  std::map<std::string, PrivacyParams> tenant_budgets;
  /// Resident IndexedDatasets in the keyed cache.
  std::size_t cache_capacity = 8;
  /// Hard cap on points per request (PayloadTooLarge above it).
  std::size_t max_points = 1u << 20;
  /// Hard cap on request body bytes (PayloadTooLarge above it).
  std::size_t max_body_bytes = 64u << 20;
  /// Default solver seed for wire requests with seed = 0.
  std::uint64_t seed = 2016;
  /// Compute utility diagnostics on solves (SolverOptions::diagnostics).
  bool diagnostics = true;
  /// Registry to dispatch against; nullptr = AlgorithmRegistry::Global().
  const AlgorithmRegistry* registry = nullptr;
  /// Honor POST /v1/shutdown. A local daemon enables it; disable when the
  /// port is reachable by untrusted clients.
  bool allow_remote_shutdown = true;
};

/// One HTTP-shaped reply: status code plus a JSON body.
struct ServiceReply {
  int http_status = 200;
  std::string body;
};

class ClusterService {
 public:
  struct Stats {
    std::uint64_t requests = 0;       ///< Handle() calls, any route.
    std::uint64_t solved = 0;         ///< /v1/solve runs that released.
    std::uint64_t rejected = 0;       ///< solve/stream errors of any kind.
    std::uint64_t budget_rejections = 0;  ///< ... of which BudgetExhausted.
    std::uint64_t stream_appends = 0;     ///< /v1/stream/append successes.
    std::uint64_t stream_expires = 0;     ///< /v1/stream/expire successes.
    std::uint64_t stream_compactions = 0; ///< Mutations that compacted.
  };

  explicit ClusterService(ServiceOptions options = {});

  /// Serves one request. Thread-safe: workers call this concurrently; all
  /// shared state (ledgers, cache, counters) is internally synchronized.
  ServiceReply Handle(std::string_view method, std::string_view path,
                      std::string_view body);

  /// True once a graceful drain was requested (POST /v1/shutdown, or
  /// RequestShutdown). The transport polls this to stop accepting.
  bool shutdown_requested() const;
  void RequestShutdown();

  Stats GetStats() const;
  IndexCache::Stats CacheStats() const { return cache_.GetStats(); }

  /// Spend so far of one (tenant, dataset) ledger, under basic composition;
  /// zero if the pair has never been charged.
  PrivacyParams SpentBy(const std::string& tenant,
                        const std::string& dataset) const;

  const AlgorithmRegistry& registry() const { return *registry_; }
  const ServiceOptions& options() const { return options_; }

 private:
  /// The per-(tenant, dataset) budget ledger. `spent` is kept as a running
  /// basic-composition total guarded by the service-wide ledger mutex.
  struct TenantLedger {
    PrivacyParams cap;
    Accountant charges;
  };

  ServiceReply Solve(std::string_view body);
  /// The /v1/stream/append and /v1/stream/expire handlers (`append` picks).
  ServiceReply StreamMutate(std::string_view body, bool append);
  ServiceReply Health() const;
  ServiceReply Algorithms() const;
  ServiceReply StatsReply() const;
  ServiceReply Error(ServiceErrorCode code, const std::string& message);
  PrivacyParams CapFor(const std::string& tenant) const;

  const ServiceOptions options_;
  const AlgorithmRegistry* registry_;
  IndexCache cache_;

  mutable std::mutex ledger_mutex_;
  std::map<std::string, TenantLedger> ledgers_;  // key: tenant + "\n" + dataset

  mutable std::mutex stats_mutex_;
  Stats stats_;

  std::atomic<bool> shutdown_{false};
};

}  // namespace dpcluster

#endif  // DPCLUSTER_SERVICE_SERVICE_H_
