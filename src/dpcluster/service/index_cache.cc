#include "dpcluster/service/index_cache.h"

#include <utility>

#include "dpcluster/common/check.h"

namespace dpcluster {

void IndexCache::Lease::Release() {
  if (cache_ == nullptr) return;
  // Hand the whole dataset back to the next borrower, whatever this
  // request's algorithm removed.
  index_->RestoreAll();
  cache_->ReleaseEntry(index_.get());
  cache_ = nullptr;
  index_.reset();
}

IndexCache::IndexCache(std::size_t capacity) : capacity_(capacity) {
  DPC_CHECK_GE(capacity, 1u);
  entries_.reserve(capacity);
}

IndexCache::Lease IndexCache::LeaseEntry(Entry& entry, const PointSet& points,
                                         const GridDomain& domain,
                                         const CoresetOptions& coreset) {
  std::shared_ptr<IndexedDataset> lent = entry.index;
  if (coreset.enabled && points.size() >= coreset.min_points) {
    if (entry.coreset_index == nullptr ||
        entry.coreset_target != coreset.target_size) {
      // First coreset request for these bytes (or a new target size):
      // compress once, serve the summary from here on. The build runs
      // serially — it happens at most once per entry generation, like the
      // raw index build above.
      entry.coreset_index.reset();
      entry.coreset_target = 0;
      auto summary = BuildCoreset(points, domain, coreset, nullptr);
      if (summary.ok()) {
        auto weighted = MakeWeightedIndex(std::move(*summary), domain);
        if (weighted.ok()) {
          entry.coreset_index =
              std::make_shared<IndexedDataset>(std::move(*weighted));
          entry.coreset_target = coreset.target_size;
        }
      }
    }
    // Compression failure is a soft miss: fall back to the raw index.
    if (entry.coreset_index != nullptr) lent = entry.coreset_index;
  }
  entry.leased = true;
  entry.last_used = ++clock_;
  return Lease(this, std::move(lent));
}

IndexCache::Lease IndexCache::Acquire(const std::string& key,
                                      const PointSet& points,
                                      const GridDomain& domain,
                                      const CoresetOptions& coreset) {
  const std::uint64_t fingerprint = GeometryFingerprint(points, domain);
  std::lock_guard<std::mutex> lock(mutex_);
  for (Entry& entry : entries_) {
    if (entry.key != key) continue;
    if (entry.leased) {
      ++stats_.bypasses;
      return Lease();
    }
    if (entry.fingerprint != fingerprint) {
      // Same key, different bytes: the claimed identity is stale. Replace
      // (the cached summary described the old bytes; drop it too).
      auto rebuilt = IndexedDataset::Create(points, domain);
      if (!rebuilt.ok()) {
        ++stats_.bypasses;
        return Lease();
      }
      entry.fingerprint = fingerprint;
      entry.index = std::make_shared<IndexedDataset>(std::move(*rebuilt));
      entry.coreset_index.reset();
      entry.coreset_target = 0;
      ++stats_.replaced;
    } else {
      ++stats_.hits;
    }
    return LeaseEntry(entry, points, domain, coreset);
  }

  // Miss: make room, then build.
  if (entries_.size() >= capacity_) {
    std::size_t victim = entries_.size();
    for (std::size_t slot = 0; slot < entries_.size(); ++slot) {
      if (entries_[slot].leased) continue;
      if (victim == entries_.size() ||
          entries_[slot].last_used < entries_[victim].last_used) {
        victim = slot;
      }
    }
    if (victim == entries_.size()) {
      // Every resident entry is leased right now; serve this one index-free.
      ++stats_.bypasses;
      return Lease();
    }
    entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(victim));
    ++stats_.evictions;
  }
  auto built = IndexedDataset::Create(points, domain);
  if (!built.ok()) {
    ++stats_.bypasses;
    return Lease();
  }
  Entry entry;
  entry.key = key;
  entry.fingerprint = fingerprint;
  entry.index = std::make_shared<IndexedDataset>(std::move(*built));
  entries_.push_back(std::move(entry));
  ++stats_.misses;
  return LeaseEntry(entries_.back(), points, domain, coreset);
}

void IndexCache::ReleaseEntry(const IndexedDataset* index) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Entry& entry : entries_) {
    if (entry.index.get() == index || entry.coreset_index.get() == index) {
      DPC_CHECK(entry.leased);
      entry.leased = false;
      return;
    }
  }
  DPC_CHECK(false);  // A live lease always has a resident entry.
}

IndexCache::Stats IndexCache::GetStats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats stats = stats_;
  stats.entries = entries_.size();
  return stats;
}

}  // namespace dpcluster
