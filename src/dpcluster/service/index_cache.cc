#include "dpcluster/service/index_cache.h"

#include <utility>

#include "dpcluster/common/check.h"

namespace dpcluster {

void IndexCache::Lease::Release() {
  if (cache_ == nullptr) return;
  // ReleaseEntry undoes whatever this request's algorithm removed (the
  // committed live set for streams, the whole dataset otherwise).
  cache_->ReleaseEntry(index_.get());
  cache_ = nullptr;
  index_.reset();
}

IndexCache::IndexCache(std::size_t capacity) : capacity_(capacity) {
  DPC_CHECK_GE(capacity, 1u);
  entries_.reserve(capacity);
}

IndexCache::Lease IndexCache::LeaseEntry(Entry& entry, const PointSet& points,
                                         const GridDomain& domain,
                                         const CoresetOptions& coreset) {
  std::shared_ptr<IndexedDataset> lent = entry.index;
  if (coreset.enabled && points.size() >= coreset.min_points) {
    if (entry.coreset_index == nullptr ||
        entry.coreset_target != coreset.target_size) {
      // First coreset request for these bytes (or a new target size):
      // compress once, serve the summary from here on. The build runs
      // serially — it happens at most once per entry generation, like the
      // raw index build above.
      entry.coreset_index.reset();
      entry.coreset_target = 0;
      auto summary = BuildCoreset(points, domain, coreset, nullptr);
      if (summary.ok()) {
        auto weighted = MakeWeightedIndex(std::move(*summary), domain);
        if (weighted.ok()) {
          entry.coreset_index =
              std::make_shared<IndexedDataset>(std::move(*weighted));
          entry.coreset_target = coreset.target_size;
          entry.edit_rows = 0;  // Streams: the summary is fresh again.
        }
      }
    }
    // Compression failure is a soft miss: fall back to the raw index.
    if (entry.coreset_index != nullptr) lent = entry.coreset_index;
  }
  entry.leased = true;
  entry.last_used = ++clock_;
  return Lease(this, std::move(lent));
}

std::size_t IndexCache::EvictionVictim() const {
  // LRU among entries that are neither leased nor pinned stream state;
  // entries_.size() = no victim. Call with mutex_ held.
  std::size_t victim = entries_.size();
  for (std::size_t slot = 0; slot < entries_.size(); ++slot) {
    if (entries_[slot].leased || entries_[slot].stream) continue;
    if (victim == entries_.size() ||
        entries_[slot].last_used < entries_[victim].last_used) {
      victim = slot;
    }
  }
  return victim;
}

IndexCache::Lease IndexCache::Acquire(const std::string& key,
                                      const PointSet& points,
                                      const GridDomain& domain,
                                      const CoresetOptions& coreset) {
  const std::uint64_t fingerprint = GeometryFingerprint(points, domain);
  std::lock_guard<std::mutex> lock(mutex_);
  for (Entry& entry : entries_) {
    if (entry.key != key) continue;
    if (entry.leased) {
      ++stats_.bypasses;
      return Lease();
    }
    if (entry.stream) {
      // The key names resident stream state; client-supplied bytes must
      // never replace it. Serve this request index-free.
      ++stats_.bypasses;
      return Lease();
    }
    if (entry.fingerprint != fingerprint) {
      // Same key, different bytes: the claimed identity is stale. Replace
      // (the cached summary described the old bytes; drop it too).
      auto rebuilt = IndexedDataset::Create(points, domain);
      if (!rebuilt.ok()) {
        ++stats_.bypasses;
        return Lease();
      }
      entry.fingerprint = fingerprint;
      entry.index = std::make_shared<IndexedDataset>(std::move(*rebuilt));
      entry.coreset_index.reset();
      entry.coreset_target = 0;
      ++stats_.replaced;
    } else {
      ++stats_.hits;
    }
    return LeaseEntry(entry, points, domain, coreset);
  }

  // Miss: make room, then build.
  if (entries_.size() >= capacity_) {
    const std::size_t victim = EvictionVictim();
    if (victim == entries_.size()) {
      // Every resident entry is leased (or pinned stream state) right now;
      // serve this one index-free.
      ++stats_.bypasses;
      return Lease();
    }
    entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(victim));
    ++stats_.evictions;
  }
  auto built = IndexedDataset::Create(points, domain);
  if (!built.ok()) {
    ++stats_.bypasses;
    return Lease();
  }
  Entry entry;
  entry.key = key;
  entry.fingerprint = fingerprint;
  entry.index = std::make_shared<IndexedDataset>(std::move(*built));
  entries_.push_back(std::move(entry));
  ++stats_.misses;
  return LeaseEntry(entries_.back(), points, domain, coreset);
}

void IndexCache::ReleaseEntry(const IndexedDataset* index) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Entry& entry : entries_) {
    if (entry.index.get() == index || entry.coreset_index.get() == index) {
      DPC_CHECK(entry.leased);
      // Hand the dataset back in its committed state, whatever the
      // borrower's algorithm removed. For a stream's raw index that is the
      // post-mutation live set — RestoreAll would resurrect expired rows.
      if (entry.stream && entry.index.get() == index) {
        DPC_CHECK(entry.index->Restore(entry.committed).ok());
      } else if (entry.index.get() == index) {
        entry.index->RestoreAll();
      } else {
        entry.coreset_index->RestoreAll();
      }
      entry.leased = false;
      return;
    }
  }
  DPC_CHECK(false);  // A live lease always has a resident entry.
}

Result<IndexCache::Entry*> IndexCache::StreamEntry(
    const std::string& key, const GridDomain* create_domain, bool* created) {
  for (Entry& entry : entries_) {
    if (entry.key != key) continue;
    if (!entry.stream) {
      return Status::InvalidArgument(
          "dataset \"" + key +
          "\" is a cached solve dataset, not a stream (pick another key)");
    }
    if (entry.leased) {
      return Status::ResourceExhausted("stream \"" + key +
                                       "\" is busy; retry");
    }
    return &entry;
  }
  if (create_domain == nullptr) {
    return Status::NotFound("no resident stream named \"" + key + "\"");
  }
  if (entries_.size() >= capacity_) {
    const std::size_t victim = EvictionVictim();
    if (victim == entries_.size()) {
      return Status::ResourceExhausted(
          "index cache is full of busy or stream entries; retry");
    }
    entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(victim));
    ++stats_.evictions;
  }
  auto built =
      IndexedDataset::Create(PointSet(create_domain->dim()), *create_domain);
  if (!built.ok()) return built.status();
  Entry entry;
  entry.key = key;
  entry.stream = true;
  entry.index = std::make_shared<IndexedDataset>(std::move(*built));
  entry.committed = entry.index->TakeSnapshot();
  entries_.push_back(std::move(entry));
  if (created != nullptr) *created = true;
  return &entries_.back();
}

Result<IndexCache::StreamStatus> IndexCache::MutateStream(
    const std::string& key, const GridDomain* create_domain,
    double compact_fraction,
    const std::function<Result<std::size_t>(IndexedDataset&)>& mutate) {
  std::lock_guard<std::mutex> lock(mutex_);
  StreamStatus status;
  DPC_ASSIGN_OR_RETURN(Entry * entry,
                       StreamEntry(key, create_domain, &status.created));
  IndexedDataset& index = *entry->index;
  DPC_ASSIGN_OR_RETURN(const std::size_t edited, mutate(index));
  entry->version += 1;
  entry->edit_rows += edited;
  if (index.active_size() < index.size() &&
      static_cast<double>(index.active_size()) <
          compact_fraction * static_cast<double>(index.size())) {
    index.Compact();
    entry->version += 1;  // Row ids moved; client-held ids are stale.
    status.compacted = true;
  }
  entry->committed = index.TakeSnapshot();
  entry->last_used = ++clock_;
  status.version = entry->version;
  status.live = index.active_size();
  status.total = index.size();
  return status;
}

Result<IndexCache::Lease> IndexCache::AcquireStream(
    const std::string& key, const CoresetOptions& coreset,
    double staleness_fraction, PointSet* active, GridDomain* domain,
    StreamStatus* status) {
  std::lock_guard<std::mutex> lock(mutex_);
  DPC_ASSIGN_OR_RETURN(Entry * entry,
                       StreamEntry(key, /*create_domain=*/nullptr, nullptr));
  IndexedDataset& index = *entry->index;
  if (index.active_size() < index.size()) {
    // The shared_index contract wants every resident row active; fold the
    // expired rows away before lending. Solves after an expiry pay this
    // once, then the entry is clean until the next expiry.
    index.Compact();
    entry->version += 1;
    entry->committed = index.TakeSnapshot();
    if (status != nullptr) status->compacted = true;
  }
  *active = index.points();
  *domain = index.domain();
  if (status != nullptr) {
    status->version = entry->version;
    status->live = index.active_size();
    status->total = index.size();
  }
  if (coreset.enabled && entry->coreset_index != nullptr &&
      static_cast<double>(entry->edit_rows) >
          staleness_fraction * static_cast<double>(index.active_size())) {
    // Drifted past the staleness threshold: drop the summary so LeaseEntry
    // rebuilds it from the current live set.
    entry->coreset_index.reset();
    entry->coreset_target = 0;
  }
  return LeaseEntry(*entry, *active, *domain, coreset);
}

IndexCache::Stats IndexCache::GetStats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats stats = stats_;
  stats.entries = entries_.size();
  return stats;
}

}  // namespace dpcluster
