#include "dpcluster/service/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "dpcluster/common/check.h"

namespace dpcluster {

namespace {

constexpr int kMaxDepth = 64;

void AppendEscaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  out.push_back('"');
}

void AppendUtf8(std::string& out, std::uint32_t cp) {
  if (cp < 0x80) {
    out.push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

/// Cursor over the input; all parse functions advance it or fail.
struct Parser {
  std::string_view text;
  std::size_t pos = 0;

  Status Error(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at byte " +
                                   std::to_string(pos) + ": " + what);
  }

  bool AtEnd() const { return pos >= text.size(); }
  char Peek() const { return text[pos]; }
  bool PeekDigit() const {
    return !AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()));
  }

  void SkipSpace() {
    while (!AtEnd()) {
      const char c = text[pos];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos;
      } else {
        break;
      }
    }
  }

  bool Consume(char c) {
    if (!AtEnd() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text.substr(pos, word.size()) == word) {
      pos += word.size();
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue(int depth);
  Result<std::string> ParseString();
  /// Validates a JSON number at the cursor and returns its exact lexeme.
  Result<std::string> ParseNumberLexeme();
};

Result<std::string> Parser::ParseString() {
  if (!Consume('"')) return Error("expected '\"'");
  std::string out;
  while (true) {
    if (AtEnd()) return Error("unterminated string");
    const char c = text[pos++];
    if (c == '"') return out;
    if (static_cast<unsigned char>(c) < 0x20) {
      return Error("unescaped control character in string");
    }
    if (c != '\\') {
      out.push_back(c);
      continue;
    }
    if (AtEnd()) return Error("unterminated escape");
    const char e = text[pos++];
    switch (e) {
      case '"': out.push_back('"'); break;
      case '\\': out.push_back('\\'); break;
      case '/': out.push_back('/'); break;
      case 'b': out.push_back('\b'); break;
      case 'f': out.push_back('\f'); break;
      case 'n': out.push_back('\n'); break;
      case 'r': out.push_back('\r'); break;
      case 't': out.push_back('\t'); break;
      case 'u': {
        const auto hex4 = [&]() -> int {
          if (pos + 4 > text.size()) return -1;
          int value = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos + i];
            value <<= 4;
            if (h >= '0' && h <= '9') value |= h - '0';
            else if (h >= 'a' && h <= 'f') value |= h - 'a' + 10;
            else if (h >= 'A' && h <= 'F') value |= h - 'A' + 10;
            else return -1;
          }
          pos += 4;
          return value;
        };
        const int hi = hex4();
        if (hi < 0) return Error("bad \\u escape");
        std::uint32_t cp = static_cast<std::uint32_t>(hi);
        if (cp >= 0xD800 && cp < 0xDC00) {
          // Surrogate pair: a low surrogate escape must follow.
          if (pos + 2 > text.size() || text[pos] != '\\' ||
              text[pos + 1] != 'u') {
            return Error("lone high surrogate");
          }
          pos += 2;
          const int lo = hex4();
          if (lo < 0xDC00 || lo > 0xDFFF) return Error("bad low surrogate");
          cp = 0x10000 + ((cp - 0xD800) << 10) +
               (static_cast<std::uint32_t>(lo) - 0xDC00);
        } else if (cp >= 0xDC00 && cp < 0xE000) {
          return Error("lone low surrogate");
        }
        AppendUtf8(out, cp);
        break;
      }
      default:
        return Error("unknown escape");
    }
  }
}

Result<std::string> Parser::ParseNumberLexeme() {
  const std::size_t start = pos;
  Consume('-');
  if (!PeekDigit()) return Error("malformed number");
  if (Peek() == '0') {
    ++pos;
  } else {
    while (PeekDigit()) ++pos;
  }
  if (Consume('.')) {
    if (!PeekDigit()) return Error("malformed number fraction");
    while (PeekDigit()) ++pos;
  }
  if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
    ++pos;
    if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos;
    if (!PeekDigit()) return Error("malformed number exponent");
    while (PeekDigit()) ++pos;
  }
  return std::string(text.substr(start, pos - start));
}

Result<JsonValue> Parser::ParseValue(int depth) {
  if (depth > kMaxDepth) return Error("nesting too deep");
  SkipSpace();
  if (AtEnd()) return Error("unexpected end of input");
  const char c = Peek();
  if (c == '{') {
    ++pos;
    JsonValue object = JsonValue::Object();
    SkipSpace();
    if (Consume('}')) return object;
    while (true) {
      SkipSpace();
      DPC_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipSpace();
      if (!Consume(':')) return Error("expected ':'");
      DPC_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      if (object.Find(key) != nullptr) {
        return Error("duplicate object key \"" + key + "\"");
      }
      object.Set(std::move(key), std::move(value));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume('}')) return object;
      return Error("expected ',' or '}'");
    }
  }
  if (c == '[') {
    ++pos;
    JsonValue array = JsonValue::Array();
    SkipSpace();
    if (Consume(']')) return array;
    while (true) {
      DPC_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      array.Append(std::move(value));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume(']')) return array;
      return Error("expected ',' or ']'");
    }
  }
  if (c == '"') {
    DPC_ASSIGN_OR_RETURN(std::string s, ParseString());
    return JsonValue::String(std::move(s));
  }
  if (c == 't') {
    if (ConsumeWord("true")) return JsonValue::Bool(true);
    return Error("bad literal");
  }
  if (c == 'f') {
    if (ConsumeWord("false")) return JsonValue::Bool(false);
    return Error("bad literal");
  }
  if (c == 'n') {
    if (ConsumeWord("null")) return JsonValue::Null();
    return Error("bad literal");
  }
  if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
    DPC_ASSIGN_OR_RETURN(std::string lexeme, ParseNumberLexeme());
    return JsonValue::NumberFromLexeme(std::move(lexeme));
  }
  return Error("unexpected character");
}

}  // namespace

// --- JsonValue ------------------------------------------------------------

JsonValue JsonValue::Bool(bool value) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = value;
  return v;
}

JsonValue JsonValue::Number(double value) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.text_ = JsonNumberLexeme(value);
  return v;
}

JsonValue JsonValue::Number(std::uint64_t value) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.text_ = std::to_string(value);
  return v;
}

JsonValue JsonValue::Number(int value) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.text_ = std::to_string(value);
  return v;
}

JsonValue JsonValue::NumberFromLexeme(std::string lexeme) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.text_ = std::move(lexeme);
  return v;
}

JsonValue JsonValue::String(std::string value) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.text_ = std::move(value);
  return v;
}

JsonValue JsonValue::Array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

bool JsonValue::AsBool() const {
  DPC_CHECK(is_bool());
  return bool_;
}

double JsonValue::AsDouble() const {
  DPC_CHECK(is_number());
  return std::strtod(text_.c_str(), nullptr);
}

Result<std::uint64_t> JsonValue::AsU64() const {
  DPC_CHECK(is_number());
  if (!text_.empty() && text_[0] == '-') {
    return Status::InvalidArgument("expected a non-negative integer, got " +
                                   text_);
  }
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text_.data(), text_.data() + text_.size(), value);
  if (ec != std::errc() || ptr != text_.data() + text_.size()) {
    return Status::InvalidArgument("expected an unsigned integer, got " +
                                   text_);
  }
  return value;
}

const std::string& JsonValue::AsString() const {
  DPC_CHECK(is_string());
  return text_;
}

const std::string& JsonValue::lexeme() const {
  DPC_CHECK(is_number());
  return text_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  DPC_CHECK(is_array());
  return items_;
}

void JsonValue::Append(JsonValue value) {
  DPC_CHECK(is_array());
  items_.push_back(std::move(value));
}

const std::vector<JsonValue::Member>& JsonValue::members() const {
  DPC_CHECK(is_object());
  return members_;
}

void JsonValue::Set(std::string key, JsonValue value) {
  DPC_CHECK(is_object());
  for (Member& member : members_) {
    if (member.first == key) {
      member.second = std::move(value);
      return;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  DPC_CHECK(is_object());
  for (const Member& member : members_) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

void JsonValue::EncodeTo(std::string& out) const {
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kNumber:
      out += text_;
      break;
    case Kind::kString:
      AppendEscaped(out, text_);
      break;
    case Kind::kArray: {
      out.push_back('[');
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i) out.push_back(',');
        items_[i].EncodeTo(out);
      }
      out.push_back(']');
      break;
    }
    case Kind::kObject: {
      out.push_back('{');
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i) out.push_back(',');
        AppendEscaped(out, members_[i].first);
        out.push_back(':');
        members_[i].second.EncodeTo(out);
      }
      out.push_back('}');
      break;
    }
  }
}

std::string JsonValue::Encode() const {
  std::string out;
  EncodeTo(out);
  return out;
}

Result<JsonValue> JsonValue::Parse(std::string_view text) {
  Parser parser{text};
  DPC_ASSIGN_OR_RETURN(JsonValue value, parser.ParseValue(0));
  parser.SkipSpace();
  if (!parser.AtEnd()) return parser.Error("trailing garbage");
  return value;
}

std::string JsonNumberLexeme(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, value);
  DPC_CHECK(ec == std::errc());
  return std::string(buf, ptr);
}

}  // namespace dpcluster
