// The JSON wire protocol of the dpcluster service daemon: how a typed
// Request travels over HTTP as a JSON object, how Responses and errors are
// encoded, and the service-level error-code vocabulary (including
// BudgetExhausted, the structured rejection a tenant receives once its
// (eps, delta) budget for a dataset is spent).
//
// Round-trip contract (pinned by service_protocol_test): for every wire
// request w, Encode(Parse(Encode(w))) == Encode(w) byte-for-byte. The
// encoder emits every field in a fixed order with exact number lexemes, so
// the protocol is deterministic and diffable. Two Request fields are
// deliberately NOT wire-exposed: `estimator` (a function object; the
// sample-aggregate default, the coordinate-wise mean, is always used) and
// `shared_index` (server-owned — the daemon's keyed index cache decides
// reuse; see service/index_cache.h).
//
// Request object (all fields optional unless marked required):
//   {
//     "tenant": "alice",              // budget scope  (default "public")
//     "dataset": "sensors-eu",        // REQUIRED: budget + index-cache key
//     "algorithm": "one_cluster",     // REQUIRED: registry name
//     "points": [[x, y], ...],        // REQUIRED: n rows of d coordinates
//     "levels": 65536,                // |X| per axis; 0 = no domain
//     "axis": 1.0,                    // axis length of the cube
//     "snap": false,                  // snap points onto the domain grid
//     "stream": false,                // solve the resident stream "dataset"
//                                     // (omit points/levels/snap then)
//     "epsilon": 1.0, "delta": 1e-9,  // this request's budget
//     "beta": 0.1, "t": 500, "k": 2,
//     "inlier_fraction": 0.9, "alpha": 0.5, "block_size": 0,
//     "num_threads": 1, "label": "", "seed": 0,  // 0 = server default seed
//     "tuning": { ... every Tuning field, see TuningToJson ... }
//   }

#ifndef DPCLUSTER_SERVICE_PROTOCOL_H_
#define DPCLUSTER_SERVICE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "dpcluster/api/request.h"
#include "dpcluster/api/response.h"
#include "dpcluster/common/status.h"
#include "dpcluster/service/json.h"

namespace dpcluster {

/// A Request plus the service-level envelope: which tenant is asking, which
/// dataset key scopes the budget and the index cache, and the per-request
/// solver seed (0 = the server's configured default).
struct WireRequest {
  std::string tenant = "public";
  std::string dataset;
  std::uint64_t seed = 0;
  bool snap = false;
  /// True = solve over the resident streaming dataset named by `dataset`
  /// (fed through /v1/stream/append). The body must then omit "points" and
  /// "levels": the data and domain live server-side, and the reply carries
  /// the stream version the solve saw. Mutually exclusive with "points".
  bool stream = false;
  Request request;
};

/// Parses a wire request from a JSON object. Strict: unknown keys, wrong
/// types, ragged point rows, and missing required fields are
/// InvalidArgument with a field-naming message. Performs no semantic
/// validation beyond shape — Request::Validate and the algorithm's own
/// checks run in the service.
Result<WireRequest> ParseWireRequest(const JsonValue& json);

/// ParseWireRequest over raw body text (strict JSON parse first).
Result<WireRequest> ParseWireRequest(std::string_view body);

/// Deterministic inverse of ParseWireRequest: every wire-exposed field, in
/// fixed order, with exact integer lexemes.
JsonValue WireRequestToJson(const WireRequest& wire);

/// The tuning sub-object (every Tuning knob, fixed order).
JsonValue TuningToJson(const Tuning& tuning);

/// Strict parse of a tuning sub-object into `tuning` (unknown keys and
/// wrong types are InvalidArgument). The same parser ParseWireRequest uses
/// for its "tuning" member; exposed for the stream-endpoint bodies.
Status ParseTuningJson(const JsonValue& json, Tuning& tuning);

// --- Streaming endpoints --------------------------------------------------

/// One /v1/stream/append or /v1/stream/expire body. Append bodies carry
/// "points" (plus "levels"/"axis" to create the stream on first use, and
/// optional "snap" to snap arrivals onto the stream's grid); expire bodies
/// carry exactly one of "count" (oldest rows first) or "ids" (row ids from
/// append replies — invalidated whenever a reply reports "compacted").
/// Both accept an optional "tuning" object; the endpoints read
/// tuning.stream_compact_fraction.
struct StreamRequest {
  std::string dataset;
  PointSet points;                       // append arrivals (arrival order)
  std::uint64_t levels = 0;              // 0 = the stream must already exist
  double axis = 1.0;
  bool snap = false;
  std::uint64_t expire_count = 0;        // oldest-first row count
  std::vector<std::uint32_t> expire_ids; // explicit row ids
  Tuning tuning;
};

/// Strict parses of the stream bodies (required fields, unknown keys, and
/// shape errors are InvalidArgument naming the field).
Result<StreamRequest> ParseStreamAppend(std::string_view body);
Result<StreamRequest> ParseStreamExpire(std::string_view body);

/// Encodes a served Response: released artifact (ball/balls/scalar),
/// accounting (charged + per-phase ledger), diagnostics when present, and
/// timing. The service wraps this with the envelope fields (ok, tenant,
/// queue_ms, budget).
JsonValue ResponseToJson(const Response& response);

// --- Service errors -------------------------------------------------------

/// The error vocabulary of the wire protocol. Stable names (ErrorCodeName)
/// appear in the "code" field of error responses; HttpStatusOf maps each to
/// the HTTP status the daemon answers with.
enum class ServiceErrorCode {
  kParseError,        ///< Body is not valid JSON / not a valid wire request.
  kInvalidRequest,    ///< Parsed, but a field is out of domain (e.g. eps <= 0).
  kUnknownAlgorithm,  ///< "algorithm" names no registry entry.
  kRouteNotFound,     ///< No such endpoint.
  kMethodNotAllowed,  ///< Endpoint exists, wrong HTTP method.
  kPayloadTooLarge,   ///< Body or point count above the configured cap.
  kUnknownDataset,    ///< A stream route (or "stream": true solve) named a
                      ///< dataset with no resident stream.
  kBudgetExhausted,   ///< The (tenant, dataset) budget cannot cover this
                      ///< request; the error carries the remaining budget.
  kQueueFull,         ///< Admission queue at capacity; retry later.
  kShuttingDown,      ///< Server is draining; no new requests.
  kNoPrivateAnswer,   ///< The mechanism ended with no admissible output
                      ///< (a legitimate DP outcome; budget was still spent).
  kResourceLimit,     ///< A documented library resource cap was exceeded.
  kDeadlineExceeded,  ///< The algorithm ran out of its iteration budget.
  kInternal,          ///< Invariant failure; nothing charged unless noted.
};

/// Stable wire name ("BudgetExhausted", "ParseError", ...).
const char* ServiceErrorCodeName(ServiceErrorCode code);

/// The HTTP status the daemon answers with (429 for BudgetExhausted, ...).
int HttpStatusOf(ServiceErrorCode code);

/// Maps a library Status (from validation or a Solver run) onto the wire
/// vocabulary. `code` must not be kOk.
ServiceErrorCode ServiceErrorFromStatus(const Status& status);

/// {"ok": false, "error": {"code": ..., "http_status": ..., "message": ...}}.
JsonValue ErrorToJson(ServiceErrorCode code, const std::string& message);

/// {"epsilon": ..., "delta": ...} with exact double lexemes.
JsonValue PrivacyParamsToJson(const PrivacyParams& params);

}  // namespace dpcluster

#endif  // DPCLUSTER_SERVICE_PROTOCOL_H_
