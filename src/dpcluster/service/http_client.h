// Minimal blocking HTTP/1.1 client for the daemon's tests, bench, and CLI
// probes: one request per connection against 127.0.0.1, Content-Length
// bodies, no external dependencies. Not a general client — just enough to
// drive HttpServer end to end.

#ifndef DPCLUSTER_SERVICE_HTTP_CLIENT_H_
#define DPCLUSTER_SERVICE_HTTP_CLIENT_H_

#include <string>
#include <string_view>

#include "dpcluster/common/status.h"

namespace dpcluster {

struct HttpResponse {
  int status = 0;
  std::string body;
};

/// One round trip to 127.0.0.1:port. `method` is "GET" or "POST"; POST
/// sends `body` with Content-Type: application/json. Internal error on
/// connect/send/recv failure or an unparsable reply.
Result<HttpResponse> HttpCall(int port, std::string_view method,
                              std::string_view path, std::string_view body);

/// HttpCall("GET", path, "").
Result<HttpResponse> HttpGet(int port, std::string_view path);

/// HttpCall("POST", path, body).
Result<HttpResponse> HttpPost(int port, std::string_view path,
                              std::string_view body);

}  // namespace dpcluster

#endif  // DPCLUSTER_SERVICE_HTTP_CLIENT_H_
