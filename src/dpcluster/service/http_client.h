// Minimal blocking HTTP/1.1 clients for the daemon's tests, bench, and CLI
// probes against 127.0.0.1: HttpCall (one request per connection, reads to
// EOF) and HttpConnection (keep-alive, Content-Length-framed replies, used
// where per-request TCP handshakes would dominate). No external
// dependencies. Not general clients — just enough to drive HttpServer end
// to end.

#ifndef DPCLUSTER_SERVICE_HTTP_CLIENT_H_
#define DPCLUSTER_SERVICE_HTTP_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "dpcluster/common/status.h"

namespace dpcluster {

struct HttpResponse {
  int status = 0;
  std::string body;
};

/// One round trip to 127.0.0.1:port. `method` is "GET" or "POST"; POST
/// sends `body` with Content-Type: application/json. Internal error on
/// connect/send/recv failure or an unparsable reply.
Result<HttpResponse> HttpCall(int port, std::string_view method,
                              std::string_view path, std::string_view body);

/// HttpCall("GET", path, "").
Result<HttpResponse> HttpGet(int port, std::string_view path);

/// HttpCall("POST", path, body).
Result<HttpResponse> HttpPost(int port, std::string_view path,
                              std::string_view body);

/// A persistent (keep-alive) connection to 127.0.0.1:port. Each Call sends
/// one request and parses the Content-Length-framed reply off the same
/// socket, so a sequence of requests pays the TCP handshake once — this is
/// what bench_service uses to measure req/s with connection reuse, and what
/// the CLI stream replay drives append batches through. When the server
/// closes the connection (per-connection request cap, idle timeout, drain),
/// the next Call transparently reconnects; a request whose socket turned
/// out to be already closed before ANY reply byte arrived is resent once on
/// a fresh socket (the daemon writes the full reply before closing, so such
/// a request was not served).
class HttpConnection {
 public:
  explicit HttpConnection(int port) : port_(port) {}
  ~HttpConnection();

  HttpConnection(const HttpConnection&) = delete;
  HttpConnection& operator=(const HttpConnection&) = delete;

  /// One request/reply on the persistent socket; reconnects as needed.
  Result<HttpResponse> Call(std::string_view method, std::string_view path,
                            std::string_view body);

  Result<HttpResponse> Post(std::string_view path, std::string_view body) {
    return Call("POST", path, body);
  }

  Result<HttpResponse> Get(std::string_view path) {
    return Call("GET", path, "");
  }

  /// Sockets established beyond the first; stays 0 while the server keeps
  /// the connection alive.
  std::uint64_t reconnects() const { return reconnects_; }

 private:
  Status Connect();
  void CloseSocket();

  int port_;
  int fd_ = -1;
  std::uint64_t connects_ = 0;
  std::uint64_t reconnects_ = 0;
  std::string buffer_;  ///< Reply bytes past the last parsed response.
};

}  // namespace dpcluster

#endif  // DPCLUSTER_SERVICE_HTTP_CLIENT_H_
