#include "dpcluster/service/http_client.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace dpcluster {

Result<HttpResponse> HttpCall(int port, std::string_view method,
                              std::string_view path, std::string_view body) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal("socket(): " + std::string(std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    const std::string message = std::strerror(errno);
    ::close(fd);
    return Status::Internal("connect(127.0.0.1:" + std::to_string(port) +
                            "): " + message);
  }
  // A server that accepted the connection into its backlog but never serves
  // it (e.g. it is draining) would otherwise hang the caller forever.
  timeval timeout{/*tv_sec=*/60, /*tv_usec=*/0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);

  std::string request;
  request.append(method);
  request.append(" ");
  request.append(path);
  request.append(" HTTP/1.1\r\nHost: 127.0.0.1\r\n");
  if (!body.empty() || method == "POST") {
    request.append("Content-Type: application/json\r\nContent-Length: " +
                   std::to_string(body.size()) + "\r\n");
  }
  request.append("Connection: close\r\n\r\n");
  request.append(body);
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      const std::string message = std::strerror(errno);
      ::close(fd);
      return Status::Internal("send(): " + message);
    }
    sent += static_cast<std::size_t>(n);
  }
  ::shutdown(fd, SHUT_WR);

  // The server replies Connection: close, so read to EOF.
  std::string reply;
  char chunk[8192];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string message = std::strerror(errno);
      ::close(fd);
      return Status::Internal("recv(): " + message);
    }
    if (n == 0) break;
    reply.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);

  // "HTTP/1.1 NNN ...".
  if (reply.size() < 12 || reply.compare(0, 5, "HTTP/") != 0) {
    return Status::Internal("unparsable HTTP reply");
  }
  const std::size_t space = reply.find(' ');
  if (space == std::string::npos || space + 4 > reply.size()) {
    return Status::Internal("unparsable HTTP status line");
  }
  HttpResponse response;
  response.status = (reply[space + 1] - '0') * 100 +
                    (reply[space + 2] - '0') * 10 + (reply[space + 3] - '0');
  const std::size_t header_end = reply.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return Status::Internal("HTTP reply has no header terminator");
  }
  response.body = reply.substr(header_end + 4);
  return response;
}

HttpConnection::~HttpConnection() { CloseSocket(); }

void HttpConnection::CloseSocket() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

Status HttpConnection::Connect() {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::Internal("socket(): " + std::string(std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port_));
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    const std::string message = std::strerror(errno);
    CloseSocket();
    return Status::Internal("connect(127.0.0.1:" + std::to_string(port_) +
                            "): " + message);
  }
  timeval timeout{/*tv_sec=*/60, /*tv_usec=*/0};
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
  if (++connects_ > 1) ++reconnects_;
  return Status::OK();
}

Result<HttpResponse> HttpConnection::Call(std::string_view method,
                                          std::string_view path,
                                          std::string_view body) {
  std::string request;
  request.append(method);
  request.append(" ");
  request.append(path);
  request.append(" HTTP/1.1\r\nHost: 127.0.0.1\r\n");
  if (!body.empty() || method == "POST") {
    request.append("Content-Type: application/json\r\nContent-Length: " +
                   std::to_string(body.size()) + "\r\n");
  }
  request.append("Connection: keep-alive\r\n\r\n");
  request.append(body);

  // Two attempts: the first may land on a connection the server already
  // closed (request cap or idle timeout fired between Calls); that shows
  // up as a send error or EOF before any reply byte, and the request is
  // safe to resend on a fresh socket because the daemon always writes the
  // full reply before closing.
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (fd_ < 0) {
      const Status connected = Connect();
      if (!connected.ok()) return connected;
    }

    bool stale = false;
    std::size_t sent = 0;
    while (sent < request.size()) {
      const ssize_t n = ::send(fd_, request.data() + sent,
                               request.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        stale = true;
        break;
      }
      sent += static_cast<std::size_t>(n);
    }

    std::size_t header_end =
        stale ? std::string::npos : buffer_.find("\r\n\r\n");
    char chunk[8192];
    while (!stale && header_end == std::string::npos) {
      const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        const std::string message = std::strerror(errno);
        CloseSocket();
        return Status::Internal("recv(): " + message);
      }
      if (n == 0) {
        if (!buffer_.empty()) {
          CloseSocket();
          return Status::Internal("truncated HTTP reply");
        }
        stale = true;
        break;
      }
      buffer_.append(chunk, static_cast<std::size_t>(n));
      header_end = buffer_.find("\r\n\r\n");
    }
    if (stale) {
      CloseSocket();
      if (attempt == 0) continue;
      return Status::Internal("connection closed before reply");
    }

    // "HTTP/1.1 NNN ..." + headers; Content-Length frames the body.
    const std::string_view head{buffer_.data(), header_end};
    if (head.size() < 12 || head.compare(0, 5, "HTTP/") != 0) {
      CloseSocket();
      return Status::Internal("unparsable HTTP reply");
    }
    const std::size_t space = head.find(' ');
    if (space == std::string_view::npos || space + 4 > head.size()) {
      CloseSocket();
      return Status::Internal("unparsable HTTP status line");
    }
    HttpResponse response;
    response.status = (head[space + 1] - '0') * 100 +
                      (head[space + 2] - '0') * 10 + (head[space + 3] - '0');
    std::size_t content_length = 0;
    bool server_closes = false;
    std::size_t cursor = head.find("\r\n") + 2;
    while (cursor < header_end) {
      std::size_t eol = head.find("\r\n", cursor);
      if (eol == std::string_view::npos) eol = header_end;
      const std::string_view line = head.substr(cursor, eol - cursor);
      if (line.size() > 15 && line.compare(0, 15, "Content-Length:") == 0) {
        content_length = static_cast<std::size_t>(
            std::strtoull(line.data() + 15, nullptr, 10));
      } else if (line.size() > 11 && line.compare(0, 11, "Connection:") == 0 &&
                 line.find("close") != std::string_view::npos) {
        server_closes = true;
      }
      cursor = eol + 2;
    }
    const std::size_t body_start = header_end + 4;
    while (buffer_.size() < body_start + content_length) {
      const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        const std::string message =
            n == 0 ? "truncated HTTP body" : std::strerror(errno);
        CloseSocket();
        return Status::Internal("recv(): " + message);
      }
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
    response.body = buffer_.substr(body_start, content_length);
    buffer_.erase(0, body_start + content_length);
    if (server_closes) CloseSocket();
    return response;
  }
  return Status::Internal("unreachable");
}

Result<HttpResponse> HttpGet(int port, std::string_view path) {
  return HttpCall(port, "GET", path, "");
}

Result<HttpResponse> HttpPost(int port, std::string_view path,
                              std::string_view body) {
  return HttpCall(port, "POST", path, body);
}

}  // namespace dpcluster
