#include "dpcluster/service/http_client.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace dpcluster {

Result<HttpResponse> HttpCall(int port, std::string_view method,
                              std::string_view path, std::string_view body) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal("socket(): " + std::string(std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    const std::string message = std::strerror(errno);
    ::close(fd);
    return Status::Internal("connect(127.0.0.1:" + std::to_string(port) +
                            "): " + message);
  }
  // A server that accepted the connection into its backlog but never serves
  // it (e.g. it is draining) would otherwise hang the caller forever.
  timeval timeout{/*tv_sec=*/60, /*tv_usec=*/0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);

  std::string request;
  request.append(method);
  request.append(" ");
  request.append(path);
  request.append(" HTTP/1.1\r\nHost: 127.0.0.1\r\n");
  if (!body.empty() || method == "POST") {
    request.append("Content-Type: application/json\r\nContent-Length: " +
                   std::to_string(body.size()) + "\r\n");
  }
  request.append("Connection: close\r\n\r\n");
  request.append(body);
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      const std::string message = std::strerror(errno);
      ::close(fd);
      return Status::Internal("send(): " + message);
    }
    sent += static_cast<std::size_t>(n);
  }
  ::shutdown(fd, SHUT_WR);

  // The server replies Connection: close, so read to EOF.
  std::string reply;
  char chunk[8192];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string message = std::strerror(errno);
      ::close(fd);
      return Status::Internal("recv(): " + message);
    }
    if (n == 0) break;
    reply.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);

  // "HTTP/1.1 NNN ...".
  if (reply.size() < 12 || reply.compare(0, 5, "HTTP/") != 0) {
    return Status::Internal("unparsable HTTP reply");
  }
  const std::size_t space = reply.find(' ');
  if (space == std::string::npos || space + 4 > reply.size()) {
    return Status::Internal("unparsable HTTP status line");
  }
  HttpResponse response;
  response.status = (reply[space + 1] - '0') * 100 +
                    (reply[space + 2] - '0') * 10 + (reply[space + 3] - '0');
  const std::size_t header_end = reply.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return Status::Internal("HTTP reply has no header terminator");
  }
  response.body = reply.substr(header_end + 4);
  return response;
}

Result<HttpResponse> HttpGet(int port, std::string_view path) {
  return HttpCall(port, "GET", path, "");
}

Result<HttpResponse> HttpPost(int port, std::string_view path,
                              std::string_view body) {
  return HttpCall(port, "POST", path, body);
}

}  // namespace dpcluster
