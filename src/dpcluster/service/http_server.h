// HttpServer: the socket shell of the dpcluster daemon. A deliberately
// small HTTP/1.1 server — loopback TCP, blocking I/O, no external
// dependencies — that feeds ClusterService::Handle:
//
//   accept thread --TryPush--> BoundedQueue<Connection> --Pop--> workers
//
// One std::thread runs the accept loop (poll on the listen socket plus a
// self-pipe for wakeup); accepted connections are TryPushed onto a bounded
// queue. A full queue sheds load at the door: the accept loop answers 503
// QueueFull itself and closes, so overload never grows memory. A second
// std::thread drains the queue through the deterministic ThreadPool
// (parallel/thread_pool.h): RunChunks(workers, ...) runs one drain loop per
// chunk, each popping connections until the queue closes. The pool
// hardware-caps its workers, so on a small machine the same code serves
// sequentially — admission, budgets, and replies are identical at any
// worker count.
//
// Graceful shutdown (Stop, or a served POST /v1/shutdown): the listen
// socket closes first (no new connections), then the queue closes; workers
// finish every request already admitted before the threads join. In-flight
// requests are never dropped.
//
// Protocol support is the minimum the service needs: GET/POST,
// Content-Length bodies (no chunked encoding). Connections are persistent
// by HTTP/1.1 default: a worker keeps serving requests off one connection
// (pipelined bytes included) until the client sends Connection: close, the
// per-connection request cap is reached, the idle timeout expires between
// requests, or the server starts draining — so a streaming client pays the
// TCP handshake once per batch window, not once per request. Requests above
// the configured header/body caps answer 413 and close.

#ifndef DPCLUSTER_SERVICE_HTTP_SERVER_H_
#define DPCLUSTER_SERVICE_HTTP_SERVER_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>

#include "dpcluster/common/status.h"
#include "dpcluster/parallel/bounded_queue.h"
#include "dpcluster/parallel/thread_pool.h"
#include "dpcluster/service/service.h"

namespace dpcluster {

struct HttpServerOptions {
  /// TCP port on 127.0.0.1; 0 = pick an ephemeral port (see port()).
  int port = 0;
  /// Drain loops offered to the ThreadPool (hardware-capped like every
  /// pool; more workers than cores costs nothing).
  std::size_t workers = 4;
  /// Admission-queue capacity; connection #capacity+1 is answered 503.
  std::size_t queue_depth = 64;
  /// Hard cap on one request's bytes on the wire (start line + headers +
  /// body); larger requests answer 413 without buffering further.
  std::size_t max_request_bytes = 64u << 20;
  /// Requests served per kept-alive connection before the server closes it
  /// (bounds how long one client can monopolize a worker). 1 restores the
  /// PR-8 one-request-per-connection behavior.
  std::size_t max_requests_per_connection = 100;
  /// Idle milliseconds a kept-alive connection may sit between requests
  /// before the worker closes it and moves on.
  int idle_timeout_ms = 5000;
};

class HttpServer {
 public:
  struct Stats {
    std::uint64_t accepted = 0;  ///< Connections taken from the OS.
    std::uint64_t served = 0;    ///< Requests answered by a worker.
    std::uint64_t reused = 0;    ///< ... of which on a kept-alive reuse
                                 ///< (request #2+ of a connection).
    std::uint64_t shed = 0;      ///< 503 QueueFull answered at the door.
  };

  /// `service` must outlive the server.
  HttpServer(ClusterService* service, HttpServerOptions options);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, and starts the accept + drain threads.
  Status Start();

  /// Graceful shutdown: stop accepting, drain admitted connections, join.
  /// Idempotent; also triggered by a served POST /v1/shutdown.
  void Stop();

  /// The bound port (after Start; stable for ephemeral binds).
  int port() const { return port_; }

  bool running() const { return running_; }

  Stats GetStats() const;

 private:
  struct Connection {
    int fd = -1;
    std::chrono::steady_clock::time_point accepted_at;
  };

  void AcceptLoop();
  void ServeConnection(Connection connection);

  ClusterService* service_;
  const HttpServerOptions options_;
  int port_ = 0;
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // self-pipe: [read, write]
  bool running_ = false;
  std::unique_ptr<BoundedQueue<Connection>> queue_;
  std::thread accept_thread_;
  std::thread drain_thread_;
  std::unique_ptr<ThreadPool> pool_;

  mutable std::mutex stats_mutex_;
  Stats stats_;
};

}  // namespace dpcluster

#endif  // DPCLUSTER_SERVICE_HTTP_SERVER_H_
