#include "dpcluster/service/http_server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>
#include <string>
#include <string_view>
#include <utility>

#include "dpcluster/service/protocol.h"

namespace dpcluster {

namespace {

const char* HttpStatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 422: return "Unprocessable Content";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Status";
  }
}

void SendAll(int fd, std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // Peer went away; nothing sensible to do.
    }
    sent += static_cast<std::size_t>(n);
  }
}

void SendReply(int fd, int status, std::string_view body, double queue_ms,
               bool keep_alive = false) {
  std::string head = "HTTP/1.1 " + std::to_string(status) + " " +
                     HttpStatusText(status) +
                     "\r\nContent-Type: application/json\r\n"
                     "Content-Length: " +
                     std::to_string(body.size()) +
                     "\r\nX-Queue-Millis: " + JsonNumberLexeme(queue_ms) +
                     "\r\nConnection: " +
                     (keep_alive ? "keep-alive" : "close") + "\r\n\r\n";
  head.append(body);
  SendAll(fd, head);
}

/// Closes `fd` without destroying an already-sent reply. Closing a socket
/// that still holds unread request bytes makes the kernel send RST, which
/// discards queued outbound data — the client would see a connection reset
/// instead of the 503/413 we just wrote. Half-close our side, then drain
/// the peer's remaining bytes (bounded by a receive timeout) until it sees
/// the reply and closes.
void DrainAndClose(int fd) {
  ::shutdown(fd, SHUT_WR);
  timeval timeout{/*tv_sec=*/2, /*tv_usec=*/0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
  char sink[4096];
  while (::recv(fd, sink, sizeof sink, 0) > 0) {
  }
  ::close(fd);
}

/// Case-insensitive ASCII prefix match for header names.
bool HeaderIs(std::string_view line, std::string_view name) {
  if (line.size() < name.size() + 1) return false;
  for (std::size_t i = 0; i < name.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(line[i])) !=
        std::tolower(static_cast<unsigned char>(name[i]))) {
      return false;
    }
  }
  return line[name.size()] == ':';
}

/// Case-insensitive ASCII match of a header value token (trailing spaces
/// tolerated, as in "Connection: close ").
bool TokenEquals(std::string_view value, std::string_view token) {
  while (!value.empty() && (value.back() == ' ' || value.back() == '\t')) {
    value.remove_suffix(1);
  }
  if (value.size() != token.size()) return false;
  for (std::size_t i = 0; i < value.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(value[i])) !=
        std::tolower(static_cast<unsigned char>(token[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace

HttpServer::HttpServer(ClusterService* service, HttpServerOptions options)
    : service_(service), options_(std::move(options)) {}

HttpServer::~HttpServer() { Stop(); }

HttpServer::Stats HttpServer::GetStats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

Status HttpServer::Start() {
  if (running_) return Status::InvalidArgument("HttpServer already started");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal("socket(): " + std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
      0) {
    const std::string message = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("bind(127.0.0.1:" +
                            std::to_string(options_.port) + "): " + message);
  }
  if (::listen(listen_fd_, 128) < 0) {
    const std::string message = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("listen(): " + message);
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (::pipe(wake_fds_) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("pipe(): " + std::string(std::strerror(errno)));
  }

  queue_ = std::make_unique<BoundedQueue<Connection>>(options_.queue_depth);
  pool_ = std::make_unique<ThreadPool>(options_.workers);
  running_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  drain_thread_ = std::thread([this] {
    pool_->RunChunks(options_.workers, [this](std::size_t) {
      while (auto connection = queue_->Pop()) {
        ServeConnection(std::move(*connection));
      }
    });
  });
  return Status::OK();
}

void HttpServer::AcceptLoop() {
  pollfd fds[2];
  fds[0] = {listen_fd_, POLLIN, 0};
  fds[1] = {wake_fds_[0], POLLIN, 0};
  for (;;) {
    // Finite timeout so a drain requested through the service (a served
    // POST /v1/shutdown) is noticed without another connection arriving.
    const int ready = ::poll(fds, 2, /*timeout_ms=*/50);
    if (service_->shutdown_requested() || (fds[1].revents & POLLIN) != 0) {
      break;
    }
    if (ready <= 0 || (fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // Listen socket is gone; we are stopping.
    }
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.accepted;
    }
    Connection connection{fd, std::chrono::steady_clock::now()};
    if (!queue_->TryPush(std::move(connection))) {
      // Shed at the door: answer 503 from the accept thread. The body is
      // the same structured error a worker would send.
      const std::string body =
          ErrorToJson(ServiceErrorCode::kQueueFull,
                      "admission queue is full; retry later")
              .Encode();
      SendReply(fd, HttpStatusOf(ServiceErrorCode::kQueueFull), body,
                /*queue_ms=*/0.0);
      DrainAndClose(fd);
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.shed;
    }
  }
  queue_->Close();
}

void HttpServer::ServeConnection(Connection connection) {
  const int fd = connection.fd;
  // A kept-alive connection must not park a worker forever between
  // requests: reads time out after idle_timeout_ms, closing the connection.
  timeval timeout{};
  timeout.tv_sec = options_.idle_timeout_ms / 1000;
  timeout.tv_usec = (options_.idle_timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);

  std::string buffer;  // May hold pipelined bytes of the next request.
  char chunk[8192];
  for (std::size_t request_index = 0;
       request_index < options_.max_requests_per_connection;
       ++request_index) {
    // Read until the blank line, then until Content-Length bytes of body.
    std::size_t header_end = buffer.find("\r\n\r\n");
    bool overflow = buffer.size() > options_.max_request_bytes;
    while (header_end == std::string::npos && !overflow) {
      const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        // Peer closed between requests, idle timeout, or truncation:
        // nothing to reply to.
        ::close(fd);
        return;
      }
      buffer.append(chunk, static_cast<std::size_t>(n));
      header_end = buffer.find("\r\n\r\n");
      overflow = buffer.size() > options_.max_request_bytes;
    }

    const auto queue_ms =
        request_index > 0
            ? 0.0
            : std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - connection.accepted_at)
                  .count();

    if (overflow) {
      const std::string body =
          ErrorToJson(ServiceErrorCode::kPayloadTooLarge,
                      "request exceeds " +
                          std::to_string(options_.max_request_bytes) +
                          " bytes")
              .Encode();
      SendReply(fd, HttpStatusOf(ServiceErrorCode::kPayloadTooLarge), body,
                queue_ms);
      DrainAndClose(fd);
      return;
    }

    // Start line: METHOD SP PATH SP VERSION.
    const std::string_view head{buffer.data(), header_end};
    const std::size_t line_end = head.find("\r\n");
    const std::string_view start_line = head.substr(0, line_end);
    const std::size_t method_end = start_line.find(' ');
    const std::size_t path_end = method_end == std::string_view::npos
                                     ? std::string_view::npos
                                     : start_line.find(' ', method_end + 1);
    if (path_end == std::string_view::npos) {
      const std::string body =
          ErrorToJson(ServiceErrorCode::kParseError, "malformed request line")
              .Encode();
      SendReply(fd, 400, body, queue_ms);
      DrainAndClose(fd);
      return;
    }
    const std::string method{start_line.substr(0, method_end)};
    const std::string path{
        start_line.substr(method_end + 1, path_end - method_end - 1)};
    // HTTP/1.1 defaults to keep-alive; 1.0 (and anything else) to close.
    const std::string_view version = start_line.substr(path_end + 1);
    bool keep_alive = version == "HTTP/1.1";

    // Headers: Content-Length frames the body, Connection overrides the
    // version's persistence default.
    std::size_t content_length = 0;
    std::size_t cursor = line_end + 2;
    while (cursor < header_end) {
      std::size_t eol = head.find("\r\n", cursor);
      if (eol == std::string_view::npos) eol = header_end;
      const std::string_view line = head.substr(cursor, eol - cursor);
      if (HeaderIs(line, "Content-Length")) {
        std::size_t value = line.find(':') + 1;
        while (value < line.size() && line[value] == ' ') ++value;
        content_length = 0;
        for (; value < line.size() &&
               std::isdigit(static_cast<unsigned char>(line[value]));
             ++value) {
          content_length = content_length * 10 +
                           static_cast<std::size_t>(line[value] - '0');
        }
      } else if (HeaderIs(line, "Connection")) {
        std::size_t value = line.find(':') + 1;
        while (value < line.size() && line[value] == ' ') ++value;
        const std::string_view token = line.substr(value);
        if (TokenEquals(token, "close")) keep_alive = false;
        if (TokenEquals(token, "keep-alive")) keep_alive = true;
      }
      cursor = eol + 2;
    }

    const std::size_t body_start = header_end + 4;
    if (content_length > options_.max_request_bytes) {
      const std::string body =
          ErrorToJson(ServiceErrorCode::kPayloadTooLarge,
                      "declared body exceeds " +
                          std::to_string(options_.max_request_bytes) +
                          " bytes")
              .Encode();
      SendReply(fd, HttpStatusOf(ServiceErrorCode::kPayloadTooLarge), body,
                queue_ms);
      DrainAndClose(fd);
      return;
    }
    while (buffer.size() < body_start + content_length) {
      const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        ::close(fd);
        return;
      }
      buffer.append(chunk, static_cast<std::size_t>(n));
    }
    const std::string_view body{buffer.data() + body_start, content_length};

    // The last request this connection gets: client asked to close, the
    // per-connection cap is reached, or the server is draining (announced
    // in the reply's Connection header so the client reconnects elsewhere).
    const bool last =
        !keep_alive ||
        request_index + 1 == options_.max_requests_per_connection ||
        service_->shutdown_requested();

    const ServiceReply reply = service_->Handle(method, path, body);
    {
      // Before SendReply: a client that has read reply #N must see stats
      // covering all N requests.
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.served;
      if (request_index > 0) ++stats_.reused;
    }
    SendReply(fd, reply.http_status, reply.body, queue_ms, !last);
    if (last) {
      ::shutdown(fd, SHUT_WR);
      ::close(fd);
      return;
    }
    buffer.erase(0, body_start + content_length);
  }
}

void HttpServer::Stop() {
  if (!running_) return;
  running_ = false;
  service_->RequestShutdown();
  // Wake the accept loop, then close the door.
  const char byte = 'x';
  [[maybe_unused]] const ssize_t w = ::write(wake_fds_[1], &byte, 1);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  queue_->Close();  // AcceptLoop already closed it; idempotent.
  if (drain_thread_.joinable()) drain_thread_.join();
  ::close(wake_fds_[0]);
  ::close(wake_fds_[1]);
  wake_fds_[0] = wake_fds_[1] = -1;
}

}  // namespace dpcluster
