#include "dpcluster/service/protocol.h"

#include <cmath>
#include <utility>
#include <vector>

#include "dpcluster/core/radius_profile.h"
#include "dpcluster/geo/spatial_grid.h"

namespace dpcluster {

namespace {

Status FieldError(std::string_view key, const std::string& what) {
  return Status::InvalidArgument("field \"" + std::string(key) + "\": " + what);
}

Result<double> AsDoubleField(std::string_view key, const JsonValue& v) {
  if (!v.is_number()) return FieldError(key, "expected a number");
  return v.AsDouble();
}

Result<std::uint64_t> AsU64Field(std::string_view key, const JsonValue& v) {
  if (!v.is_number()) return FieldError(key, "expected an integer");
  auto u = v.AsU64();
  if (!u.ok()) return FieldError(key, u.status().message());
  return *u;
}

Result<bool> AsBoolField(std::string_view key, const JsonValue& v) {
  if (!v.is_bool()) return FieldError(key, "expected true/false");
  return v.AsBool();
}

Result<std::string> AsStringField(std::string_view key, const JsonValue& v) {
  if (!v.is_string()) return FieldError(key, "expected a string");
  return v.AsString();
}

/// Parses "points": a non-empty array of equal-length coordinate rows.
Result<PointSet> ParsePoints(const JsonValue& v) {
  if (!v.is_array()) return FieldError("points", "expected an array of rows");
  std::size_t dim = 0;
  std::vector<double> flat;
  for (std::size_t i = 0; i < v.items().size(); ++i) {
    const JsonValue& row = v.items()[i];
    if (!row.is_array() || row.items().empty()) {
      return FieldError("points", "row " + std::to_string(i) +
                                      " is not a non-empty coordinate array");
    }
    if (dim == 0) {
      dim = row.items().size();
      flat.reserve(v.items().size() * dim);
    } else if (row.items().size() != dim) {
      return FieldError("points", "ragged rows (row " + std::to_string(i) +
                                      " has " +
                                      std::to_string(row.items().size()) +
                                      " coordinates, expected " +
                                      std::to_string(dim) + ")");
    }
    for (const JsonValue& coordinate : row.items()) {
      if (!coordinate.is_number()) {
        return FieldError("points", "row " + std::to_string(i) +
                                        " holds a non-number coordinate");
      }
      flat.push_back(coordinate.AsDouble());
    }
  }
  if (dim == 0) return FieldError("points", "empty dataset");
  return PointSet(dim, std::move(flat));
}

Status ParseTuning(const JsonValue& v, Tuning& tuning) {
  if (!v.is_object()) return FieldError("tuning", "expected an object");
  for (const auto& [key, value] : v.members()) {
    if (key == "radius_budget_fraction") {
      DPC_ASSIGN_OR_RETURN(tuning.radius_budget_fraction,
                           AsDoubleField(key, value));
    } else if (key == "subsample_large_inputs") {
      DPC_ASSIGN_OR_RETURN(tuning.subsample_large_inputs,
                           AsBoolField(key, value));
    } else if (key == "subsample_grid_cap_factor") {
      DPC_ASSIGN_OR_RETURN(tuning.subsample_grid_cap_factor,
                           AsDoubleField(key, value));
    } else if (key == "profile_index") {
      DPC_ASSIGN_OR_RETURN(const std::string name, AsStringField(key, value));
      auto parsed = ProfileIndexFromName(name);
      if (!parsed.ok()) return FieldError(key, parsed.status().message());
      tuning.profile_index = *parsed;
    } else if (key == "index_geometry") {
      DPC_ASSIGN_OR_RETURN(const std::string name, AsStringField(key, value));
      auto parsed = IndexGeometryFromName(name);
      if (!parsed.ok()) return FieldError(key, parsed.status().message());
      tuning.index_geometry = *parsed;
    } else if (key == "max_jl_dim") {
      DPC_ASSIGN_OR_RETURN(const std::uint64_t u, AsU64Field(key, value));
      tuning.max_jl_dim = static_cast<std::size_t>(u);
    } else if (key == "projection_seed") {
      DPC_ASSIGN_OR_RETURN(tuning.projection_seed, AsU64Field(key, value));
    } else if (key == "refine_fraction") {
      DPC_ASSIGN_OR_RETURN(tuning.refine_fraction, AsDoubleField(key, value));
    } else if (key == "refine_one_cluster") {
      DPC_ASSIGN_OR_RETURN(tuning.refine_one_cluster, AsBoolField(key, value));
    } else if (key == "advanced_composition") {
      DPC_ASSIGN_OR_RETURN(tuning.advanced_composition,
                           AsBoolField(key, value));
    } else if (key == "coreset") {
      DPC_ASSIGN_OR_RETURN(tuning.coreset, AsBoolField(key, value));
    } else if (key == "coreset_min_points") {
      DPC_ASSIGN_OR_RETURN(const std::uint64_t u, AsU64Field(key, value));
      tuning.coreset_min_points = static_cast<std::size_t>(u);
    } else if (key == "coreset_target_size") {
      DPC_ASSIGN_OR_RETURN(const std::uint64_t u, AsU64Field(key, value));
      tuning.coreset_target_size = static_cast<std::size_t>(u);
    } else if (key == "stream_compact_fraction") {
      DPC_ASSIGN_OR_RETURN(tuning.stream_compact_fraction,
                           AsDoubleField(key, value));
    } else if (key == "coreset_staleness_fraction") {
      DPC_ASSIGN_OR_RETURN(tuning.coreset_staleness_fraction,
                           AsDoubleField(key, value));
    } else if (key == "inflation") {
      DPC_ASSIGN_OR_RETURN(tuning.inflation, AsDoubleField(key, value));
    } else if (key == "max_grid_centers") {
      DPC_ASSIGN_OR_RETURN(const std::uint64_t u, AsU64Field(key, value));
      tuning.max_grid_centers = static_cast<std::size_t>(u);
    } else {
      return FieldError("tuning." + key, "unknown key");
    }
  }
  return Status::OK();
}

JsonValue BallToJson(const Ball& ball) {
  JsonValue object = JsonValue::Object();
  JsonValue center = JsonValue::Array();
  for (const double c : ball.center) center.Append(JsonValue::Number(c));
  object.Set("center", std::move(center));
  object.Set("radius", JsonValue::Number(ball.radius));
  return object;
}

}  // namespace

Result<WireRequest> ParseWireRequest(const JsonValue& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("wire request must be a JSON object");
  }
  WireRequest wire;
  std::uint64_t levels = 0;
  double axis = 1.0;
  bool have_points = false;
  bool have_algorithm = false;
  for (const auto& [key, value] : json.members()) {
    if (key == "tenant") {
      DPC_ASSIGN_OR_RETURN(wire.tenant, AsStringField(key, value));
      if (wire.tenant.empty()) return FieldError(key, "must be non-empty");
    } else if (key == "dataset") {
      DPC_ASSIGN_OR_RETURN(wire.dataset, AsStringField(key, value));
    } else if (key == "seed") {
      DPC_ASSIGN_OR_RETURN(wire.seed, AsU64Field(key, value));
    } else if (key == "snap") {
      DPC_ASSIGN_OR_RETURN(wire.snap, AsBoolField(key, value));
    } else if (key == "stream") {
      DPC_ASSIGN_OR_RETURN(wire.stream, AsBoolField(key, value));
    } else if (key == "algorithm") {
      DPC_ASSIGN_OR_RETURN(wire.request.algorithm, AsStringField(key, value));
      have_algorithm = true;
    } else if (key == "points") {
      DPC_ASSIGN_OR_RETURN(wire.request.data, ParsePoints(value));
      have_points = true;
    } else if (key == "levels") {
      DPC_ASSIGN_OR_RETURN(levels, AsU64Field(key, value));
    } else if (key == "axis") {
      DPC_ASSIGN_OR_RETURN(axis, AsDoubleField(key, value));
    } else if (key == "epsilon") {
      DPC_ASSIGN_OR_RETURN(wire.request.budget.epsilon,
                           AsDoubleField(key, value));
    } else if (key == "delta") {
      DPC_ASSIGN_OR_RETURN(wire.request.budget.delta,
                           AsDoubleField(key, value));
    } else if (key == "beta") {
      DPC_ASSIGN_OR_RETURN(wire.request.beta, AsDoubleField(key, value));
    } else if (key == "t") {
      DPC_ASSIGN_OR_RETURN(const std::uint64_t u, AsU64Field(key, value));
      wire.request.t = static_cast<std::size_t>(u);
    } else if (key == "k") {
      DPC_ASSIGN_OR_RETURN(const std::uint64_t u, AsU64Field(key, value));
      wire.request.k = static_cast<std::size_t>(u);
    } else if (key == "inlier_fraction") {
      DPC_ASSIGN_OR_RETURN(wire.request.inlier_fraction,
                           AsDoubleField(key, value));
    } else if (key == "alpha") {
      DPC_ASSIGN_OR_RETURN(wire.request.alpha, AsDoubleField(key, value));
    } else if (key == "block_size") {
      DPC_ASSIGN_OR_RETURN(const std::uint64_t u, AsU64Field(key, value));
      wire.request.block_size = static_cast<std::size_t>(u);
    } else if (key == "num_threads") {
      DPC_ASSIGN_OR_RETURN(const std::uint64_t u, AsU64Field(key, value));
      wire.request.num_threads = static_cast<std::size_t>(u);
    } else if (key == "label") {
      DPC_ASSIGN_OR_RETURN(wire.request.label, AsStringField(key, value));
    } else if (key == "tuning") {
      DPC_RETURN_IF_ERROR(ParseTuning(value, wire.request.tuning));
    } else {
      return FieldError(key, "unknown key");
    }
  }
  if (wire.dataset.empty()) {
    return Status::InvalidArgument("missing required field \"dataset\"");
  }
  // Request::algorithm has a non-empty default, so presence is tracked
  // explicitly: the wire format requires the client to name its algorithm.
  if (!have_algorithm || wire.request.algorithm.empty()) {
    return Status::InvalidArgument("missing required field \"algorithm\"");
  }
  if (wire.stream) {
    // A stream solve runs over server-resident data: the body must not also
    // carry its own geometry.
    if (have_points) {
      return FieldError("stream", "a stream solve must omit \"points\"");
    }
    if (levels > 0) {
      return FieldError("stream",
                        "a stream solve must omit \"levels\" (the stream "
                        "owns its domain)");
    }
    if (wire.snap) {
      return FieldError("stream", "a stream solve must omit \"snap\"");
    }
    return wire;
  }
  if (!have_points) {
    return Status::InvalidArgument("missing required field \"points\"");
  }
  if (levels > 0) {
    if (levels < 2) return FieldError("levels", "|X| must be >= 2");
    if (!(axis > 0.0) || !std::isfinite(axis)) {
      return FieldError("axis", "must be a positive finite length");
    }
    wire.request.domain = GridDomain(levels, wire.request.data.dim(), axis);
  } else if (wire.snap) {
    return FieldError("snap", "requires a domain (set \"levels\")");
  }
  // NOTE: `snap` is a pure flag here — the service applies SnapAll after
  // parsing, so Parse/Encode stay exact inverses (the round-trip contract).
  return wire;
}

Result<WireRequest> ParseWireRequest(std::string_view body) {
  DPC_ASSIGN_OR_RETURN(const JsonValue json, JsonValue::Parse(body));
  return ParseWireRequest(json);
}

JsonValue TuningToJson(const Tuning& tuning) {
  JsonValue object = JsonValue::Object();
  object.Set("radius_budget_fraction",
             JsonValue::Number(tuning.radius_budget_fraction));
  object.Set("subsample_large_inputs",
             JsonValue::Bool(tuning.subsample_large_inputs));
  object.Set("subsample_grid_cap_factor",
             JsonValue::Number(tuning.subsample_grid_cap_factor));
  object.Set("profile_index",
             JsonValue::String(std::string(
                 ProfileIndexName(tuning.profile_index))));
  object.Set("index_geometry",
             JsonValue::String(std::string(
                 IndexGeometryName(tuning.index_geometry))));
  object.Set("max_jl_dim",
             JsonValue::Number(static_cast<std::uint64_t>(tuning.max_jl_dim)));
  object.Set("projection_seed", JsonValue::Number(tuning.projection_seed));
  object.Set("refine_fraction", JsonValue::Number(tuning.refine_fraction));
  object.Set("refine_one_cluster", JsonValue::Bool(tuning.refine_one_cluster));
  object.Set("advanced_composition",
             JsonValue::Bool(tuning.advanced_composition));
  object.Set("coreset", JsonValue::Bool(tuning.coreset));
  object.Set("coreset_min_points",
             JsonValue::Number(
                 static_cast<std::uint64_t>(tuning.coreset_min_points)));
  object.Set("coreset_target_size",
             JsonValue::Number(
                 static_cast<std::uint64_t>(tuning.coreset_target_size)));
  object.Set("stream_compact_fraction",
             JsonValue::Number(tuning.stream_compact_fraction));
  object.Set("coreset_staleness_fraction",
             JsonValue::Number(tuning.coreset_staleness_fraction));
  object.Set("inflation", JsonValue::Number(tuning.inflation));
  object.Set("max_grid_centers",
             JsonValue::Number(
                 static_cast<std::uint64_t>(tuning.max_grid_centers)));
  return object;
}

JsonValue WireRequestToJson(const WireRequest& wire) {
  const Request& request = wire.request;
  JsonValue object = JsonValue::Object();
  object.Set("tenant", JsonValue::String(wire.tenant));
  object.Set("dataset", JsonValue::String(wire.dataset));
  object.Set("seed", JsonValue::Number(wire.seed));
  object.Set("snap", JsonValue::Bool(wire.snap));
  object.Set("stream", JsonValue::Bool(wire.stream));
  object.Set("algorithm", JsonValue::String(request.algorithm));
  // Stream solves carry no geometry of their own (the parser rejects
  // "points"/"levels" next to "stream": true), so the encoder omits the keys
  // to stay an exact inverse.
  if (!wire.stream) {
    JsonValue points = JsonValue::Array();
    for (std::size_t i = 0; i < request.data.size(); ++i) {
      JsonValue row = JsonValue::Array();
      for (const double c : request.data[i]) row.Append(JsonValue::Number(c));
      points.Append(std::move(row));
    }
    object.Set("points", std::move(points));
    object.Set("levels",
               JsonValue::Number(request.domain.has_value()
                                     ? request.domain->levels()
                                     : std::uint64_t{0}));
    object.Set("axis", JsonValue::Number(request.domain.has_value()
                                             ? request.domain->axis_length()
                                             : 1.0));
  }
  object.Set("epsilon", JsonValue::Number(request.budget.epsilon));
  object.Set("delta", JsonValue::Number(request.budget.delta));
  object.Set("beta", JsonValue::Number(request.beta));
  object.Set("t", JsonValue::Number(static_cast<std::uint64_t>(request.t)));
  object.Set("k", JsonValue::Number(static_cast<std::uint64_t>(request.k)));
  object.Set("inlier_fraction", JsonValue::Number(request.inlier_fraction));
  object.Set("alpha", JsonValue::Number(request.alpha));
  object.Set("block_size",
             JsonValue::Number(static_cast<std::uint64_t>(request.block_size)));
  object.Set("num_threads",
             JsonValue::Number(
                 static_cast<std::uint64_t>(request.num_threads)));
  object.Set("label", JsonValue::String(request.label));
  object.Set("tuning", TuningToJson(request.tuning));
  return object;
}

Status ParseTuningJson(const JsonValue& json, Tuning& tuning) {
  return ParseTuning(json, tuning);
}

namespace {

/// The fields append and expire share; `key` dispatch returns false when the
/// key belongs to neither so the caller can reject it by route.
Result<StreamRequest> ParseStreamCommon(std::string_view body,
                                        bool is_append) {
  DPC_ASSIGN_OR_RETURN(const JsonValue json, JsonValue::Parse(body));
  if (!json.is_object()) {
    return Status::InvalidArgument("stream request must be a JSON object");
  }
  StreamRequest stream;
  bool have_points = false;
  bool have_count = false;
  bool have_ids = false;
  for (const auto& [key, value] : json.members()) {
    if (key == "dataset") {
      DPC_ASSIGN_OR_RETURN(stream.dataset, AsStringField(key, value));
    } else if (key == "tuning") {
      DPC_RETURN_IF_ERROR(ParseTuning(value, stream.tuning));
    } else if (is_append && key == "points") {
      DPC_ASSIGN_OR_RETURN(stream.points, ParsePoints(value));
      have_points = true;
    } else if (is_append && key == "levels") {
      DPC_ASSIGN_OR_RETURN(stream.levels, AsU64Field(key, value));
    } else if (is_append && key == "axis") {
      DPC_ASSIGN_OR_RETURN(stream.axis, AsDoubleField(key, value));
    } else if (is_append && key == "snap") {
      DPC_ASSIGN_OR_RETURN(stream.snap, AsBoolField(key, value));
    } else if (!is_append && key == "count") {
      DPC_ASSIGN_OR_RETURN(stream.expire_count, AsU64Field(key, value));
      have_count = true;
    } else if (!is_append && key == "ids") {
      if (!value.is_array()) {
        return FieldError(key, "expected an array of row ids");
      }
      for (const JsonValue& id : value.items()) {
        DPC_ASSIGN_OR_RETURN(const std::uint64_t u, AsU64Field(key, id));
        if (u > 0xffffffffull) return FieldError(key, "row id out of range");
        stream.expire_ids.push_back(static_cast<std::uint32_t>(u));
      }
      have_ids = true;
    } else {
      return FieldError(key, "unknown key");
    }
  }
  if (stream.dataset.empty()) {
    return Status::InvalidArgument("missing required field \"dataset\"");
  }
  if (is_append) {
    if (!have_points) {
      return Status::InvalidArgument("missing required field \"points\"");
    }
    if (stream.levels > 0) {
      if (stream.levels < 2) return FieldError("levels", "|X| must be >= 2");
      if (!(stream.axis > 0.0) || !std::isfinite(stream.axis)) {
        return FieldError("axis", "must be a positive finite length");
      }
    } else if (stream.snap) {
      return FieldError("snap", "requires a domain (set \"levels\")");
    }
  } else {
    if (have_count == have_ids) {
      return Status::InvalidArgument(
          "expire takes exactly one of \"count\" or \"ids\"");
    }
    if (have_count && stream.expire_count == 0) {
      return FieldError("count", "must be >= 1");
    }
    if (have_ids && stream.expire_ids.empty()) {
      return FieldError("ids", "must be non-empty");
    }
  }
  return stream;
}

}  // namespace

Result<StreamRequest> ParseStreamAppend(std::string_view body) {
  return ParseStreamCommon(body, /*is_append=*/true);
}

Result<StreamRequest> ParseStreamExpire(std::string_view body) {
  return ParseStreamCommon(body, /*is_append=*/false);
}

JsonValue PrivacyParamsToJson(const PrivacyParams& params) {
  JsonValue object = JsonValue::Object();
  object.Set("epsilon", JsonValue::Number(params.epsilon));
  object.Set("delta", JsonValue::Number(params.delta));
  return object;
}

JsonValue ResponseToJson(const Response& response) {
  JsonValue object = JsonValue::Object();
  object.Set("algorithm", JsonValue::String(response.algorithm));
  object.Set("kind",
             JsonValue::String(ProblemKindName(response.kind)));
  object.Set("ball", response.ball.center.empty()
                         ? JsonValue::Null()
                         : BallToJson(response.ball));
  JsonValue balls = JsonValue::Array();
  for (const Ball& ball : response.balls) balls.Append(BallToJson(ball));
  object.Set("balls", std::move(balls));
  object.Set("scalar", std::isnan(response.scalar)
                           ? JsonValue::Null()
                           : JsonValue::Number(response.scalar));
  object.Set("charged", PrivacyParamsToJson(response.charged));
  JsonValue ledger = JsonValue::Array();
  for (const Accountant::ChargeEntry& entry : response.ledger.charges()) {
    JsonValue row = JsonValue::Object();
    row.Set("label", JsonValue::String(entry.label));
    row.Set("epsilon", JsonValue::Number(entry.params.epsilon));
    row.Set("delta", JsonValue::Number(entry.params.delta));
    ledger.Append(std::move(row));
  }
  object.Set("ledger", std::move(ledger));
  if (response.diagnostics.has_value()) {
    const EvalMetrics& m = *response.diagnostics;
    JsonValue diagnostics = JsonValue::Object();
    diagnostics.Set("captured",
                    JsonValue::Number(static_cast<std::uint64_t>(m.captured)));
    diagnostics.Set("delta", JsonValue::Number(m.delta));
    diagnostics.Set("tight_radius", JsonValue::Number(m.tight_radius));
    diagnostics.Set("r_opt_lower", JsonValue::Number(m.r_opt_lower));
    diagnostics.Set("w_reported", JsonValue::Number(m.w_reported));
    diagnostics.Set("w_effective", JsonValue::Number(m.w_effective));
    object.Set("diagnostics", std::move(diagnostics));
  } else {
    object.Set("diagnostics", JsonValue::Null());
  }
  object.Set("uncovered",
             JsonValue::Number(static_cast<std::uint64_t>(response.uncovered)));
  object.Set("note", JsonValue::String(response.note));
  object.Set("wall_ms", JsonValue::Number(response.wall_ms));
  return object;
}

const char* ServiceErrorCodeName(ServiceErrorCode code) {
  switch (code) {
    case ServiceErrorCode::kParseError: return "ParseError";
    case ServiceErrorCode::kInvalidRequest: return "InvalidRequest";
    case ServiceErrorCode::kUnknownAlgorithm: return "UnknownAlgorithm";
    case ServiceErrorCode::kRouteNotFound: return "RouteNotFound";
    case ServiceErrorCode::kMethodNotAllowed: return "MethodNotAllowed";
    case ServiceErrorCode::kPayloadTooLarge: return "PayloadTooLarge";
    case ServiceErrorCode::kUnknownDataset: return "UnknownDataset";
    case ServiceErrorCode::kBudgetExhausted: return "BudgetExhausted";
    case ServiceErrorCode::kQueueFull: return "QueueFull";
    case ServiceErrorCode::kShuttingDown: return "ShuttingDown";
    case ServiceErrorCode::kNoPrivateAnswer: return "NoPrivateAnswer";
    case ServiceErrorCode::kResourceLimit: return "ResourceLimit";
    case ServiceErrorCode::kDeadlineExceeded: return "DeadlineExceeded";
    case ServiceErrorCode::kInternal: return "Internal";
  }
  return "Internal";
}

int HttpStatusOf(ServiceErrorCode code) {
  switch (code) {
    case ServiceErrorCode::kParseError: return 400;
    case ServiceErrorCode::kInvalidRequest: return 400;
    case ServiceErrorCode::kUnknownAlgorithm: return 404;
    case ServiceErrorCode::kRouteNotFound: return 404;
    case ServiceErrorCode::kMethodNotAllowed: return 405;
    case ServiceErrorCode::kPayloadTooLarge: return 413;
    case ServiceErrorCode::kUnknownDataset: return 404;
    case ServiceErrorCode::kBudgetExhausted: return 429;
    case ServiceErrorCode::kQueueFull: return 503;
    case ServiceErrorCode::kShuttingDown: return 503;
    case ServiceErrorCode::kNoPrivateAnswer: return 422;
    case ServiceErrorCode::kResourceLimit: return 422;
    case ServiceErrorCode::kDeadlineExceeded: return 504;
    case ServiceErrorCode::kInternal: return 500;
  }
  return 500;
}

ServiceErrorCode ServiceErrorFromStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kInvalidArgument: return ServiceErrorCode::kInvalidRequest;
    case StatusCode::kNotFound: return ServiceErrorCode::kUnknownAlgorithm;
    case StatusCode::kNoPrivateAnswer: return ServiceErrorCode::kNoPrivateAnswer;
    case StatusCode::kResourceExhausted: return ServiceErrorCode::kResourceLimit;
    case StatusCode::kDeadlineExceeded: return ServiceErrorCode::kDeadlineExceeded;
    case StatusCode::kOk:
    case StatusCode::kInternal:
      break;
  }
  return ServiceErrorCode::kInternal;
}

JsonValue ErrorToJson(ServiceErrorCode code, const std::string& message) {
  JsonValue error = JsonValue::Object();
  error.Set("code", JsonValue::String(ServiceErrorCodeName(code)));
  error.Set("http_status", JsonValue::Number(HttpStatusOf(code)));
  error.Set("message", JsonValue::String(message));
  JsonValue object = JsonValue::Object();
  object.Set("ok", JsonValue::Bool(false));
  object.Set("error", std::move(error));
  return object;
}

}  // namespace dpcluster
