// Minimal JSON document model for the service wire protocol: a strict
// recursive-descent parser and a deterministic writer, no external
// dependencies. The model is deliberately small — null/bool/number/string/
// array/object — but two properties matter for the protocol layer:
//
//  * Numbers keep their lexeme. A parsed number re-encodes as the exact
//    bytes the client sent, and numbers built from uint64 (seeds, levels)
//    never round-trip through double — so encode(parse(encode(x))) is the
//    identity on protocol messages (service_protocol_test pins this).
//    Doubles are formatted with std::to_chars shortest-round-trip form.
//  * Objects preserve insertion order (vector of members, not a map), so
//    the writer's output is a deterministic function of construction order.
//
// Parsing is strict JSON (RFC 8259): no trailing garbage, no comments, no
// trailing commas, \uXXXX escapes decoded to UTF-8, depth-capped to keep
// adversarial inputs from recursing the stack away.

#ifndef DPCLUSTER_SERVICE_JSON_H_
#define DPCLUSTER_SERVICE_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "dpcluster/common/status.h"

namespace dpcluster {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  using Member = std::pair<std::string, JsonValue>;

  /// Default-constructed value is null.
  JsonValue() = default;

  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool value);
  static JsonValue Number(double value);
  static JsonValue Number(std::uint64_t value);
  static JsonValue Number(int value);
  /// A number carrying an exact spelling; `lexeme` must be a valid JSON
  /// number (the parser uses this to round-trip client bytes unchanged).
  static JsonValue NumberFromLexeme(std::string lexeme);
  static JsonValue String(std::string value);
  static JsonValue Array();
  static JsonValue Object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Value accessors; each requires the matching kind.
  bool AsBool() const;
  /// The number as a double (strtod over the stored lexeme).
  double AsDouble() const;
  /// The number as an exact unsigned integer; InvalidArgument when the
  /// lexeme is negative, fractional, or does not fit in 64 bits.
  Result<std::uint64_t> AsU64() const;
  const std::string& AsString() const;

  /// The stored number lexeme ("1e-9", "42"); requires is_number().
  const std::string& lexeme() const;

  // --- Arrays -------------------------------------------------------------
  const std::vector<JsonValue>& items() const;
  void Append(JsonValue value);

  // --- Objects ------------------------------------------------------------
  const std::vector<Member>& members() const;
  /// Appends (or overwrites, keeping position) a member.
  void Set(std::string key, JsonValue value);
  /// The member named `key`, or nullptr when absent.
  const JsonValue* Find(std::string_view key) const;

  /// Compact deterministic serialization (members in stored order).
  std::string Encode() const;

  /// Strict parse of a complete JSON document. Any syntax error, trailing
  /// garbage, or nesting deeper than 64 levels is InvalidArgument with a
  /// byte-offset message.
  static Result<JsonValue> Parse(std::string_view text);

 private:
  void EncodeTo(std::string& out) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  /// String payload for kString; exact lexeme for kNumber.
  std::string text_;
  std::vector<JsonValue> items_;
  std::vector<Member> members_;
};

/// Formats a double in shortest round-trip form ("0.1", "1e-9", integral
/// doubles without a trailing ".0"). NaN/Inf are not valid JSON and encode
/// as null — the protocol layer never emits them in number position.
std::string JsonNumberLexeme(double value);

}  // namespace dpcluster

#endif  // DPCLUSTER_SERVICE_JSON_H_
