// Baseline: the exponential mechanism over all grid balls (Table 1, row 2,
// McSherry-Talwar [14]). A noisy binary search over the radius grid finds the
// smallest radius at which the exponential mechanism (over all |X|^d grid
// centers, quality = capped ball count) produces a ball holding ~t points.
//
// Achieves w ~ 1 and handles minority clusters, but its running time is
// poly(|X|^d) — the whole point of Table 1's comparison. The options cap the
// enumerable grid so the baseline stays honest about that cost.

#ifndef DPCLUSTER_BASELINES_EXP_MECH_BASELINE_H_
#define DPCLUSTER_BASELINES_EXP_MECH_BASELINE_H_

#include <cstddef>

#include "dpcluster/common/status.h"
#include "dpcluster/dp/privacy_params.h"
#include "dpcluster/geo/ball.h"
#include "dpcluster/geo/grid_domain.h"
#include "dpcluster/geo/point_set.h"
#include "dpcluster/random/rng.h"

namespace dpcluster {

struct ExpMechBaselineOptions {
  PrivacyParams params{1.0, 0.0};  // Pure eps-DP.
  double beta = 0.1;
  /// Refuses to enumerate more than this many grid centers (|X|^d).
  std::size_t max_grid_centers = 1u << 18;

  Status Validate() const;
};

/// Runs the baseline; (eps, 0)-DP overall.
Result<Ball> ExpMechBaseline(Rng& rng, const PointSet& s, std::size_t t,
                             const GridDomain& domain,
                             const ExpMechBaselineOptions& options);

}  // namespace dpcluster

#endif  // DPCLUSTER_BASELINES_EXP_MECH_BASELINE_H_
