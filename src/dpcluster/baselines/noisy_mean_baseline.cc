#include "dpcluster/baselines/noisy_mean_baseline.h"

#include <cmath>
#include <vector>

#include "dpcluster/common/check.h"
#include "dpcluster/core/radius_refine.h"
#include "dpcluster/dp/noisy_average.h"
#include "dpcluster/geo/ball.h"

namespace dpcluster {

Status NoisyMeanBaselineOptions::Validate() const {
  DPC_RETURN_IF_ERROR(params.ValidateWithPositiveDelta());
  if (!(beta > 0.0) || !(beta < 1.0)) {
    return Status::InvalidArgument("NoisyMeanBaseline: beta must be in (0,1)");
  }
  return Status::OK();
}

Result<Ball> NoisyMeanBaseline(Rng& rng, const PointSet& s, std::size_t t,
                               const GridDomain& domain,
                               const NoisyMeanBaselineOptions& options) {
  DPC_RETURN_IF_ERROR(options.Validate());
  if (s.empty()) return Status::InvalidArgument("NoisyMeanBaseline: empty dataset");
  if (t < 1 || t > s.size()) {
    return Status::InvalidArgument("NoisyMeanBaseline: 1 <= t <= n required");
  }
  const std::size_t d = s.dim();
  const double eps = options.params.epsilon;

  // Phase 1 (eps/2, delta/2): noisy mean over the whole cube. The reach is the
  // cube's circumradius — this is exactly the sqrt(d) the paper's pipeline
  // avoids.
  std::vector<double> cube_center(d, domain.axis_length() / 2.0);
  const double reach =
      0.5 * domain.axis_length() * std::sqrt(static_cast<double>(d));
  DPC_ASSIGN_OR_RETURN(
      NoisyAverageOutput avg,
      NoisyAverage(rng, s, cube_center, reach, options.params.Fraction(0.5)));

  // Phase 2 (eps/2): noisy binary search for the smallest grid radius whose
  // ball around the released center holds ~t points.
  Ball ball;
  ball.center = avg.average;
  RadiusRefineOptions refine;
  refine.epsilon = eps / 2.0;
  refine.beta = options.beta;
  DPC_ASSIGN_OR_RETURN(ball.radius,
                       RefineRadius(rng, s, ball.center, t, domain, refine));
  return ball;
}

}  // namespace dpcluster
