#include "dpcluster/baselines/nonprivate_baseline.h"

#include <cmath>
#include <vector>

#include "dpcluster/common/check.h"
#include "dpcluster/geo/minimal_ball.h"

namespace dpcluster {

Result<Ball> NonPrivateBestEffort(const PointSet& s, std::size_t t) {
  if (s.dim() == 1) return SmallestInterval1D(s, t);
  return TwoApproxSmallestBall(s, t);
}

Result<Ball> NonPrivateTwoApprox(const PointSet& s, std::size_t t) {
  return TwoApproxSmallestBall(s, t);
}

Result<Ball> NonPrivateLocalSearch(const PointSet& s, std::size_t t, double alpha,
                                   std::size_t max_candidates) {
  if (!(alpha > 0.0) || !(alpha <= 1.0)) {
    return Status::InvalidArgument("NonPrivateLocalSearch: alpha must be in (0,1]");
  }
  DPC_ASSIGN_OR_RETURN(Ball base, TwoApproxSmallestBall(s, t));
  if (base.radius == 0.0) return base;
  const std::size_t d = s.dim();
  const double pitch = alpha * base.radius;
  const auto side = static_cast<std::size_t>(std::floor(2.0 / alpha)) + 1;

  // Candidate count side^d; bail out to the 2-approx when over budget.
  double total = 1.0;
  for (std::size_t i = 0; i < d; ++i) total *= static_cast<double>(side);
  if (total > static_cast<double>(max_candidates)) return base;

  Ball best = base;
  std::vector<std::size_t> idx(d, 0);
  std::vector<double> cand(d);
  const auto count = static_cast<std::size_t>(total);
  for (std::size_t c = 0; c < count; ++c) {
    for (std::size_t j = 0; j < d; ++j) {
      cand[j] = base.center[j] - base.radius +
                static_cast<double>(idx[j]) * pitch;
    }
    const double r = RadiusCapturing(s, cand, t);
    if (r < best.radius) {
      best.radius = r;
      best.center = cand;
    }
    for (std::size_t j = 0; j < d; ++j) {
      if (++idx[j] < side) break;
      idx[j] = 0;
    }
  }
  return best;
}

}  // namespace dpcluster
