#include "dpcluster/baselines/threshold_release_1d.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "dpcluster/common/check.h"
#include "dpcluster/common/math_util.h"
#include "dpcluster/random/distributions.h"

namespace dpcluster {

Status ThresholdRelease1DOptions::Validate() const {
  DPC_RETURN_IF_ERROR(params.Validate());
  if (!(beta > 0.0) || !(beta < 1.0)) {
    return Status::InvalidArgument("ThresholdRelease1D: beta must be in (0,1)");
  }
  return Status::OK();
}

Result<ThresholdRelease1D> ThresholdRelease1D::Build(
    Rng& rng, const PointSet& s, const GridDomain& domain,
    const ThresholdRelease1DOptions& options) {
  DPC_RETURN_IF_ERROR(options.Validate());
  if (s.dim() != 1 || domain.dim() != 1) {
    return Status::InvalidArgument("ThresholdRelease1D: requires d == 1");
  }

  const std::uint64_t x = domain.levels();
  const int tree_levels = CeilLog2(x) + 1;  // Dyadic levels incl. leaves.
  const std::uint64_t width = std::uint64_t{1} << (tree_levels - 1);
  const double eps_level =
      options.params.epsilon / static_cast<double>(tree_levels);
  // Replacement neighbors move one point: two cells per level change by 1.
  const double scale = 2.0 / eps_level;

  // Exact leaf histogram over grid levels.
  std::vector<double> exact(width, 0.0);
  for (std::size_t i = 0; i < s.size(); ++i) {
    const double v = std::clamp(s[i][0], 0.0, domain.axis_length());
    auto level = static_cast<std::uint64_t>(std::llround(v / domain.step()));
    if (level >= x) level = x - 1;
    exact[level] += 1.0;
  }

  // Noisy dyadic tree, released level by level; each level is one histogram.
  // noisy[l][j] estimates the count of the dyadic block j at granularity 2^l.
  std::vector<std::vector<double>> noisy(static_cast<std::size_t>(tree_levels));
  {
    std::vector<double> blocks = exact;
    for (int l = 0; l < tree_levels; ++l) {
      auto& level_counts = noisy[static_cast<std::size_t>(l)];
      level_counts.resize(blocks.size());
      for (std::size_t j = 0; j < blocks.size(); ++j) {
        level_counts[j] = blocks[j] + SampleLaplace(rng, scale);
      }
      // Coarsen for the next level.
      std::vector<double> next((blocks.size() + 1) / 2, 0.0);
      for (std::size_t j = 0; j < blocks.size(); ++j) next[j / 2] += blocks[j];
      blocks = std::move(next);
    }
  }

  // Post-processing: prefix counts from canonical-node decompositions.
  ThresholdRelease1D release;
  release.levels_ = x;
  release.grid_step_ = domain.step();
  release.prefix_.resize(x);
  for (std::uint64_t i = 0; i < x; ++i) {
    // Sum canonical nodes covering [0, i]: walk the binary representation.
    double sum = 0.0;
    std::uint64_t pos = 0;  // Next uncovered leaf.
    for (int l = tree_levels - 1; l >= 0; --l) {
      const std::uint64_t block = std::uint64_t{1} << l;
      if (pos + block <= i + 1) {
        sum += noisy[static_cast<std::size_t>(l)][pos >> l];
        pos += block;
      }
    }
    release.prefix_[i] = sum;
  }
  // Enforce monotone prefix counts (isotonic clean-up, still post-processing).
  for (std::uint64_t i = 1; i < x; ++i) {
    release.prefix_[i] = std::max(release.prefix_[i], release.prefix_[i - 1]);
  }

  const double ll = static_cast<double>(tree_levels);
  release.error_bound_ = scale * std::sqrt(2.0 * ll) *
                         std::log(2.0 * static_cast<double>(x) / options.beta);
  return release;
}

double ThresholdRelease1D::PrefixCount(std::uint64_t level) const {
  DPC_CHECK_LT(level, levels_);
  return prefix_[level];
}

double ThresholdRelease1D::IntervalCount(std::uint64_t lo, std::uint64_t hi) const {
  DPC_CHECK_LE(lo, hi);
  DPC_CHECK_LT(hi, levels_);
  const double left = lo == 0 ? 0.0 : prefix_[lo - 1];
  return prefix_[hi] - left;
}

Result<Ball> ThresholdRelease1D::SmallestHeavyInterval(double target) const {
  std::uint64_t best_lo = 0;
  std::uint64_t best_hi = 0;
  bool found = false;
  std::uint64_t lo = 0;
  for (std::uint64_t hi = 0; hi < levels_; ++hi) {
    while (lo < hi && IntervalCount(lo + 1, hi) >= target) ++lo;
    if (IntervalCount(lo, hi) >= target) {
      if (!found || hi - lo < best_hi - best_lo) {
        best_lo = lo;
        best_hi = hi;
        found = true;
      }
    }
  }
  if (!found) {
    return Status::NoPrivateAnswer(
        "ThresholdRelease1D: no interval reaches the target count");
  }
  Ball ball;
  ball.center = {0.5 * static_cast<double>(best_lo + best_hi) * grid_step_};
  ball.radius = 0.5 * static_cast<double>(best_hi - best_lo) * grid_step_;
  return ball;
}

}  // namespace dpcluster
