// Baseline: private aggregation in the style of Nissim-Raskhodnikova-Smith [16]
// (Table 1, row 1). The center is a noisy average of *all* points (global
// reach = the whole cube, so the noise carries the sqrt(d)/eps factor), the
// radius is found by a noisy binary search for the smallest ball around that
// center holding ~t points.
//
// Expected behaviour, which bench_table1 measures: works only when the cluster
// holds a majority of the points (otherwise the mean lands between clusters),
// and pays w = O(sqrt(d)/eps) in the radius.

#ifndef DPCLUSTER_BASELINES_NOISY_MEAN_BASELINE_H_
#define DPCLUSTER_BASELINES_NOISY_MEAN_BASELINE_H_

#include <cstddef>

#include "dpcluster/common/status.h"
#include "dpcluster/dp/privacy_params.h"
#include "dpcluster/geo/ball.h"
#include "dpcluster/geo/grid_domain.h"
#include "dpcluster/geo/point_set.h"
#include "dpcluster/random/rng.h"

namespace dpcluster {

struct NoisyMeanBaselineOptions {
  PrivacyParams params{1.0, 1e-9};
  double beta = 0.1;

  Status Validate() const;
};

/// Runs the baseline; (eps, delta)-DP overall (half budget each phase).
Result<Ball> NoisyMeanBaseline(Rng& rng, const PointSet& s, std::size_t t,
                               const GridDomain& domain,
                               const NoisyMeanBaselineOptions& options);

}  // namespace dpcluster

#endif  // DPCLUSTER_BASELINES_NOISY_MEAN_BASELINE_H_
