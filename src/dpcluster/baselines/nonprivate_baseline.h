// Non-private reference solvers wrapped in the common (center, radius) shape
// used by the Table 1 harness: the exact 1D interval, the 2-approximation over
// input centers (Section 3, fact 3), and a PTAS-flavoured grid refinement
// around the 2-approximation (Section 3, fact 2 stand-in: local search over a
// (1+alpha) grid of candidate centers near the 2-approx ball).

#ifndef DPCLUSTER_BASELINES_NONPRIVATE_BASELINE_H_
#define DPCLUSTER_BASELINES_NONPRIVATE_BASELINE_H_

#include <cstddef>

#include "dpcluster/common/status.h"
#include "dpcluster/geo/ball.h"
#include "dpcluster/geo/point_set.h"

namespace dpcluster {

/// Exact smallest interval for d == 1; the 2-approximation otherwise.
Result<Ball> NonPrivateBestEffort(const PointSet& s, std::size_t t);

/// The 2-approximation for any d (smallest ball centered at an input point).
Result<Ball> NonPrivateTwoApprox(const PointSet& s, std::size_t t);

/// Refines the 2-approximation toward (1+alpha) r_opt by searching ball
/// centers on a local grid of pitch alpha * r2 inside the 2-approx ball
/// (cells within the ball only; O((3/alpha)^d) candidates — small d only).
/// Falls back to the 2-approximation when the candidate budget is exceeded.
Result<Ball> NonPrivateLocalSearch(const PointSet& s, std::size_t t, double alpha,
                                   std::size_t max_candidates = 200000);

}  // namespace dpcluster

#endif  // DPCLUSTER_BASELINES_NONPRIVATE_BASELINE_H_
