// Baseline: query release for threshold functions, d = 1 (Table 1, row 3).
//
// The paper cites the 2^{O(log*|X|)} release of [3, 4]; as documented in
// DESIGN.md (substitution #5) this build ships the standard hierarchical
// (dyadic tree) Laplace release instead: every level of the dyadic tree over X
// is a disjoint histogram, each level gets eps/(L+1), and any interval count
// is answered by <= 2L canonical nodes, giving additive error
// O(log^{1.5}|X| / eps) — the classical bound this row is labeled with in the
// bench output.
//
// Post-processing (free under DP): a two-pointer sweep over the released
// prefix counts finds the shortest grid interval with estimated count >= t,
// which solves the 1-cluster problem for d = 1 with w = 1.

#ifndef DPCLUSTER_BASELINES_THRESHOLD_RELEASE_1D_H_
#define DPCLUSTER_BASELINES_THRESHOLD_RELEASE_1D_H_

#include <cstdint>
#include <vector>

#include "dpcluster/common/status.h"
#include "dpcluster/dp/privacy_params.h"
#include "dpcluster/geo/ball.h"
#include "dpcluster/geo/grid_domain.h"
#include "dpcluster/geo/point_set.h"
#include "dpcluster/random/rng.h"

namespace dpcluster {

struct ThresholdRelease1DOptions {
  PrivacyParams params{1.0, 0.0};  // Pure eps-DP.
  double beta = 0.1;

  Status Validate() const;
};

/// The released synthetic structure: noisy dyadic prefix counts over X.
class ThresholdRelease1D {
 public:
  /// Builds the release from a 1D dataset. (eps, 0)-DP.
  static Result<ThresholdRelease1D> Build(Rng& rng, const PointSet& s,
                                          const GridDomain& domain,
                                          const ThresholdRelease1DOptions& options);

  /// Estimated number of points with value <= grid level `level`.
  double PrefixCount(std::uint64_t level) const;

  /// Estimated count in the closed grid-level interval [lo, hi].
  double IntervalCount(std::uint64_t lo, std::uint64_t hi) const;

  /// Post-processing: shortest grid interval with estimated count >= target,
  /// returned as a 1D ball. Fails if no interval qualifies.
  Result<Ball> SmallestHeavyInterval(double target) const;

  std::uint64_t levels() const { return levels_; }

  /// The classical error bound O(log^{1.5}|X|/eps) for interval queries
  /// (1-beta tail across all |X|^2 intervals).
  double ErrorBound() const { return error_bound_; }

 private:
  ThresholdRelease1D() = default;

  std::uint64_t levels_ = 0;
  double grid_step_ = 1.0;
  double error_bound_ = 0.0;
  std::vector<double> prefix_;  // prefix_[i] = estimated #{x <= level i}.
};

}  // namespace dpcluster

#endif  // DPCLUSTER_BASELINES_THRESHOLD_RELEASE_1D_H_
