#include "dpcluster/baselines/exp_mech_baseline.h"

#include <cmath>
#include <vector>

#include "dpcluster/common/check.h"
#include "dpcluster/common/math_util.h"
#include "dpcluster/dp/exponential_mechanism.h"
#include "dpcluster/random/distributions.h"

namespace dpcluster {
namespace {

// Enumerates all |X|^d grid points into a PointSet (caller checked the cap).
PointSet EnumerateGridCenters(const GridDomain& domain) {
  const std::size_t d = domain.dim();
  std::size_t count = 1;
  for (std::size_t i = 0; i < d; ++i) {
    count *= static_cast<std::size_t>(domain.levels());
  }
  PointSet centers(d);
  std::vector<std::uint64_t> idx(d, 0);
  std::vector<double> p(d);
  for (std::size_t c = 0; c < count; ++c) {
    for (std::size_t j = 0; j < d; ++j) {
      p[j] = static_cast<double>(idx[j]) * domain.step();
    }
    centers.Add(p);
    for (std::size_t j = 0; j < d; ++j) {
      if (++idx[j] < domain.levels()) break;
      idx[j] = 0;
    }
  }
  return centers;
}

}  // namespace

Status ExpMechBaselineOptions::Validate() const {
  DPC_RETURN_IF_ERROR(params.Validate());
  if (!(beta > 0.0) || !(beta < 1.0)) {
    return Status::InvalidArgument("ExpMechBaseline: beta must be in (0,1)");
  }
  return Status::OK();
}

Result<Ball> ExpMechBaseline(Rng& rng, const PointSet& s, std::size_t t,
                             const GridDomain& domain,
                             const ExpMechBaselineOptions& options) {
  DPC_RETURN_IF_ERROR(options.Validate());
  if (s.empty()) return Status::InvalidArgument("ExpMechBaseline: empty dataset");
  if (t < 1 || t > s.size()) {
    return Status::InvalidArgument("ExpMechBaseline: 1 <= t <= n required");
  }
  if (s.dim() != domain.dim()) {
    return Status::InvalidArgument("ExpMechBaseline: domain dimension mismatch");
  }
  double total = 1.0;
  for (std::size_t i = 0; i < domain.dim(); ++i) {
    total *= static_cast<double>(domain.levels());
  }
  if (total > static_cast<double>(options.max_grid_centers)) {
    return Status::ResourceExhausted(
        "ExpMechBaseline: |X|^d = " + std::to_string(total) +
        " grid centers exceed the cap — this is the poly(|X|^d) cost Table 1 "
        "charges this baseline");
  }

  const PointSet centers = EnumerateGridCenters(domain);
  const double eps = options.params.epsilon;
  const std::uint64_t grid = domain.RadiusGridSize();
  const int comparisons = CeilLog2(grid) + 1;
  // Each binary-search stage spends one exponential mechanism and one Laplace
  // test; one more exponential mechanism picks the returned center.
  const double eps_stage = eps / (2.0 * static_cast<double>(comparisons) + 1.0);
  const double margin = (2.0 / eps_stage) *
                        std::log(2.0 * static_cast<double>(comparisons) /
                                 options.beta);

  std::vector<double> qualities(centers.size());
  const auto eval = [&](double radius) {
    for (std::size_t c = 0; c < centers.size(); ++c) {
      qualities[c] = static_cast<double>(
          std::min<std::size_t>(CountWithin(s, centers[c], radius), t));
    }
  };

  // Noisy binary search for the smallest grid radius at which the exponential
  // mechanism finds a ~t-heavy ball.
  std::uint64_t lo = 0;
  std::uint64_t hi = grid - 1;
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    const double radius = domain.RadiusFromIndex(mid);
    eval(radius);
    DPC_ASSIGN_OR_RETURN(
        std::size_t pick,
        ExponentialMechanism::SelectIndex(rng, qualities, eps_stage));
    const double noisy = qualities[pick] + SampleLaplace(rng, 1.0 / eps_stage);
    if (noisy >= static_cast<double>(t) - margin) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }

  Ball ball;
  ball.radius = domain.RadiusFromIndex(lo);
  eval(ball.radius);
  DPC_ASSIGN_OR_RETURN(
      std::size_t pick,
      ExponentialMechanism::SelectIndex(rng, qualities, eps_stage));
  ball.center.assign(centers[pick].begin(), centers[pick].end());
  return ball;
}

}  // namespace dpcluster
