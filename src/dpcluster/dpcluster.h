// Umbrella header: the public API of the dpcluster library.
//
// The recommended entry point is the Solver façade in api/ (typed
// Request/Response, algorithm registry, budget sessions). The paper's
// contribution lives in core/ (GoodRadius, GoodCenter, OneCluster) and sa/
// (SampleAggregate); everything else is the substrate it stands on. The free
// functions remain available as the internal layer the façade adapts.
// Include this for the whole surface, or the individual headers for less.

#ifndef DPCLUSTER_DPCLUSTER_H_
#define DPCLUSTER_DPCLUSTER_H_

#include "dpcluster/api/algorithm.h"
#include "dpcluster/api/budget.h"
#include "dpcluster/api/registry.h"
#include "dpcluster/api/request.h"
#include "dpcluster/api/response.h"
#include "dpcluster/api/scenario.h"
#include "dpcluster/api/solver.h"
#include "dpcluster/baselines/exp_mech_baseline.h"
#include "dpcluster/baselines/noisy_mean_baseline.h"
#include "dpcluster/baselines/nonprivate_baseline.h"
#include "dpcluster/baselines/threshold_release_1d.h"
#include "dpcluster/common/math_util.h"
#include "dpcluster/common/status.h"
#include "dpcluster/data/accuracy.h"
#include "dpcluster/data/registry.h"
#include "dpcluster/data/scenario.h"
#include "dpcluster/core/good_center.h"
#include "dpcluster/core/good_radius.h"
#include "dpcluster/core/interior_point.h"
#include "dpcluster/core/k_cluster.h"
#include "dpcluster/core/one_cluster.h"
#include "dpcluster/core/outlier.h"
#include "dpcluster/core/radius_refine.h"
#include "dpcluster/dp/above_threshold.h"
#include "dpcluster/dp/accountant.h"
#include "dpcluster/dp/exponential_mechanism.h"
#include "dpcluster/dp/gaussian_mechanism.h"
#include "dpcluster/dp/laplace_mechanism.h"
#include "dpcluster/dp/noisy_average.h"
#include "dpcluster/dp/privacy_params.h"
#include "dpcluster/dp/rec_concave.h"
#include "dpcluster/dp/stable_histogram.h"
#include "dpcluster/dp/step_function.h"
#include "dpcluster/geo/ball.h"
#include "dpcluster/geo/dataset.h"
#include "dpcluster/geo/grid_domain.h"
#include "dpcluster/geo/minimal_ball.h"
#include "dpcluster/geo/point_set.h"
#include "dpcluster/geo/spatial_grid.h"
#include "dpcluster/random/distributions.h"
#include "dpcluster/random/rng.h"
#include "dpcluster/sa/estimators.h"
#include "dpcluster/sa/sample_aggregate.h"
#include "dpcluster/workload/metrics.h"
#include "dpcluster/workload/synthetic.h"

#endif  // DPCLUSTER_DPCLUSTER_H_
