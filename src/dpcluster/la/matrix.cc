#include "dpcluster/la/matrix.h"

#include <algorithm>

#include "dpcluster/common/check.h"
#include "dpcluster/common/simd.h"
#include "dpcluster/parallel/parallel_for.h"

namespace dpcluster {
namespace {

// The batched-product kernel for points [lo, hi): o[i][r] accumulates its
// terms in ascending-c order, exactly like Multiply(). Cloned for AVX2 with
// runtime dispatch where supported; kernel outputs are bit-identical either
// way (see simd.h).
DPC_TARGET_CLONES_AVX2
void MultiplyAllChunk(std::size_t lo, std::size_t hi, std::size_t rows,
                      std::size_t cols, const double* mt, const double* xs,
                      double* out) {
  for (std::size_t i = lo; i < hi; ++i) {
    const double* x = &xs[i * cols];
    double* o = &out[i * rows];
    for (std::size_t r = 0; r < rows; ++r) o[r] = 0.0;
    for (std::size_t c = 0; c < cols; ++c) {
      const double xc = x[c];
      const double* mt_row = &mt[c * rows];
      for (std::size_t r = 0; r < rows; ++r) o[r] += xc * mt_row[r];
    }
  }
}

// MultiplyAllChunk with one indirection on the input row: point i reads
// xs[ids[i] * cols] instead of xs[i * cols]. Same per-element accumulation
// order, so a gathered batch is bit-identical to a materialized one.
DPC_TARGET_CLONES_AVX2
void MultiplyAllGatheredChunk(std::size_t lo, std::size_t hi, std::size_t rows,
                              std::size_t cols, const double* mt,
                              const double* xs, const std::uint32_t* ids,
                              double* out) {
  for (std::size_t i = lo; i < hi; ++i) {
    const double* x = &xs[static_cast<std::size_t>(ids[i]) * cols];
    double* o = &out[i * rows];
    for (std::size_t r = 0; r < rows; ++r) o[r] = 0.0;
    for (std::size_t c = 0; c < cols; ++c) {
      const double xc = x[c];
      const double* mt_row = &mt[c * rows];
      for (std::size_t r = 0; r < rows; ++r) o[r] += xc * mt_row[r];
    }
  }
}

}  // namespace

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

void Matrix::Multiply(std::span<const double> x, std::span<double> out) const {
  DPC_CHECK_EQ(x.size(), cols_);
  DPC_CHECK_EQ(out.size(), rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row = &data_[r * cols_];
    double s = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) s += row[c] * x[c];
    out[r] = s;
  }
}

void Matrix::MultiplyAll(std::span<const double> xs, std::size_t count,
                         std::span<double> out, ThreadPool* pool) const {
  DPC_CHECK_EQ(xs.size(), count * cols_);
  DPC_CHECK_EQ(out.size(), count * rows_);
  if (count == 0 || rows_ == 0) return;
  if (cols_ == 0) {
    for (double& v : out) v = 0.0;
    return;
  }
  // Pack M^T once so the inner loop streams unit-stride over output rows: the
  // kernel is out[i][r] += xs[i][c] * Mt[c][r] with c outermost per point,
  // which keeps the per-element accumulation order identical to Multiply()
  // while letting the compiler vectorize over r (no reduction involved).
  std::vector<double> mt(cols_ * rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row = &data_[r * cols_];
    for (std::size_t c = 0; c < cols_; ++c) mt[c * rows_ + r] = row[c];
  }
  // Grain: keep chunks at ~1M multiply-adds so small batches stay serial.
  const std::size_t per_point = rows_ * cols_;
  const std::size_t grain =
      std::max<std::size_t>(16, (std::size_t{1} << 20) / per_point);
  ParallelForChunks(
      pool, 0, count, grain,
      [&](std::size_t lo, std::size_t hi, std::size_t) {
        MultiplyAllChunk(lo, hi, rows_, cols_, mt.data(), xs.data(), out.data());
      },
      kAlwaysParallel);  // grain already targets ~1M madds per chunk
}

void Matrix::MultiplyAllGathered(std::span<const double> xs_full,
                                 std::span<const std::uint32_t> ids,
                                 std::span<double> out,
                                 ThreadPool* pool) const {
  const std::size_t count = ids.size();
  DPC_CHECK_EQ(out.size(), count * rows_);
  if (count == 0 || rows_ == 0) return;
  if (cols_ == 0) {
    for (double& v : out) v = 0.0;
    return;
  }
  // Same packed M^T, grain, and chunking as MultiplyAll — only the input-row
  // addressing differs, so the two paths stay bit-identical per row.
  std::vector<double> mt(cols_ * rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row = &data_[r * cols_];
    for (std::size_t c = 0; c < cols_; ++c) mt[c * rows_ + r] = row[c];
  }
  const std::size_t per_point = rows_ * cols_;
  const std::size_t grain =
      std::max<std::size_t>(16, (std::size_t{1} << 20) / per_point);
  ParallelForChunks(
      pool, 0, count, grain,
      [&](std::size_t lo, std::size_t hi, std::size_t) {
        MultiplyAllGatheredChunk(lo, hi, rows_, cols_, mt.data(),
                                 xs_full.data(), ids.data(), out.data());
      },
      kAlwaysParallel);
}

void Matrix::MultiplyTransposed(std::span<const double> x,
                                std::span<double> out) const {
  DPC_CHECK_EQ(x.size(), rows_);
  DPC_CHECK_EQ(out.size(), cols_);
  for (std::size_t c = 0; c < cols_; ++c) out[c] = 0.0;
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row = &data_[r * cols_];
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (std::size_t c = 0; c < cols_; ++c) out[c] += xr * row[c];
  }
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t.At(c, r) = At(r, c);
  }
  return t;
}

Matrix Matrix::MultiplyMatrix(const Matrix& other) const {
  DPC_CHECK_EQ(cols_, other.rows_);
  Matrix out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = At(r, k);
      if (a == 0.0) continue;
      const double* brow = &other.data_[k * other.cols_];
      double* orow = &out.data_[r * other.cols_];
      for (std::size_t c = 0; c < other.cols_; ++c) orow[c] += a * brow[c];
    }
  }
  return out;
}

Matrix Matrix::Identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.At(i, i) = 1.0;
  return m;
}

}  // namespace dpcluster
