#include "dpcluster/la/matrix.h"

#include "dpcluster/common/check.h"

namespace dpcluster {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

void Matrix::Multiply(std::span<const double> x, std::span<double> out) const {
  DPC_CHECK_EQ(x.size(), cols_);
  DPC_CHECK_EQ(out.size(), rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row = &data_[r * cols_];
    double s = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) s += row[c] * x[c];
    out[r] = s;
  }
}

void Matrix::MultiplyTransposed(std::span<const double> x,
                                std::span<double> out) const {
  DPC_CHECK_EQ(x.size(), rows_);
  DPC_CHECK_EQ(out.size(), cols_);
  for (std::size_t c = 0; c < cols_; ++c) out[c] = 0.0;
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row = &data_[r * cols_];
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (std::size_t c = 0; c < cols_; ++c) out[c] += xr * row[c];
  }
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t.At(c, r) = At(r, c);
  }
  return t;
}

Matrix Matrix::MultiplyMatrix(const Matrix& other) const {
  DPC_CHECK_EQ(cols_, other.rows_);
  Matrix out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = At(r, k);
      if (a == 0.0) continue;
      const double* brow = &other.data_[k * other.cols_];
      double* orow = &out.data_[r * other.cols_];
      for (std::size_t c = 0; c < other.cols_; ++c) orow[c] += a * brow[c];
    }
  }
  return out;
}

Matrix Matrix::Identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.At(i, i) = 1.0;
  return m;
}

}  // namespace dpcluster
