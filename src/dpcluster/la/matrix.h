// Minimal dense row-major matrix. Only the operations the paper's algorithms
// need: element access, row views, matrix-vector products, and transposed
// products. Kept deliberately small; this is a substrate, not a BLAS.

#ifndef DPCLUSTER_LA_MATRIX_H_
#define DPCLUSTER_LA_MATRIX_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace dpcluster {

class ThreadPool;

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}

  /// rows x cols matrix initialized to zero.
  Matrix(std::size_t rows, std::size_t cols);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& At(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double At(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  /// Mutable / immutable view of row r.
  std::span<double> Row(std::size_t r) { return {&data_[r * cols_], cols_}; }
  std::span<const double> Row(std::size_t r) const {
    return {&data_[r * cols_], cols_};
  }

  std::span<const double> Data() const { return data_; }
  std::span<double> MutableData() { return data_; }

  /// out = M * x (x has cols() entries, out has rows() entries).
  void Multiply(std::span<const double> x, std::span<double> out) const;

  /// Batched M * x over `count` row-major input vectors: xs is count x cols()
  /// and out is count x rows(), out.row(i) = M * xs.row(i) — one cache-blocked
  /// GEMM (Out = Xs * M^T) instead of `count` matrix-vector calls. Each output
  /// element accumulates its terms in exactly Multiply()'s order, so the
  /// result is bit-identical to the per-row path at any block size or thread
  /// count. `pool` may be null (serial).
  void MultiplyAll(std::span<const double> xs, std::size_t count,
                   std::span<double> out, ThreadPool* pool = nullptr) const;

  /// MultiplyAll over a gathered row subset: xs_full is row-major with
  /// cols() columns, out is ids.size() x rows(), and
  /// out.row(r) = M * xs_full.row(ids[r]) — bit-identical to materializing
  /// the subset first and calling MultiplyAll on it (each output row's
  /// accumulation is independent of its batch position), without the copy.
  void MultiplyAllGathered(std::span<const double> xs_full,
                           std::span<const std::uint32_t> ids,
                           std::span<double> out,
                           ThreadPool* pool = nullptr) const;

  /// out = M^T * x (x has rows() entries, out has cols() entries).
  void MultiplyTransposed(std::span<const double> x, std::span<double> out) const;

  /// Returns M^T.
  Matrix Transposed() const;

  /// Returns M * other.
  Matrix MultiplyMatrix(const Matrix& other) const;

  /// Identity matrix of size n.
  static Matrix Identity(std::size_t n);

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> data_;
};

}  // namespace dpcluster

#endif  // DPCLUSTER_LA_MATRIX_H_
