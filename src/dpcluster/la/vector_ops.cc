#include "dpcluster/la/vector_ops.h"

#include <cmath>

#include "dpcluster/common/check.h"

namespace dpcluster {

double Dot(std::span<const double> x, std::span<const double> y) {
  DPC_CHECK_EQ(x.size(), y.size());
  double s = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) s += x[i] * y[i];
  return s;
}

double Norm2(std::span<const double> x) { return std::sqrt(Dot(x, x)); }

double SquaredDistance(std::span<const double> x, std::span<const double> y) {
  DPC_CHECK_EQ(x.size(), y.size());
  return SquaredDistanceRows(x.data(), y.data(), x.size());
}

double Distance(std::span<const double> x, std::span<const double> y) {
  return std::sqrt(SquaredDistance(x, y));
}

void Axpy(double alpha, std::span<const double> x, std::span<double> y) {
  DPC_CHECK_EQ(x.size(), y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void Scale(double alpha, std::span<double> x) {
  for (double& v : x) v *= alpha;
}

std::vector<double> Subtract(std::span<const double> x, std::span<const double> y) {
  DPC_CHECK_EQ(x.size(), y.size());
  std::vector<double> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i] - y[i];
  return out;
}

std::vector<double> Add(std::span<const double> x, std::span<const double> y) {
  DPC_CHECK_EQ(x.size(), y.size());
  std::vector<double> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i] + y[i];
  return out;
}

}  // namespace dpcluster
