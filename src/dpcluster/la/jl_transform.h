// Johnson-Lindenstrauss random projection (Lemma 4.10): f(x) = (1/sqrt(k)) A x
// with A a k x d matrix of iid N(0,1) entries. GoodCenter (Algorithm 2, step 1)
// projects the input into R^k, k = O(log n), before searching for a heavy box.

#ifndef DPCLUSTER_LA_JL_TRANSFORM_H_
#define DPCLUSTER_LA_JL_TRANSFORM_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "dpcluster/geo/point_set.h"
#include "dpcluster/la/matrix.h"
#include "dpcluster/random/rng.h"

namespace dpcluster {

class ThreadPool;

/// A sampled JL map R^in_dim -> R^out_dim.
class JlTransform {
 public:
  /// Draws A with iid N(0,1) entries; Apply computes (1/sqrt(out_dim)) A x.
  JlTransform(Rng& rng, std::size_t in_dim, std::size_t out_dim);

  std::size_t in_dim() const { return matrix_.cols(); }
  std::size_t out_dim() const { return matrix_.rows(); }

  /// Projects one point.
  void Apply(std::span<const double> x, std::span<double> out) const;
  std::vector<double> Apply(std::span<const double> x) const;

  /// Projects a whole dataset (points.dim() == in_dim()) in one cache-blocked
  /// batched GEMM; row i of the result is Apply(points[i]) bit-for-bit.
  /// `pool` may be null (serial).
  Matrix ApplyAll(const PointSet& points, ThreadPool* pool = nullptr) const;

  /// ApplyAll over a gathered row subset: row r of the result is
  /// Apply(points[ids[r]]) bit-for-bit — equal to materializing the subset
  /// and calling ApplyAll, without the O(|ids| d) copy.
  Matrix ApplyAllGathered(const PointSet& points,
                          std::span<const std::uint32_t> ids,
                          ThreadPool* pool = nullptr) const;

  /// Theoretical number of output dimensions guaranteeing distortion <= eta on
  /// n points with probability >= 1 - beta (from Lemma 4.10's tail bound
  /// 2 n^2 exp(-eta^2 k / 8)).
  static std::size_t DimensionFor(std::size_t n, double eta, double beta);

 private:
  Matrix matrix_;
  double scale_;
};

}  // namespace dpcluster

#endif  // DPCLUSTER_LA_JL_TRANSFORM_H_
