#include "dpcluster/la/qr.h"

#include <cmath>
#include <vector>

#include "dpcluster/common/check.h"
#include "dpcluster/random/distributions.h"

namespace dpcluster {

Matrix OrthonormalFactor(const Matrix& a) {
  DPC_CHECK_EQ(a.rows(), a.cols());
  const std::size_t n = a.rows();
  Matrix r = a;                    // Will be reduced to upper triangular.
  Matrix q = Matrix::Identity(n);  // Accumulates the reflections.
  std::vector<double> v(n);

  for (std::size_t k = 0; k + 1 <= n; ++k) {
    // Householder vector for column k of the trailing submatrix.
    double norm2 = 0.0;
    for (std::size_t i = k; i < n; ++i) {
      const double x = r.At(i, k);
      norm2 += x * x;
    }
    const double norm = std::sqrt(norm2);
    if (norm == 0.0) continue;
    const double x0 = r.At(k, k);
    const double alpha = x0 >= 0 ? -norm : norm;
    double vnorm2 = 0.0;
    for (std::size_t i = k; i < n; ++i) {
      v[i] = r.At(i, k);
      if (i == k) v[i] -= alpha;
      vnorm2 += v[i] * v[i];
    }
    if (vnorm2 == 0.0) continue;
    const double beta = 2.0 / vnorm2;

    // r = (I - beta v v^T) r on the trailing block.
    for (std::size_t c = k; c < n; ++c) {
      double s = 0.0;
      for (std::size_t i = k; i < n; ++i) s += v[i] * r.At(i, c);
      s *= beta;
      for (std::size_t i = k; i < n; ++i) r.At(i, c) -= s * v[i];
    }
    // q = q (I - beta v v^T).
    for (std::size_t row = 0; row < n; ++row) {
      double s = 0.0;
      for (std::size_t i = k; i < n; ++i) s += q.At(row, i) * v[i];
      s *= beta;
      for (std::size_t i = k; i < n; ++i) q.At(row, i) -= s * v[i];
    }
  }

  // Sign correction: make diag(R) positive so Q is Haar for Gaussian input.
  for (std::size_t k = 0; k < n; ++k) {
    if (r.At(k, k) < 0.0) {
      for (std::size_t row = 0; row < n; ++row) q.At(row, k) = -q.At(row, k);
    }
  }
  return q;
}

Matrix RandomOrthonormalBasis(Rng& rng, std::size_t dim) {
  DPC_CHECK_GE(dim, 1u);
  Matrix g(dim, dim);
  FillGaussian(rng, 1.0, g.MutableData());
  // Columns of Q are orthonormal; return as rows for cheap per-vector access.
  return OrthonormalFactor(g).Transposed();
}

}  // namespace dpcluster
