#include "dpcluster/la/jl_transform.h"

#include <cmath>

#include "dpcluster/common/check.h"
#include "dpcluster/random/distributions.h"

namespace dpcluster {

JlTransform::JlTransform(Rng& rng, std::size_t in_dim, std::size_t out_dim)
    : matrix_(out_dim, in_dim), scale_(1.0 / std::sqrt(static_cast<double>(out_dim))) {
  DPC_CHECK_GE(in_dim, 1u);
  DPC_CHECK_GE(out_dim, 1u);
  FillGaussian(rng, 1.0, matrix_.MutableData());
}

void JlTransform::Apply(std::span<const double> x, std::span<double> out) const {
  matrix_.Multiply(x, out);
  for (double& v : out) v *= scale_;
}

std::vector<double> JlTransform::Apply(std::span<const double> x) const {
  std::vector<double> out(out_dim());
  Apply(x, out);
  return out;
}

Matrix JlTransform::ApplyAll(const PointSet& points, ThreadPool* pool) const {
  DPC_CHECK_EQ(points.dim(), in_dim());
  Matrix out(points.size(), out_dim());
  matrix_.MultiplyAll(points.Data(), points.size(), out.MutableData(), pool);
  for (double& v : out.MutableData()) v *= scale_;
  return out;
}

Matrix JlTransform::ApplyAllGathered(const PointSet& points,
                                     std::span<const std::uint32_t> ids,
                                     ThreadPool* pool) const {
  DPC_CHECK_EQ(points.dim(), in_dim());
  Matrix out(ids.size(), out_dim());
  matrix_.MultiplyAllGathered(points.Data(), ids, out.MutableData(), pool);
  for (double& v : out.MutableData()) v *= scale_;
  return out;
}

std::size_t JlTransform::DimensionFor(std::size_t n, double eta, double beta) {
  DPC_CHECK_GT(eta, 0.0);
  DPC_CHECK_GT(beta, 0.0);
  const double nn = static_cast<double>(n < 2 ? 2 : n);
  const double k = 8.0 / (eta * eta) * std::log(2.0 * nn * nn / beta);
  return static_cast<std::size_t>(std::ceil(k));
}

}  // namespace dpcluster
