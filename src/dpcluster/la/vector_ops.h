// Span-based dense vector kernels. The library stores points in flat row-major
// buffers (see geo/point_set.h); these free functions are the only numeric
// kernels the algorithms need, so no external linear-algebra dependency is used.

#ifndef DPCLUSTER_LA_VECTOR_OPS_H_
#define DPCLUSTER_LA_VECTOR_OPS_H_

#include <span>
#include <vector>

namespace dpcluster {

/// <x, y>; sizes must match.
double Dot(std::span<const double> x, std::span<const double> y);

/// ||x||_2.
double Norm2(std::span<const double> x);

/// ||x - y||_2; sizes must match.
double Distance(std::span<const double> x, std::span<const double> y);

/// ||x - y||_2^2; sizes must match.
double SquaredDistance(std::span<const double> x, std::span<const double> y);

/// y += alpha * x.
void Axpy(double alpha, std::span<const double> x, std::span<double> y);

/// x *= alpha.
void Scale(double alpha, std::span<double> x);

/// out = x - y.
std::vector<double> Subtract(std::span<const double> x, std::span<const double> y);

/// out = x + y.
std::vector<double> Add(std::span<const double> x, std::span<const double> y);

}  // namespace dpcluster

#endif  // DPCLUSTER_LA_VECTOR_OPS_H_
