// Span-based dense vector kernels. The library stores points in flat row-major
// buffers (see geo/point_set.h); these free functions are the only numeric
// kernels the algorithms need, so no external linear-algebra dependency is used.

#ifndef DPCLUSTER_LA_VECTOR_OPS_H_
#define DPCLUSTER_LA_VECTOR_OPS_H_

#include <cstddef>
#include <span>
#include <vector>

namespace dpcluster {

/// ||x - y||_2^2 over raw rows in the library's canonical summation order:
/// four independent lane accumulators over contiguous 4-blocks, combined as
/// (s0 + s1) + (s2 + s3), then a sequential tail. The fixed tree breaks the
/// serial add dependency (and lets the compiler keep the four lanes in one
/// vector register without reassociating), which is what makes the dense
/// all-pairs fallback scan at high d run near memory speed. Every component
/// that computes point distances directly (ball counts, the spatial grid's
/// scans and re-checks, the exact profile sweep) uses this one kernel, so
/// distances compare bit-for-bit across paths.
inline double SquaredDistanceRows(const double* x, const double* y,
                                  std::size_t d) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t c = 0;
  for (; c + 4 <= d; c += 4) {
    const double d0 = x[c] - y[c];
    const double d1 = x[c + 1] - y[c + 1];
    const double d2 = x[c + 2] - y[c + 2];
    const double d3 = x[c + 3] - y[c + 3];
    s0 += d0 * d0;
    s1 += d1 * d1;
    s2 += d2 * d2;
    s3 += d3 * d3;
  }
  double s = (s0 + s1) + (s2 + s3);
  for (; c < d; ++c) {
    const double diff = x[c] - y[c];
    s += diff * diff;
  }
  return s;
}

/// <x, y>; sizes must match.
double Dot(std::span<const double> x, std::span<const double> y);

/// ||x||_2.
double Norm2(std::span<const double> x);

/// ||x - y||_2; sizes must match.
double Distance(std::span<const double> x, std::span<const double> y);

/// ||x - y||_2^2; sizes must match.
double SquaredDistance(std::span<const double> x, std::span<const double> y);

/// y += alpha * x.
void Axpy(double alpha, std::span<const double> x, std::span<double> y);

/// x *= alpha.
void Scale(double alpha, std::span<double> x);

/// out = x - y.
std::vector<double> Subtract(std::span<const double> x, std::span<const double> y);

/// out = x + y.
std::vector<double> Add(std::span<const double> x, std::span<const double> y);

}  // namespace dpcluster

#endif  // DPCLUSTER_LA_VECTOR_OPS_H_
