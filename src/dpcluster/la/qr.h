// Householder QR factorization, used to draw the random orthonormal basis Z of
// R^d that GoodCenter (Algorithm 2, step 8) rotates into before its per-axis
// interval selection (Lemma 4.9).

#ifndef DPCLUSTER_LA_QR_H_
#define DPCLUSTER_LA_QR_H_

#include "dpcluster/la/matrix.h"
#include "dpcluster/random/rng.h"

namespace dpcluster {

/// Returns the orthonormal Q factor (n x n) of the input matrix (n x n) computed
/// with Householder reflections. Columns of Q form an orthonormal basis. The
/// factorization is sign-corrected so that Q is Haar-distributed when the input
/// has iid Gaussian entries (Mezzadri 2007).
Matrix OrthonormalFactor(const Matrix& a);

/// Draws a Haar-random orthonormal basis of R^dim; row i of the result is basis
/// vector z_i.
Matrix RandomOrthonormalBasis(Rng& rng, std::size_t dim);

}  // namespace dpcluster

#endif  // DPCLUSTER_LA_QR_H_
