// BoundedQueue: a small mutex/condition-variable MPMC queue with a hard
// capacity, the admission-control seam of the service layer. Producers
// (the daemon's accept loop) TryPush and shed load when the queue is full
// — a bounded queue turns overload into an explicit, structured rejection
// instead of unbounded memory growth — and consumers (ThreadPool-driven
// worker loops) block in Pop until work arrives or the queue is closed.
//
// Close() is the graceful-shutdown protocol: producers are refused from
// that point on, consumers drain whatever is already queued, and every
// blocked Pop returns nullopt once the queue is empty. All operations are
// thread-safe; none spin.

#ifndef DPCLUSTER_PARALLEL_BOUNDED_QUEUE_H_
#define DPCLUSTER_PARALLEL_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "dpcluster/common/check.h"

namespace dpcluster {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    DPC_CHECK_GE(capacity, 1u);
  }

  std::size_t capacity() const { return capacity_; }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  /// Enqueues without blocking; false when the queue is full or closed
  /// (the producer sheds the item — e.g. answers 503).
  bool TryPush(T value) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(value));
    }
    pop_cv_.notify_one();
    return true;
  }

  /// Enqueues, blocking while the queue is full; false when the queue is
  /// (or becomes) closed before the item is accepted.
  bool Push(T value) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      push_cv_.wait(lock,
                    [&] { return closed_ || items_.size() < capacity_; });
      if (closed_) return false;
      items_.push_back(std::move(value));
    }
    pop_cv_.notify_one();
    return true;
  }

  /// Dequeues, blocking until an item is available; nullopt once the queue
  /// is closed and fully drained.
  std::optional<T> Pop() {
    std::optional<T> out;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      pop_cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
      if (items_.empty()) return std::nullopt;  // closed and drained
      out = std::move(items_.front());
      items_.pop_front();
    }
    push_cv_.notify_one();
    return out;
  }

  /// Refuses all future pushes and wakes every waiter; already-queued items
  /// remain poppable. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    pop_cv_.notify_all();
    push_cv_.notify_all();
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable pop_cv_;
  std::condition_variable push_cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace dpcluster

#endif  // DPCLUSTER_PARALLEL_BOUNDED_QUEUE_H_
