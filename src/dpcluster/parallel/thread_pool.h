// Fixed-size worker pool for the deterministic compute kernels (Matrix GEMM,
// PairwiseDistances tiles, CountBoxes, sample-aggregate blocks).
//
// Determinism contract: the pool only ever executes *deterministic numeric
// work* — no Rng is ever touched from a worker (all randomness stays on the
// caller's single Rng stream). Work is handed out as chunks whose boundaries
// depend solely on the problem size (see parallel_for.h), and every chunk
// writes to slots disjoint from every other chunk's, so the result of a
// parallel region is bit-identical for any pool size, and a pool of size 1
// runs everything inline on the caller's thread with no synchronization.

#ifndef DPCLUSTER_PARALLEL_THREAD_POOL_H_
#define DPCLUSTER_PARALLEL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dpcluster {

/// A fixed-size pool of worker threads. Workers are spawned lazily on the
/// first multi-chunk RunChunks call, so serial callers never pay for thread
/// creation.
class ThreadPool {
 public:
  /// num_threads == 0 means "auto" (std::thread::hardware_concurrency);
  /// num_threads == 1 is fully serial (no workers are ever spawned).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The configured parallelism degree (always >= 1; includes the caller's
  /// thread). Work decomposition heuristics key off this number; the pool
  /// itself never spawns more workers than the hardware offers, so asking
  /// for more threads than cores costs nothing (see EnsureWorkers).
  std::size_t num_threads() const { return num_threads_; }

  /// False when the hardware cap leaves no worker to hand work to (e.g. a
  /// single-core machine): every region then runs inline on the caller's
  /// thread, and ParallelFor skips the dispatch machinery entirely.
  bool can_parallelize() const { return effective_threads_ > 1; }

  /// Executes body(chunk) for every chunk in [0, num_chunks), blocking until
  /// all chunks are done. Chunks are claimed dynamically (which *thread* runs
  /// a chunk is unspecified), so bodies must confine their writes to
  /// chunk-owned slots. If bodies throw, the exception of the lowest-indexed
  /// throwing chunk is rethrown on the caller's thread after the region
  /// drains.
  void RunChunks(std::size_t num_chunks,
                 const std::function<void(std::size_t)>& body);

 private:
  struct Region;  // One parallel region's shared state.

  void EnsureWorkers();
  void WorkerLoop();
  static void DrainChunks(Region& region);

  std::size_t num_threads_;
  std::size_t effective_threads_;  // min(num_threads_, hardware cores)
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable work_cv_;
  Region* region_ = nullptr;  // Active region, guarded by mutex_.
  // Bumped per RunChunks; a worker joins each region at most once, so a
  // worker that drained the chunk counter blocks instead of busy-rejoining
  // while the caller is still finishing its own chunk.
  std::uint64_t region_seq_ = 0;
  bool shutdown_ = false;
};

}  // namespace dpcluster

#endif  // DPCLUSTER_PARALLEL_THREAD_POOL_H_
