// ParallelFor: deterministic static chunking on top of ThreadPool.
//
// The chunk decomposition is a pure function of (range size, grain) — it never
// depends on the pool's thread count or on runtime timing. Combined with the
// ThreadPool contract (workers run deterministic numeric bodies that write to
// chunk-owned slots), every parallel region produces bit-identical results at
// any thread count, including the inline serial path taken when pool is null
// or has a single thread. Callers that must merge per-chunk partial results
// (e.g. CountBoxes) do so on the calling thread in ascending chunk order,
// which reproduces the serial merge exactly.

#ifndef DPCLUSTER_PARALLEL_PARALLEL_FOR_H_
#define DPCLUSTER_PARALLEL_PARALLEL_FOR_H_

#include <cstddef>
#include <utility>

#include "dpcluster/parallel/thread_pool.h"

namespace dpcluster {

/// Default work granularity: chunks below this many indices are not worth a
/// thread handoff for the kernels in this library.
inline constexpr std::size_t kDefaultGrain = 256;

/// Number of chunks a range of `count` indices splits into at granularity
/// `grain`. Depends only on (count, grain) — never on the thread count.
inline std::size_t NumChunks(std::size_t count, std::size_t grain) {
  if (count == 0) return 0;
  if (grain == 0) grain = 1;
  return (count + grain - 1) / grain;
}

/// Half-open index range of chunk `chunk` of a [begin, end) split at `grain`.
inline std::pair<std::size_t, std::size_t> ChunkRange(std::size_t begin,
                                                      std::size_t end,
                                                      std::size_t grain,
                                                      std::size_t chunk) {
  if (grain == 0) grain = 1;
  const std::size_t lo = begin + chunk * grain;
  const std::size_t hi = lo + grain < end ? lo + grain : end;
  return {lo, hi};
}

/// Runs body(chunk_begin, chunk_end, chunk_index) for every chunk of
/// [begin, end). `pool` may be null (serial). Exceptions from the body
/// propagate to the caller (the lowest-indexed throwing chunk wins).
template <typename ChunkBody>
void ParallelForChunks(ThreadPool* pool, std::size_t begin, std::size_t end,
                       std::size_t grain, ChunkBody&& body) {
  if (end <= begin) return;
  const std::size_t count = end - begin;
  const std::size_t num_chunks = NumChunks(count, grain);
  if (pool == nullptr || pool->num_threads() <= 1 || num_chunks == 1) {
    for (std::size_t chunk = 0; chunk < num_chunks; ++chunk) {
      const auto [lo, hi] = ChunkRange(begin, end, grain, chunk);
      body(lo, hi, chunk);
    }
    return;
  }
  pool->RunChunks(num_chunks, [&](std::size_t chunk) {
    const auto [lo, hi] = ChunkRange(begin, end, grain, chunk);
    body(lo, hi, chunk);
  });
}

/// Runs body(i) for every i in [begin, end); see ParallelForChunks.
template <typename Body>
void ParallelFor(ThreadPool* pool, std::size_t begin, std::size_t end,
                 std::size_t grain, Body&& body) {
  ParallelForChunks(pool, begin, end, grain,
                    [&](std::size_t lo, std::size_t hi, std::size_t) {
                      for (std::size_t i = lo; i < hi; ++i) body(i);
                    });
}

}  // namespace dpcluster

#endif  // DPCLUSTER_PARALLEL_PARALLEL_FOR_H_
