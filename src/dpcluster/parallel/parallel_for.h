// ParallelFor: deterministic static chunking on top of ThreadPool.
//
// The chunk decomposition is a pure function of (range size, grain) — it never
// depends on the pool's thread count or on runtime timing. Combined with the
// ThreadPool contract (workers run deterministic numeric bodies that write to
// chunk-owned slots), every parallel region produces bit-identical results at
// any thread count, including the inline serial path taken when pool is null
// or has a single thread. Callers that must merge per-chunk partial results
// (e.g. CountBoxes) do so on the calling thread in ascending chunk order,
// which reproduces the serial merge exactly.

#ifndef DPCLUSTER_PARALLEL_PARALLEL_FOR_H_
#define DPCLUSTER_PARALLEL_PARALLEL_FOR_H_

#include <cstddef>
#include <utility>

#include "dpcluster/parallel/thread_pool.h"

namespace dpcluster {

/// Default work granularity: chunks below this many indices are not worth a
/// thread handoff for the kernels in this library.
inline constexpr std::size_t kDefaultGrain = 256;

/// Default minimum-grain cutoff: a parallel region whose range offers fewer
/// than this many indices *per pool thread* runs inline on the caller's
/// thread instead. Sized for light per-item bodies (a few hundred ns or
/// less, e.g. the per-point box indexing of GoodCenter's CountBoxes), where
/// the region is shorter than the worker wake-up it would pay for — the
/// measured source of the 1->4 thread GoodCenter slowdown in
/// BENCH_scaling.json. Call sites whose per-item work is itself O(n) or
/// O(n d) (pairwise tiles, radius-profile rows, k-NN batches) pass
/// kAlwaysParallel to keep parallelism at any range size.
///
/// Only the *execution policy* consults the thread count; the chunk
/// decomposition and every chunk's writes stay a pure function of
/// (range, grain), so the serial fallback is bit-identical to the parallel
/// run and the determinism contract is unchanged.
inline constexpr std::size_t kMinItemsPerThread = 8192;

/// Opt-out value for min_items_per_thread: parallelize regardless of size.
inline constexpr std::size_t kAlwaysParallel = 1;

/// Number of chunks a range of `count` indices splits into at granularity
/// `grain`. Depends only on (count, grain) — never on the thread count.
inline std::size_t NumChunks(std::size_t count, std::size_t grain) {
  if (count == 0) return 0;
  if (grain == 0) grain = 1;
  return (count + grain - 1) / grain;
}

/// Half-open index range of chunk `chunk` of a [begin, end) split at `grain`.
inline std::pair<std::size_t, std::size_t> ChunkRange(std::size_t begin,
                                                      std::size_t end,
                                                      std::size_t grain,
                                                      std::size_t chunk) {
  if (grain == 0) grain = 1;
  const std::size_t lo = begin + chunk * grain;
  const std::size_t hi = lo + grain < end ? lo + grain : end;
  return {lo, hi};
}

/// Runs body(chunk_begin, chunk_end, chunk_index) for every chunk of
/// [begin, end). `pool` may be null (serial). Exceptions from the body
/// propagate to the caller (the lowest-indexed throwing chunk wins).
/// Ranges offering fewer than `min_items_per_thread` indices per pool thread
/// run inline (same chunks, same results; see kMinItemsPerThread).
template <typename ChunkBody>
void ParallelForChunks(ThreadPool* pool, std::size_t begin, std::size_t end,
                       std::size_t grain, ChunkBody&& body,
                       std::size_t min_items_per_thread = kMinItemsPerThread) {
  if (end <= begin) return;
  const std::size_t count = end - begin;
  const std::size_t num_chunks = NumChunks(count, grain);
  if (pool == nullptr || !pool->can_parallelize() || num_chunks == 1 ||
      count / pool->num_threads() < min_items_per_thread) {
    for (std::size_t chunk = 0; chunk < num_chunks; ++chunk) {
      const auto [lo, hi] = ChunkRange(begin, end, grain, chunk);
      body(lo, hi, chunk);
    }
    return;
  }
  pool->RunChunks(num_chunks, [&](std::size_t chunk) {
    const auto [lo, hi] = ChunkRange(begin, end, grain, chunk);
    body(lo, hi, chunk);
  });
}

/// Runs body(i) for every i in [begin, end); see ParallelForChunks.
template <typename Body>
void ParallelFor(ThreadPool* pool, std::size_t begin, std::size_t end,
                 std::size_t grain, Body&& body,
                 std::size_t min_items_per_thread = kMinItemsPerThread) {
  ParallelForChunks(
      pool, begin, end, grain,
      [&](std::size_t lo, std::size_t hi, std::size_t) {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      },
      min_items_per_thread);
}

}  // namespace dpcluster

#endif  // DPCLUSTER_PARALLEL_PARALLEL_FOR_H_
