#include "dpcluster/parallel/thread_pool.h"

#include <atomic>
#include <limits>

namespace dpcluster {

// Shared state of one RunChunks call. Lives on the caller's stack; a worker
// may only obtain the pointer under the pool mutex while the region is
// installed, and `participants` (caller + joined workers) governs when the
// caller may let the region go out of scope: a participant's final touch of
// the region is either the fetch_sub itself or the done-flag handoff under
// done_mutex, both of which complete before the caller returns.
struct ThreadPool::Region {
  const std::function<void(std::size_t)>* body = nullptr;
  std::size_t num_chunks = 0;
  std::atomic<std::size_t> next_chunk{0};
  std::atomic<std::size_t> participants{1};  // The caller.

  // First exception by chunk index, so a failure surfaces deterministically
  // even when several chunks throw in the same region.
  std::mutex error_mutex;
  std::size_t error_chunk = std::numeric_limits<std::size_t>::max();
  std::exception_ptr error;

  std::mutex done_mutex;
  std::condition_variable done_cv;
  bool done = false;

  // Returns true if this participant was the last one out.
  bool Leave() {
    if (participants.fetch_sub(1, std::memory_order_acq_rel) != 1) {
      return false;
    }
    std::lock_guard<std::mutex> lock(done_mutex);
    done = true;
    done_cv.notify_one();
    return true;
  }
};

ThreadPool::ThreadPool(std::size_t num_threads)
    : num_threads_(num_threads == 0
                       ? std::max<std::size_t>(1, std::thread::hardware_concurrency())
                       : num_threads),
      // hardware_concurrency() may legally return 0 for "unknown"; trust the
      // configured degree then instead of forcing everything serial.
      effective_threads_(std::thread::hardware_concurrency() == 0
                             ? num_threads_
                             : std::min<std::size_t>(
                                   num_threads_,
                                   std::thread::hardware_concurrency())) {}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::DrainChunks(Region& region) {
  for (;;) {
    const std::size_t chunk =
        region.next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= region.num_chunks) return;
    try {
      (*region.body)(chunk);
    } catch (...) {
      std::lock_guard<std::mutex> lock(region.error_mutex);
      if (chunk < region.error_chunk) {
        region.error_chunk = chunk;
        region.error = std::current_exception();
      }
    }
  }
}

void ThreadPool::WorkerLoop() {
  std::uint64_t last_seq = 0;
  for (;;) {
    Region* region = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || (region_ != nullptr && region_seq_ != last_seq);
      });
      if (shutdown_) return;
      last_seq = region_seq_;
      region = region_;
      region->participants.fetch_add(1, std::memory_order_relaxed);
    }
    DrainChunks(*region);
    region->Leave();
  }
}

void ThreadPool::EnsureWorkers() {
  if (!workers_.empty() || num_threads_ <= 1) return;
  // Never spawn more workers than the hardware offers: a configured degree
  // above the core count would only oversubscribe (the measured source of
  // the pre-cutoff 1->4 thread GoodCenter slowdown on small machines).
  // Results are unaffected — the chunk decomposition depends on num_threads_
  // never on the worker count — and the caller's thread always participates.
  workers_.reserve(effective_threads_ - 1);
  for (std::size_t i = 0; i + 1 < effective_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void ThreadPool::RunChunks(std::size_t num_chunks,
                           const std::function<void(std::size_t)>& body) {
  if (num_chunks == 0) return;
  if (num_threads_ <= 1 || num_chunks == 1) {
    // Serial fast path: run in chunk order on the caller's thread. The first
    // throwing chunk propagates immediately, matching the parallel contract.
    for (std::size_t chunk = 0; chunk < num_chunks; ++chunk) body(chunk);
    return;
  }

  EnsureWorkers();
  if (workers_.empty()) {
    // The hardware cap left no one to hand work to (single-core machine):
    // take the serial fast path instead of paying the region machinery.
    for (std::size_t chunk = 0; chunk < num_chunks; ++chunk) body(chunk);
    return;
  }
  Region region;
  region.body = &body;
  region.num_chunks = num_chunks;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    region_ = &region;
    ++region_seq_;
  }
  work_cv_.notify_all();
  // The caller participates; workers that never woke in time simply find the
  // chunk counter exhausted.
  DrainChunks(region);
  {
    // Uninstall so no further worker can join the drained region.
    std::lock_guard<std::mutex> lock(mutex_);
    region_ = nullptr;
  }
  if (!region.Leave()) {
    std::unique_lock<std::mutex> lock(region.done_mutex);
    region.done_cv.wait(lock, [&] { return region.done; });
  }
  if (region.error) std::rethrow_exception(region.error);
}

}  // namespace dpcluster
