#include "dpcluster/coreset/coreset.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "dpcluster/common/check.h"
#include "dpcluster/geo/spatial_grid.h"
#include "dpcluster/la/vector_ops.h"
#include "dpcluster/parallel/parallel_for.h"

namespace dpcluster {
namespace {

// FNV-1a over a row's raw bytes. Exact duplicates (the only thing the dedup
// pass collapses) have identical byte images, so byte hashing is sound; the
// map below compares bytes on collision.
struct RowBytesHash {
  const PointSet* s;
  std::size_t operator()(std::uint32_t row) const {
    const std::span<const double> r = (*s)[row];
    const unsigned char* bytes =
        reinterpret_cast<const unsigned char*>(r.data());
    const std::size_t len = r.size() * sizeof(double);
    std::uint64_t h = 1469598103934665603ull;
    for (std::size_t i = 0; i < len; ++i) {
      h ^= bytes[i];
      h *= 1099511628211ull;
    }
    return static_cast<std::size_t>(h);
  }
};

struct RowBytesEq {
  const PointSet* s;
  bool operator()(std::uint32_t a, std::uint32_t b) const {
    const std::span<const double> ra = (*s)[a];
    const std::span<const double> rb = (*s)[b];
    return std::memcmp(ra.data(), rb.data(), ra.size() * sizeof(double)) == 0;
  }
};

// Chunk grain for the distance relaxations and the argmax scan. Coarser than
// kDefaultGrain: the per-element work is one d-dim kernel call, and the
// argmax merge walks one entry per chunk.
constexpr std::size_t kCoresetGrain = 4096;

}  // namespace

Status CoresetOptions::Validate() const {
  if (target_size < 1) {
    return Status::InvalidArgument("Coreset: target_size must be >= 1");
  }
  return Status::OK();
}

CoresetSummary CollapseDuplicates(const PointSet& s) {
  CoresetSummary out;
  out.input_size = s.size();
  out.points = PointSet(s.dim());
  std::unordered_map<std::uint32_t, std::uint32_t, RowBytesHash, RowBytesEq>
      seen(/*bucket_count=*/s.size(), RowBytesHash{&s}, RowBytesEq{&s});
  for (std::size_t i = 0; i < s.size(); ++i) {
    const std::uint32_t row = static_cast<std::uint32_t>(i);
    const auto [it, inserted] =
        seen.try_emplace(row, static_cast<std::uint32_t>(out.points.size()));
    if (inserted) {
      out.points.Add(s[i]);
      out.weights.push_back(1);
      out.source_ids.push_back(row);
    } else {
      ++out.weights[it->second];
    }
  }
  return out;
}

Result<CoresetSummary> BuildCoreset(const PointSet& s, const GridDomain& domain,
                                    const CoresetOptions& options,
                                    ThreadPool* pool) {
  DPC_RETURN_IF_ERROR(options.Validate());
  if (s.size() == 0) {
    return Status::InvalidArgument("Coreset: empty dataset");
  }
  if (s.dim() != domain.dim()) {
    return Status::InvalidArgument("Coreset: domain dimension mismatch");
  }

  CoresetSummary distinct = CollapseDuplicates(s);
  const std::size_t m = distinct.points.size();
  const std::size_t target = options.target_size;
  if (m <= target) return distinct;  // Lossless: duplicates alone sufficed.

  const PointSet& dp = distinct.points;
  const std::size_t d = dp.dim();
  const double* base = dp.Data().data();

  // The grid prunes each round's relaxation set; size its cells for the
  // occupancy the finished summary will see (~m/target rows per center).
  DPC_ASSIGN_OR_RETURN(
      SpatialGrid grid,
      SpatialGrid::Build(dp, domain,
                         std::max<std::size_t>(1, m / target)));
  SpatialGrid::Workspace ws;

  // Gonzalez traversal over the distinct rows. dist2[i] = squared distance
  // to the nearest picked center, assign[i] = its pick rank; both relax
  // per-element (never racing), so parallel chunks are safe and the result
  // is a pure function of the pick sequence.
  std::vector<double> dist2(m);
  std::vector<std::uint32_t> assign(m, 0);
  std::vector<std::uint32_t> centers;
  centers.reserve(target);
  centers.push_back(0);  // First pick: first distinct row (deterministic).
  ParallelForChunks(
      pool, 0, m, kCoresetGrain,
      [&](std::size_t lo, std::size_t hi, std::size_t) {
        for (std::size_t i = lo; i < hi; ++i) {
          dist2[i] = SquaredDistanceRows(base + i * d, base, d);
        }
      },
      kAlwaysParallel);

  // Farthest row from its nearest center, smallest index on ties: strict >
  // keeps the earliest winner within a chunk, and the ascending chunk merge
  // keeps the earliest chunk — so the pick is the global smallest argmax
  // index at any thread count.
  const std::size_t num_chunks = NumChunks(m, kCoresetGrain);
  std::vector<double> chunk_best(num_chunks);
  std::vector<std::uint32_t> chunk_best_i(num_chunks);
  const auto farthest = [&]() {
    ParallelForChunks(
        pool, 0, m, kCoresetGrain,
        [&](std::size_t lo, std::size_t hi, std::size_t chunk) {
          double best = -1.0;
          std::uint32_t best_i = static_cast<std::uint32_t>(lo);
          for (std::size_t i = lo; i < hi; ++i) {
            if (dist2[i] > best) {
              best = dist2[i];
              best_i = static_cast<std::uint32_t>(i);
            }
          }
          chunk_best[chunk] = best;
          chunk_best_i[chunk] = best_i;
        },
        kAlwaysParallel);
    double best = -1.0;
    std::uint32_t best_i = 0;
    for (std::size_t c = 0; c < num_chunks; ++c) {
      if (chunk_best[c] > best) {
        best = chunk_best[c];
        best_i = chunk_best_i[c];
      }
    }
    return std::make_pair(best_i, best);
  };

  std::vector<std::uint32_t> cands;
  while (centers.size() < target) {
    const auto [far, far_d2] = farthest();
    if (!(far_d2 > 0.0)) break;  // Every distinct row is already a center.
    const std::uint32_t rank = static_cast<std::uint32_t>(centers.size());
    centers.push_back(far);

    // Only rows within sqrt(far_d2) of the new center can relax (their
    // current dist2 is at most the global max far_d2, and sqrt is monotone,
    // so the grid's sqrt(sq) <= r predicate collects a superset — both sides
    // computed by the same canonical kernel).
    cands.clear();
    grid.CollectWithin(far, std::sqrt(far_d2), ws, cands);
    const double* cp = base + static_cast<std::size_t>(far) * d;
    ParallelForChunks(
        pool, 0, cands.size(), kCoresetGrain,
        [&](std::size_t lo, std::size_t hi, std::size_t) {
          for (std::size_t at = lo; at < hi; ++at) {
            const std::uint32_t i = cands[at];
            const double sq = SquaredDistanceRows(base + i * d, cp, d);
            if (sq < dist2[i]) {  // Strict: ties stay with the earlier pick.
              dist2[i] = sq;
              assign[i] = rank;
            }
          }
        },
        kAlwaysParallel);
  }
  // Coverage is the farthest remaining row's distance after all picks (not
  // the last pick's own distance).
  const double max_d2 = farthest().second;

  CoresetSummary out;
  out.input_size = distinct.input_size;
  out.points = PointSet(d);
  out.weights.assign(centers.size(), 0);
  out.source_ids.resize(centers.size());
  for (std::size_t r = 0; r < centers.size(); ++r) {
    out.points.Add(dp[centers[r]]);
    out.source_ids[r] = distinct.source_ids[centers[r]];
  }
  for (std::size_t i = 0; i < m; ++i) {
    out.weights[assign[i]] += distinct.weights[i];
  }
  out.coverage_radius = std::sqrt(std::max(0.0, max_d2));
  return out;
}

Result<IndexedDataset> MakeWeightedIndex(CoresetSummary summary,
                                         const GridDomain& domain) {
  return IndexedDataset::Create(std::move(summary.points), domain,
                                std::move(summary.weights));
}

}  // namespace dpcluster
