// Greedy k-center-with-outliers coreset: collapse n raw points into a small
// weighted summary (m rows with integer multiplicities, sum of weights = n)
// the DP pipeline consumes in place of the input. Every summary row is an
// actual input point, so the summary lives in the same GridDomain cube; the
// per-row weight is the number of inputs assigned to it by the greedy
// farthest-point (Gonzalez) traversal, and `coverage_radius` bounds how far
// any input sits from its summary row. Counting queries answered on the
// weighted summary therefore match the raw dataset up to mass moving at most
// coverage_radius — which is why OneCluster / KCluster accuracy degrades
// gracefully: with target_size >= 2z + O(k) centers, the traversal's radius
// is within 2x of the optimal k-center-with-z-outliers radius on the input
// (Gonzalez' bound), so a planted cluster of radius r is summarized by rows
// within r + 2 r_opt of its true center.
//
// The construction is deterministic and bit-identical at any thread count:
// no Rng, size-only static chunking, chunk-ordered argmax merges, and
// per-element relaxations that never race (geo/SpatialGrid prunes each
// round's update set; the distance is la/vector_ops' canonical kernel).
//
// Privacy note: the summary is a data-dependent *internal* representation —
// nothing about it is released. The DP mechanisms run on the weighted rows
// with their expanded-mass semantics (see geo/dataset.h), and their privacy
// analysis applies to the expanded dataset the summary stands for; the
// summary changes utility (by coverage_radius), not the privacy accounting.

#ifndef DPCLUSTER_CORESET_CORESET_H_
#define DPCLUSTER_CORESET_CORESET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dpcluster/common/status.h"
#include "dpcluster/geo/dataset.h"
#include "dpcluster/geo/grid_domain.h"
#include "dpcluster/geo/point_set.h"
#include "dpcluster/parallel/thread_pool.h"

namespace dpcluster {

/// Knobs for the coreset stage, threaded from the CLI / service `Tuning`
/// block down to GoodRadius / OneCluster / KCluster (each applies them at its
/// PointSet entry point; IndexedDataset entry points never re-compress).
struct CoresetOptions {
  /// Master switch. Off by default: compression trades a bounded accuracy
  /// loss (coverage_radius) for speed, so it is an explicit opt-in.
  bool enabled = false;
  /// Inputs with fewer rows than this run uncompressed even when enabled —
  /// below it the pipeline is already fast and the summary would only add
  /// the coverage error.
  std::size_t min_points = 65536;
  /// Number of summary rows the greedy traversal keeps. Sized as
  /// ~2z + O(k) for k clusters with z outliers; the 2048 default comfortably
  /// covers the bench/eval scenarios (k <= 8, z <= n/10 collapsed by
  /// duplicate weights) while keeping every downstream stage at its small-n
  /// cost.
  std::size_t target_size = 2048;

  Status Validate() const;
};

/// A weighted summary of an input PointSet.
struct CoresetSummary {
  /// The m summary rows; each is (bit-for-bit) one of the input rows.
  PointSet points;
  /// Per-row multiplicities; weights[i] >= 1 and the weights sum to
  /// input_size.
  std::vector<std::uint64_t> weights;
  /// For each summary row, the index of the input row it copies (the first
  /// occurrence, in input order).
  std::vector<std::uint32_t> source_ids;
  /// Max distance from any input row to its assigned summary row (0 when the
  /// summary is lossless, i.e. only exact duplicates were collapsed).
  double coverage_radius = 0.0;
  /// Number of input rows the summary stands for.
  std::size_t input_size = 0;
};

/// Collapses exact duplicate rows (bit-identical coordinates) into one
/// weighted row each, in first-occurrence order. Lossless: coverage_radius
/// is 0, and any weighted-consumer query on the result equals the same query
/// on the input. This is the whole coreset when the input has at most
/// target_size distinct rows (e.g. the grid_snapped scenario family).
CoresetSummary CollapseDuplicates(const PointSet& s);

/// Builds the k-center summary: duplicates collapsed, then (if more than
/// options.target_size distinct rows remain) the greedy farthest-point
/// traversal picks target_size rows and assigns every distinct row to its
/// nearest picked row (ties to the earlier pick), accumulating weights.
/// `options.enabled` / `options.min_points` are the *caller's* gates — this
/// function always compresses. Deterministic and bit-identical at any `pool`
/// size.
Result<CoresetSummary> BuildCoreset(const PointSet& s, const GridDomain& domain,
                                    const CoresetOptions& options,
                                    ThreadPool* pool);

/// A deletion-capable weighted IndexedDataset over the summary rows — the
/// object the pipeline's IndexedDataset entry points consume.
Result<IndexedDataset> MakeWeightedIndex(CoresetSummary summary,
                                         const GridDomain& domain);

}  // namespace dpcluster

#endif  // DPCLUSTER_CORESET_CORESET_H_
