#include "dpcluster/random/distributions.h"

#include <cmath>
#include <numbers>

#include "dpcluster/common/check.h"

namespace dpcluster {

double SampleLaplace(Rng& rng, double scale) {
  DPC_CHECK_GT(scale, 0.0);
  // Inverse CDF on u ~ Uniform(-1/2, 1/2): -scale * sgn(u) * ln(1 - 2|u|).
  const double u = rng.NextDouble() - 0.5;
  const double mag = -scale * std::log1p(-2.0 * std::abs(u));
  return u < 0 ? -mag : mag;
}

double SampleGaussian(Rng& rng, double stddev) {
  DPC_CHECK_GE(stddev, 0.0);
  const double u1 = rng.NextDoubleOpenZero();
  const double u2 = rng.NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return stddev * r * std::cos(2.0 * std::numbers::pi * u2);
}

double SampleGumbel(Rng& rng) {
  return -std::log(-std::log(rng.NextDoubleOpenZero()));
}

void FillGaussian(Rng& rng, double stddev, std::span<double> out) {
  for (double& v : out) v = SampleGaussian(rng, stddev);
}

std::vector<double> SampleUnitSphere(Rng& rng, int dim) {
  DPC_CHECK_GE(dim, 1);
  std::vector<double> v(static_cast<std::size_t>(dim));
  double norm2 = 0.0;
  do {
    norm2 = 0.0;
    for (double& x : v) {
      x = SampleGaussian(rng, 1.0);
      norm2 += x * x;
    }
  } while (norm2 == 0.0);
  const double inv = 1.0 / std::sqrt(norm2);
  for (double& x : v) x *= inv;
  return v;
}

std::vector<double> SampleBall(Rng& rng, std::span<const double> center,
                               double radius) {
  DPC_CHECK_GE(radius, 0.0);
  const int dim = static_cast<int>(center.size());
  std::vector<double> v = SampleUnitSphere(rng, dim);
  // Radius ~ r * U^{1/d} gives a uniform point in the ball.
  const double r =
      radius * std::pow(rng.NextDouble(), 1.0 / static_cast<double>(dim));
  for (int i = 0; i < dim; ++i) {
    v[static_cast<std::size_t>(i)] =
        center[static_cast<std::size_t>(i)] + r * v[static_cast<std::size_t>(i)];
  }
  return v;
}

std::size_t SampleDiscrete(Rng& rng, std::span<const double> weights) {
  DPC_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    DPC_CHECK_GE(w, 0.0);
    total += w;
  }
  DPC_CHECK_GT(total, 0.0);
  double u = rng.NextDouble() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u <= 0.0) return i;
  }
  return weights.size() - 1;  // Floating-point slack.
}

}  // namespace dpcluster
