// Sampling routines for the distributions used by the paper's mechanisms:
// Laplace (Theorem 2.3), Gaussian (Theorem 2.4), Gumbel (exponential-mechanism
// sampling), plus geometric helpers (uniform point in a ball / on a sphere).
//
// All samplers are deterministic functions of the supplied Rng so experiments
// and tests are exactly reproducible.

#ifndef DPCLUSTER_RANDOM_DISTRIBUTIONS_H_
#define DPCLUSTER_RANDOM_DISTRIBUTIONS_H_

#include <span>
#include <vector>

#include "dpcluster/random/rng.h"

namespace dpcluster {

/// Sample from Lap(scale): density f(y) = (1/2 scale) exp(-|y|/scale).
double SampleLaplace(Rng& rng, double scale);

/// Sample from N(0, stddev^2) via Box-Muller (one value per call; no cached
/// spare so interleaved callers stay reproducible).
double SampleGaussian(Rng& rng, double stddev);

/// Sample from the standard Gumbel distribution (location 0, scale 1).
/// argmax_i (score_i + Gumbel_i) realizes softmax sampling, which is how the
/// exponential mechanism is implemented without overflow.
double SampleGumbel(Rng& rng);

/// Fill `out` with iid N(0, stddev^2) values.
void FillGaussian(Rng& rng, double stddev, std::span<double> out);

/// Uniform point on the unit sphere S^{d-1}.
std::vector<double> SampleUnitSphere(Rng& rng, int dim);

/// Uniform point in the ball of radius `radius` centered at `center`.
std::vector<double> SampleBall(Rng& rng, std::span<const double> center,
                               double radius);

/// Sample an index in [0, weights.size()) proportionally to `weights`
/// (non-negative, not all zero).
std::size_t SampleDiscrete(Rng& rng, std::span<const double> weights);

}  // namespace dpcluster

#endif  // DPCLUSTER_RANDOM_DISTRIBUTIONS_H_
