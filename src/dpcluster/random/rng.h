// Deterministic pseudo-random generator used by every randomized component.
//
// The engine is xoshiro256++ seeded through SplitMix64, which gives high-quality
// streams from any 64-bit seed and exact reproducibility across platforms (the
// standard library distributions are implementation-defined, so sampling is done
// in distributions.h instead of <random>).
//
// NOTE ON PRIVACY: a cryptographically secure generator is required for real
// deployments of differential privacy. This library targets reproducible
// experimentation; swap `Rng` for a CSPRNG-backed implementation before using it
// on sensitive data.

#ifndef DPCLUSTER_RANDOM_RNG_H_
#define DPCLUSTER_RANDOM_RNG_H_

#include <cstdint>

namespace dpcluster {

/// xoshiro256++ engine. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four-word state via SplitMix64 from a single 64-bit seed.
  explicit Rng(std::uint64_t seed = 0xD1FFC10C0FFEEULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Next 64 uniform random bits.
  result_type operator()();

  /// Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble();

  /// Uniform double in (0, 1]; never returns 0 (safe for log()).
  double NextDoubleOpenZero();

  /// Uniform integer in [0, bound); bound must be positive. Unbiased
  /// (Lemire rejection).
  std::uint64_t NextUint64(std::uint64_t bound);

  /// Derives an independent child generator; useful for giving each repetition
  /// or worker its own stream.
  Rng Fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace dpcluster

#endif  // DPCLUSTER_RANDOM_RNG_H_
