#include "dpcluster/random/rng.h"

#include "dpcluster/common/check.h"

namespace dpcluster {
namespace {

inline std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

inline std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(sm);
  // xoshiro256++ must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::NextDoubleOpenZero() {
  return (static_cast<double>((*this)() >> 11) + 1.0) * 0x1.0p-53;
}

std::uint64_t Rng::NextUint64(std::uint64_t bound) {
  DPC_CHECK_GT(bound, 0u);
  // Lemire's unbiased multiply-shift rejection method.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

Rng Rng::Fork() { return Rng((*this)()); }

}  // namespace dpcluster
