#include "dpcluster/geo/pairwise.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>

#include "dpcluster/common/check.h"
#include "dpcluster/la/vector_ops.h"

namespace dpcluster {

Result<PairwiseDistances> PairwiseDistances::Compute(const PointSet& s,
                                                     std::size_t max_points) {
  const std::size_t n = s.size();
  if (n > max_points) {
    return Status::ResourceExhausted(
        "PairwiseDistances: dataset has " + std::to_string(n) +
        " points, cap is " + std::to_string(max_points) +
        " (see GoodRadiusOptions::max_profile_points)");
  }
  PairwiseDistances pd;
  pd.n_ = n;
  pd.rows_.assign(n * n, 0.0f);
  for (std::size_t i = 0; i < n; ++i) {
    const auto xi = s[i];
    float* row_i = &pd.rows_[i * n];
    for (std::size_t j = i; j < n; ++j) {
      // Round the stored distance up one ulp so CountWithin(i, exact_distance)
      // always includes the pair despite the double->float narrowing.
      const float d = std::nextafter(
          static_cast<float>(std::sqrt(SquaredDistance(xi, s[j]))),
          std::numeric_limits<float>::infinity());
      row_i[j] = d;
      pd.rows_[j * n + i] = d;
    }
    row_i[i] = 0.0f;
  }
  for (std::size_t i = 0; i < n; ++i) {
    float* row = &pd.rows_[i * n];
    std::sort(row, row + n);
  }
  return pd;
}

std::size_t PairwiseDistances::CountWithin(std::size_t i, double r) const {
  DPC_CHECK_LT(i, n_);
  if (r < 0.0) return 0;
  const auto row = SortedRow(i);
  const float bound = std::nextafter(static_cast<float>(r),
                                     std::numeric_limits<float>::infinity());
  return static_cast<std::size_t>(
      std::upper_bound(row.begin(), row.end(), bound) - row.begin());
}

double PairwiseDistances::CappedTopAverage(double r, std::size_t cap) const {
  DPC_CHECK_GE(cap, 1u);
  DPC_CHECK_LE(cap, n_);
  std::vector<std::size_t> counts(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    counts[i] = std::min(CountWithin(i, r), cap);
  }
  // Average of the `cap` largest capped counts.
  std::nth_element(counts.begin(), counts.begin() + static_cast<std::ptrdiff_t>(cap - 1),
                   counts.end(), std::greater<>());
  double sum = 0.0;
  for (std::size_t i = 0; i < cap; ++i) sum += static_cast<double>(counts[i]);
  return sum / static_cast<double>(cap);
}

}  // namespace dpcluster
