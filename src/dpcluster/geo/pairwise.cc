#include "dpcluster/geo/pairwise.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>

#include "dpcluster/common/check.h"
#include "dpcluster/common/simd.h"
#include "dpcluster/parallel/parallel_for.h"

namespace dpcluster {
namespace {

// Points per distance tile. Fixed (never derived from the thread count) so the
// tile arithmetic — and therefore every stored float — is identical at any
// pool size. A tile of the packed transpose is d * kTile doubles, which stays
// cache-resident across a whole row chunk.
constexpr std::size_t kTile = 64;

// Rows per parallel chunk of the build.
constexpr std::size_t kRowGrain = 32;

// One chunk of the tiled Gram pass (rows [lo, hi)): only tiles touching or
// right of each row's diagonal are computed — the strict lower triangle is
// mirrored afterwards (the Gram formula is exactly symmetric: the dot
// product's c-order and the norm sum are operand-order independent, so
// (j, i) equals (i, j) bit for bit). Cloned for AVX2 with runtime dispatch
// where supported; the stored floats are bit-identical either way (see
// simd.h).
DPC_TARGET_CLONES_AVX2
void GramTileChunk(std::size_t lo, std::size_t hi, std::size_t n, std::size_t d,
                   const double* data, const double* xt, const double* norms,
                   float* rows) {
  double dots[kTile];
  for (std::size_t jt = 0; jt < n; jt += kTile) {
    const std::size_t tile = std::min(kTile, n - jt);
    for (std::size_t i = lo; i < hi; ++i) {
      if (jt + kTile <= i) continue;  // Strictly below the diagonal tile.
      const double* x = &data[i * d];
      for (std::size_t j = 0; j < tile; ++j) dots[j] = 0.0;
      for (std::size_t c = 0; c < d; ++c) {
        const double xc = x[c];
        const double* xt_row = &xt[c * n + jt];
        for (std::size_t j = 0; j < tile; ++j) dots[j] += xc * xt_row[j];
      }
      const double ni = norms[i];
      float* out = &rows[i * n + jt];
      for (std::size_t j = 0; j < tile; ++j) {
        const double sq = ni + norms[jt + j] - 2.0 * dots[j];
        out[j] =
            BumpDistanceUp(static_cast<float>(std::sqrt(sq > 0.0 ? sq : 0.0)));
      }
    }
  }
  for (std::size_t i = lo; i < hi; ++i) rows[i * n + i] = 0.0f;
}

// Fills rows [lo, hi)'s strict-lower-triangle tiles from the transposed
// entries (a cache-blocked transpose copy). Runs as a second parallel region
// so every source entry is complete; kRowGrain divides kTile, hence all rows
// of a chunk share one diagonal tile.
void MirrorChunk(std::size_t lo, std::size_t hi, std::size_t n, float* rows) {
  const std::size_t diag = lo & ~(kTile - 1);
  for (std::size_t jb = 0; jb < diag; jb += kTile) {
    for (std::size_t j = jb; j < jb + kTile; ++j) {
      const float* src = &rows[j * n];
      for (std::size_t i = lo; i < hi; ++i) rows[i * n + j] = src[i];
    }
  }
}

// Stable LSD radix sort of one row of non-negative floats: their bit patterns
// are order-isomorphic to the values, so three 11-bit passes over the uint32
// keys replace the comparison sort (the build's former hot spot). Produces
// exactly std::sort's output for these keys.
void RadixSortRow(float* row, std::size_t n, std::uint32_t* a,
                  std::uint32_t* b) {
  constexpr std::size_t kBins = std::size_t{1} << 11;
  for (std::size_t i = 0; i < n; ++i) a[i] = std::bit_cast<std::uint32_t>(row[i]);
  for (const int shift : {0, 11, 22}) {
    std::uint32_t hist[kBins] = {};
    for (std::size_t i = 0; i < n; ++i) ++hist[(a[i] >> shift) & (kBins - 1)];
    std::uint32_t offset = 0;
    for (std::size_t bin = 0; bin < kBins; ++bin) {
      const std::uint32_t count = hist[bin];
      hist[bin] = offset;
      offset += count;
    }
    for (std::size_t i = 0; i < n; ++i) {
      b[hist[(a[i] >> shift) & (kBins - 1)]++] = a[i];
    }
    std::swap(a, b);
  }
  // After an odd number of passes the sorted keys live in the buffer the
  // local `a` points to.
  for (std::size_t i = 0; i < n; ++i) row[i] = std::bit_cast<float>(a[i]);
}

}  // namespace

Result<PairwiseDistances> PairwiseDistances::Compute(const PointSet& s,
                                                     std::size_t max_points,
                                                     ThreadPool* pool) {
  const std::size_t n = s.size();
  if (n > max_points) {
    return Status::ResourceExhausted(
        "PairwiseDistances: dataset has " + std::to_string(n) +
        " points, cap is " + std::to_string(max_points) +
        " (see GoodRadiusOptions::max_profile_points)");
  }
  const std::size_t d = s.dim();
  PairwiseDistances pd;
  pd.n_ = n;
  pd.rows_.assign(n * n, 0.0f);
  pd.count_scratch_.assign(n, 0);
  if (n == 0) return pd;

  // Row squared norms, accumulated in coordinate order. The self dot product
  // of the tile kernel accumulates in the same order, so the Gram identity
  // gives exactly 0 on the diagonal and for duplicate rows.
  std::vector<double> norms(n);
  const std::span<const double> data = s.Data();
  ParallelFor(pool, 0, n, kDefaultGrain, [&](std::size_t i) {
    const double* x = &data[i * d];
    double sum = 0.0;
    for (std::size_t c = 0; c < d; ++c) sum += x[c] * x[c];
    norms[i] = sum;
  });

  // Packed transpose xt[c * n + j] = x_j[c]: the tile kernel's inner loop
  // then streams unit-stride over j, which vectorizes without reassociating
  // any accumulation (each dot product still sums c in ascending order).
  std::vector<double> xt(d * n);
  ParallelFor(pool, 0, n, kDefaultGrain, [&](std::size_t j) {
    const double* x = &data[j * d];
    for (std::size_t c = 0; c < d; ++c) xt[c * n + j] = x[c];
  });

  // Tiled Gram pass: rows are chunk-owned, so writes never overlap. Rounding
  // the stored distance up one ulp keeps CountWithin(i, exact_distance)
  // inclusive despite the double->float narrowing (as the direct build did).
  static_assert(kTile % kRowGrain == 0,
                "mirror chunks must not straddle diagonal tiles");
  ParallelForChunks(
      pool, 0, n, kRowGrain,
      [&](std::size_t lo, std::size_t hi, std::size_t) {
        GramTileChunk(lo, hi, n, d, data.data(), xt.data(), norms.data(),
                      pd.rows_.data());
      },
      kAlwaysParallel);
  ParallelForChunks(
      pool, 0, n, kRowGrain,
      [&](std::size_t lo, std::size_t hi, std::size_t) {
        MirrorChunk(lo, hi, n, pd.rows_.data());
      },
      kAlwaysParallel);

  ParallelForChunks(
      pool, 0, n, kRowGrain,
      [&](std::size_t lo, std::size_t hi, std::size_t) {
        std::vector<std::uint32_t> scratch_a(n), scratch_b(n);
        for (std::size_t i = lo; i < hi; ++i) {
          RadixSortRow(&pd.rows_[i * n], n, scratch_a.data(), scratch_b.data());
        }
      },
      kAlwaysParallel);
  return pd;
}

std::size_t PairwiseDistances::CountWithin(std::size_t i, double r) const {
  DPC_CHECK_LT(i, n_);
  if (r < 0.0) return 0;
  const float bound = std::nextafter(static_cast<float>(r),
                                     std::numeric_limits<float>::infinity());
  return BranchlessUpperBound(SortedRow(i), bound);
}

double PairwiseDistances::CappedTopAverage(double r, std::size_t cap) const {
  DPC_CHECK_GE(cap, 1u);
  DPC_CHECK_LE(cap, n_);
  std::vector<std::size_t>& counts = count_scratch_;
  for (std::size_t i = 0; i < n_; ++i) {
    counts[i] = std::min(CountWithin(i, r), cap);
  }
  // Average of the `cap` largest capped counts.
  std::nth_element(counts.begin(), counts.begin() + static_cast<std::ptrdiff_t>(cap - 1),
                   counts.end(), std::greater<>());
  double sum = 0.0;
  for (std::size_t i = 0; i < cap; ++i) sum += static_cast<double>(counts[i]);
  return sum / static_cast<double>(cap);
}

}  // namespace dpcluster
