#include "dpcluster/geo/point_set.h"

#include <algorithm>

#include "dpcluster/common/check.h"

namespace dpcluster {

PointSet::PointSet(std::size_t dim, std::vector<double> data)
    : dim_(dim), data_(std::move(data)) {
  DPC_CHECK_GE(dim, 1u);
  DPC_CHECK_EQ(data_.size() % dim, 0u);
}

void PointSet::Add(std::span<const double> p) {
  DPC_CHECK_EQ(p.size(), dim_);
  data_.insert(data_.end(), p.begin(), p.end());
}

PointSet PointSet::Subset(std::span<const std::size_t> indices) const {
  PointSet out(dim_);
  out.data_.reserve(indices.size() * dim_);
  for (std::size_t i : indices) {
    DPC_CHECK_LT(i, size());
    const auto row = (*this)[i];
    out.data_.insert(out.data_.end(), row.begin(), row.end());
  }
  return out;
}

void PointSet::ReplaceRow(std::size_t i, std::span<const double> p) {
  DPC_CHECK_LT(i, size());
  DPC_CHECK_EQ(p.size(), dim_);
  std::copy(p.begin(), p.end(), data_.begin() + static_cast<std::ptrdiff_t>(i * dim_));
}

}  // namespace dpcluster
