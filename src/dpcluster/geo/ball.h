// Euclidean balls and axis-aligned boxes, plus exact (non-private) point-in-ball
// counting used by the algorithms' bookkeeping and by the evaluation metrics.

#ifndef DPCLUSTER_GEO_BALL_H_
#define DPCLUSTER_GEO_BALL_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "dpcluster/geo/point_set.h"

namespace dpcluster {

/// Closed Euclidean ball.
struct Ball {
  std::vector<double> center;
  double radius = 0.0;

  bool Contains(std::span<const double> p) const;
};

/// Closed axis-aligned box given by per-coordinate [lo, hi] intervals.
struct AxisBox {
  std::vector<double> lo;
  std::vector<double> hi;

  bool Contains(std::span<const double> p) const;
  /// Center point of the box.
  std::vector<double> Center() const;
  /// Euclidean diameter, i.e. length of the main diagonal.
  double Diameter() const;
};

/// Number of points of `s` inside the ball (exact, not private).
std::size_t CountInBall(const PointSet& s, const Ball& ball);

/// Number of points of `s` with distance <= radius from `center`.
std::size_t CountWithin(const PointSet& s, std::span<const double> center,
                        double radius);

/// CountWithin over the row subset s[ids[0]], s[ids[1]], ... — same
/// per-point predicate, so it equals CountWithin on a materialized subset.
std::size_t CountWithin(const PointSet& s, std::span<const std::uint32_t> ids,
                        std::span<const double> center, double radius);

/// Weighted CountWithin over a row subset: sums weights[id] over the ids
/// whose row satisfies the same per-point predicate — exactly CountWithin on
/// the duplicate-expanded subset. `weights` is indexed by original row id
/// (pass IndexedDataset::weights()).
std::uint64_t MassWithin(const PointSet& s, std::span<const std::uint32_t> ids,
                         std::span<const std::uint64_t> weights,
                         std::span<const double> center, double radius);

/// Smallest radius around `center` that captures at least `t` points of `s`
/// (the t-th smallest distance). t must satisfy 1 <= t <= s.size().
double RadiusCapturing(const PointSet& s, std::span<const double> center,
                       std::size_t t);

}  // namespace dpcluster

#endif  // DPCLUSTER_GEO_BALL_H_
