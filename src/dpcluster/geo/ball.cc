#include "dpcluster/geo/ball.h"

#include <algorithm>
#include <cmath>

#include "dpcluster/common/check.h"
#include "dpcluster/la/vector_ops.h"

namespace dpcluster {

bool Ball::Contains(std::span<const double> p) const {
  return Distance(center, p) <= radius * (1.0 + 1e-12) + 1e-15;
}

bool AxisBox::Contains(std::span<const double> p) const {
  DPC_CHECK_EQ(p.size(), lo.size());
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (p[i] < lo[i] || p[i] > hi[i]) return false;
  }
  return true;
}

std::vector<double> AxisBox::Center() const {
  std::vector<double> c(lo.size());
  for (std::size_t i = 0; i < lo.size(); ++i) c[i] = 0.5 * (lo[i] + hi[i]);
  return c;
}

double AxisBox::Diameter() const {
  double s = 0.0;
  for (std::size_t i = 0; i < lo.size(); ++i) {
    const double side = hi[i] - lo[i];
    s += side * side;
  }
  return std::sqrt(s);
}

std::size_t CountInBall(const PointSet& s, const Ball& ball) {
  return CountWithin(s, ball.center, ball.radius);
}

std::size_t CountWithin(const PointSet& s, std::span<const double> center,
                        double radius) {
  DPC_CHECK_EQ(center.size(), s.dim());
  const double r2 = radius * radius * (1.0 + 1e-12);
  std::size_t count = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (SquaredDistance(s[i], center) <= r2) ++count;
  }
  return count;
}

std::size_t CountWithin(const PointSet& s, std::span<const std::uint32_t> ids,
                        std::span<const double> center, double radius) {
  DPC_CHECK_EQ(center.size(), s.dim());
  const double r2 = radius * radius * (1.0 + 1e-12);
  std::size_t count = 0;
  for (const std::uint32_t id : ids) {
    if (SquaredDistance(s[id], center) <= r2) ++count;
  }
  return count;
}

std::uint64_t MassWithin(const PointSet& s, std::span<const std::uint32_t> ids,
                         std::span<const std::uint64_t> weights,
                         std::span<const double> center, double radius) {
  DPC_CHECK_EQ(center.size(), s.dim());
  const double r2 = radius * radius * (1.0 + 1e-12);
  std::uint64_t mass = 0;
  for (const std::uint32_t id : ids) {
    if (SquaredDistance(s[id], center) <= r2) mass += weights[id];
  }
  return mass;
}

double RadiusCapturing(const PointSet& s, std::span<const double> center,
                       std::size_t t) {
  DPC_CHECK_GE(t, 1u);
  DPC_CHECK_LE(t, s.size());
  std::vector<double> d2(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    d2[i] = SquaredDistance(s[i], center);
  }
  std::nth_element(d2.begin(), d2.begin() + static_cast<std::ptrdiff_t>(t - 1),
                   d2.end());
  return std::sqrt(d2[t - 1]);
}

}  // namespace dpcluster
