// PointSet: the library's dataset type. n points in R^d stored contiguously
// (row-major). Datasets are ordered multisets per Definition 1.1; two datasets
// are neighbors when they differ in one row.

#ifndef DPCLUSTER_GEO_POINT_SET_H_
#define DPCLUSTER_GEO_POINT_SET_H_

#include <cstddef>
#include <span>
#include <vector>

namespace dpcluster {

/// n x d dataset with contiguous storage.
class PointSet {
 public:
  PointSet() : dim_(0) {}

  /// Empty dataset of dimension `dim`.
  explicit PointSet(std::size_t dim) : dim_(dim) {}

  /// Takes ownership of a flat row-major buffer; data.size() % dim must be 0.
  PointSet(std::size_t dim, std::vector<double> data);

  std::size_t size() const { return dim_ == 0 ? 0 : data_.size() / dim_; }
  std::size_t dim() const { return dim_; }
  bool empty() const { return data_.empty(); }

  std::span<const double> operator[](std::size_t i) const {
    return {&data_[i * dim_], dim_};
  }
  std::span<double> MutableRow(std::size_t i) { return {&data_[i * dim_], dim_}; }

  /// Appends one point (size must equal dim()).
  void Add(std::span<const double> p);

  /// Dataset containing the rows listed in `indices` (duplicates allowed).
  PointSet Subset(std::span<const std::size_t> indices) const;

  /// Replaces row i (used to build neighboring datasets in tests).
  void ReplaceRow(std::size_t i, std::span<const double> p);

  std::span<const double> Data() const { return data_; }
  std::span<double> MutableData() { return data_; }

 private:
  std::size_t dim_;
  std::vector<double> data_;
};

}  // namespace dpcluster

#endif  // DPCLUSTER_GEO_POINT_SET_H_
