// The finite data universe X^d of Definition 1.2: X ⊆ R is a finite totally
// ordered set, identified with the real unit interval quantized with grid step
// 1/(|X|-1) (Remark 3.3 extends to general step/length; we keep the unit cube
// and expose the remark's rescaling through `axis_length`).
//
// GridDomain also owns the solution grid of GoodRadius (Algorithm 1, step 4):
// radii {0, 1/(2|X|), 2/(2|X|), ..., ceil(sqrt(d))}.

#ifndef DPCLUSTER_GEO_GRID_DOMAIN_H_
#define DPCLUSTER_GEO_GRID_DOMAIN_H_

#include <cstdint>
#include <span>

#include "dpcluster/geo/point_set.h"

namespace dpcluster {

/// A quantized d-dimensional cube domain.
class GridDomain {
 public:
  /// `levels` = |X| (>= 2), `dim` = d (>= 1), `axis_length` = max X - min X.
  GridDomain(std::uint64_t levels, std::size_t dim, double axis_length = 1.0);

  std::uint64_t levels() const { return levels_; }
  std::size_t dim() const { return dim_; }
  double axis_length() const { return axis_length_; }

  /// Grid step 1/(|X|-1) scaled by axis_length.
  double step() const { return step_; }

  /// Snaps a scalar to the nearest grid level (clamped to [0, axis_length]).
  double Snap(double x) const;

  /// Snaps a point in place.
  void SnapPoint(std::span<double> p) const;

  /// Snaps every point of the set in place.
  void SnapAll(PointSet& s) const;

  /// True if x lies on the grid (within fp tolerance) and inside the cube.
  bool OnGrid(double x) const;

  // --- Solution grid for GoodRadius (radii) -------------------------------

  /// Number of candidate radii: ceil(sqrt(d)) * axis_length * 2|X| + 1.
  std::uint64_t RadiusGridSize() const;

  /// The radius encoded by grid index g: g * axis_length / (2|X|).
  double RadiusFromIndex(std::uint64_t g) const;

  /// Smallest grid index g with RadiusFromIndex(g) >= r (clamped to the grid).
  std::uint64_t RadiusIndexCeil(double r) const;

 private:
  std::uint64_t levels_;
  std::size_t dim_;
  double axis_length_;
  double step_;
  double radius_step_;
};

}  // namespace dpcluster

#endif  // DPCLUSTER_GEO_GRID_DOMAIN_H_
