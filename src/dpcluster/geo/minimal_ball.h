// Non-private algorithms for the minimal ball enclosing t points
// (Definition 3.1). These are the substrate facts the paper states in Section 3:
//   1. exact solution is NP-hard in general;
//   2. a PTAS exists (Agarwal et al.);
//   3. restricting centers to input points gives a 2-approximation.
// We implement: the exact 1D solution (sliding window), the 2-approximation for
// any d, a grid-restricted exact search for tiny domains (test oracle), and the
// derived lower bound on r_opt used by the evaluation metrics.

#ifndef DPCLUSTER_GEO_MINIMAL_BALL_H_
#define DPCLUSTER_GEO_MINIMAL_BALL_H_

#include <cstddef>

#include "dpcluster/common/status.h"
#include "dpcluster/geo/ball.h"
#include "dpcluster/geo/grid_domain.h"
#include "dpcluster/geo/point_set.h"

namespace dpcluster {

/// Exact smallest interval (as a 1D ball) containing >= t points. d must be 1.
Result<Ball> SmallestInterval1D(const PointSet& s, std::size_t t);

/// 2-approximation (Section 3, fact 3): smallest ball centered at an input
/// point containing >= t points. O(n^2 d).
Result<Ball> TwoApproxSmallestBall(const PointSet& s, std::size_t t);

/// Exact search restricted to ball centers on the grid. O(|X|^d * n d) — only
/// for tiny domains; used as a test oracle and by the exponential-mechanism
/// baseline's ground truth. Fails if |X|^d > max_centers.
Result<Ball> GridRestrictedSmallestBall(const PointSet& s, std::size_t t,
                                        const GridDomain& domain,
                                        std::size_t max_centers);

/// Lower bound on r_opt derived from the 2-approximation:
/// r_2approx / 2 <= r_opt <= r_2approx. Used by metrics to report the
/// approximation ratio w conservatively. For d == 1 the exact value is used.
Result<double> OptRadiusLowerBound(const PointSet& s, std::size_t t);

}  // namespace dpcluster

#endif  // DPCLUSTER_GEO_MINIMAL_BALL_H_
