// IndexedDataset: the shared geometry layer of the library. One object
// bundles the dataset (PointSet), its universe (GridDomain), and a lazily
// built, cached, deletion-capable SpatialGrid behind an active-set view, so
// that algorithms *borrow* the hottest data structure in the codebase instead
// of rebuilding it ad hoc:
//
//  * KCluster peels one cluster per round and removes the covered points
//    incrementally (Remove / RemoveWithin) — k grid builds amortize to one.
//  * GoodRadius / RadiusProfile::Build run their t-NN pruned profile through
//    the prebuilt index (BatchKnn) instead of indexing the round's subset.
//  * The footnote-2 SparseVector engine answers its ~log|X| capped radius
//    counts from per-point t-NN rows (KnnCappedCounts, O(n t) memory)
//    instead of the n x n PairwiseDistances matrix.
//  * Solver::RunAll batches attach one shared index to many requests over
//    the same dataset (api/request.h).
//
// Exactness contract: every query answers over exactly the active points and
// is bit-identical to rebuilding a fresh index over ActiveView() — deletion
// is structural (live-prefix partitioning inside the grid's CSR cells), never
// approximate, and the distance kernels match la/vector_ops' Distance
// accumulation order. Snapshot/Restore make the mutation reversible in
// O(n + cells) so one index serves many runs.
//
// Threading: mutators and queries must be called from one thread at a time
// (the library convention — algorithms query serially and hand a ThreadPool
// to the batched calls for internal parallelism). Batched queries are
// bit-identical at any thread count.

#ifndef DPCLUSTER_GEO_DATASET_H_
#define DPCLUSTER_GEO_DATASET_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "dpcluster/common/status.h"
#include "dpcluster/geo/ball.h"
#include "dpcluster/geo/grid_domain.h"
#include "dpcluster/geo/point_set.h"
#include "dpcluster/geo/spatial_grid.h"
#include "dpcluster/la/matrix.h"

namespace dpcluster {

class ThreadPool;

/// PointSet + GridDomain + cached deletion-capable SpatialGrid, behind an
/// active-set view. Move-only: the grid borrows the stored points.
///
/// Weighted datasets: the three-argument Create attaches an integer
/// multiplicity to every row, making the dataset semantically equal to the
/// *expanded* dataset in which row i appears weight(i) times. Every query
/// answers in expanded terms — BatchKnn rows are the k smallest distances in
/// the expanded multiset (a row's weight-1 duplicate copies sit at distance
/// exactly 0), BatchCountWithin sums mass, KnnCappedCounts caps expanded
/// counts — and is pinned bit-identical to running the unweighted query on
/// the duplicate-expanded PointSet (weighted_geometry_test). This is what
/// lets the coreset layer (coreset/coreset.h) stand a ~2^20-point dataset
/// behind a few-thousand-row summary without changing any consumer.
class IndexedDataset {
 public:
  /// Takes ownership of the dataset. Points must lie in `domain`'s cube
  /// (snap them first — the same contract every algorithm already has).
  static Result<IndexedDataset> Create(PointSet points, GridDomain domain);

  /// Weighted variant: row i carries multiplicity weights[i] >= 1
  /// (weights.size() == points.size(); an empty vector means all-ones, i.e.
  /// the unweighted dataset).
  static Result<IndexedDataset> Create(PointSet points, GridDomain domain,
                                       std::vector<std::uint64_t> weights);

  IndexedDataset(IndexedDataset&&) = default;
  IndexedDataset& operator=(IndexedDataset&&) = default;
  IndexedDataset(const IndexedDataset&) = delete;
  IndexedDataset& operator=(const IndexedDataset&) = delete;

  const PointSet& points() const { return points_; }
  const GridDomain& domain() const { return domain_; }
  /// Total rows, including removed ones.
  std::size_t size() const { return points_.size(); }
  std::size_t dim() const { return points_.dim(); }
  std::size_t active_size() const { return active_count_; }
  bool IsActive(std::size_t i) const { return active_[i] != 0; }

  /// True when rows carry multiplicities (three-argument Create).
  bool weighted() const { return !weights_.empty(); }
  /// Multiplicity of row i (1 for unweighted datasets).
  std::uint64_t weight(std::size_t i) const {
    return weights_.empty() ? 1 : weights_[i];
  }
  /// The raw multiplicity vector (empty for unweighted datasets).
  std::span<const std::uint64_t> weights() const { return weights_; }
  /// Total multiplicity of the active rows — the expanded dataset size the
  /// queries answer over. Equals active_size() when unweighted.
  std::uint64_t active_mass() const {
    return weighted() ? active_mass_ : active_count_;
  }
  /// Total multiplicity of all rows, removed or not.
  std::uint64_t total_mass() const {
    return weighted() ? total_mass_ : points_.size();
  }

  /// Original row ids of the active points, ascending.
  std::span<const std::uint32_t> ActiveIds() const;

  /// Materializes the active points as a PointSet, rows in ascending
  /// original order — exactly PointSet::Subset over the active ids, which is
  /// what index-free code paths (GoodCenter, RefineRadius, subsampling)
  /// consume.
  PointSet ActiveView() const;

  /// Appends one row as a new active point and returns its id (== the old
  /// size()). Amortized O(1) on the cached grid: the grid's per-cell segment
  /// doubles in place instead of rebuilding (projected-geometry grids cannot
  /// host new rows — their JL map is anchored to the build-time data — so
  /// they are dropped and rebuilt lazily on the next query). The point must
  /// have dim() coordinates and lie in the domain cube (snap first; both are
  /// validated). `weight` attaches a multiplicity: inserting weight != 1
  /// into an unweighted dataset materializes the all-ones weight vector
  /// first. Queries after Insert stay bit-identical to a fresh rebuild over
  /// the active rows at any thread count (dataset_test pins this).
  Result<std::size_t> Insert(std::span<const double> point,
                             std::uint64_t weight = 1);

  /// Drops the removed rows for good: rebuilds storage over the active rows
  /// (ascending original order), renumbering them 0..active_size()-1, and
  /// discards the cached grid and projections for lazy rebuild. Returns
  /// old_ids with old_ids[new_id] = previous id — the caller's remap for any
  /// ids it kept. Outstanding Snapshots predate the renumbering and no
  /// longer apply. This is the live/total compaction step the streaming
  /// layer triggers when long-lived expiry leaves the arena mostly dead.
  std::vector<std::uint32_t> Compact();

  /// Deactivates one active row (O(1) on the cached grid).
  void Remove(std::size_t id);
  /// Deactivates the listed rows (each must currently be active).
  void Remove(std::span<const std::uint32_t> ids);
  /// Deactivates every active point the ball contains (Ball::Contains
  /// semantics, i.e. the same predicate KCluster's per-round removal used).
  /// Returns the number of points removed.
  std::size_t RemoveWithin(const Ball& ball);

  /// The active mask at a moment in time; restorable in O(n + cells).
  struct Snapshot {
    std::vector<std::uint8_t> active;
    std::size_t active_count = 0;
    std::uint64_t epoch = 0;  // identity token of the owning dataset
  };
  Snapshot TakeSnapshot() const;
  /// Rewinds the active set to `snapshot` (from this dataset; size-checked).
  /// A snapshot taken before later Inserts still applies: the pre-existing
  /// rows rewind to their snapshotted state and the appended rows keep their
  /// current activation. Snapshots from a different dataset or from before a
  /// Compact() (the rows were renumbered) are rejected — each snapshot
  /// carries the identity token of the numbering it was taken under.
  Status Restore(const Snapshot& snapshot);
  /// Reactivates every row.
  void RestoreAll();

  /// Row r of `out` (row stride `k`) receives the k smallest distances from
  /// active point ActiveIds()[r] to the other active points (self excluded;
  /// ascending when `sorted`, selection order otherwise). Requires
  /// k <= active_size() - 1 and out.size() == active_size() * k. Exact and
  /// bit-identical to a fresh SpatialGrid over ActiveView() at any thread
  /// count. Builds the cached grid on first use.
  ///
  /// Weighted datasets answer in expanded terms: row r holds the k smallest
  /// distances in the expanded multiset (the query row's weight-1 duplicate
  /// copies contribute distance exactly 0.0, row j contributes weight(j)
  /// copies of its distance), requires k <= active_mass() - 1, and is always
  /// ascending (`sorted` is ignored). Bit-identical to the unweighted query
  /// on the duplicate-expanded PointSet at any thread count.
  void BatchKnn(std::size_t k, std::span<double> out, ThreadPool* pool,
                bool sorted = true) const;

  /// out[r] = number of active points within distance r of ActiveIds()[r]
  /// (itself included); out.size() == active_size(). Exact
  /// (sqrt-of-squared <= r, Distance accumulation order). Weighted datasets
  /// count mass: out[r] sums the multiplicities of the rows within r —
  /// exactly the expanded-dataset count.
  void BatchCountWithin(double r, std::span<std::size_t> out,
                        ThreadPool* pool) const;

  /// The cached grid, built on first use with cells sized for
  /// `expected_neighbors`-NN queries (any k stays correct; only cell
  /// granularity is tuned). Subsequent calls reuse the existing build.
  const SpatialGrid& EnsureGrid(std::size_t expected_neighbors) const;

  /// True if the grid has been built (diagnostics / tests).
  bool grid_built() const { return grid_.has_value(); }

  /// The geometry policy of the cached grid (see IndexGeometry; default
  /// kAuto). Changing the policy drops an already-built grid so the next
  /// query rebuilds under the new policy — query answers are bit-identical
  /// across geometries, only the candidate-collection cost changes.
  void set_index_geometry(IndexGeometry geometry);
  IndexGeometry index_geometry() const { return index_geometry_; }

  /// Per-dataset JL projection cache: rows of all `size()` points projected
  /// through the JL map drawn from Rng(seed) into `out_dim` dimensions
  /// (JlTransform semantics, 1/sqrt(out_dim)-scaled). Computed once per
  /// (seed, out_dim) via the batched GEMM and reused across rounds — the
  /// returned reference is stable until a different (seed, out_dim) is
  /// requested, so KCluster's k GoodCenter rounds stop paying O(n d k_jl)
  /// each. Row i is bit-identical to applying the same JlTransform to
  /// points()[i] alone.
  const Matrix& ProjectedAll(std::uint64_t seed, std::size_t out_dim,
                             ThreadPool* pool = nullptr) const;

  /// The active-set slice of ProjectedAll: row r is the projected row of
  /// ActiveIds()[r]. Cached per active-set version — any Remove / Restore /
  /// RestoreAll invalidates the slice (the full-matrix cache above is
  /// unaffected). When every point is active this returns ProjectedAll.
  const Matrix& ProjectedActive(std::uint64_t seed, std::size_t out_dim,
                                ThreadPool* pool = nullptr) const;

  /// Bumped by every active-set mutation; versions the ProjectedActive cache.
  std::uint64_t active_version() const { return active_version_; }

 private:
  IndexedDataset(PointSet points, GridDomain domain,
                 std::vector<std::uint64_t> weights = {});

  /// Weighted BatchKnn/BatchCountWithin backends: blocked dense scans through
  /// SquaredDistanceRows (weighted datasets are coreset-sized summaries, so
  /// the O(active^2 d) pass is the fast path, and it keeps per-pair values
  /// bit-identical to the grid's kernel on the expanded data).
  void BatchKnnWeighted(std::size_t k, std::span<double> out,
                        ThreadPool* pool) const;
  void BatchCountWithinWeighted(double r, std::span<std::size_t> out,
                                ThreadPool* pool) const;

  PointSet points_;
  GridDomain domain_;
  std::vector<std::uint64_t> weights_;  // empty = unweighted (all ones)
  std::uint64_t total_mass_ = 0;        // sum of weights_ (weighted only)
  std::uint64_t active_mass_ = 0;       // sum over active rows (weighted only)
  std::vector<std::uint8_t> active_;
  std::size_t active_count_ = 0;
  mutable std::vector<std::uint32_t> active_ids_;  // cache; see dirty flag
  mutable bool active_ids_dirty_ = false;
  mutable std::optional<SpatialGrid> grid_;  // lazy; kept in sync with active_
  IndexGeometry index_geometry_ = IndexGeometry::kAuto;
  std::uint64_t active_version_ = 0;
  std::uint64_t snapshot_epoch_ = 0;  // fresh per dataset; bumped by Compact
  struct ProjectionCache {
    std::uint64_t seed = 0;
    std::size_t out_dim = 0;
    Matrix all;                         // size() x out_dim
    Matrix active;                      // active slice (lazy)
    bool active_valid = false;
    std::uint64_t active_version = 0;   // version `active` was gathered at
  };
  mutable std::optional<ProjectionCache> projection_;  // single entry
};

/// Order-sensitive 64-bit FNV-1a fingerprint of a dataset and its universe
/// (the row bytes plus n, d, |X|, and the axis length) — the identity check
/// the service layer's keyed index cache runs before reusing a cached
/// IndexedDataset under a client-chosen dataset key. Two inputs fingerprint
/// equal iff their rows and domain shape are byte-identical (up to hash
/// collision); row order matters, matching the ordered-multiset semantics
/// of PointSet.
std::uint64_t GeometryFingerprint(const PointSet& points,
                                  const GridDomain& domain);

/// Sorted per-active-point rows of the (cap-1) nearest-neighbor distances —
/// the O(n t) replacement for the n x n PairwiseDistances matrix on the
/// SparseVector GoodRadius path. Because every per-center ball count is
/// capped at `cap`, the cap-1 smallest distances determine min(B_r, cap)
/// exactly: if all of them are <= r the count saturates at cap, otherwise
/// the count is 1 + #{row entries <= r}. Distances are narrowed to float
/// with the same inclusive one-ulp rounding PairwiseDistances stores
/// (BumpDistanceUp), so the two backends agree on a count unless the
/// underlying doubles already straddle a float rounding boundary — the grid
/// accumulates coordinate-order squared diffs while the matrix uses the
/// Gram identity, whose ~1e-16 absolute rounding difference can cross a
/// float ulp for near-boundary distances on geometries whose coordinates
/// are not exactly representable (dataset_test pins equality on snapped
/// unit-cube data, where both formulas resolve identically).
class KnnCappedCounts {
 public:
  /// Builds the rows from `index`'s active points; 1 <= cap <= active_size().
  /// Fails with ResourceExhausted when active_size() > max_points (the same
  /// explicit cap contract PairwiseDistances::Compute had).
  ///
  /// Weighted datasets build *compressed* rows — per active row, the
  /// ascending distinct (bumped-float) distances paired with cumulative mass
  /// capped at cap-1 — so memory stays O(active_size^2) even when the
  /// expanded cap is ~10^6. Counts and CappedTopAverage are bit-identical to
  /// building the unweighted structure over the duplicate-expanded dataset
  /// (the cap then satisfies 1 <= cap <= active_mass()).
  static Result<KnnCappedCounts> Build(const IndexedDataset& index,
                                       std::size_t cap, std::size_t max_points,
                                       ThreadPool* pool = nullptr);

  /// Active points covered.
  std::size_t size() const { return n_; }
  /// The count cap the rows were built for.
  std::size_t cap() const { return cap_; }
  /// Bytes held by the distance rows (the structure's dominant allocation).
  std::size_t MemoryBytes() const {
    return rows_.size() * sizeof(float) + wvals_.size() * sizeof(float) +
           wmass_.size() * sizeof(std::uint64_t) +
           wrow_start_.size() * sizeof(std::size_t);
  }

  /// Streaming maintenance: realigns the rows with `index`'s active set
  /// after a batch of Inserts/Removes, recomputing only the rows the
  /// mutation actually touched. Call AFTER mutating the index; `added` are
  /// the newly active ids (no prior row), `removed` the deactivated ids
  /// (their rows are dropped). The reverse-neighbor question — "whose t-NN
  /// row did this point sit in?" — is answered by the grid itself: a
  /// CollectWithinPoint sweep from the mutated point's coordinates within
  /// `threshold_ub_` (a monotone upper bound on every row's t-th distance)
  /// yields the candidate rows, and each is confirmed against its own row
  /// threshold. Surviving rows a removed point influenced are recomputed
  /// from the grid; rows an added point beats get an in-place sorted insert
  /// (drop-last); everything else is untouched. The result is bit-identical
  /// to a fresh Build over the new active set at any thread count
  /// (dataset_test pins this). Weighted (compressed) structures do not
  /// support incremental maintenance — rebuild those. Fails if
  /// added/removed do not reconcile the rows with index.ActiveIds(), or if
  /// cap() now exceeds the active size.
  Status ApplyBatch(const IndexedDataset& index,
                    std::span<const std::uint32_t> added,
                    std::span<const std::uint32_t> removed,
                    ThreadPool* pool = nullptr);

  /// Pre-existing rows fully recomputed by the last ApplyBatch — the
  /// invalidation-selectivity numerator (new rows for added ids excluded).
  std::size_t last_invalidated() const { return last_invalidated_; }

  /// min(B_r(x_rank), cap) over the active points, x_rank the rank-th active
  /// point in ascending original order.
  std::size_t CountWithinCapped(std::size_t rank, double r) const;

  /// L(r) with counts capped at `top`: the average of the `top` largest
  /// values of min(B_r(x_i), top). Requires 1 <= top <= cap. Mirrors
  /// PairwiseDistances::CappedTopAverage (same scratch reuse: callers query
  /// serially).
  double CappedTopAverage(double r, std::size_t top) const;

 private:
  KnnCappedCounts() = default;

  static Result<KnnCappedCounts> BuildWeighted(const IndexedDataset& index,
                                               std::size_t cap,
                                               std::size_t max_points,
                                               ThreadPool* pool);

  std::size_t n_ = 0;
  std::size_t cap_ = 1;
  std::size_t k_ = 0;                // row width = cap - 1 (unweighted)
  std::vector<float> rows_;          // n_ x k_, each ascending (unweighted)
  std::vector<std::uint32_t> ids_;   // the active ids the rows describe
  float threshold_ub_ = 0.0f;  // >= every row's last entry; never shrinks
  std::size_t last_invalidated_ = 0;
  mutable std::vector<std::size_t> count_scratch_;  // n_ slots

  // Weighted (compressed) representation: per row, strictly ascending
  // distinct bumped-float distances with cumulative neighbor mass capped at
  // cap-1. Row r spans [wrow_start_[r], wrow_start_[r+1]).
  bool weighted_ = false;
  std::vector<float> wvals_;
  std::vector<std::uint64_t> wmass_;
  std::vector<std::size_t> wrow_start_;               // n_+1 offsets
  std::vector<std::uint64_t> center_mass_;            // per-row multiplicity
  mutable std::vector<std::pair<std::size_t, std::uint64_t>> wcount_scratch_;
};

}  // namespace dpcluster

#endif  // DPCLUSTER_GEO_DATASET_H_
