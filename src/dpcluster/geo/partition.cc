#include "dpcluster/geo/partition.h"

#include <cmath>

#include "dpcluster/common/check.h"

namespace dpcluster {

std::int64_t ShiftedAxisPartition::IndexOf(double x) const {
  return static_cast<std::int64_t>(std::floor((x - shift) / length));
}

double ShiftedAxisPartition::LeftOf(std::int64_t j) const {
  return shift + static_cast<double>(j) * length;
}

BoxPartition::BoxPartition(Rng& rng, std::size_t dim, double length) {
  DPC_CHECK_GE(dim, 1u);
  DPC_CHECK_GT(length, 0.0);
  axes_.reserve(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    axes_.push_back({rng.NextDouble() * length, length});
  }
}

BoxPartition::BoxPartition(std::vector<ShiftedAxisPartition> axes)
    : axes_(std::move(axes)) {
  DPC_CHECK(!axes_.empty());
  for (const auto& a : axes_) DPC_CHECK_GT(a.length, 0.0);
}

std::vector<std::int64_t> BoxPartition::BoxIndexOf(std::span<const double> p) const {
  DPC_CHECK_EQ(p.size(), axes_.size());
  std::vector<std::int64_t> idx(axes_.size());
  for (std::size_t i = 0; i < axes_.size(); ++i) idx[i] = axes_[i].IndexOf(p[i]);
  return idx;
}

AxisBox BoxPartition::BoxFor(std::span<const std::int64_t> index) const {
  DPC_CHECK_EQ(index.size(), axes_.size());
  AxisBox box;
  box.lo.resize(axes_.size());
  box.hi.resize(axes_.size());
  for (std::size_t i = 0; i < axes_.size(); ++i) {
    box.lo[i] = axes_[i].LeftOf(index[i]);
    box.hi[i] = box.lo[i] + axes_[i].length;
  }
  return box;
}

std::size_t BoxIndexHash::operator()(const std::vector<std::int64_t>& v) const {
  // FNV-1a over the index words; adequate for hashing sparse box keys.
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (std::int64_t x : v) {
    auto u = static_cast<std::uint64_t>(x);
    for (int b = 0; b < 8; ++b) {
      h ^= (u >> (8 * b)) & 0xFF;
      h *= 0x100000001B3ULL;
    }
  }
  return static_cast<std::size_t>(h);
}

}  // namespace dpcluster
