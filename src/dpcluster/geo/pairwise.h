// Pairwise distance structure behind the ball-count function
//   B_r(x_i, S) = |{ j : ||x_j - x_i|| <= r }|
// and the capped average
//   L(r, S) = (1/t) max_{distinct i_1..i_t} sum_j min(B_r(x_{i_j}), t)
// of Algorithm 1 (GoodRadius). Exact evaluation of L is inherently Theta(n^2);
// the structure materializes sorted per-center distance rows once (O(n^2 d)
// time, O(n^2) floats) and answers L(r) queries in O(n log n).
//
// The memory cap is explicit: callers must pass max_points and get a
// ResourceExhausted Status beyond it (see DESIGN.md, substitution #3).

#ifndef DPCLUSTER_GEO_PAIRWISE_H_
#define DPCLUSTER_GEO_PAIRWISE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "dpcluster/common/status.h"
#include "dpcluster/geo/point_set.h"

namespace dpcluster {

/// Sorted per-center distance rows for a dataset.
class PairwiseDistances {
 public:
  /// Builds the structure; fails with ResourceExhausted if s.size() > max_points.
  static Result<PairwiseDistances> Compute(const PointSet& s,
                                           std::size_t max_points);

  std::size_t size() const { return n_; }

  /// Distances from point i to all n points (itself included), ascending.
  std::span<const float> SortedRow(std::size_t i) const {
    return {&rows_[i * n_], n_};
  }

  /// B_r(x_i, S): number of points within distance r of x_i (itself included).
  std::size_t CountWithin(std::size_t i, double r) const;

  /// L(r, S) with counts capped at `cap`: the average of the `cap` largest
  /// values of min(B_r(x_i), cap). Requires 1 <= cap <= n.
  double CappedTopAverage(double r, std::size_t cap) const;

 private:
  PairwiseDistances() : n_(0) {}

  std::size_t n_;
  std::vector<float> rows_;  // n_ x n_, each row ascending.
};

}  // namespace dpcluster

#endif  // DPCLUSTER_GEO_PAIRWISE_H_
