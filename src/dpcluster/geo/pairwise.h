// Pairwise distance structure behind the ball-count function
//   B_r(x_i, S) = |{ j : ||x_j - x_i|| <= r }|
// and the capped average
//   L(r, S) = (1/t) max_{distinct i_1..i_t} sum_j min(B_r(x_{i_j}), t)
// of Algorithm 1 (GoodRadius). Exact evaluation of L is inherently Theta(n^2);
// the structure materializes sorted per-center distance rows once and answers
// L(r) queries in O(n log n).
//
// The build uses the Gram trick: per-row squared norms are precomputed and
// ||x_i - x_j||^2 = ||x_i||^2 + ||x_j||^2 - 2 <x_i, x_j> is evaluated in
// cache-blocked tiles (the dot products stream a packed transpose of the
// data with unit stride), with rows built and sorted in parallel through
// ParallelFor. The arithmetic per entry is fixed by the tiling constants, so
// the structure is bit-identical at any thread count.
//
// The memory cap is explicit: callers must pass max_points and get a
// ResourceExhausted Status beyond it (see DESIGN.md, substitution #3).

#ifndef DPCLUSTER_GEO_PAIRWISE_H_
#define DPCLUSTER_GEO_PAIRWISE_H_

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "dpcluster/common/status.h"
#include "dpcluster/geo/point_set.h"

namespace dpcluster {

class ThreadPool;

/// nextafter(f, +inf) for non-negative finite floats, without the libm call:
/// incrementing the bit pattern of a non-negative float yields the next
/// representable value (0.0f maps to the smallest subnormal, as nextafter
/// does). This is the inclusive one-ulp rounding every stored distance float
/// gets before a CountWithin-style `<= bound` comparison; PairwiseDistances
/// and geo/dataset.h's KnnCappedCounts share this single definition so the
/// two count backends resolve query radii against identically rounded rows.
inline float BumpDistanceUp(float f) {
  return std::bit_cast<float>(std::bit_cast<std::uint32_t>(f) + 1u);
}

/// Branchless upper_bound over an ascending row: the number of elements
/// <= bound. Each halving step is a conditional move instead of a compare
/// branch, so the n log n count queries of CappedTopAverage never stall on
/// mispredictions (bench_primitives measures it against std::upper_bound).
inline std::size_t BranchlessUpperBound(std::span<const float> sorted,
                                        float bound) {
  if (sorted.empty()) return 0;
  const float* base = sorted.data();
  std::size_t len = sorted.size();
  while (len > 1) {
    const std::size_t half = len / 2;
    base += (base[half - 1] <= bound) ? half : 0;
    len -= half;
  }
  return static_cast<std::size_t>(base - sorted.data()) +
         (base[0] <= bound ? 1 : 0);
}

/// Sorted per-center distance rows for a dataset.
class PairwiseDistances {
 public:
  /// Builds the structure; fails with ResourceExhausted if s.size() > max_points.
  /// `pool` parallelizes the tile and sort passes (null = serial); the result
  /// is bit-identical at any thread count.
  static Result<PairwiseDistances> Compute(const PointSet& s,
                                           std::size_t max_points,
                                           ThreadPool* pool = nullptr);

  std::size_t size() const { return n_; }

  /// Distances from point i to all n points (itself included), ascending.
  std::span<const float> SortedRow(std::size_t i) const {
    return {&rows_[i * n_], n_};
  }

  /// B_r(x_i, S): number of points within distance r of x_i (itself included).
  std::size_t CountWithin(std::size_t i, double r) const;

  /// L(r, S) with counts capped at `cap`: the average of the `cap` largest
  /// values of min(B_r(x_i), cap). Requires 1 <= cap <= n. Reuses an internal
  /// scratch buffer, so concurrent calls on one instance must be externally
  /// synchronized (every caller in this library queries serially).
  double CappedTopAverage(double r, std::size_t cap) const;

 private:
  PairwiseDistances() : n_(0) {}

  std::size_t n_;
  std::vector<float> rows_;  // n_ x n_, each row ascending.
  mutable std::vector<std::size_t> count_scratch_;  // n_ slots, see above.
};

}  // namespace dpcluster

#endif  // DPCLUSTER_GEO_PAIRWISE_H_
