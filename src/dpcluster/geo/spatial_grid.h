// SpatialGrid: a uniform cell grid over the GridDomain cube for batched
// t-nearest-neighbor and radius-count queries — the index behind the
// subquadratic RadiusProfile build (core/radius_profile.cc) and the
// deletion-capable IndexedDataset layer (geo/dataset.h).
//
// The cube [0, axis]^d is cut into m^d equal cells (m chosen from n, d and
// the expected neighbor count k so that a cell holds ~k/4 points); points are
// bucketed into a CSR layout by cell id. A k-NN query expands Chebyshev
// rings of cells around the query's cell: after scanning rings 0..rho, every
// point within Euclidean distance rho * cell_size has been seen (a point in
// an unscanned cell differs from the query by more than rho * cell_size on
// some axis), so the search stops as soon as the current k-th smallest
// candidate distance is <= rho * cell_size. When the next ring would touch
// more cells than remain occupied — high d makes rings exponentially wide
// while occupancy stays <= n — the query degrades gracefully to a scan of
// the remaining occupied cells, which completes coverage in one step. Either
// way the returned distances are *exact*: the same multiset brute force
// produces, computed by the same SquaredDistance kernel.
//
// Structural deletion: each cell's CSR segment is split into a live prefix
// [cell_start, cell_end) and a dead suffix. Remove() swap-moves a point into
// its cell's dead suffix in O(1); queries scan live prefixes only, so after
// any deletion sequence every query returns exactly what a fresh Build over
// the surviving points would return (both are exact). ResetActive()
// re-partitions every segment from an activity mask in O(n + cells), which
// is how IndexedDataset implements Snapshot/Restore without re-indexing.
//
// Determinism: queries return the sorted k smallest distance values, which
// are independent of cell-enumeration order, of tie-breaking among
// equidistant neighbors, and of the intra-cell permutation left behind by
// swap-removal. BatchKnnDistances writes each query's row into a
// caller-owned slice through ParallelForChunks, so the batch is bit-identical
// at any thread count.

#ifndef DPCLUSTER_GEO_SPATIAL_GRID_H_
#define DPCLUSTER_GEO_SPATIAL_GRID_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "dpcluster/common/status.h"
#include "dpcluster/geo/grid_domain.h"
#include "dpcluster/geo/point_set.h"

namespace dpcluster {

class ThreadPool;

/// Uniform cell grid over `domain`'s cube for exact k-NN distance queries.
class SpatialGrid {
 public:
  /// Indexes `s` (points must lie in the cube). `expected_neighbors` sizes
  /// the cells for k-NN queries with k of that order; any k stays correct.
  static Result<SpatialGrid> Build(const PointSet& s, const GridDomain& domain,
                                   std::size_t expected_neighbors);

  std::size_t size() const { return n_; }
  /// Points not structurally removed; queries see only these.
  std::size_t live_size() const { return live_; }
  std::size_t dim() const { return dim_; }
  /// Cells per axis (1 = degenerate single-cell grid, queries scan all points).
  std::size_t cells_per_axis() const { return cells_per_axis_; }
  double cell_size() const { return cell_size_; }

  /// True if `point` has not been removed.
  bool IsLive(std::size_t point) const {
    return pos_[point] < cell_end_[cell_of_[point]];
  }

  /// Structurally removes a live point: O(1) swap into its cell's dead
  /// suffix. Subsequent queries (issued for live points) behave exactly as if
  /// the grid had been rebuilt without it.
  void Remove(std::size_t point);

  /// Re-partitions every cell segment so exactly the points with
  /// active[point] != 0 are live (active.size() == size()). O(n + cells);
  /// the basis of IndexedDataset's Snapshot/Restore.
  void ResetActive(std::span<const std::uint8_t> active);

  /// The min(k, live-1) smallest distances from s[query] to the other live
  /// points (self excluded by index, so duplicate coordinates count as
  /// neighbors at distance 0; `query` must itself be live). Exact — equal to
  /// the brute-force multiset over the live points; ascending when `sorted`,
  /// in selection order otherwise (cheaper — the radius profile only
  /// consumes the multiset). `scratch` carries reusable buffers across calls
  /// (see Workspace).
  struct Workspace {
    std::vector<double> candidates;     // squared distances
    std::vector<std::uint32_t> hist16;  // 2^16 selection buckets, kept zeroed
    std::vector<std::uint32_t> touched;  // buckets dirtied by this query
    std::vector<double> ties;            // the k-th value's tie bucket
    std::vector<std::int64_t> center;    // decoded query cell coordinates
  };
  void KnnDistances(std::size_t query, std::size_t k, Workspace& scratch,
                    std::vector<double>& out, bool sorted = true) const;

  /// All n queries at once: row i of `out` (row stride `k`) receives
  /// KnnDistances(i, k, sorted) — callers pass k <= n-1. out.size() must be
  /// n * k. Only valid while no point has been removed (every index is
  /// queried). Rows are chunk-owned, so the result is bit-identical at any
  /// thread count.
  void BatchKnnDistances(std::size_t k, std::span<double> out,
                         ThreadPool* pool, bool sorted = true) const;

  /// Batched k-NN for an explicit query list (every id must be live): row r
  /// of `out` (row stride `k`) receives KnnDistances(queries[r], k, sorted);
  /// callers pass k <= live_size()-1 and out.size() == queries.size() * k.
  /// Bit-identical at any thread count.
  void BatchKnnDistancesFor(std::span<const std::uint32_t> queries,
                            std::size_t k, std::span<double> out,
                            ThreadPool* pool, bool sorted = true) const;

  /// Number of live points within Euclidean distance r of s[query] (the
  /// query itself included; it must be live). The comparison is
  /// sqrt(squared) <= r with the same accumulation order as la/vector_ops'
  /// Distance, so the count matches a brute-force sweep bit for bit.
  std::size_t CountWithin(std::size_t query, double r,
                          Workspace& scratch) const;

  /// Batched CountWithin over an explicit query list; out.size() must equal
  /// queries.size(). Bit-identical at any thread count.
  void BatchCountWithin(std::span<const std::uint32_t> queries, double r,
                        std::span<std::size_t> out, ThreadPool* pool) const;

 private:
  SpatialGrid() = default;

  std::uint64_t CellOf(std::span<const double> p) const;
  /// Appends the squared distances from q to every live point of cell `cell`.
  void ScanCell(std::uint64_t cell, std::span<const double> q,
                std::vector<double>& cands) const;
  /// Decodes the query's cell coordinates into scratch.center and returns the
  /// largest Chebyshev ring radius that still touches the grid.
  std::size_t DecodeCenter(std::span<const double> q,
                           Workspace& scratch) const;

  std::size_t n_ = 0;
  std::size_t live_ = 0;                    // points not removed
  std::size_t dim_ = 0;
  std::size_t cells_per_axis_ = 1;
  double cell_size_ = 1.0;
  std::span<const double> data_;     // borrowed from the indexed PointSet
  std::vector<std::uint64_t> cell_start_;  // CSR offsets, size m^d + 1
  std::vector<std::uint64_t> cell_end_;    // live end per cell, size m^d
  std::vector<std::uint32_t> cell_points_;  // point ids, cell-major; each
                                            // cell: live prefix, dead suffix
  std::vector<std::uint64_t> occupied_;     // cells non-empty at Build time,
                                            // ascending (kept across removals)
  std::size_t live_occupied_ = 0;           // cells with a non-empty live prefix
  std::vector<std::uint64_t> cell_of_;      // cell id per point
  std::vector<std::uint32_t> pos_;          // position in cell_points_ per point
};

}  // namespace dpcluster

#endif  // DPCLUSTER_GEO_SPATIAL_GRID_H_
