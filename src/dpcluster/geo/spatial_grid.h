// SpatialGrid: a uniform cell grid over the GridDomain cube for batched
// t-nearest-neighbor queries — the index behind the subquadratic
// RadiusProfile build (core/radius_profile.cc).
//
// The cube [0, axis]^d is cut into m^d equal cells (m chosen from n, d and
// the expected neighbor count k so that a cell holds ~k/4 points); points are
// bucketed into a CSR layout by cell id. A k-NN query expands Chebyshev
// rings of cells around the query's cell: after scanning rings 0..rho, every
// point within Euclidean distance rho * cell_size has been seen (a point in
// an unscanned cell differs from the query by more than rho * cell_size on
// some axis), so the search stops as soon as the current k-th smallest
// candidate distance is <= rho * cell_size. When the next ring would touch
// more cells than remain occupied — high d makes rings exponentially wide
// while occupancy stays <= n — the query degrades gracefully to a scan of
// the remaining occupied cells, which completes coverage in one step. Either
// way the returned distances are *exact*: the same multiset brute force
// produces, computed by the same SquaredDistance kernel.
//
// Determinism: queries return the sorted k smallest distance values, which
// are independent of cell-enumeration order and of tie-breaking among
// equidistant neighbors. BatchKnnDistances writes each query's row into a
// caller-owned slice through ParallelForChunks, so the batch is bit-identical
// at any thread count.

#ifndef DPCLUSTER_GEO_SPATIAL_GRID_H_
#define DPCLUSTER_GEO_SPATIAL_GRID_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "dpcluster/common/status.h"
#include "dpcluster/geo/grid_domain.h"
#include "dpcluster/geo/point_set.h"

namespace dpcluster {

class ThreadPool;

/// Uniform cell grid over `domain`'s cube for exact k-NN distance queries.
class SpatialGrid {
 public:
  /// Indexes `s` (points must lie in the cube). `expected_neighbors` sizes
  /// the cells for k-NN queries with k of that order; any k stays correct.
  static Result<SpatialGrid> Build(const PointSet& s, const GridDomain& domain,
                                   std::size_t expected_neighbors);

  std::size_t size() const { return n_; }
  std::size_t dim() const { return dim_; }
  /// Cells per axis (1 = degenerate single-cell grid, queries scan all points).
  std::size_t cells_per_axis() const { return cells_per_axis_; }
  double cell_size() const { return cell_size_; }

  /// The min(k, n-1) smallest distances from s[query] to the other points
  /// (self excluded by index, so duplicate coordinates count as neighbors at
  /// distance 0). Exact — equal to the brute-force multiset; ascending when
  /// `sorted`, in selection order otherwise (cheaper — the radius profile
  /// only consumes the multiset). `scratch` carries reusable buffers across
  /// calls (see Workspace).
  struct Workspace {
    std::vector<double> candidates;     // squared distances
    std::vector<std::uint32_t> hist16;  // 2^16 selection buckets, kept zeroed
    std::vector<std::uint32_t> touched;  // buckets dirtied by this query
    std::vector<double> ties;            // the k-th value's tie bucket
    std::vector<std::int64_t> center;    // decoded query cell coordinates
  };
  void KnnDistances(std::size_t query, std::size_t k, Workspace& scratch,
                    std::vector<double>& out, bool sorted = true) const;

  /// All n queries at once: row i of `out` (row stride `k`) receives
  /// KnnDistances(i, k, sorted) — callers pass k <= n-1. out.size() must be
  /// n * k. Rows are chunk-owned, so the result is bit-identical at any
  /// thread count.
  void BatchKnnDistances(std::size_t k, std::span<double> out,
                         ThreadPool* pool, bool sorted = true) const;

 private:
  SpatialGrid() = default;

  std::uint64_t CellOf(std::span<const double> p) const;
  /// Appends the squared distances from q to every point of cell `cell`.
  void ScanCell(std::uint64_t cell, std::span<const double> q,
                std::vector<double>& cands) const;

  std::size_t n_ = 0;
  std::size_t dim_ = 0;
  std::size_t cells_per_axis_ = 1;
  double cell_size_ = 1.0;
  std::span<const double> data_;     // borrowed from the indexed PointSet
  std::vector<std::uint64_t> cell_start_;  // CSR offsets, size m^d + 1
  std::vector<std::uint32_t> cell_points_;  // point ids, cell-major, ascending
  std::vector<std::uint64_t> occupied_;     // ids of non-empty cells, ascending
};

}  // namespace dpcluster

#endif  // DPCLUSTER_GEO_SPATIAL_GRID_H_
