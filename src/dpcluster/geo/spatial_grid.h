// SpatialGrid: a uniform cell grid over the GridDomain cube for batched
// t-nearest-neighbor and radius-count queries — the index behind the
// subquadratic RadiusProfile build (core/radius_profile.cc) and the
// deletion-capable IndexedDataset layer (geo/dataset.h).
//
// The cube [0, axis]^d is cut into m^d equal cells (m chosen from n, d and
// the expected neighbor count k so that a cell holds ~k/4 points); points are
// bucketed into a CSR layout by cell id. A k-NN query expands Chebyshev
// rings of cells around the query's cell: after scanning rings 0..rho, every
// point within Euclidean distance rho * cell_size has been seen (a point in
// an unscanned cell differs from the query by more than rho * cell_size on
// some axis), so the search stops as soon as the current k-th smallest
// candidate distance is <= rho * cell_size. When the next ring would touch
// more cells than remain occupied — high d makes rings exponentially wide
// while occupancy stays <= n — the query degrades gracefully to a scan of
// the remaining occupied cells, which completes coverage in one step. Either
// way the returned distances are *exact*: the same multiset brute force
// produces, computed by the same SquaredDistance kernel.
//
// Structural deletion: each cell's CSR segment is split into a live prefix
// [seg_start, cell_end) and a dead suffix. Remove() swap-moves a point into
// its cell's dead suffix in O(1); queries scan live prefixes only, so after
// any deletion sequence every query returns exactly what a fresh Build over
// the surviving points would return (both are exact). ResetActive()
// re-partitions every segment from an activity mask in O(n + cells), which
// is how IndexedDataset implements Snapshot/Restore without re-indexing.
//
// Structural insertion: the CSR storage is an arena of per-cell segments
// (seg_start/seg_end/seg_cap). Build lays the segments out back to back with
// zero slack — byte-identical to the classic prefix-sum layout — and
// Append() places a new point at its cell's live-prefix boundary. A full
// segment is relocated to the arena's end with doubled capacity (the old
// slots become unreferenced holes), so insertion is amortized O(1) by the
// usual vector-doubling argument. Queries never depend on segment addresses
// or intra-cell order, so every answer stays bit-identical to a fresh
// rebuild over the same live set.
//
// Determinism: queries return the sorted k smallest distance values, which
// are independent of cell-enumeration order, of tie-breaking among
// equidistant neighbors, and of the intra-cell permutation left behind by
// swap-removal. BatchKnnDistances writes each query's row into a
// caller-owned slice through ParallelForChunks, so the batch is bit-identical
// at any thread count.

#ifndef DPCLUSTER_GEO_SPATIAL_GRID_H_
#define DPCLUSTER_GEO_SPATIAL_GRID_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "dpcluster/common/status.h"
#include "dpcluster/geo/grid_domain.h"
#include "dpcluster/geo/point_set.h"

namespace dpcluster {

class ThreadPool;

/// Which coordinate space the cell grid is built over.
///
///  * kExact: cells over the original d coordinates — the right call at low d,
///    where Chebyshev rings prune well.
///  * kProjected: cells over a fixed-seed JL projection into
///    ProjectedGridDim(n, d, k) dimensions. Candidate collection happens in the
///    low-d projected space; every surviving candidate is re-checked with the
///    exact original-space distance, and a certified lower bound
///    (orthonormal-row projection + residual norms) rejects only points that
///    provably cannot affect the answer — so the returned k-NN multiset and
///    radius counts are bit-identical to kExact for any projection seed.
///  * kAuto: kExact. When the original-d grid degenerates to a single cell
///    (d >= ~16 at bench sizes), batched queries run a blocked dense scan
///    that streams the dataset once per query chunk — measured faster than
///    the projected filter at every (d, k, workload) we benched, because
///    high-d distance concentration leaves the certified lower bound too
///    weak to reject candidates. kProjected remains an explicit opt-in.
enum class IndexGeometry { kAuto, kExact, kProjected };

std::string_view IndexGeometryName(IndexGeometry geometry);
/// Inverse of IndexGeometryName; InvalidArgument on unknown names.
Result<IndexGeometry> IndexGeometryFromName(std::string_view name);

/// The projected-index target dimension cap: ceil(2/3 * log2 n) clamped to
/// [4, 12] — enough axes that cells separate candidates, few enough that ring
/// enumeration stays cheap.
std::size_t ProjectedIndexDim(std::size_t n);

/// The dimension the projected grid actually builds over: the largest
/// p <= min(ProjectedIndexDim(n), d) whose cell grid keeps >= 4 cells per
/// axis for `expected_neighbors`-sized queries, floored at 2. Spending the
/// cell budget on fewer, finer axes keeps the Chebyshev rings meaningful —
/// at p = ProjectedIndexDim(n) with large `expected_neighbors` the projected
/// grid itself would collapse to one cell per axis, degrading every query to
/// the same full scan the projection was built to avoid. Purely a layout
/// choice: results are bit-identical for any p (exact re-check).
std::size_t ProjectedGridDim(std::size_t n, std::size_t d,
                             std::size_t expected_neighbors);

/// True iff the exact-geometry grid sized for `expected_neighbors`-NN queries
/// collapses to one cell per axis — the regime where batched k-NN runs the
/// blocked dense scan, whose cost is one streamed pass over the data per
/// query chunk regardless of k.
bool GridCollapsesToSingleCell(std::size_t n, std::size_t d,
                               std::size_t expected_neighbors);

/// Resolves kAuto: kExact (see the IndexGeometry comment — the blocked dense
/// scan beats the projected filter on every workload we measured, so the
/// projection is opt-in only). Explicit requests pass through untouched.
IndexGeometry ResolveIndexGeometry(IndexGeometry requested, std::size_t n,
                                   std::size_t d,
                                   std::size_t expected_neighbors);

/// Uniform cell grid over `domain`'s cube for exact k-NN distance queries.
class SpatialGrid {
 public:
  /// Indexes `s` (points must lie in the cube). `expected_neighbors` sizes
  /// the cells for k-NN queries with k of that order; any k stays correct.
  /// `geometry` selects the cell-grid coordinate space (see IndexGeometry);
  /// every query answer is bit-identical across geometries. `pool` only
  /// parallelizes the one-off projection GEMM of a kProjected build.
  static Result<SpatialGrid> Build(const PointSet& s, const GridDomain& domain,
                                   std::size_t expected_neighbors,
                                   IndexGeometry geometry = IndexGeometry::kAuto,
                                   ThreadPool* pool = nullptr);

  std::size_t size() const { return n_; }
  /// Points not structurally removed; queries see only these.
  std::size_t live_size() const { return live_; }
  std::size_t dim() const { return dim_; }
  /// The resolved geometry (kExact or kProjected, never kAuto).
  IndexGeometry geometry() const { return geometry_; }
  /// Dimensionality of the cell grid: dim() for kExact, the projection's
  /// target dimension for kProjected.
  std::size_t geom_dim() const { return geom_dim_; }
  /// Cells per axis (1 = degenerate single-cell grid, queries scan all points).
  std::size_t cells_per_axis() const { return cells_per_axis_; }
  double cell_size() const { return cell_size_; }

  /// True if `point` has not been removed.
  bool IsLive(std::size_t point) const {
    return pos_[point] < cell_end_[cell_of_[point]];
  }

  /// Structurally removes a live point: O(1) swap into its cell's dead
  /// suffix. Subsequent queries (issued for live points) behave exactly as if
  /// the grid had been rebuilt without it.
  void Remove(std::size_t point);

  /// Re-partitions every cell segment so exactly the points with
  /// active[point] != 0 are live (active.size() == size()). O(n + cells);
  /// the basis of IndexedDataset's Snapshot/Restore.
  void ResetActive(std::span<const std::uint8_t> active);

  /// Structurally inserts point id size() — the last row of `all_data`, which
  /// must be the indexed PointSet's current storage of (size() + 1) * dim()
  /// doubles. Rebinds the borrowed span first (PointSet::Add may have
  /// reallocated), then places the new point at its cell's live-prefix
  /// boundary; a full segment is relocated with doubled capacity (amortized
  /// O(1)). The new row must lie inside the cube the grid was built over.
  /// Returns false without mutating anything for kProjected geometry (the
  /// projection and cell origins are anchored to the build-time data) —
  /// callers drop the grid and rebuild lazily instead.
  bool Append(std::span<const double> all_data);

  /// The min(k, live-1) smallest distances from s[query] to the other live
  /// points (self excluded by index, so duplicate coordinates count as
  /// neighbors at distance 0; `query` must itself be live). Exact — equal to
  /// the brute-force multiset over the live points; ascending when `sorted`,
  /// in selection order otherwise (cheaper — the radius profile only
  /// consumes the multiset). `scratch` carries reusable buffers across calls
  /// (see Workspace).
  struct Workspace {
    std::vector<double> candidates;     // squared distances
    std::vector<std::uint32_t> hist16;  // 2^16 selection buckets, kept zeroed
    std::vector<std::uint32_t> touched;  // buckets dirtied by this query
    std::vector<double> ties;            // the k-th value's tie bucket
    std::vector<std::int64_t> center;    // decoded query cell coordinates
    std::vector<double> dense_block;     // blocked one-cell distance rows
  };
  void KnnDistances(std::size_t query, std::size_t k, Workspace& scratch,
                    std::vector<double>& out, bool sorted = true) const;

  /// All n queries at once: row i of `out` (row stride `k`) receives
  /// KnnDistances(i, k, sorted) — callers pass k <= n-1. out.size() must be
  /// n * k. Only valid while no point has been removed (every index is
  /// queried). Rows are chunk-owned, so the result is bit-identical at any
  /// thread count.
  void BatchKnnDistances(std::size_t k, std::span<double> out,
                         ThreadPool* pool, bool sorted = true) const;

  /// Batched k-NN for an explicit query list (every id must be live): row r
  /// of `out` (row stride `k`) receives KnnDistances(queries[r], k, sorted);
  /// callers pass k <= live_size()-1 and out.size() == queries.size() * k.
  /// Bit-identical at any thread count.
  void BatchKnnDistancesFor(std::span<const std::uint32_t> queries,
                            std::size_t k, std::span<double> out,
                            ThreadPool* pool, bool sorted = true) const;

  /// Number of live points within Euclidean distance r of s[query] (the
  /// query itself included; it must be live). The comparison is
  /// sqrt(squared) <= r with the same accumulation order as la/vector_ops'
  /// Distance, so the count matches a brute-force sweep bit for bit.
  std::size_t CountWithin(std::size_t query, double r,
                          Workspace& scratch) const;

  /// Batched CountWithin over an explicit query list; out.size() must equal
  /// queries.size(). Bit-identical at any thread count.
  void BatchCountWithin(std::span<const std::uint32_t> queries, double r,
                        std::span<std::size_t> out, ThreadPool* pool) const;

  /// Appends to `out` the ids of every live point within Euclidean distance r
  /// of s[query] (the query itself included; same sqrt(squared) <= r
  /// predicate as CountWithin), using the same Chebyshev-box pruning. Ids
  /// arrive in cell-enumeration order — callers that need determinism across
  /// builds sort or treat the result as a set (the coreset builder's
  /// per-point relaxations commute, so it needs neither). `out` is not
  /// cleared.
  void CollectWithin(std::size_t query, double r, Workspace& scratch,
                     std::vector<std::uint32_t>& out) const;

  /// CollectWithin for an arbitrary coordinate row `p` (p.size() == dim()):
  /// appends every live id within Euclidean distance r of p, same predicate
  /// as CollectWithin. `p` need not be an indexed point — this is how
  /// KnnCappedCounts finds the rows a *removed* point used to influence.
  /// Projected grids fall back to a full occupied-cell scan (still exact:
  /// the predicate always uses original-space distances).
  void CollectWithinPoint(std::span<const double> p, double r,
                          Workspace& scratch,
                          std::vector<std::uint32_t>& out) const;

 private:
  SpatialGrid() = default;

  /// Row `i`'s coordinates in the cell grid's space: the original row for
  /// kExact, the projected row for kProjected.
  const double* GeomRow(std::size_t i) const {
    return (geometry_ == IndexGeometry::kProjected ? proj_points_.data()
                                                   : data_.data()) +
           i * geom_dim_;
  }
  std::uint64_t CellOf(const double* p) const;
  /// Appends the squared distances from q to every live point of cell `cell`.
  void ScanCell(std::uint64_t cell, std::span<const double> q,
                std::vector<double>& cands) const;
  /// k-NN rows for a chunk of queries on the degenerate one-cell exact grid
  /// (cells_per_axis_ == 1): tiles the live prefix across the chunk so the
  /// dataset streams once per chunk instead of once per query. Per-pair
  /// values, candidate order, self removal, and selection mirror KnnDistances
  /// exactly, so each output row is byte-identical to the per-query path.
  void DenseKnnChunk(const std::uint32_t* queries, std::size_t nq,
                     std::size_t k, double* out, bool sorted,
                     Workspace& scratch) const;
  /// Projected-mode cell scan for k-NN: appends the *exact* original-space
  /// squared distance of every live point whose certified projected lower
  /// bound does not exceed `bound_sq`, periodically re-selecting the
  /// `select_k` smallest to tighten the bound mid-scan (the degenerate
  /// one-cell grid never reaches the per-ring selection otherwise).
  void ScanCellProjectedKnn(std::uint64_t cell, std::size_t query,
                            std::size_t select_k, Workspace& scratch,
                            double& bound_sq) const;
  /// Projected-mode cell scan for CountWithin: like the k-NN variant but with
  /// a fixed rejection bound (r^2 inflated by the lower-bound haircut).
  void ScanCellProjectedCount(std::uint64_t cell, std::size_t query,
                              double bound_sq,
                              std::vector<double>& cands) const;
  /// Decodes the query's cell coordinates into scratch.center and returns the
  /// largest Chebyshev ring radius that still touches the grid.
  std::size_t DecodeCenter(const double* p, Workspace& scratch) const;

  std::size_t n_ = 0;
  std::size_t live_ = 0;                    // points not removed
  std::size_t dim_ = 0;
  IndexGeometry geometry_ = IndexGeometry::kExact;  // resolved at Build
  std::size_t geom_dim_ = 0;                // == dim_ unless projected
  std::size_t cells_per_axis_ = 1;
  double cell_size_ = 1.0;
  std::span<const double> data_;     // borrowed from the indexed PointSet
  std::vector<double> proj_points_;  // n x geom_dim projected rows (projected)
  std::vector<double> geom_origin_;  // per-geom-axis cell origin (projected
                                     // coordinates are signed)
  std::vector<double> res_lo_;       // certified residual-norm bounds per
  std::vector<double> res_hi_;       // point (projected; see MakeResiduals)
  std::vector<std::uint64_t> seg_start_;   // segment start per cell, size m^d
  std::vector<std::uint64_t> seg_end_;     // used end (live + dead) per cell
  std::vector<std::uint64_t> seg_cap_;     // segment capacity per cell
  std::vector<std::uint64_t> cell_end_;    // live end per cell, size m^d
  std::vector<std::uint32_t> cell_points_;  // segment arena; each cell's
                                            // segment: live prefix, dead
                                            // suffix, free slack (relocated
                                            // segments leave dead holes)
  std::vector<std::uint64_t> occupied_;     // cells with a non-empty used
                                            // segment, ascending (kept across
                                            // removals, extended by Append)
  std::size_t live_occupied_ = 0;           // cells with a non-empty live prefix
  std::vector<std::uint64_t> cell_of_;      // cell id per point
  std::vector<std::uint32_t> pos_;          // position in cell_points_ per point
};

}  // namespace dpcluster

#endif  // DPCLUSTER_GEO_SPATIAL_GRID_H_
