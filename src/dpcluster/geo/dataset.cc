#include "dpcluster/geo/dataset.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>

#include "dpcluster/common/check.h"
#include "dpcluster/geo/pairwise.h"
#include "dpcluster/la/jl_transform.h"
#include "dpcluster/random/rng.h"

namespace dpcluster {

// ------------------------------------------------------------ IndexedDataset

IndexedDataset::IndexedDataset(PointSet points, GridDomain domain)
    : points_(std::move(points)),
      domain_(std::move(domain)),
      active_(points_.size(), 1),
      active_count_(points_.size()) {
  active_ids_.resize(points_.size());
  for (std::size_t i = 0; i < points_.size(); ++i) {
    active_ids_[i] = static_cast<std::uint32_t>(i);
  }
}

Result<IndexedDataset> IndexedDataset::Create(PointSet points,
                                              GridDomain domain) {
  if (!points.empty() && points.dim() != domain.dim()) {
    return Status::InvalidArgument(
        "IndexedDataset: domain dimension mismatch");
  }
  return IndexedDataset(std::move(points), std::move(domain));
}

std::span<const std::uint32_t> IndexedDataset::ActiveIds() const {
  if (active_ids_dirty_) {
    active_ids_.clear();
    active_ids_.reserve(active_count_);
    for (std::size_t i = 0; i < active_.size(); ++i) {
      if (active_[i]) active_ids_.push_back(static_cast<std::uint32_t>(i));
    }
    active_ids_dirty_ = false;
  }
  return active_ids_;
}

PointSet IndexedDataset::ActiveView() const {
  const std::size_t d = points_.dim();
  std::vector<double> data;
  data.reserve(active_count_ * d);
  for (const std::uint32_t id : ActiveIds()) {
    const auto row = points_[id];
    data.insert(data.end(), row.begin(), row.end());
  }
  return d == 0 ? PointSet() : PointSet(d, std::move(data));
}

void IndexedDataset::Remove(std::size_t id) {
  DPC_CHECK_LT(id, active_.size());
  DPC_CHECK(active_[id]);
  active_[id] = 0;
  --active_count_;
  active_ids_dirty_ = true;
  ++active_version_;
  if (grid_.has_value()) grid_->Remove(id);
}

void IndexedDataset::Remove(std::span<const std::uint32_t> ids) {
  for (const std::uint32_t id : ids) Remove(id);
}

std::size_t IndexedDataset::RemoveWithin(const Ball& ball) {
  // Collect first: Remove() invalidates the ActiveIds() span.
  std::vector<std::uint32_t> covered;
  for (const std::uint32_t id : ActiveIds()) {
    if (ball.Contains(points_[id])) covered.push_back(id);
  }
  Remove(covered);
  return covered.size();
}

IndexedDataset::Snapshot IndexedDataset::TakeSnapshot() const {
  return {active_, active_count_};
}

Status IndexedDataset::Restore(const Snapshot& snapshot) {
  if (snapshot.active.size() != active_.size()) {
    return Status::InvalidArgument(
        "IndexedDataset: snapshot is from a different dataset");
  }
  active_ = snapshot.active;
  active_count_ = snapshot.active_count;
  active_ids_dirty_ = true;
  ++active_version_;
  if (grid_.has_value()) grid_->ResetActive(active_);
  return Status::OK();
}

void IndexedDataset::RestoreAll() {
  std::fill(active_.begin(), active_.end(), std::uint8_t{1});
  active_count_ = active_.size();
  active_ids_dirty_ = true;
  ++active_version_;
  if (grid_.has_value()) grid_->ResetActive(active_);
}

const SpatialGrid& IndexedDataset::EnsureGrid(
    std::size_t expected_neighbors) const {
  DPC_CHECK(!points_.empty());
  if (!grid_.has_value()) {
    auto built = SpatialGrid::Build(points_, domain_, expected_neighbors,
                                    index_geometry_);
    DPC_CHECK(built.ok());  // Preconditions hold by construction.
    grid_.emplace(std::move(*built));
    if (active_count_ < points_.size()) grid_->ResetActive(active_);
  }
  return *grid_;
}

void IndexedDataset::set_index_geometry(IndexGeometry geometry) {
  if (geometry == index_geometry_) return;
  index_geometry_ = geometry;
  grid_.reset();  // Rebuilt lazily under the new policy.
}

const Matrix& IndexedDataset::ProjectedAll(std::uint64_t seed,
                                           std::size_t out_dim,
                                           ThreadPool* pool) const {
  DPC_CHECK_GE(out_dim, 1u);
  if (!projection_.has_value() || projection_->seed != seed ||
      projection_->out_dim != out_dim) {
    ProjectionCache cache;
    cache.seed = seed;
    cache.out_dim = out_dim;
    Rng rng(seed);
    const JlTransform jl(rng, points_.dim(), out_dim);
    cache.all = jl.ApplyAll(points_, pool);
    projection_.emplace(std::move(cache));
  }
  return projection_->all;
}

const Matrix& IndexedDataset::ProjectedActive(std::uint64_t seed,
                                              std::size_t out_dim,
                                              ThreadPool* pool) const {
  const Matrix& all = ProjectedAll(seed, out_dim, pool);
  if (active_count_ == points_.size()) return all;
  ProjectionCache& cache = *projection_;
  if (!cache.active_valid || cache.active_version != active_version_) {
    const std::span<const std::uint32_t> ids = ActiveIds();
    Matrix active(ids.size(), out_dim);
    for (std::size_t r = 0; r < ids.size(); ++r) {
      const auto row = all.Row(ids[r]);
      std::copy(row.begin(), row.end(), active.Row(r).begin());
    }
    cache.active = std::move(active);
    cache.active_valid = true;
    cache.active_version = active_version_;
  }
  return cache.active;
}

void IndexedDataset::BatchKnn(std::size_t k, std::span<double> out,
                              ThreadPool* pool, bool sorted) const {
  DPC_CHECK_GE(active_count_, 1u);
  DPC_CHECK_LE(k, active_count_ - 1);
  const SpatialGrid& grid = EnsureGrid(k);
  grid.BatchKnnDistancesFor(ActiveIds(), k, out, pool, sorted);
}

void IndexedDataset::BatchCountWithin(double r, std::span<std::size_t> out,
                                      ThreadPool* pool) const {
  DPC_CHECK_EQ(out.size(), active_count_);
  if (active_count_ == 0) return;
  const SpatialGrid& grid = EnsureGrid(/*expected_neighbors=*/16);
  grid.BatchCountWithin(ActiveIds(), r, out, pool);
}

// ----------------------------------------------------------- KnnCappedCounts

Result<KnnCappedCounts> KnnCappedCounts::Build(const IndexedDataset& index,
                                               std::size_t cap,
                                               std::size_t max_points,
                                               ThreadPool* pool) {
  const std::size_t n = index.active_size();
  if (n == 0) {
    return Status::InvalidArgument("KnnCappedCounts: empty active set");
  }
  if (cap < 1 || cap > n) {
    return Status::InvalidArgument(
        "KnnCappedCounts: cap must satisfy 1 <= cap <= active_size");
  }
  if (n > max_points) {
    return Status::ResourceExhausted(
        "KnnCappedCounts: dataset has " + std::to_string(n) +
        " active points, cap is " + std::to_string(max_points) +
        " (see GoodRadiusOptions::max_profile_points)");
  }
  KnnCappedCounts counts;
  counts.n_ = n;
  counts.cap_ = cap;
  counts.k_ = cap - 1;
  counts.count_scratch_.assign(n, 0);
  if (counts.k_ == 0) return counts;  // Every capped count is 1.

  std::vector<double> knn(n * counts.k_);
  index.BatchKnn(counts.k_, knn, pool, /*sorted=*/true);
  counts.rows_.resize(n * counts.k_);
  for (std::size_t i = 0; i < knn.size(); ++i) {
    counts.rows_[i] = BumpDistanceUp(static_cast<float>(knn[i]));
  }
  return counts;
}

std::size_t KnnCappedCounts::CountWithinCapped(std::size_t rank,
                                               double r) const {
  DPC_CHECK_LT(rank, n_);
  if (r < 0.0) return 0;
  if (k_ == 0) return 1;  // Only the center itself is counted.
  const float bound = std::nextafter(static_cast<float>(r),
                                     std::numeric_limits<float>::infinity());
  const std::span<const float> row{&rows_[rank * k_], k_};
  return 1 + BranchlessUpperBound(row, bound);
}

std::uint64_t GeometryFingerprint(const PointSet& points,
                                  const GridDomain& domain) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  const auto mix = [&h](const void* bytes, std::size_t size) {
    const auto* p = static_cast<const unsigned char*>(bytes);
    for (std::size_t i = 0; i < size; ++i) {
      h ^= p[i];
      h *= 0x100000001b3ULL;  // FNV-1a prime
    }
  };
  const std::uint64_t n = points.size();
  const std::uint64_t d = points.dim();
  const std::uint64_t levels = domain.levels();
  const double axis = domain.axis_length();
  mix(&n, sizeof n);
  mix(&d, sizeof d);
  mix(&levels, sizeof levels);
  mix(&axis, sizeof axis);
  const std::span<const double> data = points.Data();
  mix(data.data(), data.size() * sizeof(double));
  return h;
}

double KnnCappedCounts::CappedTopAverage(double r, std::size_t top) const {
  DPC_CHECK_GE(top, 1u);
  DPC_CHECK_LE(top, cap_);
  std::vector<std::size_t>& counts = count_scratch_;
  for (std::size_t i = 0; i < n_; ++i) {
    counts[i] = std::min(CountWithinCapped(i, r), top);
  }
  std::nth_element(counts.begin(),
                   counts.begin() + static_cast<std::ptrdiff_t>(top - 1),
                   counts.end(), std::greater<>());
  double sum = 0.0;
  for (std::size_t i = 0; i < top; ++i) sum += static_cast<double>(counts[i]);
  return sum / static_cast<double>(top);
}

}  // namespace dpcluster
