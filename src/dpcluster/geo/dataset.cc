#include "dpcluster/geo/dataset.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <functional>
#include <limits>
#include <utility>

#include "dpcluster/common/check.h"
#include "dpcluster/geo/pairwise.h"
#include "dpcluster/la/jl_transform.h"
#include "dpcluster/la/vector_ops.h"
#include "dpcluster/parallel/parallel_for.h"
#include "dpcluster/random/rng.h"

namespace dpcluster {

namespace {

// Identity tokens for Snapshot/Restore: each dataset numbering (a fresh
// dataset, or one renumbered by Compact) gets a distinct epoch, so restoring
// a snapshot onto the wrong dataset — or across a Compact — is rejected
// instead of silently mismatching row ids. Mutators are single-threaded by
// library convention, but distinct datasets may live on distinct threads.
std::uint64_t NextSnapshotEpoch() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

// ------------------------------------------------------------ IndexedDataset

IndexedDataset::IndexedDataset(PointSet points, GridDomain domain,
                               std::vector<std::uint64_t> weights)
    : points_(std::move(points)),
      domain_(std::move(domain)),
      weights_(std::move(weights)),
      active_(points_.size(), 1),
      active_count_(points_.size()),
      snapshot_epoch_(NextSnapshotEpoch()) {
  active_ids_.resize(points_.size());
  for (std::size_t i = 0; i < points_.size(); ++i) {
    active_ids_[i] = static_cast<std::uint32_t>(i);
  }
  for (const std::uint64_t w : weights_) total_mass_ += w;
  active_mass_ = total_mass_;
}

Result<IndexedDataset> IndexedDataset::Create(PointSet points,
                                              GridDomain domain) {
  if (!points.empty() && points.dim() != domain.dim()) {
    return Status::InvalidArgument(
        "IndexedDataset: domain dimension mismatch");
  }
  return IndexedDataset(std::move(points), std::move(domain));
}

Result<IndexedDataset> IndexedDataset::Create(
    PointSet points, GridDomain domain, std::vector<std::uint64_t> weights) {
  if (!weights.empty() && weights.size() != points.size()) {
    return Status::InvalidArgument(
        "IndexedDataset: weights.size() must equal points.size()");
  }
  for (const std::uint64_t w : weights) {
    if (w == 0) {
      return Status::InvalidArgument(
          "IndexedDataset: weights must be >= 1 (drop zero-weight rows)");
    }
  }
  if (!points.empty() && points.dim() != domain.dim()) {
    return Status::InvalidArgument(
        "IndexedDataset: domain dimension mismatch");
  }
  return IndexedDataset(std::move(points), std::move(domain),
                        std::move(weights));
}

std::span<const std::uint32_t> IndexedDataset::ActiveIds() const {
  if (active_ids_dirty_) {
    active_ids_.clear();
    active_ids_.reserve(active_count_);
    for (std::size_t i = 0; i < active_.size(); ++i) {
      if (active_[i]) active_ids_.push_back(static_cast<std::uint32_t>(i));
    }
    active_ids_dirty_ = false;
  }
  return active_ids_;
}

PointSet IndexedDataset::ActiveView() const {
  const std::size_t d = points_.dim();
  std::vector<double> data;
  data.reserve(active_count_ * d);
  for (const std::uint32_t id : ActiveIds()) {
    const auto row = points_[id];
    data.insert(data.end(), row.begin(), row.end());
  }
  return d == 0 ? PointSet() : PointSet(d, std::move(data));
}

Result<std::size_t> IndexedDataset::Insert(std::span<const double> point,
                                           std::uint64_t weight) {
  if (point.size() != domain_.dim()) {
    return Status::InvalidArgument(
        "IndexedDataset::Insert: point dimension mismatch");
  }
  if (weight == 0) {
    return Status::InvalidArgument(
        "IndexedDataset::Insert: weight must be >= 1");
  }
  for (const double x : point) {
    if (!(x >= 0.0 && x <= domain_.axis_length())) {
      return Status::InvalidArgument(
          "IndexedDataset::Insert: point outside the domain cube (snap it "
          "first)");
    }
  }
  const std::size_t id = points_.size();
  if (points_.empty() && points_.dim() != domain_.dim()) {
    points_ = PointSet(domain_.dim());
  }
  points_.Add(point);
  if (weights_.empty() && weight != 1) {
    // Materialize the implicit all-ones vector: the dataset becomes weighted.
    weights_.assign(id, 1);
    total_mass_ = id;
    active_mass_ = active_count_;
  }
  if (!weights_.empty()) {
    weights_.push_back(weight);
    total_mass_ += weight;
    active_mass_ += weight;
  }
  active_.push_back(1);
  ++active_count_;
  // The new id is the maximum, so a clean ascending cache stays ascending.
  if (!active_ids_dirty_) active_ids_.push_back(static_cast<std::uint32_t>(id));
  ++active_version_;
  // The cached JL projection has size() rows anchored to the old data.
  projection_.reset();
  if (grid_.has_value() && !grid_->Append(points_.Data())) {
    grid_.reset();  // Projected geometry: rebuilt lazily over the new data.
  }
  return id;
}

std::vector<std::uint32_t> IndexedDataset::Compact() {
  const std::span<const std::uint32_t> ids = ActiveIds();
  std::vector<std::uint32_t> old_ids(ids.begin(), ids.end());
  const std::size_t d = points_.dim();
  std::vector<double> data;
  data.reserve(old_ids.size() * d);
  for (const std::uint32_t id : old_ids) {
    const auto row = points_[id];
    data.insert(data.end(), row.begin(), row.end());
  }
  points_ = d == 0 ? PointSet() : PointSet(d, std::move(data));
  if (!weights_.empty()) {
    std::vector<std::uint64_t> weights;
    weights.reserve(old_ids.size());
    for (const std::uint32_t id : old_ids) weights.push_back(weights_[id]);
    weights_ = std::move(weights);
    total_mass_ = active_mass_;
  }
  active_.assign(old_ids.size(), 1);
  active_count_ = old_ids.size();
  active_ids_.resize(old_ids.size());
  for (std::size_t i = 0; i < old_ids.size(); ++i) {
    active_ids_[i] = static_cast<std::uint32_t>(i);
  }
  active_ids_dirty_ = false;
  ++active_version_;
  snapshot_epoch_ = NextSnapshotEpoch();  // Old snapshots no longer apply.
  grid_.reset();
  projection_.reset();
  return old_ids;
}

void IndexedDataset::Remove(std::size_t id) {
  DPC_CHECK_LT(id, active_.size());
  DPC_CHECK(active_[id]);
  active_[id] = 0;
  --active_count_;
  if (!weights_.empty()) active_mass_ -= weights_[id];
  active_ids_dirty_ = true;
  ++active_version_;
  if (grid_.has_value()) grid_->Remove(id);
}

void IndexedDataset::Remove(std::span<const std::uint32_t> ids) {
  for (const std::uint32_t id : ids) Remove(id);
}

std::size_t IndexedDataset::RemoveWithin(const Ball& ball) {
  // Collect first: Remove() invalidates the ActiveIds() span.
  std::vector<std::uint32_t> covered;
  for (const std::uint32_t id : ActiveIds()) {
    if (ball.Contains(points_[id])) covered.push_back(id);
  }
  Remove(covered);
  return covered.size();
}

IndexedDataset::Snapshot IndexedDataset::TakeSnapshot() const {
  return {active_, active_count_, snapshot_epoch_};
}

Status IndexedDataset::Restore(const Snapshot& snapshot) {
  if (snapshot.epoch != snapshot_epoch_ ||
      snapshot.active.size() > active_.size()) {
    return Status::InvalidArgument(
        "IndexedDataset: snapshot is from a different dataset (or from "
        "before a Compact)");
  }
  // Rows appended after the snapshot keep their current activation.
  std::copy(snapshot.active.begin(), snapshot.active.end(), active_.begin());
  active_count_ = snapshot.active_count;
  for (std::size_t i = snapshot.active.size(); i < active_.size(); ++i) {
    if (active_[i]) ++active_count_;
  }
  if (!weights_.empty()) {
    active_mass_ = 0;
    for (std::size_t i = 0; i < active_.size(); ++i) {
      if (active_[i]) active_mass_ += weights_[i];
    }
  }
  active_ids_dirty_ = true;
  ++active_version_;
  if (grid_.has_value()) grid_->ResetActive(active_);
  return Status::OK();
}

void IndexedDataset::RestoreAll() {
  std::fill(active_.begin(), active_.end(), std::uint8_t{1});
  active_count_ = active_.size();
  active_mass_ = total_mass_;
  active_ids_dirty_ = true;
  ++active_version_;
  if (grid_.has_value()) grid_->ResetActive(active_);
}

const SpatialGrid& IndexedDataset::EnsureGrid(
    std::size_t expected_neighbors) const {
  DPC_CHECK(!points_.empty());
  if (!grid_.has_value()) {
    auto built = SpatialGrid::Build(points_, domain_, expected_neighbors,
                                    index_geometry_);
    DPC_CHECK(built.ok());  // Preconditions hold by construction.
    grid_.emplace(std::move(*built));
    if (active_count_ < points_.size()) grid_->ResetActive(active_);
  }
  return *grid_;
}

void IndexedDataset::set_index_geometry(IndexGeometry geometry) {
  if (geometry == index_geometry_) return;
  index_geometry_ = geometry;
  grid_.reset();  // Rebuilt lazily under the new policy.
}

const Matrix& IndexedDataset::ProjectedAll(std::uint64_t seed,
                                           std::size_t out_dim,
                                           ThreadPool* pool) const {
  DPC_CHECK_GE(out_dim, 1u);
  if (!projection_.has_value() || projection_->seed != seed ||
      projection_->out_dim != out_dim) {
    ProjectionCache cache;
    cache.seed = seed;
    cache.out_dim = out_dim;
    Rng rng(seed);
    const JlTransform jl(rng, points_.dim(), out_dim);
    cache.all = jl.ApplyAll(points_, pool);
    projection_.emplace(std::move(cache));
  }
  return projection_->all;
}

const Matrix& IndexedDataset::ProjectedActive(std::uint64_t seed,
                                              std::size_t out_dim,
                                              ThreadPool* pool) const {
  const Matrix& all = ProjectedAll(seed, out_dim, pool);
  if (active_count_ == points_.size()) return all;
  ProjectionCache& cache = *projection_;
  if (!cache.active_valid || cache.active_version != active_version_) {
    const std::span<const std::uint32_t> ids = ActiveIds();
    Matrix active(ids.size(), out_dim);
    for (std::size_t r = 0; r < ids.size(); ++r) {
      const auto row = all.Row(ids[r]);
      std::copy(row.begin(), row.end(), active.Row(r).begin());
    }
    cache.active = std::move(active);
    cache.active_valid = true;
    cache.active_version = active_version_;
  }
  return cache.active;
}

void IndexedDataset::BatchKnn(std::size_t k, std::span<double> out,
                              ThreadPool* pool, bool sorted) const {
  if (weighted()) {
    BatchKnnWeighted(k, out, pool);
    return;
  }
  DPC_CHECK_GE(active_count_, 1u);
  DPC_CHECK_LE(k, active_count_ - 1);
  const SpatialGrid& grid = EnsureGrid(k);
  grid.BatchKnnDistancesFor(ActiveIds(), k, out, pool, sorted);
}

void IndexedDataset::BatchCountWithin(double r, std::span<std::size_t> out,
                                      ThreadPool* pool) const {
  if (weighted()) {
    BatchCountWithinWeighted(r, out, pool);
    return;
  }
  DPC_CHECK_EQ(out.size(), active_count_);
  if (active_count_ == 0) return;
  const SpatialGrid& grid = EnsureGrid(/*expected_neighbors=*/16);
  grid.BatchCountWithin(ActiveIds(), r, out, pool);
}

void IndexedDataset::BatchKnnWeighted(std::size_t k, std::span<double> out,
                                      ThreadPool* pool) const {
  DPC_CHECK_GE(active_mass_, 1u);
  DPC_CHECK_LE(k, active_mass_ - 1);
  DPC_CHECK_EQ(out.size(), active_count_ * k);
  const std::span<const std::uint32_t> ids = ActiveIds();
  const std::size_t d = points_.dim();
  const double* data = points_.Data().data();
  // One query per expanded multiset: the query row's own weight-1 duplicate
  // copies sit at squared distance exactly +0.0 (x - x accumulates +0.0 per
  // coordinate), matching what a grid over the expanded rows returns.
  constexpr std::size_t kQueryGrain = 16;
  ParallelForChunks(
      pool, 0, ids.size(), kQueryGrain,
      [&](std::size_t lo, std::size_t hi, std::size_t) {
        std::vector<std::pair<double, std::uint64_t>> cands;
        cands.reserve(ids.size());
        for (std::size_t r = lo; r < hi; ++r) {
          const std::uint32_t q = ids[r];
          const double* qrow = data + static_cast<std::size_t>(q) * d;
          cands.clear();
          if (weights_[q] > 1) cands.emplace_back(0.0, weights_[q] - 1);
          for (const std::uint32_t j : ids) {
            if (j == q) continue;
            cands.emplace_back(
                SquaredDistanceRows(qrow,
                                    data + static_cast<std::size_t>(j) * d, d),
                weights_[j]);
          }
          std::sort(cands.begin(), cands.end(),
                    [](const auto& a, const auto& b) {
                      return a.first < b.first;
                    });
          double* row = out.data() + r * k;
          std::size_t written = 0;
          for (const auto& [sq, w] : cands) {
            if (written == k) break;
            const double dist = std::sqrt(sq);
            const std::uint64_t take =
                std::min<std::uint64_t>(w, k - written);
            for (std::uint64_t c = 0; c < take; ++c) row[written++] = dist;
          }
          DPC_CHECK_EQ(written, k);
        }
      },
      kAlwaysParallel);
}

void IndexedDataset::BatchCountWithinWeighted(double r,
                                              std::span<std::size_t> out,
                                              ThreadPool* pool) const {
  DPC_CHECK_EQ(out.size(), active_count_);
  if (active_count_ == 0) return;
  const std::span<const std::uint32_t> ids = ActiveIds();
  const std::size_t d = points_.dim();
  const double* data = points_.Data().data();
  constexpr std::size_t kQueryGrain = 16;
  ParallelForChunks(
      pool, 0, ids.size(), kQueryGrain,
      [&](std::size_t lo, std::size_t hi, std::size_t) {
        for (std::size_t rank = lo; rank < hi; ++rank) {
          const std::uint32_t q = ids[rank];
          const double* qrow = data + static_cast<std::size_t>(q) * d;
          std::uint64_t mass = 0;
          if (r >= 0.0) {
            for (const std::uint32_t j : ids) {
              const double sq = SquaredDistanceRows(
                  qrow, data + static_cast<std::size_t>(j) * d, d);
              if (std::sqrt(sq) <= r) mass += weights_[j];
            }
          }
          out[rank] = static_cast<std::size_t>(mass);
        }
      },
      kAlwaysParallel);
}

// ----------------------------------------------------------- KnnCappedCounts

Result<KnnCappedCounts> KnnCappedCounts::Build(const IndexedDataset& index,
                                               std::size_t cap,
                                               std::size_t max_points,
                                               ThreadPool* pool) {
  if (index.weighted()) return BuildWeighted(index, cap, max_points, pool);
  const std::size_t n = index.active_size();
  if (n == 0) {
    return Status::InvalidArgument("KnnCappedCounts: empty active set");
  }
  if (cap < 1 || cap > n) {
    return Status::InvalidArgument(
        "KnnCappedCounts: cap must satisfy 1 <= cap <= active_size");
  }
  if (n > max_points) {
    return Status::ResourceExhausted(
        "KnnCappedCounts: dataset has " + std::to_string(n) +
        " active points, cap is " + std::to_string(max_points) +
        " (see GoodRadiusOptions::max_profile_points)");
  }
  KnnCappedCounts counts;
  counts.n_ = n;
  counts.cap_ = cap;
  counts.k_ = cap - 1;
  counts.count_scratch_.assign(n, 0);
  const std::span<const std::uint32_t> ids = index.ActiveIds();
  counts.ids_.assign(ids.begin(), ids.end());
  if (counts.k_ == 0) return counts;  // Every capped count is 1.

  std::vector<double> knn(n * counts.k_);
  index.BatchKnn(counts.k_, knn, pool, /*sorted=*/true);
  counts.rows_.resize(n * counts.k_);
  for (std::size_t i = 0; i < knn.size(); ++i) {
    counts.rows_[i] = BumpDistanceUp(static_cast<float>(knn[i]));
  }
  for (std::size_t r = 0; r < n; ++r) {
    counts.threshold_ub_ =
        std::max(counts.threshold_ub_, counts.rows_[r * counts.k_ + counts.k_ - 1]);
  }
  return counts;
}

Result<KnnCappedCounts> KnnCappedCounts::BuildWeighted(
    const IndexedDataset& index, std::size_t cap, std::size_t max_points,
    ThreadPool* pool) {
  const std::size_t n = index.active_size();
  if (n == 0) {
    return Status::InvalidArgument("KnnCappedCounts: empty active set");
  }
  if (cap < 1 || cap > index.active_mass()) {
    return Status::InvalidArgument(
        "KnnCappedCounts: cap must satisfy 1 <= cap <= active_mass");
  }
  if (n > max_points) {
    return Status::ResourceExhausted(
        "KnnCappedCounts: dataset has " + std::to_string(n) +
        " active rows, cap is " + std::to_string(max_points) +
        " (see GoodRadiusOptions::max_profile_points)");
  }
  KnnCappedCounts counts;
  counts.n_ = n;
  counts.cap_ = cap;
  counts.weighted_ = true;
  const std::span<const std::uint32_t> ids = index.ActiveIds();
  const std::span<const std::uint64_t> weights = index.weights();
  counts.center_mass_.resize(n);
  for (std::size_t r = 0; r < n; ++r) counts.center_mass_[r] = weights[ids[r]];
  counts.wrow_start_.assign(n + 1, 0);
  if (cap == 1) return counts;  // Every capped count is 1.

  // Compressed rows: ascending distinct bumped-float neighbor distances with
  // cumulative mass clamped at cap-1 — enough to answer min(B_r, cap)
  // exactly, at O(n) memory per row instead of O(cap).
  const std::uint64_t neighbor_cap = cap - 1;
  const std::size_t d = index.dim();
  const double* data = index.points().Data().data();
  constexpr std::size_t kRowGrain = 16;
  const std::size_t num_chunks = NumChunks(n, kRowGrain);
  struct ChunkRows {
    std::vector<float> vals;
    std::vector<std::uint64_t> mass;
    std::vector<std::size_t> len;  // one entry per row of the chunk
  };
  std::vector<ChunkRows> chunks(num_chunks);
  ParallelForChunks(
      pool, 0, n, kRowGrain,
      [&](std::size_t lo, std::size_t hi, std::size_t chunk) {
        ChunkRows& out = chunks[chunk];
        std::vector<std::pair<float, std::uint64_t>> cands;
        cands.reserve(n);
        for (std::size_t r = lo; r < hi; ++r) {
          const std::uint32_t q = ids[r];
          const double* qrow = data + static_cast<std::size_t>(q) * d;
          cands.clear();
          if (weights[q] > 1) {
            cands.emplace_back(BumpDistanceUp(0.0f), weights[q] - 1);
          }
          for (const std::uint32_t j : ids) {
            if (j == q) continue;
            const double dist = std::sqrt(SquaredDistanceRows(
                qrow, data + static_cast<std::size_t>(j) * d, d));
            cands.emplace_back(BumpDistanceUp(static_cast<float>(dist)),
                               weights[j]);
          }
          std::sort(cands.begin(), cands.end(),
                    [](const auto& a, const auto& b) {
                      return a.first < b.first;
                    });
          std::size_t len = 0;
          std::uint64_t cum = 0;
          std::size_t i = 0;
          while (i < cands.size() && cum < neighbor_cap) {
            const float v = cands[i].first;
            std::uint64_t mass = 0;
            while (i < cands.size() && cands[i].first == v) {
              mass += cands[i].second;
              ++i;
            }
            cum = std::min(cum + mass, neighbor_cap);
            out.vals.push_back(v);
            out.mass.push_back(cum);
            ++len;
          }
          out.len.push_back(len);
        }
      },
      kAlwaysParallel);
  for (std::size_t chunk = 0, r = 0; chunk < num_chunks; ++chunk) {
    for (const std::size_t len : chunks[chunk].len) {
      counts.wrow_start_[r + 1] = counts.wrow_start_[r] + len;
      ++r;
    }
    counts.wvals_.insert(counts.wvals_.end(), chunks[chunk].vals.begin(),
                         chunks[chunk].vals.end());
    counts.wmass_.insert(counts.wmass_.end(), chunks[chunk].mass.begin(),
                         chunks[chunk].mass.end());
  }
  return counts;
}

Status KnnCappedCounts::ApplyBatch(const IndexedDataset& index,
                                   std::span<const std::uint32_t> added,
                                   std::span<const std::uint32_t> removed,
                                   ThreadPool* pool) {
  if (weighted_ || index.weighted()) {
    return Status::InvalidArgument(
        "KnnCappedCounts::ApplyBatch: weighted (compressed) rows do not "
        "support incremental maintenance; rebuild instead");
  }
  last_invalidated_ = 0;
  std::vector<std::uint32_t> added_sorted(added.begin(), added.end());
  std::sort(added_sorted.begin(), added_sorted.end());
  std::vector<std::uint32_t> removed_sorted(removed.begin(), removed.end());
  std::sort(removed_sorted.begin(), removed_sorted.end());

  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  const auto old_rank_of = [this](std::uint32_t id) -> std::size_t {
    const auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
    return (it != ids_.end() && *it == id)
               ? static_cast<std::size_t>(it - ids_.begin())
               : kNone;
  };
  const auto is_added = [&added_sorted](std::uint32_t id) {
    return std::binary_search(added_sorted.begin(), added_sorted.end(), id);
  };

  std::vector<std::uint8_t> dropped(n_, 0);
  for (const std::uint32_t q : removed_sorted) {
    const std::size_t r = old_rank_of(q);
    if (r == kNone) {
      return Status::InvalidArgument(
          "KnnCappedCounts::ApplyBatch: removed id has no row");
    }
    dropped[r] = 1;
  }
  const std::span<const std::uint32_t> now = index.ActiveIds();
  if (now.size() != n_ - removed_sorted.size() + added_sorted.size()) {
    return Status::InvalidArgument(
        "KnnCappedCounts::ApplyBatch: added/removed do not reconcile the "
        "rows with the index's active set");
  }
  if (cap_ > now.size()) {
    return Status::InvalidArgument(
        "KnnCappedCounts::ApplyBatch: cap exceeds the new active size; "
        "rebuild with a smaller cap");
  }
  if (k_ == 0) {  // No distance rows to maintain; realign the id list.
    ids_.assign(now.begin(), now.end());
    n_ = ids_.size();
    count_scratch_.assign(n_, 0);
    return Status::OK();
  }

  // The reverse-neighbor sweep: candidate rows a mutated point could have
  // influenced all lie within threshold_ub_ of its coordinates (every row
  // threshold is a bumped float strictly above the true distance, and
  // threshold_ub_ bounds them all), so the grid's CollectWithinPoint is an
  // exact superset enumerator; each candidate confirms against its own row.
  const SpatialGrid& grid = index.EnsureGrid(cap_);
  SpatialGrid::Workspace scratch;
  std::vector<std::uint32_t> cand;
  const double radius = static_cast<double>(threshold_ub_);
  const PointSet& pts = index.points();
  const std::size_t d = pts.dim();
  const double* data = pts.Data().data();
  const auto row_ptr = [&](std::size_t i) {
    return data + static_cast<std::size_t>(i) * d;
  };

  // Rows a removed point sat in can lose a neighbor: full recompute.
  std::vector<std::uint8_t> recompute(n_, 0);
  for (const std::uint32_t q : removed_sorted) {
    cand.clear();
    grid.CollectWithinPoint(pts[q], radius, scratch, cand);
    for (const std::uint32_t x : cand) {
      if (is_added(x)) continue;  // Fresh rows are computed below anyway.
      const std::size_t r = old_rank_of(x);
      if (r == kNone || dropped[r] || recompute[r]) continue;
      const double dist =
          std::sqrt(SquaredDistanceRows(row_ptr(x), row_ptr(q), d));
      if (BumpDistanceUp(static_cast<float>(dist)) <= rows_[r * k_ + k_ - 1]) {
        recompute[r] = 1;
        ++last_invalidated_;
      }
    }
  }

  // Rows an added point beats absorb it in place: sorted insert, drop-last.
  // Float narrowing is monotone, so merging bumped floats and keeping the k_
  // smallest equals bumping the k_ smallest doubles — the rebuild's order.
  for (const std::uint32_t p : added_sorted) {
    cand.clear();
    grid.CollectWithinPoint(pts[p], radius, scratch, cand);
    for (const std::uint32_t x : cand) {
      if (x == p || is_added(x)) continue;
      const std::size_t r = old_rank_of(x);
      if (r == kNone || dropped[r] || recompute[r]) continue;
      const float v = BumpDistanceUp(static_cast<float>(
          std::sqrt(SquaredDistanceRows(row_ptr(x), row_ptr(p), d))));
      float* row = &rows_[r * k_];
      if (v < row[k_ - 1]) {
        float* at = std::upper_bound(row, row + k_, v);
        std::copy_backward(at, row + k_ - 1, row + k_);
        *at = v;
      }
    }
  }

  // Reassemble in the new rank order; fresh rows (added ids + invalidated
  // survivors) come from one batched grid query over the final active set.
  std::vector<std::uint32_t> new_ids(now.begin(), now.end());
  std::vector<float> new_rows(new_ids.size() * k_);
  std::vector<std::uint32_t> fresh_ids;
  std::vector<std::size_t> fresh_ranks;
  for (std::size_t r = 0; r < new_ids.size(); ++r) {
    const std::uint32_t id = new_ids[r];
    if (is_added(id)) {
      fresh_ids.push_back(id);
      fresh_ranks.push_back(r);
      continue;
    }
    const std::size_t old_r = old_rank_of(id);
    if (old_r == kNone || dropped[old_r]) {
      return Status::InvalidArgument(
          "KnnCappedCounts::ApplyBatch: active id has no row and was not "
          "listed in added");
    }
    if (recompute[old_r]) {
      fresh_ids.push_back(id);
      fresh_ranks.push_back(r);
      continue;
    }
    std::copy(&rows_[old_r * k_], &rows_[old_r * k_] + k_, &new_rows[r * k_]);
  }
  if (!fresh_ids.empty()) {
    std::vector<double> knn(fresh_ids.size() * k_);
    grid.BatchKnnDistancesFor(fresh_ids, k_, knn, pool, /*sorted=*/true);
    for (std::size_t i = 0; i < fresh_ids.size(); ++i) {
      float* row = &new_rows[fresh_ranks[i] * k_];
      for (std::size_t j = 0; j < k_; ++j) {
        row[j] = BumpDistanceUp(static_cast<float>(knn[i * k_ + j]));
      }
      threshold_ub_ = std::max(threshold_ub_, row[k_ - 1]);
    }
  }
  rows_ = std::move(new_rows);
  ids_ = std::move(new_ids);
  n_ = ids_.size();
  count_scratch_.assign(n_, 0);
  return Status::OK();
}

std::size_t KnnCappedCounts::CountWithinCapped(std::size_t rank,
                                               double r) const {
  DPC_CHECK_LT(rank, n_);
  if (r < 0.0) return 0;
  if (weighted_) {
    if (cap_ == 1) return 1;
    const float bound = std::nextafter(static_cast<float>(r),
                                       std::numeric_limits<float>::infinity());
    const std::size_t lo = wrow_start_[rank];
    const std::size_t hi = wrow_start_[rank + 1];
    // Strictly ascending distinct values: the last entry <= bound carries the
    // cumulative neighbor mass (already clamped at cap-1).
    const auto it = std::upper_bound(wvals_.begin() + lo, wvals_.begin() + hi,
                                     bound);
    if (it == wvals_.begin() + lo) return 1;
    return 1 + static_cast<std::size_t>(
                   wmass_[static_cast<std::size_t>(it - wvals_.begin()) - 1]);
  }
  if (k_ == 0) return 1;  // Only the center itself is counted.
  const float bound = std::nextafter(static_cast<float>(r),
                                     std::numeric_limits<float>::infinity());
  const std::span<const float> row{&rows_[rank * k_], k_};
  return 1 + BranchlessUpperBound(row, bound);
}

std::uint64_t GeometryFingerprint(const PointSet& points,
                                  const GridDomain& domain) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  const auto mix = [&h](const void* bytes, std::size_t size) {
    const auto* p = static_cast<const unsigned char*>(bytes);
    for (std::size_t i = 0; i < size; ++i) {
      h ^= p[i];
      h *= 0x100000001b3ULL;  // FNV-1a prime
    }
  };
  const std::uint64_t n = points.size();
  const std::uint64_t d = points.dim();
  const std::uint64_t levels = domain.levels();
  const double axis = domain.axis_length();
  mix(&n, sizeof n);
  mix(&d, sizeof d);
  mix(&levels, sizeof levels);
  mix(&axis, sizeof axis);
  const std::span<const double> data = points.Data();
  mix(data.data(), data.size() * sizeof(double));
  return h;
}

double KnnCappedCounts::CappedTopAverage(double r, std::size_t top) const {
  DPC_CHECK_GE(top, 1u);
  DPC_CHECK_LE(top, cap_);
  if (weighted_) {
    // Every expanded copy of row i shares i's capped count, so the top-`top`
    // expanded values are read off the (count, row mass) pairs sorted by
    // count. Integer sums below 2^53 stay exact in double, so this equals the
    // expanded nth_element average bit for bit.
    auto& pairs = wcount_scratch_;
    pairs.clear();
    pairs.reserve(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      pairs.emplace_back(std::min(CountWithinCapped(i, r), top),
                         center_mass_[i]);
    }
    std::sort(pairs.begin(), pairs.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    std::uint64_t remaining = top;
    std::uint64_t sum = 0;
    for (const auto& [count, mass] : pairs) {
      if (remaining == 0) break;
      const std::uint64_t take = std::min<std::uint64_t>(mass, remaining);
      sum += static_cast<std::uint64_t>(count) * take;
      remaining -= take;
    }
    return static_cast<double>(sum) / static_cast<double>(top);
  }
  std::vector<std::size_t>& counts = count_scratch_;
  for (std::size_t i = 0; i < n_; ++i) {
    counts[i] = std::min(CountWithinCapped(i, r), top);
  }
  std::nth_element(counts.begin(),
                   counts.begin() + static_cast<std::ptrdiff_t>(top - 1),
                   counts.end(), std::greater<>());
  double sum = 0.0;
  for (std::size_t i = 0; i < top; ++i) sum += static_cast<double>(counts[i]);
  return sum / static_cast<double>(top);
}

}  // namespace dpcluster
