// Randomly shifted interval partitions and the k-dimensional box partition built
// from them (GoodCenter, Algorithm 2, steps 3-4): every axis i of R^k is split
// into intervals [a_i + j L, a_i + (j+1) L) with a random shift a_i in [0, L);
// a box B_j is a product of one interval per axis, identified by its integer
// index vector j in Z^k.

#ifndef DPCLUSTER_GEO_PARTITION_H_
#define DPCLUSTER_GEO_PARTITION_H_

#include <cstdint>
#include <span>
#include <vector>

#include "dpcluster/geo/ball.h"
#include "dpcluster/random/rng.h"

namespace dpcluster {

/// A partition of one axis into length-`length` intervals shifted by `shift`.
struct ShiftedAxisPartition {
  double shift = 0.0;   // In [0, length).
  double length = 1.0;  // Interval length (> 0).

  /// Index j of the interval containing x: [shift + j*length, shift + (j+1)*length).
  std::int64_t IndexOf(double x) const;
  /// Left endpoint of interval j.
  double LeftOf(std::int64_t j) const;
};

/// Product partition of R^k into boxes (one ShiftedAxisPartition per axis).
class BoxPartition {
 public:
  /// Random shifts, all axes with the same interval `length`.
  BoxPartition(Rng& rng, std::size_t dim, double length);

  /// Deterministic shifts (used by tests).
  explicit BoxPartition(std::vector<ShiftedAxisPartition> axes);

  std::size_t dim() const { return axes_.size(); }
  const ShiftedAxisPartition& axis(std::size_t i) const { return axes_[i]; }

  /// Integer index vector of the box containing p.
  std::vector<std::int64_t> BoxIndexOf(std::span<const double> p) const;

  /// The geometric box for an index vector.
  AxisBox BoxFor(std::span<const std::int64_t> index) const;

 private:
  std::vector<ShiftedAxisPartition> axes_;
};

/// Hash for integer box index vectors so boxes can key an unordered_map.
struct BoxIndexHash {
  std::size_t operator()(const std::vector<std::int64_t>& v) const;
};

}  // namespace dpcluster

#endif  // DPCLUSTER_GEO_PARTITION_H_
