#include "dpcluster/geo/minimal_ball.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "dpcluster/common/check.h"

namespace dpcluster {
namespace {

Status ValidateT(const PointSet& s, std::size_t t) {
  if (t < 1 || t > s.size()) {
    return Status::InvalidArgument("t must satisfy 1 <= t <= n (t=" +
                                   std::to_string(t) +
                                   ", n=" + std::to_string(s.size()) + ")");
  }
  return Status::OK();
}

}  // namespace

Result<Ball> SmallestInterval1D(const PointSet& s, std::size_t t) {
  if (s.dim() != 1) {
    return Status::InvalidArgument("SmallestInterval1D requires d == 1");
  }
  DPC_RETURN_IF_ERROR(ValidateT(s, t));
  std::vector<double> xs(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) xs[i] = s[i][0];
  std::sort(xs.begin(), xs.end());
  double best_len = std::numeric_limits<double>::infinity();
  std::size_t best_i = 0;
  for (std::size_t i = 0; i + t <= xs.size(); ++i) {
    const double len = xs[i + t - 1] - xs[i];
    if (len < best_len) {
      best_len = len;
      best_i = i;
    }
  }
  Ball ball;
  ball.center = {0.5 * (xs[best_i] + xs[best_i + t - 1])};
  ball.radius = 0.5 * best_len;
  return ball;
}

Result<Ball> TwoApproxSmallestBall(const PointSet& s, std::size_t t) {
  DPC_RETURN_IF_ERROR(ValidateT(s, t));
  double best_r = std::numeric_limits<double>::infinity();
  std::size_t best_i = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const double r = RadiusCapturing(s, s[i], t);
    if (r < best_r) {
      best_r = r;
      best_i = i;
    }
  }
  Ball ball;
  ball.center.assign(s[best_i].begin(), s[best_i].end());
  ball.radius = best_r;
  return ball;
}

Result<Ball> GridRestrictedSmallestBall(const PointSet& s, std::size_t t,
                                        const GridDomain& domain,
                                        std::size_t max_centers) {
  DPC_RETURN_IF_ERROR(ValidateT(s, t));
  if (s.dim() != domain.dim()) {
    return Status::InvalidArgument("domain dimension mismatch");
  }
  double total = 1.0;
  for (std::size_t i = 0; i < domain.dim(); ++i) {
    total *= static_cast<double>(domain.levels());
  }
  if (total > static_cast<double>(max_centers)) {
    return Status::ResourceExhausted(
        "GridRestrictedSmallestBall: |X|^d exceeds max_centers");
  }

  const auto count = static_cast<std::size_t>(total);
  std::vector<double> center(domain.dim(), 0.0);
  std::vector<std::uint64_t> idx(domain.dim(), 0);
  Ball best;
  best.radius = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < count; ++c) {
    for (std::size_t k = 0; k < domain.dim(); ++k) {
      center[k] = static_cast<double>(idx[k]) * domain.step();
    }
    const double r = RadiusCapturing(s, center, t);
    if (r < best.radius) {
      best.radius = r;
      best.center = center;
    }
    // Odometer increment over the grid.
    for (std::size_t k = 0; k < domain.dim(); ++k) {
      if (++idx[k] < domain.levels()) break;
      idx[k] = 0;
    }
  }
  return best;
}

Result<double> OptRadiusLowerBound(const PointSet& s, std::size_t t) {
  DPC_RETURN_IF_ERROR(ValidateT(s, t));
  if (s.dim() == 1) {
    DPC_ASSIGN_OR_RETURN(Ball exact, SmallestInterval1D(s, t));
    return exact.radius;
  }
  DPC_ASSIGN_OR_RETURN(Ball approx, TwoApproxSmallestBall(s, t));
  return approx.radius / 2.0;
}

}  // namespace dpcluster
