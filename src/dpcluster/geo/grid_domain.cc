#include "dpcluster/geo/grid_domain.h"

#include <algorithm>
#include <cmath>

#include "dpcluster/common/check.h"

namespace dpcluster {

GridDomain::GridDomain(std::uint64_t levels, std::size_t dim, double axis_length)
    : levels_(levels), dim_(dim), axis_length_(axis_length) {
  DPC_CHECK_GE(levels, 2u);
  DPC_CHECK_GE(dim, 1u);
  DPC_CHECK_GT(axis_length, 0.0);
  step_ = axis_length_ / static_cast<double>(levels_ - 1);
  radius_step_ = axis_length_ / (2.0 * static_cast<double>(levels_));
}

double GridDomain::Snap(double x) const {
  const double clamped = std::clamp(x, 0.0, axis_length_);
  const double idx = std::round(clamped / step_);
  return idx * step_;
}

void GridDomain::SnapPoint(std::span<double> p) const {
  DPC_CHECK_EQ(p.size(), dim_);
  for (double& x : p) x = Snap(x);
}

void GridDomain::SnapAll(PointSet& s) const {
  DPC_CHECK_EQ(s.dim(), dim_);
  for (std::size_t i = 0; i < s.size(); ++i) SnapPoint(s.MutableRow(i));
}

bool GridDomain::OnGrid(double x) const {
  if (x < -1e-12 || x > axis_length_ + 1e-12) return false;
  const double idx = x / step_;
  return std::abs(idx - std::round(idx)) < 1e-9;
}

std::uint64_t GridDomain::RadiusGridSize() const {
  const double diag = std::ceil(std::sqrt(static_cast<double>(dim_)));
  // Largest index encodes radius diag * axis_length (>= cube diameter).
  return static_cast<std::uint64_t>(diag * 2.0 * static_cast<double>(levels_)) + 1;
}

double GridDomain::RadiusFromIndex(std::uint64_t g) const {
  return static_cast<double>(g) * radius_step_;
}

std::uint64_t GridDomain::RadiusIndexCeil(double r) const {
  DPC_CHECK_GE(r, 0.0);
  const double g = std::ceil(r / radius_step_ - 1e-12);
  const std::uint64_t max_g = RadiusGridSize() - 1;
  if (g >= static_cast<double>(max_g)) return max_g;
  return static_cast<std::uint64_t>(g);
}

}  // namespace dpcluster
