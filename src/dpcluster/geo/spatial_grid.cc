#include "dpcluster/geo/spatial_grid.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <limits>

#include "dpcluster/common/check.h"
#include "dpcluster/la/matrix.h"
#include "dpcluster/la/qr.h"
#include "dpcluster/la/vector_ops.h"
#include "dpcluster/parallel/parallel_for.h"
#include "dpcluster/random/rng.h"

namespace dpcluster {
namespace {

// Seed of the projected geometry's JL draw. Fixed and data-independent: the
// projection only steers candidate collection (answers are exact re-checks),
// so any seed yields identical released bytes — a constant keeps rebuilds of
// the same dataset byte-comparable internally too.
constexpr std::uint64_t kProjectionSeed = 0x9e3779b97f4a7c15ull;

// Relative haircut applied to certified lower bounds before rejecting a
// candidate: absorbs the ~1e-13-relative slack of the projection's
// orthonormality error and the accumulation rounding of the p-dim partial
// distances, mirroring the ring guarantees' 1e-9 margins.
constexpr double kLowerBoundHaircut = 1.0 - 1e-9;

// Hard caps on the cell table: cells are dense (CSR offsets), so the table is
// bounded independently of the data distribution. ~2M cells = 16 MB offsets.
constexpr std::size_t kMaxCellsPerAxis = 1024;
constexpr std::size_t kMaxTotalCells = std::size_t{1} << 21;

// m^d with saturation at kMaxTotalCells + 1.
std::size_t SaturatingCellCount(std::size_t m, std::size_t d) {
  std::size_t total = 1;
  for (std::size_t a = 0; a < d; ++a) {
    if (total > kMaxTotalCells / m + 1) return kMaxTotalCells + 1;
    total *= m;
  }
  return total;
}

// Cells per axis sized so a cell holds ~k/4 points of a uniform spread: few
// enough rings reach k candidates fast, coarse enough that ring enumeration
// does not dwarf the point scans. Bounded so the dense cell table stays small;
// m == 1 (always at high d) degrades every query to one full scan, which is
// the right call there — rings grow as 3^d while occupancy is capped by n.
std::size_t ChooseCellsPerAxis(std::size_t n, std::size_t d, std::size_t k) {
  const double occupancy =
      std::clamp(static_cast<double>(std::max<std::size_t>(k, 1)) / 4.0, 1.0,
                 512.0);
  const double target_cells =
      std::max(1.0, static_cast<double>(n) / occupancy);
  auto m = static_cast<std::size_t>(
      std::floor(std::pow(target_cells, 1.0 / static_cast<double>(d))));
  m = std::clamp<std::size_t>(m, 1, kMaxCellsPerAxis);
  while (m > 1 && SaturatingCellCount(m, d) > kMaxTotalCells) --m;
  return m;
}

// ||x - y||^2 over raw rows — la/vector_ops' canonical blocked kernel, so
// sqrt() of the result is bit-identical to Distance() on the same pair.
inline double RowSquaredDistance(const double* x, const double* y,
                                 std::size_t d) {
  return SquaredDistanceRows(x, y, d);
}

// Keeps the k smallest of `vals` (non-negative doubles) as its first k
// elements (unordered, exact value multiset) and truncates the rest. One
// histogram pass over the top 16 bits of the order-preserving bit image
// (sign + exponent + 4 mantissa bits: ~16 buckets per binade, so the k-th
// value's tie bucket holds only the candidates within ~6% of it), one
// in-place compaction pass, and an exact nth_element on that small tie
// bucket. The 2^16-entry histogram lives in the workspace and only the
// touched buckets are re-zeroed, so the select is ~2 branch-light linear
// passes — about 6x cheaper than std::nth_element on 4k-candidate sets,
// where introselect's data-dependent pivot branches dominated the batch.
void SelectSmallest(std::vector<double>& vals, std::size_t k,
                    SpatialGrid::Workspace& ws) {
  if (k >= vals.size()) return;
  if (ws.hist16.empty()) ws.hist16.assign(std::size_t{1} << 16, 0);
  for (const double v : vals) {
    const auto key =
        static_cast<std::uint32_t>(std::bit_cast<std::uint64_t>(v) >> 48);
    if (ws.hist16[key]++ == 0) ws.touched.push_back(key);
  }
  std::sort(ws.touched.begin(), ws.touched.end());
  // Bucket kb holds the k-th smallest; every lower bucket is accepted whole.
  std::size_t below = 0;
  std::size_t bi = 0;
  while (below + ws.hist16[ws.touched[bi]] < k) {
    below += ws.hist16[ws.touched[bi++]];
  }
  const std::uint32_t kb = ws.touched[bi];
  for (const std::uint32_t key : ws.touched) ws.hist16[key] = 0;
  ws.touched.clear();

  ws.ties.clear();
  std::size_t out = 0;
  for (const double v : vals) {  // In-place compaction (out <= read index).
    const auto key =
        static_cast<std::uint32_t>(std::bit_cast<std::uint64_t>(v) >> 48);
    if (key < kb) {
      vals[out++] = v;
    } else if (key == kb) {
      ws.ties.push_back(v);
    }
  }
  const std::size_t need = k - below;  // >= 1 by choice of kb.
  std::nth_element(ws.ties.begin(),
                   ws.ties.begin() + static_cast<std::ptrdiff_t>(need - 1),
                   ws.ties.end());
  for (std::size_t i = 0; i < need; ++i) vals[out++] = ws.ties[i];
  vals.resize(k);
  DPC_CHECK_EQ(out, k);
}

// Fills res_lo/res_hi with certified bounds on each point's residual norm
// — the length of its component orthogonal to the projection's row space.
// For orthonormal-row P the residual squared is ||x||^2 - ||Px||^2; the
// difference-of-squares cancellation plus P's ~1e-14 orthonormality error
// leave an absolute error of ~1e-13 * ||x||^2, so the interval is widened by
// an absolute slack 1e-6 * (1 + ||x||^2) — about 1e7x the worst case — and
// the true residual is guaranteed inside [res_lo, res_hi]. The pair feeds
// the lower bound ||x - y||^2 >= ||Px - Py||^2 + (res_x - res_y)^2.
void MakeResiduals(const double* data, const double* proj, std::size_t n,
                   std::size_t d, std::size_t p, std::vector<double>& res_lo,
                   std::vector<double>& res_hi) {
  res_lo.resize(n);
  res_hi.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double* x = data + i * d;
    const double* px = proj + i * p;
    double sq = 0.0;
    for (std::size_t c = 0; c < d; ++c) sq += x[c] * x[c];
    double psq = 0.0;
    for (std::size_t a = 0; a < p; ++a) psq += px[a] * px[a];
    const double diff = sq - psq;
    const double slack = 1e-6 * (1.0 + sq);
    res_lo[i] = std::sqrt(std::max(0.0, diff - slack));
    res_hi[i] = std::sqrt(std::max(0.0, diff + slack)) * (1.0 + 1e-12);
  }
}

}  // namespace

std::string_view IndexGeometryName(IndexGeometry geometry) {
  switch (geometry) {
    case IndexGeometry::kAuto:
      return "auto";
    case IndexGeometry::kExact:
      return "exact";
    case IndexGeometry::kProjected:
      return "projected";
  }
  return "unknown";
}

Result<IndexGeometry> IndexGeometryFromName(std::string_view name) {
  if (name == "auto") return IndexGeometry::kAuto;
  if (name == "exact") return IndexGeometry::kExact;
  if (name == "projected") return IndexGeometry::kProjected;
  return Status::InvalidArgument("unknown index geometry: " +
                                 std::string(name));
}

std::size_t ProjectedIndexDim(std::size_t n) {
  const double bits = std::log2(static_cast<double>(std::max<std::size_t>(n, 2)));
  return std::clamp<std::size_t>(
      static_cast<std::size_t>(std::ceil(bits * 2.0 / 3.0)), 4, 12);
}

std::size_t ProjectedGridDim(std::size_t n, std::size_t d,
                             std::size_t expected_neighbors) {
  const std::size_t cap = std::min(ProjectedIndexDim(n), d);
  if (cap <= 2) return cap;
  for (std::size_t p = cap; p > 2; --p) {
    if (ChooseCellsPerAxis(n, p, expected_neighbors) >= 4) return p;
  }
  return 2;
}

bool GridCollapsesToSingleCell(std::size_t n, std::size_t d,
                               std::size_t expected_neighbors) {
  return ChooseCellsPerAxis(n, d, expected_neighbors) == 1;
}

IndexGeometry ResolveIndexGeometry(IndexGeometry requested, std::size_t n,
                                   std::size_t d,
                                   std::size_t expected_neighbors) {
  if (requested != IndexGeometry::kAuto) return requested;
  // Always exact. The projected geometry was built for the degenerate high-d
  // case (one cell per axis: every query scans all n points at d-dim cost),
  // but the batched one-cell scan now streams the dataset once per query
  // chunk through the blocked distance kernel, and that beats the projected
  // filter everywhere we measured (n=4096, d in {32, 64}, k in {15..511},
  // clustered and uniform: exact 0.19-0.44s vs projected 0.38-1.38s per
  // 4096-query batch) — at high d distance concentration leaves the certified
  // lower bound too weak to reject candidates, so the filter pays p extra
  // dimensions of work per pair without shrinking the exact re-checks.
  // kProjected stays available as an explicit request (it answers every
  // query bit-identically) for data with low intrinsic dimension.
  (void)n;
  (void)d;
  (void)expected_neighbors;
  return IndexGeometry::kExact;
}

Result<SpatialGrid> SpatialGrid::Build(const PointSet& s,
                                       const GridDomain& domain,
                                       std::size_t expected_neighbors,
                                       IndexGeometry geometry,
                                       ThreadPool* pool) {
  if (s.empty()) return Status::InvalidArgument("SpatialGrid: empty dataset");
  if (s.dim() != domain.dim()) {
    return Status::InvalidArgument("SpatialGrid: domain dimension mismatch");
  }
  SpatialGrid grid;
  grid.n_ = s.size();
  grid.live_ = grid.n_;
  grid.dim_ = s.dim();
  grid.data_ = s.Data();
  grid.geometry_ =
      ResolveIndexGeometry(geometry, grid.n_, grid.dim_, expected_neighbors);
  if (grid.geometry_ == IndexGeometry::kProjected) {
    grid.geom_dim_ = ProjectedGridDim(grid.n_, grid.dim_, expected_neighbors);
    // Projection = the first geom_dim rows of a Haar orthonormal basis, NOT
    // 1/sqrt(k)-scaled: orthonormal rows make every projected distance a
    // lower bound on the exact distance (up to the ~1e-14 orthonormality
    // error the haircuts absorb), which is what the ring guarantees and the
    // candidate rejection both certify against.
    Rng rng(kProjectionSeed);
    const Matrix basis = RandomOrthonormalBasis(rng, grid.dim_);
    Matrix projection(grid.geom_dim_, grid.dim_);
    for (std::size_t r = 0; r < grid.geom_dim_; ++r) {
      std::copy(basis.Row(r).begin(), basis.Row(r).end(),
                projection.Row(r).begin());
    }
    grid.proj_points_.resize(grid.n_ * grid.geom_dim_);
    projection.MultiplyAll(grid.data_, grid.n_, grid.proj_points_, pool);
    MakeResiduals(grid.data_.data(), grid.proj_points_.data(), grid.n_,
                  grid.dim_, grid.geom_dim_, grid.res_lo_, grid.res_hi_);
    // Projected coordinates are signed; anchor each axis at its data minimum
    // and size cells from the widest axis extent so the grid covers the data.
    grid.geom_origin_.assign(grid.geom_dim_, 0.0);
    std::vector<double> axis_max(grid.geom_dim_,
                                 -std::numeric_limits<double>::infinity());
    for (std::size_t a = 0; a < grid.geom_dim_; ++a) {
      grid.geom_origin_[a] = std::numeric_limits<double>::infinity();
    }
    for (std::size_t i = 0; i < grid.n_; ++i) {
      const double* row = grid.proj_points_.data() + i * grid.geom_dim_;
      for (std::size_t a = 0; a < grid.geom_dim_; ++a) {
        grid.geom_origin_[a] = std::min(grid.geom_origin_[a], row[a]);
        axis_max[a] = std::max(axis_max[a], row[a]);
      }
    }
    double extent = 0.0;
    for (std::size_t a = 0; a < grid.geom_dim_; ++a) {
      extent = std::max(extent, axis_max[a] - grid.geom_origin_[a]);
    }
    grid.cells_per_axis_ =
        ChooseCellsPerAxis(grid.n_, grid.geom_dim_, expected_neighbors);
    grid.cell_size_ =
        extent > 0.0 ? extent / static_cast<double>(grid.cells_per_axis_)
                     : 1.0;
  } else {
    grid.geom_dim_ = grid.dim_;
    grid.geom_origin_.assign(grid.geom_dim_, 0.0);
    grid.cells_per_axis_ =
        ChooseCellsPerAxis(grid.n_, grid.dim_, expected_neighbors);
    grid.cell_size_ =
        domain.axis_length() / static_cast<double>(grid.cells_per_axis_);
  }

  // Counting sort of the point ids by cell id; ascending index within a
  // cell. Segments are laid out back to back with zero slack (cap == count),
  // byte-identical to the classic prefix-sum CSR layout; Append() grows
  // capacities on demand.
  const std::size_t total_cells =
      SaturatingCellCount(grid.cells_per_axis_, grid.geom_dim_);
  grid.cell_of_.resize(grid.n_);
  std::vector<std::uint64_t> starts(total_cells + 1, 0);
  for (std::size_t i = 0; i < grid.n_; ++i) {
    grid.cell_of_[i] = grid.CellOf(grid.GeomRow(i));
    ++starts[grid.cell_of_[i] + 1];
  }
  for (std::size_t c = 0; c < total_cells; ++c) {
    starts[c + 1] += starts[c];
    if (starts[c + 1] > starts[c]) {
      grid.occupied_.push_back(c);
    }
  }
  grid.live_occupied_ = grid.occupied_.size();
  grid.seg_start_.assign(starts.begin(), starts.end() - 1);
  grid.seg_end_.assign(starts.begin() + 1, starts.end());
  grid.seg_cap_.resize(total_cells);
  for (std::size_t c = 0; c < total_cells; ++c) {
    grid.seg_cap_[c] = grid.seg_end_[c] - grid.seg_start_[c];
  }
  grid.cell_end_ = grid.seg_end_;
  grid.cell_points_.resize(grid.n_);
  grid.pos_.resize(grid.n_);
  std::vector<std::uint64_t> cursor(starts.begin(), starts.end() - 1);
  for (std::size_t i = 0; i < grid.n_; ++i) {
    const std::uint64_t at = cursor[grid.cell_of_[i]]++;
    grid.cell_points_[at] = static_cast<std::uint32_t>(i);
    grid.pos_[i] = static_cast<std::uint32_t>(at);
  }
  return grid;
}

void SpatialGrid::Remove(std::size_t point) {
  DPC_CHECK_LT(point, n_);
  const std::uint64_t cell = cell_of_[point];
  const std::uint32_t at = pos_[point];
  DPC_CHECK_LT(at, cell_end_[cell]);  // Must still be live.
  const std::uint64_t last = cell_end_[cell] - 1;
  const std::uint32_t moved = cell_points_[last];
  // Swap into the dead suffix; the dead point stays parked in its segment so
  // ResetActive can revive it without re-indexing.
  cell_points_[at] = moved;
  pos_[moved] = at;
  cell_points_[last] = static_cast<std::uint32_t>(point);
  pos_[point] = static_cast<std::uint32_t>(last);
  --cell_end_[cell];
  --live_;
  if (cell_end_[cell] == seg_start_[cell]) --live_occupied_;
}

void SpatialGrid::ResetActive(std::span<const std::uint8_t> active) {
  DPC_CHECK_EQ(active.size(), n_);
  live_ = 0;
  live_occupied_ = 0;
  for (const std::uint64_t cell : occupied_) {
    const std::uint64_t lo = seg_start_[cell];
    const std::uint64_t hi = seg_end_[cell];
    std::uint64_t w = lo;
    for (std::uint64_t p = lo; p < hi; ++p) {
      const std::uint32_t id = cell_points_[p];
      if (active[id]) {
        std::swap(cell_points_[p], cell_points_[w]);
        ++w;
      }
    }
    for (std::uint64_t p = lo; p < hi; ++p) {
      pos_[cell_points_[p]] = static_cast<std::uint32_t>(p);
    }
    cell_end_[cell] = w;
    live_ += w - lo;
    if (w > lo) ++live_occupied_;
  }
}

bool SpatialGrid::Append(std::span<const double> all_data) {
  if (geometry_ == IndexGeometry::kProjected) return false;
  DPC_CHECK_EQ(all_data.size(), (n_ + 1) * dim_);
  // PointSet::Add may have reallocated the storage the grid borrows.
  data_ = all_data;
  const std::size_t id = n_;
  const std::uint64_t cell = CellOf(GeomRow(id));

  if (seg_end_[cell] - seg_start_[cell] == seg_cap_[cell]) {
    // Full segment: relocate the whole used range (live prefix + dead
    // suffix, order preserved) to the arena's end with doubled capacity. The
    // old slots become unreferenced holes; Compact()/rebuild reclaims them.
    const std::uint64_t used = seg_end_[cell] - seg_start_[cell];
    const std::uint64_t live_len = cell_end_[cell] - seg_start_[cell];
    const std::uint64_t new_cap = std::max<std::uint64_t>(2 * seg_cap_[cell], 4);
    const std::uint64_t new_start = cell_points_.size();
    cell_points_.resize(new_start + new_cap);
    for (std::uint64_t i = 0; i < used; ++i) {
      const std::uint32_t moved = cell_points_[seg_start_[cell] + i];
      cell_points_[new_start + i] = moved;
      pos_[moved] = static_cast<std::uint32_t>(new_start + i);
    }
    seg_start_[cell] = new_start;
    seg_end_[cell] = new_start + used;
    seg_cap_[cell] = new_cap;
    cell_end_[cell] = new_start + live_len;
  }

  // Place the new id at the live-prefix boundary; the dead point previously
  // holding that slot (if any) moves to the segment's used end.
  const std::uint64_t boundary = cell_end_[cell];
  if (boundary < seg_end_[cell]) {
    const std::uint32_t dead = cell_points_[boundary];
    cell_points_[seg_end_[cell]] = dead;
    pos_[dead] = static_cast<std::uint32_t>(seg_end_[cell]);
  }
  cell_points_[boundary] = static_cast<std::uint32_t>(id);
  cell_of_.push_back(cell);
  pos_.push_back(static_cast<std::uint32_t>(boundary));
  if (cell_end_[cell] == seg_start_[cell]) ++live_occupied_;
  ++cell_end_[cell];
  ++seg_end_[cell];
  ++n_;
  ++live_;
  const auto it = std::lower_bound(occupied_.begin(), occupied_.end(), cell);
  if (it == occupied_.end() || *it != cell) occupied_.insert(it, cell);
  return true;
}

std::uint64_t SpatialGrid::CellOf(const double* p) const {
  const auto m = static_cast<std::int64_t>(cells_per_axis_);
  std::uint64_t id = 0;
  for (std::size_t a = 0; a < geom_dim_; ++a) {
    auto c = static_cast<std::int64_t>(
        std::floor((p[a] - geom_origin_[a]) / cell_size_));
    c = std::clamp<std::int64_t>(c, 0, m - 1);
    id = id * static_cast<std::uint64_t>(m) + static_cast<std::uint64_t>(c);
  }
  return id;
}

void SpatialGrid::ScanCell(std::uint64_t cell,
                           std::span<const double> q,
                           std::vector<double>& cands) const {
  const double* base = data_.data();
  const double* qp = q.data();
  const std::uint64_t lo = seg_start_[cell];
  const std::uint64_t hi = cell_end_[cell];  // Live prefix only.
  std::size_t at_out = cands.size();
  cands.resize(at_out + (hi - lo));
  double* out = cands.data();
  std::uint64_t at = lo;
  // d < 4: SquaredDistanceRows reduces to the plain in-order sum, whose
  // serial add dependency these four cross-point chains hide (each chain is
  // that exact in-order sum, so the values still match vector_ops). At d >= 4
  // the kernel's own four in-row lanes provide the ILP instead.
  if (dim_ < 4) {
    for (; at + 4 <= hi; at += 4, at_out += 4) {
      const double* x0 = base + cell_points_[at] * dim_;
      const double* x1 = base + cell_points_[at + 1] * dim_;
      const double* x2 = base + cell_points_[at + 2] * dim_;
      const double* x3 = base + cell_points_[at + 3] * dim_;
      double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
      for (std::size_t c = 0; c < dim_; ++c) {
        const double qc = qp[c];
        const double d0 = x0[c] - qc;
        const double d1 = x1[c] - qc;
        const double d2 = x2[c] - qc;
        const double d3 = x3[c] - qc;
        s0 += d0 * d0;
        s1 += d1 * d1;
        s2 += d2 * d2;
        s3 += d3 * d3;
      }
      out[at_out] = s0;
      out[at_out + 1] = s1;
      out[at_out + 2] = s2;
      out[at_out + 3] = s3;
    }
  }
  for (; at < hi; ++at, ++at_out) {
    out[at_out] =
        RowSquaredDistance(qp, base + cell_points_[at] * dim_, dim_);
  }
}

void SpatialGrid::ScanCellProjectedKnn(std::uint64_t cell, std::size_t query,
                                       std::size_t select_k,
                                       Workspace& scratch,
                                       double& bound_sq) const {
  const double* base = data_.data();
  const double* pbase = proj_points_.data();
  const double* qp = base + query * dim_;
  const double* qproj = pbase + query * geom_dim_;
  const double q_lo = res_lo_[query];
  const double q_hi = res_hi_[query];
  std::vector<double>& cands = scratch.candidates;
  // Past this size, re-select to tighten the bound mid-scan: SelectSmallest
  // keeps exactly the select_k smallest exact values, and a candidate whose
  // lower bound beats the running k-th can never re-enter the answer — so the
  // final multiset is untouched while a degenerate one-cell grid stops paying
  // the exact d-dim distance for every point.
  const std::size_t reselect_at =
      select_k + std::max<std::size_t>(select_k, 256);
  const std::uint64_t hi = cell_end_[cell];
  for (std::uint64_t at = seg_start_[cell]; at < hi; ++at) {
    const std::uint32_t id = cell_points_[at];
    const double proj_sq =
        RowSquaredDistance(qproj, pbase + id * geom_dim_, geom_dim_);
    const double diff = std::max(
        std::max(res_lo_[id] - q_hi, q_lo - res_hi_[id]), 0.0);
    const double lb = (proj_sq + diff * diff) * kLowerBoundHaircut;
    if (lb > bound_sq) continue;
    cands.push_back(RowSquaredDistance(qp, base + id * dim_, dim_));
    if (cands.size() >= reselect_at) {
      SelectSmallest(cands, select_k, scratch);
      bound_sq = std::min(bound_sq,
                          *std::max_element(cands.begin(), cands.end()));
    }
  }
}

void SpatialGrid::ScanCellProjectedCount(std::uint64_t cell, std::size_t query,
                                         double bound_sq,
                                         std::vector<double>& cands) const {
  const double* base = data_.data();
  const double* pbase = proj_points_.data();
  const double* qp = base + query * dim_;
  const double* qproj = pbase + query * geom_dim_;
  const double q_lo = res_lo_[query];
  const double q_hi = res_hi_[query];
  const std::uint64_t hi = cell_end_[cell];
  for (std::uint64_t at = seg_start_[cell]; at < hi; ++at) {
    const std::uint32_t id = cell_points_[at];
    const double proj_sq =
        RowSquaredDistance(qproj, pbase + id * geom_dim_, geom_dim_);
    const double diff = std::max(
        std::max(res_lo_[id] - q_hi, q_lo - res_hi_[id]), 0.0);
    const double lb = (proj_sq + diff * diff) * kLowerBoundHaircut;
    if (lb > bound_sq) continue;
    cands.push_back(RowSquaredDistance(qp, base + id * dim_, dim_));
  }
}

std::size_t SpatialGrid::DecodeCenter(const double* q,
                                      Workspace& scratch) const {
  const auto m = static_cast<std::int64_t>(cells_per_axis_);
  std::vector<std::int64_t>& center = scratch.center;
  center.assign(geom_dim_, 0);
  std::uint64_t id = CellOf(q);
  for (std::size_t a = geom_dim_; a-- > 0;) {
    center[a] = static_cast<std::int64_t>(id % static_cast<std::uint64_t>(m));
    id /= static_cast<std::uint64_t>(m);
  }
  // After ring max_rho the whole grid has been scanned.
  std::size_t max_rho = 0;
  for (std::size_t a = 0; a < geom_dim_; ++a) {
    max_rho = std::max<std::size_t>(
        max_rho,
        static_cast<std::size_t>(std::max(center[a], m - 1 - center[a])));
  }
  return max_rho;
}

void SpatialGrid::KnnDistances(std::size_t query, std::size_t k,
                               Workspace& scratch, std::vector<double>& out,
                               bool sorted) const {
  DPC_CHECK_LT(query, n_);
  DPC_CHECK(IsLive(query));
  out.clear();
  k = std::min(k, live_ - 1);
  if (k == 0) return;

  const bool projected = geometry_ == IndexGeometry::kProjected;
  const std::span<const double> q{data_.data() + query * dim_, dim_};
  const auto m = static_cast<std::int64_t>(cells_per_axis_);
  const std::uint64_t center_cell = CellOf(GeomRow(query));
  const std::size_t max_rho = DecodeCenter(GeomRow(query), scratch);
  std::vector<std::int64_t>& center = scratch.center;

  std::vector<double>& cands = scratch.candidates;
  cands.clear();

  // Projected-mode rejection bound: the current k-th smallest exact squared
  // distance, tightened by every selection below. +inf until one exists.
  double bound_sq = std::numeric_limits<double>::infinity();
  // Scans one cell: the exact kernel, or the projected candidate filter.
  // `select_k` is k + 1 while the query's own +0.0 entry is still in the
  // candidate pool (ring 0), so mid-scan selections never squeeze out the
  // k-th true neighbor; k afterwards.
  std::size_t select_k = k + 1;
  const auto scan = [&](std::uint64_t cell) {
    if (projected) {
      ScanCellProjectedKnn(cell, query, select_k, scratch, bound_sq);
    } else {
      ScanCell(cell, q, cands);
    }
  };

  // Ring 0 is the only cell that contains the query itself. Scan it with the
  // same branch-free kernel as every other cell — the self-distance comes out
  // as exactly +0.0 (x - x is +0.0 per coordinate) — then drop one 0.0 entry.
  // Duplicate points also land on exactly +0.0, so removing any one leaves
  // the brute-force multiset (self excluded by index) unchanged. (The
  // projected filter never rejects the self row: its lower bound is +0.0.)
  {
    scan(center_cell);
    const auto self = std::find(cands.begin(), cands.end(), 0.0);
    DPC_CHECK(self != cands.end());
    *self = cands.back();
    cands.pop_back();
    select_k = k;
  }

  // Visits every in-bounds cell at Chebyshev offset exactly rho from center.
  // `attained` tracks whether an earlier axis already contributes |off| = rho;
  // the last axis is restricted to +-rho when none has.
  auto visit_ring = [&](auto&& self, std::size_t axis, bool attained,
                        std::uint64_t partial, std::int64_t rho) -> void {
    if (axis == geom_dim_) {
      scan(partial);
      return;
    }
    const std::int64_t lo = std::max<std::int64_t>(center[axis] - rho, 0);
    const std::int64_t hi = std::min<std::int64_t>(center[axis] + rho, m - 1);
    for (std::int64_t c = lo; c <= hi; ++c) {
      const bool at_rho = std::llabs(c - center[axis]) == rho;
      if (axis + 1 == geom_dim_ && !attained && !at_rho) continue;
      self(self, axis + 1, attained || at_rho,
           partial * static_cast<std::uint64_t>(m) +
               static_cast<std::uint64_t>(c),
           rho);
    }
  };

  // The ring guarantee: rings 0..rho cover every point within Euclidean
  // distance rho * cell_size of the query (an unscanned cell is more than
  // rho cells away on some axis). The 1e-9 haircut absorbs the float
  // rounding of the cell assignment and of rho * cell_size itself, so the
  // early stop can never exclude a point that brute force would return
  // (equal-distance ties beyond the boundary leave the k smallest values
  // unchanged either way). In projected mode rings live in projected space,
  // where distances only shrink (orthonormal rows), so covering projected
  // radius rho * cell_size covers at least that exact radius too and the
  // same stop test stays valid against the exact k-th candidate.
  for (std::size_t rho = 0; rho < max_rho;) {
    if (cands.size() >= k) {
      // Keep only the k best so far: rejected candidates can never re-enter
      // (later rings only push the k-th down), so each ring's selection also
      // shrinks every later ring's work.
      SelectSmallest(cands, k, scratch);
      const double kth = *std::max_element(cands.begin(), cands.end());
      bound_sq = std::min(bound_sq, kth);
      const double guarantee =
          static_cast<double>(rho) * cell_size_ * (1.0 - 1e-9);
      if (kth <= guarantee * guarantee) break;
    }
    // Ring enumeration visits ~(2 rho + 3)^d - (2 rho + 1)^d cells next; once
    // that passes the live occupied-cell count, finishing with one scan over
    // the remaining occupied cells is strictly cheaper and completes coverage.
    const double next_ring_cells =
        std::pow(2.0 * static_cast<double>(rho) + 3.0,
                 static_cast<double>(geom_dim_)) -
        std::pow(2.0 * static_cast<double>(rho) + 1.0,
                 static_cast<double>(geom_dim_));
    if (next_ring_cells > static_cast<double>(live_occupied_)) {
      for (const std::uint64_t cell : occupied_) {
        if (cell_end_[cell] == seg_start_[cell]) continue;  // Fully removed.
        std::uint64_t id = cell;
        std::size_t chebyshev = 0;
        for (std::size_t a = geom_dim_; a-- > 0;) {
          const auto c = static_cast<std::int64_t>(
              id % static_cast<std::uint64_t>(m));
          id /= static_cast<std::uint64_t>(m);
          chebyshev = std::max<std::size_t>(
              chebyshev,
              static_cast<std::size_t>(std::llabs(c - center[a])));
        }
        if (chebyshev > rho) scan(cell);
      }
      break;
    }
    ++rho;
    visit_ring(visit_ring, 0, false, 0, static_cast<std::int64_t>(rho));
  }
  DPC_CHECK_GE(cands.size(), k);

  SelectSmallest(cands, k, scratch);
  if (sorted) std::sort(cands.begin(), cands.end());
  out.resize(k);
  for (std::size_t i = 0; i < k; ++i) out[i] = std::sqrt(cands[i]);
}

void SpatialGrid::DenseKnnChunk(const std::uint32_t* queries, std::size_t nq,
                                std::size_t k, double* out, bool sorted,
                                Workspace& scratch) const {
  const std::uint64_t start = seg_start_[0];
  const std::uint64_t live = cell_end_[0] - start;
  std::vector<double>& block = scratch.dense_block;
  block.resize(nq * live);
  // Point tiles sized to sit in L2 across the chunk's query passes: the tile
  // is read nq times from cache while the full dataset streams from memory
  // only once per chunk. Rows are indexed by live-prefix position, so reading
  // a row left to right reproduces ScanCell's cell_points_ append order.
  constexpr std::uint64_t kPointTile = 256;
  for (std::uint64_t p0 = 0; p0 < live; p0 += kPointTile) {
    const std::uint64_t p1 = std::min(p0 + kPointTile, live);
    for (std::size_t qi = 0; qi < nq; ++qi) {
      const double* qp = data_.data() + queries[qi] * dim_;
      double* row = block.data() + qi * live;
      for (std::uint64_t at = p0; at < p1; ++at) {
        row[at] = RowSquaredDistance(
            qp, data_.data() + cell_points_[start + at] * dim_, dim_);
      }
    }
  }
  std::vector<double>& cands = scratch.candidates;
  for (std::size_t qi = 0; qi < nq; ++qi) {
    const double* row = block.data() + qi * live;
    cands.assign(row, row + live);
    // Drop one exact +0.0 entry — the query's self pair — the same way
    // KnnDistances does after its ring-0 scan.
    const auto self = std::find(cands.begin(), cands.end(), 0.0);
    DPC_CHECK(self != cands.end());
    *self = cands.back();
    cands.pop_back();
    SelectSmallest(cands, k, scratch);
    if (sorted) std::sort(cands.begin(), cands.end());
    double* dst = out + qi * k;
    for (std::size_t i = 0; i < k; ++i) dst[i] = std::sqrt(cands[i]);
  }
}

void SpatialGrid::BatchKnnDistances(std::size_t k, std::span<double> out,
                                    ThreadPool* pool, bool sorted) const {
  DPC_CHECK_EQ(live_, n_);
  DPC_CHECK_LE(k, n_ - 1);
  DPC_CHECK_EQ(out.size(), n_ * k);
  if (k == 0) return;
  constexpr std::size_t kQueryGrain = 16;
  const bool dense = geometry_ == IndexGeometry::kExact && cells_per_axis_ == 1;
  ParallelForChunks(
      pool, 0, n_, kQueryGrain,
      [&](std::size_t lo, std::size_t hi, std::size_t) {
        Workspace scratch;
        if (dense) {
          std::vector<std::uint32_t> ids(hi - lo);
          for (std::size_t i = lo; i < hi; ++i) {
            ids[i - lo] = static_cast<std::uint32_t>(i);
          }
          DenseKnnChunk(ids.data(), ids.size(), k, out.data() + lo * k, sorted,
                        scratch);
          return;
        }
        std::vector<double> row;
        for (std::size_t i = lo; i < hi; ++i) {
          KnnDistances(i, k, scratch, row, sorted);
          std::copy(row.begin(), row.end(), out.begin() + i * k);
        }
      },
      kAlwaysParallel);
}

void SpatialGrid::BatchKnnDistancesFor(std::span<const std::uint32_t> queries,
                                       std::size_t k, std::span<double> out,
                                       ThreadPool* pool, bool sorted) const {
  DPC_CHECK_GE(live_, 1u);
  DPC_CHECK_LE(k, live_ - 1);
  DPC_CHECK_EQ(out.size(), queries.size() * k);
  if (k == 0 || queries.empty()) return;
  constexpr std::size_t kQueryGrain = 16;
  const bool dense = geometry_ == IndexGeometry::kExact && cells_per_axis_ == 1;
  ParallelForChunks(
      pool, 0, queries.size(), kQueryGrain,
      [&](std::size_t lo, std::size_t hi, std::size_t) {
        Workspace scratch;
        if (dense) {
          DenseKnnChunk(queries.data() + lo, hi - lo, k, out.data() + lo * k,
                        sorted, scratch);
          return;
        }
        std::vector<double> row;
        for (std::size_t r = lo; r < hi; ++r) {
          KnnDistances(queries[r], k, scratch, row, sorted);
          std::copy(row.begin(), row.end(), out.begin() + r * k);
        }
      },
      kAlwaysParallel);
}

std::size_t SpatialGrid::CountWithin(std::size_t query, double r,
                                     Workspace& scratch) const {
  DPC_CHECK_LT(query, n_);
  DPC_CHECK(IsLive(query));
  if (r < 0.0) return 0;

  const bool projected = geometry_ == IndexGeometry::kProjected;
  const std::span<const double> q{data_.data() + query * dim_, dim_};
  const auto m = static_cast<std::int64_t>(cells_per_axis_);
  const std::size_t max_rho = DecodeCenter(GeomRow(query), scratch);
  std::vector<std::int64_t>& center = scratch.center;
  std::vector<double>& cands = scratch.candidates;
  cands.clear();

  // Projected-mode rejection bound: a candidate whose certified lower bound
  // exceeds r^2 (inflated to cover the haircut) is strictly outside r, so
  // skipping its exact distance cannot change the count.
  const double reject_sq = r * r * (1.0 + 1e-9);
  const auto scan = [&](std::uint64_t cell) {
    if (projected) {
      ScanCellProjectedCount(cell, query, reject_sq, cands);
    } else {
      ScanCell(cell, q, cands);
    }
  };

  // Rings 0..rho cover every point within rho * cell_size (see KnnDistances);
  // the 1e-9 margin mirrors the k-NN early stop's haircut so cell-assignment
  // rounding can never exclude a point at distance exactly r.
  const double cells_needed = r / (cell_size_ * (1.0 - 1e-9));
  std::size_t rho_needed = max_rho;
  if (cells_needed < static_cast<double>(max_rho)) {
    rho_needed = static_cast<std::size_t>(std::ceil(cells_needed));
  }

  // Enumerating the Chebyshev box of radius rho_needed touches
  // (2 rho + 1)^d cells; past the live occupancy, scanning every occupied
  // cell is cheaper and trivially complete.
  const double box_cells =
      std::pow(2.0 * static_cast<double>(rho_needed) + 1.0,
               static_cast<double>(geom_dim_));
  if (box_cells > static_cast<double>(live_occupied_)) {
    for (const std::uint64_t cell : occupied_) {
      if (cell_end_[cell] == seg_start_[cell]) continue;
      scan(cell);
    }
  } else {
    // Visits every in-bounds cell within Chebyshev distance rho_needed.
    auto visit_box = [&](auto&& self, std::size_t axis,
                         std::uint64_t partial) -> void {
      if (axis == geom_dim_) {
        if (cell_end_[partial] > seg_start_[partial]) {
          scan(partial);
        }
        return;
      }
      const auto rho = static_cast<std::int64_t>(rho_needed);
      const std::int64_t lo = std::max<std::int64_t>(center[axis] - rho, 0);
      const std::int64_t hi =
          std::min<std::int64_t>(center[axis] + rho, m - 1);
      for (std::int64_t c = lo; c <= hi; ++c) {
        self(self, axis + 1,
             partial * static_cast<std::uint64_t>(m) +
                 static_cast<std::uint64_t>(c));
      }
    };
    visit_box(visit_box, 0, 0);
  }

  std::size_t count = 0;
  for (const double sq : cands) {
    if (std::sqrt(sq) <= r) ++count;
  }
  return count;
}

void SpatialGrid::CollectWithin(std::size_t query, double r,
                                Workspace& scratch,
                                std::vector<std::uint32_t>& out) const {
  DPC_CHECK_LT(query, n_);
  DPC_CHECK(IsLive(query));
  if (r < 0.0) return;

  const double* base = data_.data();
  const double* qp = base + query * dim_;
  const auto m = static_cast<std::int64_t>(cells_per_axis_);
  const std::size_t max_rho = DecodeCenter(GeomRow(query), scratch);
  std::vector<std::int64_t>& center = scratch.center;

  // Every candidate pays the exact original-space distance (no projected
  // lower-bound filter: the callers re-check candidates anyway, and the exact
  // predicate keeps the result identical across geometries).
  const auto scan = [&](std::uint64_t cell) {
    const std::uint64_t hi = cell_end_[cell];
    for (std::uint64_t at = seg_start_[cell]; at < hi; ++at) {
      const std::uint32_t id = cell_points_[at];
      const double sq = RowSquaredDistance(qp, base + id * dim_, dim_);
      if (std::sqrt(sq) <= r) out.push_back(id);
    }
  };

  // Same covering-box argument as CountWithin: rings 0..rho reach every point
  // within rho * cell_size, with the 1e-9 haircut absorbing cell-assignment
  // rounding at distance exactly r.
  const double cells_needed = r / (cell_size_ * (1.0 - 1e-9));
  std::size_t rho_needed = max_rho;
  if (cells_needed < static_cast<double>(max_rho)) {
    rho_needed = static_cast<std::size_t>(std::ceil(cells_needed));
  }

  const double box_cells =
      std::pow(2.0 * static_cast<double>(rho_needed) + 1.0,
               static_cast<double>(geom_dim_));
  if (box_cells > static_cast<double>(live_occupied_)) {
    for (const std::uint64_t cell : occupied_) {
      if (cell_end_[cell] == seg_start_[cell]) continue;
      scan(cell);
    }
  } else {
    auto visit_box = [&](auto&& self, std::size_t axis,
                         std::uint64_t partial) -> void {
      if (axis == geom_dim_) {
        if (cell_end_[partial] > seg_start_[partial]) {
          scan(partial);
        }
        return;
      }
      const auto rho = static_cast<std::int64_t>(rho_needed);
      const std::int64_t lo = std::max<std::int64_t>(center[axis] - rho, 0);
      const std::int64_t hi =
          std::min<std::int64_t>(center[axis] + rho, m - 1);
      for (std::int64_t c = lo; c <= hi; ++c) {
        self(self, axis + 1,
             partial * static_cast<std::uint64_t>(m) +
                 static_cast<std::uint64_t>(c));
      }
    };
    visit_box(visit_box, 0, 0);
  }
}

void SpatialGrid::CollectWithinPoint(std::span<const double> p, double r,
                                     Workspace& scratch,
                                     std::vector<std::uint32_t>& out) const {
  DPC_CHECK_EQ(p.size(), dim_);
  if (r < 0.0) return;

  const double* base = data_.data();
  const double* qp = p.data();
  const auto scan = [&](std::uint64_t cell) {
    const std::uint64_t hi = cell_end_[cell];
    for (std::uint64_t at = seg_start_[cell]; at < hi; ++at) {
      const std::uint32_t id = cell_points_[at];
      const double sq = RowSquaredDistance(qp, base + id * dim_, dim_);
      if (std::sqrt(sq) <= r) out.push_back(id);
    }
  };

  // Projected grids cannot place an arbitrary original-space row into a cell
  // without re-projecting it; a full occupied scan is exact and the caller
  // (KnnCappedCounts maintenance) already treats this as the slow path.
  if (geometry_ == IndexGeometry::kProjected) {
    for (const std::uint64_t cell : occupied_) {
      if (cell_end_[cell] == seg_start_[cell]) continue;
      scan(cell);
    }
    return;
  }

  const auto m = static_cast<std::int64_t>(cells_per_axis_);
  const std::size_t max_rho = DecodeCenter(qp, scratch);
  std::vector<std::int64_t>& center = scratch.center;

  // Same covering-box argument as CollectWithin. CellOf clamps out-of-cube
  // coordinates onto the boundary cell, which only widens the box — the
  // predicate itself is always the exact distance.
  const double cells_needed = r / (cell_size_ * (1.0 - 1e-9));
  std::size_t rho_needed = max_rho;
  if (cells_needed < static_cast<double>(max_rho)) {
    rho_needed = static_cast<std::size_t>(std::ceil(cells_needed));
  }

  const double box_cells =
      std::pow(2.0 * static_cast<double>(rho_needed) + 1.0,
               static_cast<double>(geom_dim_));
  if (box_cells > static_cast<double>(live_occupied_)) {
    for (const std::uint64_t cell : occupied_) {
      if (cell_end_[cell] == seg_start_[cell]) continue;
      scan(cell);
    }
  } else {
    auto visit_box = [&](auto&& self, std::size_t axis,
                         std::uint64_t partial) -> void {
      if (axis == geom_dim_) {
        if (cell_end_[partial] > seg_start_[partial]) {
          scan(partial);
        }
        return;
      }
      const auto rho = static_cast<std::int64_t>(rho_needed);
      const std::int64_t lo = std::max<std::int64_t>(center[axis] - rho, 0);
      const std::int64_t hi =
          std::min<std::int64_t>(center[axis] + rho, m - 1);
      for (std::int64_t c = lo; c <= hi; ++c) {
        self(self, axis + 1,
             partial * static_cast<std::uint64_t>(m) +
                 static_cast<std::uint64_t>(c));
      }
    };
    visit_box(visit_box, 0, 0);
  }
}

void SpatialGrid::BatchCountWithin(std::span<const std::uint32_t> queries,
                                   double r, std::span<std::size_t> out,
                                   ThreadPool* pool) const {
  DPC_CHECK_EQ(out.size(), queries.size());
  constexpr std::size_t kQueryGrain = 16;
  ParallelForChunks(
      pool, 0, queries.size(), kQueryGrain,
      [&](std::size_t lo, std::size_t hi, std::size_t) {
        Workspace scratch;
        for (std::size_t i = lo; i < hi; ++i) {
          out[i] = CountWithin(queries[i], r, scratch);
        }
      },
      kAlwaysParallel);
}

}  // namespace dpcluster
