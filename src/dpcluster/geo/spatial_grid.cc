#include "dpcluster/geo/spatial_grid.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>

#include "dpcluster/common/check.h"
#include "dpcluster/parallel/parallel_for.h"

namespace dpcluster {
namespace {

// Hard caps on the cell table: cells are dense (CSR offsets), so the table is
// bounded independently of the data distribution. ~2M cells = 16 MB offsets.
constexpr std::size_t kMaxCellsPerAxis = 1024;
constexpr std::size_t kMaxTotalCells = std::size_t{1} << 21;

// m^d with saturation at kMaxTotalCells + 1.
std::size_t SaturatingCellCount(std::size_t m, std::size_t d) {
  std::size_t total = 1;
  for (std::size_t a = 0; a < d; ++a) {
    if (total > kMaxTotalCells / m + 1) return kMaxTotalCells + 1;
    total *= m;
  }
  return total;
}

// Cells per axis sized so a cell holds ~k/4 points of a uniform spread: few
// enough rings reach k candidates fast, coarse enough that ring enumeration
// does not dwarf the point scans. Bounded so the dense cell table stays small;
// m == 1 (always at high d) degrades every query to one full scan, which is
// the right call there — rings grow as 3^d while occupancy is capped by n.
std::size_t ChooseCellsPerAxis(std::size_t n, std::size_t d, std::size_t k) {
  const double occupancy =
      std::clamp(static_cast<double>(std::max<std::size_t>(k, 1)) / 4.0, 1.0,
                 512.0);
  const double target_cells =
      std::max(1.0, static_cast<double>(n) / occupancy);
  auto m = static_cast<std::size_t>(
      std::floor(std::pow(target_cells, 1.0 / static_cast<double>(d))));
  m = std::clamp<std::size_t>(m, 1, kMaxCellsPerAxis);
  while (m > 1 && SaturatingCellCount(m, d) > kMaxTotalCells) --m;
  return m;
}

// ||x - y||^2 over raw rows, accumulated in coordinate order — the same
// sums as la/vector_ops' SquaredDistance, so sqrt() of the result is
// bit-identical to Distance() on the same pair.
inline double RowSquaredDistance(const double* x, const double* y,
                                 std::size_t d) {
  double s = 0.0;
  for (std::size_t c = 0; c < d; ++c) {
    const double diff = x[c] - y[c];
    s += diff * diff;
  }
  return s;
}

// Keeps the k smallest of `vals` (non-negative doubles) as its first k
// elements (unordered, exact value multiset) and truncates the rest. One
// histogram pass over the top 16 bits of the order-preserving bit image
// (sign + exponent + 4 mantissa bits: ~16 buckets per binade, so the k-th
// value's tie bucket holds only the candidates within ~6% of it), one
// in-place compaction pass, and an exact nth_element on that small tie
// bucket. The 2^16-entry histogram lives in the workspace and only the
// touched buckets are re-zeroed, so the select is ~2 branch-light linear
// passes — about 6x cheaper than std::nth_element on 4k-candidate sets,
// where introselect's data-dependent pivot branches dominated the batch.
void SelectSmallest(std::vector<double>& vals, std::size_t k,
                    SpatialGrid::Workspace& ws) {
  if (k >= vals.size()) return;
  if (ws.hist16.empty()) ws.hist16.assign(std::size_t{1} << 16, 0);
  for (const double v : vals) {
    const auto key =
        static_cast<std::uint32_t>(std::bit_cast<std::uint64_t>(v) >> 48);
    if (ws.hist16[key]++ == 0) ws.touched.push_back(key);
  }
  std::sort(ws.touched.begin(), ws.touched.end());
  // Bucket kb holds the k-th smallest; every lower bucket is accepted whole.
  std::size_t below = 0;
  std::size_t bi = 0;
  while (below + ws.hist16[ws.touched[bi]] < k) {
    below += ws.hist16[ws.touched[bi++]];
  }
  const std::uint32_t kb = ws.touched[bi];
  for (const std::uint32_t key : ws.touched) ws.hist16[key] = 0;
  ws.touched.clear();

  ws.ties.clear();
  std::size_t out = 0;
  for (const double v : vals) {  // In-place compaction (out <= read index).
    const auto key =
        static_cast<std::uint32_t>(std::bit_cast<std::uint64_t>(v) >> 48);
    if (key < kb) {
      vals[out++] = v;
    } else if (key == kb) {
      ws.ties.push_back(v);
    }
  }
  const std::size_t need = k - below;  // >= 1 by choice of kb.
  std::nth_element(ws.ties.begin(),
                   ws.ties.begin() + static_cast<std::ptrdiff_t>(need - 1),
                   ws.ties.end());
  for (std::size_t i = 0; i < need; ++i) vals[out++] = ws.ties[i];
  vals.resize(k);
  DPC_CHECK_EQ(out, k);
}

}  // namespace

Result<SpatialGrid> SpatialGrid::Build(const PointSet& s,
                                       const GridDomain& domain,
                                       std::size_t expected_neighbors) {
  if (s.empty()) return Status::InvalidArgument("SpatialGrid: empty dataset");
  if (s.dim() != domain.dim()) {
    return Status::InvalidArgument("SpatialGrid: domain dimension mismatch");
  }
  SpatialGrid grid;
  grid.n_ = s.size();
  grid.live_ = grid.n_;
  grid.dim_ = s.dim();
  grid.data_ = s.Data();
  grid.cells_per_axis_ =
      ChooseCellsPerAxis(grid.n_, grid.dim_, expected_neighbors);
  grid.cell_size_ =
      domain.axis_length() / static_cast<double>(grid.cells_per_axis_);

  // Counting sort of the point ids by cell id; ascending index within a cell.
  const std::size_t total_cells =
      SaturatingCellCount(grid.cells_per_axis_, grid.dim_);
  grid.cell_of_.resize(grid.n_);
  grid.cell_start_.assign(total_cells + 1, 0);
  for (std::size_t i = 0; i < grid.n_; ++i) {
    grid.cell_of_[i] = grid.CellOf(s[i]);
    ++grid.cell_start_[grid.cell_of_[i] + 1];
  }
  for (std::size_t c = 0; c < total_cells; ++c) {
    grid.cell_start_[c + 1] += grid.cell_start_[c];
    if (grid.cell_start_[c + 1] > grid.cell_start_[c]) {
      grid.occupied_.push_back(c);
    }
  }
  grid.live_occupied_ = grid.occupied_.size();
  grid.cell_end_.assign(grid.cell_start_.begin() + 1, grid.cell_start_.end());
  grid.cell_points_.resize(grid.n_);
  grid.pos_.resize(grid.n_);
  std::vector<std::uint64_t> cursor(grid.cell_start_.begin(),
                                    grid.cell_start_.end() - 1);
  for (std::size_t i = 0; i < grid.n_; ++i) {
    const std::uint64_t at = cursor[grid.cell_of_[i]]++;
    grid.cell_points_[at] = static_cast<std::uint32_t>(i);
    grid.pos_[i] = static_cast<std::uint32_t>(at);
  }
  return grid;
}

void SpatialGrid::Remove(std::size_t point) {
  DPC_CHECK_LT(point, n_);
  const std::uint64_t cell = cell_of_[point];
  const std::uint32_t at = pos_[point];
  DPC_CHECK_LT(at, cell_end_[cell]);  // Must still be live.
  const std::uint64_t last = cell_end_[cell] - 1;
  const std::uint32_t moved = cell_points_[last];
  // Swap into the dead suffix; the dead point stays parked in its segment so
  // ResetActive can revive it without re-indexing.
  cell_points_[at] = moved;
  pos_[moved] = at;
  cell_points_[last] = static_cast<std::uint32_t>(point);
  pos_[point] = static_cast<std::uint32_t>(last);
  --cell_end_[cell];
  --live_;
  if (cell_end_[cell] == cell_start_[cell]) --live_occupied_;
}

void SpatialGrid::ResetActive(std::span<const std::uint8_t> active) {
  DPC_CHECK_EQ(active.size(), n_);
  live_ = 0;
  live_occupied_ = 0;
  for (const std::uint64_t cell : occupied_) {
    const std::uint64_t lo = cell_start_[cell];
    const std::uint64_t hi = cell_start_[cell + 1];
    std::uint64_t w = lo;
    for (std::uint64_t p = lo; p < hi; ++p) {
      const std::uint32_t id = cell_points_[p];
      if (active[id]) {
        std::swap(cell_points_[p], cell_points_[w]);
        ++w;
      }
    }
    for (std::uint64_t p = lo; p < hi; ++p) {
      pos_[cell_points_[p]] = static_cast<std::uint32_t>(p);
    }
    cell_end_[cell] = w;
    live_ += w - lo;
    if (w > lo) ++live_occupied_;
  }
}

std::uint64_t SpatialGrid::CellOf(std::span<const double> p) const {
  const auto m = static_cast<std::int64_t>(cells_per_axis_);
  std::uint64_t id = 0;
  for (std::size_t a = 0; a < dim_; ++a) {
    auto c = static_cast<std::int64_t>(std::floor(p[a] / cell_size_));
    c = std::clamp<std::int64_t>(c, 0, m - 1);
    id = id * static_cast<std::uint64_t>(m) + static_cast<std::uint64_t>(c);
  }
  return id;
}

void SpatialGrid::ScanCell(std::uint64_t cell,
                           std::span<const double> q,
                           std::vector<double>& cands) const {
  const double* base = data_.data();
  const double* qp = q.data();
  const std::uint64_t lo = cell_start_[cell];
  const std::uint64_t hi = cell_end_[cell];  // Live prefix only.
  std::size_t at_out = cands.size();
  cands.resize(at_out + (hi - lo));
  double* out = cands.data();
  std::uint64_t at = lo;
  // Four independent accumulator chains hide the latency of the dependent
  // in-order sums (which must reproduce vector_ops' SquaredDistance exactly,
  // so no single sum may be reassociated).
  for (; at + 4 <= hi; at += 4, at_out += 4) {
    const double* x0 = base + cell_points_[at] * dim_;
    const double* x1 = base + cell_points_[at + 1] * dim_;
    const double* x2 = base + cell_points_[at + 2] * dim_;
    const double* x3 = base + cell_points_[at + 3] * dim_;
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    for (std::size_t c = 0; c < dim_; ++c) {
      const double qc = qp[c];
      const double d0 = x0[c] - qc;
      const double d1 = x1[c] - qc;
      const double d2 = x2[c] - qc;
      const double d3 = x3[c] - qc;
      s0 += d0 * d0;
      s1 += d1 * d1;
      s2 += d2 * d2;
      s3 += d3 * d3;
    }
    out[at_out] = s0;
    out[at_out + 1] = s1;
    out[at_out + 2] = s2;
    out[at_out + 3] = s3;
  }
  for (; at < hi; ++at, ++at_out) {
    out[at_out] =
        RowSquaredDistance(qp, base + cell_points_[at] * dim_, dim_);
  }
}

std::size_t SpatialGrid::DecodeCenter(std::span<const double> q,
                                      Workspace& scratch) const {
  const auto m = static_cast<std::int64_t>(cells_per_axis_);
  std::vector<std::int64_t>& center = scratch.center;
  center.assign(dim_, 0);
  std::uint64_t id = CellOf(q);
  for (std::size_t a = dim_; a-- > 0;) {
    center[a] = static_cast<std::int64_t>(id % static_cast<std::uint64_t>(m));
    id /= static_cast<std::uint64_t>(m);
  }
  // After ring max_rho the whole grid has been scanned.
  std::size_t max_rho = 0;
  for (std::size_t a = 0; a < dim_; ++a) {
    max_rho = std::max<std::size_t>(
        max_rho,
        static_cast<std::size_t>(std::max(center[a], m - 1 - center[a])));
  }
  return max_rho;
}

void SpatialGrid::KnnDistances(std::size_t query, std::size_t k,
                               Workspace& scratch, std::vector<double>& out,
                               bool sorted) const {
  DPC_CHECK_LT(query, n_);
  DPC_CHECK(IsLive(query));
  out.clear();
  k = std::min(k, live_ - 1);
  if (k == 0) return;

  const std::span<const double> q{data_.data() + query * dim_, dim_};
  const auto m = static_cast<std::int64_t>(cells_per_axis_);
  const std::uint64_t center_cell = CellOf(q);
  const std::size_t max_rho = DecodeCenter(q, scratch);
  std::vector<std::int64_t>& center = scratch.center;

  std::vector<double>& cands = scratch.candidates;
  cands.clear();

  // Ring 0 is the only cell that contains the query itself. Scan it with the
  // same branch-free kernel as every other cell — the self-distance comes out
  // as exactly +0.0 (x - x is +0.0 per coordinate) — then drop one 0.0 entry.
  // Duplicate points also land on exactly +0.0, so removing any one leaves
  // the brute-force multiset (self excluded by index) unchanged.
  {
    ScanCell(center_cell, q, cands);
    const auto self = std::find(cands.begin(), cands.end(), 0.0);
    DPC_CHECK(self != cands.end());
    *self = cands.back();
    cands.pop_back();
  }

  // Visits every in-bounds cell at Chebyshev offset exactly rho from center.
  // `attained` tracks whether an earlier axis already contributes |off| = rho;
  // the last axis is restricted to +-rho when none has.
  auto visit_ring = [&](auto&& self, std::size_t axis, bool attained,
                        std::uint64_t partial, std::int64_t rho) -> void {
    if (axis == dim_) {
      ScanCell(partial, q, cands);
      return;
    }
    const std::int64_t lo = std::max<std::int64_t>(center[axis] - rho, 0);
    const std::int64_t hi = std::min<std::int64_t>(center[axis] + rho, m - 1);
    for (std::int64_t c = lo; c <= hi; ++c) {
      const bool at_rho = std::llabs(c - center[axis]) == rho;
      if (axis + 1 == dim_ && !attained && !at_rho) continue;
      self(self, axis + 1, attained || at_rho,
           partial * static_cast<std::uint64_t>(m) +
               static_cast<std::uint64_t>(c),
           rho);
    }
  };

  // The ring guarantee: rings 0..rho cover every point within Euclidean
  // distance rho * cell_size of the query (an unscanned cell is more than
  // rho cells away on some axis). The 1e-9 haircut absorbs the float
  // rounding of the cell assignment and of rho * cell_size itself, so the
  // early stop can never exclude a point that brute force would return
  // (equal-distance ties beyond the boundary leave the k smallest values
  // unchanged either way).
  for (std::size_t rho = 0; rho < max_rho;) {
    if (cands.size() >= k) {
      // Keep only the k best so far: rejected candidates can never re-enter
      // (later rings only push the k-th down), so each ring's selection also
      // shrinks every later ring's work.
      SelectSmallest(cands, k, scratch);
      const double kth = *std::max_element(cands.begin(), cands.end());
      const double guarantee =
          static_cast<double>(rho) * cell_size_ * (1.0 - 1e-9);
      if (kth <= guarantee * guarantee) break;
    }
    // Ring enumeration visits ~(2 rho + 3)^d - (2 rho + 1)^d cells next; once
    // that passes the live occupied-cell count, finishing with one scan over
    // the remaining occupied cells is strictly cheaper and completes coverage.
    const double next_ring_cells =
        std::pow(2.0 * static_cast<double>(rho) + 3.0,
                 static_cast<double>(dim_)) -
        std::pow(2.0 * static_cast<double>(rho) + 1.0,
                 static_cast<double>(dim_));
    if (next_ring_cells > static_cast<double>(live_occupied_)) {
      for (const std::uint64_t cell : occupied_) {
        if (cell_end_[cell] == cell_start_[cell]) continue;  // Fully removed.
        std::uint64_t id = cell;
        std::size_t chebyshev = 0;
        for (std::size_t a = dim_; a-- > 0;) {
          const auto c = static_cast<std::int64_t>(
              id % static_cast<std::uint64_t>(m));
          id /= static_cast<std::uint64_t>(m);
          chebyshev = std::max<std::size_t>(
              chebyshev,
              static_cast<std::size_t>(std::llabs(c - center[a])));
        }
        if (chebyshev > rho) ScanCell(cell, q, cands);
      }
      break;
    }
    ++rho;
    visit_ring(visit_ring, 0, false, 0, static_cast<std::int64_t>(rho));
  }
  DPC_CHECK_GE(cands.size(), k);

  SelectSmallest(cands, k, scratch);
  if (sorted) std::sort(cands.begin(), cands.end());
  out.resize(k);
  for (std::size_t i = 0; i < k; ++i) out[i] = std::sqrt(cands[i]);
}

void SpatialGrid::BatchKnnDistances(std::size_t k, std::span<double> out,
                                    ThreadPool* pool, bool sorted) const {
  DPC_CHECK_EQ(live_, n_);
  DPC_CHECK_LE(k, n_ - 1);
  DPC_CHECK_EQ(out.size(), n_ * k);
  if (k == 0) return;
  constexpr std::size_t kQueryGrain = 16;
  ParallelForChunks(
      pool, 0, n_, kQueryGrain,
      [&](std::size_t lo, std::size_t hi, std::size_t) {
        Workspace scratch;
        std::vector<double> row;
        for (std::size_t i = lo; i < hi; ++i) {
          KnnDistances(i, k, scratch, row, sorted);
          std::copy(row.begin(), row.end(), out.begin() + i * k);
        }
      },
      kAlwaysParallel);
}

void SpatialGrid::BatchKnnDistancesFor(std::span<const std::uint32_t> queries,
                                       std::size_t k, std::span<double> out,
                                       ThreadPool* pool, bool sorted) const {
  DPC_CHECK_GE(live_, 1u);
  DPC_CHECK_LE(k, live_ - 1);
  DPC_CHECK_EQ(out.size(), queries.size() * k);
  if (k == 0 || queries.empty()) return;
  constexpr std::size_t kQueryGrain = 16;
  ParallelForChunks(
      pool, 0, queries.size(), kQueryGrain,
      [&](std::size_t lo, std::size_t hi, std::size_t) {
        Workspace scratch;
        std::vector<double> row;
        for (std::size_t r = lo; r < hi; ++r) {
          KnnDistances(queries[r], k, scratch, row, sorted);
          std::copy(row.begin(), row.end(), out.begin() + r * k);
        }
      },
      kAlwaysParallel);
}

std::size_t SpatialGrid::CountWithin(std::size_t query, double r,
                                     Workspace& scratch) const {
  DPC_CHECK_LT(query, n_);
  DPC_CHECK(IsLive(query));
  if (r < 0.0) return 0;

  const std::span<const double> q{data_.data() + query * dim_, dim_};
  const auto m = static_cast<std::int64_t>(cells_per_axis_);
  const std::size_t max_rho = DecodeCenter(q, scratch);
  std::vector<std::int64_t>& center = scratch.center;
  std::vector<double>& cands = scratch.candidates;
  cands.clear();

  // Rings 0..rho cover every point within rho * cell_size (see KnnDistances);
  // the 1e-9 margin mirrors the k-NN early stop's haircut so cell-assignment
  // rounding can never exclude a point at distance exactly r.
  const double cells_needed = r / (cell_size_ * (1.0 - 1e-9));
  std::size_t rho_needed = max_rho;
  if (cells_needed < static_cast<double>(max_rho)) {
    rho_needed = static_cast<std::size_t>(std::ceil(cells_needed));
  }

  // Enumerating the Chebyshev box of radius rho_needed touches
  // (2 rho + 1)^d cells; past the live occupancy, scanning every occupied
  // cell is cheaper and trivially complete.
  const double box_cells = std::pow(
      2.0 * static_cast<double>(rho_needed) + 1.0, static_cast<double>(dim_));
  if (box_cells > static_cast<double>(live_occupied_)) {
    for (const std::uint64_t cell : occupied_) {
      if (cell_end_[cell] == cell_start_[cell]) continue;
      ScanCell(cell, q, cands);
    }
  } else {
    // Visits every in-bounds cell within Chebyshev distance rho_needed.
    auto visit_box = [&](auto&& self, std::size_t axis,
                         std::uint64_t partial) -> void {
      if (axis == dim_) {
        if (cell_end_[partial] > cell_start_[partial]) {
          ScanCell(partial, q, cands);
        }
        return;
      }
      const auto rho = static_cast<std::int64_t>(rho_needed);
      const std::int64_t lo = std::max<std::int64_t>(center[axis] - rho, 0);
      const std::int64_t hi =
          std::min<std::int64_t>(center[axis] + rho, m - 1);
      for (std::int64_t c = lo; c <= hi; ++c) {
        self(self, axis + 1,
             partial * static_cast<std::uint64_t>(m) +
                 static_cast<std::uint64_t>(c));
      }
    };
    visit_box(visit_box, 0, 0);
  }

  std::size_t count = 0;
  for (const double sq : cands) {
    if (std::sqrt(sq) <= r) ++count;
  }
  return count;
}

void SpatialGrid::BatchCountWithin(std::span<const std::uint32_t> queries,
                                   double r, std::span<std::size_t> out,
                                   ThreadPool* pool) const {
  DPC_CHECK_EQ(out.size(), queries.size());
  constexpr std::size_t kQueryGrain = 16;
  ParallelForChunks(
      pool, 0, queries.size(), kQueryGrain,
      [&](std::size_t lo, std::size_t hi, std::size_t) {
        Workspace scratch;
        for (std::size_t i = lo; i < hi; ++i) {
          out[i] = CountWithin(queries[i], r, scratch);
        }
      },
      kAlwaysParallel);
}

}  // namespace dpcluster
