// Scenario-aware Request helpers: turn a generated ScenarioInstance
// (data/scenario.h) into façade Requests, singly or as the full
// algorithm × epsilon grid the evaluation harness sweeps through
// Solver::RunAll.

#ifndef DPCLUSTER_API_SCENARIO_H_
#define DPCLUSTER_API_SCENARIO_H_

#include <span>
#include <string>
#include <vector>

#include "dpcluster/api/request.h"
#include "dpcluster/data/scenario.h"
#include "dpcluster/dp/privacy_params.h"

namespace dpcluster {

/// Builds the Request that asks `algorithm` the 1-cluster question encoded by
/// `instance` (its points, domain, and ground-truth cluster size t). The label
/// is "<scenario>/<algorithm>/eps<epsilon>" so sweep ledgers stay readable.
Request ScenarioRequest(const ScenarioInstance& instance,
                        std::string algorithm, PrivacyParams budget,
                        std::size_t num_threads = 1);

/// The full algorithm × epsilon grid over one instance: every pair shares the
/// instance's data/domain/t and the given delta. Feed to Solver::RunAll; the
/// result order is algorithms-major (all epsilons of algorithms[0] first).
std::vector<Request> ScenarioRequestGrid(const ScenarioInstance& instance,
                                         std::span<const std::string> algorithms,
                                         std::span<const double> epsilons,
                                         double delta,
                                         std::size_t num_threads = 1);

}  // namespace dpcluster

#endif  // DPCLUSTER_API_SCENARIO_H_
