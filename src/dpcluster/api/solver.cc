#include "dpcluster/api/solver.h"

#include <chrono>
#include <cmath>
#include <string>
#include <utility>

#include "dpcluster/workload/metrics.h"

namespace dpcluster {

Solver::Solver(SolverOptions options)
    : options_(options), rng_(options.seed) {}

const AlgorithmRegistry& Solver::registry() const {
  return options_.registry != nullptr ? *options_.registry
                                      : AlgorithmRegistry::Global();
}

Result<Response> Solver::Run(const Request& request) {
  DPC_ASSIGN_OR_RETURN(const Algorithm* algorithm,
                       registry().Lookup(request.algorithm));
  DPC_RETURN_IF_ERROR(request.Validate());
  DPC_RETURN_IF_ERROR(algorithm->ValidateRequest(request));

  const std::string scope =
      request.label.empty()
          ? request.algorithm + "#" + std::to_string(served_)
          : request.label;
  ++served_;
  BudgetSession session(&accountant_, scope, request.budget);
  Rng run_rng = rng_.Fork();

  const auto start = std::chrono::steady_clock::now();
  Result<Response> run = algorithm->Run(run_rng, request, session);
  const auto end = std::chrono::steady_clock::now();
  if (!run.ok()) {
    // The algorithm may have queried the data before failing, and the
    // internal layer reports no partial ledger on error — account
    // conservatively: the request's whole remaining budget is treated as
    // consumed. (Remaining never overdraws, so this charge cannot fail.)
    session.Charge("failed:" + std::string(StatusCodeName(run.status().code())),
                   session.remaining());
    return run.status();
  }

  Response response = std::move(*run);
  response.algorithm = std::string(algorithm->name());
  response.kind = algorithm->kind();
  response.ledger = session.ledger();
  response.charged = session.spent();
  response.wall_ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  if (response.balls.empty() && !response.ball.center.empty()) {
    response.balls = {response.ball};
  }

  // Scalar releases (interior point) have no meaningful ball to evaluate.
  const bool scalar_release = !std::isnan(response.scalar);
  if (options_.diagnostics && !scalar_release && request.t >= 1 &&
      request.t <= request.data.size() &&
      response.ball.center.size() == request.data.dim()) {
    auto metrics = Evaluate(request.data, request.t, response.ball);
    if (metrics.ok()) response.diagnostics = *metrics;
  }
  return response;
}

std::vector<Result<Response>> Solver::RunAll(
    std::span<const Request> requests) {
  std::vector<Result<Response>> responses;
  responses.reserve(requests.size());
  for (const Request& request : requests) {
    responses.push_back(Run(request));
  }
  return responses;
}

std::vector<Result<Response>> Solver::RunAllShared(
    std::span<Request> requests) {
  // Best effort: a batch whose first domain-carrying request cannot be
  // indexed (e.g. mismatched data) simply runs unshared — Run() validates
  // each request either way.
  (void)ShareIndexAcross(requests);
  return RunAll(std::span<const Request>(requests.data(), requests.size()));
}

}  // namespace dpcluster
