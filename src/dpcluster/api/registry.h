// String-keyed registry of Algorithm implementations. The CLI, benches, and
// examples dispatch by name through a registry instead of hand-rolled switch
// ladders; custom algorithms can be registered alongside the built-ins.

#ifndef DPCLUSTER_API_REGISTRY_H_
#define DPCLUSTER_API_REGISTRY_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "dpcluster/api/algorithm.h"
#include "dpcluster/common/status.h"

namespace dpcluster {

class AlgorithmRegistry {
 public:
  /// Adds an algorithm under its name(); InvalidArgument on duplicates.
  Status Register(std::unique_ptr<Algorithm> algorithm);

  /// Looks an algorithm up by name; NotFound (listing the registered names)
  /// when absent. The pointer stays valid for the registry's lifetime.
  Result<const Algorithm*> Lookup(std::string_view name) const;

  bool Contains(std::string_view name) const;

  /// Registered names, sorted.
  std::vector<std::string> Names() const;

  std::size_t size() const { return algorithms_.size(); }

  /// The process-wide registry, populated with the built-in algorithms on
  /// first use.
  static AlgorithmRegistry& Global();

 private:
  std::map<std::string, std::unique_ptr<Algorithm>, std::less<>> algorithms_;
};

/// Registers the built-in algorithms (the paper pipeline, its derived
/// problems, and the four baselines) into `registry`. Names already present
/// are left untouched.
Status RegisterBuiltinAlgorithms(AlgorithmRegistry& registry);

}  // namespace dpcluster

#endif  // DPCLUSTER_API_REGISTRY_H_
