// The typed request of the Solver façade: which algorithm to run (a registry
// key), on what data and domain, with what privacy budget and problem
// parameters. One Request maps to one BudgetSession carved from the Solver's
// shared Accountant.

#ifndef DPCLUSTER_API_REQUEST_H_
#define DPCLUSTER_API_REQUEST_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>

#include "dpcluster/common/status.h"
#include "dpcluster/core/radius_profile.h"
#include "dpcluster/dp/privacy_params.h"
#include "dpcluster/geo/dataset.h"
#include "dpcluster/geo/grid_domain.h"
#include "dpcluster/geo/point_set.h"
#include "dpcluster/sa/sample_aggregate.h"

namespace dpcluster {

/// The problem families the façade serves (ISSUE: one-cluster, k-cluster,
/// outlier, interior-point, sample-aggregate, baselines).
enum class ProblemKind {
  kOneCluster,
  kKCluster,
  kOutlier,
  kInteriorPoint,
  kSampleAggregate,
  kBaseline,
};

/// Human-readable name ("one-cluster", ...).
const char* ProblemKindName(ProblemKind kind);

/// Algorithm-specific tuning knobs. Every algorithm reads the fields it
/// understands and ignores the rest; the defaults match the free functions'.
struct Tuning {
  /// One-cluster: fraction of the budget given to GoodRadius.
  double radius_budget_fraction = 0.5;
  /// One-cluster: subsample the GoodRadius pair profile on large inputs.
  bool subsample_large_inputs = false;
  /// With subsample_large_inputs: multiplier on the subsample cap when the
  /// ~O(n t) grid profile serves the subsampled problem (see
  /// GoodRadiusOptions::subsample_grid_cap_factor). Must be >= 1.
  double subsample_grid_cap_factor = 10.0;
  /// GoodRadius L(r,S) event generator: auto (measured crossover), grid
  /// (t-NN pruned spatial index, ~O(n t) at low dimension), or exact (the
  /// all-pairs O(n^2) sweep). Bit-identical outputs either way; read by
  /// every algorithm that runs GoodRadius (one_cluster, k_cluster,
  /// outlier_screen, sample_aggregate's inner pipeline).
  ProfileIndex profile_index = ProfileIndex::kAuto;
  /// Cell-grid coordinate space of every spatial index the request builds
  /// (the shared index from BuildSharedIndex, k_cluster's incremental index,
  /// GoodRadius's internal indexes): kAuto stays exact — where the original-d
  /// grid degenerates to one cell (d >~ 16) batched queries run a blocked
  /// dense scan; the JL-projected grid is an explicit opt-in (see
  /// geo/spatial_grid.h). Query answers, and therefore released outputs, are
  /// bit-identical across geometries; only the runtime moves.
  IndexGeometry index_geometry = IndexGeometry::kAuto;
  /// GoodCenter: cap on the Johnson-Lindenstrauss projection dimension of the
  /// first phase (see GoodCenterOptions::max_jl_dim). Smaller = cheaper
  /// projections and coarser boxes; the eval harness sweeps this to map the
  /// accuracy/cost frontier.
  std::size_t max_jl_dim = 12;
  /// GoodCenter: when non-zero, requests that carry an IndexedDataset route
  /// GoodCenter's JL projection through the dataset's per-seed projection
  /// cache (computed once, reused across k_cluster rounds) instead of a
  /// fresh per-call draw. Data-independent randomness either way, so privacy
  /// is unaffected; released bytes differ from the default-path reference.
  std::uint64_t projection_seed = 0;
  /// Fraction of the (per-round) epsilon spent on RefineRadius to tighten
  /// the released ball. Read by k_cluster and outlier_screen, and by
  /// one_cluster when `refine_one_cluster` is set.
  double refine_fraction = 0.25;
  /// One-cluster: also spend refine_fraction of the epsilon tightening the
  /// released radius (the guarantee radius is a worst-case bound, often the
  /// whole cube). Off by default to match the plain OneCluster pipeline.
  bool refine_one_cluster = false;
  /// K-cluster: size per-round budgets by advanced composition (Thm 4.7).
  bool advanced_composition = false;
  /// Coreset stage (see coreset/coreset.h): when true, requests with at
  /// least `coreset_min_points` rows first collapse the data to a weighted
  /// k-center summary of ~coreset_target_size rows, and the whole pipeline
  /// (one_cluster, k_cluster, outlier_screen) runs on the summary's weighted
  /// index — counts weigh rows by multiplicity, so t / inlier_fraction keep
  /// their raw-input meaning. Accuracy moves by at most the summary's
  /// coverage radius; privacy accounting is unchanged. Service batches cache
  /// the coreset index per dataset alongside the shared index.
  bool coreset = false;
  /// Inputs with fewer rows run uncompressed even when `coreset` is set.
  std::size_t coreset_min_points = 65536;
  /// Summary row budget of the greedy k-center traversal (~2z + O(k)).
  std::size_t coreset_target_size = 2048;
  /// Streaming datasets (service /v1/stream/*): the resident index is
  /// compacted — expired rows dropped, survivors renumbered — once
  /// live/total falls below this fraction after a mutation, so a long-lived
  /// stream's scan density never degrades past a constant factor. 0 never
  /// compacts automatically.
  double stream_compact_fraction = 0.25;
  /// Streaming solves with `coreset`: the cached summary is reused until the
  /// rows appended + expired since it was built exceed this fraction of the
  /// live set, then rebuilt lazily on the next coreset solve. 0 rebuilds on
  /// any edit.
  double coreset_staleness_fraction = 0.5;
  /// Outlier: multiplier on the found ball radius before screening.
  double inflation = 1.0;
  /// Exp-mech baseline: refuse to enumerate more than this many grid centers.
  std::size_t max_grid_centers = std::size_t{1} << 18;
};

struct Request {
  /// Registry key, e.g. "one_cluster"; AlgorithmRegistry::Names() lists them.
  std::string algorithm = "one_cluster";
  /// The dataset. Points must lie in `domain`'s cube (snap them first).
  PointSet data;
  /// The data universe X^d. Required by every algorithm except the
  /// non-private baseline.
  std::optional<GridDomain> domain;
  /// Privacy budget of this request, carved from the Solver's accountant.
  PrivacyParams budget{1.0, 1e-9};
  /// Utility failure probability.
  double beta = 0.1;
  /// Target cluster size t (one-cluster, baselines; 0 = invalid there).
  std::size_t t = 0;
  /// Number of balls for k-cluster.
  std::size_t k = 2;
  /// Outlier screening: fraction of points the inlier ball should hold.
  double inlier_fraction = 0.9;
  /// Sample-aggregate: stability fraction alpha in (0, 1].
  double alpha = 0.5;
  /// Sample-aggregate: block size m (0 = target ~400 blocks, i.e.
  /// m = max(1, n/3600), since the aggregator's noise floor binds on the
  /// number of blocks k = n/(9m), not on block size).
  std::size_t block_size = 0;
  /// Sample-aggregate: the non-private block analysis (defaults to the
  /// coordinate-wise mean when unset).
  Estimator estimator;
  /// Worker threads for the deterministic numeric kernels of the selected
  /// algorithm (0 = one per hardware thread, 1 = serial). Released outputs
  /// are bit-identical at any setting: threads never touch the request's Rng
  /// stream, and the parallel work decomposition depends only on the problem
  /// size (see src/dpcluster/parallel/).
  std::size_t num_threads = 1;
  /// Algorithm-specific knobs.
  Tuning tuning;
  /// Optional scope label for the ledger; "" = "<algorithm>#<index>".
  std::string label;
  /// Index-reuse hook: a shared geometry index over exactly `data` (same
  /// rows, every row active — see BuildSharedIndex / ShareIndexAcross).
  /// Algorithms that own geometry (one_cluster, k_cluster, outlier_screen)
  /// borrow it instead of rebuilding their spatial index, so a RunAll batch
  /// over the same dataset indexes it once. Released outputs are
  /// bit-identical with or without it; algorithms restore the index's state
  /// before returning. Ignored by algorithms that never index (baselines,
  /// interior point, sample-aggregate's block pipeline).
  std::shared_ptr<IndexedDataset> shared_index;

  /// Generic field validation (budget, beta, fractions, shared_index
  /// consistency); algorithm-specific requirements are checked by
  /// Algorithm::ValidateRequest.
  Status Validate() const;
};

/// Builds a shared geometry index over request.data / request.domain, ready
/// to assign to Request::shared_index (the request must carry a domain).
Result<std::shared_ptr<IndexedDataset>> BuildSharedIndex(
    const Request& request);

/// The RunAll batching hook: builds one index from the first request carrying
/// a domain and attaches it to every request in the batch with the same data
/// and domain (requests that already carry an index are left untouched).
/// Returns the number of requests the index was attached to.
Result<std::size_t> ShareIndexAcross(std::span<Request> requests);

}  // namespace dpcluster

#endif  // DPCLUSTER_API_REQUEST_H_
