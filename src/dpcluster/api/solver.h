// Solver: the unified façade over every algorithm in the library. One Solver
// owns one shared Accountant; each Run carves a BudgetSession for its request,
// dispatches by name through an AlgorithmRegistry, and returns a typed
// Response (released artifact + per-phase ledger + utility diagnostics +
// timing). RunAll executes a batch of independent requests against the same
// accountant — the seed of future sharded/async serving.
//
// Quickstart:
//   Solver solver;
//   Request request;
//   request.algorithm = "one_cluster";
//   request.data = points;                  // snapped to the domain grid
//   request.domain = GridDomain(1 << 16, points.dim());
//   request.t = 500;
//   request.budget = {2.0, 1e-9};
//   auto response = solver.Run(request);
//   if (response.ok()) UseBall(response->ball);

#ifndef DPCLUSTER_API_SOLVER_H_
#define DPCLUSTER_API_SOLVER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "dpcluster/api/budget.h"
#include "dpcluster/api/registry.h"
#include "dpcluster/api/request.h"
#include "dpcluster/api/response.h"
#include "dpcluster/common/status.h"
#include "dpcluster/random/rng.h"

namespace dpcluster {

struct SolverOptions {
  /// Seed of the solver's master Rng; each request runs on a forked stream.
  std::uint64_t seed = 2016;
  /// Compute non-private utility diagnostics (EvalMetrics on the raw data)
  /// for responses whose shape allows it. Disable when serving real data and
  /// the evaluation pass is unwanted work.
  bool diagnostics = true;
  /// Registry to dispatch against; nullptr = AlgorithmRegistry::Global().
  const AlgorithmRegistry* registry = nullptr;
};

class Solver {
 public:
  explicit Solver(SolverOptions options = {});

  /// Serves one request: registry lookup, request validation, budget session,
  /// algorithm run, response bookkeeping. A request that fails before its
  /// algorithm runs (unknown name, invalid request) charges nothing; a
  /// request whose algorithm fails mid-run is conservatively accounted at its
  /// full budget, since the internal layer reports no partial ledger on
  /// error and the data may already have been queried.
  Result<Response> Run(const Request& request);

  /// Serves a batch of independent requests against this solver's single
  /// accountant. Per-request outcomes: one failing request does not abort the
  /// rest.
  std::vector<Result<Response>> RunAll(std::span<const Request> requests);

  /// RunAll with the index-reuse hook applied first: builds one shared
  /// geometry index (geo/IndexedDataset) and attaches it to every request in
  /// the batch over the same dataset and domain (ShareIndexAcross), so the
  /// batch indexes the data once instead of per request. Released outputs
  /// are bit-identical to RunAll on the same requests.
  std::vector<Result<Response>> RunAllShared(std::span<Request> requests);

  /// Cross-request ledger: every charge of every served request, prefixed
  /// with its session scope.
  const Accountant& accountant() const { return accountant_; }

  /// Total spend across all served requests, under basic composition.
  PrivacyParams TotalSpend() const { return accountant_.BasicTotal(); }

  const AlgorithmRegistry& registry() const;

 private:
  SolverOptions options_;
  Rng rng_;
  Accountant accountant_;
  std::size_t served_ = 0;
};

}  // namespace dpcluster

#endif  // DPCLUSTER_API_SOLVER_H_
