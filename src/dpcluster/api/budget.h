// BudgetSession: a scoped slice of privacy budget carved from a shared
// Accountant. The Solver hands one session to each algorithm run; the
// algorithm records its per-phase spend through the session, which mirrors
// every charge into the shared cross-request ledger (scope-prefixed) and
// refuses to overdraw its slice. This is the accounting seam that lets many
// independent requests execute against one accountant (Solver::RunAll).

#ifndef DPCLUSTER_API_BUDGET_H_
#define DPCLUSTER_API_BUDGET_H_

#include <string>

#include "dpcluster/common/status.h"
#include "dpcluster/dp/accountant.h"
#include "dpcluster/dp/privacy_params.h"

namespace dpcluster {

class BudgetSession {
 public:
  /// Carves `budget` for scope `scope` out of `shared`. `shared` may be
  /// nullptr (a free-standing session that only keeps its local ledger); when
  /// set it must outlive the session.
  BudgetSession(Accountant* shared, std::string scope, PrivacyParams budget);

  /// The slice this session may spend.
  const PrivacyParams& budget() const { return budget_; }

  /// Spend so far, under basic composition of the session's charges.
  PrivacyParams spent() const { return local_.BasicTotal(); }

  /// Budget minus spend, floored at zero coordinate-wise.
  PrivacyParams remaining() const;

  /// Records one (eps, delta)-DP interaction against this session and mirrors
  /// it into the shared accountant as "<scope>/<label>". Fails with
  /// ResourceExhausted if the charge would overdraw the session budget
  /// (beyond a small floating-point slack) — the mechanism must not run if
  /// its budget is not there.
  Status Charge(const std::string& label, const PrivacyParams& params);

  /// Absorbs a sub-ledger (e.g. a OneClusterResult::ledger) as individual
  /// charges, prefixing each label. Fails like Charge on overdraw.
  Status ChargeLedger(const Accountant& ledger, const std::string& prefix = "");

  /// This session's own ledger (per-phase view of the request).
  const Accountant& ledger() const { return local_; }

  const std::string& scope() const { return scope_; }

 private:
  Accountant* shared_;  // not owned; may be null
  Accountant local_;
  std::string scope_;
  PrivacyParams budget_;
};

}  // namespace dpcluster

#endif  // DPCLUSTER_API_BUDGET_H_
