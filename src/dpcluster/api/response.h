// The typed response of the Solver façade: the released artifact, the
// per-phase privacy ledger of the request, utility diagnostics (evaluation
// only), and timing.

#ifndef DPCLUSTER_API_RESPONSE_H_
#define DPCLUSTER_API_RESPONSE_H_

#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "dpcluster/dp/accountant.h"
#include "dpcluster/dp/privacy_params.h"
#include "dpcluster/geo/ball.h"
#include "dpcluster/workload/metrics.h"

namespace dpcluster {

// Forward-declared in request.h; repeated here so response.h stands alone.
enum class ProblemKind;

struct Response {
  /// Which registered algorithm produced this response.
  std::string algorithm;
  /// The problem family it solves.
  ProblemKind kind{};

  // --- Released artifact (differentially private) -------------------------
  /// Primary released ball. For interior-point the center is the released
  /// point (radius 0); for sample-aggregate it is the stable point and its
  /// claimed radius. Empty center = this algorithm released no ball.
  Ball ball;
  /// All released balls: the k-cluster rounds; a singleton {ball} otherwise.
  std::vector<Ball> balls;
  /// Scalar release for 1D problems (interior-point); NaN otherwise.
  double scalar = std::numeric_limits<double>::quiet_NaN();

  // --- Accounting ---------------------------------------------------------
  /// Per-phase ledger of this request (the BudgetSession's local view).
  Accountant ledger;
  /// Total charged, under basic composition of `ledger`.
  PrivacyParams charged{0.0, 0.0};

  // --- Diagnostics (NOT private: computed from the raw data) --------------
  /// Utility metrics of `ball` against the request's data and t, when the
  /// Solver is configured to evaluate them and the problem shape allows it.
  std::optional<EvalMetrics> diagnostics;
  /// Points of the dataset left uncovered by `balls` (k-cluster only).
  std::size_t uncovered = 0;

  /// Wall-clock of the algorithm run, milliseconds.
  double wall_ms = 0.0;
  /// Free-form adapter notes ("amplified budget ...", "2 rounds skipped").
  std::string note;
};

}  // namespace dpcluster

#endif  // DPCLUSTER_API_RESPONSE_H_
