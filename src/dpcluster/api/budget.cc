#include "dpcluster/api/budget.h"

#include <algorithm>
#include <utility>

namespace dpcluster {

namespace {
// Relative slack for the overdraw check: the per-phase budgets are produced
// by floating-point splits (Fraction, InverseAdvancedEpsilon) whose sum can
// exceed the total by a few ulp.
constexpr double kSlack = 1e-9;

bool Overdraws(const PrivacyParams& spent, const PrivacyParams& add,
               const PrivacyParams& budget) {
  const double eps_cap = budget.epsilon * (1.0 + kSlack) + kSlack;
  const double delta_cap = budget.delta * (1.0 + kSlack) + 1e-18;
  return spent.epsilon + add.epsilon > eps_cap ||
         spent.delta + add.delta > delta_cap;
}
}  // namespace

BudgetSession::BudgetSession(Accountant* shared, std::string scope,
                             PrivacyParams budget)
    : shared_(shared), scope_(std::move(scope)), budget_(budget) {}

PrivacyParams BudgetSession::remaining() const {
  const PrivacyParams used = spent();
  return {std::max(0.0, budget_.epsilon - used.epsilon),
          std::max(0.0, budget_.delta - used.delta)};
}

Status BudgetSession::Charge(const std::string& label,
                             const PrivacyParams& params) {
  if (Overdraws(spent(), params, budget_)) {
    return Status::ResourceExhausted(
        "BudgetSession '" + scope_ + "': charge '" + label + "' " +
        params.ToString() + " would overdraw budget " + budget_.ToString() +
        " (spent " + spent().ToString() + ")");
  }
  local_.Charge(label, params);
  if (shared_ != nullptr) shared_->Charge(scope_ + "/" + label, params);
  return Status::OK();
}

Status BudgetSession::ChargeLedger(const Accountant& ledger,
                                   const std::string& prefix) {
  for (const auto& entry : ledger.charges()) {
    DPC_RETURN_IF_ERROR(Charge(prefix + entry.label, entry.params));
  }
  return Status::OK();
}

}  // namespace dpcluster
