// Built-in Algorithm adapters: the paper pipeline (one-cluster), its derived
// problems (k-cluster, outlier screening, interior point, sample-aggregate),
// and the four Table 1 baselines, each adapted from the internal free
// functions to the typed Request/Response API. The free functions remain the
// internal layer; these adapters translate options, mirror privacy ledgers
// into the request's BudgetSession, and shape the released artifact.

#include <cmath>
#include <memory>
#include <string>

#include "dpcluster/api/registry.h"
#include "dpcluster/baselines/exp_mech_baseline.h"
#include "dpcluster/baselines/noisy_mean_baseline.h"
#include "dpcluster/baselines/nonprivate_baseline.h"
#include "dpcluster/baselines/threshold_release_1d.h"
#include "dpcluster/core/interior_point.h"
#include "dpcluster/core/k_cluster.h"
#include "dpcluster/core/one_cluster.h"
#include "dpcluster/core/outlier.h"
#include "dpcluster/core/radius_refine.h"
#include "dpcluster/sa/estimators.h"
#include "dpcluster/sa/sample_aggregate.h"

namespace dpcluster {
namespace {

Status RequireDomain(const Request& request) {
  if (!request.domain.has_value()) {
    return Status::InvalidArgument("Request: '" + request.algorithm +
                                   "' needs a domain");
  }
  return Status::OK();
}

Status RequireT(const Request& request) {
  if (request.t < 1 || request.t > request.data.size()) {
    return Status::InvalidArgument(
        "Request: '" + request.algorithm +
        "' needs a target count t in [1, n]; got t=" + std::to_string(request.t) +
        ", n=" + std::to_string(request.data.size()));
  }
  return Status::OK();
}

Status Require1D(const Request& request) {
  if (request.data.dim() != 1) {
    return Status::InvalidArgument("Request: '" + request.algorithm +
                                   "' handles 1D data only");
  }
  return Status::OK();
}

CoresetOptions CoresetOptionsFrom(const Request& request) {
  CoresetOptions c;
  c.enabled = request.tuning.coreset;
  c.min_points = request.tuning.coreset_min_points;
  c.target_size = request.tuning.coreset_target_size;
  return c;
}

OneClusterOptions OneClusterOptionsFrom(const Request& request) {
  OneClusterOptions o;
  o.params = request.budget;
  o.beta = request.beta;
  o.coreset = CoresetOptionsFrom(request);
  o.radius_budget_fraction = request.tuning.radius_budget_fraction;
  o.radius.subsample_large_inputs = request.tuning.subsample_large_inputs;
  o.radius.subsample_grid_cap_factor =
      request.tuning.subsample_grid_cap_factor;
  o.radius.profile_index = request.tuning.profile_index;
  o.radius.index_geometry = request.tuning.index_geometry;
  o.center.max_jl_dim = request.tuning.max_jl_dim;
  o.center.projection_seed = request.tuning.projection_seed;
  o.num_threads = request.num_threads;
  return o;
}

// ------------------------------------------------------------ one_cluster ---

class OneClusterAlgorithm : public Algorithm {
 public:
  std::string_view name() const override { return "one_cluster"; }
  ProblemKind kind() const override { return ProblemKind::kOneCluster; }
  std::string_view description() const override {
    return "Theorem 3.2 pipeline: GoodRadius + GoodCenter release a ball "
           "holding ~t points with radius O(sqrt(log n)) * r_opt";
  }
  Status ValidateRequest(const Request& request) const override {
    DPC_RETURN_IF_ERROR(RequireDomain(request));
    return RequireT(request);
  }
  Result<Response> Run(Rng& rng, const Request& request,
                       BudgetSession& session) const override {
    const double refine_fraction =
        request.tuning.refine_one_cluster ? request.tuning.refine_fraction
                                          : 0.0;
    OneClusterOptions options = OneClusterOptionsFrom(request);
    options.params = request.budget.Fraction(1.0 - refine_fraction);
    DPC_ASSIGN_OR_RETURN(OneClusterResult run,
                         OneCluster(rng, request.data, request.t,
                                    *request.domain, options,
                                    request.shared_index.get()));
    DPC_RETURN_IF_ERROR(session.ChargeLedger(run.ledger));
    Response response;
    response.ball = run.ball;
    response.note =
        "good_radius r=" + std::to_string(run.radius_stage.radius) +
        "; recommended_min_t=" +
        std::to_string(RecommendedMinT(request.data.size(), *request.domain,
                                       options));
    if (refine_fraction > 0.0) {
      RadiusRefineOptions refine;
      refine.epsilon = request.budget.epsilon * refine_fraction;
      refine.beta = request.beta;
      DPC_RETURN_IF_ERROR(session.Charge("refine", {refine.epsilon, 0.0}));
      auto refined = RefineRadius(rng, request.data, run.ball.center,
                                  request.t, *request.domain, refine);
      if (refined.ok()) {
        response.note += "; guarantee_radius=" +
                         std::to_string(run.ball.radius) + " refined";
        response.ball.radius = *refined;
      }
    }
    return response;
  }
};

// -------------------------------------------------------------- k_cluster ---

class KClusterAlgorithm : public Algorithm {
 public:
  std::string_view name() const override { return "k_cluster"; }
  ProblemKind kind() const override { return ProblemKind::kKCluster; }
  std::string_view description() const override {
    return "Observation 3.5: iterate the 1-cluster solver k times, removing "
           "covered points, to cover the data with k balls";
  }
  Status ValidateRequest(const Request& request) const override {
    DPC_RETURN_IF_ERROR(RequireDomain(request));
    if (request.k < 1) {
      return Status::InvalidArgument("Request: k_cluster needs k >= 1");
    }
    return Status::OK();
  }
  Result<Response> Run(Rng& rng, const Request& request,
                       BudgetSession& session) const override {
    KClusterOptions o;
    o.params = request.budget;
    o.beta = request.beta;
    o.k = request.k;
    o.per_round_t = request.t;  // 0 = spread the remaining points.
    o.refine_fraction = request.tuning.refine_fraction;
    o.advanced_composition = request.tuning.advanced_composition;
    o.num_threads = request.num_threads;
    o.one_cluster.radius_budget_fraction =
        request.tuning.radius_budget_fraction;
    o.one_cluster.radius.subsample_large_inputs =
        request.tuning.subsample_large_inputs;
    o.one_cluster.radius.subsample_grid_cap_factor =
        request.tuning.subsample_grid_cap_factor;
    o.one_cluster.radius.profile_index = request.tuning.profile_index;
    o.one_cluster.radius.index_geometry = request.tuning.index_geometry;
    o.one_cluster.center.max_jl_dim = request.tuning.max_jl_dim;
    o.one_cluster.center.projection_seed = request.tuning.projection_seed;
    o.index_geometry = request.tuning.index_geometry;
    o.coreset = CoresetOptionsFrom(request);
    DPC_ASSIGN_OR_RETURN(KClusterResult run,
                         KCluster(rng, request.data, *request.domain, o,
                                  request.shared_index.get()));
    if (o.advanced_composition) {
      // The per-round ledger composes to the budget under the ADVANCED rule;
      // its basic sum may exceed it. Charge the composed total the run is
      // actually accounted at, keeping the session's basic-composition
      // invariant honest.
      DPC_RETURN_IF_ERROR(session.Charge(
          "k_cluster[advanced,k=" + std::to_string(o.k) + "]", request.budget));
    } else {
      DPC_RETURN_IF_ERROR(session.ChargeLedger(run.ledger));
    }
    Response response;
    response.balls.reserve(run.rounds.size());
    for (const OneClusterResult& round : run.rounds) {
      response.balls.push_back(round.ball);
    }
    if (!response.balls.empty()) response.ball = response.balls.front();
    response.uncovered = run.uncovered;
    response.note = std::to_string(run.rounds.size()) + " of " +
                    std::to_string(o.k) + " rounds released a ball";
    return response;
  }
};

// ---------------------------------------------------------- outlier_screen ---

class OutlierScreenAlgorithm : public Algorithm {
 public:
  std::string_view name() const override { return "outlier_screen"; }
  ProblemKind kind() const override { return ProblemKind::kOutlier; }
  std::string_view description() const override {
    return "Section 1.1: release a ball holding ~inlier_fraction of the data "
           "as an outlier-screening predicate";
  }
  Status ValidateRequest(const Request& request) const override {
    return RequireDomain(request);
  }
  Result<Response> Run(Rng& rng, const Request& request,
                       BudgetSession& session) const override {
    const double refine_fraction = request.tuning.refine_fraction;
    OutlierScreenOptions o;
    o.inlier_fraction = request.inlier_fraction;
    o.inflation = request.tuning.inflation;
    o.one_cluster = OneClusterOptionsFrom(request);
    o.one_cluster.params = request.budget.Fraction(1.0 - refine_fraction);
    o.refine.epsilon = request.budget.epsilon * refine_fraction;
    o.refine.beta = request.beta;
    DPC_ASSIGN_OR_RETURN(
        OutlierScreen screen,
        BuildOutlierScreen(rng, request.data, *request.domain, o,
                           request.shared_index.get()));
    DPC_RETURN_IF_ERROR(session.ChargeLedger(screen.pipeline.ledger));
    if (o.refine.epsilon > 0.0) {
      DPC_RETURN_IF_ERROR(session.Charge("refine", {o.refine.epsilon, 0.0}));
    }
    std::size_t inliers = 0;
    for (std::size_t i = 0; i < request.data.size(); ++i) {
      if (screen.IsInlier(request.data[i])) ++inliers;
    }
    Response response;
    response.ball = screen.ball;
    response.note = "screen keeps points inside the released ball; inliers "
                    "kept (non-private count): " +
                    std::to_string(inliers);
    return response;
  }
};

// ---------------------------------------------------------- interior_point ---

class InteriorPointAlgorithm : public Algorithm {
 public:
  std::string_view name() const override { return "interior_point"; }
  ProblemKind kind() const override { return ProblemKind::kInteriorPoint; }
  std::string_view description() const override {
    return "Algorithm 3 (IntPoint): a private 1D interior point via the "
           "1-cluster solver + RecConcave";
  }
  Status ValidateRequest(const Request& request) const override {
    DPC_RETURN_IF_ERROR(RequireDomain(request));
    return Require1D(request);
  }
  Result<Response> Run(Rng& rng, const Request& request,
                       BudgetSession& session) const override {
    InteriorPointOptions o;
    // InteriorPoint spends options.params on EACH of its two components
    // (Theorem 5.3); hand it half so the whole call matches request.budget.
    o.params = request.budget.Fraction(0.5);
    o.beta = request.beta;
    std::vector<double> data(request.data.Data().begin(),
                             request.data.Data().end());
    DPC_ASSIGN_OR_RETURN(InteriorPointResult run,
                         InteriorPoint(rng, data, *request.domain, o));
    DPC_RETURN_IF_ERROR(session.ChargeLedger(run.cluster.ledger, "cluster/"));
    DPC_RETURN_IF_ERROR(session.Charge("rec_concave", o.params));
    Response response;
    response.scalar = run.point;
    response.ball.center = {run.point};
    response.note =
        "candidates |J|=" + std::to_string(run.candidates);
    return response;
  }
};

// -------------------------------------------------------- sample_aggregate ---

class SampleAggregateAlgorithm : public Algorithm {
 public:
  std::string_view name() const override { return "sample_aggregate"; }
  ProblemKind kind() const override { return ProblemKind::kSampleAggregate; }
  std::string_view description() const override {
    return "Algorithm 4 (SA): compile a subsample-stable non-private "
           "estimator into a private one via 1-cluster aggregation";
  }
  Status ValidateRequest(const Request& request) const override {
    DPC_RETURN_IF_ERROR(RequireDomain(request));
    const std::size_t m = BlockSize(request);
    if (request.data.size() < 18 * m) {
      return Status::InvalidArgument(
          "Request: sample_aggregate needs n >= 18 * block_size");
    }
    return Status::OK();
  }
  Result<Response> Run(Rng& rng, const Request& request,
                       BudgetSession& session) const override {
    SampleAggregateOptions o;
    o.params = request.budget;
    o.beta = request.beta;
    o.block_size = BlockSize(request);
    o.alpha = request.alpha;
    o.num_threads = request.num_threads;
    o.one_cluster = OneClusterOptionsFrom(request);
    const Estimator f = request.estimator ? request.estimator : MeanEstimator();
    DPC_ASSIGN_OR_RETURN(
        SampleAggregateResult run,
        SampleAggregate(rng, request.data, f, *request.domain, o));
    DPC_RETURN_IF_ERROR(session.ChargeLedger(run.aggregate.ledger));
    Response response;
    response.ball.center = run.point;
    response.ball.radius = run.radius;
    response.note = "blocks k=" + std::to_string(run.blocks) +
                    "; amplified budget " + run.amplified.ToString();
    return response;
  }

 private:
  static std::size_t BlockSize(const Request& request) {
    if (request.block_size > 0) return request.block_size;
    // Default: aim for k = n/(9m) ~ 400 blocks — the aggregator needs many
    // block outputs (its target count is t = alpha k / 2, which must clear
    // the 1-cluster noise floor) far more than it needs large blocks.
    return std::max<std::size_t>(1, request.data.size() / (9 * 400));
  }
};

// ------------------------------------------------------- exp_mech_baseline ---

class ExpMechBaselineAlgorithm : public Algorithm {
 public:
  std::string_view name() const override { return "exp_mech_baseline"; }
  ProblemKind kind() const override { return ProblemKind::kBaseline; }
  std::string_view description() const override {
    return "Table 1 baseline [14]: exponential mechanism over all grid balls "
           "(w ~ 1, time poly(|X|^d))";
  }
  Status ValidateRequest(const Request& request) const override {
    DPC_RETURN_IF_ERROR(RequireDomain(request));
    return RequireT(request);
  }
  Result<Response> Run(Rng& rng, const Request& request,
                       BudgetSession& session) const override {
    ExpMechBaselineOptions o;
    o.params = {request.budget.epsilon, 0.0};  // Pure eps-DP.
    o.beta = request.beta;
    o.max_grid_centers = request.tuning.max_grid_centers;
    DPC_ASSIGN_OR_RETURN(Ball ball,
                         ExpMechBaseline(rng, request.data, request.t,
                                         *request.domain, o));
    DPC_RETURN_IF_ERROR(session.Charge("exp_mech", o.params));
    Response response;
    response.ball = std::move(ball);
    return response;
  }
};

// ----------------------------------------------------- noisy_mean_baseline ---

class NoisyMeanBaselineAlgorithm : public Algorithm {
 public:
  std::string_view name() const override { return "noisy_mean_baseline"; }
  ProblemKind kind() const override { return ProblemKind::kBaseline; }
  std::string_view description() const override {
    return "Table 1 baseline [16]: noisy mean center + noisy radius search "
           "(w ~ sqrt(d)/eps, majority clusters only)";
  }
  Status ValidateRequest(const Request& request) const override {
    DPC_RETURN_IF_ERROR(RequireDomain(request));
    return RequireT(request);
  }
  Result<Response> Run(Rng& rng, const Request& request,
                       BudgetSession& session) const override {
    NoisyMeanBaselineOptions o;
    o.params = request.budget;
    o.beta = request.beta;
    DPC_ASSIGN_OR_RETURN(Ball ball,
                         NoisyMeanBaseline(rng, request.data, request.t,
                                           *request.domain, o));
    DPC_RETURN_IF_ERROR(session.Charge("noisy_mean", o.params));
    Response response;
    response.ball = std::move(ball);
    return response;
  }
};

// --------------------------------------------------- threshold_release_1d ---

class ThresholdReleaseAlgorithm : public Algorithm {
 public:
  std::string_view name() const override { return "threshold_release_1d"; }
  ProblemKind kind() const override { return ProblemKind::kBaseline; }
  std::string_view description() const override {
    return "Table 1 baseline [3,4] (d=1): dyadic-tree threshold release, "
           "then post-process the shortest heavy interval";
  }
  Status ValidateRequest(const Request& request) const override {
    DPC_RETURN_IF_ERROR(RequireDomain(request));
    DPC_RETURN_IF_ERROR(Require1D(request));
    return RequireT(request);
  }
  Result<Response> Run(Rng& rng, const Request& request,
                       BudgetSession& session) const override {
    ThresholdRelease1DOptions o;
    o.params = {request.budget.epsilon, 0.0};  // Pure eps-DP.
    o.beta = request.beta;
    DPC_ASSIGN_OR_RETURN(
        ThresholdRelease1D release,
        ThresholdRelease1D::Build(rng, request.data, *request.domain, o));
    DPC_RETURN_IF_ERROR(session.Charge("threshold_release", o.params));
    DPC_ASSIGN_OR_RETURN(
        Ball ball,
        release.SmallestHeavyInterval(static_cast<double>(request.t)));
    Response response;
    response.ball = std::move(ball);
    response.note = "interval error bound " +
                    std::to_string(release.ErrorBound());
    return response;
  }
};

// -------------------------------------------------------------- nonprivate ---

class NonPrivateAlgorithm : public Algorithm {
 public:
  std::string_view name() const override { return "nonprivate"; }
  ProblemKind kind() const override { return ProblemKind::kBaseline; }
  std::string_view description() const override {
    return "Non-private reference: exact interval (d=1) or 2-approximation; "
           "charges no privacy budget";
  }
  Status ValidateRequest(const Request& request) const override {
    return RequireT(request);
  }
  Result<Response> Run(Rng&, const Request& request,
                       BudgetSession&) const override {
    DPC_ASSIGN_OR_RETURN(Ball ball,
                         NonPrivateBestEffort(request.data, request.t));
    Response response;
    response.ball = std::move(ball);
    response.note = "NOT differentially private (reference only)";
    return response;
  }
};

}  // namespace

Status RegisterBuiltinAlgorithms(AlgorithmRegistry& registry) {
  const auto add = [&registry](std::unique_ptr<Algorithm> algorithm) {
    if (registry.Contains(algorithm->name())) return Status::OK();
    return registry.Register(std::move(algorithm));
  };
  DPC_RETURN_IF_ERROR(add(std::make_unique<OneClusterAlgorithm>()));
  DPC_RETURN_IF_ERROR(add(std::make_unique<KClusterAlgorithm>()));
  DPC_RETURN_IF_ERROR(add(std::make_unique<OutlierScreenAlgorithm>()));
  DPC_RETURN_IF_ERROR(add(std::make_unique<InteriorPointAlgorithm>()));
  DPC_RETURN_IF_ERROR(add(std::make_unique<SampleAggregateAlgorithm>()));
  DPC_RETURN_IF_ERROR(add(std::make_unique<ExpMechBaselineAlgorithm>()));
  DPC_RETURN_IF_ERROR(add(std::make_unique<NoisyMeanBaselineAlgorithm>()));
  DPC_RETURN_IF_ERROR(add(std::make_unique<ThresholdReleaseAlgorithm>()));
  DPC_RETURN_IF_ERROR(add(std::make_unique<NonPrivateAlgorithm>()));
  return Status::OK();
}

}  // namespace dpcluster
