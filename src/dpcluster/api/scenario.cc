#include "dpcluster/api/scenario.h"

#include <cstdio>
#include <utility>

namespace dpcluster {
namespace {

std::string EpsilonTag(double epsilon) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", epsilon);
  return buf;
}

}  // namespace

Request ScenarioRequest(const ScenarioInstance& instance,
                        std::string algorithm, PrivacyParams budget,
                        std::size_t num_threads) {
  Request request;
  request.label =
      instance.scenario + "/" + algorithm + "/eps" + EpsilonTag(budget.epsilon);
  request.algorithm = std::move(algorithm);
  request.data = instance.points;
  request.domain = instance.domain;
  request.budget = budget;
  request.t = instance.t;
  request.num_threads = num_threads;
  return request;
}

std::vector<Request> ScenarioRequestGrid(const ScenarioInstance& instance,
                                         std::span<const std::string> algorithms,
                                         std::span<const double> epsilons,
                                         double delta,
                                         std::size_t num_threads) {
  std::vector<Request> requests;
  requests.reserve(algorithms.size() * epsilons.size());
  for (const std::string& algorithm : algorithms) {
    for (double epsilon : epsilons) {
      requests.push_back(ScenarioRequest(instance, algorithm,
                                         {epsilon, delta}, num_threads));
    }
  }
  return requests;
}

}  // namespace dpcluster
