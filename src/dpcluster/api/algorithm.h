// The common interface every solver algorithm — the paper pipeline, its
// derived problems, and the four baselines — implements to be servable
// through the Solver façade. Implementations adapt the internal free
// functions (OneCluster, KCluster, ...) to the typed Request/Response API and
// record their privacy spend through the request's BudgetSession.

#ifndef DPCLUSTER_API_ALGORITHM_H_
#define DPCLUSTER_API_ALGORITHM_H_

#include <string_view>

#include "dpcluster/api/budget.h"
#include "dpcluster/api/request.h"
#include "dpcluster/api/response.h"
#include "dpcluster/common/status.h"
#include "dpcluster/random/rng.h"

namespace dpcluster {

class Algorithm {
 public:
  virtual ~Algorithm() = default;

  /// Registry key ("one_cluster", "exp_mech_baseline", ...).
  virtual std::string_view name() const = 0;

  /// The problem family this algorithm solves.
  virtual ProblemKind kind() const = 0;

  /// One-line human-readable description (CLI --list output).
  virtual std::string_view description() const = 0;

  /// Algorithm-specific request checks (t present, 1D-only, ...), run by the
  /// Solver after the generic Request::Validate.
  virtual Status ValidateRequest(const Request& request) const = 0;

  /// Executes the algorithm. Every differentially private interaction must be
  /// charged to `session` (the Solver rejects responses whose session spend
  /// exceeds the request budget via BudgetSession's own overdraw check).
  /// Implementations fill the artifact fields of Response; the Solver fills
  /// the bookkeeping fields (algorithm, kind, charged, timing, diagnostics).
  virtual Result<Response> Run(Rng& rng, const Request& request,
                               BudgetSession& session) const = 0;
};

}  // namespace dpcluster

#endif  // DPCLUSTER_API_ALGORITHM_H_
