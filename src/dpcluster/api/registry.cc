#include "dpcluster/api/registry.h"

#include <utility>

namespace dpcluster {

Status AlgorithmRegistry::Register(std::unique_ptr<Algorithm> algorithm) {
  if (algorithm == nullptr) {
    return Status::InvalidArgument("Register: algorithm is null");
  }
  std::string key(algorithm->name());
  if (key.empty()) {
    return Status::InvalidArgument("Register: algorithm name is empty");
  }
  auto [it, inserted] = algorithms_.emplace(std::move(key), std::move(algorithm));
  if (!inserted) {
    return Status::InvalidArgument("Register: duplicate algorithm name '" +
                                   it->first + "'");
  }
  return Status::OK();
}

Result<const Algorithm*> AlgorithmRegistry::Lookup(std::string_view name) const {
  auto it = algorithms_.find(name);
  if (it == algorithms_.end()) {
    std::string known;
    for (const auto& [key, unused] : algorithms_) {
      if (!known.empty()) known += ", ";
      known += key;
    }
    return Status::NotFound("no algorithm named '" + std::string(name) +
                            "' (registered: " + known + ")");
  }
  return it->second.get();
}

bool AlgorithmRegistry::Contains(std::string_view name) const {
  return algorithms_.find(name) != algorithms_.end();
}

std::vector<std::string> AlgorithmRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(algorithms_.size());
  for (const auto& [key, unused] : algorithms_) names.push_back(key);
  return names;  // std::map iterates in sorted order.
}

AlgorithmRegistry& AlgorithmRegistry::Global() {
  static AlgorithmRegistry* registry = [] {
    auto* r = new AlgorithmRegistry();
    // Built-in registration only fails on duplicate names, impossible here.
    RegisterBuiltinAlgorithms(*r);
    return r;
  }();
  return *registry;
}

}  // namespace dpcluster
