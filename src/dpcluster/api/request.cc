#include "dpcluster/api/request.h"

namespace dpcluster {

const char* ProblemKindName(ProblemKind kind) {
  switch (kind) {
    case ProblemKind::kOneCluster:
      return "one-cluster";
    case ProblemKind::kKCluster:
      return "k-cluster";
    case ProblemKind::kOutlier:
      return "outlier";
    case ProblemKind::kInteriorPoint:
      return "interior-point";
    case ProblemKind::kSampleAggregate:
      return "sample-aggregate";
    case ProblemKind::kBaseline:
      return "baseline";
  }
  return "unknown";
}

Status Request::Validate() const {
  if (algorithm.empty()) {
    return Status::InvalidArgument("Request: algorithm name is empty");
  }
  DPC_RETURN_IF_ERROR(budget.Validate());
  if (!(beta > 0.0) || !(beta < 1.0)) {
    return Status::InvalidArgument("Request: beta must be in (0,1)");
  }
  if (data.empty()) {
    return Status::InvalidArgument("Request: data is empty");
  }
  if (domain.has_value() && domain->dim() != data.dim()) {
    return Status::InvalidArgument(
        "Request: domain dimension does not match data dimension");
  }
  if (!(tuning.radius_budget_fraction > 0.0) ||
      !(tuning.radius_budget_fraction < 1.0)) {
    return Status::InvalidArgument(
        "Request: tuning.radius_budget_fraction must be in (0,1)");
  }
  if (!(tuning.refine_fraction >= 0.0) || !(tuning.refine_fraction < 1.0)) {
    return Status::InvalidArgument(
        "Request: tuning.refine_fraction must be in [0,1)");
  }
  if (!(inlier_fraction > 0.0) || !(inlier_fraction <= 1.0)) {
    return Status::InvalidArgument(
        "Request: inlier_fraction must be in (0,1]");
  }
  if (!(alpha > 0.0) || !(alpha <= 1.0)) {
    return Status::InvalidArgument("Request: alpha must be in (0,1]");
  }
  return Status::OK();
}

}  // namespace dpcluster
