#include "dpcluster/api/request.h"

#include <algorithm>
#include <memory>
#include <utility>

namespace dpcluster {
namespace {

// True if the index views exactly this data with every row active.
bool IndexMatches(const IndexedDataset& index, const PointSet& data,
                  const std::optional<GridDomain>& domain) {
  if (index.size() != data.size() || index.dim() != data.dim() ||
      index.active_size() != index.size()) {
    return false;
  }
  if (domain.has_value() &&
      (index.domain().levels() != domain->levels() ||
       index.domain().dim() != domain->dim() ||
       index.domain().axis_length() != domain->axis_length())) {
    return false;
  }
  const std::span<const double> a = index.points().Data();
  const std::span<const double> b = data.Data();
  return std::equal(a.begin(), a.end(), b.begin(), b.end());
}

}  // namespace

const char* ProblemKindName(ProblemKind kind) {
  switch (kind) {
    case ProblemKind::kOneCluster:
      return "one-cluster";
    case ProblemKind::kKCluster:
      return "k-cluster";
    case ProblemKind::kOutlier:
      return "outlier";
    case ProblemKind::kInteriorPoint:
      return "interior-point";
    case ProblemKind::kSampleAggregate:
      return "sample-aggregate";
    case ProblemKind::kBaseline:
      return "baseline";
  }
  return "unknown";
}

Status Request::Validate() const {
  if (algorithm.empty()) {
    return Status::InvalidArgument("Request: algorithm name is empty");
  }
  DPC_RETURN_IF_ERROR(budget.Validate());
  if (!(beta > 0.0) || !(beta < 1.0)) {
    return Status::InvalidArgument("Request: beta must be in (0,1)");
  }
  if (data.empty()) {
    return Status::InvalidArgument("Request: data is empty");
  }
  if (domain.has_value() && domain->dim() != data.dim()) {
    return Status::InvalidArgument(
        "Request: domain dimension does not match data dimension");
  }
  if (!(tuning.radius_budget_fraction > 0.0) ||
      !(tuning.radius_budget_fraction < 1.0)) {
    return Status::InvalidArgument(
        "Request: tuning.radius_budget_fraction must be in (0,1)");
  }
  if (!(tuning.refine_fraction >= 0.0) || !(tuning.refine_fraction < 1.0)) {
    return Status::InvalidArgument(
        "Request: tuning.refine_fraction must be in [0,1)");
  }
  if (!(inlier_fraction > 0.0) || !(inlier_fraction <= 1.0)) {
    return Status::InvalidArgument(
        "Request: inlier_fraction must be in (0,1]");
  }
  if (!(alpha > 0.0) || !(alpha <= 1.0)) {
    return Status::InvalidArgument("Request: alpha must be in (0,1]");
  }
  if (!(tuning.subsample_grid_cap_factor >= 1.0)) {
    return Status::InvalidArgument(
        "Request: tuning.subsample_grid_cap_factor must be >= 1");
  }
  if (shared_index != nullptr && !IndexMatches(*shared_index, data, domain)) {
    return Status::InvalidArgument(
        "Request: shared_index does not view this request's data (build it "
        "with BuildSharedIndex over the same data and domain, all rows "
        "active)");
  }
  return Status::OK();
}

Result<std::shared_ptr<IndexedDataset>> BuildSharedIndex(
    const Request& request) {
  if (!request.domain.has_value()) {
    return Status::InvalidArgument(
        "BuildSharedIndex: the request carries no domain");
  }
  DPC_ASSIGN_OR_RETURN(IndexedDataset index,
                       IndexedDataset::Create(request.data, *request.domain));
  index.set_index_geometry(request.tuning.index_geometry);
  return std::make_shared<IndexedDataset>(std::move(index));
}

Result<std::size_t> ShareIndexAcross(std::span<Request> requests) {
  const Request* source = nullptr;
  for (const Request& request : requests) {
    if (request.domain.has_value() && !request.data.empty()) {
      source = &request;
      break;
    }
  }
  if (source == nullptr) return std::size_t{0};
  DPC_ASSIGN_OR_RETURN(std::shared_ptr<IndexedDataset> index,
                       BuildSharedIndex(*source));
  std::size_t attached = 0;
  for (Request& request : requests) {
    if (request.shared_index != nullptr) continue;
    if (!IndexMatches(*index, request.data, request.domain)) continue;
    request.shared_index = index;
    ++attached;
  }
  return attached;
}

}  // namespace dpcluster
