#include "dpcluster/api/request.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "dpcluster/coreset/coreset.h"
#include "dpcluster/parallel/thread_pool.h"

namespace dpcluster {
namespace {

bool DomainMatches(const IndexedDataset& index,
                   const std::optional<GridDomain>& domain) {
  return !domain.has_value() ||
         (index.domain().levels() == domain->levels() &&
          index.domain().dim() == domain->dim() &&
          index.domain().axis_length() == domain->axis_length());
}

// True if the index views exactly this data with every row active. A
// weighted index is a coreset summary: its rows cannot be compared to the
// data row-for-row, so the check is mass + dimension + domain — full
// correspondence is the builder's contract (BuildSharedIndex compresses the
// request's own data; the service cache keys entries on a dataset
// fingerprint).
bool IndexMatches(const IndexedDataset& index, const PointSet& data,
                  const std::optional<GridDomain>& domain) {
  if (index.weighted()) {
    return index.total_mass() == data.size() && index.dim() == data.dim() &&
           index.active_size() == index.size() && DomainMatches(index, domain);
  }
  if (index.size() != data.size() || index.dim() != data.dim() ||
      index.active_size() != index.size()) {
    return false;
  }
  if (!DomainMatches(index, domain)) return false;
  const std::span<const double> a = index.points().Data();
  const std::span<const double> b = data.Data();
  return std::equal(a.begin(), a.end(), b.begin(), b.end());
}

}  // namespace

const char* ProblemKindName(ProblemKind kind) {
  switch (kind) {
    case ProblemKind::kOneCluster:
      return "one-cluster";
    case ProblemKind::kKCluster:
      return "k-cluster";
    case ProblemKind::kOutlier:
      return "outlier";
    case ProblemKind::kInteriorPoint:
      return "interior-point";
    case ProblemKind::kSampleAggregate:
      return "sample-aggregate";
    case ProblemKind::kBaseline:
      return "baseline";
  }
  return "unknown";
}

Status Request::Validate() const {
  if (algorithm.empty()) {
    return Status::InvalidArgument("Request: algorithm name is empty");
  }
  DPC_RETURN_IF_ERROR(budget.Validate());
  if (!(beta > 0.0) || !(beta < 1.0)) {
    return Status::InvalidArgument("Request: beta must be in (0,1)");
  }
  if (data.empty()) {
    return Status::InvalidArgument("Request: data is empty");
  }
  if (domain.has_value() && domain->dim() != data.dim()) {
    return Status::InvalidArgument(
        "Request: domain dimension does not match data dimension");
  }
  if (!(tuning.radius_budget_fraction > 0.0) ||
      !(tuning.radius_budget_fraction < 1.0)) {
    return Status::InvalidArgument(
        "Request: tuning.radius_budget_fraction must be in (0,1)");
  }
  if (!(tuning.refine_fraction >= 0.0) || !(tuning.refine_fraction < 1.0)) {
    return Status::InvalidArgument(
        "Request: tuning.refine_fraction must be in [0,1)");
  }
  if (!(inlier_fraction > 0.0) || !(inlier_fraction <= 1.0)) {
    return Status::InvalidArgument(
        "Request: inlier_fraction must be in (0,1]");
  }
  if (!(alpha > 0.0) || !(alpha <= 1.0)) {
    return Status::InvalidArgument("Request: alpha must be in (0,1]");
  }
  if (!(tuning.subsample_grid_cap_factor >= 1.0)) {
    return Status::InvalidArgument(
        "Request: tuning.subsample_grid_cap_factor must be >= 1");
  }
  if (!(tuning.stream_compact_fraction >= 0.0) ||
      !(tuning.stream_compact_fraction < 1.0)) {
    return Status::InvalidArgument(
        "Request: tuning.stream_compact_fraction must be in [0,1)");
  }
  if (!(tuning.coreset_staleness_fraction >= 0.0)) {
    return Status::InvalidArgument(
        "Request: tuning.coreset_staleness_fraction must be >= 0");
  }
  if (tuning.coreset && tuning.coreset_target_size < 1) {
    return Status::InvalidArgument(
        "Request: tuning.coreset_target_size must be >= 1");
  }
  if (shared_index != nullptr && !IndexMatches(*shared_index, data, domain)) {
    return Status::InvalidArgument(
        "Request: shared_index does not view this request's data (build it "
        "with BuildSharedIndex over the same data and domain, all rows "
        "active)");
  }
  return Status::OK();
}

Result<std::shared_ptr<IndexedDataset>> BuildSharedIndex(
    const Request& request) {
  if (!request.domain.has_value()) {
    return Status::InvalidArgument(
        "BuildSharedIndex: the request carries no domain");
  }
  // With the coreset knob on (and a large enough input), the shared index IS
  // the weighted summary: every consumer of the lend then runs at summary
  // size, and the compression happens once for the whole batch.
  if (request.tuning.coreset &&
      request.data.size() >= request.tuning.coreset_min_points) {
    CoresetOptions copts;
    copts.enabled = true;
    copts.min_points = request.tuning.coreset_min_points;
    copts.target_size = request.tuning.coreset_target_size;
    ThreadPool pool(request.num_threads);
    DPC_ASSIGN_OR_RETURN(
        CoresetSummary summary,
        BuildCoreset(request.data, *request.domain, copts, &pool));
    DPC_ASSIGN_OR_RETURN(
        IndexedDataset index,
        MakeWeightedIndex(std::move(summary), *request.domain));
    index.set_index_geometry(request.tuning.index_geometry);
    return std::make_shared<IndexedDataset>(std::move(index));
  }
  DPC_ASSIGN_OR_RETURN(IndexedDataset index,
                       IndexedDataset::Create(request.data, *request.domain));
  index.set_index_geometry(request.tuning.index_geometry);
  return std::make_shared<IndexedDataset>(std::move(index));
}

Result<std::size_t> ShareIndexAcross(std::span<Request> requests) {
  const Request* source = nullptr;
  for (const Request& request : requests) {
    if (request.domain.has_value() && !request.data.empty()) {
      source = &request;
      break;
    }
  }
  if (source == nullptr) return std::size_t{0};
  DPC_ASSIGN_OR_RETURN(std::shared_ptr<IndexedDataset> index,
                       BuildSharedIndex(*source));
  const std::span<const double> source_bytes = source->data.Data();
  std::size_t attached = 0;
  for (Request& request : requests) {
    if (request.shared_index != nullptr) continue;
    if (!IndexMatches(*index, request.data, request.domain)) continue;
    if (index->weighted()) {
      // IndexMatches cannot compare summary rows to data rows; require the
      // request's data to be byte-identical to the data the summary was
      // built from before lending it.
      const std::span<const double> bytes = request.data.Data();
      if (!std::equal(bytes.begin(), bytes.end(), source_bytes.begin(),
                      source_bytes.end())) {
        continue;
      }
    }
    request.shared_index = index;
    ++attached;
  }
  return attached;
}

}  // namespace dpcluster
