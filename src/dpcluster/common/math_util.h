// Small numeric helpers shared across the library: iterated logarithm (log*),
// integer log2, numerically stable log-sum-exp, and the tower function used by
// the paper's lower-bound statement (Corollary 5.4).

#ifndef DPCLUSTER_COMMON_MATH_UTIL_H_
#define DPCLUSTER_COMMON_MATH_UTIL_H_

#include <cstdint>
#include <span>

namespace dpcluster {

/// Iterated logarithm base 2: the number of times log2 must be applied to x
/// before the result is <= 1. IteratedLog(x) = 0 for x <= 1.
/// Examples: log*(2)=1, log*(4)=2, log*(16)=3, log*(65536)=4, log*(2^65536)=5.
int IteratedLog(double x);

/// tower(0)=1, tower(j)=2^tower(j-1), saturating at +infinity (returned as
/// double). Used by the lower-bound demo (Corollary 5.4).
double Tower(int j);

/// floor(log2(x)) for x >= 1.
int FloorLog2(std::uint64_t x);

/// ceil(log2(x)) for x >= 1; CeilLog2(1) == 0.
int CeilLog2(std::uint64_t x);

/// Numerically stable log(sum_i exp(v_i)). Returns -infinity on empty input.
double LogSumExp(std::span<const double> values);

/// The paper's Gamma promise for GoodRadius (Algorithm 1, verbatim constants):
///   Gamma = 8^{log*(2|X|sqrt(d))} * (144 log*(2|X|sqrt(d)) / eps)
///           * log(24 log*(2|X|sqrt(d)) / (beta delta)).
/// `domain_points` is 2|X|sqrt(d) (the solution-grid size).
double PaperGamma(double domain_points, double epsilon, double beta, double delta);

}  // namespace dpcluster

#endif  // DPCLUSTER_COMMON_MATH_UTIL_H_
