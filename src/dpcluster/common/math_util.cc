#include "dpcluster/common/math_util.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "dpcluster/common/check.h"

namespace dpcluster {

int IteratedLog(double x) {
  int count = 0;
  while (x > 1.0) {
    x = std::log2(x);
    ++count;
    DPC_CHECK_LT(count, 64);  // log* of any representable double is tiny.
  }
  return count;
}

double Tower(int j) {
  DPC_CHECK_GE(j, 0);
  double v = 1.0;
  for (int i = 0; i < j; ++i) {
    if (v > 1023.0) return std::numeric_limits<double>::infinity();
    v = std::exp2(v);
  }
  return v;
}

int FloorLog2(std::uint64_t x) {
  DPC_CHECK_GE(x, 1u);
  return 63 - std::countl_zero(x);
}

int CeilLog2(std::uint64_t x) {
  DPC_CHECK_GE(x, 1u);
  int fl = FloorLog2(x);
  return (std::uint64_t{1} << fl) == x ? fl : fl + 1;
}

double LogSumExp(std::span<const double> values) {
  if (values.empty()) return -std::numeric_limits<double>::infinity();
  double m = *std::max_element(values.begin(), values.end());
  if (!std::isfinite(m)) return m;  // All -inf, or contains +inf.
  double sum = 0.0;
  for (double v : values) sum += std::exp(v - m);
  return m + std::log(sum);
}

double PaperGamma(double domain_points, double epsilon, double beta, double delta) {
  DPC_CHECK_GT(epsilon, 0.0);
  DPC_CHECK_GT(beta, 0.0);
  DPC_CHECK_GT(delta, 0.0);
  const double ls = static_cast<double>(IteratedLog(domain_points));
  return std::pow(8.0, ls) * (144.0 * ls / epsilon) *
         std::log(24.0 * ls / (beta * delta));
}

}  // namespace dpcluster
