// Status / Result error model for the dpcluster library.
//
// Following the RocksDB / Arrow idiom, no exceptions cross the public API.
// Expected failures (invalid arguments, NoisyAVG returning "bot", sparse-vector
// budget exhaustion, ...) are reported through Status; programming errors abort
// through the DPC_CHECK macros in check.h.

#ifndef DPCLUSTER_COMMON_STATUS_H_
#define DPCLUSTER_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace dpcluster {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  /// Caller passed parameters outside the documented domain.
  kInvalidArgument,
  /// A private selection step ended with no admissible output (e.g. the
  /// stability-based histogram suppressed every cell, or NoisyAVG returned bot).
  kNoPrivateAnswer,
  /// A resource cap documented in the options was exceeded (e.g. GoodRadius
  /// profile size limit).
  kResourceExhausted,
  /// The algorithm ran out of its iteration budget (e.g. AboveThreshold loop in
  /// GoodCenter reached its round cap without a hit).
  kDeadlineExceeded,
  /// Internal invariant failed in a recoverable context.
  kInternal,
  /// A lookup by name/key found no entry (e.g. an unregistered algorithm).
  kNotFound,
};

/// Human-readable name of a StatusCode ("OK", "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// A cheap value-type carrying success or an error code plus message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NoPrivateAnswer(std::string msg) {
    return Status(StatusCode::kNoPrivateAnswer, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg) : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Result<T> is a Status plus, on success, a value of type T.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}  // NOLINT
  /// Implicit construction from an error status. Must not be OK.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Value accessors; only valid when ok().
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace dpcluster

/// Propagates a non-OK Status from an expression to the caller.
#define DPC_RETURN_IF_ERROR(expr)                   \
  do {                                              \
    ::dpcluster::Status _dpc_status = (expr);       \
    if (!_dpc_status.ok()) return _dpc_status;      \
  } while (0)

/// Evaluates a Result expression; assigns the value to lhs or propagates the error.
#define DPC_ASSIGN_OR_RETURN(lhs, expr)             \
  DPC_ASSIGN_OR_RETURN_IMPL_(                       \
      DPC_STATUS_CONCAT_(_dpc_result, __LINE__), lhs, expr)

#define DPC_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr)  \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#define DPC_STATUS_CONCAT_(a, b) DPC_STATUS_CONCAT_IMPL_(a, b)
#define DPC_STATUS_CONCAT_IMPL_(a, b) a##b

#endif  // DPCLUSTER_COMMON_STATUS_H_
