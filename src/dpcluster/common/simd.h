// Function-multiversioning helper for the blocked numeric kernels.
//
// DPC_TARGET_CLONES_AVX2 marks a function for runtime dispatch between a
// baseline and an AVX2 build on toolchains that support it (GCC/Clang ifunc
// on x86-64 glibc); everywhere else it expands to nothing and the plain
// function is used. The AVX2 clone deliberately does NOT enable FMA: without
// contraction every lane performs the same mul-then-add roundings as the
// scalar build, so kernel outputs are bit-identical across instruction sets.

#ifndef DPCLUSTER_COMMON_SIMD_H_
#define DPCLUSTER_COMMON_SIMD_H_

#if defined(__x86_64__) && defined(__gnu_linux__) && \
    (defined(__GNUC__) || defined(__clang__))
#define DPC_TARGET_CLONES_AVX2 __attribute__((target_clones("default", "avx2")))
#else
#define DPC_TARGET_CLONES_AVX2
#endif

#endif  // DPCLUSTER_COMMON_SIMD_H_
