// Internal invariant checks. These abort on failure and are active in all build
// types: a differential-privacy library must never silently continue past a
// violated precondition, since the consequence is usually a privacy (not just
// correctness) bug.

#ifndef DPCLUSTER_COMMON_CHECK_H_
#define DPCLUSTER_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace dpcluster {
namespace internal {

[[noreturn]] inline void CheckFailed(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "DPC_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace dpcluster

/// Aborts if `cond` is false. Active in every build type.
#define DPC_CHECK(cond)                                              \
  do {                                                               \
    if (!(cond)) {                                                   \
      ::dpcluster::internal::CheckFailed(__FILE__, __LINE__, #cond); \
    }                                                                \
  } while (0)

#define DPC_CHECK_GE(a, b) DPC_CHECK((a) >= (b))
#define DPC_CHECK_GT(a, b) DPC_CHECK((a) > (b))
#define DPC_CHECK_LE(a, b) DPC_CHECK((a) <= (b))
#define DPC_CHECK_LT(a, b) DPC_CHECK((a) < (b))
#define DPC_CHECK_EQ(a, b) DPC_CHECK((a) == (b))
#define DPC_CHECK_NE(a, b) DPC_CHECK((a) != (b))

#endif  // DPCLUSTER_COMMON_CHECK_H_
