#include "dpcluster/common/status.h"

namespace dpcluster {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNoPrivateAnswer:
      return "NoPrivateAnswer";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotFound:
      return "NotFound";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace dpcluster
