// Algorithm 3 (IntPoint): solving the interior point problem on X via a
// 1-cluster solver — the reduction behind the paper's lower bound (Theorem 5.3:
// any private 1-cluster solver with reasonable w yields a private interior
// point solver, whose sample complexity must grow with log*|X| by [4]; hence
// the 1-cluster problem is impossible over infinite domains, Corollary 5.4).
//
// Besides powering the lower-bound demo (bench_lowerbound), this is a useful
// primitive in its own right: a private 1D "typical value" release.

#ifndef DPCLUSTER_CORE_INTERIOR_POINT_H_
#define DPCLUSTER_CORE_INTERIOR_POINT_H_

#include <cstddef>
#include <span>

#include "dpcluster/common/status.h"
#include "dpcluster/core/one_cluster.h"
#include "dpcluster/geo/grid_domain.h"
#include "dpcluster/random/rng.h"

namespace dpcluster {

struct InteriorPointOptions {
  /// Budget of EACH of the two components; the whole call is (2 eps, 2 delta)-DP
  /// exactly as Theorem 5.3 states.
  PrivacyParams params{1.0, 1e-9};
  double beta = 0.1;
  /// Size n of the middle sub-database fed to the 1-cluster solver;
  /// 0 = half the input size.
  std::size_t middle_n = 0;
  /// Target count for the 1-cluster solver; 0 = middle_n / 2.
  std::size_t cluster_t = 0;
  /// Inner 1-cluster configuration (params/beta overwritten).
  OneClusterOptions one_cluster;

  Status Validate() const;
};

struct InteriorPointResult {
  /// The released point j with min(S) <= j <= max(S) (w.h.p.).
  double point = 0.0;
  /// Diagnostics: the inner 1-cluster output.
  OneClusterResult cluster;
  /// Number of candidate edge points |J| handed to RecConcave (releasable).
  std::size_t candidates = 0;
};

/// Runs IntPoint on a 1D database (unsorted). `domain` must be 1-dimensional.
Result<InteriorPointResult> InteriorPoint(Rng& rng, std::span<const double> data,
                                          const GridDomain& domain,
                                          const InteriorPointOptions& options);

}  // namespace dpcluster

#endif  // DPCLUSTER_CORE_INTERIOR_POINT_H_
