#include "dpcluster/core/one_cluster.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "dpcluster/common/check.h"
#include "dpcluster/coreset/coreset.h"
#include "dpcluster/dp/accountant.h"
#include "dpcluster/dp/stable_histogram.h"
#include "dpcluster/geo/dataset.h"
#include "dpcluster/parallel/thread_pool.h"

namespace dpcluster {

Status OneClusterOptions::Validate() const {
  DPC_RETURN_IF_ERROR(params.ValidateWithPositiveDelta());
  if (!(beta > 0.0) || !(beta < 1.0)) {
    return Status::InvalidArgument("OneCluster: beta must be in (0,1)");
  }
  if (!(radius_budget_fraction > 0.0) || !(radius_budget_fraction < 1.0)) {
    return Status::InvalidArgument(
        "OneCluster: radius_budget_fraction must be in (0,1)");
  }
  return Status::OK();
}

namespace {

// Shared driver: `index` == nullptr runs both phases on `s`; otherwise both
// phases are served by the index's active points (s unused) — span-based row
// access plus the cached spatial index, no ActiveView materialization.
Result<OneClusterResult> OneClusterImpl(Rng& rng, const PointSet* s,
                                        const IndexedDataset* index,
                                        std::size_t t, const GridDomain& domain,
                                        const OneClusterOptions& options) {
  OneClusterResult result;

  // Phase 1: GoodRadius with its share of the budget, served by the shared
  // index when one is provided (bit-identical outputs either way).
  GoodRadiusOptions radius_opts = options.radius;
  radius_opts.params = options.params.Fraction(options.radius_budget_fraction);
  radius_opts.beta = options.beta / 2.0;
  radius_opts.num_threads = options.num_threads;
  Result<GoodRadiusResult> radius_stage =
      index != nullptr ? GoodRadius(rng, *index, t, radius_opts)
                       : GoodRadius(rng, *s, t, domain, radius_opts);
  DPC_RETURN_IF_ERROR(radius_stage.status());
  result.radius_stage = *radius_stage;
  result.ledger.Charge("good_radius", radius_opts.params);

  // A zero radius (duplicate-point cluster) cannot drive GoodCenter's interval
  // geometry; fall back to the smallest positive grid radius.
  const double r =
      std::max(result.radius_stage.radius, domain.RadiusFromIndex(1));

  // Phase 2: GoodCenter with the rest, also through the index when provided
  // (gathered-row JL projection; bit-identical by default, see good_center.h).
  GoodCenterOptions center_opts = options.center;
  center_opts.params =
      options.params.Fraction(1.0 - options.radius_budget_fraction);
  center_opts.beta = options.beta / 2.0;
  center_opts.num_threads = options.num_threads;
  if (center_opts.domain_axis_length > 0.0) {
    center_opts.domain_axis_length = domain.axis_length();
  }
  Result<GoodCenterResult> center_stage =
      index != nullptr ? GoodCenter(rng, *index, t, r, center_opts)
                       : GoodCenter(rng, *s, t, r, center_opts);
  DPC_RETURN_IF_ERROR(center_stage.status());
  result.center_stage = std::move(*center_stage);
  result.ledger.Charge("good_center", center_opts.params);

  result.ball.center = result.center_stage.center;
  // The claimed radius; never larger than the cube's diameter.
  const double diameter = domain.axis_length() *
                          std::sqrt(static_cast<double>(domain.dim()));
  result.ball.radius = std::min(result.center_stage.guarantee_radius, diameter);
  return result;
}

}  // namespace

Result<OneClusterResult> OneCluster(Rng& rng, const PointSet& s, std::size_t t,
                                    const GridDomain& domain,
                                    const OneClusterOptions& options,
                                    const IndexedDataset* index) {
  DPC_RETURN_IF_ERROR(options.Validate());
  if (s.dim() != domain.dim()) {
    return Status::InvalidArgument("OneCluster: domain dimension mismatch");
  }
  if (index != nullptr) {
    if (index->weighted()) {
      // A weighted lend is a coreset summary of s (service cache path);
      // full correspondence is the lender's contract — check what is
      // checkable cheaply.
      if (index->total_mass() != s.size() || index->dim() != s.dim() ||
          index->active_size() != index->size()) {
        return Status::InvalidArgument(
            "OneCluster: weighted index must summarize exactly the dataset "
            "with every row active");
      }
    } else if (index->active_size() != s.size()) {
      return Status::InvalidArgument(
          "OneCluster: index active set does not match the dataset");
    }
  }
  // Coreset stage: collapse once, run both phases on the weighted summary
  // index. Only the raw-PointSet path compresses — a lent index is the
  // caller's construction.
  if (index == nullptr && options.coreset.enabled &&
      s.size() >= options.coreset.min_points) {
    ThreadPool pool(options.num_threads);
    DPC_ASSIGN_OR_RETURN(CoresetSummary summary,
                         BuildCoreset(s, domain, options.coreset, &pool));
    DPC_ASSIGN_OR_RETURN(IndexedDataset weighted_index,
                         MakeWeightedIndex(std::move(summary), domain));
    OneClusterOptions inner = options;
    inner.coreset.enabled = false;
    return OneCluster(rng, weighted_index, t, inner);
  }
  return OneClusterImpl(rng, &s, index, t, domain, options);
}

Result<OneClusterResult> OneCluster(Rng& rng, const IndexedDataset& index,
                                    std::size_t t,
                                    const OneClusterOptions& options) {
  DPC_RETURN_IF_ERROR(options.Validate());
  if (index.active_size() == 0) {
    return Status::InvalidArgument("OneCluster: empty active set");
  }
  return OneClusterImpl(rng, nullptr, &index, t, index.domain(), options);
}

double RecommendedMinT(std::size_t n, const GridDomain& domain,
                       const OneClusterOptions& options) {
  // GoodRadius loses ~4*Gamma + Laplace tail.
  GoodRadiusOptions radius_opts = options.radius;
  radius_opts.params = options.params.Fraction(options.radius_budget_fraction);
  radius_opts.beta = options.beta / 2.0;
  const double gamma = GoodRadiusGamma(domain, radius_opts);
  const double radius_need =
      4.0 * gamma +
      (4.0 / radius_opts.params.epsilon) * std::log(2.0 / radius_opts.beta);

  // GoodCenter needs the heavy box to survive its threshold and histograms;
  // the binding constraint is the per-axis stable histogram fed |D|/2 points
  // with the advanced-composed epsilon (the sqrt(d)/eps term of the theorem).
  GoodCenterOptions center_opts = options.center;
  center_opts.params =
      options.params.Fraction(1.0 - options.radius_budget_fraction);
  center_opts.beta = options.beta / 2.0;
  const double eps_c = center_opts.params.epsilon;
  const double beta_c = center_opts.beta;
  const double nn = static_cast<double>(n);
  const double sv_loss = (center_opts.threshold_offset_factor / eps_c) *
                         std::log(2.0 * nn / beta_c);
  const double dd = static_cast<double>(domain.dim());
  const double eps_axis =
      std::max(InverseAdvancedEpsilon(eps_c / 4.0, domain.dim(),
                                      center_opts.params.delta / 8.0),
               (eps_c / 4.0) / dd);
  const PrivacyParams axis_params{eps_axis,
                                  center_opts.params.delta / (8.0 * dd)};
  const double axis_need =
      2.0 * StableHistogramBounds::RequiredMaxCount(axis_params, n, beta_c);
  return std::max({radius_need, 2.0 * sv_loss, axis_need});
}

}  // namespace dpcluster
