#include "dpcluster/core/radius_refine.h"

#include <cmath>

#include "dpcluster/common/math_util.h"
#include "dpcluster/geo/ball.h"
#include "dpcluster/random/distributions.h"

namespace dpcluster {

Result<double> RefineRadius(Rng& rng, const PointSet& s,
                            std::span<const double> center, std::size_t t,
                            const GridDomain& domain,
                            const RadiusRefineOptions& options) {
  if (!(options.epsilon > 0.0)) {
    return Status::InvalidArgument("RefineRadius: epsilon must be positive");
  }
  if (!(options.beta > 0.0) || !(options.beta < 1.0)) {
    return Status::InvalidArgument("RefineRadius: beta must be in (0,1)");
  }
  if (center.size() != s.dim()) {
    return Status::InvalidArgument("RefineRadius: center dimension mismatch");
  }
  if (t < 1 || t > s.size()) {
    return Status::InvalidArgument("RefineRadius: 1 <= t <= n required");
  }

  const std::uint64_t grid = domain.RadiusGridSize();
  const int comparisons = CeilLog2(grid) + 1;
  // Ball counts have sensitivity 1; split epsilon across the comparisons.
  const double scale = 2.0 * static_cast<double>(comparisons) / options.epsilon;
  const double margin = scale * std::log(2.0 * static_cast<double>(comparisons) /
                                         options.beta);

  std::uint64_t lo = 0;
  std::uint64_t hi = grid - 1;
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    const double count = static_cast<double>(
        CountWithin(s, center, domain.RadiusFromIndex(mid)));
    if (count + SampleLaplace(rng, scale) >= static_cast<double>(t) - margin) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return domain.RadiusFromIndex(lo);
}

}  // namespace dpcluster
