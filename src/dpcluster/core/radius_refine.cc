#include "dpcluster/core/radius_refine.h"

#include <cmath>

#include "dpcluster/common/math_util.h"
#include "dpcluster/geo/ball.h"
#include "dpcluster/geo/dataset.h"
#include "dpcluster/random/distributions.h"

namespace dpcluster {
namespace {

// The noisy binary search, shared by both entry points. `count_at(radius)`
// returns the exact ball count; everything else is radius-grid bookkeeping,
// so a callback that counts through an active-id indirection releases exactly
// the bytes the materialized-subset path would.
template <typename CountFn>
Result<double> RefineRadiusSearch(Rng& rng, std::size_t t,
                                  const GridDomain& domain,
                                  const RadiusRefineOptions& options,
                                  CountFn&& count_at) {
  const std::uint64_t grid = domain.RadiusGridSize();
  const int comparisons = CeilLog2(grid) + 1;
  // Ball counts have sensitivity 1; split epsilon across the comparisons.
  const double scale = 2.0 * static_cast<double>(comparisons) / options.epsilon;
  const double margin = scale * std::log(2.0 * static_cast<double>(comparisons) /
                                         options.beta);

  std::uint64_t lo = 0;
  std::uint64_t hi = grid - 1;
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    const double count =
        static_cast<double>(count_at(domain.RadiusFromIndex(mid)));
    if (count + SampleLaplace(rng, scale) >= static_cast<double>(t) - margin) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return domain.RadiusFromIndex(lo);
}

Status ValidateRefineArgs(const RadiusRefineOptions& options,
                          std::size_t center_dim, std::size_t data_dim,
                          std::size_t t, std::size_t n) {
  if (!(options.epsilon > 0.0)) {
    return Status::InvalidArgument("RefineRadius: epsilon must be positive");
  }
  if (!(options.beta > 0.0) || !(options.beta < 1.0)) {
    return Status::InvalidArgument("RefineRadius: beta must be in (0,1)");
  }
  if (center_dim != data_dim) {
    return Status::InvalidArgument("RefineRadius: center dimension mismatch");
  }
  if (t < 1 || t > n) {
    return Status::InvalidArgument("RefineRadius: 1 <= t <= n required");
  }
  return Status::OK();
}

}  // namespace

Result<double> RefineRadius(Rng& rng, const PointSet& s,
                            std::span<const double> center, std::size_t t,
                            const GridDomain& domain,
                            const RadiusRefineOptions& options) {
  DPC_RETURN_IF_ERROR(
      ValidateRefineArgs(options, center.size(), s.dim(), t, s.size()));
  return RefineRadiusSearch(rng, t, domain, options, [&](double radius) {
    return CountWithin(s, center, radius);
  });
}

Result<double> RefineRadius(Rng& rng, const IndexedDataset& index,
                            std::span<const double> center, std::size_t t,
                            const RadiusRefineOptions& options) {
  DPC_RETURN_IF_ERROR(ValidateRefineArgs(
      options, center.size(), index.dim(), t,
      static_cast<std::size_t>(index.active_mass())));
  if (index.weighted()) {
    // Weighted rows stand for duplicate-expanded points: count mass, not rows
    // (same per-point predicate, so this equals CountWithin on the expansion).
    return RefineRadiusSearch(rng, t, index.domain(), options,
                              [&](double radius) {
      return MassWithin(index.points(), index.ActiveIds(), index.weights(),
                        center, radius);
    });
  }
  return RefineRadiusSearch(rng, t, index.domain(), options,
                            [&](double radius) {
    return CountWithin(index.points(), index.ActiveIds(), center, radius);
  });
}

}  // namespace dpcluster
