#include "dpcluster/core/radius_profile.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "dpcluster/common/check.h"
#include "dpcluster/geo/dataset.h"
#include "dpcluster/geo/spatial_grid.h"
#include "dpcluster/la/vector_ops.h"
#include "dpcluster/parallel/parallel_for.h"

namespace dpcluster {
namespace {

// Maintains, for a multiset of per-center counts capped at `cap`, the sum of
// the `top` largest values under unit increments. Events only ever move one
// element from value v to v+1, so the t-th-largest threshold `thr` is
// monotone non-decreasing and all updates are amortized O(1).
//
// Invariant: thr is the value of the top-set's smallest member, i.e.
//   cnt_above := #{elements > thr} < top   and   cnt_above + cnt[thr] >= top,
// and the top-t sum is sum_above + thr * (top - cnt_above).
//
// The invariant pins (thr, cnt_above, sum_above) as functions of the count
// histogram alone (thr is exactly the top-th largest value), and every
// quantity is integer-valued, so the state after processing a batch of
// increments is independent of their order — what makes the t-NN pruned
// event stream bit-identical to the all-pairs one.
class CappedTopTracker {
 public:
  CappedTopTracker(std::size_t cap, std::size_t top, std::size_t n_centers)
      : cap_(cap), top_(top), cnt_(cap + 2, 0) {
    DPC_CHECK_GE(top, 1u);
    DPC_CHECK_LE(top, n_centers);
    // All centers start with capped count min(1, cap) (the center itself).
    const std::size_t start = std::min<std::size_t>(1, cap);
    cnt_[start] = n_centers;
    thr_ = start;
    cnt_above_ = 0;
    sum_above_ = 0.0;
  }

  /// Moves one center from capped value `old_value` to min(old_value+1, cap).
  void Increment(std::size_t old_value) {
    if (old_value >= cap_) return;  // Already saturated.
    const std::size_t nv = old_value + 1;
    --cnt_[old_value];
    ++cnt_[nv];
    if (old_value > thr_) {
      sum_above_ += 1.0;  // Stays strictly above the threshold.
    } else if (old_value == thr_) {
      ++cnt_above_;
      sum_above_ += static_cast<double>(nv);
      while (cnt_above_ >= top_) {  // Raise the threshold.
        ++thr_;
        cnt_above_ -= cnt_[thr_];
        sum_above_ -= static_cast<double>(thr_) * static_cast<double>(cnt_[thr_]);
      }
    }
    // old_value < thr_: the element stays outside the top set; nothing moves.
  }

  /// Current sum of the `top` largest capped values.
  double TopSum() const {
    return sum_above_ +
           static_cast<double>(thr_) * static_cast<double>(top_ - cnt_above_);
  }

 private:
  std::size_t cap_;
  std::size_t top_;
  std::vector<std::size_t> cnt_;
  std::size_t thr_;
  std::size_t cnt_above_;
  double sum_above_;
};

// The weighted generalization of CappedTopTracker: elements carry integer
// multiplicities (a weighted row stands for `weight` expanded centers sharing
// one capped value), and an event moves a row's whole mass from `old_value`
// to a possibly much larger `new_value` in one step. The invariant is the
// same — (thr, cnt_above, sum_above) remain functions of the expanded count
// histogram alone — so the tracker state matches running the unweighted
// tracker over the duplicate-expanded events, in any order. All sums are
// exact integers (<= top * cap <= 2^40 at bench scale), so TopSum() equals
// the unweighted tracker's double bit for bit.
class WeightedCappedTracker {
 public:
  WeightedCappedTracker(std::size_t cap, std::size_t top,
                        std::uint64_t total_mass)
      : cap_(cap), top_(top), cnt_(cap + 2, 0) {
    DPC_CHECK_GE(top, 1u);
    DPC_CHECK_LE(top, total_mass);
    const std::size_t start = std::min<std::size_t>(1, cap);
    cnt_[start] = total_mass;
    thr_ = start;
    cnt_above_ = 0;
    sum_above_ = 0;
  }

  /// Moves `mass` expanded centers from capped value `old_value` to
  /// `new_value` (callers pass old_value < new_value <= cap).
  void MoveMass(std::uint64_t mass, std::size_t old_value,
                std::size_t new_value) {
    cnt_[old_value] -= mass;
    cnt_[new_value] += mass;
    if (old_value > thr_) {
      // The mass stays strictly above the threshold; only its sum moves.
      sum_above_ += mass * static_cast<std::uint64_t>(new_value - old_value);
    } else if (new_value > thr_) {
      // Lump jumps can carry mass from at-or-below the threshold to above it
      // (impossible under unit increments from below thr, but routine here).
      cnt_above_ += mass;
      sum_above_ += mass * static_cast<std::uint64_t>(new_value);
      while (cnt_above_ >= top_) {  // Raise the threshold.
        ++thr_;
        cnt_above_ -= cnt_[thr_];
        sum_above_ -= static_cast<std::uint64_t>(thr_) * cnt_[thr_];
      }
    }
    // new_value <= thr_: the mass stays outside the top set; nothing moves.
  }

  double TopSum() const {
    return static_cast<double>(
        sum_above_ +
        static_cast<std::uint64_t>(thr_) *
            static_cast<std::uint64_t>(top_ - cnt_above_));
  }

 private:
  std::size_t cap_;
  std::uint64_t top_;
  std::vector<std::uint64_t> cnt_;
  std::size_t thr_;
  std::uint64_t cnt_above_;
  std::uint64_t sum_above_;
};

// One B-count increment: `center`'s ball gains a point at fine index `index`.
struct Event {
  std::uint64_t index;
  std::uint32_t center;
};

// Weighted increment: `center`'s ball gains `add` expanded points at `index`.
struct WeightedEvent {
  std::uint64_t index;
  std::uint32_t center;
  std::uint32_t add;
};

// The shared sweep over index-sorted events: maintain per-center counts
// (capped at t) and the top-t sum, recording a breakpoint wherever the value
// changes. Only the grouping of events by index matters (see CappedTopTracker),
// never their order within one index.
StepFunction SweepEvents(std::span<const Event> events, std::size_t n,
                         std::size_t t, std::uint64_t fine_domain) {
  std::vector<std::uint32_t> counts(n, 1);  // Every ball contains its center.
  CappedTopTracker tracker(t, t, n);
  const double inv_t = 1.0 / static_cast<double>(t);

  std::vector<std::uint64_t> starts;
  std::vector<double> values;
  std::size_t e = 0;
  // Process events with index 0 first so the r=0 value reflects duplicates.
  while (e < events.size() && events[e].index == 0) {
    const auto c = events[e].center;
    tracker.Increment(std::min<std::size_t>(counts[c], t));
    ++counts[c];
    ++e;
  }
  starts.push_back(0);
  values.push_back(tracker.TopSum() * inv_t);

  while (e < events.size()) {
    const std::uint64_t g = events[e].index;
    while (e < events.size() && events[e].index == g) {
      const auto c = events[e].center;
      tracker.Increment(std::min<std::size_t>(counts[c], t));
      ++counts[c];
      ++e;
    }
    const double value = tracker.TopSum() * inv_t;
    if (value != values.back()) {
      starts.push_back(g);
      values.push_back(value);
    }
  }

  return StepFunction::FromBreakpoints(fine_domain, std::move(starts),
                                       std::move(values));
}

// The weighted sweep: identical structure to SweepEvents, with per-row capped
// values advanced by lump mass moves. A weighted row's expanded copies all
// share one capped count — each copy's ball holds the row's own mass plus
// every within-range row's mass — so the expanded histogram is exactly
// {value(row) with multiplicity weight(row)}, which the tracker maintains.
// Values at every fine index therefore match the duplicate-expanded
// unweighted sweep bit for bit, breakpoints included.
StepFunction SweepWeightedEvents(std::span<const WeightedEvent> events,
                                 std::span<const std::uint64_t> rank_weights,
                                 std::size_t t, std::uint64_t fine_domain) {
  std::uint64_t total_mass = 0;
  for (const std::uint64_t w : rank_weights) total_mass += w;
  const std::size_t cap = t;
  // Per-row capped value; every expanded center starts at min(1, cap).
  std::vector<std::size_t> value(rank_weights.size(),
                                 std::min<std::size_t>(1, cap));
  WeightedCappedTracker tracker(cap, t, total_mass);
  const double inv_t = 1.0 / static_cast<double>(t);

  const auto apply = [&](const WeightedEvent& ev) {
    const std::size_t old_value = value[ev.center];
    const std::size_t nv =
        std::min<std::size_t>(old_value + ev.add, cap);
    if (nv == old_value) return;  // Already saturated.
    tracker.MoveMass(rank_weights[ev.center], old_value, nv);
    value[ev.center] = nv;
  };

  std::vector<std::uint64_t> starts;
  std::vector<double> values;
  std::size_t e = 0;
  // Index-0 events first (duplicate rows and self-mass), as in SweepEvents.
  while (e < events.size() && events[e].index == 0) apply(events[e++]);
  starts.push_back(0);
  values.push_back(tracker.TopSum() * inv_t);

  while (e < events.size()) {
    const std::uint64_t g = events[e].index;
    while (e < events.size() && events[e].index == g) apply(events[e++]);
    const double value_at_g = tracker.TopSum() * inv_t;
    if (value_at_g != values.back()) {
      starts.push_back(g);
      values.push_back(value_at_g);
    }
  }

  return StepFunction::FromBreakpoints(fine_domain, std::move(starts),
                                       std::move(values));
}

// Distance -> fine event index; shared by both generators so their events
// carry identical indices for identical pairs.
inline std::uint64_t FineIndexOf(double dist, double fine_step,
                                 std::uint64_t max_fine) {
  double idx = std::ceil(dist / fine_step - 1e-12);
  if (idx < 0.0) idx = 0.0;
  auto g = static_cast<std::uint64_t>(idx);
  return g > max_fine ? max_fine : g;
}

// All n(n-1) ordered pair events, index-sorted — the O(n^2 (d + log n)) path.
// `row(i)` yields the i-th point, so the same kernel sweeps a PointSet
// directly (identity rows) or the active subset of an IndexedDataset
// (rank -> original id indirection) with identical chunking and event order.
template <typename GetRow>
std::vector<Event> BuildExactEvents(std::size_t n, GetRow&& row,
                                    double fine_step, std::uint64_t max_fine,
                                    ThreadPool* pool) {
  // The O(n^2 d) pair pass runs in parallel over row chunks; per-chunk event
  // vectors concatenated in chunk order reproduce the serial i-ascending
  // sequence exactly, so the profile is independent of the thread count.
  constexpr std::size_t kRowGrain = 32;
  const std::size_t num_chunks = NumChunks(n, kRowGrain);
  std::vector<std::vector<Event>> chunk_events(num_chunks);
  ParallelForChunks(
      pool, 0, n, kRowGrain,
      [&](std::size_t lo, std::size_t hi, std::size_t chunk) {
        std::vector<Event>& local = chunk_events[chunk];
        std::size_t pairs = 0;
        for (std::size_t i = lo; i < hi; ++i) pairs += n - 1 - i;
        local.reserve(2 * pairs);
        for (std::size_t i = lo; i < hi; ++i) {
          const auto xi = row(i);
          for (std::size_t j = i + 1; j < n; ++j) {
            const std::uint64_t g =
                FineIndexOf(Distance(xi, row(j)), fine_step, max_fine);
            local.push_back({g, static_cast<std::uint32_t>(i)});
            local.push_back({g, static_cast<std::uint32_t>(j)});
          }
        }
      },
      kAlwaysParallel);
  std::vector<Event> events;
  events.reserve(n * (n - 1));
  for (std::vector<Event>& local : chunk_events) {
    events.insert(events.end(), local.begin(), local.end());
    local.clear();
    local.shrink_to_fit();
  }
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) { return a.index < b.index; });
  return events;
}

// All weighted pair events over the active rows, index-sorted: pair (i, j)
// raises i's ball by weight(j) (and vice versa) at the shared fine index, and
// each row with weight > 1 raises its own ball by weight - 1 at index 0 (its
// expanded duplicate copies sit at distance 0). Same chunking and
// chunk-ordered concatenation as BuildExactEvents, so the event sequence —
// and therefore the profile — is independent of the thread count. The
// weighted path always sweeps exact all-pairs events: rows are coreset-sized
// (max_profile_points caps them), while a t-NN pruned stream would need
// ~rows * (t-1) expanded entries, which at expanded t ~ 10^5 is exactly the
// memory blow-up the compressed representation exists to avoid.
std::vector<WeightedEvent> BuildWeightedExactEvents(
    const PointSet& view, std::span<const std::uint64_t> rank_weights,
    double fine_step, std::uint64_t max_fine, ThreadPool* pool) {
  const std::size_t n = view.size();
  std::vector<WeightedEvent> events;
  for (std::size_t i = 0; i < n; ++i) {
    DPC_CHECK_LE(rank_weights[i], std::numeric_limits<std::uint32_t>::max());
    if (rank_weights[i] > 1) {
      events.push_back(
          {0, static_cast<std::uint32_t>(i),
           static_cast<std::uint32_t>(rank_weights[i] - 1)});
    }
  }
  constexpr std::size_t kRowGrain = 32;
  const std::size_t num_chunks = NumChunks(n, kRowGrain);
  std::vector<std::vector<WeightedEvent>> chunk_events(num_chunks);
  ParallelForChunks(
      pool, 0, n, kRowGrain,
      [&](std::size_t lo, std::size_t hi, std::size_t chunk) {
        std::vector<WeightedEvent>& local = chunk_events[chunk];
        std::size_t pairs = 0;
        for (std::size_t i = lo; i < hi; ++i) pairs += n - 1 - i;
        local.reserve(2 * pairs);
        for (std::size_t i = lo; i < hi; ++i) {
          const auto xi = view[i];
          for (std::size_t j = i + 1; j < n; ++j) {
            const std::uint64_t g =
                FineIndexOf(Distance(xi, view[j]), fine_step, max_fine);
            local.push_back({g, static_cast<std::uint32_t>(i),
                             static_cast<std::uint32_t>(rank_weights[j])});
            local.push_back({g, static_cast<std::uint32_t>(j),
                             static_cast<std::uint32_t>(rank_weights[i])});
          }
        }
      },
      kAlwaysParallel);
  for (std::vector<WeightedEvent>& local : chunk_events) {
    events.insert(events.end(), local.begin(), local.end());
    local.clear();
    local.shrink_to_fit();
  }
  std::sort(events.begin(), events.end(),
            [](const WeightedEvent& a, const WeightedEvent& b) {
              return a.index < b.index;
            });
  return events;
}

// Converts n rows of k nearest-neighbor distances (row r = center r) into the
// index-sorted pruned event stream: a counting sort by fine index when the
// fine grid is comparably sized (the common case — two O(E) passes),
// std::sort otherwise (huge |X| with few events).
std::vector<Event> EventsFromKnnRows(std::span<const double> knn,
                                     std::size_t n, std::size_t k,
                                     double fine_step, std::uint64_t max_fine,
                                     std::uint64_t fine_domain) {
  std::vector<Event> unsorted(n * k);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      unsorted[i * k + j] = {FineIndexOf(knn[i * k + j], fine_step, max_fine),
                             static_cast<std::uint32_t>(i)};
    }
  }
  std::vector<Event> events;
  if (fine_domain <= 8 * unsorted.size() + 1024) {
    std::vector<std::uint64_t> bucket_start(fine_domain + 1, 0);
    for (const Event& ev : unsorted) ++bucket_start[ev.index + 1];
    for (std::uint64_t g = 0; g < fine_domain; ++g) {
      bucket_start[g + 1] += bucket_start[g];
    }
    events.resize(unsorted.size());
    for (const Event& ev : unsorted) {
      events[bucket_start[ev.index]++] = ev;
    }
  } else {
    events = std::move(unsorted);
    std::sort(events.begin(), events.end(),
              [](const Event& a, const Event& b) { return a.index < b.index; });
  }
  return events;
}

// The t-NN pruned event stream, index-sorted: each center emits exactly its
// t-1 nearest-neighbor distances (any farther pair is a no-op in the capped
// sweep — see the header). The grid computes squared distances with the same
// accumulation order as Distance(), so sqrt() reproduces the exact path's
// event indices bit-for-bit.
Result<std::vector<Event>> BuildGridEvents(const PointSet& s, std::size_t t,
                                           const GridDomain& domain,
                                           IndexGeometry geometry,
                                           double fine_step,
                                           std::uint64_t max_fine,
                                           std::uint64_t fine_domain,
                                           ThreadPool* pool) {
  const std::size_t n = s.size();
  const std::size_t k = t - 1;
  if (k == 0) return std::vector<Event>{};  // t = 1: every increment saturates.

  DPC_ASSIGN_OR_RETURN(SpatialGrid grid,
                       SpatialGrid::Build(s, domain, k, geometry));
  std::vector<double> knn(n * k);
  grid.BatchKnnDistances(k, knn, pool, /*sorted=*/false);
  return EventsFromKnnRows(knn, n, k, fine_step, max_fine, fine_domain);
}

// Validation shared by both Build entry points.
Status ValidateBuildArgs(std::size_t n, std::size_t t, std::size_t max_points) {
  if (n == 0) return Status::InvalidArgument("RadiusProfile: empty dataset");
  if (t < 1 || t > n) {
    return Status::InvalidArgument("RadiusProfile: t must satisfy 1 <= t <= n");
  }
  if (n > max_points) {
    return Status::ResourceExhausted(
        "RadiusProfile: n=" + std::to_string(n) + " exceeds max_points=" +
        std::to_string(max_points) +
        "; raise GoodRadiusOptions::max_profile_points or subsample the "
        "radius stage");
  }
  return Status::OK();
}

}  // namespace

std::string_view ProfileIndexName(ProfileIndex index) {
  switch (index) {
    case ProfileIndex::kAuto:
      return "auto";
    case ProfileIndex::kGrid:
      return "grid";
    case ProfileIndex::kExact:
      return "exact";
  }
  return "auto";
}

Result<ProfileIndex> ProfileIndexFromName(std::string_view name) {
  if (name == "auto") return ProfileIndex::kAuto;
  if (name == "grid") return ProfileIndex::kGrid;
  if (name == "exact") return ProfileIndex::kExact;
  return Status::InvalidArgument("ProfileIndex: unknown name '" +
                                 std::string(name) +
                                 "' (expected auto|grid|exact)");
}

ProfileIndex ResolveProfileIndex(ProfileIndex requested, std::size_t n,
                                 std::size_t t, std::size_t d) {
  if (requested != ProfileIndex::kAuto) return requested;
  if (n < 512) return ProfileIndex::kExact;  // Both builds sub-10ms; skip setup.
  // Measured crossover (bench_scaling, n sweep at d in {2, 8}): sorting the
  // n(n-1) pair events dominates the exact build from n ~ 1000, and the
  // pruned stream must be a few times smaller to pay for the k-NN search.
  // At t > n/4 pruning drops fewer than 4x of the events — unless the grid
  // collapses to one cell (high d, or large t at moderate d): there the
  // batched k-NN runs the blocked dense scan, one streamed pass over the
  // data per query chunk at a cost independent of t, so the grid generator
  // stays ahead of the n^2 pair-event sort up to t - 1 <= n / 2.
  const std::size_t t_cap =
      GridCollapsesToSingleCell(n, d, /*expected_neighbors=*/t > 1 ? t - 1 : 1)
          ? n / 2
          : n / 4;
  return t - 1 <= t_cap ? ProfileIndex::kGrid : ProfileIndex::kExact;
}

Result<RadiusProfile> RadiusProfile::Build(const PointSet& s, std::size_t t,
                                           const GridDomain& domain,
                                           std::size_t max_points,
                                           ThreadPool* pool,
                                           ProfileIndex index,
                                           IndexGeometry geometry) {
  const std::size_t n = s.size();
  DPC_RETURN_IF_ERROR(ValidateBuildArgs(n, t, max_points));
  if (s.dim() != domain.dim()) {
    return Status::InvalidArgument("RadiusProfile: domain dimension mismatch");
  }

  RadiusProfile profile;
  profile.solution_grid_ = domain.RadiusGridSize();
  const std::uint64_t fine_domain = 2 * (profile.solution_grid_ - 1) + 1;
  const double fine_step =
      domain.axis_length() / (4.0 * static_cast<double>(domain.levels()));
  const std::uint64_t max_fine = fine_domain - 1;

  std::vector<Event> events;
  if (ResolveProfileIndex(index, n, t, s.dim()) == ProfileIndex::kGrid) {
    DPC_ASSIGN_OR_RETURN(events,
                         BuildGridEvents(s, t, domain, geometry, fine_step,
                                         max_fine, fine_domain, pool));
  } else {
    events = BuildExactEvents(
        n, [&s](std::size_t i) { return s[i]; }, fine_step, max_fine, pool);
  }
  profile.fine_l_ = SweepEvents(events, n, t, fine_domain);
  return profile;
}

Result<RadiusProfile> RadiusProfile::Build(const IndexedDataset& index,
                                           std::size_t t,
                                           std::size_t max_points,
                                           ThreadPool* pool,
                                           ProfileIndex profile_index) {
  const std::size_t n = index.active_size();
  if (index.weighted()) {
    // Weighted t bound is against total mass, not rows: the profile models the
    // duplicate-expanded dataset, where t points may span fewer distinct rows.
    if (n == 0) return Status::InvalidArgument("RadiusProfile: empty dataset");
    if (t < 1 || t > index.active_mass()) {
      return Status::InvalidArgument(
          "RadiusProfile: t must satisfy 1 <= t <= active mass");
    }
    if (n > max_points) {
      return Status::ResourceExhausted(
          "RadiusProfile: n=" + std::to_string(n) + " exceeds max_points=" +
          std::to_string(max_points) +
          "; raise GoodRadiusOptions::max_profile_points or shrink the "
          "coreset");
    }
  } else {
    DPC_RETURN_IF_ERROR(ValidateBuildArgs(n, t, max_points));
  }
  const GridDomain& domain = index.domain();

  RadiusProfile profile;
  profile.solution_grid_ = domain.RadiusGridSize();
  const std::uint64_t fine_domain = 2 * (profile.solution_grid_ - 1) + 1;
  const double fine_step =
      domain.axis_length() / (4.0 * static_cast<double>(domain.levels()));
  const std::uint64_t max_fine = fine_domain - 1;

  if (index.weighted()) {
    // Weighted rows always take the exact all-pairs generator: the coreset
    // keeps rows well under max_profile_points, and a pruned t-NN stream
    // would have to expand to ~rows * (t - 1) entries at expanded t.
    const PointSet view = index.ActiveView();
    const std::span<const std::uint32_t> active_ids = index.ActiveIds();
    std::vector<std::uint64_t> rank_weights(n);
    for (std::size_t rank = 0; rank < n; ++rank) {
      rank_weights[rank] = index.weight(active_ids[rank]);
    }
    const std::vector<WeightedEvent> events = BuildWeightedExactEvents(
        view, rank_weights, fine_step, max_fine, pool);
    profile.fine_l_ = SweepWeightedEvents(events, rank_weights, t, fine_domain);
    return profile;
  }

  // Event centers are active *ranks* (positions in the ascending active-id
  // list), which is exactly the row numbering of ActiveView() — so both
  // generators emit the same events the subset-rebuild path would, and the
  // sweep below is untouched.
  std::vector<Event> events;
  if (ResolveProfileIndex(profile_index, n, t, index.dim()) ==
      ProfileIndex::kGrid) {
    const std::size_t k = t - 1;
    if (k > 0) {
      std::vector<double> knn(n * k);
      index.BatchKnn(k, knn, pool, /*sorted=*/false);
      events = EventsFromKnnRows(knn, n, k, fine_step, max_fine, fine_domain);
    }
  } else {
    // Materialize the active view once: the O(n^2 d) pair sweep then streams
    // contiguous rows — a per-access rank indirection into the full dataset
    // costs ~10% in this hot loop, far more than one O(n d) copy.
    const PointSet view = index.ActiveView();
    events = BuildExactEvents(
        n, [&view](std::size_t i) { return view[i]; }, fine_step, max_fine,
        pool);
  }
  profile.fine_l_ = SweepEvents(events, n, t, fine_domain);
  return profile;
}

double RadiusProfile::LAtSolutionIndex(std::uint64_t g) const {
  DPC_CHECK_LT(g, solution_grid_);
  return fine_l_.ValueAt(2 * g);
}

double RadiusProfile::LAtHalfSolutionIndex(std::uint64_t g) const {
  DPC_CHECK_LT(g, solution_grid_);
  return fine_l_.ValueAt(g);
}

}  // namespace dpcluster
