#include "dpcluster/core/radius_profile.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "dpcluster/common/check.h"
#include "dpcluster/la/vector_ops.h"
#include "dpcluster/parallel/parallel_for.h"

namespace dpcluster {
namespace {

// Maintains, for a multiset of per-center counts capped at `cap`, the sum of
// the `top` largest values under unit increments. Events only ever move one
// element from value v to v+1, so the t-th-largest threshold `thr` is
// monotone non-decreasing and all updates are amortized O(1).
//
// Invariant: thr is the value of the top-set's smallest member, i.e.
//   cnt_above := #{elements > thr} < top   and   cnt_above + cnt[thr] >= top,
// and the top-t sum is sum_above + thr * (top - cnt_above).
class CappedTopTracker {
 public:
  CappedTopTracker(std::size_t cap, std::size_t top, std::size_t n_centers)
      : cap_(cap), top_(top), cnt_(cap + 2, 0) {
    DPC_CHECK_GE(top, 1u);
    DPC_CHECK_LE(top, n_centers);
    // All centers start with capped count min(1, cap) (the center itself).
    const std::size_t start = std::min<std::size_t>(1, cap);
    cnt_[start] = n_centers;
    thr_ = start;
    cnt_above_ = 0;
    sum_above_ = 0.0;
  }

  /// Moves one center from capped value `old_value` to min(old_value+1, cap).
  void Increment(std::size_t old_value) {
    if (old_value >= cap_) return;  // Already saturated.
    const std::size_t nv = old_value + 1;
    --cnt_[old_value];
    ++cnt_[nv];
    if (old_value > thr_) {
      sum_above_ += 1.0;  // Stays strictly above the threshold.
    } else if (old_value == thr_) {
      ++cnt_above_;
      sum_above_ += static_cast<double>(nv);
      while (cnt_above_ >= top_) {  // Raise the threshold.
        ++thr_;
        cnt_above_ -= cnt_[thr_];
        sum_above_ -= static_cast<double>(thr_) * static_cast<double>(cnt_[thr_]);
      }
    }
    // old_value < thr_: the element stays outside the top set; nothing moves.
  }

  /// Current sum of the `top` largest capped values.
  double TopSum() const {
    return sum_above_ +
           static_cast<double>(thr_) * static_cast<double>(top_ - cnt_above_);
  }

 private:
  std::size_t cap_;
  std::size_t top_;
  std::vector<std::size_t> cnt_;
  std::size_t thr_;
  std::size_t cnt_above_;
  double sum_above_;
};

}  // namespace

Result<RadiusProfile> RadiusProfile::Build(const PointSet& s, std::size_t t,
                                           const GridDomain& domain,
                                           std::size_t max_points,
                                           ThreadPool* pool) {
  const std::size_t n = s.size();
  if (n == 0) return Status::InvalidArgument("RadiusProfile: empty dataset");
  if (t < 1 || t > n) {
    return Status::InvalidArgument("RadiusProfile: t must satisfy 1 <= t <= n");
  }
  if (s.dim() != domain.dim()) {
    return Status::InvalidArgument("RadiusProfile: domain dimension mismatch");
  }
  if (n > max_points) {
    return Status::ResourceExhausted(
        "RadiusProfile: n=" + std::to_string(n) + " exceeds max_points=" +
        std::to_string(max_points) +
        "; raise GoodRadiusOptions::max_profile_points or subsample the "
        "radius stage");
  }

  RadiusProfile profile;
  profile.solution_grid_ = domain.RadiusGridSize();
  const std::uint64_t fine_domain = 2 * (profile.solution_grid_ - 1) + 1;
  const double fine_step =
      domain.axis_length() / (4.0 * static_cast<double>(domain.levels()));

  // Events: (fine index, center) for every ordered pair of distinct rows.
  struct Event {
    std::uint64_t index;
    std::uint32_t center;
  };
  const std::uint64_t max_fine = fine_domain - 1;
  // The O(n^2 d) pair pass runs in parallel over row chunks; per-chunk event
  // vectors concatenated in chunk order reproduce the serial i-ascending
  // sequence exactly, so the profile is independent of the thread count.
  constexpr std::size_t kRowGrain = 32;
  const std::size_t num_chunks = NumChunks(n, kRowGrain);
  std::vector<std::vector<Event>> chunk_events(num_chunks);
  ParallelForChunks(pool, 0, n, kRowGrain,
                    [&](std::size_t lo, std::size_t hi, std::size_t chunk) {
    std::vector<Event>& local = chunk_events[chunk];
    std::size_t pairs = 0;
    for (std::size_t i = lo; i < hi; ++i) pairs += n - 1 - i;
    local.reserve(2 * pairs);
    for (std::size_t i = lo; i < hi; ++i) {
      const auto xi = s[i];
      for (std::size_t j = i + 1; j < n; ++j) {
        const double dist = Distance(xi, s[j]);
        double idx = std::ceil(dist / fine_step - 1e-12);
        if (idx < 0.0) idx = 0.0;
        std::uint64_t g = static_cast<std::uint64_t>(idx);
        if (g > max_fine) g = max_fine;
        local.push_back({g, static_cast<std::uint32_t>(i)});
        local.push_back({g, static_cast<std::uint32_t>(j)});
      }
    }
  });
  std::vector<Event> events;
  events.reserve(n * (n - 1));
  for (std::vector<Event>& local : chunk_events) {
    events.insert(events.end(), local.begin(), local.end());
    local.clear();
    local.shrink_to_fit();
  }
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) { return a.index < b.index; });

  // Sweep: maintain per-center counts (capped at t) and the top-t sum.
  std::vector<std::uint32_t> counts(n, 1);  // Every ball contains its center.
  CappedTopTracker tracker(t, t, n);
  const double inv_t = 1.0 / static_cast<double>(t);

  std::vector<std::uint64_t> starts;
  std::vector<double> values;
  std::size_t e = 0;
  // Process events with index 0 first so the r=0 value reflects duplicates.
  while (e < events.size() && events[e].index == 0) {
    const auto c = events[e].center;
    tracker.Increment(std::min<std::size_t>(counts[c], t));
    ++counts[c];
    ++e;
  }
  starts.push_back(0);
  values.push_back(tracker.TopSum() * inv_t);

  while (e < events.size()) {
    const std::uint64_t g = events[e].index;
    while (e < events.size() && events[e].index == g) {
      const auto c = events[e].center;
      tracker.Increment(std::min<std::size_t>(counts[c], t));
      ++counts[c];
      ++e;
    }
    const double value = tracker.TopSum() * inv_t;
    if (value != values.back()) {
      starts.push_back(g);
      values.push_back(value);
    }
  }

  profile.fine_l_ = StepFunction::FromBreakpoints(fine_domain, std::move(starts),
                                                  std::move(values));
  return profile;
}

double RadiusProfile::LAtSolutionIndex(std::uint64_t g) const {
  DPC_CHECK_LT(g, solution_grid_);
  return fine_l_.ValueAt(2 * g);
}

double RadiusProfile::LAtHalfSolutionIndex(std::uint64_t g) const {
  DPC_CHECK_LT(g, solution_grid_);
  return fine_l_.ValueAt(g);
}

}  // namespace dpcluster
