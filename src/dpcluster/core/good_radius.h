// Algorithm 1 (GoodRadius): privately approximate the smallest radius r such
// that some ball of radius r contains ~t input points.
//
// Guarantees (Lemma 3.6 / 4.6): with probability >= 1 - beta the output r
// satisfies (1) some ball of radius r in X^d contains >= t - 4*Gamma -
// (4/eps) ln(1/beta) points, and (2) r <= 4 * r_opt where r_opt is the radius
// of the smallest ball containing t points.
//
// Two engines:
//  * kRecConcave — the paper's Algorithm 1: the Laplace test for a zero-radius
//    cluster, then RecConcave on Q(r) = 1/2 min{t - L(r/2), L(r) - t + 4 Gamma}
//    over the radius grid {0, 1/(2|X|), ..., ceil(sqrt(d))}.
//  * kSparseVector — the alternative the paper mentions in footnote 2: a noisy
//    binary search for the smallest grid radius with L(r) >~ t. Simpler, but
//    its loss carries the log(sqrt(d)|X|) factor the paper's construction
//    avoids; kept as a measured ablation (bench_goodradius).

#ifndef DPCLUSTER_CORE_GOOD_RADIUS_H_
#define DPCLUSTER_CORE_GOOD_RADIUS_H_

#include <cstdint>

#include "dpcluster/common/status.h"
#include "dpcluster/core/radius_profile.h"
#include "dpcluster/coreset/coreset.h"
#include "dpcluster/dp/privacy_params.h"
#include "dpcluster/dp/rec_concave.h"
#include "dpcluster/geo/grid_domain.h"
#include "dpcluster/geo/spatial_grid.h"
#include "dpcluster/geo/point_set.h"
#include "dpcluster/random/rng.h"

namespace dpcluster {

class IndexedDataset;
class KnnCappedCounts;

struct GoodRadiusOptions {
  PrivacyParams params{1.0, 1e-9};
  /// Failure probability of the utility guarantee.
  double beta = 0.05;
  /// Engine choice (see file comment).
  enum class Engine { kRecConcave, kSparseVector };
  Engine engine = Engine::kRecConcave;
  /// Hard cap on the L(r,S) computation (DESIGN.md substitution #3).
  std::size_t max_profile_points = 4096;
  /// Event generator for the kRecConcave engine's L(r,S) profile:
  /// auto (measured crossover), grid (t-NN pruned through geo/SpatialGrid,
  /// ~O(n t) at low dimension), or exact (the all-pairs O(n^2 (d + log n))
  /// sweep). Released outputs are bit-identical for every choice — the
  /// pruning is lossless (see core/radius_profile.h); only the runtime
  /// moves. The kSparseVector engine answers its radius counts from
  /// per-point t-NN rows (geo/KnnCappedCounts, O(n t) memory — it never
  /// materializes the n x n PairwiseDistances matrix) and ignores this knob.
  ProfileIndex profile_index = ProfileIndex::kAuto;
  /// Borrowed caller-maintained t-NN rows for the kSparseVector engine on
  /// the IndexedDataset entry point: when set, the engine answers its radius
  /// counts from these rows instead of building its own O(n t) structure.
  /// The streaming path keeps them current across Insert/Remove batches via
  /// KnnCappedCounts::ApplyBatch, so a query after an edit pays only the
  /// rows the edit touched — this is the amortization the incremental index
  /// exists for. Must describe the index's active set with cap() == t
  /// (validated); rows are bit-identical to a fresh Build by ApplyBatch's
  /// contract, so released outputs are unchanged. Ignored by the PointSet
  /// entry point and the kRecConcave engine. Not owned.
  const KnnCappedCounts* shared_counts = nullptr;
  /// Cell-grid coordinate space for any spatial index this call builds itself
  /// (the kGrid profile's index on a PointSet input, the kSparseVector
  /// engine's local IndexedDataset): kAuto stays exact — degenerate one-cell
  /// grids run the blocked dense scan; the JL-projected grid is an explicit
  /// opt-in (geo/spatial_grid.h). Query answers are bit-identical across
  /// geometries. When the call runs on a prebuilt IndexedDataset, that
  /// dataset's own setting governs instead.
  IndexGeometry index_geometry = IndexGeometry::kAuto;
  /// Worker threads for the deterministic numeric passes (the O(n^2 d)
  /// profile / pairwise builds). 0 = one per hardware thread, 1 = serial.
  /// Released outputs are bit-identical at any setting: threads never touch
  /// the Rng, and the work decomposition is independent of the thread count.
  std::size_t num_threads = 1;
  /// When n exceeds the effective profile cap, run the radius stage on a
  /// uniform subsample of that many rows with t rescaled proportionally.
  /// Privacy only improves (amplification by subsampling, Lemma 6.4); utility
  /// gains a sampling error of ~sqrt(t) in the counts. Off by default so the
  /// profile cap stays an explicit, opted-into tradeoff.
  bool subsample_large_inputs = false;
  /// Multiplier on max_profile_points for the subsample path when the ~O(n t)
  /// grid profile would serve the subsampled problem (RecConcave engine,
  /// ResolveProfileIndex -> kGrid at the enlarged size): the cap that guards
  /// the quadratic sweep is far too conservative for the t-NN pruned build,
  /// so the subsample keeps ~factor more rows (less sampling error) at ~the
  /// same cost. 1 reproduces the pre-grid behavior; must be >= 1. Ignored
  /// when the exact sweep or the SparseVector engine would run.
  double subsample_grid_cap_factor = 10.0;
  /// Coreset stage for the PointSet entry point: when enabled and n >=
  /// coreset.min_points, the input is first collapsed to a weighted k-center
  /// summary (coreset/coreset.h) and the call runs on the summary's weighted
  /// index — every count then weighs summary rows by their multiplicities.
  /// Accuracy moves by at most the summary's coverage radius; privacy is
  /// unchanged (the summary is internal, the mechanisms' sensitivity analysis
  /// applies to the expanded dataset it stands for). The IndexedDataset entry
  /// point never re-compresses (its caller owns the index's construction).
  CoresetOptions coreset;
  /// If true, Gamma uses the paper's verbatim formula (astronomical); default
  /// sizes Gamma by what this RecConcave implementation actually needs.
  bool paper_constants = false;
  /// Inner RecConcave tuning (epsilon/beta are overwritten by this algorithm).
  /// Default: solve the whole radius grid in one exponential-mechanism level
  /// (base_domain_size 2^22). Because this build substitutes the exponential
  /// mechanism for the choosing mechanism (DESIGN.md #1), extra recursion
  /// levels only split the budget without improving the bound; set
  /// base_domain_size to 32 to exercise the paper-faithful log* recursion
  /// (bench_goodradius measures the difference).
  RecConcaveOptions rec_concave = [] {
    RecConcaveOptions rc;
    rc.base_domain_size = std::uint64_t{1} << 26;  // Flat up to |X| ~ 2^24.
    return rc;
  }();

  Status Validate() const;
};

struct GoodRadiusResult {
  /// The selected radius (a point of the solution grid).
  double radius = 0.0;
  /// Solution-grid index of the radius.
  std::uint64_t grid_index = 0;
  /// The promise Gamma used; the cluster-size loss is ~4*Gamma (releasable).
  double gamma = 0.0;
  /// True if the zero-radius shortcut (step 2) fired.
  bool zero_radius_shortcut = false;
};

/// Runs GoodRadius on dataset s (points must lie in `domain`'s cube).
Result<GoodRadiusResult> GoodRadius(Rng& rng, const PointSet& s, std::size_t t,
                                    const GridDomain& domain,
                                    const GoodRadiusOptions& options);

/// Runs GoodRadius over the active points of a prebuilt geo/IndexedDataset
/// (domain taken from the index). Released outputs are bit-identical to
/// GoodRadius(rng, index.ActiveView(), t, index.domain(), options) — the
/// profile / radius-count structures are served by the shared index instead
/// of being rebuilt, which is how KCluster amortizes its per-round geometry.
/// Does not mutate the index.
Result<GoodRadiusResult> GoodRadius(Rng& rng, const IndexedDataset& index,
                                    std::size_t t,
                                    const GoodRadiusOptions& options);

/// The Gamma promise GoodRadius would use for these parameters (releasable,
/// data-independent). Exposed so callers can size t >> 4*Gamma.
double GoodRadiusGamma(const GridDomain& domain, const GoodRadiusOptions& options);

}  // namespace dpcluster

#endif  // DPCLUSTER_CORE_GOOD_RADIUS_H_
