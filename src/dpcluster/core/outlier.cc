#include "dpcluster/core/outlier.h"

#include <cmath>
#include <vector>

#include "dpcluster/common/check.h"

namespace dpcluster {

Status OutlierScreenOptions::Validate() const {
  if (!(inlier_fraction > 0.0) || !(inlier_fraction <= 1.0)) {
    return Status::InvalidArgument(
        "OutlierScreen: inlier_fraction must be in (0,1]");
  }
  if (!(inflation >= 1.0)) {
    return Status::InvalidArgument("OutlierScreen: inflation must be >= 1");
  }
  return Status::OK();
}

PointSet OutlierScreen::Inliers(const PointSet& s) const {
  std::vector<std::size_t> keep;
  keep.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (IsInlier(s[i])) keep.push_back(i);
  }
  return s.Subset(keep);
}

Result<OutlierScreen> BuildOutlierScreen(Rng& rng, const PointSet& s,
                                         const GridDomain& domain,
                                         const OutlierScreenOptions& options,
                                         const IndexedDataset* index) {
  DPC_RETURN_IF_ERROR(options.Validate());
  if (s.empty()) return Status::InvalidArgument("OutlierScreen: empty dataset");
  const auto t = static_cast<std::size_t>(
      std::ceil(options.inlier_fraction * static_cast<double>(s.size())));
  OutlierScreen screen;
  DPC_ASSIGN_OR_RETURN(
      screen.pipeline,
      OneCluster(rng, s, t, domain, options.one_cluster, index));
  screen.ball = screen.pipeline.ball;
  if (options.refine.epsilon > 0.0) {
    DPC_ASSIGN_OR_RETURN(
        screen.ball.radius,
        RefineRadius(rng, s, screen.ball.center, t, domain, options.refine));
  }
  screen.ball.radius *= options.inflation;
  return screen;
}

}  // namespace dpcluster
