// Private radius refinement: given an already-released center, find the
// smallest grid radius whose ball around that center holds ~t points, via a
// noisy binary search over the radius grid (ball counts have sensitivity 1).
//
// Used by the outlier screen (the 1-cluster guarantee radius is a worst-case
// bound — often the whole cube — while the screen wants a tight, releasable
// ball) and by the noisy-mean baseline's second phase.

#ifndef DPCLUSTER_CORE_RADIUS_REFINE_H_
#define DPCLUSTER_CORE_RADIUS_REFINE_H_

#include <cstddef>
#include <span>

#include "dpcluster/common/status.h"
#include "dpcluster/geo/grid_domain.h"
#include "dpcluster/geo/point_set.h"
#include "dpcluster/random/rng.h"

namespace dpcluster {

class IndexedDataset;

struct RadiusRefineOptions {
  /// Budget of the refinement; (epsilon, 0)-DP.
  double epsilon = 0.5;
  /// Failure probability of the utility claim.
  double beta = 0.1;
};

/// Smallest grid radius r such that (noisily) |ball(center, r) ∩ s| >= t.
/// With probability >= 1 - beta the returned ball holds >= t - 2*margin
/// points, margin = (2 log2|grid| / eps) ln(2 log2|grid| / beta).
Result<double> RefineRadius(Rng& rng, const PointSet& s,
                            std::span<const double> center, std::size_t t,
                            const GridDomain& domain,
                            const RadiusRefineOptions& options);

/// RefineRadius over the *active* points of a prebuilt geo/IndexedDataset
/// (domain taken from the index) — bit-identical to the PointSet overload on
/// index.ActiveView(), without materializing the view.
Result<double> RefineRadius(Rng& rng, const IndexedDataset& index,
                            std::span<const double> center, std::size_t t,
                            const RadiusRefineOptions& options);

}  // namespace dpcluster

#endif  // DPCLUSTER_CORE_RADIUS_REFINE_H_
