// RadiusProfile: the exact function L(r, S) of Algorithm 1 (GoodRadius),
//   L(r, S) = (1/t) max_{distinct i_1..i_t} sum_j min(B_r(x_{i_j}, S), t),
// materialized as a StepFunction of the radius.
//
// L is evaluated on a grid twice as fine as GoodRadius's solution grid
// {0, 1/(2|X|), ...} so that both L(r) and L(r/2) (the two ingredients of the
// quality Q of Algorithm 1, step 3) are exact lookups: solution index g maps
// to fine index 2g for L(r) and fine index g for L(r/2).
//
// Construction is an event sweep: each pair (i, j) raises B_.(x_i) by one at
// the fine index ceil(dist(i,j)/fine_step), and an amortized-O(1) tracker
// maintains the sum of the t largest capped counts. Two event generators
// feed the identical sweep:
//
//  * kExact  — all n(n-1) ordered pairs, the documented O(n^2 (d + log n))
//    quadratic core.
//  * kGrid   — only each point's t-1 nearest neighbors, found through a
//    geo/SpatialGrid index in ~O(n t) work at low dimension. This is lossless
//    pruning, not an approximation: every per-center count is capped at t, so
//    a center's increments beyond its t-1 nearest neighbors are no-ops in the
//    exact sweep (the t-1 smallest distances are exactly the effective
//    events), and the tracker's state after each fine index is a function of
//    the count histogram alone. The resulting StepFunction is therefore
//    bit-identical to the exact sweep's — same breakpoints, same values —
//    which determinism_test and radius_profile_test pin across all scenario
//    families and thread counts.
//
// kAuto picks between them with a measured crossover: the grid build wins
// once the pruned event stream is >= ~4x smaller than the pair stream
// (sorting the n(n-1) events dominates the exact build from n ~ 1000), and
// the exact sweep keeps small inputs and t ~ n, where pruning saves nothing.

#ifndef DPCLUSTER_CORE_RADIUS_PROFILE_H_
#define DPCLUSTER_CORE_RADIUS_PROFILE_H_

#include <cstdint>
#include <string_view>

#include "dpcluster/common/status.h"
#include "dpcluster/dp/step_function.h"
#include "dpcluster/geo/grid_domain.h"
#include "dpcluster/geo/point_set.h"
#include "dpcluster/geo/spatial_grid.h"

namespace dpcluster {

class IndexedDataset;
class ThreadPool;

/// How RadiusProfile::Build generates the pair events (see file comment).
/// Every choice yields bit-identical profiles; only the runtime differs.
enum class ProfileIndex {
  kAuto,   ///< Measured crossover between the two (the default).
  kGrid,   ///< t-NN pruned events through a geo/SpatialGrid, ~O(n t) at low d.
  kExact,  ///< All-pairs event sweep, O(n^2 (d + log n)).
};

/// "auto", "grid", "exact".
std::string_view ProfileIndexName(ProfileIndex index);

/// Inverse of ProfileIndexName; InvalidArgument on unknown names.
Result<ProfileIndex> ProfileIndexFromName(std::string_view name);

/// The generator kAuto resolves to for a given problem shape (exposed for
/// tests and benches; see the crossover note in the file comment). `d` is the
/// data dimension: when the spatial index's cell grid collapses to one cell
/// (d >= ~16 at bench sizes, or large t at moderate d) batched k-NN runs the
/// blocked dense scan at a per-query cost independent of t, so the grid
/// generator stays profitable up to a larger t (t-1 <= n/2 instead of n/4).
ProfileIndex ResolveProfileIndex(ProfileIndex requested, std::size_t n,
                                 std::size_t t, std::size_t d);

/// Exact L(r, S) over the fine radius grid.
class RadiusProfile {
 public:
  /// Builds the profile. Fails with ResourceExhausted when s.size() >
  /// max_points (see GoodRadiusOptions::max_profile_points). `pool`
  /// parallelizes the event generation (null = serial); chunk-ordered
  /// assembly keeps the profile bit-identical at any thread count. `index`
  /// selects the event generator (bit-identical either way, see above).
  /// `geometry` is the cell-coordinate space of the kGrid generator's
  /// spatial index (geo/spatial_grid.h) — also bit-identical either way.
  static Result<RadiusProfile> Build(const PointSet& s, std::size_t t,
                                     const GridDomain& domain,
                                     std::size_t max_points,
                                     ThreadPool* pool = nullptr,
                                     ProfileIndex index = ProfileIndex::kAuto,
                                     IndexGeometry geometry =
                                         IndexGeometry::kAuto);

  /// Builds the profile over the *active* points of a prebuilt
  /// geo/IndexedDataset — bit-identical to Build(index.ActiveView(), ...),
  /// but the kGrid event generator queries the dataset's cached
  /// (deletion-pruned) spatial index instead of indexing the subset from
  /// scratch, which is what amortizes KCluster's per-round profile cost.
  /// The kExact generator sweeps the active pairs directly. `profile_index`
  /// resolves its kAuto crossover on (active_size, t), exactly as the
  /// subset-rebuild path would.
  static Result<RadiusProfile> Build(const IndexedDataset& index,
                                     std::size_t t, std::size_t max_points,
                                     ThreadPool* pool = nullptr,
                                     ProfileIndex profile_index =
                                         ProfileIndex::kAuto);

  /// L as a step function over fine indices [0, 2*(RadiusGridSize()-1)+1).
  const StepFunction& fine_l() const { return fine_l_; }

  /// L at solution-grid radius index g (i.e. radius g * axis/(2|X|)).
  double LAtSolutionIndex(std::uint64_t g) const;

  /// L at half the solution-grid radius g (i.e. radius g * axis/(4|X|)).
  double LAtHalfSolutionIndex(std::uint64_t g) const;

  /// L(0, S): handles duplicate input points (a zero-radius cluster).
  double LAtZero() const { return fine_l_.ValueAt(0); }

  /// Number of solution-grid indices (= GridDomain::RadiusGridSize()).
  std::uint64_t solution_grid_size() const { return solution_grid_; }

 private:
  RadiusProfile() : solution_grid_(0), fine_l_(StepFunction::Constant(1, 0.0)) {}

  std::uint64_t solution_grid_;
  StepFunction fine_l_;
};

}  // namespace dpcluster

#endif  // DPCLUSTER_CORE_RADIUS_PROFILE_H_
