// RadiusProfile: the exact function L(r, S) of Algorithm 1 (GoodRadius),
//   L(r, S) = (1/t) max_{distinct i_1..i_t} sum_j min(B_r(x_{i_j}, S), t),
// materialized as a StepFunction of the radius.
//
// L is evaluated on a grid twice as fine as GoodRadius's solution grid
// {0, 1/(2|X|), ...} so that both L(r) and L(r/2) (the two ingredients of the
// quality Q of Algorithm 1, step 3) are exact lookups: solution index g maps
// to fine index 2g for L(r) and fine index g for L(r/2).
//
// Construction is an event sweep over all n(n-1) ordered pairs: each pair
// (i, j) raises B_.(x_i) by one at the fine index ceil(dist(i,j)/fine_step).
// A Fenwick tree over capped count values maintains the sum of the t largest
// capped counts in O(log n) per event, so the total build cost is
// O(n^2 (d + log n)) — the documented quadratic core of GoodRadius.

#ifndef DPCLUSTER_CORE_RADIUS_PROFILE_H_
#define DPCLUSTER_CORE_RADIUS_PROFILE_H_

#include <cstdint>

#include "dpcluster/common/status.h"
#include "dpcluster/dp/step_function.h"
#include "dpcluster/geo/grid_domain.h"
#include "dpcluster/geo/point_set.h"

namespace dpcluster {

class ThreadPool;

/// Exact L(r, S) over the fine radius grid.
class RadiusProfile {
 public:
  /// Builds the profile. Fails with ResourceExhausted when s.size() >
  /// max_points (see GoodRadiusOptions::max_profile_points). `pool`
  /// parallelizes the O(n^2 d) pair-event pass (null = serial); the event
  /// sequence is assembled in chunk order, so the profile is bit-identical
  /// at any thread count.
  static Result<RadiusProfile> Build(const PointSet& s, std::size_t t,
                                     const GridDomain& domain,
                                     std::size_t max_points,
                                     ThreadPool* pool = nullptr);

  /// L as a step function over fine indices [0, 2*(RadiusGridSize()-1)+1).
  const StepFunction& fine_l() const { return fine_l_; }

  /// L at solution-grid radius index g (i.e. radius g * axis/(2|X|)).
  double LAtSolutionIndex(std::uint64_t g) const;

  /// L at half the solution-grid radius g (i.e. radius g * axis/(4|X|)).
  double LAtHalfSolutionIndex(std::uint64_t g) const;

  /// L(0, S): handles duplicate input points (a zero-radius cluster).
  double LAtZero() const { return fine_l_.ValueAt(0); }

  /// Number of solution-grid indices (= GridDomain::RadiusGridSize()).
  std::uint64_t solution_grid_size() const { return solution_grid_; }

 private:
  RadiusProfile() : solution_grid_(0), fine_l_(StepFunction::Constant(1, 0.0)) {}

  std::uint64_t solution_grid_;
  StepFunction fine_l_;
};

}  // namespace dpcluster

#endif  // DPCLUSTER_CORE_RADIUS_PROFILE_H_
