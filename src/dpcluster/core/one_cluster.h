// Theorem 3.2: the end-to-end (eps, delta)-DP solver for the 1-cluster problem
// (X^d, n, t). Splits the privacy budget between GoodRadius (Algorithm 1) and
// GoodCenter (Algorithm 2) and returns a ball (center, radius) such that, with
// probability >= 1 - beta,
//   * the ball holds >= t - Delta input points, Delta = O((1/eps) log(n/delta)),
//   * its radius is O(sqrt(log n)) * r_opt.

#ifndef DPCLUSTER_CORE_ONE_CLUSTER_H_
#define DPCLUSTER_CORE_ONE_CLUSTER_H_

#include <cstddef>

#include "dpcluster/common/status.h"
#include "dpcluster/core/good_center.h"
#include "dpcluster/core/good_radius.h"
#include "dpcluster/dp/accountant.h"
#include "dpcluster/dp/privacy_params.h"
#include "dpcluster/geo/ball.h"
#include "dpcluster/geo/grid_domain.h"
#include "dpcluster/geo/point_set.h"
#include "dpcluster/random/rng.h"

namespace dpcluster {

class IndexedDataset;

struct OneClusterOptions {
  /// Total privacy budget of the pipeline.
  PrivacyParams params{1.0, 1e-9};
  /// Failure probability, split evenly between the two phases.
  double beta = 0.1;
  /// Fraction of the budget given to GoodRadius (the rest goes to GoodCenter).
  double radius_budget_fraction = 0.5;
  /// Worker threads for both phases' deterministic numeric kernels (0 = one
  /// per hardware thread, 1 = serial; outputs are bit-identical at any
  /// setting). Overwrites the phase options' num_threads.
  std::size_t num_threads = 1;
  /// Coreset stage for the PointSet entry point (no prebuilt index): when
  /// enabled and n >= coreset.min_points, the input is collapsed once to a
  /// weighted k-center summary (coreset/coreset.h) and *both* phases run on
  /// the summary's weighted index. Accuracy moves by at most the summary's
  /// coverage radius; privacy accounting is unchanged. Ignored when the
  /// caller lends an index (that index's construction is the caller's).
  CoresetOptions coreset;
  /// Phase options; their params/beta/num_threads fields are overwritten by
  /// this struct, and their own coreset knobs stay off (compression happens
  /// once here, never per phase).
  GoodRadiusOptions radius;
  GoodCenterOptions center;

  Status Validate() const;
};

struct OneClusterResult {
  /// The released ball. `ball.radius` is the radius for which the theorem's
  /// counting guarantee is claimed (O(sqrt(log n)) * r_found).
  Ball ball;
  /// The GoodRadius phase output (r_found = radius_stage.radius <= 4 r_opt).
  GoodRadiusResult radius_stage;
  /// The GoodCenter phase output.
  GoodCenterResult center_stage;
  /// Privacy ledger of the run: one charge per phase; BasicTotal() equals the
  /// configured budget.
  Accountant ledger;
};

/// Solves the 1-cluster problem on s (points must lie in `domain`'s cube).
/// When `index` is non-null it must view exactly s (index->ActiveView() row
/// for row — KCluster passes the shared deletion-capable geo/IndexedDataset
/// it peels rounds from); the GoodRadius phase is then served by the
/// prebuilt index instead of rebuilding its geometry, with bit-identical
/// released outputs. The index is not mutated.
Result<OneClusterResult> OneCluster(Rng& rng, const PointSet& s, std::size_t t,
                                    const GridDomain& domain,
                                    const OneClusterOptions& options,
                                    const IndexedDataset* index = nullptr);

/// Solves the 1-cluster problem on the *active* points of a prebuilt
/// geo/IndexedDataset (domain taken from the index). Both phases run through
/// the index — span-based row access and the cached spatial index, no
/// ActiveView materialization — and release outputs bit-identical to the
/// PointSet overload on index.ActiveView(). This is the entry point
/// KCluster's incremental path peels rounds through. The index is not
/// mutated.
Result<OneClusterResult> OneCluster(Rng& rng, const IndexedDataset& index,
                                    std::size_t t,
                                    const OneClusterOptions& options);

/// A data-independent recommendation for the smallest t this configuration can
/// resolve meaningfully: max of ~4*Gamma (GoodRadius loss) and the sparse-
/// vector + histogram losses of GoodCenter. Mirrors the theorem's
/// t >= O~(sqrt(d)/eps) requirement with this build's actual constants.
double RecommendedMinT(std::size_t n, const GridDomain& domain,
                       const OneClusterOptions& options);

}  // namespace dpcluster

#endif  // DPCLUSTER_CORE_ONE_CLUSTER_H_
