// Algorithm 2 (GoodCenter): given the radius r produced by GoodRadius, privately
// locate a center z such that a ball of radius O(r sqrt(log n)) around z
// contains >= t - O((1/eps) log(n/beta)) input points (Lemma 3.7 / 4.12).
//
// Pipeline (faithful to the paper's steps):
//  1. Johnson-Lindenstrauss projection into R^k, k = O(log n).
//  2-6. Repeatedly draw randomly shifted box partitions of R^k (side ~ 300 r)
//       and ask AboveThreshold whether some box captures ~t projected points.
//  7. Choose the heavy box B with a stability-based histogram; D = preimage.
//  8-9. Rotate R^d by a random orthonormal basis; on each rotated axis choose a
//       heavy length-p interval with a stability-based histogram (advanced
//       composition across the d axes) and extend it by p on both sides.
//  10. Intersect: a box of diameter O(r sqrt(k log(dn))) containing D; its
//      bounding sphere C caps the reach of the averaging step *deterministically*
//      (this is what makes step 11's sensitivity data-independent).
//  11. Release the noisy average of D ∩ C via NoisyAVG (Algorithm 5).
//
// Every proof constant is an option; GoodCenterOptions::PaperConstants() is the
// verbatim preset, the defaults are the practical preset used by the benches
// (DESIGN.md substitution #2).

#ifndef DPCLUSTER_CORE_GOOD_CENTER_H_
#define DPCLUSTER_CORE_GOOD_CENTER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dpcluster/common/status.h"
#include "dpcluster/dp/privacy_params.h"
#include "dpcluster/geo/point_set.h"
#include "dpcluster/random/rng.h"

namespace dpcluster {

class IndexedDataset;

struct GoodCenterOptions {
  PrivacyParams params{1.0, 1e-9};
  /// Failure probability of the utility guarantee.
  double beta = 0.05;

  /// JL target dimension is ceil(jl_constant * ln(2n/beta)), clamped to
  /// [2, max_jl_dim] (0 disables the cap). Paper: jl_constant = 46, no cap.
  double jl_constant = 2.0;
  std::size_t max_jl_dim = 12;

  /// Box side in R^k is box_side_factor * r. Paper: 300. The practical default
  /// trades per-round success probability (1 - 3/factor)^k against how much
  /// background the heavy box can swallow; the retry loop absorbs the misses.
  double box_side_factor = 12.0;

  /// AboveThreshold threshold is t - (threshold_offset_factor/eps) ln(2n/beta).
  /// Paper: 100.
  double threshold_offset_factor = 16.0;

  /// Axis-interval length p = interval_multiplier * box_side_factor * r *
  /// sqrt(k ln(dn/beta) / d). Paper: 3 * 300 = 900. Only used when
  /// axis_cell_factor == 0.
  double interval_multiplier = 3.0;

  /// When > 0, the per-axis intervals of step 9 have length
  /// axis_cell_factor * r instead of the proof's worst-case p. The cluster's
  /// projection onto any direction spans at most 2r, so with factor >= 4 one
  /// cell holds at least half of the in-box cluster; the bounding sphere C
  /// then has radius O(r sqrt(d)) instead of O(r sqrt(k d log(dn))), which is
  /// what makes the averaging noise usable at laptop-scale t. Tradeoff: if the
  /// heavy box holds much more background than cluster, a background cell can
  /// win and C may miss the cluster (the paper's p is immune to that). 0 =
  /// paper formula (used by PaperConstants()).
  double axis_cell_factor = 4.0;

  /// Cap on the box-partition retry loop. The paper allows 2n log(1/beta)/beta
  /// rounds; the practical default keeps runtime bounded and is far above the
  /// expected handful of retries.
  std::size_t max_rounds = 4096;

  /// Worker threads for the deterministic numeric passes (batched JL
  /// projection, per-round box counting, axis projections). 0 = one per
  /// hardware thread, 1 = serial. Released outputs are bit-identical at any
  /// setting: threads never touch the Rng, and the work decomposition is
  /// independent of the thread count.
  std::size_t num_threads = 1;

  /// Side length of the (public) domain cube the data lives in. When > 0, the
  /// per-axis interval length and the bounding sphere C are clamped by the
  /// cube's diameter and C's center is clamped into the cube — all
  /// data-independent facts about the public domain, so privacy is unaffected,
  /// but the averaging noise stops scaling with the proof's worst-case reach
  /// when that reach exceeds the domain itself. 0 disables (paper-verbatim).
  double domain_axis_length = 1.0;

  /// When non-zero and the call goes through the IndexedDataset overload, the
  /// step-1 JL matrix is drawn once from Rng(projection_seed) and the
  /// projection of the *full* dataset is cached on the dataset
  /// (IndexedDataset::ProjectedActive), so repeated GoodCenter rounds over a
  /// shrinking active set reuse one GEMM instead of re-projecting. The JL
  /// matrix is data-independent randomness, so privacy is unaffected, but the
  /// caller Rng no longer draws it: released bytes differ from the default
  /// path (which redraws the matrix from the caller Rng every call and is
  /// bit-identical to the PointSet overload). 0 = fresh per-call draw.
  std::uint64_t projection_seed = 0;

  /// Paper-verbatim constants (Algorithm 2 as printed).
  static GoodCenterOptions PaperConstants();

  Status Validate() const;
};

struct GoodCenterResult {
  /// The released center z (= noisy average of D ∩ C).
  std::vector<double> center;
  /// Radius for which the Lemma 4.12 guarantee is claimed:
  /// (sqrt(2) * box_side_factor + 1) * r * sqrt(k).
  double guarantee_radius = 0.0;
  /// JL dimension used.
  std::size_t jl_dim = 0;
  /// Box-partition rounds consumed before AboveThreshold fired.
  std::size_t rounds_used = 0;
  /// Noisy count of the chosen heavy box (releasable).
  double noisy_box_count = 0.0;
  /// Noisy lower bound on |D ∩ C| from NoisyAVG (releasable).
  double noisy_inlier_count = 0.0;
  /// Per-coordinate Gaussian sigma added by NoisyAVG (releasable).
  double noise_sigma = 0.0;
};

/// Runs GoodCenter on dataset s with target count t and radius r (> 0).
Result<GoodCenterResult> GoodCenter(Rng& rng, const PointSet& s, std::size_t t,
                                    double r, const GoodCenterOptions& options);

/// Runs GoodCenter on the *active* points of a prebuilt geo/IndexedDataset —
/// no ActiveView materialization: the JL projection gathers active rows
/// straight out of the full dataset and the heavy-box preimage D is assembled
/// through the active-id indirection. With options.projection_seed == 0
/// (default) the released outputs are bit-identical to
/// GoodCenter(rng, index.ActiveView(), ...); a non-zero seed additionally
/// reuses the dataset-cached projection across rounds (see the option).
Result<GoodCenterResult> GoodCenter(Rng& rng, const IndexedDataset& index,
                                    std::size_t t, double r,
                                    const GoodCenterOptions& options);

}  // namespace dpcluster

#endif  // DPCLUSTER_CORE_GOOD_CENTER_H_
