#include "dpcluster/core/good_radius.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "dpcluster/common/check.h"
#include "dpcluster/coreset/coreset.h"
#include "dpcluster/common/math_util.h"
#include "dpcluster/core/radius_profile.h"
#include "dpcluster/geo/dataset.h"
#include "dpcluster/parallel/thread_pool.h"
#include "dpcluster/random/distributions.h"

namespace dpcluster {
namespace {

// Builds the Algorithm 1 quality
//   Q(g) = 1/2 * min{ t - L(r_g / 2),  L(r_g) - t + 4 Gamma }
// as a step function over solution-grid indices g, from the fine profile.
//
// Q changes value only where L(r_g) changes (fine index 2g crosses a fine
// breakpoint b => g = ceil(b/2)) or where L(r_g/2) changes (fine index g
// crosses b => g = b). Both candidate streams ascend with b, so one merged
// two-pointer pass visits every candidate in order while two piece cursors
// track the fine pieces containing 2g and g — no sort, no per-candidate
// binary searches (the former enumeration walked the breakpoints twice and
// paid a log-factor lookup per candidate).
StepFunction BuildQuality(const RadiusProfile& profile, double t, double gamma) {
  const StepFunction& fine = profile.fine_l();
  const std::uint64_t grid = profile.solution_grid_size();
  const std::span<const std::uint64_t> bps = fine.starts();
  const std::span<const double> fine_values = fine.values();
  const std::size_t pieces = bps.size();

  std::vector<std::uint64_t> starts;
  std::vector<double> values;
  starts.reserve(2 * pieces + 1);
  values.reserve(2 * pieces + 1);

  std::size_t pf = 0;  // piece containing fine index 2g (for L(r_g))
  std::size_t ph = 0;  // piece containing fine index g (for L(r_g/2))
  auto emit = [&](std::uint64_t g) {
    while (pf + 1 < pieces && bps[pf + 1] <= 2 * g) ++pf;
    while (ph + 1 < pieces && bps[ph + 1] <= g) ++ph;
    const double l_full = fine_values[pf];
    const double l_half = fine_values[ph];
    const double q = 0.5 * std::min(t - l_half, l_full - t + 4.0 * gamma);
    if (values.empty() || values.back() != q) {
      starts.push_back(g);
      values.push_back(q);
    }
  };

  emit(0);
  // Stream A: g = ceil(b/2); stream B: g = b. Candidates at or past the grid
  // end are dropped — monotone, so the whole stream tail is dropped with
  // them. Duplicate candidates re-evaluate to the same q and coalesce.
  std::size_t ia = 0;
  std::size_t ib = 0;
  while (ia < pieces && (bps[ia] + 1) / 2 >= grid) ia = pieces;
  while (ib < pieces && bps[ib] >= grid) ib = pieces;
  while (ia < pieces || ib < pieces) {
    const std::uint64_t ga =
        ia < pieces ? (bps[ia] + 1) / 2 : std::uint64_t(-1);
    const std::uint64_t gb = ib < pieces ? bps[ib] : std::uint64_t(-1);
    if (ga <= gb) {
      emit(ga);
      if (++ia >= pieces || (bps[ia] + 1) / 2 >= grid) ia = pieces;
    } else {
      emit(gb);
      if (++ib >= pieces || bps[ib] >= grid) ib = pieces;
    }
  }
  return StepFunction::FromBreakpoints(grid, std::move(starts), std::move(values));
}

// t rescaled for a subsample of m of the n rows (never below 1).
std::size_t RescaledT(std::size_t t, std::size_t m, std::size_t n) {
  return std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::llround(static_cast<double>(t) * static_cast<double>(m) /
                          static_cast<double>(n))));
}

// The subsample size the radius stage may keep (satellite of the
// IndexedDataset PR): max_profile_points guards the quadratic structures,
// but when the ~O(n t) grid profile would serve the subsampled problem the
// stage can afford subsample_grid_cap_factor times more rows — less
// subsampling error at about the same cost. Only the RecConcave engine's
// grid path qualifies; everything else keeps the strict cap.
std::size_t EffectiveSubsampleCap(std::size_t n, std::size_t t, std::size_t d,
                                  const GoodRadiusOptions& options) {
  const std::size_t m = options.max_profile_points;
  if (options.engine != GoodRadiusOptions::Engine::kRecConcave) return m;
  if (!(options.subsample_grid_cap_factor > 1.0)) return m;
  const double raised =
      static_cast<double>(m) * options.subsample_grid_cap_factor;
  const std::size_t m2 = static_cast<std::size_t>(std::min(
      static_cast<double>(n), raised));
  if (m2 <= m) return m;
  if (ResolveProfileIndex(options.profile_index, m2, RescaledT(t, m2, n), d) !=
      ProfileIndex::kGrid) {
    return m;
  }
  return m2;
}

Result<GoodRadiusResult> RunRecConcaveEngine(Rng& rng, const PointSet* s,
                                             const IndexedDataset* index,
                                             std::size_t t,
                                             const GridDomain& domain,
                                             const GoodRadiusOptions& options,
                                             std::size_t profile_cap,
                                             double gamma, ThreadPool* pool) {
  const double eps = options.params.epsilon;
  const double beta = options.beta;
  Result<RadiusProfile> built =
      index != nullptr
          ? RadiusProfile::Build(*index, t, profile_cap, pool,
                                 options.profile_index)
          : RadiusProfile::Build(*s, t, domain, profile_cap, pool,
                                 options.profile_index,
                                 options.index_geometry);
  DPC_RETURN_IF_ERROR(built.status());
  const RadiusProfile& profile = *built;

  GoodRadiusResult result;
  result.gamma = gamma;

  // Step 2: zero-radius shortcut. L has sensitivity 2, so Lap(4/eps) noise
  // gives an (eps/2)-DP test.
  const double noisy_l0 = profile.LAtZero() + SampleLaplace(rng, 4.0 / eps);
  const double bar =
      static_cast<double>(t) - 2.0 * gamma - (4.0 / eps) * std::log(2.0 / beta);
  if (noisy_l0 > bar) {
    result.radius = 0.0;
    result.grid_index = 0;
    result.zero_radius_shortcut = true;
    return result;
  }

  // Steps 3-4: RecConcave on Q with promise Gamma and the remaining eps/2.
  const StepFunction quality =
      BuildQuality(profile, static_cast<double>(t), gamma);
  RecConcaveOptions rc = options.rec_concave;
  rc.alpha = 0.5;
  rc.beta = beta / 2.0;
  rc.epsilon = eps / 2.0;
  DPC_ASSIGN_OR_RETURN(std::uint64_t g, RecConcave(rng, quality, gamma, rc));
  result.grid_index = g;
  result.radius = domain.RadiusFromIndex(g);
  return result;
}

Result<GoodRadiusResult> RunSparseVectorEngine(Rng& rng, const PointSet* s,
                                               const IndexedDataset* index,
                                               std::size_t t,
                                               const GridDomain& domain,
                                               const GoodRadiusOptions& options,
                                               std::size_t profile_cap,
                                               ThreadPool* pool) {
  const double eps = options.params.epsilon;
  const double beta = options.beta;
  // The ~log|X| capped counts of the binary search come from per-point t-NN
  // rows (O(n t) memory) — the n x n PairwiseDistances matrix this engine
  // used to materialize is gone.
  Result<KnnCappedCounts> built = Status::Internal("unset");
  const KnnCappedCounts* counts_ptr = nullptr;
  if (index != nullptr && options.shared_counts != nullptr) {
    // Streaming fast path: the caller maintains the rows across edits
    // (KnnCappedCounts::ApplyBatch), so this query pays nothing to build
    // them. The rows are bit-identical to a fresh Build by ApplyBatch's
    // contract, so the released output is unchanged.
    if (options.shared_counts->size() != index->active_size() ||
        options.shared_counts->cap() != t) {
      return Status::InvalidArgument(
          "GoodRadius: shared_counts does not match the index's active set "
          "(size or cap)");
    }
    counts_ptr = options.shared_counts;
  } else if (index != nullptr) {
    built = KnnCappedCounts::Build(*index, t, profile_cap, pool);
    DPC_RETURN_IF_ERROR(built.status());
    counts_ptr = &*built;
  } else {
    DPC_ASSIGN_OR_RETURN(IndexedDataset local,
                         IndexedDataset::Create(*s, domain));
    local.set_index_geometry(options.index_geometry);
    built = KnnCappedCounts::Build(local, t, profile_cap, pool);
    DPC_RETURN_IF_ERROR(built.status());
    counts_ptr = &*built;
  }
  const KnnCappedCounts& counts = *counts_ptr;

  GoodRadiusResult result;

  const std::uint64_t grid = domain.RadiusGridSize();
  const int comparisons = CeilLog2(grid) + 1;
  // L has sensitivity 2; splitting eps across the comparisons, each uses
  // Lap(2 * comparisons * 2 / eps).
  const double scale = 4.0 * static_cast<double>(comparisons) / eps;
  // Loss margin: noise tail over all comparisons (the footnote-2 log|F| cost).
  const double margin = scale * std::log(2.0 * comparisons / beta);
  result.gamma = margin;

  // Find the smallest grid index with noisy L >= t - margin via binary search
  // (L is non-decreasing in the radius).
  const double target = static_cast<double>(t) - margin;
  std::uint64_t lo = 0;
  std::uint64_t hi = grid - 1;
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    const double l = counts.CappedTopAverage(domain.RadiusFromIndex(mid), t);
    const double noisy = l + SampleLaplace(rng, scale);
    if (noisy >= target) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  result.grid_index = lo;
  result.radius = domain.RadiusFromIndex(lo);
  result.zero_radius_shortcut = (lo == 0);
  return result;
}

// Shared driver behind both public entry points: `index` == nullptr runs on
// `s`; otherwise on the index's active points (s unused).
Result<GoodRadiusResult> GoodRadiusImpl(Rng& rng, const PointSet* s,
                                        const IndexedDataset* index,
                                        std::size_t t, const GridDomain& domain,
                                        const GoodRadiusOptions& options) {
  DPC_RETURN_IF_ERROR(options.Validate());
  const std::size_t n = index != nullptr ? index->active_size() : s->size();
  if (n == 0) return Status::InvalidArgument("GoodRadius: empty dataset");
  const std::size_t dim = index != nullptr ? index->dim() : s->dim();
  if (dim != domain.dim()) {
    return Status::InvalidArgument("GoodRadius: domain dimension mismatch");
  }
  // Weighted (coreset) inputs bound t by total mass: the rows stand for a
  // duplicate-expanded dataset, so t points may span fewer distinct rows.
  const bool weighted = index != nullptr && index->weighted();
  const std::uint64_t mass = weighted ? index->active_mass() : n;
  if (t < 1 || t > mass) {
    return Status::InvalidArgument(
        weighted ? "GoodRadius: t must satisfy 1 <= t <= active mass"
                 : "GoodRadius: t must satisfy 1 <= t <= n");
  }

  // Coreset stage (PointSet entry only): collapse to a weighted summary and
  // re-enter through the weighted index — t keeps its expanded meaning
  // because every downstream count sums multiplicities.
  if (index == nullptr && options.coreset.enabled &&
      n >= options.coreset.min_points) {
    ThreadPool build_pool(options.num_threads);
    DPC_ASSIGN_OR_RETURN(
        CoresetSummary summary,
        BuildCoreset(*s, domain, options.coreset, &build_pool));
    DPC_ASSIGN_OR_RETURN(IndexedDataset weighted_index,
                         MakeWeightedIndex(std::move(summary), domain));
    GoodRadiusOptions inner = options;
    inner.coreset.enabled = false;
    inner.shared_counts = nullptr;  // Rows describe the uncompressed index.
    return GoodRadius(rng, weighted_index, t, inner);
  }

  std::size_t profile_cap = options.max_profile_points;
  // Amplification-by-subsampling escape hatch for the profile cap: run on an
  // iid subsample with t rescaled. The subsampled mechanism is at least as
  // private as the full-data one (Lemma 6.4). When the grid profile path
  // makes the enlarged cap cheap, keep up to subsample_grid_cap_factor times
  // more rows — possibly all of them, in which case no subsample is drawn
  // and only the cap is raised.
  // A weighted index never subsamples: rows are already a compressed summary
  // (drawing rows uniformly would ignore their multiplicities).
  if (options.subsample_large_inputs && !weighted &&
      n > options.max_profile_points) {
    profile_cap = EffectiveSubsampleCap(n, t, dim, options);
    if (n > profile_cap) {
      const std::size_t m = profile_cap;
      std::vector<std::size_t> idx(m);
      for (auto& i : idx) i = rng.NextUint64(n);
      PointSet sample(dim);
      if (index != nullptr) {
        const std::span<const std::uint32_t> ids = index->ActiveIds();
        for (const std::size_t i : idx) sample.Add(index->points()[ids[i]]);
      } else {
        for (const std::size_t i : idx) sample.Add((*s)[i]);
      }
      GoodRadiusOptions inner = options;
      inner.subsample_large_inputs = false;
      inner.max_profile_points = std::max(inner.max_profile_points, m);
      inner.shared_counts = nullptr;  // Rows describe the full dataset.
      return GoodRadius(rng, sample, RescaledT(t, m, n), domain, inner);
    }
  }

  const double gamma = GoodRadiusGamma(domain, options);
  ThreadPool pool(options.num_threads);
  switch (options.engine) {
    case GoodRadiusOptions::Engine::kRecConcave:
      return RunRecConcaveEngine(rng, s, index, t, domain, options,
                                 profile_cap, gamma, &pool);
    case GoodRadiusOptions::Engine::kSparseVector:
      return RunSparseVectorEngine(rng, s, index, t, domain, options,
                                   profile_cap, &pool);
  }
  return Status::Internal("GoodRadius: unknown engine");
}

}  // namespace

Status GoodRadiusOptions::Validate() const {
  DPC_RETURN_IF_ERROR(params.Validate());
  if (!(beta > 0.0) || !(beta < 1.0)) {
    return Status::InvalidArgument("GoodRadius: beta must be in (0,1)");
  }
  if (max_profile_points < 1) {
    return Status::InvalidArgument("GoodRadius: max_profile_points must be >= 1");
  }
  if (!(subsample_grid_cap_factor >= 1.0)) {
    return Status::InvalidArgument(
        "GoodRadius: subsample_grid_cap_factor must be >= 1 (1 disables the "
        "grid-path cap raise)");
  }
  return Status::OK();
}

double GoodRadiusGamma(const GridDomain& domain,
                       const GoodRadiusOptions& options) {
  const std::uint64_t grid = domain.RadiusGridSize();
  if (options.paper_constants) {
    return PaperGamma(static_cast<double>(grid), options.params.epsilon,
                      options.beta, std::max(options.params.delta, 1e-300));
  }
  RecConcaveOptions rc = options.rec_concave;
  rc.alpha = 0.5;
  rc.beta = options.beta / 2.0;
  rc.epsilon = options.params.epsilon / 2.0;
  return RecConcaveMinPromise(grid, rc);
}

Result<GoodRadiusResult> GoodRadius(Rng& rng, const PointSet& s, std::size_t t,
                                    const GridDomain& domain,
                                    const GoodRadiusOptions& options) {
  return GoodRadiusImpl(rng, &s, nullptr, t, domain, options);
}

Result<GoodRadiusResult> GoodRadius(Rng& rng, const IndexedDataset& index,
                                    std::size_t t,
                                    const GoodRadiusOptions& options) {
  return GoodRadiusImpl(rng, nullptr, &index, t, index.domain(), options);
}

}  // namespace dpcluster
