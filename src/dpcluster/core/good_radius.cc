#include "dpcluster/core/good_radius.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "dpcluster/common/check.h"
#include "dpcluster/common/math_util.h"
#include "dpcluster/core/radius_profile.h"
#include "dpcluster/geo/pairwise.h"
#include "dpcluster/parallel/thread_pool.h"
#include "dpcluster/random/distributions.h"

namespace dpcluster {
namespace {

// Builds the Algorithm 1 quality
//   Q(g) = 1/2 * min{ t - L(r_g / 2),  L(r_g) - t + 4 Gamma }
// as a step function over solution-grid indices g, from the fine profile.
StepFunction BuildQuality(const RadiusProfile& profile, double t, double gamma) {
  const StepFunction& fine = profile.fine_l();
  const std::uint64_t grid = profile.solution_grid_size();

  // Q changes value only where L(r_g) changes (fine index 2g crosses a fine
  // breakpoint b => g = ceil(b/2)) or where L(r_g/2) changes (fine index g
  // crosses b => g = b).
  std::vector<std::uint64_t> candidates;
  candidates.reserve(2 * fine.num_pieces() + 1);
  candidates.push_back(0);
  for (std::uint64_t b : fine.starts()) {
    if (b < grid) candidates.push_back(b);
    const std::uint64_t half = (b + 1) / 2;
    if (half < grid) candidates.push_back(half);
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  std::vector<std::uint64_t> starts;
  std::vector<double> values;
  starts.reserve(candidates.size());
  values.reserve(candidates.size());
  for (std::uint64_t g : candidates) {
    const double l_full = fine.ValueAt(2 * g);
    const double l_half = fine.ValueAt(g);
    const double q = 0.5 * std::min(t - l_half, l_full - t + 4.0 * gamma);
    if (!values.empty() && values.back() == q) continue;
    starts.push_back(g);
    values.push_back(q);
  }
  return StepFunction::FromBreakpoints(grid, std::move(starts), std::move(values));
}

Result<GoodRadiusResult> RunRecConcaveEngine(Rng& rng, const PointSet& s,
                                             std::size_t t,
                                             const GridDomain& domain,
                                             const GoodRadiusOptions& options,
                                             double gamma, ThreadPool* pool) {
  const double eps = options.params.epsilon;
  const double beta = options.beta;
  DPC_ASSIGN_OR_RETURN(
      RadiusProfile profile,
      RadiusProfile::Build(s, t, domain, options.max_profile_points, pool,
                           options.profile_index));

  GoodRadiusResult result;
  result.gamma = gamma;

  // Step 2: zero-radius shortcut. L has sensitivity 2, so Lap(4/eps) noise
  // gives an (eps/2)-DP test.
  const double noisy_l0 = profile.LAtZero() + SampleLaplace(rng, 4.0 / eps);
  const double bar =
      static_cast<double>(t) - 2.0 * gamma - (4.0 / eps) * std::log(2.0 / beta);
  if (noisy_l0 > bar) {
    result.radius = 0.0;
    result.grid_index = 0;
    result.zero_radius_shortcut = true;
    return result;
  }

  // Steps 3-4: RecConcave on Q with promise Gamma and the remaining eps/2.
  const StepFunction quality =
      BuildQuality(profile, static_cast<double>(t), gamma);
  RecConcaveOptions rc = options.rec_concave;
  rc.alpha = 0.5;
  rc.beta = beta / 2.0;
  rc.epsilon = eps / 2.0;
  DPC_ASSIGN_OR_RETURN(std::uint64_t g, RecConcave(rng, quality, gamma, rc));
  result.grid_index = g;
  result.radius = domain.RadiusFromIndex(g);
  return result;
}

Result<GoodRadiusResult> RunSparseVectorEngine(Rng& rng, const PointSet& s,
                                               std::size_t t,
                                               const GridDomain& domain,
                                               const GoodRadiusOptions& options,
                                               ThreadPool* pool) {
  const double eps = options.params.epsilon;
  const double beta = options.beta;
  DPC_ASSIGN_OR_RETURN(
      PairwiseDistances distances,
      PairwiseDistances::Compute(s, options.max_profile_points, pool));

  GoodRadiusResult result;

  const std::uint64_t grid = domain.RadiusGridSize();
  const int comparisons = CeilLog2(grid) + 1;
  // L has sensitivity 2; splitting eps across the comparisons, each uses
  // Lap(2 * comparisons * 2 / eps).
  const double scale = 4.0 * static_cast<double>(comparisons) / eps;
  // Loss margin: noise tail over all comparisons (the footnote-2 log|F| cost).
  const double margin = scale * std::log(2.0 * comparisons / beta);
  result.gamma = margin;

  // Find the smallest grid index with noisy L >= t - margin via binary search
  // (L is non-decreasing in the radius).
  const double target = static_cast<double>(t) - margin;
  std::uint64_t lo = 0;
  std::uint64_t hi = grid - 1;
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    const double l = distances.CappedTopAverage(domain.RadiusFromIndex(mid), t);
    const double noisy = l + SampleLaplace(rng, scale);
    if (noisy >= target) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  result.grid_index = lo;
  result.radius = domain.RadiusFromIndex(lo);
  result.zero_radius_shortcut = (lo == 0);
  return result;
}

}  // namespace

Status GoodRadiusOptions::Validate() const {
  DPC_RETURN_IF_ERROR(params.Validate());
  if (!(beta > 0.0) || !(beta < 1.0)) {
    return Status::InvalidArgument("GoodRadius: beta must be in (0,1)");
  }
  if (max_profile_points < 1) {
    return Status::InvalidArgument("GoodRadius: max_profile_points must be >= 1");
  }
  return Status::OK();
}

double GoodRadiusGamma(const GridDomain& domain,
                       const GoodRadiusOptions& options) {
  const std::uint64_t grid = domain.RadiusGridSize();
  if (options.paper_constants) {
    return PaperGamma(static_cast<double>(grid), options.params.epsilon,
                      options.beta, std::max(options.params.delta, 1e-300));
  }
  RecConcaveOptions rc = options.rec_concave;
  rc.alpha = 0.5;
  rc.beta = options.beta / 2.0;
  rc.epsilon = options.params.epsilon / 2.0;
  return RecConcaveMinPromise(grid, rc);
}

Result<GoodRadiusResult> GoodRadius(Rng& rng, const PointSet& s, std::size_t t,
                                    const GridDomain& domain,
                                    const GoodRadiusOptions& options) {
  DPC_RETURN_IF_ERROR(options.Validate());
  if (s.empty()) return Status::InvalidArgument("GoodRadius: empty dataset");
  if (s.dim() != domain.dim()) {
    return Status::InvalidArgument("GoodRadius: domain dimension mismatch");
  }
  if (t < 1 || t > s.size()) {
    return Status::InvalidArgument("GoodRadius: t must satisfy 1 <= t <= n");
  }
  // Amplification-by-subsampling escape hatch for the quadratic profile: run
  // on an iid subsample with t rescaled. The subsampled mechanism is at least
  // as private as the full-data one (Lemma 6.4).
  if (options.subsample_large_inputs && s.size() > options.max_profile_points) {
    const std::size_t m = options.max_profile_points;
    std::vector<std::size_t> idx(m);
    for (auto& i : idx) i = rng.NextUint64(s.size());
    const PointSet sample = s.Subset(idx);
    const auto t_scaled = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::llround(
               static_cast<double>(t) * static_cast<double>(m) /
               static_cast<double>(s.size()))));
    GoodRadiusOptions inner = options;
    inner.subsample_large_inputs = false;
    return GoodRadius(rng, sample, t_scaled, domain, inner);
  }

  const double gamma = GoodRadiusGamma(domain, options);
  ThreadPool pool(options.num_threads);
  switch (options.engine) {
    case GoodRadiusOptions::Engine::kRecConcave:
      return RunRecConcaveEngine(rng, s, t, domain, options, gamma, &pool);
    case GoodRadiusOptions::Engine::kSparseVector:
      return RunSparseVectorEngine(rng, s, t, domain, options, &pool);
  }
  return Status::Internal("GoodRadius: unknown engine");
}

}  // namespace dpcluster
