#include "dpcluster/core/interior_point.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "dpcluster/common/check.h"
#include "dpcluster/dp/rec_concave.h"
#include "dpcluster/dp/step_function.h"

namespace dpcluster {

Status InteriorPointOptions::Validate() const {
  DPC_RETURN_IF_ERROR(params.ValidateWithPositiveDelta());
  if (!(beta > 0.0) || !(beta < 1.0)) {
    return Status::InvalidArgument("InteriorPoint: beta must be in (0,1)");
  }
  return Status::OK();
}

Result<InteriorPointResult> InteriorPoint(Rng& rng, std::span<const double> data,
                                          const GridDomain& domain,
                                          const InteriorPointOptions& options) {
  DPC_RETURN_IF_ERROR(options.Validate());
  if (domain.dim() != 1) {
    return Status::InvalidArgument("InteriorPoint: domain must be 1-dimensional");
  }
  const std::size_t m = data.size();
  if (m < 4) {
    return Status::InvalidArgument("InteriorPoint: need at least 4 points");
  }

  std::vector<double> sorted(data.begin(), data.end());
  std::sort(sorted.begin(), sorted.end());

  // Step 1: the middle n entries.
  std::size_t n_mid = options.middle_n == 0 ? m / 2 : options.middle_n;
  n_mid = std::min(n_mid, m);
  n_mid = std::max<std::size_t>(n_mid, 2);
  const std::size_t lo = (m - n_mid) / 2;
  PointSet middle(1, std::vector<double>(sorted.begin() + static_cast<std::ptrdiff_t>(lo),
                                         sorted.begin() + static_cast<std::ptrdiff_t>(lo + n_mid)));

  // Step 2: run the 1-cluster solver on the middle database.
  std::size_t t = options.cluster_t == 0 ? n_mid / 2 : options.cluster_t;
  t = std::clamp<std::size_t>(t, 1, n_mid);
  OneClusterOptions oc = options.one_cluster;
  oc.params = options.params;
  oc.beta = options.beta / 2.0;

  InteriorPointResult result;
  DPC_ASSIGN_OR_RETURN(result.cluster, OneCluster(rng, middle, t, domain, oc));
  const double c = result.cluster.ball.center[0];
  if (result.cluster.radius_stage.zero_radius_shortcut) {
    // A zero-radius cluster: c sits on a mass of duplicates and is interior.
    result.point = c;
    result.candidates = 1;
    return result;
  }

  // Step 3: split I = [c - r, c + r] into intervals of length r/w and collect
  // the edge points. The realized approximation factor is bounded by
  // 4 * (ball.radius / r_stage) since r_stage <= 4 r_opt, so sub-intervals of
  // length r_stage / 4 <= r_opt can never hold t points of the middle database
  // — some edge point must be interior.
  const double r = result.cluster.ball.radius;
  const double r_stage =
      std::max(result.cluster.radius_stage.radius, domain.RadiusFromIndex(1));
  const double sub_len = r_stage / 4.0;
  const auto pieces =
      static_cast<std::size_t>(std::ceil(2.0 * r / sub_len)) + 1;
  std::vector<double> edges;
  edges.reserve(pieces + 1);
  for (std::size_t i = 0; i <= pieces; ++i) {
    edges.push_back(c - r + static_cast<double>(i) * sub_len);
  }
  result.candidates = edges.size();

  // Step 4: RecConcave on the whole database with the interior-point quality
  // q(a) = min(#{x <= a}, #{x >= a}) and promise (m - n)/2.
  std::vector<double> quality(edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const double a = edges[i];
    const auto le = static_cast<double>(
        std::upper_bound(sorted.begin(), sorted.end(), a) - sorted.begin());
    const auto ge = static_cast<double>(
        sorted.end() - std::lower_bound(sorted.begin(), sorted.end(), a));
    quality[i] = std::min(le, ge);
  }
  RecConcaveOptions rc;
  rc.alpha = 0.5;
  rc.beta = options.beta / 2.0;
  rc.epsilon = options.params.epsilon;
  const double promise = static_cast<double>(m - n_mid) / 2.0;
  if (!(promise >= 1.0)) {
    return Status::InvalidArgument(
        "InteriorPoint: database too small relative to middle_n "
        "(need m > middle_n + 1)");
  }
  DPC_ASSIGN_OR_RETURN(
      std::uint64_t idx,
      RecConcave(rng, StepFunction::Dense(quality), promise, rc));
  result.point = edges[idx];
  return result;
}

}  // namespace dpcluster
