// Outlier screening (Section 1.1): locate a ball holding a target fraction of
// the data, then use membership in the (slightly inflated) ball as a predicate
// h that screens outliers before further private analysis. Restricting the
// input space to the ball shrinks the diameter — and with it the global
// sensitivity, hence the noise — of downstream statistics.

#ifndef DPCLUSTER_CORE_OUTLIER_H_
#define DPCLUSTER_CORE_OUTLIER_H_

#include <cstddef>
#include <span>

#include "dpcluster/common/status.h"
#include "dpcluster/core/one_cluster.h"
#include "dpcluster/core/radius_refine.h"

namespace dpcluster {

struct OutlierScreenOptions {
  /// Fraction of points the inlier ball should hold (e.g. 0.9).
  double inlier_fraction = 0.9;
  /// Multiplies the found ball radius before building the predicate, to keep
  /// borderline inliers (1.0 = exact ball).
  double inflation = 1.0;
  OneClusterOptions one_cluster;
  /// The 1-cluster guarantee radius is a worst-case bound (often the whole
  /// cube); the screen additionally spends this extra budget on a private
  /// binary search for the smallest ball around the released center that
  /// actually holds ~t points. Set epsilon to 0 to skip refinement.
  RadiusRefineOptions refine{0.5, 0.1};

  Status Validate() const;
};

/// The screening predicate: h(x) = 1 inside the released ball.
struct OutlierScreen {
  Ball ball;
  OneClusterResult pipeline;

  /// h(x).
  bool IsInlier(std::span<const double> x) const { return ball.Contains(x); }

  /// Dataset restricted to inliers (post-processing of the private ball).
  PointSet Inliers(const PointSet& s) const;
};

/// Builds the screen by solving the 1-cluster problem with t = fraction * n.
/// `index` (optional) lends a prebuilt geo/IndexedDataset over exactly s with
/// every row active (see OneCluster); not mutated, outputs bit-identical.
Result<OutlierScreen> BuildOutlierScreen(Rng& rng, const PointSet& s,
                                         const GridDomain& domain,
                                         const OutlierScreenOptions& options,
                                         const IndexedDataset* index = nullptr);

}  // namespace dpcluster

#endif  // DPCLUSTER_CORE_OUTLIER_H_
