#include "dpcluster/core/good_center.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <unordered_map>
#include <vector>

#include "dpcluster/common/check.h"
#include "dpcluster/dp/above_threshold.h"
#include "dpcluster/dp/accountant.h"
#include "dpcluster/dp/noisy_average.h"
#include "dpcluster/dp/stable_histogram.h"
#include "dpcluster/geo/dataset.h"
#include "dpcluster/geo/partition.h"
#include "dpcluster/la/jl_transform.h"
#include "dpcluster/la/matrix.h"
#include "dpcluster/la/qr.h"
#include "dpcluster/la/vector_ops.h"
#include "dpcluster/parallel/parallel_for.h"

namespace dpcluster {
namespace {

using BoxKey = std::vector<std::int64_t>;
using BoxCounts = std::unordered_map<BoxKey, std::size_t, BoxIndexHash>;

// The rows a GoodCenter call operates on: a whole PointSet (empty ids) or the
// active subset of an IndexedDataset (row i is points[ids[i]]). Row access is
// only needed to assemble the heavy-box preimage D — the hot passes all run
// over the projected matrix — so the indirection never touches a hot loop.
// A weighted (coreset) dataset additionally carries per-row multiplicities
// (`weights` indexed by original row id): every count in the pipeline — box
// occupancy, axis histograms, the averaged mass — then accumulates weight
// instead of rows, matching the duplicate-expanded dataset's counts exactly.
struct SourceRows {
  const PointSet* points;
  std::span<const std::uint32_t> ids;  // empty = identity over all rows
  std::span<const std::uint64_t> weights;  // empty = all rows have weight 1

  std::size_t size() const { return ids.empty() ? points->size() : ids.size(); }
  std::span<const double> Row(std::size_t i) const {
    return (*points)[ids.empty() ? i : ids[i]];
  }
  std::uint64_t Weight(std::size_t i) const {
    return weights.empty() ? 1 : weights[ids.empty() ? i : ids[i]];
  }
};

// Box-occupancy histogram of the projected points for one random partition;
// each row contributes its weight (1 for unweighted sources), so on a coreset
// the histogram equals the duplicate-expanded dataset's box counts exactly.
// Chunks count into private maps; the merge inserts keys in ascending-chunk
// first-seen order, which is exactly the serial row-order insertion sequence —
// ChooseHeavyCell iterates the map (drawing one noise sample per cell), so
// reproducing the insertion order keeps the released choice independent of
// the thread count.
BoxCounts CountBoxes(const Matrix& projected, const BoxPartition& partition,
                     const SourceRows& src, ThreadPool* pool) {
  struct ChunkCounts {
    BoxCounts counts;
    std::vector<BoxKey> first_seen;
  };
  const std::size_t n = projected.rows();
  std::vector<ChunkCounts> chunks(NumChunks(n, kDefaultGrain));
  ParallelForChunks(pool, 0, n, kDefaultGrain,
                    [&](std::size_t lo, std::size_t hi, std::size_t chunk) {
    ChunkCounts& local = chunks[chunk];
    local.counts.reserve(hi - lo);
    BoxKey key(projected.cols());
    for (std::size_t i = lo; i < hi; ++i) {
      const auto row = projected.Row(i);
      for (std::size_t a = 0; a < key.size(); ++a) {
        key[a] = partition.axis(a).IndexOf(row[a]);
      }
      const auto [it, inserted] = local.counts.try_emplace(key, 0);
      it->second += static_cast<std::size_t>(src.Weight(i));
      if (inserted) local.first_seen.push_back(key);
    }
  });
  BoxCounts counts;
  counts.reserve(n);
  for (ChunkCounts& chunk : chunks) {
    for (BoxKey& key : chunk.first_seen) {
      counts[key] += chunk.counts.find(key)->second;
    }
  }
  return counts;
}

std::size_t MaxCount(const BoxCounts& counts) {
  std::size_t best = 0;
  for (const auto& [key, c] : counts) best = std::max(best, c);
  return best;
}

Status ValidateCall(const GoodCenterOptions& options, std::size_t n,
                    std::uint64_t mass, std::size_t t, double r) {
  DPC_RETURN_IF_ERROR(options.Validate());
  if (n == 0) return Status::InvalidArgument("GoodCenter: empty dataset");
  if (t < 1 || t > mass) {
    return Status::InvalidArgument(
        mass != n ? "GoodCenter: t must satisfy 1 <= t <= active mass"
                  : "GoodCenter: t must satisfy 1 <= t <= n");
  }
  if (!(r > 0.0) || !std::isfinite(r)) {
    return Status::InvalidArgument("GoodCenter: radius r must be positive");
  }
  return Status::OK();
}

// Step 1's target dimension: ceil(jl_constant * ln(2n/beta)), clamped. For a
// weighted source n is the expanded mass, not the row count — the utility
// bound's n is the number of (expanded) input points.
std::size_t JlDimFor(std::uint64_t n, const GoodCenterOptions& options) {
  std::size_t k = static_cast<std::size_t>(std::ceil(
      options.jl_constant *
      std::log(2.0 * static_cast<double>(n) / options.beta)));
  if (options.max_jl_dim > 0) k = std::min(k, options.max_jl_dim);
  return std::max<std::size_t>(k, 2);
}

// Steps 2-11, shared by both entry points: everything past the JL projection
// consumes `projected` (src.size() x k) plus original-space row access via
// `src`, so the PointSet and IndexedDataset paths release identical bytes
// whenever their projected matrices match.
Result<GoodCenterResult> GoodCenterImpl(Rng& rng, const SourceRows& src,
                                        std::size_t t, double r,
                                        const GoodCenterOptions& options,
                                        const Matrix& projected,
                                        ThreadPool& pool) {
  const std::size_t n = src.size();
  const std::size_t d = src.points->dim();
  const std::size_t k = projected.cols();
  // Formulas written in terms of the input size use the expanded mass: for a
  // weighted source the rows stand for that many duplicate-expanded points.
  std::uint64_t mass = n;
  if (!src.weights.empty()) {
    mass = 0;
    for (std::size_t i = 0; i < n; ++i) mass += src.Weight(i);
  }

  const double eps = options.params.epsilon;
  const double delta = options.params.delta;
  const double beta = options.beta;
  const PrivacyParams quarter{eps / 4.0, delta / 4.0};

  GoodCenterResult result;
  result.jl_dim = k;

  // ---- Step 2: AboveThreshold over the box-partition queries (eps/4). ----
  const double threshold =
      static_cast<double>(t) -
      (options.threshold_offset_factor / eps) *
          std::log(2.0 * static_cast<double>(mass) / beta);
  DPC_ASSIGN_OR_RETURN(AboveThreshold sparse_vector,
                       AboveThreshold::Create(rng, eps / 4.0, threshold));

  // ---- Steps 3-6: random box partitions until a heavy box exists. --------
  std::size_t max_rounds = options.max_rounds;
  if (max_rounds == 0) {
    max_rounds = static_cast<std::size_t>(
        std::ceil(2.0 * static_cast<double>(mass) * std::log(1.0 / beta) /
                  beta));
  }
  const double box_side = options.box_side_factor * r;
  BoxCounts counts;
  bool found = false;
  // Constructed lazily inside the loop: a throwaway up-front construction
  // would burn k Rng draws that no round ever uses.
  std::optional<BoxPartition> partition;
  for (std::size_t round = 0; round < max_rounds; ++round) {
    partition.emplace(rng, k, box_side);
    counts = CountBoxes(projected, *partition, src, &pool);
    result.rounds_used = round + 1;
    DPC_ASSIGN_OR_RETURN(
        bool top,
        sparse_vector.Process(rng, static_cast<double>(MaxCount(counts))));
    if (top) {
      found = true;
      break;
    }
  }
  if (!found) {
    return Status::DeadlineExceeded(
        "GoodCenter: no box partition captured the cluster within max_rounds "
        "(is there really a ball of radius r holding t points?)");
  }

  // ---- Step 7: stable histogram chooses the heavy box (eps/4, delta/4). ---
  DPC_ASSIGN_OR_RETURN(auto box_choice,
                       (ChooseHeavyCell<BoxKey, BoxIndexHash>(rng, counts, quarter)));
  result.noisy_box_count = box_choice.noisy_count;

  std::vector<std::size_t> d_indices;
  {
    // Membership scan over the chosen box; per-chunk hits concatenated in
    // chunk order reproduce the serial ascending-index sequence.
    std::vector<std::vector<std::size_t>> chunk_hits(NumChunks(n, kDefaultGrain));
    ParallelForChunks(&pool, 0, n, kDefaultGrain,
                      [&](std::size_t lo, std::size_t hi, std::size_t chunk) {
      std::vector<std::size_t>& hits = chunk_hits[chunk];
      for (std::size_t i = lo; i < hi; ++i) {
        const auto row = projected.Row(i);
        bool match = true;
        for (std::size_t a = 0; a < k; ++a) {
          if (partition->axis(a).IndexOf(row[a]) != box_choice.key[a]) {
            match = false;
            break;
          }
        }
        if (match) hits.push_back(i);
      }
    });
    for (const std::vector<std::size_t>& hits : chunk_hits) {
      d_indices.insert(d_indices.end(), hits.begin(), hits.end());
    }
  }
  // The preimage D, gathered row by row (same bytes as Subset of a
  // materialized active view).
  PointSet d_set(d);
  for (const std::size_t i : d_indices) d_set.Add(src.Row(i));

  // ---- Steps 8-9: rotate and pick a heavy interval per axis. --------------
  const Matrix basis = RandomOrthonormalBasis(rng, d);
  const double cube_diameter =
      options.domain_axis_length > 0.0
          ? options.domain_axis_length * std::sqrt(static_cast<double>(d))
          : std::numeric_limits<double>::infinity();
  double p_len;
  if (options.axis_cell_factor > 0.0) {
    p_len = options.axis_cell_factor * r;
  } else {
    p_len = options.interval_multiplier * options.box_side_factor * r *
            std::sqrt(static_cast<double>(k) *
                      std::log(static_cast<double>(d) *
                               static_cast<double>(mass) / beta) /
                      static_cast<double>(d));
  }
  // The projection of any two cube points onto a unit vector differs by at
  // most the cube diameter, so it is also a valid per-axis spread bound.
  p_len = std::min(p_len, cube_diameter);

  // Budget: d stable histograms composed into (eps/4, delta/4). Advanced
  // composition (the paper's eps/(10 sqrt(d ln(8/delta))) choice) only beats
  // basic composition once d exceeds ~2 ln(1/delta); use whichever grants the
  // larger per-axis epsilon.
  const double eps_axis_advanced =
      InverseAdvancedEpsilon(eps / 4.0, d, delta / 8.0);
  const double eps_axis_basic = (eps / 4.0) / static_cast<double>(d);
  const bool use_advanced = eps_axis_advanced > eps_axis_basic;
  const PrivacyParams axis_params{
      use_advanced ? eps_axis_advanced : eps_axis_basic,
      use_advanced ? delta / (8.0 * static_cast<double>(d))
                   : delta / (4.0 * static_cast<double>(d))};

  // All d axis projections of D in one blocked GEMM (row i of axis_proj is
  // the rotated coordinates of d_set[i]; bit-identical to per-axis Dot calls).
  Matrix axis_proj(d_set.size(), d);
  basis.MultiplyAll(d_set.Data(), d_set.size(), axis_proj.MutableData(), &pool);

  std::vector<double> mids(d);
  for (std::size_t axis = 0; axis < d; ++axis) {
    std::unordered_map<std::int64_t, std::size_t> cells;
    for (std::size_t i = 0; i < d_set.size(); ++i) {
      cells[static_cast<std::int64_t>(
          std::floor(axis_proj.At(i, axis) / p_len))] +=
          static_cast<std::size_t>(src.Weight(d_indices[i]));
    }
    auto interval_choice = ChooseHeavyCell<std::int64_t, std::hash<std::int64_t>>(
        rng, cells, axis_params);
    if (!interval_choice.ok()) {
      return Status::NoPrivateAnswer(
          "GoodCenter: axis " + std::to_string(axis) +
          " interval selection failed (" + interval_choice.status().message() +
          "); the heavy box holds too few points for this budget");
    }
    // Interval [j p, (j+1) p) extended by p on both sides; same midpoint.
    mids[axis] =
        (static_cast<double>(interval_choice->key) + 0.5) * p_len;
  }

  // ---- Step 10: the bounding sphere C of the extended box. ----------------
  std::vector<double> center_c(d);
  basis.MultiplyTransposed(mids, center_c);
  double radius_c = 1.5 * p_len * std::sqrt(static_cast<double>(d));
  if (options.domain_axis_length > 0.0) {
    // Clamping c into the cube only shrinks its distance to any data point,
    // and any two cube points are within the cube diameter of each other —
    // so the clamped sphere still covers D while capping the averaging reach.
    for (double& x : center_c) {
      x = std::clamp(x, 0.0, options.domain_axis_length);
    }
    radius_c = std::min(radius_c, cube_diameter);
  }

  // ---- Step 11: NoisyAVG of D ∩ C (eps/4, delta/4). -----------------------
  // The weighted overload averages w-fold copies of each selected row; the
  // unweighted call stays on its own path so its bytes remain bit-identical
  // to the pre-weights implementation.
  Result<NoisyAverageOutput> avg_or = Status::Internal("unset");
  if (src.weights.empty()) {
    avg_or = NoisyAverage(rng, d_set, center_c, radius_c, quarter);
  } else {
    std::vector<std::uint64_t> d_weights(d_indices.size());
    for (std::size_t i = 0; i < d_indices.size(); ++i) {
      d_weights[i] = src.Weight(d_indices[i]);
    }
    avg_or = NoisyAverage(rng, d_set, d_weights, center_c, radius_c, quarter);
  }
  DPC_RETURN_IF_ERROR(avg_or.status());
  NoisyAverageOutput& avg = *avg_or;
  result.center = std::move(avg.average);
  result.noisy_inlier_count = avg.noisy_count;
  result.noise_sigma = avg.sigma;
  result.guarantee_radius = (std::sqrt(2.0) * options.box_side_factor + 1.0) * r *
                            std::sqrt(static_cast<double>(k));
  return result;
}

}  // namespace

GoodCenterOptions GoodCenterOptions::PaperConstants() {
  GoodCenterOptions o;
  o.jl_constant = 46.0;
  o.max_jl_dim = 0;
  o.box_side_factor = 300.0;
  o.threshold_offset_factor = 100.0;
  o.interval_multiplier = 3.0;
  o.axis_cell_factor = 0.0;  // Verbatim worst-case interval length.
  o.max_rounds = 0;  // Resolved to the paper's 2n log(1/beta)/beta at run time.
  o.domain_axis_length = 0.0;  // No domain clamping in the verbatim preset.
  return o;
}

Status GoodCenterOptions::Validate() const {
  DPC_RETURN_IF_ERROR(params.ValidateWithPositiveDelta());
  if (!(beta > 0.0) || !(beta < 1.0)) {
    return Status::InvalidArgument("GoodCenter: beta must be in (0,1)");
  }
  if (!(jl_constant > 0.0)) {
    return Status::InvalidArgument("GoodCenter: jl_constant must be positive");
  }
  if (!(box_side_factor >= 4.0)) {
    return Status::InvalidArgument(
        "GoodCenter: box_side_factor must be >= 4 (the box must be able to "
        "contain the projected cluster, whose diameter is ~3r)");
  }
  if (!(threshold_offset_factor >= 0.0)) {
    return Status::InvalidArgument(
        "GoodCenter: threshold_offset_factor must be >= 0");
  }
  if (!(interval_multiplier >= 3.0)) {
    return Status::InvalidArgument(
        "GoodCenter: interval_multiplier must be >= 3 (Lemma 4.9 bound)");
  }
  return Status::OK();
}

Result<GoodCenterResult> GoodCenter(Rng& rng, const PointSet& s, std::size_t t,
                                    double r, const GoodCenterOptions& options) {
  DPC_RETURN_IF_ERROR(ValidateCall(options, s.size(), s.size(), t, r));

  // One pool for the whole call; every parallel region is deterministic
  // numeric work (the Rng is only ever touched from this thread).
  ThreadPool pool(options.num_threads);

  // ---- Step 1: JL projection into R^k. -----------------------------------
  const std::size_t k = JlDimFor(s.size(), options);
  const JlTransform jl(rng, s.dim(), k);
  const Matrix projected = jl.ApplyAll(s, &pool);

  const SourceRows src{&s, {}, {}};
  return GoodCenterImpl(rng, src, t, r, options, projected, pool);
}

Result<GoodCenterResult> GoodCenter(Rng& rng, const IndexedDataset& index,
                                    std::size_t t, double r,
                                    const GoodCenterOptions& options) {
  const std::size_t n = index.active_size();
  DPC_RETURN_IF_ERROR(ValidateCall(options, n, index.active_mass(), t, r));

  ThreadPool pool(options.num_threads);
  const std::size_t k = JlDimFor(index.active_mass(), options);
  const SourceRows src{&index.points(), index.ActiveIds(),
                       index.weighted() ? index.weights()
                                        : std::span<const std::uint64_t>{}};

  // ---- Step 1: JL projection of the active rows. --------------------------
  // Default: redraw the matrix from the caller Rng and project the gathered
  // active rows — bit-identical to the PointSet overload on ActiveView().
  // With a projection seed: serve the slice from the dataset-wide cache (one
  // GEMM for all rounds); the caller Rng skips the matrix draw.
  if (options.projection_seed != 0) {
    const Matrix& projected =
        index.ProjectedActive(options.projection_seed, k, &pool);
    return GoodCenterImpl(rng, src, t, r, options, projected, pool);
  }
  const JlTransform jl(rng, index.dim(), k);
  const Matrix projected = jl.ApplyAllGathered(index.points(), src.ids, &pool);
  return GoodCenterImpl(rng, src, t, r, options, projected, pool);
}

}  // namespace dpcluster
