// Observation 3.5: iterating the 1-cluster solver k times (removing covered
// points after each round) yields a heuristic k-clustering that covers most of
// the data with at most k balls. The privacy budget is split across the rounds
// (basic composition by default, advanced optionally), which is where the
// paper's k <~ (eps n)^{2/3} / d^{1/3} bound comes from.

#ifndef DPCLUSTER_CORE_K_CLUSTER_H_
#define DPCLUSTER_CORE_K_CLUSTER_H_

#include <cstddef>
#include <vector>

#include "dpcluster/common/status.h"
#include "dpcluster/core/one_cluster.h"
#include "dpcluster/core/radius_refine.h"
#include "dpcluster/geo/dataset.h"

namespace dpcluster {

struct KClusterOptions {
  /// Total privacy budget across all rounds.
  PrivacyParams params{2.0, 1e-9};
  double beta = 0.1;
  /// Number of balls to find.
  std::size_t k = 2;
  /// Per-round target count; 0 means ceil(remaining/k') with k' rounds left.
  std::size_t per_round_t = 0;
  /// Use advanced composition (Theorem 4.7) to size per-round budgets.
  bool advanced_composition = false;
  /// Worker threads for every round's deterministic numeric kernels (0 = one
  /// per hardware thread, 1 = serial; outputs are bit-identical at any
  /// setting). Overwrites one_cluster.num_threads.
  std::size_t num_threads = 1;
  /// Per-round 1-cluster options (params/beta/num_threads overwritten).
  OneClusterOptions one_cluster;
  /// Rounds that fail (e.g. too few remaining points) are skipped rather than
  /// failing the whole call when true.
  bool best_effort = true;
  /// Fraction of each round's epsilon spent on refining the ball radius
  /// (RefineRadius) before removing covered points. Without refinement the
  /// guarantee-radius ball can cover the whole domain and the first round
  /// swallows everything. 0 disables refinement.
  double refine_fraction = 0.25;
  /// How each round's geometry is served. kIncremental (the default) builds
  /// one deletion-capable geo/IndexedDataset and removes covered points in
  /// place across the k rounds — one index build instead of k. kRebuild is
  /// the pre-index path (subset + fresh index per round), kept as the
  /// bit-identity reference: both modes release exactly the same bytes
  /// (pinned by the k-cluster property test), only the runtime differs.
  enum class IndexMode { kIncremental, kRebuild };
  IndexMode index_mode = IndexMode::kIncremental;
  /// Cell-grid coordinate space of the incremental path's own index: kAuto
  /// stays exact (degenerate one-cell grids run the blocked dense scan; the
  /// JL-projected grid is an explicit opt-in, geo/spatial_grid.h) —
  /// bit-identical released outputs, only the runtime moves. Ignored when a
  /// shared_index is lent (its setting governs).
  IndexGeometry index_geometry = IndexGeometry::kAuto;
  /// Coreset stage: when enabled and n >= coreset.min_points (and no
  /// shared_index is lent), the input is collapsed once to a weighted
  /// k-center summary (coreset/coreset.h) and every round peels from the
  /// summary's weighted index — per-round t sizing, refinement counts, and
  /// `uncovered` all use expanded mass, so t keeps its raw-input meaning.
  /// Forces the incremental path (the rebuild path has no weighted form).
  /// Accuracy moves by at most the summary's coverage radius; privacy
  /// accounting is unchanged. A lent shared_index may itself be weighted
  /// (the service lends its cached coreset index); it is then trusted to
  /// summarize exactly `s`, checked by total mass and dimension.
  CoresetOptions coreset;

  Status Validate() const;
};

struct KClusterResult {
  std::vector<OneClusterResult> rounds;
  /// Number of input points not covered by any returned ball (computed
  /// non-privately; intended for evaluation, not release).
  std::size_t uncovered = 0;
  /// Privacy ledger across all rounds (one scoped entry per phase, including
  /// the per-round RefineRadius spend). Under the configured composition rule
  /// its total stays within `KClusterOptions::params`.
  Accountant ledger;
};

/// Runs the iterated heuristic on dataset s. `shared_index` (optional) lends
/// a prebuilt IndexedDataset over exactly s with every row active — e.g. the
/// per-request index a Solver::RunAll batch shares; the rounds then peel
/// covered points from it instead of building their own. The index is
/// restored to its entry state before returning (success or failure), so one
/// index serves many runs. Passing a shared index implies the incremental
/// path regardless of options.index_mode.
Result<KClusterResult> KCluster(Rng& rng, const PointSet& s,
                                const GridDomain& domain,
                                const KClusterOptions& options,
                                IndexedDataset* shared_index = nullptr);

}  // namespace dpcluster

#endif  // DPCLUSTER_CORE_K_CLUSTER_H_
