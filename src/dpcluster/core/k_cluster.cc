#include "dpcluster/core/k_cluster.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>

#include "dpcluster/common/check.h"
#include "dpcluster/coreset/coreset.h"
#include "dpcluster/dp/accountant.h"
#include "dpcluster/la/vector_ops.h"
#include "dpcluster/parallel/thread_pool.h"

namespace dpcluster {

Status KClusterOptions::Validate() const {
  DPC_RETURN_IF_ERROR(params.ValidateWithPositiveDelta());
  if (k < 1) return Status::InvalidArgument("KCluster: k must be >= 1");
  if (!(beta > 0.0) || !(beta < 1.0)) {
    return Status::InvalidArgument("KCluster: beta must be in (0,1)");
  }
  if (!(refine_fraction >= 0.0) || !(refine_fraction < 1.0)) {
    return Status::InvalidArgument(
        "KCluster: refine_fraction must be in [0,1); 1 would leave the "
        "per-round 1-cluster solver with no budget");
  }
  if (!(one_cluster.radius_budget_fraction > 0.0) ||
      !(one_cluster.radius_budget_fraction < 1.0)) {
    return Status::InvalidArgument(
        "KCluster: one_cluster.radius_budget_fraction must be in (0,1)");
  }
  return Status::OK();
}

namespace {

// Restores a lent shared index to its entry state on every exit path.
class SnapshotGuard {
 public:
  SnapshotGuard(IndexedDataset* index, IndexedDataset::Snapshot snapshot)
      : index_(index), snapshot_(std::move(snapshot)) {}
  ~SnapshotGuard() {
    if (index_ != nullptr) {
      const Status restored = index_->Restore(snapshot_);
      DPC_CHECK(restored.ok());  // Same dataset by construction.
    }
  }
  SnapshotGuard(const SnapshotGuard&) = delete;
  SnapshotGuard& operator=(const SnapshotGuard&) = delete;

 private:
  IndexedDataset* index_;
  IndexedDataset::Snapshot snapshot_;
};

}  // namespace

Result<KClusterResult> KCluster(Rng& rng, const PointSet& s,
                                const GridDomain& domain,
                                const KClusterOptions& options,
                                IndexedDataset* shared_index) {
  DPC_RETURN_IF_ERROR(options.Validate());

  // Per-round budget under the selected composition rule.
  PrivacyParams per_round;
  if (options.advanced_composition && options.k > 1) {
    const double slack = options.params.delta / 2.0;
    per_round.epsilon =
        InverseAdvancedEpsilon(options.params.epsilon, options.k, slack);
    per_round.delta =
        (options.params.delta - slack) / static_cast<double>(options.k);
  } else {
    per_round.epsilon = options.params.epsilon / static_cast<double>(options.k);
    per_round.delta = options.params.delta / static_cast<double>(options.k);
  }

  // The incremental path keeps one deletion-capable index across rounds; the
  // legacy rebuild path re-subsets per round (kept as the bit-identity
  // reference — both paths release exactly the same bytes). The coreset
  // stage has no rebuild form, so it forces the incremental path.
  const bool compress = shared_index == nullptr && options.coreset.enabled &&
                        s.size() >= options.coreset.min_points;
  const bool incremental =
      shared_index != nullptr || compress ||
      options.index_mode == KClusterOptions::IndexMode::kIncremental;
  std::optional<IndexedDataset> local_index;
  std::optional<SnapshotGuard> restore_on_exit;
  IndexedDataset* index = nullptr;
  if (incremental) {
    if (shared_index != nullptr) {
      if (shared_index->weighted()) {
        // A weighted lend is a coreset summary of s (the service lends its
        // cached coreset index). Full row correspondence is the cache's
        // contract (it keys entries on the dataset fingerprint); check what
        // is checkable cheaply.
        if (shared_index->total_mass() != s.size() ||
            shared_index->dim() != s.dim() ||
            shared_index->active_size() != shared_index->size()) {
          return Status::InvalidArgument(
              "KCluster: weighted shared_index must summarize exactly the "
              "dataset with every row active");
        }
      } else {
        const std::span<const double> lent = shared_index->points().Data();
        const std::span<const double> given = s.Data();
        if (shared_index->active_size() != s.size() ||
            shared_index->dim() != s.dim() ||
            !std::equal(lent.begin(), lent.end(), given.begin(),
                        given.end())) {
          return Status::InvalidArgument(
              "KCluster: shared_index must view exactly the dataset with "
              "every row active");
        }
      }
      index = shared_index;
      restore_on_exit.emplace(index, index->TakeSnapshot());
    } else if (compress) {
      ThreadPool pool(options.num_threads);
      DPC_ASSIGN_OR_RETURN(CoresetSummary summary,
                           BuildCoreset(s, domain, options.coreset, &pool));
      DPC_ASSIGN_OR_RETURN(local_index,
                           MakeWeightedIndex(std::move(summary), domain));
      local_index->set_index_geometry(options.index_geometry);
      index = &*local_index;
    } else {
      DPC_ASSIGN_OR_RETURN(local_index, IndexedDataset::Create(s, domain));
      local_index->set_index_geometry(options.index_geometry);
      index = &*local_index;
    }
  }

  KClusterResult result;
  // Rebuild path's working copy: indices of points not yet covered.
  std::vector<std::size_t> remaining;
  if (!incremental) {
    remaining.resize(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) remaining[i] = i;
  }

  for (std::size_t round = 0; round < options.k; ++round) {
    // Weighted indexes size rounds by expanded mass, so per-round t keeps
    // its raw-input meaning (active_mass == active_size when unweighted).
    const std::size_t left =
        incremental ? static_cast<std::size_t>(index->active_mass())
                    : remaining.size();
    if (left == 0) break;
    // The incremental path never materializes the active subset: rounds run
    // through the index's span-based entry points (bit-identical outputs).
    std::optional<PointSet> current;
    if (!incremental) current.emplace(s.Subset(remaining));

    std::size_t t = options.per_round_t;
    if (t == 0) {
      const std::size_t rounds_left = options.k - round;
      t = (left + rounds_left - 1) / rounds_left;
    }
    t = std::min(t, left);
    if (t == 0) break;

    OneClusterOptions oc = options.one_cluster;
    oc.params = per_round;
    oc.params.epsilon *= (1.0 - options.refine_fraction);
    oc.beta = options.beta / static_cast<double>(options.k);
    oc.num_threads = options.num_threads;
    auto round_result = incremental
                            ? OneCluster(rng, *index, t, oc)
                            : OneCluster(rng, *current, t, domain, oc);
    if (!round_result.ok()) {
      if (options.best_effort) {
        // The failed round may have partially run (no partial ledger is
        // reported on error); account its whole share conservatively.
        result.ledger.Charge("round" + std::to_string(round) + "/failed",
                             per_round);
        continue;
      }
      return round_result.status();
    }

    const std::string scope = "round" + std::to_string(round) + "/";
    result.ledger.Absorb(round_result->ledger, scope);

    // Refine the radius so the removal ball hugs the found cluster instead of
    // the worst-case guarantee (which can span the whole domain).
    if (options.refine_fraction > 0.0) {
      RadiusRefineOptions refine;
      refine.epsilon = per_round.epsilon * options.refine_fraction;
      refine.beta = options.beta / static_cast<double>(options.k);
      auto refined =
          incremental
              ? RefineRadius(rng, *index, round_result->ball.center, t, refine)
              : RefineRadius(rng, *current, round_result->ball.center, t,
                             domain, refine);
      result.ledger.Charge(scope + "refine", {refine.epsilon, 0.0});
      if (refined.ok()) round_result->ball.radius = *refined;
    }

    // Remove the covered points (post-processing of the private ball) —
    // incrementally from the shared index, or by filtering the working copy.
    const Ball& ball = round_result->ball;
    if (incremental) {
      index->RemoveWithin(ball);
    } else {
      std::vector<std::size_t> next;
      next.reserve(remaining.size());
      for (std::size_t idx : remaining) {
        if (!ball.Contains(s[idx])) next.push_back(idx);
      }
      remaining = std::move(next);
    }
    result.rounds.push_back(std::move(*round_result));
  }

  result.uncovered = incremental
                         ? static_cast<std::size_t>(index->active_mass())
                         : remaining.size();
  return result;
}

}  // namespace dpcluster
