// Stability-based histogram selection (Theorem 2.5, from [3, 20]): given a
// partition P of the universe and a dataset S, privately return a cell
// containing approximately the maximum number of elements of S, even when the
// number of cells is unbounded.
//
// Mechanism: only cells that actually contain elements are considered; each
// non-empty cell's count receives Lap(2/eps) noise, cells whose noisy count
// falls below 1 + (2/eps) ln(2/delta) are suppressed, and the noisy argmax of
// the survivors is returned. Suppression makes the *set of candidate cells*
// stable between neighboring datasets up to probability delta, which is what
// removes the log |P| cost of ordinary selection.
//
// Utility (Theorem 2.5): if the best cell holds T >= (2/eps) log(4n/(beta
// delta)) elements, then with probability >= 1 - beta the returned cell holds
// at least T - (4/eps) log(2n/beta) elements.
//
// GoodCenter uses this three ways: choosing the heavy JL box (step 7) and
// choosing a heavy interval on each rotated axis (step 9c).

#ifndef DPCLUSTER_DP_STABLE_HISTOGRAM_H_
#define DPCLUSTER_DP_STABLE_HISTOGRAM_H_

#include <cstddef>
#include <limits>
#include <unordered_map>

#include "dpcluster/common/status.h"
#include "dpcluster/dp/privacy_params.h"
#include "dpcluster/random/distributions.h"
#include "dpcluster/random/rng.h"

namespace dpcluster {

/// Thresholds and guarantees of the stable-histogram mechanism.
struct StableHistogramBounds {
  /// Suppression threshold 1 + (2/eps) ln(2/delta).
  static double SuppressionThreshold(const PrivacyParams& params);
  /// Utility: max count needed for success w.p. 1-beta over n elements.
  static double RequiredMaxCount(const PrivacyParams& params, std::size_t n,
                                 double beta);
  /// Utility: count loss of the returned cell w.p. 1-beta over n elements.
  static double CountLoss(const PrivacyParams& params, std::size_t n, double beta);
};

/// Selected cell plus its (already noisy, privately releasable) count.
template <typename Key>
struct StableHistogramChoice {
  Key key;
  double noisy_count = 0.0;
};

/// Runs the mechanism over the non-empty cell counts in `counts`.
/// Returns NoPrivateAnswer if every cell is suppressed.
template <typename Key, typename Hash>
Result<StableHistogramChoice<Key>> ChooseHeavyCell(
    Rng& rng, const std::unordered_map<Key, std::size_t, Hash>& counts,
    const PrivacyParams& params) {
  DPC_RETURN_IF_ERROR(params.ValidateWithPositiveDelta());
  if (counts.empty()) {
    return Status::NoPrivateAnswer("stable histogram: no non-empty cells");
  }
  const double scale = 2.0 / params.epsilon;
  const double threshold = StableHistogramBounds::SuppressionThreshold(params);
  bool found = false;
  StableHistogramChoice<Key> best;
  best.noisy_count = -std::numeric_limits<double>::infinity();
  for (const auto& [key, count] : counts) {
    if (count == 0) continue;  // Only materialized cells may be released.
    const double noisy = static_cast<double>(count) + SampleLaplace(rng, scale);
    if (noisy < threshold) continue;
    if (noisy > best.noisy_count) {
      best.noisy_count = noisy;
      best.key = key;
      found = true;
    }
  }
  if (!found) {
    return Status::NoPrivateAnswer(
        "stable histogram: all cells suppressed (no cell is stably heavy)");
  }
  return best;
}

}  // namespace dpcluster

#endif  // DPCLUSTER_DP_STABLE_HISTOGRAM_H_
