// Composition accounting.
//
// Theorem 2.1 (basic composition): k adaptive (eps, delta)-DP interactions are
// (k eps, k delta)-DP.
// Theorem 4.7 (advanced composition, Dwork-Rothblum-Vadhan): they are also
// (2 k eps^2 + eps sqrt(2 k ln(1/delta')), k delta + delta')-DP.
//
// The Accountant records charges and reports the spend under both rules;
// InverseAdvanced answers the planning question GoodCenter step 9c needs: what
// per-mechanism epsilon lets k mechanisms compose to a target budget.

#ifndef DPCLUSTER_DP_ACCOUNTANT_H_
#define DPCLUSTER_DP_ACCOUNTANT_H_

#include <cstddef>
#include <string>
#include <vector>

#include "dpcluster/dp/privacy_params.h"

namespace dpcluster {

/// Basic composition of k copies of `each` (Theorem 2.1).
PrivacyParams BasicCompose(const PrivacyParams& each, std::size_t k);

/// Advanced composition (Theorem 4.7) of k (eps, delta)-DP mechanisms with
/// slack delta'. Returns (eps', k delta + delta').
PrivacyParams AdvancedCompose(const PrivacyParams& each, std::size_t k,
                              double delta_slack);

/// Per-mechanism epsilon so that k mechanisms advanced-compose (with slack
/// delta_slack) to at most eps_total. Mirrors the paper's choice
/// eps_i = eps / (10 sqrt(d ln(8/delta))) in GoodCenter step 9c: we return the
/// largest eps_i with 2 k eps_i^2 + eps_i sqrt(2 k ln(1/delta_slack)) <= eps_total.
double InverseAdvancedEpsilon(double eps_total, std::size_t k, double delta_slack);

/// Ledger of named charges; reports total spend under both composition rules.
class Accountant {
 public:
  struct ChargeEntry {
    std::string label;
    PrivacyParams params;
  };

  /// Records one (eps, delta)-DP interaction.
  void Charge(const std::string& label, const PrivacyParams& params);

  /// Merges every charge of `other` into this ledger, prefixing each label
  /// with `prefix` (pass e.g. "round0/" to scope a sub-ledger).
  void Absorb(const Accountant& other, const std::string& prefix = "");

  /// The recorded charges, in order.
  const std::vector<ChargeEntry>& charges() const { return charges_; }

  std::size_t interactions() const { return charges_.size(); }

  /// Total under basic composition (sums epsilons and deltas).
  PrivacyParams BasicTotal() const;

  /// Total under advanced composition with the given slack, using the maximum
  /// per-charge epsilon as the homogeneous bound (conservative).
  PrivacyParams AdvancedTotal(double delta_slack) const;

  /// Multi-line human-readable ledger.
  std::string Report() const;

 private:
  std::vector<ChargeEntry> charges_;
};

}  // namespace dpcluster

#endif  // DPCLUSTER_DP_ACCOUNTANT_H_
