#include "dpcluster/dp/stable_histogram.h"

#include <cmath>

#include "dpcluster/common/check.h"

namespace dpcluster {

double StableHistogramBounds::SuppressionThreshold(const PrivacyParams& params) {
  return 1.0 + (2.0 / params.epsilon) * std::log(2.0 / params.delta);
}

double StableHistogramBounds::RequiredMaxCount(const PrivacyParams& params,
                                               std::size_t n, double beta) {
  DPC_CHECK_GT(beta, 0.0);
  return (2.0 / params.epsilon) *
         std::log(4.0 * static_cast<double>(n) / (beta * params.delta));
}

double StableHistogramBounds::CountLoss(const PrivacyParams& params, std::size_t n,
                                        double beta) {
  DPC_CHECK_GT(beta, 0.0);
  return (4.0 / params.epsilon) * std::log(2.0 * static_cast<double>(n) / beta);
}

}  // namespace dpcluster
