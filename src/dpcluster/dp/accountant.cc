#include "dpcluster/dp/accountant.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "dpcluster/common/check.h"

namespace dpcluster {

PrivacyParams BasicCompose(const PrivacyParams& each, std::size_t k) {
  const double kk = static_cast<double>(k);
  return {each.epsilon * kk, each.delta * kk};
}

PrivacyParams AdvancedCompose(const PrivacyParams& each, std::size_t k,
                              double delta_slack) {
  DPC_CHECK_GT(delta_slack, 0.0);
  const double kk = static_cast<double>(k);
  const double eps = 2.0 * kk * each.epsilon * each.epsilon +
                     each.epsilon * std::sqrt(2.0 * kk * std::log(1.0 / delta_slack));
  return {eps, kk * each.delta + delta_slack};
}

double InverseAdvancedEpsilon(double eps_total, std::size_t k, double delta_slack) {
  DPC_CHECK_GT(eps_total, 0.0);
  DPC_CHECK_GE(k, 1u);
  DPC_CHECK_GT(delta_slack, 0.0);
  const double kk = static_cast<double>(k);
  const double b = std::sqrt(2.0 * kk * std::log(1.0 / delta_slack));
  // Solve 2 k x^2 + b x - eps_total = 0 for the positive root.
  const double a = 2.0 * kk;
  const double x = (-b + std::sqrt(b * b + 4.0 * a * eps_total)) / (2.0 * a);
  DPC_CHECK_GT(x, 0.0);
  return x;
}

void Accountant::Charge(const std::string& label, const PrivacyParams& params) {
  charges_.push_back({label, params});
}

void Accountant::Absorb(const Accountant& other, const std::string& prefix) {
  charges_.reserve(charges_.size() + other.charges_.size());
  for (const auto& c : other.charges_) {
    charges_.push_back({prefix + c.label, c.params});
  }
}

PrivacyParams Accountant::BasicTotal() const {
  PrivacyParams total{0.0, 0.0};
  for (const auto& c : charges_) {
    total.epsilon += c.params.epsilon;
    total.delta += c.params.delta;
  }
  return total;
}

PrivacyParams Accountant::AdvancedTotal(double delta_slack) const {
  if (charges_.empty()) return {0.0, 0.0};
  double max_eps = 0.0;
  double sum_delta = 0.0;
  for (const auto& c : charges_) {
    max_eps = std::max(max_eps, c.params.epsilon);
    sum_delta += c.params.delta;
  }
  PrivacyParams homogeneous{max_eps, 0.0};
  PrivacyParams composed = AdvancedCompose(homogeneous, charges_.size(), delta_slack);
  composed.delta += sum_delta;
  return composed;
}

std::string Accountant::Report() const {
  std::ostringstream os;
  os << "privacy ledger (" << charges_.size() << " interactions):\n";
  for (const auto& c : charges_) {
    os << "  " << c.label << " " << c.params.ToString() << "\n";
  }
  os << "  basic total " << BasicTotal().ToString();
  return os.str();
}

}  // namespace dpcluster
