#include "dpcluster/dp/rec_concave.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "dpcluster/common/check.h"
#include "dpcluster/common/math_util.h"
#include "dpcluster/dp/exponential_mechanism.h"

namespace dpcluster {
namespace {

// Fixed approximation parameter used by all recursive (derived) levels; only
// the top level honours the caller's alpha.
constexpr double kInnerAlpha = 0.5;

Result<std::uint64_t> SolveLevel(Rng& rng, const StepFunction& q, double promise,
                                 double alpha, double eps_level,
                                 std::uint64_t base, int depth_left) {
  const std::uint64_t t = q.domain_size();
  if (t <= base || depth_left <= 0) {
    return ExponentialMechanism::SelectFromStepFunction(rng, q, eps_level);
  }

  // Interval lengths 2^0 .. 2^jmax with 2^jmax <= T.
  const int jmax = FloorLog2(t);
  const double denom = 2.0 * static_cast<double>(std::max(jmax, 1));

  // Derived quality over length exponents. L(j) is non-increasing in j and has
  // sensitivity 1 (max over intervals of min over sensitivity-1 endpoints);
  // capping with the data-independent increasing bonus keeps sensitivity 1 and
  // quasi-concavity while biasing the recursion toward longer intervals
  // (longer interval => fewer candidate positions => smaller selection loss).
  std::vector<double> derived(static_cast<std::size_t>(jmax) + 1);
  for (int j = 0; j <= jmax; ++j) {
    const double lj = q.MaxEndpointWindowMin(std::uint64_t{1} << j);
    const double cap =
        (alpha * promise / 4.0) * (1.0 + static_cast<double>(j) / denom);
    derived[static_cast<std::size_t>(j)] =
        std::min(lj - (1.0 - alpha) * promise, cap);
  }

  DPC_ASSIGN_OR_RETURN(
      std::uint64_t jhat,
      SolveLevel(rng, StepFunction::Dense(derived), alpha * promise / 4.0,
                 kInnerAlpha, eps_level, base, depth_left - 1));
  const std::uint64_t window = std::uint64_t{1} << jhat;

  // Select a concrete interval of length `window` by its endpoint-min quality
  // (equals its true min quality when q is quasi-concave).
  const StepFunction w = q.EndpointWindowMin(window);
  DPC_ASSIGN_OR_RETURN(
      std::uint64_t ahat,
      ExponentialMechanism::SelectFromStepFunction(rng, w, eps_level));

  // Every point of [ahat, ahat + window) has q >= w(ahat) by quasi-concavity;
  // return the midpoint.
  return ahat + window / 2;
}

}  // namespace

Status RecConcaveOptions::Validate() const {
  if (!(alpha > 0.0) || !(alpha < 1.0)) {
    return Status::InvalidArgument("RecConcave: alpha must be in (0,1)");
  }
  if (!(beta > 0.0) || !(beta < 1.0)) {
    return Status::InvalidArgument("RecConcave: beta must be in (0,1)");
  }
  if (!(epsilon > 0.0) || !std::isfinite(epsilon)) {
    return Status::InvalidArgument("RecConcave: epsilon must be positive");
  }
  if (base_domain_size < 2) {
    return Status::InvalidArgument("RecConcave: base_domain_size must be >= 2");
  }
  if (max_depth < 1) {
    return Status::InvalidArgument("RecConcave: max_depth must be >= 1");
  }
  return Status::OK();
}

int RecConcaveDepth(std::uint64_t domain, const RecConcaveOptions& options) {
  DPC_CHECK_GE(domain, 1u);
  int depth = 0;
  std::uint64_t t = domain;
  while (t > options.base_domain_size && depth < options.max_depth) {
    t = static_cast<std::uint64_t>(FloorLog2(t)) + 1;
    ++depth;
  }
  return depth;
}

double RecConcaveMinPromise(std::uint64_t domain,
                            const RecConcaveOptions& options) {
  const int depth = RecConcaveDepth(domain, options);
  const double eps_level = options.epsilon / static_cast<double>(depth + 1);
  const double beta_level = options.beta / static_cast<double>(depth + 1);

  double alpha = options.alpha;
  std::uint64_t t = domain;
  // Work top-down: at each level the requirement is the max of the level's own
  // selection loss and 4/alpha times the derived problem's requirement.
  std::vector<std::pair<std::uint64_t, double>> levels;  // (domain, alpha).
  for (int lvl = 0; lvl < depth; ++lvl) {
    levels.emplace_back(t, alpha);
    t = static_cast<std::uint64_t>(FloorLog2(t)) + 1;
    alpha = kInnerAlpha;
  }
  // Base case: exponential mechanism must lose at most alpha * p.
  double need = (2.0 / (alpha * eps_level)) *
                std::log(static_cast<double>(t) / beta_level);
  for (auto it = levels.rbegin(); it != levels.rend(); ++it) {
    const auto& [lvl_domain, lvl_alpha] = *it;
    const double selection = (16.0 / (lvl_alpha * eps_level)) *
                             std::log(static_cast<double>(lvl_domain) / beta_level);
    need = std::max(selection, (4.0 / lvl_alpha) * need);
  }
  return need;
}

Result<std::uint64_t> RecConcave(Rng& rng, const StepFunction& quality,
                                 double promise,
                                 const RecConcaveOptions& options) {
  DPC_RETURN_IF_ERROR(options.Validate());
  if (!(promise > 0.0)) {
    return Status::InvalidArgument("RecConcave: promise must be positive");
  }
  if (quality.domain_size() < 1) {
    return Status::InvalidArgument("RecConcave: empty solution domain");
  }
  const int depth = RecConcaveDepth(quality.domain_size(), options);
  const double eps_level = options.epsilon / static_cast<double>(depth + 1);
  return SolveLevel(rng, quality, promise, options.alpha, eps_level,
                    options.base_domain_size, depth);
}

}  // namespace dpcluster
