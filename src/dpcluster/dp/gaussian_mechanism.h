// The Gaussian mechanism (Theorem 2.4, Dwork-Kenthapadi-McSherry-Mironov-Naor):
// adding N(0, sigma^2) per coordinate with
//   sigma >= (l2_sensitivity / epsilon) * sqrt(2 ln(1.25/delta))
// gives (epsilon, delta)-differential privacy for epsilon, delta in (0,1).

#ifndef DPCLUSTER_DP_GAUSSIAN_MECHANISM_H_
#define DPCLUSTER_DP_GAUSSIAN_MECHANISM_H_

#include <span>
#include <vector>

#include "dpcluster/common/status.h"
#include "dpcluster/dp/privacy_params.h"
#include "dpcluster/random/rng.h"

namespace dpcluster {

/// Releases value + N(0, sigma^2) per coordinate.
class GaussianMechanism {
 public:
  /// Validates parameters (0 < epsilon < 1, 0 < delta < 1, sensitivity > 0).
  static Result<GaussianMechanism> Create(const PrivacyParams& params,
                                          double l2_sensitivity);

  double sigma() const { return sigma_; }

  /// One noisy scalar.
  double Release(Rng& rng, double value) const;

  /// Element-wise noisy vector (the L2 sensitivity must bound the whole vector).
  std::vector<double> ReleaseVector(Rng& rng, std::span<const double> values) const;

  /// Per-coordinate two-sided tail: |N(0,sigma^2)| <= sigma sqrt(2 ln(2/beta))
  /// with probability >= 1 - beta.
  double TailBound(double beta) const;

 private:
  explicit GaussianMechanism(double sigma) : sigma_(sigma) {}

  double sigma_;
};

}  // namespace dpcluster

#endif  // DPCLUSTER_DP_GAUSSIAN_MECHANISM_H_
