#include "dpcluster/dp/step_function.h"

#include <algorithm>
#include <limits>

#include "dpcluster/common/check.h"

namespace dpcluster {

StepFunction StepFunction::Constant(std::uint64_t domain, double value) {
  DPC_CHECK_GE(domain, 1u);
  StepFunction f;
  f.domain_ = domain;
  f.starts_ = {0};
  f.values_ = {value};
  return f;
}

StepFunction StepFunction::FromBreakpoints(std::uint64_t domain,
                                           std::vector<std::uint64_t> starts,
                                           std::vector<double> values) {
  DPC_CHECK_GE(domain, 1u);
  DPC_CHECK(!starts.empty());
  DPC_CHECK_EQ(starts.size(), values.size());
  DPC_CHECK_EQ(starts.front(), 0u);
  for (std::size_t p = 1; p < starts.size(); ++p) {
    DPC_CHECK_LT(starts[p - 1], starts[p]);
  }
  DPC_CHECK_LT(starts.back(), domain);
  StepFunction f;
  f.domain_ = domain;
  f.starts_ = std::move(starts);
  f.values_ = std::move(values);
  return f;
}

StepFunction StepFunction::Dense(std::span<const double> values) {
  DPC_CHECK(!values.empty());
  StepFunction f;
  f.domain_ = values.size();
  f.starts_.resize(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) f.starts_[i] = i;
  f.values_.assign(values.begin(), values.end());
  return f;
}

std::uint64_t StepFunction::PieceLength(std::size_t p) const {
  DPC_CHECK_LT(p, starts_.size());
  const std::uint64_t end = (p + 1 < starts_.size()) ? starts_[p + 1] : domain_;
  return end - starts_[p];
}

double StepFunction::ValueAt(std::uint64_t i) const {
  DPC_CHECK_LT(i, domain_);
  // Last piece whose start is <= i.
  auto it = std::upper_bound(starts_.begin(), starts_.end(), i);
  const std::size_t p = static_cast<std::size_t>(it - starts_.begin()) - 1;
  return values_[p];
}

double StepFunction::MaxValue() const {
  return *std::max_element(values_.begin(), values_.end());
}

std::uint64_t StepFunction::ArgMaxFirst() const {
  const std::size_t p = static_cast<std::size_t>(
      std::max_element(values_.begin(), values_.end()) - values_.begin());
  return starts_[p];
}

StepFunction StepFunction::ShiftLeft(std::uint64_t offset) const {
  DPC_CHECK_LT(offset, domain_);
  if (offset == 0) return *this;
  StepFunction g;
  g.domain_ = domain_ - offset;
  // First piece containing `offset`.
  auto it = std::upper_bound(starts_.begin(), starts_.end(), offset);
  std::size_t p = static_cast<std::size_t>(it - starts_.begin()) - 1;
  g.starts_.push_back(0);
  g.values_.push_back(values_[p]);
  for (++p; p < starts_.size(); ++p) {
    g.starts_.push_back(starts_[p] - offset);
    g.values_.push_back(values_[p]);
  }
  return g;
}

StepFunction StepFunction::Prefix(std::uint64_t len) const {
  DPC_CHECK_GE(len, 1u);
  DPC_CHECK_LE(len, domain_);
  if (len == domain_) return *this;
  StepFunction g;
  g.domain_ = len;
  for (std::size_t p = 0; p < starts_.size() && starts_[p] < len; ++p) {
    g.starts_.push_back(starts_[p]);
    g.values_.push_back(values_[p]);
  }
  return g;
}

StepFunction StepFunction::PointwiseMin(const StepFunction& a,
                                        const StepFunction& b) {
  DPC_CHECK_EQ(a.domain_, b.domain_);
  StepFunction g;
  g.domain_ = a.domain_;
  std::size_t pa = 0;
  std::size_t pb = 0;
  std::uint64_t pos = 0;
  while (pos < g.domain_) {
    const double v = std::min(a.values_[pa], b.values_[pb]);
    if (g.values_.empty() || g.values_.back() != v) {
      g.starts_.push_back(pos);
      g.values_.push_back(v);
    }
    const std::uint64_t next_a =
        (pa + 1 < a.starts_.size()) ? a.starts_[pa + 1] : g.domain_;
    const std::uint64_t next_b =
        (pb + 1 < b.starts_.size()) ? b.starts_[pb + 1] : g.domain_;
    pos = std::min(next_a, next_b);
    if (pos == next_a && pa + 1 < a.starts_.size()) ++pa;
    if (pos == next_b && pb + 1 < b.starts_.size()) ++pb;
  }
  return g;
}

StepFunction StepFunction::EndpointWindowMin(std::uint64_t window) const {
  DPC_CHECK_GE(window, 1u);
  DPC_CHECK_LE(window, domain_);
  const StepFunction left = Prefix(domain_ - window + 1);
  const StepFunction right = ShiftLeft(window - 1);
  return PointwiseMin(left, right);
}

double StepFunction::MaxEndpointWindowMin(std::uint64_t window) const {
  DPC_CHECK_GE(window, 1u);
  DPC_CHECK_LE(window, domain_);
  const std::uint64_t dom = domain_ - window + 1;  // Valid start positions.
  const std::uint64_t off = window - 1;
  double best = -std::numeric_limits<double>::infinity();
  std::size_t pa = 0;  // Piece index for f(a).
  // Piece index for f(a + off) at a = 0.
  std::size_t pb = static_cast<std::size_t>(
      std::upper_bound(starts_.begin(), starts_.end(), off) - starts_.begin() - 1);
  std::uint64_t pos = 0;
  while (pos < dom) {
    best = std::max(best, std::min(values_[pa], values_[pb]));
    const std::uint64_t next_a =
        (pa + 1 < starts_.size()) ? starts_[pa + 1] : dom;
    const std::uint64_t next_b =
        (pb + 1 < starts_.size()) ? starts_[pb + 1] - off : dom;
    pos = std::min(next_a, next_b);
    if (pos == next_a && pa + 1 < starts_.size()) ++pa;
    if (pos == next_b && pb + 1 < starts_.size()) ++pb;
  }
  return best;
}

void StepFunction::Coalesce() {
  std::size_t out = 0;
  for (std::size_t p = 0; p < starts_.size(); ++p) {
    if (out > 0 && values_[out - 1] == values_[p]) continue;
    starts_[out] = starts_[p];
    values_[out] = values_[p];
    ++out;
  }
  starts_.resize(out);
  values_.resize(out);
}

bool StepFunction::IsQuasiConcave() const {
  // Piecewise-constant f is quasi-concave iff the piece values never strictly
  // rise again after having strictly fallen.
  bool fallen = false;
  for (std::size_t p = 1; p < values_.size(); ++p) {
    if (values_[p] < values_[p - 1]) fallen = true;
    if (values_[p] > values_[p - 1] && fallen) return false;
  }
  return true;
}

}  // namespace dpcluster
