#include "dpcluster/dp/privacy_params.h"

#include <cmath>
#include <sstream>

namespace dpcluster {

Status PrivacyParams::Validate() const {
  if (!(epsilon > 0.0) || !std::isfinite(epsilon)) {
    return Status::InvalidArgument("epsilon must be positive and finite");
  }
  if (!(delta >= 0.0) || !(delta < 1.0)) {
    return Status::InvalidArgument("delta must lie in [0, 1)");
  }
  return Status::OK();
}

Status PrivacyParams::ValidateWithPositiveDelta() const {
  DPC_RETURN_IF_ERROR(Validate());
  if (!(delta > 0.0)) {
    return Status::InvalidArgument("delta must be strictly positive here");
  }
  return Status::OK();
}

std::string PrivacyParams::ToString() const {
  std::ostringstream os;
  os << "(eps=" << epsilon << ", delta=" << delta << ")";
  return os.str();
}

}  // namespace dpcluster
