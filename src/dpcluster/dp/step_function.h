// StepFunction: a piecewise-constant function over an integer domain [0, T).
//
// This is the representation that makes RecConcave efficient (Remark 4.4): the
// quality functions the paper feeds it (GoodRadius's Q over the radius grid,
// IntPoint's interior-point quality) change value at only poly(n) breakpoints
// even when the solution grid has |F| ~ |X| sqrt(d) points. All RecConcave
// operations (windowed endpoint minima, pointwise min, exponential-mechanism
// sampling) run in time linear in the number of pieces, never in T.

#ifndef DPCLUSTER_DP_STEP_FUNCTION_H_
#define DPCLUSTER_DP_STEP_FUNCTION_H_

#include <cstdint>
#include <span>
#include <vector>

namespace dpcluster {

/// Piecewise-constant f : [0, T) -> R with T up to 2^63.
class StepFunction {
 public:
  /// The constant function `value` over [0, domain).
  static StepFunction Constant(std::uint64_t domain, double value);

  /// From aligned breakpoints: starts[0] == 0, strictly increasing, all < domain;
  /// piece p covers [starts[p], starts[p+1]) with value values[p].
  static StepFunction FromBreakpoints(std::uint64_t domain,
                                      std::vector<std::uint64_t> starts,
                                      std::vector<double> values);

  /// One piece per entry of `values` (domain = values.size()).
  static StepFunction Dense(std::span<const double> values);

  std::uint64_t domain_size() const { return domain_; }
  std::size_t num_pieces() const { return starts_.size(); }
  std::span<const std::uint64_t> starts() const { return starts_; }
  std::span<const double> values() const { return values_; }

  /// Length of piece p.
  std::uint64_t PieceLength(std::size_t p) const;

  /// f(i); i must be < domain_size().
  double ValueAt(std::uint64_t i) const;

  double MaxValue() const;

  /// First index attaining the maximum.
  std::uint64_t ArgMaxFirst() const;

  /// g(a) = f(a + offset) over [0, T - offset); offset < T.
  StepFunction ShiftLeft(std::uint64_t offset) const;

  /// Restriction to [0, len); 1 <= len <= T.
  StepFunction Prefix(std::uint64_t len) const;

  /// Pointwise min; domains must match.
  static StepFunction PointwiseMin(const StepFunction& a, const StepFunction& b);

  /// w(a) = min(f(a), f(a + window - 1)) over [0, T - window + 1).
  /// For quasi-concave f this equals the minimum of f over the length-`window`
  /// interval starting at a. Requires 1 <= window <= T.
  StepFunction EndpointWindowMin(std::uint64_t window) const;

  /// max_a min(f(a), f(a + window - 1)) without materializing the window
  /// function. Requires 1 <= window <= T.
  double MaxEndpointWindowMin(std::uint64_t window) const;

  /// Merges adjacent pieces with equal values (exact comparison).
  void Coalesce();

  /// True if f(i) >= min(f(j), f(k)) for all j <= i <= k, checked exactly on
  /// the piece structure. O(pieces). Used by tests and debug assertions.
  bool IsQuasiConcave() const;

 private:
  StepFunction() : domain_(0) {}

  std::uint64_t domain_;
  std::vector<std::uint64_t> starts_;
  std::vector<double> values_;
};

}  // namespace dpcluster

#endif  // DPCLUSTER_DP_STEP_FUNCTION_H_
