// The sparse vector technique, algorithm AboveThreshold (Theorem 4.8,
// Dwork-Naor-Reingold-Rothblum-Vadhan): answer a stream of sensitivity-1
// queries with bot until the first query whose noisy value exceeds a noisy
// threshold; output top and halt. The whole interaction is (eps, 0)-DP
// regardless of the number of bot answers.
//
// GoodCenter (Algorithm 2, steps 2-6) uses it to privately detect the first
// random box partition that captures the cluster.

#ifndef DPCLUSTER_DP_ABOVE_THRESHOLD_H_
#define DPCLUSTER_DP_ABOVE_THRESHOLD_H_

#include <cstddef>

#include "dpcluster/common/status.h"
#include "dpcluster/random/rng.h"

namespace dpcluster {

/// One AboveThreshold interaction (single top answer, then halted).
class AboveThreshold {
 public:
  /// Draws the noisy threshold. epsilon > 0; queries must have sensitivity 1.
  static Result<AboveThreshold> Create(Rng& rng, double epsilon, double threshold);

  /// Feeds the next query value. Returns true for top (and halts the
  /// mechanism), false for bot. Fails if already halted.
  Result<bool> Process(Rng& rng, double query_value);

  bool halted() const { return halted_; }
  std::size_t queries_answered() const { return queries_; }

  /// Theorem 4.8 accuracy: with probability >= 1 - beta, every top answer has
  /// f(S) >= threshold - margin and every bot has f(S) <= threshold + margin,
  /// where margin = (8/eps) log(2k/beta) over k rounds.
  static double AccuracyMargin(double epsilon, std::size_t k, double beta);

 private:
  AboveThreshold(double epsilon, double noisy_threshold)
      : epsilon_(epsilon), noisy_threshold_(noisy_threshold) {}

  double epsilon_;
  double noisy_threshold_;
  bool halted_ = false;
  std::size_t queries_ = 0;
};

}  // namespace dpcluster

#endif  // DPCLUSTER_DP_ABOVE_THRESHOLD_H_
