// The exponential mechanism (McSherry-Talwar): select a solution f with
// probability proportional to exp(eps * q(S, f) / (2 * sensitivity)). This is
// (eps, 0)-differentially private for any finite solution set.
//
// Sampling uses the Gumbel-max trick, which is exact and overflow-free, and is
// implemented both for explicit score arrays and for StepFunction qualities
// (sampling in time linear in the number of pieces, not the domain size).

#ifndef DPCLUSTER_DP_EXPONENTIAL_MECHANISM_H_
#define DPCLUSTER_DP_EXPONENTIAL_MECHANISM_H_

#include <cstdint>
#include <span>

#include "dpcluster/common/status.h"
#include "dpcluster/dp/step_function.h"
#include "dpcluster/random/rng.h"

namespace dpcluster {

class ExponentialMechanism {
 public:
  /// Selects an index into `qualities` with prob ∝ exp(eps q / (2 sens)).
  static Result<std::size_t> SelectIndex(Rng& rng,
                                         std::span<const double> qualities,
                                         double epsilon,
                                         double sensitivity = 1.0);

  /// Selects a domain element of `quality` with prob ∝ exp(eps q / (2 sens)).
  /// Runs in O(num_pieces).
  static Result<std::uint64_t> SelectFromStepFunction(Rng& rng,
                                                      const StepFunction& quality,
                                                      double epsilon,
                                                      double sensitivity = 1.0);

  /// Standard utility bound: with probability >= 1 - beta the selected solution
  /// has quality >= max_quality - (2 sens / eps) * ln(|domain| / beta).
  static double UtilityMargin(double epsilon, double sensitivity,
                              std::uint64_t domain, double beta);
};

}  // namespace dpcluster

#endif  // DPCLUSTER_DP_EXPONENTIAL_MECHANISM_H_
