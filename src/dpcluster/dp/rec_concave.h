// RecConcave (Theorem 4.3, Beimel-Nissim-Stemmer [3]): privately solve a
// quasi-concave promise problem. Given a sensitivity-1 quality function Q over
// a totally ordered finite solution set F such that Q(S, .) is quasi-concave
// and max_f Q(S, f) >= p (the promise), return f with Q(S, f) >= (1 - alpha) p.
//
// Structure (faithful to [3]): a recursion on interval *lengths*. At each level
// the domain [0, T) is replaced by the length exponents {0, .., log2 T}, with
// derived quality built from L(j) = max_a min(Q(a), Q(a + 2^j - 1)) — for
// quasi-concave Q this is the best worst-case quality of any interval of
// length 2^j. The recursion therefore shrinks T -> log T per level and has
// depth log*(T). Having privately selected a good length 2^j, the level
// privately selects a concrete interval of that length and returns its
// midpoint (every point of the interval inherits the interval's min quality by
// quasi-concavity).
//
// DOCUMENTED SUBSTITUTION (DESIGN.md #1): [3] performs the per-level interval
// selection with the bounded-growth "choosing mechanism", paying only
// 2^{O(log* |F|)} in utility. That mechanism's privacy needs a bounded-growth
// quality, which the capped averaged counts used by this paper do not satisfy,
// so this implementation selects with the exponential mechanism instead: the
// result is pure (eps, 0)-DP for *every* sensitivity-1 quality, at utility
// cost O(log |F|) / eps. RecConcaveMinPromise() reports the exact promise this
// implementation needs, and GoodRadius sizes its Gamma with it.
//
// All quality functions are passed as StepFunction, so every level runs in
// time linear in the number of pieces (Remark 4.4's efficiency requirement).

#ifndef DPCLUSTER_DP_REC_CONCAVE_H_
#define DPCLUSTER_DP_REC_CONCAVE_H_

#include <cstdint>

#include "dpcluster/common/status.h"
#include "dpcluster/dp/step_function.h"
#include "dpcluster/random/rng.h"

namespace dpcluster {

/// Parameters of one RecConcave invocation.
struct RecConcaveOptions {
  /// Approximation: the output satisfies Q >= (1 - alpha) * promise.
  double alpha = 0.5;
  /// Failure probability of the utility guarantee.
  double beta = 0.05;
  /// Privacy budget; the mechanism is (epsilon, 0)-DP.
  double epsilon = 1.0;
  /// Domains of at most this size are solved directly by one exponential
  /// mechanism (the recursion's base case).
  std::uint64_t base_domain_size = 32;
  /// Hard recursion cap (log* of any finite domain is far below this).
  int max_depth = 16;

  Status Validate() const;
};

/// Number of recursion levels before the base case for a domain of this size.
int RecConcaveDepth(std::uint64_t domain, const RecConcaveOptions& options);

/// The minimum promise for which this implementation's utility guarantee
/// holds: with promise >= this value and a quasi-concave sensitivity-1
/// quality, the output has Q >= (1 - alpha) * promise with probability
/// >= 1 - beta. Plays the role of the paper's
/// 8^{log*|F|} (36 log*|F| / alpha eps) log(12 log*|F| / beta delta) bound.
double RecConcaveMinPromise(std::uint64_t domain, const RecConcaveOptions& options);

/// Runs RecConcave on `quality` (a sensitivity-1 function of the dataset,
/// already evaluated as a step function over the solution grid) with the given
/// quality `promise`. Returns the selected solution index.
Result<std::uint64_t> RecConcave(Rng& rng, const StepFunction& quality,
                                 double promise, const RecConcaveOptions& options);

}  // namespace dpcluster

#endif  // DPCLUSTER_DP_REC_CONCAVE_H_
