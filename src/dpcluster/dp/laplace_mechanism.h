// The Laplace mechanism (Theorem 2.3, Dwork-McSherry-Nissim-Smith): adding
// Lap(sensitivity/epsilon) noise to an L1-sensitivity-bounded function gives
// (epsilon, 0)-differential privacy.

#ifndef DPCLUSTER_DP_LAPLACE_MECHANISM_H_
#define DPCLUSTER_DP_LAPLACE_MECHANISM_H_

#include <span>
#include <vector>

#include "dpcluster/common/status.h"
#include "dpcluster/random/rng.h"

namespace dpcluster {

/// Releases value + Lap(l1_sensitivity / epsilon).
class LaplaceMechanism {
 public:
  /// Validates parameters (epsilon > 0, sensitivity > 0).
  static Result<LaplaceMechanism> Create(double epsilon, double l1_sensitivity);

  double epsilon() const { return epsilon_; }
  double scale() const { return scale_; }

  /// One noisy scalar.
  double Release(Rng& rng, double value) const;

  /// Element-wise noisy vector (the L1 sensitivity must bound the whole vector).
  std::vector<double> ReleaseVector(Rng& rng, std::span<const double> values) const;

  /// Two-sided tail bound: |Lap(scale)| <= scale * ln(1/beta) w.p. >= 1 - beta.
  double TailBound(double beta) const;

 private:
  LaplaceMechanism(double epsilon, double scale) : epsilon_(epsilon), scale_(scale) {}

  double epsilon_;
  double scale_;
};

}  // namespace dpcluster

#endif  // DPCLUSTER_DP_LAPLACE_MECHANISM_H_
