#include "dpcluster/dp/gaussian_mechanism.h"

#include <cmath>

#include "dpcluster/common/check.h"
#include "dpcluster/random/distributions.h"

namespace dpcluster {

Result<GaussianMechanism> GaussianMechanism::Create(const PrivacyParams& params,
                                                    double l2_sensitivity) {
  DPC_RETURN_IF_ERROR(params.ValidateWithPositiveDelta());
  if (params.epsilon >= 1.0) {
    return Status::InvalidArgument(
        "GaussianMechanism: Theorem 2.4 requires epsilon < 1");
  }
  if (!(l2_sensitivity > 0.0) || !std::isfinite(l2_sensitivity)) {
    return Status::InvalidArgument("GaussianMechanism: sensitivity must be positive");
  }
  const double sigma = (l2_sensitivity / params.epsilon) *
                       std::sqrt(2.0 * std::log(1.25 / params.delta));
  return GaussianMechanism(sigma);
}

double GaussianMechanism::Release(Rng& rng, double value) const {
  return value + SampleGaussian(rng, sigma_);
}

std::vector<double> GaussianMechanism::ReleaseVector(
    Rng& rng, std::span<const double> values) const {
  std::vector<double> out(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) out[i] = Release(rng, values[i]);
  return out;
}

double GaussianMechanism::TailBound(double beta) const {
  DPC_CHECK_GT(beta, 0.0);
  DPC_CHECK_LT(beta, 1.0);
  return sigma_ * std::sqrt(2.0 * std::log(2.0 / beta));
}

}  // namespace dpcluster
