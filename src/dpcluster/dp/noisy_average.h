// Algorithm 5 (NoisyAVG, Appendix A): privately release the average of the
// vectors selected by a predicate g of bounded reach. The L2 sensitivity of the
// selected average is at most 4*Delta_g/(m+1) (Appendix A), so a Gaussian noise
// vector with sigma = 8*Delta_g/(eps*m_hat) * sqrt(2 ln(8/delta)) added to the
// average is (eps, delta)-DP, where m_hat is a pessimistic noisy count.
//
// Following Observation A.2 the predicate here is membership in a ball
// (center c, radius R): vectors are re-centered at c, so Delta_g = R.

#ifndef DPCLUSTER_DP_NOISY_AVERAGE_H_
#define DPCLUSTER_DP_NOISY_AVERAGE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "dpcluster/common/status.h"
#include "dpcluster/dp/privacy_params.h"
#include "dpcluster/geo/point_set.h"
#include "dpcluster/random/rng.h"

namespace dpcluster {

/// Output of NoisyAverage.
struct NoisyAverageOutput {
  /// The privately released average (dimension = points.dim()).
  std::vector<double> average;
  /// The pessimistic noisy selected-count m_hat (> 0); privately releasable.
  double noisy_count = 0.0;
  /// The per-coordinate Gaussian sigma that was added; releasable.
  double sigma = 0.0;
};

/// Releases the noisy average of the points of `points` lying in the ball
/// (center, radius). Returns NoPrivateAnswer when the mechanism outputs bot
/// (m_hat <= 0, step 1 of Algorithm 5).
Result<NoisyAverageOutput> NoisyAverage(Rng& rng, const PointSet& points,
                                        std::span<const double> center,
                                        double radius,
                                        const PrivacyParams& params);

/// Weighted NoisyAverage: row i stands for weights[i] identical copies of
/// points[i] (a duplicate-expanded dataset, e.g. a coreset summary). The
/// selected sum accumulates weights[i] * (p - center) and the count
/// accumulates weights[i]. Privacy is with respect to the *expanded* dataset
/// (one expanded row changes the count by 1 and the re-centered sum by at
/// most radius, the same sensitivities as the unweighted overload). The
/// released bytes match the unweighted overload on the expanded dataset only
/// up to floating-point associativity (w * x vs w-fold repeated addition) —
/// this overload is deliberately outside the bit-identity contract; the Rng
/// draw sequence is identical.
Result<NoisyAverageOutput> NoisyAverage(Rng& rng, const PointSet& points,
                                        std::span<const std::uint64_t> weights,
                                        std::span<const double> center,
                                        double radius,
                                        const PrivacyParams& params);

/// Observation A.1 margin: if m = |selected| >= (16/eps) ln(2/(beta delta)),
/// then w.p. >= 1-beta the released sigma is at most
/// 16*radius/(eps*m) * sqrt(2 ln(8/delta)).
double NoisyAverageSigmaBound(double radius, double epsilon, double delta,
                              double m);

}  // namespace dpcluster

#endif  // DPCLUSTER_DP_NOISY_AVERAGE_H_
