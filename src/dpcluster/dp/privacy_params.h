// (epsilon, delta) privacy parameters (Definition 1.1) and budget-splitting
// helpers used by the composed algorithms.

#ifndef DPCLUSTER_DP_PRIVACY_PARAMS_H_
#define DPCLUSTER_DP_PRIVACY_PARAMS_H_

#include <string>

#include "dpcluster/common/status.h"

namespace dpcluster {

/// An (epsilon, delta) differential-privacy budget.
struct PrivacyParams {
  double epsilon = 1.0;
  double delta = 1e-9;

  /// OK iff epsilon > 0 and 0 <= delta < 1.
  Status Validate() const;

  /// Requires delta > 0 as well (Gaussian-mechanism style requirements).
  Status ValidateWithPositiveDelta() const;

  /// Budget scaled by `fraction` in both coordinates.
  PrivacyParams Fraction(double fraction) const {
    return {epsilon * fraction, delta * fraction};
  }

  std::string ToString() const;
};

}  // namespace dpcluster

#endif  // DPCLUSTER_DP_PRIVACY_PARAMS_H_
