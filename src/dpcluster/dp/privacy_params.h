// (epsilon, delta) privacy parameters (Definition 1.1) and budget-splitting
// helpers used by the composed algorithms.

#ifndef DPCLUSTER_DP_PRIVACY_PARAMS_H_
#define DPCLUSTER_DP_PRIVACY_PARAMS_H_

#include <string>

#include "dpcluster/common/status.h"

namespace dpcluster {

/// An (epsilon, delta) differential-privacy budget.
struct PrivacyParams {
  double epsilon = 1.0;
  double delta = 1e-9;

  /// OK iff epsilon > 0 and 0 <= delta < 1.
  Status Validate() const;

  /// Requires delta > 0 as well (Gaussian-mechanism style requirements).
  Status ValidateWithPositiveDelta() const;

  /// Budget scaled by `fraction` in BOTH coordinates: (f*eps, f*delta).
  ///
  /// Basic composition (Theorem 2.1) only requires that the per-phase deltas
  /// SUM to the total delta; how they are split is a policy choice, not a
  /// requirement of composition. Scaling delta proportionally to epsilon is
  /// this library's convention because it makes complementary fractions
  /// recompose exactly: Fraction(f) + Fraction(1-f) = the original budget
  /// under BasicCompose. Callers that want a different delta split (e.g. all
  /// of delta to one phase, pure-eps phases elsewhere) can construct
  /// PrivacyParams directly; every algorithm only relies on the sums.
  PrivacyParams Fraction(double fraction) const {
    return {epsilon * fraction, delta * fraction};
  }

  std::string ToString() const;
};

}  // namespace dpcluster

#endif  // DPCLUSTER_DP_PRIVACY_PARAMS_H_
