#include "dpcluster/dp/laplace_mechanism.h"

#include <cmath>

#include "dpcluster/common/check.h"
#include "dpcluster/random/distributions.h"

namespace dpcluster {

Result<LaplaceMechanism> LaplaceMechanism::Create(double epsilon,
                                                  double l1_sensitivity) {
  if (!(epsilon > 0.0) || !std::isfinite(epsilon)) {
    return Status::InvalidArgument("LaplaceMechanism: epsilon must be positive");
  }
  if (!(l1_sensitivity > 0.0) || !std::isfinite(l1_sensitivity)) {
    return Status::InvalidArgument("LaplaceMechanism: sensitivity must be positive");
  }
  return LaplaceMechanism(epsilon, l1_sensitivity / epsilon);
}

double LaplaceMechanism::Release(Rng& rng, double value) const {
  return value + SampleLaplace(rng, scale_);
}

std::vector<double> LaplaceMechanism::ReleaseVector(
    Rng& rng, std::span<const double> values) const {
  std::vector<double> out(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) out[i] = Release(rng, values[i]);
  return out;
}

double LaplaceMechanism::TailBound(double beta) const {
  DPC_CHECK_GT(beta, 0.0);
  DPC_CHECK_LT(beta, 1.0);
  return scale_ * std::log(1.0 / beta);
}

}  // namespace dpcluster
