#include "dpcluster/dp/exponential_mechanism.h"

#include <cmath>
#include <limits>

#include "dpcluster/common/check.h"
#include "dpcluster/random/distributions.h"

namespace dpcluster {
namespace {

Status ValidateEps(double epsilon, double sensitivity) {
  if (!(epsilon > 0.0) || !std::isfinite(epsilon)) {
    return Status::InvalidArgument("ExponentialMechanism: epsilon must be positive");
  }
  if (!(sensitivity > 0.0) || !std::isfinite(sensitivity)) {
    return Status::InvalidArgument(
        "ExponentialMechanism: sensitivity must be positive");
  }
  return Status::OK();
}

}  // namespace

Result<std::size_t> ExponentialMechanism::SelectIndex(
    Rng& rng, std::span<const double> qualities, double epsilon,
    double sensitivity) {
  DPC_RETURN_IF_ERROR(ValidateEps(epsilon, sensitivity));
  if (qualities.empty()) {
    return Status::InvalidArgument("ExponentialMechanism: empty solution set");
  }
  const double lambda = epsilon / (2.0 * sensitivity);
  double best = -std::numeric_limits<double>::infinity();
  std::size_t best_i = 0;
  for (std::size_t i = 0; i < qualities.size(); ++i) {
    const double score = lambda * qualities[i] + SampleGumbel(rng);
    if (score > best) {
      best = score;
      best_i = i;
    }
  }
  return best_i;
}

Result<std::uint64_t> ExponentialMechanism::SelectFromStepFunction(
    Rng& rng, const StepFunction& quality, double epsilon, double sensitivity) {
  DPC_RETURN_IF_ERROR(ValidateEps(epsilon, sensitivity));
  const double lambda = epsilon / (2.0 * sensitivity);
  // Gumbel-max over pieces with log-weight lambda*value + ln(length) selects a
  // piece with probability proportional to length * exp(lambda*value); a
  // uniform index within the piece then realizes the exact exponential-
  // mechanism distribution over the whole domain.
  double best = -std::numeric_limits<double>::infinity();
  std::size_t best_p = 0;
  for (std::size_t p = 0; p < quality.num_pieces(); ++p) {
    const double lw = lambda * quality.values()[p] +
                      std::log(static_cast<double>(quality.PieceLength(p)));
    const double score = lw + SampleGumbel(rng);
    if (score > best) {
      best = score;
      best_p = p;
    }
  }
  const std::uint64_t len = quality.PieceLength(best_p);
  return quality.starts()[best_p] + rng.NextUint64(len);
}

double ExponentialMechanism::UtilityMargin(double epsilon, double sensitivity,
                                           std::uint64_t domain, double beta) {
  DPC_CHECK_GT(beta, 0.0);
  DPC_CHECK_GE(domain, 1u);
  return (2.0 * sensitivity / epsilon) *
         std::log(static_cast<double>(domain) / beta);
}

}  // namespace dpcluster
