#include "dpcluster/dp/noisy_average.h"

#include <cmath>

#include "dpcluster/common/check.h"
#include "dpcluster/la/vector_ops.h"
#include "dpcluster/random/distributions.h"

namespace dpcluster {

Result<NoisyAverageOutput> NoisyAverage(Rng& rng, const PointSet& points,
                                        std::span<const double> center,
                                        double radius,
                                        const PrivacyParams& params) {
  DPC_RETURN_IF_ERROR(params.ValidateWithPositiveDelta());
  if (center.size() != points.dim()) {
    return Status::InvalidArgument("NoisyAverage: center dimension mismatch");
  }
  if (!(radius > 0.0) || !std::isfinite(radius)) {
    return Status::InvalidArgument("NoisyAverage: radius must be positive");
  }

  const double eps = params.epsilon;
  const double delta = params.delta;
  const std::size_t d = points.dim();
  const double r2 = radius * radius * (1.0 + 1e-12);

  // Selected sum (re-centered at `center`, Observation A.2) and count.
  std::vector<double> sum(d, 0.0);
  std::size_t m = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto p = points[i];
    if (SquaredDistance(p, center) > r2) continue;
    for (std::size_t j = 0; j < d; ++j) sum[j] += p[j] - center[j];
    ++m;
  }

  // Step 1: pessimistic noisy count; bot when it is not safely positive.
  const double m_hat = static_cast<double>(m) + SampleLaplace(rng, 2.0 / eps) -
                       (2.0 / eps) * std::log(2.0 / delta);
  if (m_hat <= 0.0) {
    return Status::NoPrivateAnswer("NoisyAverage: noisy count m_hat <= 0 (bot)");
  }

  // Step 2: Gaussian noise scaled to the pessimistic count.
  const double sigma =
      (8.0 * radius / (eps * m_hat)) * std::sqrt(2.0 * std::log(8.0 / delta));
  NoisyAverageOutput out;
  out.noisy_count = m_hat;
  out.sigma = sigma;
  out.average.resize(d);
  const double inv_m = m > 0 ? 1.0 / static_cast<double>(m) : 0.0;
  for (std::size_t j = 0; j < d; ++j) {
    out.average[j] = center[j] + sum[j] * inv_m + SampleGaussian(rng, sigma);
  }
  return out;
}

Result<NoisyAverageOutput> NoisyAverage(Rng& rng, const PointSet& points,
                                        std::span<const std::uint64_t> weights,
                                        std::span<const double> center,
                                        double radius,
                                        const PrivacyParams& params) {
  DPC_RETURN_IF_ERROR(params.ValidateWithPositiveDelta());
  if (weights.size() != points.size()) {
    return Status::InvalidArgument("NoisyAverage: weights size mismatch");
  }
  if (center.size() != points.dim()) {
    return Status::InvalidArgument("NoisyAverage: center dimension mismatch");
  }
  if (!(radius > 0.0) || !std::isfinite(radius)) {
    return Status::InvalidArgument("NoisyAverage: radius must be positive");
  }

  const double eps = params.epsilon;
  const double delta = params.delta;
  const std::size_t d = points.dim();
  const double r2 = radius * radius * (1.0 + 1e-12);

  std::vector<double> sum(d, 0.0);
  std::uint64_t m = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto p = points[i];
    if (SquaredDistance(p, center) > r2) continue;
    const double w = static_cast<double>(weights[i]);
    for (std::size_t j = 0; j < d; ++j) sum[j] += w * (p[j] - center[j]);
    m += weights[i];
  }

  const double m_hat = static_cast<double>(m) + SampleLaplace(rng, 2.0 / eps) -
                       (2.0 / eps) * std::log(2.0 / delta);
  if (m_hat <= 0.0) {
    return Status::NoPrivateAnswer("NoisyAverage: noisy count m_hat <= 0 (bot)");
  }

  const double sigma =
      (8.0 * radius / (eps * m_hat)) * std::sqrt(2.0 * std::log(8.0 / delta));
  NoisyAverageOutput out;
  out.noisy_count = m_hat;
  out.sigma = sigma;
  out.average.resize(d);
  const double inv_m = m > 0 ? 1.0 / static_cast<double>(m) : 0.0;
  for (std::size_t j = 0; j < d; ++j) {
    out.average[j] = center[j] + sum[j] * inv_m + SampleGaussian(rng, sigma);
  }
  return out;
}

double NoisyAverageSigmaBound(double radius, double epsilon, double delta,
                              double m) {
  DPC_CHECK_GT(m, 0.0);
  return (16.0 * radius / (epsilon * m)) * std::sqrt(2.0 * std::log(8.0 / delta));
}

}  // namespace dpcluster
