#include "dpcluster/dp/above_threshold.h"

#include <cmath>

#include "dpcluster/common/check.h"
#include "dpcluster/random/distributions.h"

namespace dpcluster {

Result<AboveThreshold> AboveThreshold::Create(Rng& rng, double epsilon,
                                              double threshold) {
  if (!(epsilon > 0.0) || !std::isfinite(epsilon)) {
    return Status::InvalidArgument("AboveThreshold: epsilon must be positive");
  }
  // Standard split: half the budget perturbs the threshold, half the queries.
  const double noisy_threshold = threshold + SampleLaplace(rng, 2.0 / epsilon);
  return AboveThreshold(epsilon, noisy_threshold);
}

Result<bool> AboveThreshold::Process(Rng& rng, double query_value) {
  if (halted_) {
    return Status::InvalidArgument(
        "AboveThreshold: mechanism already halted after a top answer");
  }
  ++queries_;
  const double noisy_value = query_value + SampleLaplace(rng, 4.0 / epsilon_);
  if (noisy_value > noisy_threshold_) {
    halted_ = true;
    return true;
  }
  return false;
}

double AboveThreshold::AccuracyMargin(double epsilon, std::size_t k, double beta) {
  DPC_CHECK_GT(epsilon, 0.0);
  DPC_CHECK_GT(beta, 0.0);
  DPC_CHECK_GE(k, 1u);
  return (8.0 / epsilon) * std::log(2.0 * static_cast<double>(k) / beta);
}

}  // namespace dpcluster
