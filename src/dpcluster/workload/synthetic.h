// Synthetic workload generators for the benchmark harness (DESIGN.md, E1-E12).
// Each generator returns a ClusterWorkload: a dataset snapped to the grid
// domain X^d, the target count t, and the planted ground-truth ball(s) used by
// the evaluation metrics.
//
// NOTE: new workloads belong in the scenario subsystem (data/scenario.h): a
// registry of named families with per-point ground-truth labels, consumed by
// the accuracy harness. These free functions remain for the original
// reproduction benches (bench_table1, bench_thm32_*).

#ifndef DPCLUSTER_WORKLOAD_SYNTHETIC_H_
#define DPCLUSTER_WORKLOAD_SYNTHETIC_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dpcluster/geo/ball.h"
#include "dpcluster/geo/grid_domain.h"
#include "dpcluster/geo/point_set.h"
#include "dpcluster/random/rng.h"

namespace dpcluster {

/// A generated instance of the 1-cluster problem.
struct ClusterWorkload {
  GridDomain domain{2, 1};
  PointSet points;
  std::size_t t = 0;
  /// The primary planted cluster ball (ground truth before grid snapping).
  Ball planted;
  /// All planted balls (>= 1; used by mixture workloads).
  std::vector<Ball> all_planted;
};

struct PlantedClusterSpec {
  std::size_t n = 1024;
  std::size_t t = 256;
  std::size_t dim = 2;
  std::uint64_t levels = 1u << 12;
  /// Radius of the planted ball (in cube units).
  double cluster_radius = 0.05;
  /// Background points are uniform over the cube.
  double axis_length = 1.0;
};

/// t points uniform in a random ball of the given radius, n - t uniform
/// background points. The standard Table 1 / Theorem 3.2 workload.
ClusterWorkload MakePlantedCluster(Rng& rng, const PlantedClusterSpec& spec);

/// Two equal planted balls of n*share points each (share < 0.5: no majority
/// cluster — the workload that defeats the noisy-mean baseline). t = n*share.
ClusterWorkload MakeTwoClusters(Rng& rng, std::size_t n, std::size_t dim,
                                std::uint64_t levels, double cluster_radius,
                                double share);

/// k spherical Gaussian clusters (stddev sigma, equal weights) plus a
/// `noise_fraction` of uniform background; t = n (1-noise)/k.
ClusterWorkload MakeGaussianMixture(Rng& rng, std::size_t n, std::size_t k,
                                    std::size_t dim, std::uint64_t levels,
                                    double sigma, double noise_fraction);

/// inlier_fraction of the points in one tight ball, the rest scattered far
/// away — the outlier-screening workload of Section 1.1.
ClusterWorkload MakeOutlierContaminated(Rng& rng, std::size_t n,
                                        std::size_t dim, std::uint64_t levels,
                                        double cluster_radius,
                                        double inlier_fraction);

/// Cluster points on a thin spherical shell of the given radius (adversarial
/// for mean-style centers: the centroid is far from every point).
ClusterWorkload MakeShellCluster(Rng& rng, std::size_t n, std::size_t t,
                                 std::size_t dim, std::uint64_t levels,
                                 double shell_radius);

}  // namespace dpcluster

#endif  // DPCLUSTER_WORKLOAD_SYNTHETIC_H_
