#include "dpcluster/workload/synthetic.h"

#include <algorithm>
#include <cmath>

#include "dpcluster/common/check.h"
#include "dpcluster/la/vector_ops.h"
#include "dpcluster/random/distributions.h"

namespace dpcluster {
namespace {

// A random ball center such that the ball lies inside the unit cube.
std::vector<double> RandomInteriorCenter(Rng& rng, std::size_t dim, double radius,
                                         double axis_length) {
  DPC_CHECK_LT(2.0 * radius, axis_length);
  std::vector<double> c(dim);
  for (double& x : c) {
    x = radius + rng.NextDouble() * (axis_length - 2.0 * radius);
  }
  return c;
}

void AddUniformBackground(Rng& rng, PointSet& points, std::size_t count,
                          double axis_length) {
  std::vector<double> p(points.dim());
  for (std::size_t i = 0; i < count; ++i) {
    for (double& x : p) x = rng.NextDouble() * axis_length;
    points.Add(p);
  }
}

void AddBallPoints(Rng& rng, PointSet& points, std::size_t count,
                   const Ball& ball) {
  for (std::size_t i = 0; i < count; ++i) {
    points.Add(SampleBall(rng, ball.center, ball.radius));
  }
}

}  // namespace

ClusterWorkload MakePlantedCluster(Rng& rng, const PlantedClusterSpec& spec) {
  DPC_CHECK_GE(spec.n, spec.t);
  ClusterWorkload w;
  w.domain = GridDomain(spec.levels, spec.dim, spec.axis_length);
  w.t = spec.t;
  w.planted.center = RandomInteriorCenter(rng, spec.dim, spec.cluster_radius,
                                          spec.axis_length);
  w.planted.radius = spec.cluster_radius;
  w.points = PointSet(spec.dim);
  AddBallPoints(rng, w.points, spec.t, w.planted);
  AddUniformBackground(rng, w.points, spec.n - spec.t, spec.axis_length);
  w.domain.SnapAll(w.points);
  w.all_planted = {w.planted};
  return w;
}

ClusterWorkload MakeTwoClusters(Rng& rng, std::size_t n, std::size_t dim,
                                std::uint64_t levels, double cluster_radius,
                                double share) {
  DPC_CHECK_GT(share, 0.0);
  DPC_CHECK_LT(share, 0.5);
  ClusterWorkload w;
  w.domain = GridDomain(levels, dim);
  const auto per = static_cast<std::size_t>(share * static_cast<double>(n));
  w.t = per;
  Ball a;
  Ball b;
  a.radius = b.radius = cluster_radius;
  // Opposite corners so no single ball covers both.
  a.center.assign(dim, 0.25);
  b.center.assign(dim, 0.75);
  w.planted = a;
  w.all_planted = {a, b};
  w.points = PointSet(dim);
  AddBallPoints(rng, w.points, per, a);
  AddBallPoints(rng, w.points, per, b);
  AddUniformBackground(rng, w.points, n - 2 * per, 1.0);
  w.domain.SnapAll(w.points);
  return w;
}

ClusterWorkload MakeGaussianMixture(Rng& rng, std::size_t n, std::size_t k,
                                    std::size_t dim, std::uint64_t levels,
                                    double sigma, double noise_fraction) {
  DPC_CHECK_GE(k, 1u);
  DPC_CHECK_GE(noise_fraction, 0.0);
  DPC_CHECK_LT(noise_fraction, 1.0);
  ClusterWorkload w;
  w.domain = GridDomain(levels, dim);
  const auto noise = static_cast<std::size_t>(noise_fraction * static_cast<double>(n));
  const std::size_t per = (n - noise) / k;
  w.t = per;
  w.points = PointSet(dim);
  std::vector<double> p(dim);
  for (std::size_t c = 0; c < k; ++c) {
    Ball ball;
    // 2-sigma ball as the nominal planted cluster; resample the center until
    // it clears the previous components (well-separated mixture).
    for (int attempt = 0; attempt < 200; ++attempt) {
      ball.center = RandomInteriorCenter(rng, dim, 4.0 * sigma, 1.0);
      bool clear = true;
      for (const Ball& other : w.all_planted) {
        if (Distance(ball.center, other.center) < 8.0 * sigma) {
          clear = false;
          break;
        }
      }
      if (clear) break;
    }
    ball.radius = 2.0 * sigma;
    w.all_planted.push_back(ball);
    for (std::size_t i = 0; i < per; ++i) {
      for (std::size_t j = 0; j < dim; ++j) {
        p[j] = std::clamp(ball.center[j] + SampleGaussian(rng, sigma), 0.0, 1.0);
      }
      w.points.Add(p);
    }
  }
  AddUniformBackground(rng, w.points, n - k * per, 1.0);
  w.planted = w.all_planted.front();
  w.domain.SnapAll(w.points);
  return w;
}

ClusterWorkload MakeOutlierContaminated(Rng& rng, std::size_t n,
                                        std::size_t dim, std::uint64_t levels,
                                        double cluster_radius,
                                        double inlier_fraction) {
  DPC_CHECK_GT(inlier_fraction, 0.0);
  DPC_CHECK_LE(inlier_fraction, 1.0);
  ClusterWorkload w;
  w.domain = GridDomain(levels, dim);
  const auto inliers =
      static_cast<std::size_t>(inlier_fraction * static_cast<double>(n));
  w.t = inliers;
  w.planted.center = RandomInteriorCenter(rng, dim, cluster_radius, 1.0);
  w.planted.radius = cluster_radius;
  w.all_planted = {w.planted};
  w.points = PointSet(dim);
  AddBallPoints(rng, w.points, inliers, w.planted);
  AddUniformBackground(rng, w.points, n - inliers, 1.0);
  w.domain.SnapAll(w.points);
  return w;
}

ClusterWorkload MakeShellCluster(Rng& rng, std::size_t n, std::size_t t,
                                 std::size_t dim, std::uint64_t levels,
                                 double shell_radius) {
  DPC_CHECK_GE(n, t);
  ClusterWorkload w;
  w.domain = GridDomain(levels, dim);
  w.planted.center = RandomInteriorCenter(rng, dim, shell_radius, 1.0);
  w.planted.radius = shell_radius;
  w.all_planted = {w.planted};
  w.t = t;
  w.points = PointSet(dim);
  std::vector<double> p(dim);
  for (std::size_t i = 0; i < t; ++i) {
    const auto dir = SampleUnitSphere(rng, static_cast<int>(dim));
    for (std::size_t j = 0; j < dim; ++j) {
      p[j] = std::clamp(w.planted.center[j] + shell_radius * dir[j], 0.0, 1.0);
    }
    w.points.Add(p);
  }
  AddUniformBackground(rng, w.points, n - t, 1.0);
  w.domain.SnapAll(w.points);
  return w;
}

}  // namespace dpcluster
