#include "dpcluster/workload/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "dpcluster/common/check.h"

namespace dpcluster {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  DPC_CHECK(!headers_.empty());
}

void TextTable::AddRow(std::vector<std::string> cells) {
  DPC_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::ToString() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c];
      if (c + 1 < cells.size()) {
        os << std::string(widths[c] - cells[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void TextTable::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string TextTable::Fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TextTable::FmtInt(long long value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", value);
  return buf;
}

}  // namespace dpcluster
