// Evaluation metrics for solutions of the 1-cluster problem. These compare a
// released ball against the data and the best non-private solution; they are
// evaluation-only (not differentially private) and exist to measure the
// Delta / w quantities the paper's Table 1 and Theorem 3.2 talk about.

#ifndef DPCLUSTER_WORKLOAD_METRICS_H_
#define DPCLUSTER_WORKLOAD_METRICS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "dpcluster/common/status.h"
#include "dpcluster/geo/ball.h"
#include "dpcluster/geo/point_set.h"

namespace dpcluster {

struct EvalMetrics {
  /// Points of the dataset inside the released ball.
  std::size_t captured = 0;
  /// Cluster-size loss Delta = t - captured (negative if over-captured).
  double delta = 0.0;
  /// Smallest radius around the released center that captures t points — the
  /// effective radius the released *center* needs.
  double tight_radius = 0.0;
  /// Lower bound on r_opt (exact for d = 1, half the 2-approx otherwise).
  double r_opt_lower = 0.0;
  /// w measured from the released radius: ball.radius / r_opt_lower.
  double w_reported = 0.0;
  /// w measured from the effective radius: tight_radius / r_opt_lower.
  double w_effective = 0.0;
};

/// Evaluates `found` against dataset s and target count t.
Result<EvalMetrics> Evaluate(const PointSet& s, std::size_t t, const Ball& found);

/// Convenience: mean over `trials` entries of a metric extractor.
double MeanOf(const std::vector<EvalMetrics>& all, double (*extract)(const EvalMetrics&));

}  // namespace dpcluster

#endif  // DPCLUSTER_WORKLOAD_METRICS_H_
