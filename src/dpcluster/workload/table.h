// Fixed-width console table printer used by the benchmark harness to emit
// paper-style result tables (Table 1 rows, theorem-shape sweeps).

#ifndef DPCLUSTER_WORKLOAD_TABLE_H_
#define DPCLUSTER_WORKLOAD_TABLE_H_

#include <string>
#include <vector>

namespace dpcluster {

/// A simple left-aligned text table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  /// Renders with a header underline and two-space column gaps.
  std::string ToString() const;

  /// Prints to stdout.
  void Print() const;

  /// Fixed-precision double formatting ("1.234", "12000").
  static std::string Fmt(double value, int precision = 3);
  static std::string FmtInt(long long value);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dpcluster

#endif  // DPCLUSTER_WORKLOAD_TABLE_H_
