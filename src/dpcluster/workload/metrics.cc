#include "dpcluster/workload/metrics.h"

#include <algorithm>

#include "dpcluster/common/check.h"
#include "dpcluster/geo/minimal_ball.h"

namespace dpcluster {

Result<EvalMetrics> Evaluate(const PointSet& s, std::size_t t, const Ball& found) {
  if (found.center.size() != s.dim()) {
    return Status::InvalidArgument("Evaluate: center dimension mismatch");
  }
  EvalMetrics m;
  m.captured = CountInBall(s, found);
  m.delta = static_cast<double>(t) - static_cast<double>(m.captured);
  m.tight_radius = RadiusCapturing(s, found.center, std::min(t, s.size()));
  DPC_ASSIGN_OR_RETURN(m.r_opt_lower, OptRadiusLowerBound(s, t));
  const double denom = std::max(m.r_opt_lower, 1e-12);
  m.w_reported = found.radius / denom;
  m.w_effective = m.tight_radius / denom;
  return m;
}

double MeanOf(const std::vector<EvalMetrics>& all,
              double (*extract)(const EvalMetrics&)) {
  DPC_CHECK(!all.empty());
  double sum = 0.0;
  for (const auto& m : all) sum += extract(m);
  return sum / static_cast<double>(all.size());
}

}  // namespace dpcluster
