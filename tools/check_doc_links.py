#!/usr/bin/env python3
"""Fail CI on dead relative links in the repo's markdown.

Scans README.md and docs/**/*.md (plus any extra paths given on the command
line) for markdown links and inline `path` references of the form
[text](target). External links (http://, https://, mailto:) are NOT fetched
— this gate needs no network; it only verifies that every relative target
resolves to a file or directory in the working tree, with optional #anchor
suffixes checked against the target's headings.

Exit status: 0 when every link resolves, 1 otherwise (each dead link is
reported with file:line).
"""

import os
import re
import sys

# [text](target) — target captured up to the closing paren; markdown image
# syntax ![alt](target) matches the same way.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$")
EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def anchor_of(heading: str) -> str:
    """GitHub's anchor slug: lowercase, punctuation dropped, spaces to -."""
    slug = heading.strip().lower()
    # Formatting markers only — a literal underscore survives in GitHub's
    # slug (heading "profile_index" anchors as #profile_index).
    slug = re.sub(r"[`*~]", "", slug)
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def headings_in(path: str) -> set:
    anchors = set()
    in_fence = False
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            match = HEADING.match(line)
            if match:
                anchors.add(anchor_of(match.group(1)))
    return anchors


def markdown_files(root: str, extra: list) -> list:
    files = []
    readme = os.path.join(root, "README.md")
    if os.path.isfile(readme):
        files.append(readme)
    docs = os.path.join(root, "docs")
    for dirpath, _, names in os.walk(docs):
        files.extend(
            os.path.join(dirpath, n) for n in names if n.endswith(".md"))
    files.extend(extra)
    return files


def check_file(path: str, root: str) -> list:
    """Returns a list of 'file:line: message' strings for dead links."""
    problems = []
    in_fence = False
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for target in LINK.findall(line):
                if target.startswith(EXTERNAL):
                    continue
                target, _, anchor = target.partition("#")
                if not target:  # same-file #anchor
                    resolved = path
                else:
                    resolved = os.path.normpath(
                        os.path.join(os.path.dirname(path), target))
                if not os.path.exists(resolved):
                    problems.append(
                        f"{os.path.relpath(path, root)}:{lineno}: "
                        f"dead link: {target}")
                    continue
                if anchor and resolved.endswith(".md"):
                    if anchor.lower() not in headings_in(resolved):
                        problems.append(
                            f"{os.path.relpath(path, root)}:{lineno}: "
                            f"missing anchor: {target}#{anchor}")
    return problems


def main() -> int:
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    files = markdown_files(root, sys.argv[1:])
    if not files:
        print("check_doc_links: no markdown files found", file=sys.stderr)
        return 1
    problems = []
    for path in files:
        problems.extend(check_file(path, root))
    for problem in problems:
        print(problem, file=sys.stderr)
    print(f"check_doc_links: {len(files)} files, "
          f"{len(problems)} dead link(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
