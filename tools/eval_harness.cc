// eval_harness — end-to-end accuracy evaluation over the scenario registry.
//
// Sweeps scenario × algorithm × (epsilon, n, d) through the Solver façade
// (data/accuracy.h), prints per-scenario tables of ground-truth-relative
// medians, and writes BENCH_accuracy.json. With --smoke it runs a small
// deterministic grid and enforces coarse regression floors — the CI accuracy
// gate.
//
// Usage:
//   eval_harness                         # default sweep, writes BENCH_accuracy.json
//   eval_harness --smoke                 # CI gate: small grid + floors
//   eval_harness --list                  # scenario families and algorithms
//
// Options:
//   --scenarios a,b,..   scenario families   (default: every registered family)
//   --algorithms a,b,..  algorithm names     (default one_cluster,noisy_mean_baseline,nonprivate)
//   --eps e1,e2,..       epsilon grid        (default 1,2,4)
//   --delta D            per-request delta   (default 1e-6)
//   --n n1,n2,..         dataset sizes       (default 4096)
//   --dim d1,d2,..       dimensions          (default 2)
//   --levels L           grid levels |X|     (default 1024)
//   --trials T           seeds per cell      (default 5)
//   --seed S             root RNG seed       (default 2016)
//   --threads W          kernel threads      (default 1)
//   --out PATH           JSON output path    (default BENCH_accuracy.json)
//   --jl-dim-sweep       run the sweep once per GoodCenter JL projection cap
//                        (Tuning::max_jl_dim) and emit every run in one JSON,
//                        cells labeled "<algorithm>/jl<cap>" — maps the
//                        accuracy/cost frontier of the projection dimension.
//                        Defaults to d=32 data unless --dim is given, and to
//                        an eps grid of 32,64 unless --eps is given (the d=32
//                        pipeline is suppressed at the low-d default budgets).
//   --jl-dims c1,c2,..   caps for --jl-dim-sweep (default 4,6,8,12,16,24)
//   --coreset            collapse each instance to a weighted k-center
//                        summary before serving (Tuning::coreset; changes
//                        released bytes — see docs/TUNING.md)
//   --coreset-target N      summary size ceiling          (default 2048)
//   --coreset-min-points N  below this n run uncompressed (default 65536)
//
// --smoke also runs the coreset accuracy gate: the compressed pipeline on the
// uncompressed n = 4096 planted-cluster reference must keep its radius_ratio
// within a fixed factor of running uncompressed.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "dpcluster/api/registry.h"
#include "dpcluster/data/accuracy.h"
#include "dpcluster/data/registry.h"

namespace {

using namespace dpcluster;

std::vector<std::string> SplitCsv(const std::string& arg) {
  std::vector<std::string> out;
  std::string current;
  for (char c : arg) {
    if (c == ',') {
      if (!current.empty()) out.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) out.push_back(current);
  return out;
}

std::vector<double> SplitCsvDoubles(const std::string& arg) {
  std::vector<double> out;
  for (const std::string& item : SplitCsv(arg)) {
    out.push_back(std::strtod(item.c_str(), nullptr));
  }
  return out;
}

std::vector<std::size_t> SplitCsvSizes(const std::string& arg) {
  std::vector<std::size_t> out;
  for (const std::string& item : SplitCsv(arg)) {
    out.push_back(
        static_cast<std::size_t>(std::strtoull(item.c_str(), nullptr, 10)));
  }
  return out;
}

void Usage(std::FILE* out = stderr) {
  std::fprintf(out,
               "usage: eval_harness [--smoke] [--list] [--scenarios a,b]\n"
               "       [--algorithms a,b] [--eps e1,e2] [--delta D]\n"
               "       [--n n1,n2] [--dim d1,d2] [--levels L] [--trials T]\n"
               "       [--seed S] [--threads W] [--out PATH]\n"
               "       [--jl-dim-sweep] [--jl-dims c1,c2] [--coreset]\n"
               "       [--coreset-target N] [--coreset-min-points N] [--help]\n"
               "see docs/TUNING.md for the performance knobs the sweep can\n"
               "exercise (--threads, --jl-dim-sweep, --coreset)\n");
}

void ListRegistries() {
  std::printf("scenario families:\n");
  for (const std::string& name : ScenarioRegistry::Global().Names()) {
    const auto family = ScenarioRegistry::Global().Lookup(name);
    std::printf("  %-22s %s\n", name.c_str(),
                std::string((*family)->description()).c_str());
  }
  std::printf("\nalgorithms:\n");
  for (const std::string& name : AlgorithmRegistry::Global().Names()) {
    const auto algorithm = AlgorithmRegistry::Global().Lookup(name);
    std::printf("  %-22s %s\n", name.c_str(),
                std::string((*algorithm)->description()).c_str());
  }
}

/// Coarse regression floors of the CI accuracy gate. Thresholds are
/// deliberately loose (3-5x the typical values at the smoke grid's seed) so
/// they trip on real regressions — a generator gone degenerate, a solver
/// stage silently dropping utility — not on noise.
struct Floor {
  const char* scenario;
  const char* algorithm;
  double epsilon;
  double max_radius_ratio;
  double min_coverage;
  std::size_t max_failures;
};

int CheckSmokeFloors(const std::vector<SweepCell>& cells) {
  // The non-private reference must stay near-exact on the easy regime, and
  // the paper pipeline at eps=1 must keep its O(sqrt(log n)) character.
  // Observed medians at the smoke grid (n=2048, d=2, eps=2, seed 2016):
  // nonprivate radius_ratio ~1.0 / coverage ~0.97; one_cluster (refined)
  // radius_ratio ~0.3-3.2 with 0-2 NoPrivateAnswer trials per cell.
  static constexpr Floor kFloors[] = {
      {"planted_cluster", "nonprivate", 2.0, 2.5, 0.60, 0},
      {"outlier_contaminated", "nonprivate", 2.0, 2.5, 0.60, 0},
      {"planted_cluster", "one_cluster", 2.0, 30.0, 0.00, 2},
      {"outlier_contaminated", "one_cluster", 2.0, 30.0, 0.20, 1},
      {"grid_snapped", "one_cluster", 2.0, 30.0, 0.20, 2},
  };
  int violations = 0;
  for (const Floor& floor : kFloors) {
    const SweepCell* cell =
        FindCell(cells, floor.scenario, floor.algorithm, floor.epsilon);
    if (cell == nullptr) {
      std::fprintf(stderr, "FLOOR: missing cell %s/%s eps=%g\n",
                   floor.scenario, floor.algorithm, floor.epsilon);
      ++violations;
      continue;
    }
    if (cell->failures > floor.max_failures) {
      std::fprintf(stderr, "FLOOR: %s/%s failures %zu > %zu (%s)\n",
                   floor.scenario, floor.algorithm, cell->failures,
                   floor.max_failures, cell->note.c_str());
      ++violations;
    }
    if (!(cell->median.radius_ratio <= floor.max_radius_ratio)) {
      std::fprintf(stderr, "FLOOR: %s/%s radius_ratio %.3f > %.3f\n",
                   floor.scenario, floor.algorithm, cell->median.radius_ratio,
                   floor.max_radius_ratio);
      ++violations;
    }
    if (!(cell->median.coverage >= floor.min_coverage)) {
      std::fprintf(stderr, "FLOOR: %s/%s coverage %.3f < %.3f\n",
                   floor.scenario, floor.algorithm, cell->median.coverage,
                   floor.min_coverage);
      ++violations;
    }
  }
  // Structural gate: the sweep must cover every registered family with at
  // least 3 algorithms (the acceptance shape of BENCH_accuracy.json).
  for (const std::string& scenario : ScenarioRegistry::Global().Names()) {
    std::size_t algorithms = 0;
    std::string last;
    for (const SweepCell& cell : cells) {
      if (cell.scenario == scenario && cell.algorithm != last) {
        ++algorithms;
        last = cell.algorithm;
      }
    }
    if (algorithms < 3) {
      std::fprintf(stderr, "FLOOR: scenario %s covered by %zu < 3 algorithms\n",
                   scenario.c_str(), algorithms);
      ++violations;
    }
  }
  return violations;
}

/// The coreset accuracy gate: serve the planted-cluster family at the
/// uncompressed reference size (n = 4096, eps = 2) twice — once raw, once
/// through a forced weighted k-center summary — and require the compressed
/// radius_ratio to stay within a fixed factor of the reference. Both sweeps
/// share seeds, so the instances (and the reference radii) are identical and
/// only the compression differs.
int CheckCoresetFloor(std::uint64_t seed, std::size_t num_threads) {
  constexpr double kMaxFactor = 10.0;
  SweepConfig reference;
  reference.scenarios = {"planted_cluster"};
  reference.algorithms = {"one_cluster"};
  reference.epsilons = {2.0};
  reference.ns = {4096};
  reference.dims = {2};
  reference.trials = 3;
  reference.seed = seed;
  reference.num_threads = num_threads;
  SweepConfig compressed = reference;
  compressed.coreset = true;
  compressed.coreset_min_points = 1;  // force compression at n = 4096
  compressed.coreset_target_size = 512;

  const auto ref_cells = RunAccuracySweep(reference);
  const auto cs_cells = RunAccuracySweep(compressed);
  if (!ref_cells.ok() || !cs_cells.ok()) {
    std::fprintf(stderr, "FLOOR: coreset gate sweep failed: %s\n",
                 (!ref_cells.ok() ? ref_cells.status() : cs_cells.status())
                     .ToString()
                     .c_str());
    return 1;
  }
  const SweepCell* ref =
      FindCell(*ref_cells, "planted_cluster", "one_cluster", 2.0);
  const SweepCell* cs =
      FindCell(*cs_cells, "planted_cluster", "one_cluster", 2.0);
  if (ref == nullptr || cs == nullptr) {
    std::fprintf(stderr, "FLOOR: coreset gate cell missing\n");
    return 1;
  }
  int violations = 0;
  if (cs->failures > ref->failures + 1) {
    std::fprintf(stderr, "FLOOR: coreset failures %zu > reference %zu + 1 (%s)\n",
                 cs->failures, ref->failures, cs->note.c_str());
    ++violations;
  }
  // Floor the reference at 1.0 so a lucky near-exact raw run cannot turn the
  // factor gate into a noise amplifier.
  const double bound = kMaxFactor * std::max(ref->median.radius_ratio, 1.0);
  if (!(cs->median.radius_ratio <= bound)) {
    std::fprintf(stderr,
                 "FLOOR: coreset radius_ratio %.3f > %.1fx reference (%.3f)\n",
                 cs->median.radius_ratio, kMaxFactor,
                 ref->median.radius_ratio);
    ++violations;
  }
  if (violations == 0) {
    std::printf("coreset gate: radius_ratio %.3f (reference %.3f, bound %.3f)\n",
                cs->median.radius_ratio, ref->median.radius_ratio, bound);
  }
  return violations;
}

}  // namespace

int main(int argc, char** argv) {
  SweepConfig config;
  std::string out = "BENCH_accuracy.json";
  bool smoke = false;
  bool jl_dim_sweep = false;
  std::vector<std::size_t> jl_dims = {4, 6, 8, 12, 16, 24};
  bool grid_flags_set = false;  // --smoke owns the grid; reject conflicts
  bool dim_flag_set = false;
  bool eps_flag_set = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--help" || arg == "-h") {
      Usage(stdout);
      return 0;
    } else if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--list") {
      ListRegistries();
      return 0;
    } else if (arg == "--scenarios" && (v = next())) {
      config.scenarios = SplitCsv(v);
      grid_flags_set = true;
    } else if (arg == "--algorithms" && (v = next())) {
      config.algorithms = SplitCsv(v);
    } else if (arg == "--eps" && (v = next())) {
      config.epsilons = SplitCsvDoubles(v);
      grid_flags_set = true;
      eps_flag_set = true;
    } else if (arg == "--delta" && (v = next())) {
      config.delta = std::strtod(v, nullptr);
    } else if (arg == "--n" && (v = next())) {
      config.ns = SplitCsvSizes(v);
      grid_flags_set = true;
    } else if (arg == "--dim" && (v = next())) {
      config.dims = SplitCsvSizes(v);
      grid_flags_set = true;
      dim_flag_set = true;
    } else if (arg == "--jl-dim-sweep") {
      jl_dim_sweep = true;
    } else if (arg == "--jl-dims" && (v = next())) {
      jl_dims = SplitCsvSizes(v);
    } else if (arg == "--coreset") {
      config.coreset = true;
    } else if (arg == "--coreset-target" && (v = next())) {
      config.coreset_target_size =
          static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--coreset-min-points" && (v = next())) {
      config.coreset_min_points =
          static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--levels" && (v = next())) {
      config.levels = std::strtoull(v, nullptr, 10);
    } else if (arg == "--trials" && (v = next())) {
      config.trials =
          static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
      grid_flags_set = true;
    } else if (arg == "--seed" && (v = next())) {
      config.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--threads" && (v = next())) {
      config.num_threads =
          static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--out" && (v = next())) {
      out = v;
    } else {
      Usage();
      return 2;
    }
  }

  if (smoke) {
    if (grid_flags_set) {
      std::fprintf(stderr,
                   "--smoke fixes the grid (scenarios/eps/n/dim/trials); "
                   "drop those flags or run without --smoke\n");
      Usage();
      return 2;
    }
    // Small deterministic grid: every registered family × the default 3
    // algorithms at eps = 2 (the smallest budget where the paper pipeline
    // clears its noise floor at n = 2048), sized for CI minutes.
    config.scenarios.clear();
    config.epsilons = {2.0};
    config.ns = {2048};
    config.dims = {2};
    config.trials = 3;
  }

  if (jl_dim_sweep) {
    if (smoke) {
      std::fprintf(stderr, "--jl-dim-sweep and --smoke are exclusive\n");
      return 2;
    }
    if (jl_dims.empty()) {
      std::fprintf(stderr, "--jl-dims: empty cap list\n");
      return 2;
    }
    // High-dimensional data by default — at d = 2 the projection cap never
    // binds and every run would measure the same thing. The default eps grid
    // moves up with it: at d = 32 the pipeline's stable histograms are
    // suppressed up to eps ~ 16 and every cell would report only failures.
    if (!dim_flag_set) config.dims = {32};
    if (!eps_flag_set) config.epsilons = {32.0, 64.0};
    std::vector<SweepCell> combined;
    for (std::size_t cap : jl_dims) {
      config.max_jl_dim = cap;
      std::printf("\n=== max_jl_dim = %zu ===\n", cap);
      const auto cells = RunAccuracySweep(config);
      if (!cells.ok()) {
        std::fprintf(stderr, "sweep failed at max_jl_dim=%zu: %s\n", cap,
                     cells.status().ToString().c_str());
        return 1;
      }
      PrintSweepTables(*cells);
      for (SweepCell cell : *cells) {
        cell.algorithm += "/jl" + std::to_string(cap);
        combined.push_back(std::move(cell));
      }
    }
    if (!WriteAccuracyJson(out, config, combined)) return 1;
    return 0;
  }

  const auto cells = RunAccuracySweep(config);
  if (!cells.ok()) {
    std::fprintf(stderr, "sweep failed: %s\n",
                 cells.status().ToString().c_str());
    return 1;
  }
  PrintSweepTables(*cells);
  if (!WriteAccuracyJson(out, config, *cells)) return 1;

  if (smoke) {
    int violations = CheckSmokeFloors(*cells);
    std::printf("\ncoreset accuracy gate (n=4096 planted cluster)...\n");
    violations += CheckCoresetFloor(config.seed, config.num_threads);
    if (violations > 0) {
      std::fprintf(stderr, "\n--smoke: %d floor violation(s)\n", violations);
      return 1;
    }
    std::printf("\n--smoke: all accuracy floors hold\n");
  }
  return 0;
}
