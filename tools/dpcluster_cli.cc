// dpcluster_cli — run the private 1-cluster pipeline on a CSV of points.
//
// Usage:
//   dpcluster_cli --input points.csv --t 500 [options]
//   dpcluster_cli --demo            # run on a built-in synthetic instance
//
// Input: one point per line, comma-separated coordinates, all in [0, axis].
// Modes:
//   cluster  (default)  release a (center, radius) ball holding ~t points
//   outlier             release a ~fraction-mass inlier ball (t = fraction*n)
//   interior            release an interior point (1D data only)
//
// Options:
//   --epsilon E     privacy epsilon            (default 2.0)
//   --delta D       privacy delta              (default 1e-9)
//   --levels L      grid levels per axis |X|   (default 65536)
//   --axis A        axis length of the cube    (default 1.0)
//   --beta B        utility failure prob       (default 0.1)
//   --seed S        RNG seed                   (default 2016)
//   --mode M        cluster | outlier | interior
//   --refine        also release a refined (tight) radius (extra 0.5 epsilon)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "dpcluster/dpcluster.h"

namespace {

using namespace dpcluster;

struct CliOptions {
  std::string input;
  bool demo = false;
  std::size_t t = 0;
  double epsilon = 2.0;
  double delta = 1e-9;
  std::uint64_t levels = 1u << 16;
  double axis = 1.0;
  double beta = 0.1;
  std::uint64_t seed = 2016;
  std::string mode = "cluster";
  bool refine = false;
};

void Usage() {
  std::fprintf(stderr,
               "usage: dpcluster_cli (--input points.csv --t T | --demo)\n"
               "       [--mode cluster|outlier|interior] [--epsilon E]\n"
               "       [--delta D] [--levels L] [--axis A] [--beta B]\n"
               "       [--seed S] [--refine]\n");
}

bool ParseArgs(int argc, char** argv, CliOptions& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (arg == "--demo") {
      opt.demo = true;
    } else if (arg == "--refine") {
      opt.refine = true;
    } else if (arg == "--input") {
      const char* v = next();
      if (!v) return false;
      opt.input = v;
    } else if (arg == "--mode") {
      const char* v = next();
      if (!v) return false;
      opt.mode = v;
    } else if (arg == "--t") {
      const char* v = next();
      if (!v) return false;
      opt.t = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--epsilon") {
      const char* v = next();
      if (!v) return false;
      opt.epsilon = std::strtod(v, nullptr);
    } else if (arg == "--delta") {
      const char* v = next();
      if (!v) return false;
      opt.delta = std::strtod(v, nullptr);
    } else if (arg == "--levels") {
      const char* v = next();
      if (!v) return false;
      opt.levels = std::strtoull(v, nullptr, 10);
    } else if (arg == "--axis") {
      const char* v = next();
      if (!v) return false;
      opt.axis = std::strtod(v, nullptr);
    } else if (arg == "--beta") {
      const char* v = next();
      if (!v) return false;
      opt.beta = std::strtod(v, nullptr);
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return false;
      opt.seed = std::strtoull(v, nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return opt.demo || (!opt.input.empty() && (opt.t > 0 || opt.mode != "cluster"));
}

Result<PointSet> LoadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::InvalidArgument("cannot open " + path);
  std::string line;
  std::size_t dim = 0;
  std::vector<double> flat;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::stringstream row(line);
    std::string cell;
    std::size_t cols = 0;
    while (std::getline(row, cell, ',')) {
      flat.push_back(std::strtod(cell.c_str(), nullptr));
      ++cols;
    }
    if (dim == 0) {
      dim = cols;
    } else if (cols != dim) {
      return Status::InvalidArgument("ragged CSV at line " +
                                     std::to_string(line_no));
    }
  }
  if (dim == 0) return Status::InvalidArgument("empty input " + path);
  return PointSet(dim, std::move(flat));
}

int RunCluster(Rng& rng, PointSet points, const CliOptions& opt) {
  const GridDomain domain(opt.levels, points.dim(), opt.axis);
  domain.SnapAll(points);
  OneClusterOptions options;
  options.params = {opt.epsilon, opt.delta};
  options.beta = opt.beta;
  options.radius.subsample_large_inputs = true;

  std::printf("# 1-cluster: n=%zu d=%zu t=%zu eps=%g delta=%g |X|=%llu\n",
              points.size(), points.dim(), opt.t, opt.epsilon, opt.delta,
              static_cast<unsigned long long>(opt.levels));
  std::printf("# recommended_min_t=%.0f\n",
              RecommendedMinT(points.size(), domain, options));
  auto result = OneCluster(rng, points, opt.t, domain, options);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("center=");
  for (std::size_t j = 0; j < result->ball.center.size(); ++j) {
    std::printf("%s%.6f", j ? "," : "", result->ball.center[j]);
  }
  std::printf("\nguarantee_radius=%.6f\n", result->ball.radius);
  std::printf("radius_stage_r=%.6f\n", result->radius_stage.radius);
  if (opt.refine) {
    RadiusRefineOptions refine{0.5, opt.beta};
    auto tight = RefineRadius(rng, points, result->ball.center, opt.t, domain,
                              refine);
    if (tight.ok()) std::printf("refined_radius=%.6f\n", *tight);
  }
  return 0;
}

int RunOutlier(Rng& rng, PointSet points, const CliOptions& opt) {
  const GridDomain domain(opt.levels, points.dim(), opt.axis);
  domain.SnapAll(points);
  OutlierScreenOptions options;
  options.inlier_fraction =
      opt.t > 0 ? static_cast<double>(opt.t) / static_cast<double>(points.size())
                : 0.9;
  options.one_cluster.params = {opt.epsilon, opt.delta};
  options.one_cluster.beta = opt.beta;
  options.one_cluster.radius.subsample_large_inputs = true;
  auto screen = BuildOutlierScreen(rng, points, domain, options);
  if (!screen.ok()) {
    std::fprintf(stderr, "error: %s\n", screen.status().ToString().c_str());
    return 1;
  }
  std::printf("inlier_center=");
  for (std::size_t j = 0; j < screen->ball.center.size(); ++j) {
    std::printf("%s%.6f", j ? "," : "", screen->ball.center[j]);
  }
  std::printf("\ninlier_radius=%.6f\n", screen->ball.radius);
  return 0;
}

int RunInterior(Rng& rng, const PointSet& points, const CliOptions& opt) {
  if (points.dim() != 1) {
    std::fprintf(stderr, "error: interior mode needs 1D input\n");
    return 1;
  }
  const GridDomain domain(opt.levels, 1, opt.axis);
  std::vector<double> data(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    data[i] = domain.Snap(points[i][0]);
  }
  InteriorPointOptions options;
  options.params = {opt.epsilon, opt.delta};
  options.beta = opt.beta;
  auto result = InteriorPoint(rng, data, domain, options);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("interior_point=%.6f\n", result->point);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opt;
  if (!ParseArgs(argc, argv, opt)) {
    Usage();
    return 2;
  }
  Rng rng(opt.seed);

  PointSet points(1);
  if (opt.demo) {
    PlantedClusterSpec spec;
    spec.n = 4096;
    spec.t = 1500;
    spec.dim = 2;
    spec.levels = opt.levels;
    spec.cluster_radius = 0.02;
    const ClusterWorkload w = MakePlantedCluster(rng, spec);
    points = w.points;
    if (opt.t == 0) opt.t = spec.t;
    std::printf("# demo: planted cluster at (%.4f, %.4f), radius %.3f\n",
                w.planted.center[0], w.planted.center[1], spec.cluster_radius);
  } else {
    auto loaded = LoadCsv(opt.input);
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
      return 1;
    }
    points = std::move(*loaded);
  }

  if (opt.mode == "cluster") return RunCluster(rng, std::move(points), opt);
  if (opt.mode == "outlier") return RunOutlier(rng, std::move(points), opt);
  if (opt.mode == "interior") return RunInterior(rng, points, opt);
  std::fprintf(stderr, "unknown mode: %s\n", opt.mode.c_str());
  return 2;
}
