// dpcluster_cli — run any registered dpcluster algorithm on a CSV of points
// through the Solver façade.
//
// Usage:
//   dpcluster_cli --input points.csv --t 500 [options]
//   dpcluster_cli --demo                     # built-in synthetic instance
//   dpcluster_cli --list                     # list registered algorithms
//
// Input: one point per line, comma-separated coordinates, all in [0, axis].
//
// Options:
//   --algorithm A   registry name (see --list)  (default one_cluster)
//   --mode M        legacy alias: cluster | outlier | interior
//   --t T           target cluster size
//   --k K           number of balls (k_cluster) (default 2)
//   --fraction F    inlier fraction (outlier_screen)   (default 0.9)
//   --epsilon E     privacy epsilon            (default 2.0)
//   --delta D       privacy delta              (default 1e-9)
//   --levels L      grid levels per axis |X|   (default 65536)
//   --axis A        axis length of the cube    (default 1.0)
//   --beta B        utility failure prob       (default 0.1)
//   --seed S        RNG seed                   (default 2016)
//   --profile-index I  GoodRadius L(r,S) event generator: auto | grid | exact
//                   (bit-identical outputs; grid is ~O(n t) at low dimension)
//   --index-geometry G  spatial-index cell space: auto | exact | projected
//                   (auto stays exact; projected opts into the JL-projected
//                   grid — bit-identical outputs, only the runtime moves)
//   --shared-index  prebuild one geo/IndexedDataset over the input and lend
//                   it to the algorithm (the Solver::RunAll index-reuse hook;
//                   bit-identical outputs, k_cluster amortizes k index
//                   builds to one)
//   --subsample-cap-factor F  multiplier on the subsample cap when the grid
//                   profile path is active (>= 1; default 10)
//   --coreset       collapse large inputs to a weighted k-center summary and
//                   run the whole pipeline on it (changes released bytes;
//                   accuracy gated by the eval harness radius_ratio check)
//   --coreset-target N      summary size ceiling        (default 2048)
//   --coreset-min-points N  below this n run uncompressed (default 65536)
//   --refine        spend part of the budget tightening the released radius
//   --ledger        print the per-phase privacy ledger
//   --stream-ticks N  replay mode: generate the "streaming" scenario family
//                   over N arrival/expiry ticks and drive it through the
//                   incremental index path (Insert/Remove + t-NN row
//                   patching + one GoodRadius per tick), then check the
//                   final active set is byte-identical to indexing the
//                   instance directly. --seed/--levels/--axis/--epsilon/
//                   --delta/--beta/--t apply; exit 1 on a replay mismatch.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "dpcluster/dpcluster.h"

namespace {

using namespace dpcluster;

struct CliOptions {
  std::string input;
  bool demo = false;
  bool list = false;
  bool help = false;
  bool ledger = false;
  std::string algorithm;
  std::string mode;
  std::size_t t = 0;
  std::size_t k = 2;
  double fraction = 0.9;
  double epsilon = 2.0;
  double delta = 1e-9;
  std::uint64_t levels = 1u << 16;
  double axis = 1.0;
  double beta = 0.1;
  std::uint64_t seed = 2016;
  bool refine = false;
  std::string profile_index = "auto";
  std::string index_geometry = "auto";
  bool shared_index = false;
  double subsample_cap_factor = 10.0;
  bool coreset = false;
  std::size_t coreset_target = 2048;
  std::size_t coreset_min_points = 65536;
  std::size_t stream_ticks = 0;
};

void Usage(std::FILE* out) {
  std::fprintf(out,
               "usage: dpcluster_cli (--input points.csv --t T | --demo | --list)\n"
               "       [--algorithm NAME] [--mode cluster|outlier|interior]\n"
               "       [--t T] [--k K] [--fraction F] [--epsilon E] [--delta D]\n"
               "       [--levels L] [--axis A] [--beta B] [--seed S]\n"
               "       [--profile-index auto|grid|exact] [--shared-index]\n"
               "       [--index-geometry auto|exact|projected]\n"
               "       [--subsample-cap-factor F] [--refine] [--ledger]\n"
               "       [--coreset] [--coreset-target N] [--coreset-min-points N]\n"
               "       [--stream-ticks N] [--help]\n"
               "--stream-ticks N replays the \"streaming\" scenario family\n"
               "through the incremental index (Insert/Remove + t-NN row\n"
               "patches + one GoodRadius per tick) and checks the final\n"
               "active set against indexing the instance directly;\n"
               "see docs/TUNING.md for what each performance knob does;\n"
               "docs/OPERATIONS.md covers the resident daemon (dpcluster_serve)\n");
}

/// Maps the legacy --mode values onto registry names.
std::string AlgorithmFromMode(const std::string& mode) {
  if (mode == "cluster") return "one_cluster";
  if (mode == "outlier") return "outlier_screen";
  if (mode == "interior") return "interior_point";
  return mode;  // Allow --mode to name an algorithm directly.
}

bool ParseArgs(int argc, char** argv, CliOptions& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (arg == "--help" || arg == "-h") {
      opt.help = true;
    } else if (arg == "--demo") {
      opt.demo = true;
    } else if (arg == "--list" || arg == "--list-algorithms") {
      opt.list = true;
    } else if (arg == "--refine") {
      opt.refine = true;
    } else if (arg == "--shared-index") {
      opt.shared_index = true;
    } else if (arg == "--subsample-cap-factor") {
      const char* v = next();
      if (!v) return false;
      opt.subsample_cap_factor = std::strtod(v, nullptr);
    } else if (arg == "--coreset") {
      opt.coreset = true;
    } else if (arg == "--coreset-target") {
      const char* v = next();
      if (!v) return false;
      opt.coreset_target =
          static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--coreset-min-points") {
      const char* v = next();
      if (!v) return false;
      opt.coreset_min_points =
          static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--stream-ticks") {
      const char* v = next();
      if (!v) return false;
      opt.stream_ticks =
          static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--ledger") {
      opt.ledger = true;
    } else if (arg == "--input") {
      const char* v = next();
      if (!v) return false;
      opt.input = v;
    } else if (arg == "--algorithm") {
      const char* v = next();
      if (!v) return false;
      opt.algorithm = v;
    } else if (arg == "--mode") {
      const char* v = next();
      if (!v) return false;
      opt.mode = v;
    } else if (arg == "--profile-index") {
      const char* v = next();
      if (!v) return false;
      opt.profile_index = v;
    } else if (arg == "--index-geometry") {
      const char* v = next();
      if (!v) return false;
      opt.index_geometry = v;
    } else if (arg == "--t") {
      const char* v = next();
      if (!v) return false;
      opt.t = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--k") {
      const char* v = next();
      if (!v) return false;
      opt.k = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--fraction") {
      const char* v = next();
      if (!v) return false;
      opt.fraction = std::strtod(v, nullptr);
    } else if (arg == "--epsilon") {
      const char* v = next();
      if (!v) return false;
      opt.epsilon = std::strtod(v, nullptr);
    } else if (arg == "--delta") {
      const char* v = next();
      if (!v) return false;
      opt.delta = std::strtod(v, nullptr);
    } else if (arg == "--levels") {
      const char* v = next();
      if (!v) return false;
      opt.levels = std::strtoull(v, nullptr, 10);
    } else if (arg == "--axis") {
      const char* v = next();
      if (!v) return false;
      opt.axis = std::strtod(v, nullptr);
    } else if (arg == "--beta") {
      const char* v = next();
      if (!v) return false;
      opt.beta = std::strtod(v, nullptr);
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return false;
      opt.seed = std::strtoull(v, nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  if (opt.algorithm.empty()) {
    opt.algorithm =
        opt.mode.empty() ? "one_cluster" : AlgorithmFromMode(opt.mode);
  }
  return opt.help || opt.list || opt.demo || opt.stream_ticks > 0 ||
         !opt.input.empty();
}

/// The --stream-ticks replay: drives the "streaming" scenario's recorded
/// arrival/expiry schedule through the incremental index path the service's
/// stream endpoints use — Insert/Remove on a live IndexedDataset, t-NN rows
/// patched per tick via KnnCappedCounts::ApplyBatch, one GoodRadius query
/// per tick served from the patched rows — then verifies the scenario
/// contract (data/scenario.h): the final active set is byte-identical to
/// indexing the instance directly.
int RunStreamReplay(const CliOptions& opt) {
  ScenarioSpec spec;
  spec.scenario = "streaming";
  spec.ticks = opt.stream_ticks;
  spec.levels = opt.levels;
  spec.axis_length = opt.axis;
  Rng gen(opt.seed);
  auto instance = GenerateScenario(gen, spec);
  if (!instance.ok()) {
    std::fprintf(stderr, "error: %s\n", instance.status().ToString().c_str());
    return 1;
  }
  const StreamSchedule& stream = instance->stream;
  const std::size_t total = stream.arrivals.size();
  const std::size_t t = opt.t > 0 ? opt.t : instance->t;
  std::printf(
      "# streaming replay: %zu arrivals over %zu ticks, final n=%zu t=%zu "
      "eps=%g/tick\n",
      total, stream.ticks, instance->points.size(), t, opt.epsilon);

  auto live_or =
      IndexedDataset::Create(PointSet(instance->points.dim()),
                             instance->domain);
  if (!live_or.ok()) {
    std::fprintf(stderr, "error: %s\n", live_or.status().ToString().c_str());
    return 1;
  }
  IndexedDataset live = std::move(*live_or);
  std::optional<KnnCappedCounts> rows;

  std::size_t next_arrival = 0;  // Arrivals are recorded in tick order.
  for (std::size_t tick = 0; tick < stream.ticks; ++tick) {
    std::vector<std::uint32_t> added;
    while (next_arrival < total && stream.arrival_tick[next_arrival] == tick) {
      const auto id = live.Insert(stream.arrivals[next_arrival]);
      if (!id.ok() || *id != next_arrival) {
        std::fprintf(stderr, "error: insert at arrival %zu: %s\n",
                     next_arrival, id.status().ToString().c_str());
        return 1;
      }
      added.push_back(static_cast<std::uint32_t>(next_arrival));
      ++next_arrival;
    }
    std::vector<std::uint32_t> removed;
    for (std::size_t i = 0; i < next_arrival; ++i) {
      if (stream.expiry_tick[i] == tick) {
        removed.push_back(static_cast<std::uint32_t>(i));
      }
    }
    live.Remove(removed);

    std::size_t patched = 0;
    if (!rows.has_value()) {
      auto built = KnnCappedCounts::Build(live, t, total);
      if (!built.ok()) {
        std::fprintf(stderr, "error: t-NN rows at tick %zu: %s\n", tick,
                     built.status().ToString().c_str());
        return 1;
      }
      rows = std::move(*built);
    } else {
      if (Status patch = rows->ApplyBatch(live, added, removed);
          !patch.ok()) {
        std::fprintf(stderr, "error: ApplyBatch at tick %zu: %s\n", tick,
                     patch.ToString().c_str());
        return 1;
      }
      patched = rows->last_invalidated();
    }

    GoodRadiusOptions radius_opts;
    radius_opts.engine = GoodRadiusOptions::Engine::kSparseVector;
    radius_opts.params = {opt.epsilon, opt.delta};
    radius_opts.beta = opt.beta;
    radius_opts.max_profile_points = total;
    radius_opts.shared_counts = &*rows;
    Rng query_rng(opt.seed + 101 * (tick + 1));
    const auto radius = GoodRadius(query_rng, live, t, radius_opts);
    std::printf("tick %2zu: +%zu -%zu live=%zu patched_rows=%zu radius=",
                tick, added.size(), removed.size(), live.active_size(),
                patched);
    if (radius.ok()) {
      std::printf("%.6f\n", radius->radius);
    } else {
      std::printf("- (%s)\n",
                  std::string(radius.status().message()).c_str());
    }
  }

  const PointSet final_view = live.ActiveView();
  const auto want = instance->points.Data();
  const auto got = final_view.Data();
  const bool match = final_view.size() == instance->points.size() &&
                     final_view.dim() == instance->points.dim() &&
                     std::equal(got.begin(), got.end(), want.begin());
  std::printf("replay check: incremental active set vs direct index: %s\n",
              match ? "byte-identical (OK)" : "MISMATCH");
  return match ? 0 : 1;
}

Result<PointSet> LoadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::InvalidArgument("cannot open " + path);
  std::string line;
  std::size_t dim = 0;
  std::vector<double> flat;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::stringstream row(line);
    std::string cell;
    std::size_t cols = 0;
    while (std::getline(row, cell, ',')) {
      flat.push_back(std::strtod(cell.c_str(), nullptr));
      ++cols;
    }
    if (dim == 0) {
      dim = cols;
    } else if (cols != dim) {
      return Status::InvalidArgument("ragged CSV at line " +
                                     std::to_string(line_no));
    }
  }
  if (dim == 0) return Status::InvalidArgument("empty input " + path);
  return PointSet(dim, std::move(flat));
}

int ListAlgorithms() {
  const AlgorithmRegistry& registry = AlgorithmRegistry::Global();
  std::printf("registered algorithms (%zu):\n", registry.size());
  for (const std::string& name : registry.Names()) {
    const auto algorithm = registry.Lookup(name);
    if (!algorithm.ok()) continue;
    std::printf("  %-22s [%s]\n      %s\n", name.c_str(),
                ProblemKindName((*algorithm)->kind()),
                std::string((*algorithm)->description()).c_str());
  }
  return 0;
}

void PrintVector(const char* label, std::span<const double> v) {
  std::printf("%s", label);
  for (std::size_t j = 0; j < v.size(); ++j) {
    std::printf("%s%.6f", j ? "," : "", v[j]);
  }
  std::printf("\n");
}

int main_impl(int argc, char** argv) {
  CliOptions opt;
  if (!ParseArgs(argc, argv, opt)) {
    Usage(stderr);
    return 2;
  }
  if (opt.help) {
    Usage(stdout);
    return 0;
  }
  if (opt.list) return ListAlgorithms();
  if (opt.stream_ticks > 0) return RunStreamReplay(opt);

  Request request;
  request.algorithm = opt.algorithm;
  request.budget = {opt.epsilon, opt.delta};
  request.beta = opt.beta;
  request.k = opt.k;
  request.inlier_fraction = opt.fraction;
  request.tuning.subsample_large_inputs = true;
  const auto profile_index = ProfileIndexFromName(opt.profile_index);
  if (!profile_index.ok()) {
    std::fprintf(stderr, "%s\n", profile_index.status().ToString().c_str());
    return 2;
  }
  request.tuning.profile_index = *profile_index;
  const auto index_geometry = IndexGeometryFromName(opt.index_geometry);
  if (!index_geometry.ok()) {
    std::fprintf(stderr, "%s\n", index_geometry.status().ToString().c_str());
    return 2;
  }
  request.tuning.index_geometry = *index_geometry;
  request.tuning.subsample_grid_cap_factor = opt.subsample_cap_factor;
  request.tuning.coreset = opt.coreset;
  request.tuning.coreset_target_size = opt.coreset_target;
  request.tuning.coreset_min_points = opt.coreset_min_points;
  // k_cluster and outlier_screen refine by default (tuning.refine_fraction);
  // --refine opts the plain one_cluster release in as well.
  request.tuning.refine_one_cluster = opt.refine;

  if (opt.demo) {
    Rng demo_rng(opt.seed ^ 0x9E3779B97F4A7C15ULL);
    PlantedClusterSpec spec;
    spec.n = 4096;
    spec.t = 1500;
    spec.dim = opt.algorithm == "interior_point" ||
                       opt.algorithm == "threshold_release_1d"
                   ? 1
                   : 2;
    spec.levels = opt.levels;
    spec.cluster_radius = 0.02;
    const ClusterWorkload w = MakePlantedCluster(demo_rng, spec);
    request.data = w.points;
    request.domain = w.domain;
    request.t = opt.t > 0 ? opt.t : spec.t;
    std::printf("# demo: planted cluster at (");
    for (std::size_t j = 0; j < w.planted.center.size(); ++j) {
      std::printf("%s%.4f", j ? ", " : "", w.planted.center[j]);
    }
    std::printf("), radius %.3f\n", spec.cluster_radius);
  } else {
    auto loaded = LoadCsv(opt.input);
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
      return 1;
    }
    request.data = std::move(*loaded);
    request.domain = GridDomain(opt.levels, request.data.dim(), opt.axis);
    request.domain->SnapAll(request.data);
    request.t = opt.t;
  }

  // Legacy outlier semantics: an explicit --t names the inlier count, i.e.
  // inlier_fraction = t/n (no --t keeps the 0.9 default).
  if (request.algorithm == "outlier_screen" && opt.t > 0) {
    request.inlier_fraction =
        std::min(1.0, static_cast<double>(opt.t) /
                          static_cast<double>(request.data.size()));
  }

  std::printf("# %s: n=%zu d=%zu t=%zu eps=%g delta=%g |X|=%llu\n",
              request.algorithm.c_str(), request.data.size(),
              request.data.dim(), request.t, opt.epsilon, opt.delta,
              static_cast<unsigned long long>(opt.levels));

  if (opt.shared_index) {
    auto index = BuildSharedIndex(request);
    if (!index.ok()) {
      std::fprintf(stderr, "error: %s\n", index.status().ToString().c_str());
      return 1;
    }
    request.shared_index = std::move(*index);
    std::printf("# shared geometry index attached (n=%zu)\n",
                request.shared_index->size());
  }

  SolverOptions solver_options;
  solver_options.seed = opt.seed;
  Solver solver(solver_options);
  const auto response = solver.Run(request);
  if (!response.ok()) {
    std::fprintf(stderr, "error: %s\n", response.status().ToString().c_str());
    return 1;
  }

  if (!std::isnan(response->scalar)) {
    std::printf("scalar=%.6f\n", response->scalar);
  } else if (response->balls.size() > 1) {
    for (std::size_t i = 0; i < response->balls.size(); ++i) {
      std::printf("ball[%zu]: ", i);
      PrintVector("center=", response->balls[i].center);
      std::printf("         radius=%.6f\n", response->balls[i].radius);
    }
  } else if (!response->ball.center.empty()) {
    PrintVector("center=", response->ball.center);
    std::printf("radius=%.6f\n", response->ball.radius);
  }
  std::printf("charged eps=%.6g delta=%.3g over %zu interactions\n",
              response->charged.epsilon, response->charged.delta,
              response->ledger.interactions());
  if (response->diagnostics.has_value()) {
    std::printf("diagnostics: captured=%zu of t=%zu, tight_radius=%.6f, "
                "w_effective=%.2f\n",
                response->diagnostics->captured, request.t,
                response->diagnostics->tight_radius,
                response->diagnostics->w_effective);
  }
  if (!response->note.empty()) {
    std::printf("note: %s\n", response->note.c_str());
  }
  std::printf("wall_ms=%.1f\n", response->wall_ms);
  if (opt.ledger) {
    std::printf("%s\n", response->ledger.Report().c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return main_impl(argc, argv); }
