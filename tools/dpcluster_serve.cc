// dpcluster_serve — the resident dpcluster daemon: a multi-tenant HTTP
// server over the Solver façade, with per-(tenant, dataset) privacy budget
// enforcement and a keyed cache of shared geometry indexes.
//
// Usage:
//   dpcluster_serve [--port P] [--workers W] [--queue-depth Q] ...
//
// The daemon binds 127.0.0.1 only. Wire protocol, capacity planning, and
// the full flag reference live in docs/OPERATIONS.md; per-request tuning
// knobs in docs/TUNING.md.
//
// Options:
//   --port P            TCP port; 0 picks an ephemeral port (default 8777)
//   --workers W         drain loops offered to the thread pool  (default 4)
//   --queue-depth Q     admission queue capacity; overload sheds
//                       503 QueueFull at the door               (default 64)
//   --max-requests-per-connection N   keep-alive requests served per
//                       socket before Connection: close        (default 100)
//   --idle-timeout-ms T close a kept-alive connection after T ms
//                       without a new request                 (default 5000)
//   --budget-eps E      default per-(tenant, dataset) epsilon cap (default 4)
//   --budget-delta D    default per-(tenant, dataset) delta cap (default 1e-6)
//   --tenant-budget T=E:D   cap override for tenant T (repeatable), e.g.
//                       --tenant-budget alice=2.5:1e-7
//   --cache-capacity C  resident shared indexes in the LRU cache (default 8)
//   --max-points N      hard cap on points per request    (default 1048576)
//   --seed S            solver seed for requests with seed=0  (default 2016)
//   --no-diagnostics    skip utility diagnostics on every solve
//   --no-remote-shutdown  ignore POST /v1/shutdown (SIGINT/SIGTERM only)
//
// Shutdown: SIGINT/SIGTERM (or POST /v1/shutdown) drains gracefully —
// admitted requests finish, then the daemon exits printing its counters.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "dpcluster/service/http_server.h"
#include "dpcluster/service/service.h"

namespace {

using namespace dpcluster;

volatile std::sig_atomic_t g_signal = 0;
void OnSignal(int) { g_signal = 1; }

void Usage() {
  std::fprintf(
      stderr,
      "usage: dpcluster_serve [--port P] [--workers W] [--queue-depth Q]\n"
      "       [--max-requests-per-connection N] [--idle-timeout-ms T]\n"
      "       [--budget-eps E] [--budget-delta D] [--tenant-budget T=E:D]\n"
      "       [--cache-capacity C] [--max-points N] [--seed S]\n"
      "       [--no-diagnostics] [--no-remote-shutdown]\n"
      "see docs/OPERATIONS.md for the wire protocol and capacity planning\n");
}

struct ServeOptions {
  int port = 8777;
  HttpServerOptions http;
  ServiceOptions service;
};

bool ParseTenantBudget(const char* spec, ServiceOptions& service) {
  // T=E:D
  const char* eq = std::strchr(spec, '=');
  const char* colon = eq != nullptr ? std::strchr(eq, ':') : nullptr;
  if (eq == nullptr || colon == nullptr || eq == spec) return false;
  const std::string tenant(spec, static_cast<std::size_t>(eq - spec));
  char* end = nullptr;
  const double eps = std::strtod(eq + 1, &end);
  if (end != colon) return false;
  const double delta = std::strtod(colon + 1, &end);
  if (*end != '\0' || eps <= 0.0 || delta < 0.0) return false;
  service.tenant_budgets[tenant] = PrivacyParams{eps, delta};
  return true;
}

bool ParseArgs(int argc, char** argv, ServeOptions& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (arg == "--help" || arg == "-h") {
      return false;
    } else if (arg == "--no-diagnostics") {
      opt.service.diagnostics = false;
    } else if (arg == "--no-remote-shutdown") {
      opt.service.allow_remote_shutdown = false;
    } else if (arg == "--port") {
      const char* v = next();
      if (!v) return false;
      opt.port = std::atoi(v);
    } else if (arg == "--workers") {
      const char* v = next();
      if (!v) return false;
      opt.http.workers = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--queue-depth") {
      const char* v = next();
      if (!v) return false;
      opt.http.queue_depth =
          static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--max-requests-per-connection") {
      const char* v = next();
      if (!v) return false;
      opt.http.max_requests_per_connection =
          static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--idle-timeout-ms") {
      const char* v = next();
      if (!v) return false;
      opt.http.idle_timeout_ms = std::atoi(v);
    } else if (arg == "--budget-eps") {
      const char* v = next();
      if (!v) return false;
      opt.service.default_budget.epsilon = std::strtod(v, nullptr);
    } else if (arg == "--budget-delta") {
      const char* v = next();
      if (!v) return false;
      opt.service.default_budget.delta = std::strtod(v, nullptr);
    } else if (arg == "--tenant-budget") {
      const char* v = next();
      if (!v || !ParseTenantBudget(v, opt.service)) return false;
    } else if (arg == "--cache-capacity") {
      const char* v = next();
      if (!v) return false;
      opt.service.cache_capacity =
          static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--max-points") {
      const char* v = next();
      if (!v) return false;
      opt.service.max_points =
          static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return false;
      opt.service.seed = std::strtoull(v, nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  if (opt.port < 0 || opt.port > 65535 || opt.http.workers < 1 ||
      opt.http.queue_depth < 1 ||
      opt.http.max_requests_per_connection < 1 ||
      opt.http.idle_timeout_ms < 1 || opt.service.cache_capacity < 1 ||
      opt.service.default_budget.epsilon <= 0.0) {
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  ServeOptions opt;
  if (!ParseArgs(argc, argv, opt)) {
    Usage();
    return 2;
  }
  opt.http.port = opt.port;

  ClusterService service(opt.service);
  HttpServer server(&service, opt.http);
  if (Status status = server.Start(); !status.ok()) {
    std::fprintf(stderr, "dpcluster_serve: %s\n",
                 std::string(status.message()).c_str());
    return 1;
  }
  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  std::printf("dpcluster_serve: listening on 127.0.0.1:%d (workers=%zu, "
              "queue=%zu, budget eps=%g delta=%g)\n",
              server.port(), opt.http.workers, opt.http.queue_depth,
              opt.service.default_budget.epsilon,
              opt.service.default_budget.delta);
  std::fflush(stdout);

  while (g_signal == 0 && !service.shutdown_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::printf("dpcluster_serve: draining...\n");
  server.Stop();

  const HttpServer::Stats http = server.GetStats();
  const ClusterService::Stats stats = service.GetStats();
  const IndexCache::Stats cache = service.CacheStats();
  std::printf(
      "dpcluster_serve: served=%llu (reused=%llu) shed=%llu solved=%llu "
      "rejected=%llu (budget=%llu) stream appends=%llu expires=%llu "
      "compactions=%llu cache hits=%llu misses=%llu bypasses=%llu\n",
      static_cast<unsigned long long>(http.served),
      static_cast<unsigned long long>(http.reused),
      static_cast<unsigned long long>(http.shed),
      static_cast<unsigned long long>(stats.solved),
      static_cast<unsigned long long>(stats.rejected),
      static_cast<unsigned long long>(stats.budget_rejections),
      static_cast<unsigned long long>(stats.stream_appends),
      static_cast<unsigned long long>(stats.stream_expires),
      static_cast<unsigned long long>(stats.stream_compactions),
      static_cast<unsigned long long>(cache.hits),
      static_cast<unsigned long long>(cache.misses),
      static_cast<unsigned long long>(cache.bypasses));
  return 0;
}
