// Tests for the sample-and-aggregate framework (Algorithm 4 / Theorem 6.3).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "dpcluster/la/vector_ops.h"
#include "dpcluster/random/distributions.h"
#include "dpcluster/sa/estimators.h"
#include "dpcluster/sa/sample_aggregate.h"
#include "test_util.h"

namespace dpcluster {
namespace {

SampleAggregateOptions TestOptions(double eps, std::size_t m) {
  SampleAggregateOptions o;
  o.params = {eps, 1e-8};
  o.beta = 0.2;
  o.block_size = m;
  o.alpha = 0.8;
  o.one_cluster.params = o.params;
  return o;
}

// Gaussian data around a hidden mean: the mean estimator is subsample-stable.
PointSet GaussianData(Rng& rng, std::size_t n, std::size_t d,
                      const std::vector<double>& mean, double sigma) {
  PointSet s(d);
  std::vector<double> p(d);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      p[j] = std::clamp(mean[j] + SampleGaussian(rng, sigma), 0.0, 1.0);
    }
    s.Add(p);
  }
  return s;
}

TEST(SampleAggregateOptionsTest, Validation) {
  SampleAggregateOptions o = TestOptions(1.0, 10);
  EXPECT_OK(o.Validate());
  o.block_size = 0;
  EXPECT_FALSE(o.Validate().ok());
  o = TestOptions(1.0, 10);
  o.alpha = 0.0;
  EXPECT_FALSE(o.Validate().ok());
  o = TestOptions(1.0, 10);
  o.alpha = 1.5;
  EXPECT_FALSE(o.Validate().ok());
}

TEST(SampleAggregateTest, RejectsTooSmallN) {
  Rng rng(1);
  const PointSet s = testing_util::UniformCube(rng, 100, 2);
  const GridDomain domain(1024, 2);
  // n < 18 m.
  EXPECT_FALSE(
      SampleAggregate(rng, s, MeanEstimator(), domain, TestOptions(4.0, 10)).ok());
}

TEST(SampleAggregateTest, PrivateMeanLandsNearTrueMean) {
  Rng rng(2);
  const std::vector<double> mean = {0.4, 0.6};
  const PointSet s = GaussianData(rng, 40000, 2, mean, 0.02);
  const GridDomain domain(1u << 12, 2);
  const SampleAggregateOptions options = TestOptions(8.0, 12);
  ASSERT_OK_AND_ASSIGN(
      SampleAggregateResult result,
      SampleAggregate(rng, s, MeanEstimator(), domain, options));
  EXPECT_EQ(result.blocks, 40000u / 9u / 12u);
  EXPECT_LT(Distance(result.point, mean), 0.1);
}

TEST(SampleAggregateTest, MedianSurvivesContamination) {
  // 20% of rows pinned at 1.0 ruins the mean of some blocks but not the
  // median; SA + median should still land near the clean center.
  Rng rng(3);
  const std::vector<double> mean = {0.3};
  PointSet s = GaussianData(rng, 30000, 1, mean, 0.02);
  for (std::size_t i = 0; i < s.size(); i += 5) {
    const std::vector<double> bad = {1.0};
    s.ReplaceRow(i, bad);
  }
  const GridDomain domain(1u << 12, 1);
  ASSERT_OK_AND_ASSIGN(
      SampleAggregateResult result,
      SampleAggregate(rng, s, MedianEstimator(), domain, TestOptions(8.0, 10)));
  EXPECT_NEAR(result.point[0], 0.3, 0.1);
}

TEST(SampleAggregateTest, AmplifiedBudgetMatchesLemma64) {
  Rng rng(4);
  const PointSet s = GaussianData(rng, 20000, 1, {0.5}, 0.05);
  const GridDomain domain(1024, 1);
  const SampleAggregateOptions options = TestOptions(8.0, 10);
  ASSERT_OK_AND_ASSIGN(
      SampleAggregateResult result,
      SampleAggregate(rng, s, MeanEstimator(), domain, options));
  const double ratio =
      static_cast<double>(result.blocks * 10) / 20000.0;
  EXPECT_NEAR(result.amplified.epsilon, 6.0 * 8.0 * ratio, 1e-9);
  EXPECT_LT(result.amplified.epsilon, options.params.epsilon);
}

TEST(EstimatorsTest, MeanMedianTrimmedSlope) {
  const PointSet block = testing_util::MakePointSet(1, {0.0, 1.0, 2.0, 3.0, 100.0});
  std::vector<double> out(1);
  ASSERT_OK(MeanEstimator()(block, out));
  EXPECT_NEAR(out[0], 21.2, 1e-9);
  ASSERT_OK(MedianEstimator()(block, out));
  EXPECT_NEAR(out[0], 2.0, 1e-9);
  ASSERT_OK(TrimmedMeanEstimator(0.2)(block, out));
  EXPECT_NEAR(out[0], 2.0, 1e-9);  // Drops 0 and 100.

  const PointSet pairs = testing_util::MakePointSet(2, {1.0, 2.0, 2.0, 4.0});
  ASSERT_OK(SlopeEstimator()(pairs, out));
  EXPECT_NEAR(out[0], 2.0, 1e-9);
}

TEST(EstimatorsTest, ErrorPaths) {
  std::vector<double> out1(1);
  std::vector<double> out2(2);
  const PointSet empty(1);
  EXPECT_FALSE(MeanEstimator()(empty, out1).ok());
  const PointSet block = testing_util::MakePointSet(1, {1.0});
  EXPECT_FALSE(MeanEstimator()(block, out2).ok());
  EXPECT_FALSE(SlopeEstimator()(block, out1).ok());  // Needs dim 2.
  // floor(trim * size) < size/2 for trim < 0.5, so trimming never empties a
  // block; a heavy trim on a tiny block degenerates to the median-ish mean.
  ASSERT_OK(TrimmedMeanEstimator(0.49)(block, out1));
  EXPECT_NEAR(out1[0], 1.0, 1e-9);
}

}  // namespace
}  // namespace dpcluster
