// Tests for PointSet, balls, boxes, and exact counting.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "dpcluster/geo/ball.h"
#include "dpcluster/geo/point_set.h"
#include "test_util.h"

namespace dpcluster {
namespace {

using testing_util::MakePointSet;

TEST(PointSetTest, BasicAccess) {
  PointSet s = MakePointSet(2, {0.0, 0.0, 1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.dim(), 2u);
  EXPECT_DOUBLE_EQ(s[1][0], 1.0);
  EXPECT_DOUBLE_EQ(s[2][1], 4.0);
}

TEST(PointSetTest, AddAndReplace) {
  PointSet s(3);
  EXPECT_TRUE(s.empty());
  const std::vector<double> p = {1.0, 2.0, 3.0};
  s.Add(p);
  EXPECT_EQ(s.size(), 1u);
  const std::vector<double> q = {4.0, 5.0, 6.0};
  s.ReplaceRow(0, q);
  EXPECT_DOUBLE_EQ(s[0][2], 6.0);
}

TEST(PointSetTest, SubsetPreservesOrderAndDuplicates) {
  PointSet s = MakePointSet(1, {10.0, 20.0, 30.0});
  const std::vector<std::size_t> idx = {2, 0, 2};
  const PointSet sub = s.Subset(idx);
  ASSERT_EQ(sub.size(), 3u);
  EXPECT_DOUBLE_EQ(sub[0][0], 30.0);
  EXPECT_DOUBLE_EQ(sub[1][0], 10.0);
  EXPECT_DOUBLE_EQ(sub[2][0], 30.0);
}

TEST(BallTest, ContainsBoundaryInclusive) {
  Ball b;
  b.center = {0.0, 0.0};
  b.radius = 1.0;
  EXPECT_TRUE(b.Contains(std::vector<double>{1.0, 0.0}));
  EXPECT_TRUE(b.Contains(std::vector<double>{0.6, 0.8}));
  EXPECT_FALSE(b.Contains(std::vector<double>{1.01, 0.0}));
}

TEST(AxisBoxTest, ContainsCenterDiameter) {
  AxisBox box;
  box.lo = {0.0, -1.0};
  box.hi = {2.0, 1.0};
  EXPECT_TRUE(box.Contains(std::vector<double>{1.0, 0.0}));
  EXPECT_FALSE(box.Contains(std::vector<double>{2.1, 0.0}));
  const auto c = box.Center();
  EXPECT_DOUBLE_EQ(c[0], 1.0);
  EXPECT_DOUBLE_EQ(c[1], 0.0);
  EXPECT_NEAR(box.Diameter(), std::sqrt(4.0 + 4.0), 1e-12);
}

TEST(CountingTest, CountWithinMatchesManual) {
  PointSet s = MakePointSet(1, {0.0, 0.5, 1.0, 2.0});
  EXPECT_EQ(CountWithin(s, std::vector<double>{0.0}, 0.0), 1u);
  EXPECT_EQ(CountWithin(s, std::vector<double>{0.0}, 0.5), 2u);
  EXPECT_EQ(CountWithin(s, std::vector<double>{0.0}, 1.0), 3u);
  EXPECT_EQ(CountWithin(s, std::vector<double>{0.0}, 5.0), 4u);
}

TEST(CountingTest, RadiusCapturingIsKthDistance) {
  PointSet s = MakePointSet(1, {0.0, 1.0, 3.0, 7.0});
  const std::vector<double> c = {0.0};
  EXPECT_DOUBLE_EQ(RadiusCapturing(s, c, 1), 0.0);
  EXPECT_DOUBLE_EQ(RadiusCapturing(s, c, 2), 1.0);
  EXPECT_DOUBLE_EQ(RadiusCapturing(s, c, 3), 3.0);
  EXPECT_DOUBLE_EQ(RadiusCapturing(s, c, 4), 7.0);
}

TEST(CountingTest, RadiusCapturingInverseOfCount) {
  Rng rng(12);
  const PointSet s = testing_util::UniformCube(rng, 100, 3);
  const std::vector<double> c = {0.5, 0.5, 0.5};
  for (std::size_t t : {1u, 10u, 50u, 100u}) {
    const double r = RadiusCapturing(s, c, t);
    EXPECT_GE(CountWithin(s, c, r), t);
    if (r > 0) {
      EXPECT_LT(CountWithin(s, c, r * (1.0 - 1e-9) - 1e-12), t);
    }
  }
}

TEST(CountingTest, CountInBallAgreesWithCountWithin) {
  Rng rng(13);
  const PointSet s = testing_util::UniformCube(rng, 200, 2);
  Ball b;
  b.center = {0.3, 0.7};
  b.radius = 0.2;
  EXPECT_EQ(CountInBall(s, b), CountWithin(s, b.center, b.radius));
}

}  // namespace
}  // namespace dpcluster
