// Tests for the private radius refinement used by the outlier screen, the
// k-cluster rounds, and the noisy-mean baseline.

#include <gtest/gtest.h>

#include <cmath>

#include "dpcluster/core/radius_refine.h"
#include "dpcluster/geo/ball.h"
#include "dpcluster/workload/synthetic.h"
#include "test_util.h"

namespace dpcluster {
namespace {

TEST(RadiusRefineTest, ValidatesArguments) {
  Rng rng(1);
  const GridDomain domain(256, 2);
  const PointSet s = testing_util::MakePointSet(2, {0.5, 0.5});
  const std::vector<double> c2 = {0.5, 0.5};
  const std::vector<double> c1 = {0.5};
  RadiusRefineOptions bad;
  bad.epsilon = 0.0;
  EXPECT_FALSE(RefineRadius(rng, s, c2, 1, domain, bad).ok());
  bad = RadiusRefineOptions{};
  bad.beta = 1.0;
  EXPECT_FALSE(RefineRadius(rng, s, c2, 1, domain, bad).ok());
  EXPECT_FALSE(RefineRadius(rng, s, c1, 1, domain, RadiusRefineOptions{}).ok());
  EXPECT_FALSE(RefineRadius(rng, s, c2, 0, domain, RadiusRefineOptions{}).ok());
  EXPECT_FALSE(RefineRadius(rng, s, c2, 2, domain, RadiusRefineOptions{}).ok());
}

TEST(RadiusRefineTest, TightOnPlantedClusterCenter) {
  Rng rng(2);
  PlantedClusterSpec spec;
  spec.n = 2000;
  spec.t = 1000;
  spec.dim = 2;
  spec.cluster_radius = 0.03;
  const ClusterWorkload w = MakePlantedCluster(rng, spec);
  RadiusRefineOptions options;
  options.epsilon = 2.0;
  int good = 0;
  const int trials = 5;
  for (int trial = 0; trial < trials; ++trial) {
    ASSERT_OK_AND_ASSIGN(double r, RefineRadius(rng, w.points, w.planted.center,
                                                w.t, w.domain, options));
    // Within a small factor of the planted radius and capturing ~t points.
    if (r <= 2.0 * spec.cluster_radius &&
        CountWithin(w.points, w.planted.center, r) >=
            static_cast<std::size_t>(0.8 * static_cast<double>(w.t))) {
      ++good;
    }
  }
  EXPECT_GE(good, trials - 1);
}

TEST(RadiusRefineTest, MonotoneInT) {
  Rng rng(3);
  PlantedClusterSpec spec;
  spec.n = 1500;
  spec.t = 500;
  spec.dim = 2;
  spec.cluster_radius = 0.02;
  const ClusterWorkload w = MakePlantedCluster(rng, spec);
  RadiusRefineOptions options;
  options.epsilon = 4.0;
  ASSERT_OK_AND_ASSIGN(double r_small, RefineRadius(rng, w.points,
                                                    w.planted.center, 300,
                                                    w.domain, options));
  ASSERT_OK_AND_ASSIGN(double r_big, RefineRadius(rng, w.points,
                                                  w.planted.center, 1400,
                                                  w.domain, options));
  // Capturing nearly all points (incl. the uniform background) needs a much
  // larger ball than capturing part of the cluster.
  EXPECT_LT(r_small, r_big);
}

TEST(RadiusRefineTest, OffClusterCenterNeedsLargerRadius) {
  Rng rng(4);
  PlantedClusterSpec spec;
  spec.n = 1500;
  spec.t = 900;
  spec.dim = 2;
  spec.cluster_radius = 0.02;
  const ClusterWorkload w = MakePlantedCluster(rng, spec);
  RadiusRefineOptions options;
  options.epsilon = 4.0;
  ASSERT_OK_AND_ASSIGN(double r_on, RefineRadius(rng, w.points,
                                                 w.planted.center, w.t,
                                                 w.domain, options));
  std::vector<double> off = w.planted.center;
  off[0] = w.domain.Snap(off[0] < 0.5 ? off[0] + 0.4 : off[0] - 0.4);
  ASSERT_OK_AND_ASSIGN(double r_off,
                       RefineRadius(rng, w.points, off, w.t, w.domain, options));
  EXPECT_GT(r_off, 2.0 * r_on);
}

TEST(RadiusRefineTest, LowEpsilonStillReturnsGridRadius) {
  Rng rng(5);
  PlantedClusterSpec spec;
  spec.n = 800;
  spec.t = 400;
  spec.dim = 1;
  const ClusterWorkload w = MakePlantedCluster(rng, spec);
  RadiusRefineOptions options;
  options.epsilon = 0.05;  // Very noisy; result valid but loose.
  ASSERT_OK_AND_ASSIGN(double r, RefineRadius(rng, w.points, w.planted.center,
                                              w.t, w.domain, options));
  EXPECT_GE(r, 0.0);
  EXPECT_LE(r, w.domain.RadiusFromIndex(w.domain.RadiusGridSize() - 1));
}

}  // namespace
}  // namespace dpcluster
