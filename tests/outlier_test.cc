// Tests for outlier screening (Section 1.1 application).

#include <gtest/gtest.h>

#include <cmath>

#include "dpcluster/core/outlier.h"
#include "dpcluster/workload/synthetic.h"
#include "test_util.h"

namespace dpcluster {
namespace {

OutlierScreenOptions TestOptions(double eps) {
  OutlierScreenOptions o;
  o.inlier_fraction = 0.9;
  o.one_cluster.params = {eps, 1e-8};
  o.one_cluster.beta = 0.1;
  return o;
}

TEST(OutlierScreenOptionsTest, Validation) {
  OutlierScreenOptions o = TestOptions(1.0);
  EXPECT_OK(o.Validate());
  o.inlier_fraction = 0.0;
  EXPECT_FALSE(o.Validate().ok());
  o = TestOptions(1.0);
  o.inlier_fraction = 1.5;
  EXPECT_FALSE(o.Validate().ok());
  o = TestOptions(1.0);
  o.inflation = 0.5;
  EXPECT_FALSE(o.Validate().ok());
}

TEST(OutlierScreenTest, KeepsInliersDropsOutliers) {
  Rng rng(1);
  const ClusterWorkload w =
      MakeOutlierContaminated(rng, 2000, 2, 1024, 0.02, 0.9);
  ASSERT_OK_AND_ASSIGN(OutlierScreen screen,
                       BuildOutlierScreen(rng, w.points, w.domain, TestOptions(8.0)));
  const PointSet inliers = screen.Inliers(w.points);
  // Should keep most of the 90% planted inliers.
  EXPECT_GE(inliers.size(), static_cast<std::size_t>(0.6 * 0.9 * 2000));
  // The planted cluster center must be classified as an inlier.
  EXPECT_TRUE(screen.IsInlier(w.planted.center));
}

TEST(OutlierScreenTest, ScreeningShrinksDiameter) {
  // The motivation from the paper: restricting to the refined ball reduces
  // the data diameter (hence downstream sensitivity) by a large factor.
  Rng rng(2);
  const ClusterWorkload w =
      MakeOutlierContaminated(rng, 2000, 2, 1024, 0.02, 0.9);
  ASSERT_OK_AND_ASSIGN(OutlierScreen screen,
                       BuildOutlierScreen(rng, w.points, w.domain, TestOptions(8.0)));
  EXPECT_LT(2.0 * screen.ball.radius, 0.5 * std::sqrt(2.0));
}

TEST(OutlierScreenTest, RefinementOffKeepsGuaranteeRadius) {
  Rng rng(11);
  const ClusterWorkload w =
      MakeOutlierContaminated(rng, 1500, 2, 1024, 0.02, 0.9);
  OutlierScreenOptions o = TestOptions(8.0);
  o.refine.epsilon = 0.0;
  ASSERT_OK_AND_ASSIGN(OutlierScreen screen,
                       BuildOutlierScreen(rng, w.points, w.domain, o));
  EXPECT_DOUBLE_EQ(screen.ball.radius, screen.pipeline.ball.radius);
}

TEST(OutlierScreenTest, InflationWidensTheBall) {
  Rng rng(3);
  const ClusterWorkload w =
      MakeOutlierContaminated(rng, 1500, 2, 1024, 0.02, 0.9);
  OutlierScreenOptions o = TestOptions(8.0);
  o.inflation = 2.0;
  o.refine.epsilon = 0.0;  // Keep the pipeline radius so the factor is exact.
  ASSERT_OK_AND_ASSIGN(OutlierScreen screen,
                       BuildOutlierScreen(rng, w.points, w.domain, o));
  EXPECT_DOUBLE_EQ(screen.ball.radius, screen.pipeline.ball.radius * 2.0);
}

TEST(OutlierScreenTest, EmptyDatasetRejected) {
  Rng rng(4);
  const PointSet empty(2);
  const GridDomain domain(64, 2);
  EXPECT_FALSE(BuildOutlierScreen(rng, empty, domain, TestOptions(1.0)).ok());
}

}  // namespace
}  // namespace dpcluster
