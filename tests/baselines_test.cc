// Tests for the Table 1 baselines.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "dpcluster/baselines/exp_mech_baseline.h"
#include "dpcluster/baselines/noisy_mean_baseline.h"
#include "dpcluster/baselines/nonprivate_baseline.h"
#include "dpcluster/baselines/threshold_release_1d.h"
#include "dpcluster/geo/minimal_ball.h"
#include "dpcluster/la/vector_ops.h"
#include "dpcluster/workload/synthetic.h"
#include "test_util.h"

namespace dpcluster {
namespace {

TEST(NoisyMeanBaselineTest, WorksOnMajorityCluster) {
  Rng rng(1);
  PlantedClusterSpec spec;
  spec.n = 2000;
  spec.t = 1800;  // Strong majority.
  spec.dim = 2;
  spec.cluster_radius = 0.04;
  const ClusterWorkload w = MakePlantedCluster(rng, spec);
  NoisyMeanBaselineOptions o;
  o.params = {2.0, 1e-8};
  ASSERT_OK_AND_ASSIGN(Ball ball, NoisyMeanBaseline(rng, w.points, w.t, w.domain, o));
  // The mean of a 90% cluster sits near the planted center.
  EXPECT_LT(Distance(ball.center, w.planted.center), 0.15);
  EXPECT_GE(CountInBall(w.points, ball), w.t / 2);
}

TEST(NoisyMeanBaselineTest, FailsOnMinorityClusters) {
  // Two 30% clusters at opposite corners: the global mean lands between them,
  // so the smallest t-heavy ball around it is large — the failure mode
  // Table 1 row 1 documents.
  Rng rng(2);
  const ClusterWorkload w = MakeTwoClusters(rng, 2000, 2, 1024, 0.03, 0.3);
  NoisyMeanBaselineOptions o;
  o.params = {2.0, 1e-8};
  ASSERT_OK_AND_ASSIGN(Ball ball, NoisyMeanBaseline(rng, w.points, w.t, w.domain, o));
  // Radius must blow up well past the planted radius to reach t points.
  EXPECT_GT(ball.radius, 5.0 * 0.03);
}

TEST(ExpMechBaselineTest, NearOptimalRadiusOnTinyGrid) {
  Rng rng(3);
  PlantedClusterSpec spec;
  spec.n = 600;
  spec.t = 250;
  spec.dim = 1;
  spec.levels = 256;
  spec.cluster_radius = 0.03;
  const ClusterWorkload w = MakePlantedCluster(rng, spec);
  ExpMechBaselineOptions o;
  o.params = {4.0, 0.0};
  ASSERT_OK_AND_ASSIGN(Ball ball, ExpMechBaseline(rng, w.points, w.t, w.domain, o));
  ASSERT_OK_AND_ASSIGN(Ball opt, SmallestInterval1D(w.points, w.t));
  // w ~ 1 up to grid granularity and the noisy count margin.
  EXPECT_LE(ball.radius, 3.0 * opt.radius + 0.05);
  EXPECT_GE(CountInBall(w.points, ball),
            static_cast<std::size_t>(0.5 * static_cast<double>(w.t)));
}

TEST(ExpMechBaselineTest, RefusesLargeGrids) {
  Rng rng(4);
  const GridDomain domain(1u << 12, 3);  // 2^36 centers.
  const PointSet s = testing_util::MakePointSet(3, {0.5, 0.5, 0.5});
  ExpMechBaselineOptions o;
  EXPECT_EQ(ExpMechBaseline(rng, s, 1, domain, o).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(ThresholdRelease1DTest, PrefixCountsTrackTruth) {
  Rng rng(5);
  const GridDomain domain(1024, 1);
  PointSet s = testing_util::UniformCube(rng, 4000, 1);
  domain.SnapAll(s);
  ThresholdRelease1DOptions o;
  o.params = {2.0, 0.0};
  ASSERT_OK_AND_ASSIGN(ThresholdRelease1D release,
                       ThresholdRelease1D::Build(rng, s, domain, o));
  // Compare released prefix counts against the truth at several levels.
  for (std::uint64_t level : {100ull, 400ull, 800ull, 1023ull}) {
    std::size_t truth = 0;
    const double bound = static_cast<double>(level) * domain.step() + 1e-12;
    for (std::size_t i = 0; i < s.size(); ++i) truth += (s[i][0] <= bound);
    EXPECT_NEAR(release.PrefixCount(level), static_cast<double>(truth),
                release.ErrorBound() + 50.0)
        << "level=" << level;
  }
}

TEST(ThresholdRelease1DTest, FindsPlantedIntervalWithUnitW) {
  Rng rng(6);
  PlantedClusterSpec spec;
  spec.n = 4000;
  spec.t = 1500;
  spec.dim = 1;
  spec.levels = 1024;
  spec.cluster_radius = 0.03;
  const ClusterWorkload w = MakePlantedCluster(rng, spec);
  ThresholdRelease1DOptions o;
  o.params = {2.0, 0.0};
  ASSERT_OK_AND_ASSIGN(ThresholdRelease1D release,
                       ThresholdRelease1D::Build(rng, w.points, w.domain, o));
  ASSERT_OK_AND_ASSIGN(Ball ball, release.SmallestHeavyInterval(w.t));
  ASSERT_OK_AND_ASSIGN(Ball opt, SmallestInterval1D(w.points, w.t));
  // Query release solves d=1 with w = 1 (up to the count error slack).
  EXPECT_LE(ball.radius, 2.0 * opt.radius + 0.05);
}

TEST(ThresholdRelease1DTest, IntervalCountsAreConsistent) {
  Rng rng(7);
  const GridDomain domain(256, 1);
  PointSet s = testing_util::UniformCube(rng, 1000, 1);
  domain.SnapAll(s);
  ThresholdRelease1DOptions o;
  o.params = {4.0, 0.0};
  ASSERT_OK_AND_ASSIGN(ThresholdRelease1D release,
                       ThresholdRelease1D::Build(rng, s, domain, o));
  // Disjoint intervals sum to the enclosing one (post-processed consistency).
  const double whole = release.IntervalCount(0, 255);
  const double left = release.IntervalCount(0, 100);
  const double right = release.IntervalCount(101, 255);
  EXPECT_NEAR(whole, left + right, 1e-9);
  // Monotone prefixes.
  EXPECT_LE(release.PrefixCount(10), release.PrefixCount(200) + 1e-9);
}

TEST(ThresholdRelease1DTest, RejectsWrongDimension) {
  Rng rng(8);
  const GridDomain domain(64, 2);
  const PointSet s = testing_util::MakePointSet(2, {0.5, 0.5});
  ThresholdRelease1DOptions o;
  EXPECT_FALSE(ThresholdRelease1D::Build(rng, s, domain, o).ok());
}

TEST(NonPrivateBaselineTest, LocalSearchImprovesOnTwoApprox) {
  Rng rng(9);
  const PointSet s = testing_util::UniformCube(rng, 150, 2);
  const std::size_t t = 60;
  ASSERT_OK_AND_ASSIGN(Ball two, NonPrivateTwoApprox(s, t));
  ASSERT_OK_AND_ASSIGN(Ball fine, NonPrivateLocalSearch(s, t, 0.25));
  EXPECT_LE(fine.radius, two.radius + 1e-12);
  EXPECT_GE(CountInBall(s, fine), t);
}

TEST(NonPrivateBaselineTest, BestEffortUsesExact1D) {
  const PointSet s = testing_util::MakePointSet(1, {0.0, 0.1, 0.2, 0.9});
  ASSERT_OK_AND_ASSIGN(Ball b, NonPrivateBestEffort(s, 3));
  EXPECT_NEAR(b.radius, 0.1, 1e-12);
}

}  // namespace
}  // namespace dpcluster
